// Command popserver serves the engine over TCP (line-delimited JSON) and
// HTTP: concurrent sessions share one catalog, one plan cache and one
// admission-controlled worker scheduler that arbitrates the global worker
// budget between queries (see DESIGN.md §12).
//
// Usage:
//
//	popserver -db tpch -sf 0.01 -addr 127.0.0.1:7070 -http 127.0.0.1:7071
//
// SIGINT/SIGTERM drain gracefully: in-flight queries finish (bounded by
// -draintimeout), new queries are rejected with the typed "draining" code,
// and trace/metrics sinks flush before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/catalog"
	"repro/internal/dmv"
	"repro/internal/pop"
	"repro/internal/server"
	"repro/internal/tpch"
	"repro/internal/trace"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7070", "TCP listen address (line-JSON protocol)")
		httpAddr     = flag.String("http", "", "HTTP listen address (POST /query, GET /metrics, GET /healthz); empty = off")
		db           = flag.String("db", "tpch", "database to load: tpch or dmv")
		sf           = flag.Float64("sf", 0.01, "TPC-H scale factor")
		scale        = flag.Float64("scale", 0.5, "DMV scale")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "planned exchange width per query")
		budget       = flag.Int("budget", runtime.GOMAXPROCS(0), "global worker-pool budget across all queries")
		slots        = flag.Int("slots", 0, "concurrently running queries (0 = budget/2, min 2)")
		sessionQueue = flag.Int("sessionqueue", 4, "per-session admission-queue allowance before backpressure")
		batch        = flag.Int("batch", 0, "vectorized batch size (0 = row-at-a-time)")
		nocache      = flag.Bool("nocache", false, "disable the shared plan cache")
		maxRows      = flag.Int("maxrows", 1000, "rows returned per response (0 = unlimited)")
		traceOut     = flag.String("trace", "", "append JSONL trace events to this file")
		metricsOut   = flag.String("metricsout", "", "write a final metrics snapshot (text) to this file on shutdown")
		drainTO      = flag.Duration("draintimeout", 30*time.Second, "how long shutdown waits for in-flight queries")
		failCheck    = flag.Bool("failcheck", false, "force every query's first checkpoint to fail (smoke-test knob: guarantees re-optimizations)")
	)
	flag.Parse()

	cat := catalog.New()
	switch *db {
	case "tpch":
		if err := tpch.Load(cat, tpch.Config{ScaleFactor: *sf, Seed: 42}); err != nil {
			fatal(err)
		}
	case "dmv":
		if err := dmv.Load(cat, dmv.Config{Scale: *scale, Seed: 17}); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown database %q", *db))
	}

	cfg := server.Config{
		Addr:     *addr,
		HTTPAddr: *httpAddr,
		Sched: server.SchedConfig{
			WorkerBudget: *budget,
			RunSlots:     *slots,
			SessionQueue: *sessionQueue,
		},
		Workers:      *workers,
		BatchSize:    *batch,
		DisableCache: *nocache,
		MaxRows:      *maxRows,
		DrainTimeout: *drainTO,
	}
	if *failCheck {
		cfg.Options = func(o *pop.Options) {
			o.Policy.FailCheckIDs = map[int]bool{0: true}
		}
	}
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		traceFile = f
		cfg.TraceJSONL = trace.NewJSONL(f)
	}

	s := server.New(cat, cfg)
	if err := s.Start(); err != nil {
		fatal(err)
	}
	sched := s.Scheduler().Config()
	fmt.Printf("popserver: %s (%d tables) on %s", *db, len(cat.TableNames()), s.Addr())
	if h := s.HTTPAddr(); h != "" {
		fmt.Printf(", http %s", h)
	}
	fmt.Printf("; workers=%d budget=%d slots=%d sessionqueue=%d\n",
		cfg.Workers, sched.WorkerBudget, sched.RunSlots, sched.SessionQueue)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("popserver: %v, draining...\n", got)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTO+5*time.Second)
	defer cancel()
	code := 0
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "popserver: shutdown:", err)
		code = 1
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "popserver: trace close:", err)
			code = 1
		}
	}
	m := s.Metrics()
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "popserver:", err)
			code = 1
		} else {
			m.WriteText(f)
			st := s.Scheduler().Stats()
			fmt.Fprintf(f, "%-22s %d\n", "sched peak workers", st.PeakWorkers)
			fmt.Fprintf(f, "%-22s %d\n", "sched admitted", st.Admitted)
			fmt.Fprintf(f, "%-22s %d\n", "sched backpressure", st.Backpressure)
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "popserver:", err)
				code = 1
			}
		}
	}
	fmt.Printf("popserver: drained; served %d queries (%d reopts, %d dop clamps)\n",
		m.Queries, m.Reoptimizations, m.DOPClamps)
	os.Exit(code)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "popserver:", err)
	os.Exit(1)
}
