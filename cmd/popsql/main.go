// Command popsql is an interactive shell over the engine: it loads one of
// the bundled workload databases and runs SQL with progressive optimization
// on or off, showing plans, re-optimizations and simulated cost.
//
// Usage:
//
//	popsql -db tpch -sf 0.005
//	popsql -db dmv -scale 0.5
//	popsql -db csv -dir ./data     # load every *.csv in a directory
//
// Shell commands:
//
//	\pop on|off     toggle progressive optimization
//	\explain SQL    show the plan (with validity ranges) without running
//	\analyze SQL    run the plan and show per-operator actual row counts
//	\tables         list tables
//	\q              quit
//	SQL;            execute
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/catalog"
	"repro/internal/dmv"
	"repro/internal/executor"
	"repro/internal/optimizer"
	"repro/internal/plancache"
	"repro/internal/pop"
	"repro/internal/sqlparse"
	"repro/internal/tpch"
)

func main() {
	var (
		db    = flag.String("db", "tpch", "database to load: tpch, dmv or csv")
		sf    = flag.Float64("sf", 0.005, "TPC-H scale factor")
		scale = flag.Float64("scale", 0.5, "DMV scale")
		dir   = flag.String("dir", ".", "directory of *.csv files for -db csv")
	)
	flag.Parse()

	cat := catalog.New()
	switch *db {
	case "tpch":
		if err := tpch.Load(cat, tpch.Config{ScaleFactor: *sf, Seed: 42}); err != nil {
			fatal(err)
		}
	case "dmv":
		if err := dmv.Load(cat, dmv.Config{Scale: *scale, Seed: 17}); err != nil {
			fatal(err)
		}
	case "csv":
		if err := loadCSVDir(cat, *dir); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown database %q", *db))
	}
	fmt.Printf("loaded %s: tables %v\n", *db, cat.TableNames())
	fmt.Println(`POP is ON. Try: SELECT n_name, COUNT(*) AS n FROM nation, supplier WHERE n_nationkey = s_nationkey GROUP BY n_name;`)

	popOn := true
	// One plan cache for the whole session: repeated statements reuse their
	// optimized plans when the validity-range guards allow it.
	cache := plancache.New()
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Print("popsql> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\q`:
			return
		case line == `\tables`:
			fmt.Println(cat.TableNames())
		case strings.HasPrefix(line, `\pop`):
			arg := strings.TrimSpace(strings.TrimPrefix(line, `\pop`))
			popOn = arg != "off"
			fmt.Printf("POP is now %v\n", onOff(popOn))
		case strings.HasPrefix(line, `\explain`):
			explain(cat, strings.TrimSpace(strings.TrimPrefix(line, `\explain`)))
		case strings.HasPrefix(line, `\analyze`):
			analyze(cat, strings.TrimSpace(strings.TrimPrefix(line, `\analyze`)))
		default:
			execute(cat, cache, line, popOn)
		}
		fmt.Print("popsql> ")
	}
}

func onOff(b bool) string {
	if b {
		return "ON"
	}
	return "OFF"
}

func explain(cat *catalog.Catalog, sql string) {
	q, err := sqlparse.Parse(cat, strings.TrimSuffix(sql, ";"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	opt := optimizer.New(cat)
	plan, err := opt.Optimize(q)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	withChecks, n := pop.Place(plan, q, pop.DefaultPolicy())
	fmt.Printf("-- plan (est cost %.0f, %d checkpoints):\n%s", plan.Cost, n, optimizer.Explain(withChecks, q))
}

// analyze runs the statically chosen plan and prints each operator with its
// estimated vs actual cardinality — the quickest way to see the estimation
// errors POP reacts to.
func analyze(cat *catalog.Catalog, sql string) {
	q, err := sqlparse.Parse(cat, strings.TrimSuffix(sql, ";"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	opt := optimizer.New(cat)
	plan, err := opt.Optimize(q)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	meter := &executor.Meter{}
	ex, err := executor.NewExecutor(cat, q, nil, opt.Model.Params, meter)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	root, err := ex.Build(plan)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rows, err := executor.Run(root)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var show func(n executor.Node, depth int)
	show = func(n executor.Node, depth int) {
		p := n.Plan()
		st := n.Stats()
		errFactor := ""
		if p.Card > 0 && st.RowsOut > 0 {
			f := st.RowsOut / p.Card
			if f >= 2 || f <= 0.5 {
				errFactor = fmt.Sprintf("  ← %.1fx estimation error", f)
			}
		}
		fmt.Printf("%s%s  est=%.1f actual=%.0f%s\n",
			strings.Repeat("  ", depth), p.Op, p.Card, st.RowsOut, errFactor)
		for _, c := range n.Children() {
			show(c, depth+1)
		}
	}
	show(root, 0)
	fmt.Printf("-- %d rows, %.0f work units\n", len(rows), meter.Work())
}

func execute(cat *catalog.Catalog, cache *plancache.Cache, sql string, popOn bool) {
	q, err := sqlparse.Parse(cat, strings.TrimSuffix(sql, ";"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	opts := pop.DefaultOptions()
	opts.Enabled = popOn
	res, info, err := plancache.NewRunner(cache, cat, opts).Run(q, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	limit := 20
	for i, row := range res.Rows {
		if i >= limit {
			fmt.Printf("... (%d more rows)\n", len(res.Rows)-limit)
			break
		}
		fmt.Println(row)
	}
	fmt.Printf("-- %d rows, %.0f work units, %d re-optimization(s)\n", len(res.Rows), res.Work, res.Reopts)
	if info.Hit {
		fmt.Printf("-- plan cache HIT: optimization skipped (%d guard estimates, %d candidate costings saved)\n",
			info.OptWork, info.OptWorkSaved)
	} else {
		fmt.Printf("-- plan cache MISS: optimized %d candidates, plan cached\n", info.OptWork)
	}
	if info.Invalidated {
		fmt.Println("-- plan cache: violated plan invalidated, re-optimized plan cached")
	}
	if res.Reopts > 0 {
		for i, a := range res.Attempts {
			if a.Violation != nil {
				fmt.Printf("-- attempt %d: %v\n", i, a.Violation)
			}
		}
	}
}

// loadCSVDir loads every *.csv file in dir as a table named after the file.
func loadCSVDir(cat *catalog.Catalog, dir string) error {
	paths, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no *.csv files in %s", dir)
	}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(filepath.Base(path), ".csv")
		_, err = cat.LoadCSV(name, f)
		f.Close()
		if err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "popsql:", err)
	os.Exit(1)
}
