// Command popsql is an interactive shell over the engine: it loads one of
// the bundled workload databases and runs SQL with progressive optimization
// on or off, showing plans, re-optimizations and simulated cost.
//
// Usage:
//
//	popsql -db tpch -sf 0.005
//	popsql -db dmv -scale 0.5
//	popsql -db csv -dir ./data     # load every *.csv in a directory
//	popsql -connect 127.0.0.1:7070 # client mode: run SQL on a popserver
//
// In -connect mode the shell is a thin network client: SQL executes on the
// server (shared plan cache, admission-controlled scheduling), \metrics shows
// the server's counters, and typed rejections (draining, backpressure)
// surface as errors.
//
// Shell commands:
//
//	\pop on|off     toggle progressive optimization
//	\planner [NAME] show or set the planner strategy (dp-pop, greedy-pop,
//	                greedy-only, reopt-unguarded); works in -connect mode too
//	\explain SQL    show the plan (with validity ranges) without running
//	\analyze SQL    EXPLAIN ANALYZE: run with POP and show, per attempt,
//	                each operator's estimated vs actual rows, work and DOP
//	\metrics        cumulative session counters (queries, reopts, checkpoint
//	                outcomes, plan-cache verdicts, worker utilization)
//	\trace FILE     start appending JSONL trace events to FILE
//	\trace off      stop tracing and flush
//	\tables         list tables
//	\q              quit
//	SQL;            execute
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/catalog"
	"repro/internal/dmv"
	"repro/internal/executor"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/plancache"
	"repro/internal/pop"
	"repro/internal/server"
	"repro/internal/sqlparse"
	"repro/internal/tpch"
	"repro/internal/trace"
)

// session is the shell's mutable state: the catalog, the POP toggle, one
// plan cache, a metrics registry fed by every traced execution, and the
// optional JSONL trace sink.
type session struct {
	cat   *catalog.Catalog
	popOn bool
	cache *plancache.Cache
	reg   *metrics.Registry

	// planner is the \planner-selected strategy; nil is the engine default
	// (dp-pop).
	planner pop.Strategy

	traceFile *os.File
	jsonl     *trace.JSONL
}

// recorder composes the session's trace sinks: the metrics registry always
// listens; the JSONL file joins when \trace armed one. The disarmed sink must
// not be passed as a typed-nil *JSONL — inside the Recorder interface it
// would look non-nil to Multi and crash on first use.
func (s *session) recorder() trace.Recorder {
	if s.jsonl != nil {
		return trace.Multi(s.reg, s.jsonl)
	}
	return s.reg
}

func main() {
	var (
		db      = flag.String("db", "tpch", "database to load: tpch, dmv or csv")
		sf      = flag.Float64("sf", 0.005, "TPC-H scale factor")
		scale   = flag.Float64("scale", 0.5, "DMV scale")
		dir     = flag.String("dir", ".", "directory of *.csv files for -db csv")
		connect = flag.String("connect", "", "connect to a popserver at this TCP address instead of loading a database")
	)
	flag.Parse()

	if *connect != "" {
		connectREPL(*connect)
		return
	}

	cat := catalog.New()
	switch *db {
	case "tpch":
		if err := tpch.Load(cat, tpch.Config{ScaleFactor: *sf, Seed: 42}); err != nil {
			fatal(err)
		}
	case "dmv":
		if err := dmv.Load(cat, dmv.Config{Scale: *scale, Seed: 17}); err != nil {
			fatal(err)
		}
	case "csv":
		if err := loadCSVDir(cat, *dir); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown database %q", *db))
	}
	fmt.Printf("loaded %s: tables %v\n", *db, cat.TableNames())
	fmt.Println(`POP is ON. Try: SELECT n_name, COUNT(*) AS n FROM nation, supplier WHERE n_nationkey = s_nationkey GROUP BY n_name;`)

	s := &session{
		cat:   cat,
		popOn: true,
		// One plan cache for the whole session: repeated statements reuse
		// their optimized plans when the validity-range guards allow it.
		cache: plancache.New(),
		reg:   metrics.New(),
	}
	defer s.stopTrace()
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Print("popsql> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\q`:
			return
		case line == `\tables`:
			fmt.Println(cat.TableNames())
		case line == `\metrics`:
			s.reg.Snapshot().WriteText(os.Stdout)
		case strings.HasPrefix(line, `\trace`):
			s.traceCmd(strings.TrimSpace(strings.TrimPrefix(line, `\trace`)))
		case strings.HasPrefix(line, `\pop`):
			arg := strings.TrimSpace(strings.TrimPrefix(line, `\pop`))
			s.popOn = arg != "off"
			fmt.Printf("POP is now %v\n", onOff(s.popOn))
		case strings.HasPrefix(line, `\planner`):
			s.plannerCmd(strings.TrimSpace(strings.TrimPrefix(line, `\planner`)))
		case strings.HasPrefix(line, `\explain`):
			explain(cat, s.planner, strings.TrimSpace(strings.TrimPrefix(line, `\explain`)))
		case strings.HasPrefix(line, `\analyze`):
			s.analyze(strings.TrimSpace(strings.TrimPrefix(line, `\analyze`)))
		default:
			s.execute(line)
		}
		fmt.Print("popsql> ")
	}
}

// connectREPL is the -connect client loop: SQL lines execute on the server
// over the line-JSON protocol; \metrics fetches the server's counters; \q
// quits.
func connectREPL(addr string) {
	c, err := server.Dial(addr)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "popsql:", err)
		}
	}()
	if err := c.Ping(); err != nil {
		fatal(err)
	}
	fmt.Printf("connected to %s\n", addr)
	// planner is the strategy name sent with every query; the server resolves
	// it, so an unknown name surfaces as a typed parse rejection.
	planner := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Print("popsql> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\q`:
			return
		case strings.HasPrefix(line, `\planner`):
			arg := strings.TrimSpace(strings.TrimPrefix(line, `\planner`))
			switch arg {
			case "":
				if planner == "" {
					fmt.Println("planner: server default (dp-pop)")
				} else {
					fmt.Printf("planner: %s\n", planner)
				}
				for _, st := range pop.Strategies() {
					fmt.Printf("  %-16s %s\n", st.Name(), st.Describe())
				}
			case "default":
				planner = ""
				fmt.Println("planner is now the server default (dp-pop)")
			default:
				if _, err := pop.StrategyByName(arg); err != nil {
					fmt.Println("error:", err)
					break
				}
				planner = arg
				fmt.Printf("planner is now %s\n", planner)
			}
		case line == `\metrics`:
			text, err := c.MetricsText()
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Print(text)
			}
		default:
			resp, err := c.QueryPlanner(line, planner)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			if !resp.OK {
				fmt.Printf("error (%s): %s\n", resp.Code, resp.Error)
				break
			}
			for _, row := range resp.Rows {
				fmt.Println(row)
			}
			if resp.RowCount > len(resp.Rows) {
				fmt.Printf("... (%d more rows)\n", resp.RowCount-len(resp.Rows))
			}
			fmt.Printf("-- %d rows, %.0f work units, %d re-optimization(s), %.1fms (%.1fms queued)\n",
				resp.RowCount, resp.Work, resp.Reopts,
				float64(resp.ElapsedNS)/1e6, float64(resp.WaitNS)/1e6)
			if resp.CacheHit {
				fmt.Println("-- plan cache HIT")
			}
			if resp.CacheInvalidated {
				fmt.Println("-- plan cache: violated plan invalidated")
			}
		}
		fmt.Print("popsql> ")
	}
}

// plannerCmd shows or sets the session's planner strategy. With no argument
// it lists every strategy, marking the active one; "default" (or "dp-pop")
// restores the engine default.
func (s *session) plannerCmd(arg string) {
	switch arg {
	case "":
		current := "dp-pop"
		if s.planner != nil {
			current = s.planner.Name()
		}
		for _, st := range pop.Strategies() {
			marker := "  "
			if st.Name() == current {
				marker = "* "
			}
			fmt.Printf("%s%-16s %s\n", marker, st.Name(), st.Describe())
		}
	case "default":
		s.planner = nil
		fmt.Println("planner is now dp-pop (default)")
	default:
		st, err := pop.StrategyByName(arg)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		s.planner = st
		fmt.Printf("planner is now %s\n", st.Name())
	}
}

// traceCmd arms or disarms the JSONL trace sink.
func (s *session) traceCmd(arg string) {
	switch arg {
	case "", "off":
		if s.jsonl == nil {
			fmt.Println("trace is off")
			return
		}
		n := s.jsonl.Events()
		s.stopTrace()
		fmt.Printf("trace stopped (%d events)\n", n)
	default:
		s.stopTrace()
		f, err := os.Create(arg)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		s.traceFile = f
		s.jsonl = trace.NewJSONL(f)
		fmt.Printf("tracing to %s\n", arg)
	}
}

// stopTrace flushes and closes the JSONL sink, if armed.
func (s *session) stopTrace() {
	if s.jsonl != nil {
		if err := s.jsonl.Flush(); err != nil {
			fmt.Println("trace error:", err)
		}
		s.jsonl = nil
	}
	if s.traceFile != nil {
		if err := s.traceFile.Close(); err != nil {
			fmt.Println("trace error:", err)
		}
		s.traceFile = nil
	}
}

func onOff(b bool) string {
	if b {
		return "ON"
	}
	return "OFF"
}

func explain(cat *catalog.Catalog, planner pop.Strategy, sql string) {
	q, err := sqlparse.Parse(cat, strings.TrimSuffix(sql, ";"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// Resolve the session's planner strategy so the shown plan — and its
	// checkpoint placement — matches what execute() would run.
	opts := pop.DefaultOptions()
	opts.Planner = planner
	opts = opts.Resolve()
	opt := optimizer.New(cat)
	if opts.Configure != nil {
		opts.Configure(opt)
	}
	plan, err := opt.Optimize(q)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	withChecks, n := pop.Place(plan, q, opts.Policy)
	fmt.Printf("-- plan (est cost %.0f, %d checkpoints):\n%s", plan.Cost, n, optimizer.Explain(withChecks, q))
}

// analyze is EXPLAIN ANALYZE: the statement runs under POP with per-operator
// attribution on, and every attempt's plan is printed with estimated vs
// actual rows, attributed work units, merged DOP, wall time and
// spill/violation flags — the per-operator view of the estimation errors POP
// reacts to.
func (s *session) analyze(sql string) {
	q, err := sqlparse.Parse(s.cat, strings.TrimSuffix(sql, ";"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	opts := pop.DefaultOptions()
	opts.Enabled = s.popOn
	opts.Planner = s.planner
	opts.Analyze = true
	opts.Trace = s.recorder()
	res, err := pop.NewRunner(s.cat, opts).Run(q, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for i, a := range res.Attempts {
		if len(res.Attempts) > 1 {
			fmt.Printf("-- attempt %d:\n", i)
		}
		if a.Stats != nil {
			fmt.Print(executor.FormatStats(a.Stats, q, executor.AnalyzeOptions{Wall: true}))
		}
		if a.Violation != nil {
			fmt.Printf("-- %v\n", a.Violation)
		}
	}
	fmt.Printf("-- %d rows, %.0f work units, %d re-optimization(s)\n", len(res.Rows), res.Work, res.Reopts)
}

func (s *session) execute(sql string) {
	q, err := sqlparse.Parse(s.cat, strings.TrimSuffix(sql, ";"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	opts := pop.DefaultOptions()
	opts.Enabled = s.popOn
	opts.Planner = s.planner
	opts.Trace = s.recorder()
	res, info, err := plancache.NewRunner(s.cache, s.cat, opts).Run(q, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	limit := 20
	for i, row := range res.Rows {
		if i >= limit {
			fmt.Printf("... (%d more rows)\n", len(res.Rows)-limit)
			break
		}
		fmt.Println(row)
	}
	fmt.Printf("-- %d rows, %.0f work units, %d re-optimization(s)\n", len(res.Rows), res.Work, res.Reopts)
	if info.Hit {
		fmt.Printf("-- plan cache HIT: optimization skipped (%d guard estimates, %d candidate costings saved)\n",
			info.OptWork, info.OptWorkSaved)
	} else {
		fmt.Printf("-- plan cache MISS: optimized %d candidates, plan cached\n", info.OptWork)
	}
	if info.Invalidated {
		fmt.Println("-- plan cache: violated plan invalidated, re-optimized plan cached")
	}
	if res.Reopts > 0 {
		for i, a := range res.Attempts {
			if a.Violation != nil {
				fmt.Printf("-- attempt %d: %v\n", i, a.Violation)
			}
		}
	}
}

// loadCSVDir loads every *.csv file in dir as a table named after the file.
func loadCSVDir(cat *catalog.Catalog, dir string) error {
	paths, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no *.csv files in %s", dir)
	}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(filepath.Base(path), ".csv")
		_, err = cat.LoadCSV(name, f)
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "popsql:", err)
	os.Exit(1)
}
