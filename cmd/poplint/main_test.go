package main

import "testing"

// TestMatchImportPath pins the -pkg pattern grammar, including the go-command
// convention that "/..." can match nothing, so a pattern like ".../server/..."
// selects repro/internal/server itself and not just its subpackages.
func TestMatchImportPath(t *testing.T) {
	cases := []struct {
		path, pattern string
		want          bool
	}{
		{"repro/internal/executor", "repro/internal/executor", true},
		{"repro/internal/executor", "repro/internal/exec", false},
		{"repro/internal/executor", "...", true},
		{"repro/internal/executor", "repro/...", true},
		{"repro", "repro/...", true},
		{"repro/internal/server", ".../server/...", true},
		{"repro/internal/server/sub", ".../server/...", true},
		{"repro/internal/serverless", ".../server/...", false},
		{"repro/internal/server", ".../server", true},
		{"repro/internal/executor", ".../server/...", false},
		{"repro/internal/lint", "repro/.../lint", true},
		{"repro/lint", "repro/.../lint", true},
		{"other/internal/lint", "repro/...", false},
		{"repro/internal/lint", "repro/internal/...", true},
	}
	for _, c := range cases {
		if got := matchImportPath(c.path, c.pattern); got != c.want {
			t.Errorf("matchImportPath(%q, %q) = %v, want %v", c.path, c.pattern, got, c.want)
		}
	}
}
