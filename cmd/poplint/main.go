// Command poplint runs the POP static-analysis suite over the module:
// pure-stdlib analyzers enforcing the determinism, error-accounting, and
// concurrency invariants the reproduction's claims rest on.
//
// Usage:
//
//	go run ./cmd/poplint ./...          # whole module (the CI gate)
//	go run ./cmd/poplint ./internal/... # a subtree
//	go run ./cmd/poplint -v ./...       # also list suppressed findings
//	go run ./cmd/poplint -json ./...    # machine-readable findings
//	go run ./cmd/poplint -rules         # describe the analyzers and exit
//	go run ./cmd/poplint -counts ./...  # per-rule tallies (CI summary)
//
//	go run ./cmd/poplint -pkg 'repro/internal/executor' ./...
//	go run ./cmd/poplint -pkg '.../server/...' ./...
//
// -pkg restricts *reporting* to packages whose import path matches the
// pattern ("..." matches any substring, Go-style), without shrinking the
// analysis: the whole program named by the patterns is still loaded, so
// whole-program rules (call-graph reachability, retain fixpoints, close
// witnesses) keep their precision — only the findings are filtered. This is
// what makes it safe for focused pre-commit runs: a clean filtered run over
// a package means exactly what the full gate would say about that package.
//
// Each finding prints as "file:line: [rule] message"; -json emits the same
// findings as a sorted JSON array (a stable, byte-identical encoding for a
// given tree, for editor and CI integrations). Exit status is 0 when
// clean, 1 when any finding survives, 2 on load or type-check errors.
// Sites opt out with `//poplint:allow <rule> <reason>` on (or directly
// above) the offending line; see internal/lint for the grammar.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"repro/internal/lint"
)

func main() {
	verbose := flag.Bool("v", false, "also print findings suppressed by //poplint:allow annotations")
	jsonOut := flag.Bool("json", false, "emit findings as a sorted JSON array on stdout")
	rules := flag.Bool("rules", false, "describe the analyzers and exit")
	pkgPat := flag.String("pkg", "", "report only findings in packages whose import path matches this pattern (\"...\" wildcards); the full program is still analyzed")
	counts := flag.Bool("counts", false, "print per-rule finding and suppression tallies on stderr, clean runs included")
	flag.Parse()

	if *rules {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	ld, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "poplint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := ld.LoadPatterns(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "poplint:", err)
		os.Exit(2)
	}
	if errs := ld.Errors(); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "poplint: load:", e)
		}
		os.Exit(2)
	}

	findings, suppressed := lint.Run(prog, lint.Analyzers(), lint.Options{})
	if *pkgPat != "" {
		keep := filesOfMatchingPackages(prog, *pkgPat)
		findings = filterByFile(findings, keep)
		suppressed = filterByFile(suppressed, keep)
	}
	cwd, _ := os.Getwd()
	for i := range findings {
		findings[i] = relativize(cwd, findings[i])
	}
	if *jsonOut {
		if err := lint.EncodeJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "poplint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
		if *verbose {
			for _, f := range suppressed {
				fmt.Printf("%s (suppressed)\n", relativize(cwd, f).String())
			}
		}
	}
	if *counts {
		fmt.Fprintf(os.Stderr, "poplint: %d finding(s), %d suppressed, %d package(s)\n",
			len(findings), len(suppressed), len(prog.Packages))
		for _, rc := range lint.RuleCounts(findings) {
			fmt.Fprintf(os.Stderr, "poplint:   %-16s %d\n", rc.Rule, rc.Count)
		}
		for _, rc := range lint.RuleCounts(suppressed) {
			fmt.Fprintf(os.Stderr, "poplint:   %-16s %d suppressed\n", rc.Rule, rc.Count)
		}
	}
	if len(findings) > 0 {
		if !*counts {
			fmt.Fprintf(os.Stderr, "poplint: %d finding(s) in %d package(s)\n", len(findings), len(prog.Packages))
			for _, rc := range lint.RuleCounts(findings) {
				fmt.Fprintf(os.Stderr, "poplint:   %-16s %d\n", rc.Rule, rc.Count)
			}
		}
		os.Exit(1)
	}
}

// filesOfMatchingPackages collects the source filenames of every loaded
// package whose import path matches pattern.
func filesOfMatchingPackages(prog *lint.Program, pattern string) map[string]bool {
	keep := map[string]bool{}
	for _, pkg := range prog.Packages {
		if !matchImportPath(pkg.Path, pattern) {
			continue
		}
		for name := range pkg.Sources {
			keep[name] = true
		}
	}
	return keep
}

func filterByFile(fs []lint.Finding, keep map[string]bool) []lint.Finding {
	out := fs[:0]
	for _, f := range fs {
		if keep[f.Pos.Filename] {
			out = append(out, f)
		}
	}
	return out
}

// matchImportPath matches a Go-style package pattern against an import
// path: "..." matches any (possibly empty) substring, and — as in the go
// command — a "/..." can match nothing, so ".../server/..." matches
// "repro/internal/server" itself, not just its subpackages. A pattern
// without "..." must match the whole path exactly.
func matchImportPath(path, pattern string) bool {
	re := regexp.QuoteMeta(pattern)
	if strings.HasSuffix(re, `/\.\.\.`) {
		re = strings.TrimSuffix(re, `/\.\.\.`) + `(/.*)?`
	}
	if strings.HasPrefix(re, `\.\.\./`) {
		re = `(.*/)?` + strings.TrimPrefix(re, `\.\.\./`)
	}
	re = strings.ReplaceAll(re, `/\.\.\./`, `(/.*)?/`)
	re = strings.ReplaceAll(re, `\.\.\.`, `.*`)
	ok, err := regexp.MatchString("^"+re+"$", path)
	return err == nil && ok
}

// relativize rewrites the finding's filename relative to cwd when possible,
// for stable, readable CI output.
func relativize(cwd string, f lint.Finding) lint.Finding {
	if cwd == "" {
		return f
	}
	if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
		f.Pos.Filename = rel
	}
	return f
}
