// Command popbench regenerates every table and figure of the paper's
// evaluation (§5, §6) on the synthetic substrates. All numbers are
// deterministic simulated work units; see DESIGN.md for the substitutions.
//
// Usage:
//
//	popbench -all                 # every experiment
//	popbench -fig 11 -steps 10    # one figure
//	popbench -table 1
//	popbench -fig 15 -dmvscale 1 -queries 39
//	popbench -parallel            # parallel-runtime study → BENCH_parallel.json
//	popbench -plancache           # plan-cache study → BENCH_plancache.json
//	popbench -observability       # tracing-overhead study → BENCH_observability.json
//	popbench -batch               # batch-execution study → BENCH_batch.json
//	popbench -server              # multi-client serving study → BENCH_server.json
//	popbench -server -smoke       # shrunken serving study for CI
//	popbench -planners            # planner shootout → BENCH_planners.json
//	popbench -planners -smoke     # shrunken shootout for CI
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/catalog"
	"repro/internal/dmv"
	"repro/internal/harness"
	"repro/internal/tpch"
)

func main() {
	var (
		fig      = flag.Int("fig", 0, "figure to regenerate (11-16); 0 with -all runs everything")
		table    = flag.Int("table", 0, "table to regenerate (1)")
		all      = flag.Bool("all", false, "run every experiment")
		sf       = flag.Float64("sf", 0.005, "TPC-H scale factor (SF1 = 6M lineitems)")
		dmvScale = flag.Float64("dmvscale", 0.5, "DMV database scale (1.0 = 30k cars)")
		steps    = flag.Int("steps", 10, "selectivity steps for figure 11")
		nq       = flag.Int("queries", dmv.NumQueries, "number of DMV queries for figures 15/16")
		parallel = flag.Bool("parallel", false, "run the parallel-runtime study")
		parOut   = flag.String("parout", "BENCH_parallel.json", "output path for the parallel study JSON")
		pcache   = flag.Bool("plancache", false, "run the plan-cache study")
		pcOut    = flag.String("plancacheout", "BENCH_plancache.json", "output path for the plan-cache study JSON")
		sweeps   = flag.Int("sweeps", 3, "binding sweeps for the plan-cache and observability studies")
		obs      = flag.Bool("observability", false, "run the tracing-overhead study")
		obsOut   = flag.String("obsout", "BENCH_observability.json", "output path for the observability study JSON")
		batch    = flag.Bool("batch", false, "run the batch-execution study (row vs batch sizes × DOPs)")
		batchOut = flag.String("batchout", "BENCH_batch.json", "output path for the batch study JSON")
		srv      = flag.Bool("server", false, "run the multi-client serving study (work identity + open/closed-loop load matrix)")
		srvOut   = flag.String("serverout", "BENCH_server.json", "output path for the serving study JSON")
		planners = flag.Bool("planners", false, "run the planner shootout (dp-pop vs greedy vs unguarded reopt across TPC-H, DMV, skew)")
		planOut  = flag.String("plannersout", "BENCH_planners.json", "output path for the planner shootout JSON")
		smoke    = flag.Bool("smoke", false, "shrink the serving and planner studies (CI smoke)")
	)
	flag.Parse()

	if !*all && *fig == 0 && *table == 0 && !*parallel && !*pcache && !*obs && !*batch && !*srv && !*planners {
		flag.Usage()
		os.Exit(2)
	}

	var tpchCat *catalog.Catalog
	loadTPCH := func() *catalog.Catalog {
		if tpchCat == nil {
			start := time.Now()
			tpchCat = catalog.New()
			if err := tpch.Load(tpchCat, tpch.Config{ScaleFactor: *sf, Seed: 42}); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "loaded TPC-H SF=%g in %v\n", *sf, time.Since(start).Round(time.Millisecond))
		}
		return tpchCat
	}

	run := func(n int) {
		switch n {
		case 11:
			points, err := harness.Fig11(loadTPCH(), *steps)
			if err != nil {
				fatal(err)
			}
			harness.WriteFig11(os.Stdout, points)
		case 12:
			bars, err := harness.Fig12(loadTPCH())
			if err != nil {
				fatal(err)
			}
			harness.WriteFig12(os.Stdout, bars)
		case 13:
			rows, err := harness.Fig13(loadTPCH())
			if err != nil {
				fatal(err)
			}
			harness.WriteFig13(os.Stdout, rows)
		case 14:
			points, err := harness.Fig14(loadTPCH())
			if err != nil {
				fatal(err)
			}
			harness.WriteFig14(os.Stdout, points)
		case 15, 16:
			start := time.Now()
			cat := catalog.New()
			if err := dmv.Load(cat, dmv.Config{Scale: *dmvScale, Seed: 17}); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "loaded DMV scale=%g in %v\n", *dmvScale, time.Since(start).Round(time.Millisecond))
			qs, err := dmv.Queries(cat)
			if err != nil {
				fatal(err)
			}
			if *nq < len(qs) {
				qs = qs[:*nq]
			}
			results, err := harness.DMVStudy(cat, qs)
			if err != nil {
				fatal(err)
			}
			if n == 15 {
				harness.WriteFig15(os.Stdout, results)
			} else {
				harness.WriteFig16(os.Stdout, results)
			}
		default:
			fatal(fmt.Errorf("unknown figure %d (supported: 11-16)", n))
		}
		fmt.Println()
	}

	runParallel := func() {
		// The study wants enough rows per morsel stripe for scaling to show
		// over exchange setup, so it loads its own larger instance.
		start := time.Now()
		cat := catalog.New()
		if err := tpch.Load(cat, tpch.Config{ScaleFactor: 0.02, Seed: 7}); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded TPC-H SF=0.02 in %v\n", time.Since(start).Round(time.Millisecond))
		points, err := harness.ParallelStudy(cat)
		if err != nil {
			fatal(err)
		}
		harness.WriteParallel(os.Stdout, points)
		f, err := os.Create(*parOut)
		if err != nil {
			fatal(err)
		}
		if err := harness.WriteParallelJSON(f, points); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *parOut)
	}

	runPlanCache := func() {
		res, err := harness.PlanCacheStudy(loadTPCH(), *sweeps)
		if err != nil {
			fatal(err)
		}
		harness.WritePlanCache(os.Stdout, res)
		f, err := os.Create(*pcOut)
		if err != nil {
			fatal(err)
		}
		if err := harness.WritePlanCacheJSON(f, res); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *pcOut)
	}

	runObservability := func() {
		res, err := harness.ObservabilityStudy(loadTPCH(), *sweeps)
		if err != nil {
			fatal(err)
		}
		harness.WriteObservability(os.Stdout, res)
		f, err := os.Create(*obsOut)
		if err != nil {
			fatal(err)
		}
		if err := harness.WriteObservabilityJSON(f, res); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *obsOut)
	}

	runBatch := func() {
		res, err := harness.BatchStudy(loadTPCH(), *sweeps)
		if err != nil {
			fatal(err)
		}
		harness.WriteBatch(os.Stdout, res)
		f, err := os.Create(*batchOut)
		if err != nil {
			fatal(err)
		}
		if err := harness.WriteBatchJSON(f, res); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *batchOut)
	}

	runServer := func() {
		res, err := harness.ServerStudy(loadTPCH(), *smoke)
		if err != nil {
			fatal(err)
		}
		harness.WriteServer(os.Stdout, res)
		f, err := os.Create(*srvOut)
		if err != nil {
			fatal(err)
		}
		if err := harness.WriteServerJSON(f, res); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *srvOut)
	}

	runPlanners := func() {
		res, err := harness.PlannerStudy(loadTPCH(), *dmvScale, *smoke)
		if err != nil {
			fatal(err)
		}
		harness.WritePlanners(os.Stdout, res)
		f, err := os.Create(*planOut)
		if err != nil {
			fatal(err)
		}
		if err := harness.WritePlannersJSON(f, res); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *planOut)
	}

	if *all {
		harness.WriteTable1(os.Stdout)
		fmt.Println()
		for _, n := range []int{11, 12, 13, 14, 15, 16} {
			run(n)
		}
		runParallel()
		fmt.Println()
		runPlanCache()
		fmt.Println()
		runObservability()
		fmt.Println()
		runBatch()
		fmt.Println()
		runServer()
		fmt.Println()
		runPlanners()
		return
	}
	if *table == 1 {
		harness.WriteTable1(os.Stdout)
		fmt.Println()
	} else if *table != 0 {
		fatal(fmt.Errorf("unknown table %d (supported: 1)", *table))
	}
	if *fig != 0 {
		run(*fig)
	}
	if *parallel {
		runParallel()
	}
	if *pcache {
		runPlanCache()
	}
	if *obs {
		runObservability()
	}
	if *batch {
		runBatch()
	}
	if *srv {
		runServer()
	}
	if *planners {
		runPlanners()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "popbench:", err)
	os.Exit(1)
}
