// Package stats implements the statistics substrate of the optimizer:
// equi-depth histograms, per-column statistics, selectivity estimation and
// the cardinality-feedback cache that re-optimization feeds with actual
// cardinalities.
//
// The estimator deliberately uses the textbook independence assumption when
// combining predicate selectivities. That is not a shortcut — it reproduces
// the estimation pathology (correlated predicates → severe under-estimates)
// that the paper's DMV case study exploits and that POP exists to correct.
package stats

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/types"
)

// DefaultBucketCount is the number of equi-depth buckets built per column.
const DefaultBucketCount = 32

// Bucket is one equi-depth histogram bucket: all values v with
// prevUpper < v <= Upper (the first bucket also includes its lower bound).
type Bucket struct {
	Upper    types.Datum
	Count    float64 // rows in the bucket
	Distinct float64 // distinct values in the bucket
}

// Histogram is an equi-depth histogram over the non-NULL values of a column.
type Histogram struct {
	Buckets []Bucket
	Total   float64 // total non-NULL rows
	Min     types.Datum
	Max     types.Datum
}

// BuildHistogram constructs an equi-depth histogram with at most maxBuckets
// buckets from the given values. The input slice is sorted in place.
func BuildHistogram(values []types.Datum, maxBuckets int) *Histogram {
	if maxBuckets <= 0 {
		maxBuckets = DefaultBucketCount
	}
	if len(values) == 0 {
		return &Histogram{Min: types.Null, Max: types.Null}
	}
	sort.Slice(values, func(i, j int) bool { return values[i].MustCompare(values[j]) < 0 })
	h := &Histogram{
		Total: float64(len(values)),
		Min:   values[0],
		Max:   values[len(values)-1],
	}
	target := (len(values) + maxBuckets - 1) / maxBuckets
	if target < 1 {
		target = 1
	}
	// Walk runs of equal values. A run never straddles a bucket boundary, and
	// a run at least as large as the target gets a bucket of its own, so
	// heavy hitters keep an accurate per-value density (end-biased
	// equi-depth). At most 2×maxBuckets buckets result.
	bStart, bDistinct := 0, 0.0
	flush := func(end int) {
		if end > bStart {
			h.Buckets = append(h.Buckets, Bucket{
				Upper:    values[end-1],
				Count:    float64(end - bStart),
				Distinct: bDistinct,
			})
		}
		bStart, bDistinct = end, 0
	}
	i := 0
	for i < len(values) {
		j := i + 1
		for j < len(values) && values[j].MustCompare(values[i]) == 0 {
			j++
		}
		runLen := j - i
		if runLen >= target && i > bStart {
			flush(i) // close the partial bucket before the heavy run
		}
		bDistinct++
		if j-bStart >= target {
			flush(j)
		}
		i = j
	}
	flush(len(values))
	return h
}

// DistinctCount returns the estimated number of distinct values.
func (h *Histogram) DistinctCount() float64 {
	d := 0.0
	for _, b := range h.Buckets {
		d += b.Distinct
	}
	return d
}

// SelectivityEq estimates the fraction of non-NULL rows equal to v: the
// containing bucket's density (count/distinct) over the total.
func (h *Histogram) SelectivityEq(v types.Datum) float64 {
	if h.Total == 0 || len(h.Buckets) == 0 || v.IsNull() {
		return 0
	}
	if c, err := v.Compare(h.Min); err != nil || c < 0 {
		return 0
	}
	if c, err := v.Compare(h.Max); err != nil || c > 0 {
		return 0
	}
	b := h.bucketFor(v)
	if b == nil || b.Distinct == 0 {
		return 0
	}
	return (b.Count / b.Distinct) / h.Total
}

// SelectivityLT estimates the fraction of non-NULL rows with value < v
// (or <= v when inclusive). Within the boundary bucket the estimate
// interpolates linearly on SortValue.
func (h *Histogram) SelectivityLT(v types.Datum, inclusive bool) float64 {
	if h.Total == 0 || len(h.Buckets) == 0 || v.IsNull() {
		return 0
	}
	if c, err := v.Compare(h.Min); err != nil {
		return 0.5 // incomparable: shrug
	} else if c < 0 || (c == 0 && !inclusive) {
		return 0
	}
	if c, _ := v.Compare(h.Max); c > 0 || (c == 0 && inclusive) {
		return 1
	}
	acc := 0.0
	lower := h.Min
	for _, b := range h.Buckets {
		c := v.MustCompare(b.Upper)
		if c > 0 {
			acc += b.Count
			lower = b.Upper
			continue
		}
		if c == 0 {
			// v is exactly the bucket's upper bound: the whole bucket is
			// <= v; for a strict comparison exclude the = v sliver (the
			// entire bucket, when it holds a single heavy value).
			if inclusive {
				acc += b.Count
			} else if b.Distinct > 0 {
				acc += b.Count - b.Count/b.Distinct
			}
			break
		}
		// v falls strictly inside this bucket: interpolate.
		lo, hi := lower.SortValue(), b.Upper.SortValue()
		frac := 0.5
		if hi > lo {
			frac = (v.SortValue() - lo) / (hi - lo)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
		}
		acc += b.Count * frac
		if inclusive && b.Distinct > 0 {
			acc += b.Count / b.Distinct // include the = v sliver
		}
		break
	}
	s := acc / h.Total
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// SelectivityRange estimates the fraction of rows in (lo,hi) with the given
// inclusivities; nil bounds are unbounded.
func (h *Histogram) SelectivityRange(lo, hi *types.Datum, loInc, hiInc bool) float64 {
	upper := 1.0
	if hi != nil {
		upper = h.SelectivityLT(*hi, hiInc)
	}
	lower := 0.0
	if lo != nil {
		lower = h.SelectivityLT(*lo, !loInc)
	}
	s := upper - lower
	if s < 0 {
		return 0
	}
	return s
}

func (h *Histogram) bucketFor(v types.Datum) *Bucket {
	lo, hi := 0, len(h.Buckets)
	for lo < hi {
		m := (lo + hi) / 2
		if h.Buckets[m].Upper.MustCompare(v) < 0 {
			lo = m + 1
		} else {
			hi = m
		}
	}
	if lo >= len(h.Buckets) {
		return nil
	}
	return &h.Buckets[lo]
}

// String renders a compact summary for EXPLAIN output.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hist{n=%.0f buckets=%d min=%s max=%s}", h.Total, len(h.Buckets), h.Min, h.Max)
	return b.String()
}
