package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/expr"
	"repro/internal/types"
)

func intVals(vals ...int64) []types.Datum {
	out := make([]types.Datum, len(vals))
	for i, v := range vals {
		out[i] = types.NewInt(v)
	}
	return out
}

func seqVals(n int) []types.Datum {
	out := make([]types.Datum, n)
	for i := range out {
		out[i] = types.NewInt(int64(i))
	}
	return out
}

func TestBuildHistogramEmpty(t *testing.T) {
	h := BuildHistogram(nil, 8)
	if h.Total != 0 || len(h.Buckets) != 0 {
		t.Error("empty histogram should have no buckets")
	}
	if h.SelectivityEq(types.NewInt(1)) != 0 {
		t.Error("eq on empty should be 0")
	}
	if h.SelectivityLT(types.NewInt(1), true) != 0 {
		t.Error("lt on empty should be 0")
	}
}

func TestHistogramBucketInvariants(t *testing.T) {
	h := BuildHistogram(seqVals(1000), 16)
	if h.Total != 1000 {
		t.Errorf("total = %v", h.Total)
	}
	if len(h.Buckets) == 0 || len(h.Buckets) > 17 {
		t.Errorf("bucket count = %d", len(h.Buckets))
	}
	sum := 0.0
	prev := types.Null
	for i, b := range h.Buckets {
		sum += b.Count
		if i > 0 && b.Upper.MustCompare(prev) <= 0 {
			t.Error("bucket uppers must strictly increase")
		}
		prev = b.Upper
		if b.Distinct <= 0 || b.Distinct > b.Count {
			t.Errorf("bucket %d distinct=%v count=%v", i, b.Distinct, b.Count)
		}
	}
	if sum != h.Total {
		t.Errorf("bucket counts sum to %v, want %v", sum, h.Total)
	}
	if h.Min.Int() != 0 || h.Max.Int() != 999 {
		t.Errorf("min/max = %v/%v", h.Min, h.Max)
	}
	if d := h.DistinctCount(); math.Abs(d-1000) > 1 {
		t.Errorf("distinct = %v, want ~1000", d)
	}
}

func TestHistogramEqualValuesDoNotStraddle(t *testing.T) {
	// 500 copies of one value plus scattered others.
	vals := make([]types.Datum, 0, 600)
	for i := 0; i < 500; i++ {
		vals = append(vals, types.NewInt(42))
	}
	for i := 0; i < 100; i++ {
		vals = append(vals, types.NewInt(int64(i)))
	}
	h := BuildHistogram(vals, 8)
	// Eq selectivity for the heavy hitter should be near 500/600.
	s := h.SelectivityEq(types.NewInt(42))
	if s < 0.5 || s > 1 {
		t.Errorf("heavy-hitter selectivity = %v, want ~0.83", s)
	}
}

func TestHistogramSelectivityEq(t *testing.T) {
	h := BuildHistogram(seqVals(1000), 16)
	s := h.SelectivityEq(types.NewInt(500))
	if s < 0.0005 || s > 0.005 {
		t.Errorf("eq selectivity = %v, want ~0.001", s)
	}
	if h.SelectivityEq(types.NewInt(-5)) != 0 {
		t.Error("below-min eq should be 0")
	}
	if h.SelectivityEq(types.NewInt(5000)) != 0 {
		t.Error("above-max eq should be 0")
	}
	if h.SelectivityEq(types.Null) != 0 {
		t.Error("NULL eq should be 0")
	}
}

func TestHistogramSelectivityLT(t *testing.T) {
	h := BuildHistogram(seqVals(1000), 16)
	cases := []struct {
		v        int64
		expected float64
		slack    float64
	}{
		{0, 0, 0.01},
		{250, 0.25, 0.05},
		{500, 0.5, 0.05},
		{750, 0.75, 0.05},
		{999, 1.0, 0.05},
	}
	for _, c := range cases {
		got := h.SelectivityLT(types.NewInt(c.v), false)
		if math.Abs(got-c.expected) > c.slack {
			t.Errorf("sel(< %d) = %v, want %v±%v", c.v, got, c.expected, c.slack)
		}
	}
	if h.SelectivityLT(types.NewInt(-1), true) != 0 {
		t.Error("below min should be 0")
	}
	if h.SelectivityLT(types.NewInt(2000), true) != 1 {
		t.Error("above max should be 1")
	}
	if h.SelectivityLT(types.NewInt(999), true) != 1 {
		t.Error("<= max should be 1")
	}
}

func TestHistogramSelectivityRange(t *testing.T) {
	h := BuildHistogram(seqVals(1000), 16)
	lo, hi := types.NewInt(200), types.NewInt(400)
	s := h.SelectivityRange(&lo, &hi, true, false)
	if math.Abs(s-0.2) > 0.05 {
		t.Errorf("range [200,400) = %v, want ~0.2", s)
	}
	// Inverted range clamps to 0.
	s = h.SelectivityRange(&hi, &lo, true, true)
	if s != 0 {
		t.Errorf("inverted range = %v", s)
	}
	// Unbounded both sides = 1.
	if h.SelectivityRange(nil, nil, false, false) != 1 {
		t.Error("unbounded range should be 1")
	}
}

func TestBuildColumnStats(t *testing.T) {
	vals := append(seqVals(90), make([]types.Datum, 10)...) // 10 NULLs
	cs := BuildColumnStats(vals, 8)
	if cs.RowCount != 100 {
		t.Errorf("rowcount = %v", cs.RowCount)
	}
	if math.Abs(cs.NullFraction-0.1) > 1e-9 {
		t.Errorf("null fraction = %v", cs.NullFraction)
	}
	if math.Abs(cs.Distinct-90) > 1 {
		t.Errorf("distinct = %v", cs.Distinct)
	}
	if cs.Min.Int() != 0 || cs.Max.Int() != 89 {
		t.Errorf("min/max = %v/%v", cs.Min, cs.Max)
	}
}

func TestColumnStatsAllNull(t *testing.T) {
	cs := BuildColumnStats(make([]types.Datum, 5), 8)
	if cs.NullFraction != 1 {
		t.Errorf("null fraction = %v", cs.NullFraction)
	}
	if s := cs.SelectivityEq(types.NewInt(1)); s != 0 {
		t.Errorf("eq on all-null = %v", s)
	}
}

func TestColumnStatsMCV(t *testing.T) {
	vals := make([]types.Datum, 0, 1000)
	for i := 0; i < 600; i++ {
		vals = append(vals, types.NewString("RED"))
	}
	for i := 0; i < 300; i++ {
		vals = append(vals, types.NewString("BLUE"))
	}
	for i := 0; i < 100; i++ {
		vals = append(vals, types.NewString("GREEN"))
	}
	cs := BuildColumnStats(vals, 8)
	if len(cs.MCV) < 3 {
		t.Fatalf("MCV entries = %d", len(cs.MCV))
	}
	if cs.MCV[0].Value.Str() != "RED" || math.Abs(cs.MCV[0].Freq-0.6) > 0.01 {
		t.Errorf("top MCV = %v", cs.MCV[0])
	}
	// Eq selectivity through MCV path.
	if s := cs.SelectivityEq(types.NewString("RED")); math.Abs(s-0.6) > 0.01 {
		t.Errorf("sel(RED) = %v", s)
	}
	if s := cs.SelectivityEq(types.NewString("BLUE")); math.Abs(s-0.3) > 0.01 {
		t.Errorf("sel(BLUE) = %v", s)
	}
}

func lookupFor(cs *ColumnStats) Lookup {
	return func(pos int) *ColumnStats {
		if pos == 0 {
			return cs
		}
		return nil
	}
}

func TestSelectivityComparison(t *testing.T) {
	cs := BuildColumnStats(seqVals(1000), 16)
	lk := lookupFor(cs)
	col := &expr.ColRef{Pos: 0}

	s := Selectivity(&expr.Cmp{Op: expr.LT, L: col, R: &expr.Const{Val: types.NewInt(100)}}, lk)
	if math.Abs(s-0.1) > 0.05 {
		t.Errorf("sel(col<100) = %v, want ~0.1", s)
	}
	// Constant-on-left flips the operator.
	s2 := Selectivity(&expr.Cmp{Op: expr.GT, L: &expr.Const{Val: types.NewInt(100)}, R: col}, lk)
	if math.Abs(s-s2) > 1e-9 {
		t.Errorf("flipped comparison mismatch: %v vs %v", s, s2)
	}
	sEq := Selectivity(&expr.Cmp{Op: expr.EQ, L: col, R: &expr.Const{Val: types.NewInt(5)}}, lk)
	if sEq > 0.01 {
		t.Errorf("sel(col=5) = %v, want tiny", sEq)
	}
	sNe := Selectivity(&expr.Cmp{Op: expr.NE, L: col, R: &expr.Const{Val: types.NewInt(5)}}, lk)
	if sNe < 0.9 {
		t.Errorf("sel(col<>5) = %v, want ~1", sNe)
	}
	sGe := Selectivity(&expr.Cmp{Op: expr.GE, L: col, R: &expr.Const{Val: types.NewInt(900)}}, lk)
	if math.Abs(sGe-0.1) > 0.05 {
		t.Errorf("sel(col>=900) = %v, want ~0.1", sGe)
	}
	sLe := Selectivity(&expr.Cmp{Op: expr.LE, L: col, R: &expr.Const{Val: types.NewInt(99)}}, lk)
	if math.Abs(sLe-0.1) > 0.05 {
		t.Errorf("sel(col<=99) = %v, want ~0.1", sLe)
	}
}

func TestSelectivityParamMarkerUsesDefault(t *testing.T) {
	cs := BuildColumnStats(seqVals(1000), 16)
	lk := lookupFor(cs)
	col := &expr.ColRef{Pos: 0}
	s := Selectivity(&expr.Cmp{Op: expr.EQ, L: col, R: &expr.Param{ID: 0}}, lk)
	if s != DefaultEqSelectivity {
		t.Errorf("param eq selectivity = %v, want default %v", s, DefaultEqSelectivity)
	}
	s = Selectivity(&expr.Cmp{Op: expr.LE, L: col, R: &expr.Param{ID: 0}}, lk)
	if s != DefaultRangeSelectivity {
		t.Errorf("param range selectivity = %v, want default %v", s, DefaultRangeSelectivity)
	}
}

func TestSelectivityIndependenceAssumption(t *testing.T) {
	cs := BuildColumnStats(seqVals(1000), 16)
	lk := func(pos int) *ColumnStats { return cs }
	p1 := &expr.Cmp{Op: expr.LT, L: &expr.ColRef{Pos: 0}, R: &expr.Const{Val: types.NewInt(100)}}
	p2 := &expr.Cmp{Op: expr.LT, L: &expr.ColRef{Pos: 1}, R: &expr.Const{Val: types.NewInt(100)}}
	sAnd := Selectivity(&expr.Logic{Op: expr.And, Args: []expr.Expr{p1, p2}}, lk)
	s1 := Selectivity(p1, lk)
	if math.Abs(sAnd-s1*s1) > 1e-9 {
		t.Errorf("AND must multiply: %v vs %v", sAnd, s1*s1)
	}
	sOr := Selectivity(&expr.Logic{Op: expr.Or, Args: []expr.Expr{p1, p2}}, lk)
	want := s1 + s1 - s1*s1
	if math.Abs(sOr-want) > 1e-9 {
		t.Errorf("OR inclusion-exclusion: %v vs %v", sOr, want)
	}
	sNot := Selectivity(&expr.Not{E: p1}, lk)
	if math.Abs(sNot-(1-s1)) > 1e-9 {
		t.Errorf("NOT: %v vs %v", sNot, 1-s1)
	}
}

func TestSelectivityLike(t *testing.T) {
	vals := []types.Datum{
		types.NewString("apple"), types.NewString("apricot"), types.NewString("banana"),
		types.NewString("cherry"), types.NewString("avocado"), types.NewString("blueberry"),
		types.NewString("almond"), types.NewString("fig"), types.NewString("grape"), types.NewString("kiwi"),
	}
	cs := BuildColumnStats(vals, 4)
	lk := lookupFor(cs)
	col := &expr.ColRef{Pos: 0}

	sPrefix := Selectivity(expr.NewLike(col, "a%", false), lk)
	if math.Abs(sPrefix-0.4) > 0.25 {
		t.Errorf("sel(LIKE 'a%%') = %v, want ~0.4", sPrefix)
	}
	sFuzzy := Selectivity(expr.NewLike(col, "%rr%", false), lk)
	if sFuzzy != DefaultLikeFuzzySel {
		t.Errorf("fuzzy LIKE = %v, want default", sFuzzy)
	}
	sNeg := Selectivity(expr.NewLike(col, "%rr%", true), lk)
	if math.Abs(sNeg-(1-DefaultLikeFuzzySel)) > 1e-9 {
		t.Errorf("NOT LIKE = %v", sNeg)
	}
	// No stats → pure defaults.
	noLk := func(int) *ColumnStats { return nil }
	if Selectivity(expr.NewLike(col, "a%", false), noLk) != DefaultLikePrefixSel {
		t.Error("prefix default")
	}
	if Selectivity(expr.NewLike(col, "abc", false), noLk) != DefaultEqSelectivity {
		t.Error("exact default")
	}
}

func TestSelectivityInList(t *testing.T) {
	cs := BuildColumnStats(seqVals(100), 8)
	lk := lookupFor(cs)
	col := &expr.ColRef{Pos: 0}
	in := &expr.InList{Input: col, List: []expr.Expr{
		&expr.Const{Val: types.NewInt(1)},
		&expr.Const{Val: types.NewInt(2)},
		&expr.Const{Val: types.NewInt(3)},
	}}
	s := Selectivity(in, lk)
	if math.Abs(s-0.03) > 0.02 {
		t.Errorf("sel(IN 3 values) = %v, want ~0.03", s)
	}
}

func TestSelectivityIsNull(t *testing.T) {
	vals := append(seqVals(80), make([]types.Datum, 20)...)
	cs := BuildColumnStats(vals, 8)
	lk := lookupFor(cs)
	col := &expr.ColRef{Pos: 0}
	if s := Selectivity(&expr.IsNull{E: col}, lk); math.Abs(s-0.2) > 1e-9 {
		t.Errorf("IS NULL = %v, want 0.2", s)
	}
	if s := Selectivity(&expr.IsNull{E: col, Negate: true}, lk); math.Abs(s-0.8) > 1e-9 {
		t.Errorf("IS NOT NULL = %v, want 0.8", s)
	}
}

func TestSelectivityEquiColumns(t *testing.T) {
	csA := BuildColumnStats(seqVals(100), 8)  // 100 distinct
	csB := BuildColumnStats(seqVals(1000), 8) // 1000 distinct
	lk := func(pos int) *ColumnStats {
		if pos == 0 {
			return csA
		}
		return csB
	}
	s := Selectivity(&expr.Cmp{Op: expr.EQ, L: &expr.ColRef{Pos: 0}, R: &expr.ColRef{Pos: 1}}, lk)
	if math.Abs(s-0.001) > 1e-4 {
		t.Errorf("equi-col selectivity = %v, want 1/1000", s)
	}
}

func TestJoinSelectivity(t *testing.T) {
	csA := BuildColumnStats(seqVals(50), 8)
	csB := BuildColumnStats(seqVals(500), 8)
	if s := JoinSelectivity(csA, csB); math.Abs(s-1.0/500) > 1e-4 {
		t.Errorf("join sel = %v", s)
	}
	if s := JoinSelectivity(nil, nil); s != DefaultJoinSelectivity {
		t.Errorf("default join sel = %v", s)
	}
}

func TestSelectivityClamping(t *testing.T) {
	lk := func(int) *ColumnStats { return nil }
	// Huge IN list would exceed 1 without clamping.
	items := make([]expr.Expr, 100)
	for i := range items {
		items[i] = &expr.Const{Val: types.NewInt(int64(i))}
	}
	s := Selectivity(&expr.InList{Input: &expr.ColRef{Pos: 0}, List: items}, lk)
	if s > 1 {
		t.Errorf("selectivity must clamp to 1, got %v", s)
	}
	sTrue := Selectivity(&expr.Const{Val: types.NewBool(true)}, lk)
	if sTrue != 1 {
		t.Errorf("TRUE selectivity = %v", sTrue)
	}
	sFalse := Selectivity(&expr.Const{Val: types.NewBool(false)}, lk)
	if sFalse > 1e-8 {
		t.Errorf("FALSE selectivity = %v", sFalse)
	}
}

func TestFeedbackCache(t *testing.T) {
	f := NewFeedback()
	if _, ok := f.Get("sig1"); ok {
		t.Error("empty cache should miss")
	}
	f.Record("sig1", 123)
	f.Record("sig2", 456)
	if v, ok := f.Get("sig1"); !ok || v != 123 {
		t.Errorf("get sig1 = %v %v", v, ok)
	}
	f.Record("sig1", 999) // overwrite
	if v, _ := f.Get("sig1"); v != 999 {
		t.Error("overwrite failed")
	}
	if f.Len() != 2 {
		t.Errorf("len = %d", f.Len())
	}
	sigs := f.Signatures()
	if len(sigs) != 2 || sigs[0] != "sig1" || sigs[1] != "sig2" {
		t.Errorf("signatures = %v", sigs)
	}
	f.Clear()
	if f.Len() != 0 {
		t.Error("clear failed")
	}
}

// Property: SelectivityLT is monotone non-decreasing in its argument.
func TestSelectivityLTMonotoneProperty(t *testing.T) {
	h := BuildHistogram(seqVals(500), 16)
	f := func(a, b int16) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return h.SelectivityLT(types.NewInt(x), true) <= h.SelectivityLT(types.NewInt(y), true)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: all selectivities are within [0,1] for random range predicates.
func TestSelectivityBoundsProperty(t *testing.T) {
	cs := BuildColumnStats(seqVals(300), 8)
	lk := lookupFor(cs)
	f := func(v int32, opIdx uint8) bool {
		ops := []expr.CmpOp{expr.EQ, expr.NE, expr.LT, expr.LE, expr.GT, expr.GE}
		op := ops[int(opIdx)%len(ops)]
		e := &expr.Cmp{Op: op, L: &expr.ColRef{Pos: 0}, R: &expr.Const{Val: types.NewInt(int64(v))}}
		s := Selectivity(e, lk)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
