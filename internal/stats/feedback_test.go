package stats

import (
	"fmt"
	"sync"
	"testing"
)

func TestFeedbackRecordAndGet(t *testing.T) {
	f := NewFeedback()
	if _, ok := f.Get("x"); ok {
		t.Error("empty cache must not report entries")
	}
	f.Record("x", 42)
	if got, ok := f.Get("x"); !ok || got != 42 {
		t.Errorf("Get(x) = %v,%v", got, ok)
	}
	f.Record("x", 7) // latest observation wins
	if got, _ := f.Get("x"); got != 7 {
		t.Errorf("re-record should overwrite, got %v", got)
	}
	if f.Len() != 1 {
		t.Errorf("Len = %d", f.Len())
	}
	f.Clear()
	if f.Len() != 0 {
		t.Error("Clear must empty the cache")
	}
}

// TestFeedbackConcurrent validates (under -race) that one Feedback can be
// shared by concurrent statements — the plan cache stores one per entry and
// every execution of the statement reads and writes it.
func TestFeedbackConcurrent(t *testing.T) {
	f := NewFeedback()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sig := fmt.Sprintf("edge-%d", i%17)
				f.Record(sig, float64(g*1000+i))
				if card, ok := f.Get(sig); ok && card < 0 {
					t.Errorf("negative cardinality %v", card)
				}
				_ = f.Len()
				if i%50 == 0 {
					_ = f.Signatures()
				}
			}
		}(g)
	}
	wg.Wait()
	if f.Len() != 17 {
		t.Errorf("want 17 distinct signatures, got %d", f.Len())
	}
}
