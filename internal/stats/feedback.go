package stats

import (
	"sort"
	"sync"
)

// Feedback is the cardinality-feedback cache. During a POP re-optimization
// the runtime records the actual cardinality observed for each plan edge,
// keyed by the edge's signature (the set of joined tables plus the canonical
// text of the applied predicates). On recompilation the estimator consults
// the cache before falling back to statistics, so the mistake that triggered
// re-optimization is not repeated (paper §2, aspect 2).
type Feedback struct {
	mu sync.RWMutex
	m  map[string]float64
}

// NewFeedback returns an empty feedback cache.
func NewFeedback() *Feedback {
	return &Feedback{m: make(map[string]float64)}
}

// Record stores the actual cardinality for a plan-edge signature,
// overwriting any previous observation.
func (f *Feedback) Record(signature string, actualCard float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.m[signature] = actualCard
}

// Get returns the recorded actual cardinality for the signature.
func (f *Feedback) Get(signature string) (float64, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	v, ok := f.m[signature]
	return v, ok
}

// Len returns the number of recorded observations.
func (f *Feedback) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.m)
}

// Clear drops all observations (end of statement).
func (f *Feedback) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.m = make(map[string]float64)
}

// Signatures returns the recorded signatures in sorted order, for tests and
// diagnostics.
func (f *Feedback) Signatures() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, 0, len(f.m))
	for k := range f.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
