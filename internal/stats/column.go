package stats

import (
	"sort"

	"repro/internal/types"
)

// ValueFreq is one most-common-value entry.
type ValueFreq struct {
	Value types.Datum
	Freq  float64 // fraction of non-NULL rows
}

// ColumnStats summarizes one column for the estimator.
type ColumnStats struct {
	RowCount     float64 // total rows including NULLs
	NullFraction float64
	Distinct     float64
	Min, Max     types.Datum
	Hist         *Histogram
	MCV          []ValueFreq // descending by frequency
}

// DefaultMCVCount is the number of most-common values retained per column.
const DefaultMCVCount = 10

// BuildColumnStats computes full statistics for a column from its values
// (NULLs included in the input; they are counted and excluded from the
// histogram). The input slice is not preserved.
func BuildColumnStats(values []types.Datum, buckets int) *ColumnStats {
	cs := &ColumnStats{RowCount: float64(len(values)), Min: types.Null, Max: types.Null}
	nonNull := values[:0]
	nulls := 0
	for _, v := range values {
		if v.IsNull() {
			nulls++
		} else {
			nonNull = append(nonNull, v)
		}
	}
	if cs.RowCount > 0 {
		cs.NullFraction = float64(nulls) / cs.RowCount
	}
	if len(nonNull) == 0 {
		cs.Hist = &Histogram{Min: types.Null, Max: types.Null}
		return cs
	}
	cs.Hist = BuildHistogram(nonNull, buckets) // sorts nonNull
	cs.Min = cs.Hist.Min
	cs.Max = cs.Hist.Max
	cs.Distinct = cs.Hist.DistinctCount()

	// MCVs: one pass over the sorted values.
	type runEntry struct {
		v types.Datum
		n int
	}
	var runs []runEntry
	for i := 0; i < len(nonNull); {
		j := i + 1
		for j < len(nonNull) && nonNull[j].MustCompare(nonNull[i]) == 0 {
			j++
		}
		runs = append(runs, runEntry{nonNull[i], j - i})
		i = j
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].n > runs[j].n })
	k := DefaultMCVCount
	if k > len(runs) {
		k = len(runs)
	}
	for _, r := range runs[:k] {
		if r.n <= 1 && len(runs) > k {
			break // singletons are not "common"
		}
		cs.MCV = append(cs.MCV, ValueFreq{Value: r.v, Freq: float64(r.n) / float64(len(nonNull))})
	}
	return cs
}

// mcvFreq returns the MCV frequency for v, or (0,false) if v is not an MCV.
func (cs *ColumnStats) mcvFreq(v types.Datum) (float64, bool) {
	for _, m := range cs.MCV {
		if c, err := m.Value.Compare(v); err == nil && c == 0 {
			return m.Freq, true
		}
	}
	return 0, false
}

// NonNullFraction returns 1 - NullFraction.
func (cs *ColumnStats) NonNullFraction() float64 { return 1 - cs.NullFraction }

// SelectivityEq estimates the fraction of ALL rows (NULLs included) equal
// to v, preferring the MCV list over the histogram.
func (cs *ColumnStats) SelectivityEq(v types.Datum) float64 {
	if v.IsNull() {
		return 0
	}
	nn := cs.NonNullFraction()
	if nn <= 0 {
		return 0
	}
	if f, ok := cs.mcvFreq(v); ok {
		return f * nn
	}
	if cs.Hist != nil && cs.Hist.Total > 0 {
		return cs.Hist.SelectivityEq(v) * nn
	}
	if cs.Distinct > 0 {
		return nn / cs.Distinct
	}
	return DefaultEqSelectivity
}

// SelectivityRange estimates the fraction of all rows within (lo,hi).
func (cs *ColumnStats) SelectivityRange(lo, hi *types.Datum, loInc, hiInc bool) float64 {
	nn := cs.NonNullFraction()
	if cs.Hist != nil && cs.Hist.Total > 0 {
		return cs.Hist.SelectivityRange(lo, hi, loInc, hiInc) * nn
	}
	return DefaultRangeSelectivity
}
