package stats

import (
	"repro/internal/expr"
	"repro/internal/types"
)

// Default selectivities applied when a predicate cannot be estimated from
// statistics — unknown columns, parameter markers, fuzzy LIKEs. These mirror
// the classic Selinger-style defaults; parameter markers falling back to
// DefaultEqSelectivity is precisely the scenario of the paper's Figure 11.
const (
	DefaultEqSelectivity    = 0.04
	DefaultRangeSelectivity = 0.05
	DefaultLikePrefixSel    = 0.05
	DefaultLikeFuzzySel     = 0.10
	DefaultJoinSelectivity  = 0.01
)

// Lookup resolves a column position (query-global id at the logical level)
// to its statistics, or nil when unknown.
type Lookup func(pos int) *ColumnStats

// Selectivity estimates the fraction of rows satisfying the predicate.
// Conjuncts combine under the independence assumption; disjuncts use
// inclusion–exclusion. The result is clamped to [1e-9, 1].
func Selectivity(e expr.Expr, lookup Lookup) float64 {
	return clampSel(selectivity(e, lookup))
}

func clampSel(s float64) float64 {
	if s < 1e-9 {
		return 1e-9
	}
	if s > 1 {
		return 1
	}
	return s
}

func selectivity(e expr.Expr, lookup Lookup) float64 {
	switch n := e.(type) {
	case *expr.Logic:
		if n.Op == expr.And {
			s := 1.0
			for _, a := range n.Args {
				s *= selectivity(a, lookup) // independence assumption
			}
			return s
		}
		// OR via inclusion-exclusion, pairwise-independent.
		s := 0.0
		for _, a := range n.Args {
			sa := selectivity(a, lookup)
			s = s + sa - s*sa
		}
		return s
	case *expr.Not:
		return 1 - selectivity(n.E, lookup)
	case *expr.Cmp:
		return cmpSelectivity(n, lookup)
	case *expr.Like:
		s := likeSelectivity(n, lookup)
		if n.Negate {
			return 1 - s
		}
		return s
	case *expr.InList:
		return inListSelectivity(n, lookup)
	case *expr.IsNull:
		if col, ok := n.E.(*expr.ColRef); ok {
			if cs := lookup(col.Pos); cs != nil {
				if n.Negate {
					return cs.NonNullFraction()
				}
				return cs.NullFraction
			}
		}
		if n.Negate {
			return 0.9
		}
		return 0.1
	case *expr.Const:
		if n.Val.Kind() == types.KindBool {
			if n.Val.Bool() {
				return 1
			}
			return 0
		}
		return 1
	default:
		return DefaultRangeSelectivity
	}
}

// cmpSelectivity handles col-vs-constant, col-vs-param and col-vs-col.
func cmpSelectivity(c *expr.Cmp, lookup Lookup) float64 {
	col, constant, op, ok := normalizeCmp(c)
	if !ok {
		// col = col (a local or join predicate), or expression comparison.
		if _, _, isEqui := expr.EquiJoinColumns(c); isEqui {
			return equiColSelectivity(c, lookup)
		}
		if c.Op == expr.EQ {
			return DefaultEqSelectivity
		}
		return DefaultRangeSelectivity
	}
	cs := lookup(col.Pos)
	if constant == nil || cs == nil {
		// Parameter marker or unknown stats: defaults.
		if op == expr.EQ {
			return DefaultEqSelectivity
		}
		if op == expr.NE {
			return 1 - DefaultEqSelectivity
		}
		return DefaultRangeSelectivity
	}
	v := *constant
	switch op {
	case expr.EQ:
		return cs.SelectivityEq(v)
	case expr.NE:
		return cs.NonNullFraction() - cs.SelectivityEq(v)
	case expr.LT:
		return cs.SelectivityRange(nil, &v, false, false)
	case expr.LE:
		return cs.SelectivityRange(nil, &v, false, true)
	case expr.GT:
		return cs.SelectivityRange(&v, nil, false, false)
	case expr.GE:
		return cs.SelectivityRange(&v, nil, true, false)
	}
	return DefaultRangeSelectivity
}

// normalizeCmp rewrites the comparison into col-op-constant orientation.
// constant is nil when the non-column side is a parameter marker.
func normalizeCmp(c *expr.Cmp) (col *expr.ColRef, constant *types.Datum, op expr.CmpOp, ok bool) {
	if l, isCol := c.L.(*expr.ColRef); isCol {
		switch r := c.R.(type) {
		case *expr.Const:
			return l, &r.Val, c.Op, true
		case *expr.Param:
			return l, nil, c.Op, true
		}
	}
	if r, isCol := c.R.(*expr.ColRef); isCol {
		switch l := c.L.(type) {
		case *expr.Const:
			return r, &l.Val, c.Op.Flip(), true
		case *expr.Param:
			return r, nil, c.Op.Flip(), true
		}
	}
	return nil, nil, c.Op, false
}

// equiColSelectivity estimates colA = colB as 1/max(d_A, d_B) — the
// classical containment-of-values join selectivity.
func equiColSelectivity(c *expr.Cmp, lookup Lookup) float64 {
	l, r, _ := expr.EquiJoinColumns(c)
	dl, dr := 0.0, 0.0
	if cs := lookup(l); cs != nil {
		dl = cs.Distinct
	}
	if cs := lookup(r); cs != nil {
		dr = cs.Distinct
	}
	d := dl
	if dr > d {
		d = dr
	}
	if d <= 0 {
		return DefaultJoinSelectivity
	}
	return 1 / d
}

func likeSelectivity(l *expr.Like, lookup Lookup) float64 {
	col, ok := l.Input.(*expr.ColRef)
	hint := expr.LikeSelectivityHint(l.Pattern)
	if ok {
		if cs := lookup(col.Pos); cs != nil {
			switch hint {
			case "exact":
				return cs.SelectivityEq(types.NewString(l.Pattern))
			case "prefix":
				// Treat the prefix as a range [prefix, prefix+0xFF).
				p := l.Pattern[:len(l.Pattern)-1]
				lo := types.NewString(p)
				hi := types.NewString(p + "\xff")
				return cs.SelectivityRange(&lo, &hi, true, false)
			}
			// Fuzzy patterns are unestimable from a histogram: coarse
			// default — a deliberate estimation-error source (paper §6).
			return DefaultLikeFuzzySel
		}
	}
	switch hint {
	case "exact":
		return DefaultEqSelectivity
	case "prefix":
		return DefaultLikePrefixSel
	default:
		return DefaultLikeFuzzySel
	}
}

func inListSelectivity(in *expr.InList, lookup Lookup) float64 {
	col, ok := in.Input.(*expr.ColRef)
	var cs *ColumnStats
	if ok {
		cs = lookup(col.Pos)
	}
	s := 0.0
	for _, item := range in.List {
		if c, isConst := item.(*expr.Const); isConst && cs != nil {
			s += cs.SelectivityEq(c.Val)
		} else if cs != nil && cs.Distinct > 0 {
			s += cs.NonNullFraction() / cs.Distinct
		} else {
			s += DefaultEqSelectivity
		}
	}
	return s
}

// JoinSelectivity estimates the selectivity of an equi-join on the given
// column statistics (either may be nil): 1/max(distinct counts).
func JoinSelectivity(left, right *ColumnStats) float64 {
	d := 0.0
	if left != nil && left.Distinct > d {
		d = left.Distinct
	}
	if right != nil && right.Distinct > d {
		d = right.Distinct
	}
	if d <= 0 {
		return DefaultJoinSelectivity
	}
	return 1 / d
}
