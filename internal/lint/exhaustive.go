package lint

// exhaustive: a switch over a module-declared enum-like constant set must
// either cover every declared constant or carry a default clause.
//
// "Enum-like" is structural: the switch tag's type is a named type declared
// inside the module whose underlying type is a basic string or integer and
// for which the declaring package exports at least exhaustiveMinConsts
// package-level constants of exactly that type (trace.Kind, server response
// codes, pop strategy names). Coverage is by constant VALUE, not name, so
// aliased constants count. A single non-constant case expression makes the
// switch uncheckable and it is skipped entirely — no guessing.
//
// The rule is purely syntactic over the type-checked AST; it does not need
// the value layer.

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// ExhaustiveAnalyzer is the enum-switch coverage rule.
var ExhaustiveAnalyzer = &Analyzer{
	Name: "exhaustive",
	Doc:  "switches over module enum-like const sets must cover every declared constant or have a default",
	Run:  runExhaustive,
}

var exhaustiveScope = []string{"repro"}

// exhaustiveMinConsts is the smallest declared-constant set treated as an
// enum; below it, a named type with one or two constants is usually a
// sentinel, not an enumeration.
const exhaustiveMinConsts = 2

func runExhaustive(prog *Program, report ReportFunc) {
	for _, pkg := range prog.Packages {
		if !inScope(pkg.Path, exhaustiveScope) || pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if ok && sw.Tag != nil {
					checkEnumSwitch(pkg, sw, report)
				}
				return true
			})
		}
	}
}

func checkEnumSwitch(pkg *Package, sw *ast.SwitchStmt, report ReportFunc) {
	tagT := pkg.Info.TypeOf(sw.Tag)
	tn := enumTypeOf(tagT)
	if tn == nil {
		return
	}
	consts := enumConstsOf(tn)
	if len(consts) < exhaustiveMinConsts {
		return
	}

	covered := map[string]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // default clause: the switch is total by construction
		}
		for _, e := range cc.List {
			tv, ok := pkg.Info.Types[e]
			if !ok || tv.Value == nil {
				return // non-constant case: coverage is undecidable, skip
			}
			covered[tv.Value.ExactString()] = true
		}
	}

	var missing []string
	for _, c := range consts {
		if !covered[c.Val().ExactString()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	report(sw.Pos(), "switch on %s.%s is missing cases %s (cover them or add a default)",
		tn.Pkg().Name(), tn.Name(), strings.Join(missing, ", "))
}

// enumTypeOf returns the switch tag's named type when it qualifies as a
// module enum carrier: declared in-scope, underlying basic string/integer,
// not a type parameter or alias of a predeclared type.
func enumTypeOf(t types.Type) *types.TypeName {
	tn := namedTypeOf(t)
	if tn == nil || tn.Pkg() == nil || !inScope(tn.Pkg().Path(), exhaustiveScope) {
		return nil
	}
	b, ok := tn.Type().Underlying().(*types.Basic)
	if !ok || b.Info()&(types.IsString|types.IsInteger) == 0 {
		return nil
	}
	return tn
}

// enumConstsOf collects the package-level constants declared with exactly
// the named type, in scope-name order (already sorted, keeping reports
// deterministic).
func enumConstsOf(tn *types.TypeName) []*types.Const {
	scope := tn.Pkg().Scope()
	var out []*types.Const
	names := scope.Names()
	sort.Strings(names)
	for _, name := range names {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if types.Identical(c.Type(), tn.Type()) {
			out = append(out, c)
		}
	}
	return out
}
