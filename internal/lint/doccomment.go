package lint

import "strings"

// DocCommentAnalyzer ports the standalone doc-lint test into the suite:
// every package under internal/ and cmd/ must carry exactly one godoc
// package comment, opening with the canonical "Package <name>" form
// ("Command <name>" for main packages) so `go doc` renders it. Running it
// as an analyzer puts package docs under cmd/poplint and the self-gate
// instead of a separate CI step.
var DocCommentAnalyzer = &Analyzer{
	Name: "doccomment",
	Doc:  "every internal/cmd package needs exactly one canonical godoc package comment",
	Run:  runDocComment,
}

var docCommentScope = []string{"repro/internal", "repro/cmd"}

func runDocComment(prog *Program, report ReportFunc) {
	for _, pkg := range prog.Packages {
		if !inScope(pkg.Path, docCommentScope) {
			continue
		}
		documented := 0
		for _, file := range pkg.Files {
			if file.Doc == nil {
				continue
			}
			documented++
			if documented > 1 {
				report(file.Doc.Pos(), "package %s is documented in more than one file; keep a single package comment", file.Name.Name)
				continue
			}
			doc := file.Doc.Text()
			wantPrefix := "Package " + file.Name.Name
			if file.Name.Name == "main" {
				wantPrefix = "Command "
			}
			if !strings.HasPrefix(doc, wantPrefix) {
				report(file.Doc.Pos(), "package comment must start with %q", wantPrefix)
			}
		}
		if documented == 0 && len(pkg.Files) > 0 {
			report(pkg.Files[0].Package, "package %s has no godoc package comment", pkg.Files[0].Name.Name)
		}
	}
}
