package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// DocCommentAnalyzer ports the standalone doc-lint test into the suite:
// every package under internal/ and cmd/ must carry exactly one godoc
// package comment, opening with the canonical "Package <name>" form
// ("Command <name>" for main packages) so `go doc` renders it, and every
// exported package-level identifier needs a doc comment. A doc comment on a
// const/var/type group covers all of its specs; methods are exempt (godoc
// groups them under their documented receiver type). Running it as an
// analyzer puts the documentation bar under cmd/poplint and the self-gate
// instead of a separate CI step.
var DocCommentAnalyzer = &Analyzer{
	Name: "doccomment",
	Doc:  "internal/cmd packages need a canonical package comment and docs on exported identifiers",
	Run:  runDocComment,
}

var docCommentScope = []string{"repro/internal", "repro/cmd"}

func runDocComment(prog *Program, report ReportFunc) {
	for _, pkg := range prog.Packages {
		if !inScope(pkg.Path, docCommentScope) {
			continue
		}
		documented := 0
		for _, file := range pkg.Files {
			if file.Doc == nil {
				continue
			}
			documented++
			if documented > 1 {
				report(file.Doc.Pos(), "package %s is documented in more than one file; keep a single package comment", file.Name.Name)
				continue
			}
			doc := file.Doc.Text()
			wantPrefix := "Package " + file.Name.Name
			if file.Name.Name == "main" {
				wantPrefix = "Command "
			}
			if !strings.HasPrefix(doc, wantPrefix) {
				report(file.Doc.Pos(), "package comment must start with %q", wantPrefix)
			}
		}
		if documented == 0 && len(pkg.Files) > 0 {
			report(pkg.Files[0].Package, "package %s has no godoc package comment", pkg.Files[0].Name.Name)
		}
		for _, file := range pkg.Files {
			checkExportedDocs(file, report)
		}
	}
}

// checkExportedDocs flags exported package-level declarations without doc
// comments. Methods are skipped: godoc renders them under the receiver
// type, whose own doc the rule already demands.
func checkExportedDocs(file *ast.File, report ReportFunc) {
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Recv != nil || !d.Name.IsExported() {
				continue
			}
			if d.Doc == nil {
				report(d.Pos(), "exported function %s has no doc comment", d.Name.Name)
			}
		case *ast.GenDecl:
			if d.Tok == token.IMPORT || d.Doc != nil {
				continue // a group doc comment covers every spec
			}
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && sp.Doc == nil {
						report(sp.Pos(), "exported type %s has no doc comment", sp.Name.Name)
					}
				case *ast.ValueSpec:
					if sp.Doc != nil {
						continue
					}
					for _, n := range sp.Names {
						if n.IsExported() {
							report(n.Pos(), "exported %s %s has no doc comment (document it or its group)", d.Tok, n.Name)
							break
						}
					}
				}
			}
		}
	}
}
