package lint

// guardedfield infers each struct field's locking discipline by majority
// vote, RacerD-style, and flags the minority: when at least 80% of a
// field's access sites (and at least guardedFieldMinSites of them overall)
// execute with one specific mutex class provably held, the remaining sites
// are near-certain races — someone forgot the lock — rather than a
// different discipline. Unlike the purely syntactic atomicplain rule, the
// lock-set here is a flow-sensitive must-analysis over the CFG: a lock
// released on one branch is not "held" after the join, a branch that
// returns while holding keeps the fall-through path locked, and deferred
// unlocks hold the lock to function exit.
//
// Two exemptions keep the vote honest:
//
//   - constructor sites: a function that builds the owning struct via a
//     composite literal owns the only reference, so its unguarded accesses
//     are not races and neither vote nor get flagged;
//   - inherited locks: sites in a function whose every visible call site
//     (including CHA-resolved interface dispatch) holds class L are treated
//     as holding L — the xxxLocked-helper idiom. go-spawned functions
//     inherit nothing: the spawner's locks are not held on the new
//     goroutine.
//
// Fields of synchronization types (sync.*, sync/atomic.*, channels) are
// exempt: they synchronize themselves.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// GuardedFieldAnalyzer is the majority-vote lock-set inference rule.
var GuardedFieldAnalyzer = &Analyzer{
	Name: "guardedfield",
	Doc:  "a field accessed ≥80% of sites under one mutex class must not be accessed outside it",
	Run:  runGuardedField,
}

// guardedFieldMinSites is the minimum number of access sites before the
// majority vote is statistically meaningful.
const guardedFieldMinSites = 5

// fieldSite is one access to a struct field with its must-held lock set.
type fieldSite struct {
	fn    *FuncNode
	pos   token.Pos
	held  lockSet
	owner *types.TypeName // named type the selection went through
}

func runGuardedField(prog *Program, report ReportFunc) {
	g := programGraph(prog)

	sites := map[*types.Var][]*fieldSite{}
	var fieldOrder []*types.Var
	classNames := map[types.Object]string{}
	// calleeHeld accumulates, per function, (caller, lock set) pairs for
	// its visible call sites; the meet of (site set ∪ caller's inherited
	// set) over all of them is what the function inherits.
	type callerHeld struct {
		caller *FuncNode
		held   lockSet
	}
	calleeHeld := map[*FuncNode][]callerHeld{}
	litsOf := map[*FuncNode][]*ast.CompositeLit{}

	for _, fn := range g.sortedFuncs() {
		if fn.Body == nil || fn.Pkg.Info == nil {
			continue
		}
		scan := &lockScan{fn: fn, info: fn.Pkg.Info, classNames: classNames}
		cfg := g.FuncCFG(fn)
		ins := solveForwardMust(cfg, func(b *CFGBlock, in lockSet) lockSet {
			scan.collect = false
			for _, n := range b.Nodes {
				scan.node(n, in)
			}
			return in
		})
		// Replay with collection on.
		scan.collect = true
		heldAt := map[token.Pos]lockSet{}
		scan.onSite = func(field *types.Var, owner *types.TypeName, pos token.Pos, held lockSet) {
			if _, seen := sites[field]; !seen {
				fieldOrder = append(fieldOrder, field)
			}
			sites[field] = append(sites[field], &fieldSite{fn: fn, pos: pos, held: held.clone(), owner: owner})
		}
		scan.onCall = func(pos token.Pos, held lockSet) {
			heldAt[pos] = held.clone()
		}
		scan.onLit = func(lit *ast.CompositeLit) {
			litsOf[fn] = append(litsOf[fn], lit)
		}
		for _, b := range cfg.Blocks {
			held := ins[b.Index]
			if held == nil {
				held = lockSet{}
			} else {
				held = held.clone()
			}
			for _, n := range b.Nodes {
				scan.node(n, held)
			}
		}
		for _, ev := range fn.Sum.Events {
			if ev.Kind != EvCall {
				continue
			}
			held, ok := heldAt[ev.Pos]
			if !ok {
				held = lockSet{}
			}
			for _, t := range ev.Targets {
				calleeHeld[t] = append(calleeHeld[t], callerHeld{caller: fn, held: held})
			}
		}
	}

	// Inherited locks: meet of (call-site set ∪ caller's inherited set)
	// over every visible call site, iterated so a helper called only by
	// helpers inherits transitively. The round cap bounds pathological
	// call-chain depth; real chains converge in two or three rounds.
	inherited := map[*FuncNode]lockSet{}
	for round := 0; round < 10; round++ {
		changed := false
		for _, fn := range g.Funcs {
			calls := calleeHeld[fn]
			if len(calls) == 0 {
				continue
			}
			var met lockSet
			for _, ch := range calls {
				eff := ch.held.clone()
				if eff == nil {
					eff = lockSet{}
				}
				for c := range inherited[ch.caller] {
					eff[c] = true
				}
				met, _ = met.meet(eff)
			}
			if !lockSetsEqual(inherited[fn], met) {
				inherited[fn] = met
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// constructors: a function holding a composite literal of T owns fresh
	// instances of T; its sites on T's fields do not vote.
	constructs := func(fn *FuncNode, owner *types.TypeName) bool {
		for _, lit := range litsOf[fn] {
			tv, ok := fn.Pkg.Info.Types[lit]
			if !ok || tv.Type == nil {
				continue
			}
			if tn := namedTypeOf(tv.Type); tn == owner {
				return true
			}
		}
		return false
	}

	for _, field := range fieldOrder {
		fs := sites[field]
		var voting []*fieldSite
		for _, s := range fs {
			if constructs(s.fn, s.owner) {
				continue
			}
			if inh := inherited[s.fn]; inh != nil {
				for c := range inh {
					s.held[c] = true
				}
			}
			voting = append(voting, s)
		}
		n := len(voting)
		if n < guardedFieldMinSites {
			continue
		}
		counts := map[types.Object]int{}
		var classOrder []types.Object
		for _, s := range voting {
			var cs []types.Object
			for c := range s.held {
				cs = append(cs, c)
			}
			sort.Slice(cs, func(i, j int) bool { return classNames[cs[i]] < classNames[cs[j]] })
			for _, c := range cs {
				if counts[c] == 0 {
					classOrder = append(classOrder, c)
				}
				counts[c]++
			}
		}
		var best types.Object
		bestN := 0
		for _, c := range classOrder {
			if counts[c] > bestN {
				best, bestN = c, counts[c]
			}
		}
		if best == nil || bestN == n || bestN*5 < n*4 {
			continue // fully consistent, or no ≥80% majority
		}
		for _, s := range voting {
			if s.held[best] {
				continue
			}
			report(s.pos, "field %s is guarded by %s at %d of %d sites, but not here; take the lock or document the discipline",
				field.Name(), classNames[best], bestN, n)
		}
	}
}

// lockScan walks one CFG node, updating the held set at lock/unlock calls
// and (in collect mode) emitting field sites and call-site lock sets, all
// in source order.
type lockScan struct {
	fn         *FuncNode
	info       *types.Info
	classNames map[types.Object]string
	collect    bool
	onSite     func(field *types.Var, owner *types.TypeName, pos token.Pos, held lockSet)
	onCall     func(pos token.Pos, held lockSet)
	onLit      func(lit *ast.CompositeLit)
}

func (s *lockScan) node(n ast.Node, held lockSet) {
	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		// defer mu.Unlock() releases at exit: the lock stays held for the
		// rest of the body, so deferred calls never mutate the set. The
		// deferred expression also replays in the Exit block; skip both.
		return
	}
	inspectNoLit(n, func(sub ast.Node) {
		switch sub := sub.(type) {
		case *ast.CallExpr:
			s.call(sub, held)
		case *ast.SelectorExpr:
			s.field(sub, held)
		case *ast.CompositeLit:
			if s.collect && s.onLit != nil {
				s.onLit(sub)
			}
		}
	})
}

func (s *lockScan) call(call *ast.CallExpr, held lockSet) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	f, ok := s.info.Uses[sel.Sel].(*types.Func)
	if !ok {
		if s.collect && s.onCall != nil {
			s.onCall(call.Pos(), held)
		}
		return
	}
	pkgPath, typeName := methodRecv(f)
	if pkgPath == "sync" && (typeName == "Mutex" || typeName == "RWMutex") {
		w := &walker{pkg: s.fn.Pkg}
		class, cname := w.classOf(sel.X)
		if class == nil {
			return
		}
		if _, ok := s.classNames[class]; !ok {
			s.classNames[class] = cname
		}
		switch f.Name() {
		case "Lock", "RLock":
			held[class] = true
		case "Unlock", "RUnlock":
			delete(held, class)
		}
		return
	}
	if s.collect && s.onCall != nil {
		s.onCall(call.Pos(), held)
	}
}

func (s *lockScan) field(sel *ast.SelectorExpr, held lockSet) {
	if !s.collect || s.onSite == nil {
		return
	}
	selection, ok := s.info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok || isSyncType(field.Type()) {
		return
	}
	// Only module-declared fields participate; stdlib fields (time.Timer.C)
	// follow their own disciplines.
	if field.Pkg() == nil || !inScope(field.Pkg().Path(), []string{"repro"}) {
		return
	}
	recv := selection.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	owner := namedTypeOf(recv)
	if owner == nil {
		return
	}
	s.onSite(field, owner, sel.Sel.Pos(), held)
}

// isSyncType reports types that synchronize themselves: sync.* and
// sync/atomic.* values, channels, and context values.
func isSyncType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if tn := namedTypeOf(t); tn != nil && tn.Pkg() != nil {
		switch tn.Pkg().Path() {
		case "sync", "sync/atomic", "context":
			return true
		}
	}
	return false
}
