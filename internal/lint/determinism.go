package lint

import (
	"go/ast"
)

// determinismScope lists the packages whose outputs must be bit-identical
// across runs and modes: simulated cost units, plan choice, cached plans,
// statistics, and the trace stream all feed golden tests and the
// BENCH_observability "work bit-identical" pin.
var determinismScope = []string{
	"repro/internal/optimizer",
	"repro/internal/executor",
	"repro/internal/pop",
	"repro/internal/plancache",
	"repro/internal/stats",
	"repro/internal/trace",
}

// nondetPackages are packages any reference into which is nondeterministic.
var nondetPackages = map[string]string{
	"math/rand":    "seeded process-locally",
	"math/rand/v2": "seeded process-locally",
	"crypto/rand":  "cryptographically random",
}

// nondetFuncs are individual functions whose results vary across runs or
// hosts. Keyed by package path, then exported name.
var nondetFuncs = map[string]map[string]string{
	"time": {
		"Now":   "wall clock",
		"Since": "wall clock",
		"Until": "wall clock",
	},
	"os": {
		"Getpid":    "process identity",
		"Getppid":   "process identity",
		"Hostname":  "host identity",
		"Getenv":    "environment-dependent",
		"Environ":   "environment-dependent",
		"LookupEnv": "environment-dependent",
	},
}

// DeterminismAnalyzer forbids wall-clock, random, and process-identity
// sources inside the packages whose outputs the reproduction pins as
// bit-identical. The analyze-mode wall-clock in the executor is the
// documented exemption, annotated //poplint:allow determinism.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbid time.Now/math/rand/os.Getpid-style nondeterminism in bit-identical packages",
	Run:  runDeterminism,
}

func runDeterminism(prog *Program, report ReportFunc) {
	for _, pkg := range prog.Packages {
		if !inScope(pkg.Path, determinismScope) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pn := pkgNameOf(pkg.Info, sel.X)
				if pn == nil {
					return true
				}
				path := pn.Imported().Path()
				if why, ok := nondetPackages[path]; ok {
					report(sel.Pos(), "%s.%s is nondeterministic (%s); annotate //poplint:allow determinism <reason> if intended", path, sel.Sel.Name, why)
					return true
				}
				if funcs, ok := nondetFuncs[path]; ok {
					if why, ok := funcs[sel.Sel.Name]; ok {
						report(sel.Pos(), "%s.%s is nondeterministic (%s); annotate //poplint:allow determinism <reason> if intended", path, sel.Sel.Name, why)
					}
				}
				return true
			})
		}
	}
}
