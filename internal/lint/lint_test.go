package lint_test

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

// sharedLoader memoizes one loader across all tests so the stdlib is
// type-checked from source once, not per fixture.
var sharedLoader = sync.OnceValues(func() (*lint.Loader, error) {
	return lint.NewLoader(".")
})

func loader(t *testing.T) *lint.Loader {
	t.Helper()
	ld, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	return ld
}

// loadFixture loads testdata/src/<dir> under the given fake import path,
// failing the test on any parse or type error in the fixture itself.
func loadFixture(t *testing.T, dir, asPath string) *lint.Program {
	t.Helper()
	ld := loader(t)
	before := len(ld.Errors())
	prog, err := ld.LoadDirAs(filepath.Join("testdata", "src", dir), asPath)
	if err != nil {
		t.Fatal(err)
	}
	if errs := ld.Errors(); len(errs) > before {
		t.Fatalf("fixture %s has load errors: %v", dir, errs[before:])
	}
	return prog
}

// expectedFindings parses `// want rule[ rule…]` markers from fixture
// sources into "line rule" keys (repeated rules repeat the key).
func expectedFindings(prog *lint.Program) []string {
	var want []string
	for _, pkg := range prog.Packages {
		for name, src := range pkg.Sources {
			for i, line := range strings.Split(string(src), "\n") {
				_, marker, ok := strings.Cut(line, "// want ")
				if !ok {
					continue
				}
				for _, rule := range strings.Fields(marker) {
					want = append(want, fmt.Sprintf("%s:%d %s", filepath.Base(name), i+1, rule))
				}
			}
		}
	}
	sort.Strings(want)
	return want
}

func gotFindings(findings []lint.Finding) []string {
	got := make([]string, 0, len(findings))
	for _, f := range findings {
		got = append(got, fmt.Sprintf("%s:%d %s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Rule))
	}
	sort.Strings(got)
	return got
}

func diffStrings(t *testing.T, what string, want, got []string) {
	t.Helper()
	if strings.Join(want, "\n") != strings.Join(got, "\n") {
		t.Errorf("%s findings mismatch:\nwant:\n  %s\ngot:\n  %s",
			what, strings.Join(want, "\n  "), strings.Join(got, "\n  "))
	}
}

// TestGoldenFixtures runs the full suite over each bad/good fixture pair:
// bad packages must produce exactly their marked findings, good packages
// none at all.
func TestGoldenFixtures(t *testing.T) {
	cases := []struct {
		dir    string
		asPath string // fake import path placing the fixture in analyzer scope
	}{
		{"determinism/bad", "repro/internal/optimizer/fixdet"},
		{"determinism/good", "repro/internal/optimizer/fixdetgood"},
		{"maporder/bad", "repro/internal/optimizer/fixmap"},
		{"maporder/good", "repro/internal/optimizer/fixmapgood"},
		{"droppederror/bad", "repro/internal/fixdrop"},
		{"droppederror/good", "repro/internal/fixdropgood"},
		{"atomicplain/bad", "repro/internal/fixatomic"},
		{"atomicplain/good", "repro/internal/fixatomicgood"},
		{"doccomment/bad", "repro/internal/fixdoc"},
		{"doccomment/missing", "repro/internal/fixdocmissing"},
		{"doccomment/exported", "repro/internal/fixdocexported"},
		{"doccomment/good", "repro/internal/fixdocgood"},
		{"goroutineleak/bad", "repro/internal/fixgoleak"},
		{"goroutineleak/good", "repro/internal/fixgoleakgood"},
		{"lockorder/bad", "repro/internal/fixlock"},
		{"lockorder/good", "repro/internal/fixlockgood"},
		{"chargeflow/bad", "repro/internal/executor/fixcharge"},
		{"chargeflow/good", "repro/internal/executor/fixchargegood"},
		{"poolleak/bad", "repro/internal/server/fixpool"},
		{"poolleak/good", "repro/internal/server/fixpoolgood"},
		{"batchescape/bad", "repro/internal/executor/fixbatch"},
		{"batchescape/good", "repro/internal/executor/fixbatchgood"},
		{"blockingcancel/bad", "repro/internal/server/fixblock"},
		{"blockingcancel/good", "repro/internal/server/fixblockgood"},
		{"guardedfield/bad", "repro/internal/fixguard"},
		{"guardedfield/good", "repro/internal/fixguardgood"},
		{"overflow/bad", "repro/internal/optimizer/fixovf"},
		{"overflow/good", "repro/internal/optimizer/fixovfgood"},
		{"nilguard/bad", "repro/internal/fixnil"},
		{"nilguard/good", "repro/internal/fixnilgood"},
		{"rangeinvariant/bad", "repro/internal/fixrange"},
		{"rangeinvariant/good", "repro/internal/fixrangegood"},
		{"exhaustive/bad", "repro/internal/fixexh"},
		{"exhaustive/good", "repro/internal/fixexhgood"},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			prog := loadFixture(t, tc.dir, tc.asPath)
			findings, _ := lint.Run(prog, lint.Analyzers(), lint.Options{})
			diffStrings(t, tc.dir, expectedFindings(prog), gotFindings(findings))
			if strings.HasSuffix(tc.dir, "/good") && len(findings) > 0 {
				t.Errorf("good fixture produced findings: %v", findings)
			}
		})
	}
}

// TestAllowPrecision pins the suppression contract: an annotation covers
// exactly one line — the line it trails, or the line below the standalone
// form — and the twin violation one line away still fires.
func TestAllowPrecision(t *testing.T) {
	prog := loadFixture(t, "allow/precision", "repro/internal/optimizer/fixallow")
	findings, suppressed := lint.Run(prog, lint.Analyzers(), lint.Options{})

	diffStrings(t, "surviving", expectedFindings(prog), gotFindings(findings))

	// The suppressed twins are the lines defining aa (trailing form) and cc
	// (standalone form, one line below the annotation).
	wantSuppressed := []string{
		fmt.Sprintf("precision.go:%d determinism", lineContaining(t, prog, "aa := ")),
		fmt.Sprintf("precision.go:%d determinism", lineContaining(t, prog, "cc := ")),
	}
	sort.Strings(wantSuppressed)
	diffStrings(t, "suppressed", wantSuppressed, gotFindings(suppressed))

	// With suppression disabled every site fires: the two marked survivors
	// plus the two annotated twins.
	all, none := lint.Run(prog, lint.Analyzers(), lint.Options{DisableAllow: true})
	if len(none) != 0 {
		t.Errorf("DisableAllow still suppressed: %v", none)
	}
	wantAll := append(expectedFindings(prog), wantSuppressed...)
	sort.Strings(wantAll)
	diffStrings(t, "DisableAllow", wantAll, gotFindings(all))
}

func lineContaining(t *testing.T, prog *lint.Program, sub string) int {
	t.Helper()
	for _, pkg := range prog.Packages {
		for _, src := range pkg.Sources {
			for i, line := range strings.Split(string(src), "\n") {
				if strings.Contains(line, sub) {
					return i + 1
				}
			}
		}
	}
	t.Fatalf("no fixture line contains %q", sub)
	return 0
}

// TestMalformedAllow pins that broken annotations are findings, not silent
// no-ops: no rule, unknown rule, and missing reason each report under the
// "allow" rule.
func TestMalformedAllow(t *testing.T) {
	prog := loadFixture(t, "allow/malformed", "repro/internal/fixallowbad")
	findings, _ := lint.Run(prog, lint.Analyzers(), lint.Options{})
	var allowFindings []lint.Finding
	for _, f := range findings {
		if f.Rule == lint.AllowRule {
			allowFindings = append(allowFindings, f)
		}
	}
	if len(allowFindings) != 3 {
		t.Fatalf("want 3 malformed-annotation findings, got %d: %v", len(allowFindings), findings)
	}
}
