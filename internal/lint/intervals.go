package lint

// Int64 interval lattice: the numeric component of the abstract-interpretation
// value layer (absint.go). An Interval abstracts the set of int64 values a
// variable may hold at a program point.
//
// Representation: [Lo, Hi] with math.MinInt64 doubling as -∞ and
// math.MaxInt64 as +∞. The sentinels deliberately alias the extreme finite
// values — a variable proven to be exactly MaxInt64 is indistinguishable from
// "unbounded above", which only ever makes the analysis weaker (an overflow
// that cannot be ruled out), never unsound. Lo > Hi encodes the empty
// interval (an infeasible refinement: the branch cannot be taken).
//
// All arithmetic saturates at the sentinels, so interval bounds themselves
// never wrap: satMul64/satAdd64 detect native overflow exactly (via
// math/bits for products) and pin the result to ±∞. FuzzIntervals checks the
// transfer functions against a brute-force small-domain oracle.

import (
	"fmt"
	"math"
	"math/bits"
)

// Interval is a set of int64 values [Lo, Hi]; see the package comment above
// for the sentinel and emptiness conventions.
type Interval struct {
	Lo, Hi int64
}

// FullInterval is the lattice top: every int64 value.
func FullInterval() Interval { return Interval{math.MinInt64, math.MaxInt64} }

// EmptyInterval is the lattice bottom: no values (infeasible).
func EmptyInterval() Interval { return Interval{math.MaxInt64, math.MinInt64} }

// ConstInterval is the singleton interval {c}.
func ConstInterval(c int64) Interval { return Interval{c, c} }

// IsEmpty reports the empty (infeasible) interval.
func (iv Interval) IsEmpty() bool { return iv.Lo > iv.Hi }

// IsFull reports the top interval.
func (iv Interval) IsFull() bool { return iv.Lo == math.MinInt64 && iv.Hi == math.MaxInt64 }

// Contains reports whether c may be a value of iv.
func (iv Interval) Contains(c int64) bool { return iv.Lo <= c && c <= iv.Hi }

// BoundedBelow reports a proven finite lower bound (Lo is not the -∞ sentinel).
func (iv Interval) BoundedBelow() bool { return !iv.IsEmpty() && iv.Lo != math.MinInt64 }

// BoundedAbove reports a proven finite upper bound (Hi is not the +∞ sentinel).
func (iv Interval) BoundedAbove() bool { return !iv.IsEmpty() && iv.Hi != math.MaxInt64 }

// String renders the interval for findings: sentinels print as -inf/+inf.
func (iv Interval) String() string {
	if iv.IsEmpty() {
		return "[empty]"
	}
	lo, hi := "-inf", "+inf"
	if iv.Lo != math.MinInt64 {
		lo = fmt.Sprintf("%d", iv.Lo)
	}
	if iv.Hi != math.MaxInt64 {
		hi = fmt.Sprintf("%d", iv.Hi)
	}
	return "[" + lo + ", " + hi + "]"
}

// Join is the convex hull (lattice join): the smallest interval containing
// both operands.
func (a Interval) Join(b Interval) Interval {
	if a.IsEmpty() {
		return b
	}
	if b.IsEmpty() {
		return a
	}
	lo, hi := a.Lo, a.Hi
	if b.Lo < lo {
		lo = b.Lo
	}
	if b.Hi > hi {
		hi = b.Hi
	}
	return Interval{lo, hi}
}

// Meet is the intersection (lattice meet); empty when disjoint.
func (a Interval) Meet(b Interval) Interval {
	lo, hi := a.Lo, a.Hi
	if b.Lo > lo {
		lo = b.Lo
	}
	if b.Hi < hi {
		hi = b.Hi
	}
	return Interval{lo, hi}
}

// Widen accelerates fixpoint convergence at loop heads: any bound of next
// that moved past the corresponding bound of prev jumps straight to its
// sentinel, so a counter growing by one per iteration stabilizes in one
// widening step instead of one step per possible value.
func (prev Interval) Widen(next Interval) Interval {
	if prev.IsEmpty() {
		return next
	}
	if next.IsEmpty() {
		return prev
	}
	w := next
	if next.Lo < prev.Lo {
		w.Lo = math.MinInt64
	}
	if next.Hi > prev.Hi {
		w.Hi = math.MaxInt64
	}
	return w
}

// satAdd64 adds with saturation at the ±∞ sentinels.
func satAdd64(a, b int64) int64 {
	s := a + b
	// Overflow iff operands share a sign and the sum's sign differs.
	if (a >= 0) == (b >= 0) && (s >= 0) != (a >= 0) {
		if a >= 0 {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	return s
}

// mul64Overflows reports whether a*b overflows int64, exactly.
func mul64Overflows(a, b int64) bool {
	if a == 0 || b == 0 {
		return false
	}
	// Work in unsigned magnitudes; MinInt64's magnitude is representable in
	// uint64.
	au, bu := absU64(a), absU64(b)
	hi, lo := bits.Mul64(au, bu)
	if hi != 0 {
		return true
	}
	if (a < 0) != (b < 0) {
		return lo > 1<<63 // most negative product is -2^63
	}
	return lo > math.MaxInt64
}

func absU64(v int64) uint64 {
	if v >= 0 {
		return uint64(v)
	}
	return uint64(-(v + 1)) + 1 // handles MinInt64
}

// satMul64 multiplies with saturation at the ±∞ sentinels.
func satMul64(a, b int64) int64 {
	if !mul64Overflows(a, b) {
		return a * b
	}
	if (a < 0) != (b < 0) {
		return math.MinInt64
	}
	return math.MaxInt64
}

// Add is interval addition (saturating at the sentinels).
func (a Interval) Add(b Interval) Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return EmptyInterval()
	}
	return Interval{satAdd64(a.Lo, b.Lo), satAdd64(a.Hi, b.Hi)}
}

// Sub is interval subtraction.
func (a Interval) Sub(b Interval) Interval {
	return a.Add(b.Neg())
}

// Neg negates an interval ([-hi, -lo], saturating MinInt64's negation).
func (a Interval) Neg() Interval {
	if a.IsEmpty() {
		return a
	}
	neg := func(v int64) int64 {
		if v == math.MinInt64 {
			return math.MaxInt64
		}
		return -v
	}
	return Interval{neg(a.Hi), neg(a.Lo)}
}

// Mul is interval multiplication: the hull of the four corner products,
// saturating at the sentinels. A sentinel bound is treated as "unboundedly
// large finite", so 0·∞ = 0 (the variable is unbounded, not actually
// infinite).
func (a Interval) Mul(b Interval) Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return EmptyInterval()
	}
	lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
	for _, x := range [2]int64{a.Lo, a.Hi} {
		for _, y := range [2]int64{b.Lo, b.Hi} {
			p := satMul64(x, y)
			if p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
		}
	}
	return Interval{lo, hi}
}

// MulCanOverflow reports whether some x∈a, y∈b has a product outside int64.
// A sentinel bound counts as arbitrarily large, so unknown×unknown can
// always overflow — the overflow rule's may-semantics for products.
func (a Interval) MulCanOverflow(b Interval) bool {
	if a.IsEmpty() || b.IsEmpty() {
		return false
	}
	for _, x := range [2]int64{a.Lo, a.Hi} {
		for _, y := range [2]int64{b.Lo, b.Hi} {
			if mul64Overflows(x, y) {
				return true
			}
		}
	}
	return false
}

// AddMustOverflow reports whether EVERY x∈a, y∈b sums outside int64 — the
// overflow rule's proven-semantics for additions. Sentinel bounds prove
// nothing, so unknown operands never trigger it.
func (a Interval) AddMustOverflow(b Interval) bool {
	if a.IsEmpty() || b.IsEmpty() || !a.BoundedBelow() || !b.BoundedBelow() {
		// Also rules out sentinel Lo values posing as proven bounds.
	} else if a.Lo > 0 && b.Lo > 0 && a.Lo > math.MaxInt64-b.Lo {
		return true // minimum possible sum already exceeds MaxInt64
	}
	if a.IsEmpty() || b.IsEmpty() || !a.BoundedAbove() || !b.BoundedAbove() {
		return false
	}
	return a.Hi < 0 && b.Hi < 0 && a.Hi < math.MinInt64-b.Hi // maximum sum below MinInt64
}

// typeRange returns the value range of a sized integer type given its bit
// width and signedness; 64-bit and unknown widths map to the full interval.
func typeRange(bitsN int, signed bool) Interval {
	if bitsN <= 0 || bitsN >= 64 {
		if !signed {
			return Interval{0, math.MaxInt64} // uint64/uint: low half proven
		}
		return FullInterval()
	}
	if signed {
		lim := int64(1) << (bitsN - 1)
		return Interval{-lim, lim - 1}
	}
	return Interval{0, int64(1)<<bitsN - 1}
}
