package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// serverPath is the admission-controlled serving layer; together with the
// executor it is the audited consumer surface of the worker pool.
const serverPath = "repro/internal/server"

// PoolLeakAnalyzer machine-checks the WorkerGate contract the popserver
// scheduler depends on: every AcquireWorkers grant must be returned by
// exactly one ReleaseWorkers call, or the global budget shrinks forever and
// every later query degrades to the inline DOP-1 fallback. Two obligations
// at every AcquireWorkers call site under the executor or server paths:
//
//  1. The grant must not be discarded: an AcquireWorkers call as a bare
//     expression statement leaks its entire grant on the spot.
//  2. A ReleaseWorkers call must be provably reachable from the acquiring
//     function — through ordinary call edges, or through a method of a
//     struct type the acquiring path constructs (the executor's idiom:
//     acquireWorkers wraps the grant in a workerGrant whose release method
//     is invoked later by the owning node's Close).
//
// The constructed-type extension deliberately over-approximates: handing
// the grant to a value whose type owns a releasing method counts as a
// release path even if no caller ever invokes it. That keeps the rule free
// of false positives on ownership-transfer idioms while still catching the
// real failure modes — a dropped result and an acquire with no release
// anywhere in reach.
var PoolLeakAnalyzer = &Analyzer{
	Name: "poolleak",
	Doc:  "every WorkerGate.AcquireWorkers grant must be discharged by a reachable ReleaseWorkers call",
	Run:  runPoolLeak,
}

// poolScope is where acquire sites are audited. Release facts are gathered
// program-wide so a release living outside the scope still discharges an
// in-scope acquire.
var poolScope = []string{executorPath, serverPath}

// poolFacts is the per-function fact set the rule consumes.
type poolFacts struct {
	acquires   []token.Pos        // in-scope AcquireWorkers call sites
	discarded  map[token.Pos]bool // acquire sites whose result is dropped
	releases   bool               // body contains a ReleaseWorkers call
	constructs []*types.Named     // named struct types built via composite literal
}

func runPoolLeak(prog *Program, report ReportFunc) {
	g := programGraph(prog)

	facts := make(map[*FuncNode]*poolFacts, len(g.Funcs))
	for _, fn := range g.Funcs {
		facts[fn] = poolFactsOf(fn)
	}

	// "A direct ReleaseWorkers call is reachable via ordinary call edges."
	releaseReach := g.propagate(func(f *FuncNode) bool { return facts[f].releases })

	for _, fn := range g.sortedFuncs() {
		pf := facts[fn]
		for _, pos := range pf.acquires {
			if pf.discarded[pos] {
				report(pos, "AcquireWorkers grant discarded in %s; the granted workers can never be released", fn.Name)
				continue
			}
			if !releaseReachable(g, fn, facts, releaseReach) {
				report(pos, "AcquireWorkers in %s has no reachable ReleaseWorkers; the grant leaks from the global pool", fn.Name)
			}
		}
	}
}

// releaseReachable walks call edges from start, extended at each visited
// function with the methods of every named struct type it constructs (the
// grant-handoff idiom), looking for a function from which a direct
// ReleaseWorkers call is reachable.
func releaseReachable(g *CallGraph, start *FuncNode, facts map[*FuncNode]*poolFacts, releaseReach map[*FuncNode]bool) bool {
	seen := map[*FuncNode]bool{}
	stack := []*FuncNode{start}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f == nil || seen[f] {
			continue
		}
		seen[f] = true
		if releaseReach[f] {
			return true
		}
		stack = append(stack, f.Callees()...)
		for _, named := range facts[f].constructs {
			ms := types.NewMethodSet(types.NewPointer(named))
			for i := 0; i < ms.Len(); i++ {
				if m, ok := ms.At(i).Obj().(*types.Func); ok {
					stack = append(stack, g.byObj[m])
				}
			}
		}
	}
	return false
}

// poolFactsOf scans one function body for the rule's facts. Acquire anchors
// skip nested function literals (each literal is its own graph node);
// release and construction facts include them, erring toward discharge.
func poolFactsOf(fn *FuncNode) *poolFacts {
	pf := &poolFacts{discarded: map[token.Pos]bool{}}
	if fn.Body == nil {
		return pf
	}
	info := fn.Pkg.Info
	audit := inScope(fn.Pkg.Path, poolScope)
	seenType := map[*types.Named]bool{}
	own := true // false once we descend into a nested literal
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if x.Body == fn.Body {
				return true
			}
			// Nested literal: keep collecting releases/constructions but
			// stop anchoring acquires (the literal node anchors its own).
			wasOwn := own
			own = false
			ast.Inspect(x.Body, visit)
			own = wasOwn
			return false
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok && own && audit && isGateCall(info, call, "AcquireWorkers") {
				pf.discarded[call.Pos()] = true
			}
		case *ast.CallExpr:
			if own && audit && isGateCall(info, x, "AcquireWorkers") {
				pf.acquires = append(pf.acquires, x.Pos())
			}
			if isGateCall(info, x, "ReleaseWorkers") {
				pf.releases = true
			}
		case *ast.CompositeLit:
			t := info.TypeOf(x)
			if t == nil {
				return true
			}
			if named, ok := t.(*types.Named); ok && !seenType[named] {
				if _, isStruct := named.Underlying().(*types.Struct); isStruct {
					seenType[named] = true
					pf.constructs = append(pf.constructs, named)
				}
			}
		}
		return true
	}
	ast.Inspect(fn.Body, visit)
	return pf
}

// isGateCall reports whether call invokes a method named name with the
// WorkerGate shape: AcquireWorkers(int) int or ReleaseWorkers(int). Matching
// is by name and signature, not receiver type, so fixtures and alternative
// gate implementations are held to the same contract.
func isGateCall(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Name() != name {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 1 {
		return false
	}
	if basic, ok := sig.Params().At(0).Type().(*types.Basic); !ok || basic.Kind() != types.Int {
		return false
	}
	switch name {
	case "AcquireWorkers":
		return sig.Results().Len() == 1
	case "ReleaseWorkers":
		return sig.Results().Len() == 0
	}
	return false
}
