package lint

import (
	"encoding/json"
	"io"
	"sort"
)

// JSONFinding is the stable machine-readable record `poplint -json` emits,
// one object per finding. Field order and finding order (file, line,
// column, rule, message — the sortFindings order) are deterministic so CI
// diffs and the 8-run byte-identity test hold.
type JSONFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// EncodeJSON writes findings as a JSON array (never null — an empty run
// encodes as []), one record per finding in their existing sorted order,
// followed by a newline.
func EncodeJSON(w io.Writer, findings []Finding) error {
	records := make([]JSONFinding, 0, len(findings))
	for _, f := range findings {
		records = append(records, JSONFinding{
			File:    f.Pos.Filename,
			Line:    f.Pos.Line,
			Column:  f.Pos.Column,
			Rule:    f.Rule,
			Message: f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// RuleCount is one rule's tally in a run's findings.
type RuleCount struct {
	Rule  string
	Count int
}

// RuleCounts tallies findings per rule, sorted by rule name — the summary
// cmd/poplint prints and the CI step surfaces next to the gate result.
func RuleCounts(findings []Finding) []RuleCount {
	byRule := map[string]int{}
	for _, f := range findings {
		byRule[f.Rule]++
	}
	names := make([]string, 0, len(byRule))
	for name := range byRule {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]RuleCount, 0, len(names))
	for _, name := range names {
		out = append(out, RuleCount{Rule: name, Count: byRule[name]})
	}
	return out
}
