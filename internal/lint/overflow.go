package lint

// overflow: arithmetic feeding tick accounting must not be able to exceed
// int64, and selectivity math must not divide by a possibly-zero divisor.
//
// Multiplications use MAY semantics: a product whose value flows into
// (*executor.Meter).AddTicks — directly or through the sink-parameter
// closure of summaryval.go — is flagged whenever the operand intervals
// admit an overflowing corner, unless a dominating `a > math.MaxInt64/b`
// comparison proved the pair safe (the guard idiom) or the arithmetic is
// routed through a checked helper (a real call boundary stops sink
// propagation, which is how executor.mulTicksSat discharges the rule).
// Unbounded operands therefore count as overflowable: per-row tick rates
// multiply by batch lengths on the metering hot path, where a silent wrap
// corrupts every downstream re-optimization decision.
//
// Additions use PROVEN semantics (every operand combination overflows):
// tick accumulators add all the time, and may-level adds would be noise.
//
// Divisions and modulos are audited in the optimizer/stats packages only —
// the selectivity and cardinality math of the paper's validity ranges —
// and flagged when the divisor is proven zero or carries positive
// zero-path evidence (a reaching path assigned or compared it to zero).

import "go/token"

// OverflowAnalyzer is the overflow/division-by-zero value rule.
var OverflowAnalyzer = &Analyzer{
	Name: "overflow",
	Doc:  "tick-accounting multiplications/additions whose operand ranges can exceed int64, and optimizer/stats divisions by a possibly-zero divisor",
	Run:  runOverflow,
}

// overflowScope is where tick-arithmetic sites are audited.
var overflowScope = []string{"repro"}

// overflowDivScope is where division sites are audited: the selectivity and
// cardinality math packages.
var overflowDivScope = []string{optimizerPath, statsPath}

const (
	optimizerPath = "repro/internal/optimizer"
	statsPath     = "repro/internal/stats"
)

func runOverflow(prog *Program, report ReportFunc) {
	va := programValues(prog)
	for _, fn := range va.funcs {
		sites := va.sites[fn]
		if sites == nil {
			continue
		}
		if inScope(fn.Pkg.Path, overflowScope) {
			for _, s := range sites.mulAdds {
				if !s.sink || s.guard {
					continue
				}
				switch s.op {
				case token.MUL:
					if s.xv.iv.MulCanOverflow(s.yv.iv) {
						report(s.pos, "%s * %s feeds tick accounting but can overflow int64 (operand ranges %s and %s); use a saturating helper or guard with MaxInt64/b", s.xs, s.ys, s.xv.iv, s.yv.iv)
					}
				case token.ADD:
					if s.xv.iv.AddMustOverflow(s.yv.iv) {
						report(s.pos, "%s + %s feeds tick accounting and provably overflows int64 (operand ranges %s and %s)", s.xs, s.ys, s.xv.iv, s.yv.iv)
					}
				}
			}
		}
		if inScope(fn.Pkg.Path, overflowDivScope) {
			for _, s := range sites.divs {
				dv := s.dv
				provenZero := !dv.iv.IsEmpty() && dv.iv.Lo == 0 && dv.iv.Hi == 0
				zeroPath := dv.flags&fZeroPath != 0 && dv.iv.Contains(0)
				if !provenZero && !zeroPath {
					continue
				}
				opName := "division"
				if s.op == token.REM {
					opName = "modulo"
				}
				if provenZero {
					report(s.pos, "%s by %s, which is provably zero here", opName, s.divStr)
				} else if s.intOp {
					report(s.pos, "%s by %s, which a reaching path proves zero (guard the divisor before dividing)", opName, s.divStr)
				} else {
					report(s.pos, "%s by %s, which a reaching path proves zero (selectivity math would produce Inf/NaN)", opName, s.divStr)
				}
			}
		}
	}
}
