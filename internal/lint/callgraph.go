package lint

// Interprocedural layer: a CHA-style call graph over go/types plus
// per-function summaries and worklist closure computations. The
// whole-program rules (goroutineleak, lockorder, chargeflow) are built on
// top of it.
//
// The graph is deliberately simple and deterministic:
//
//   - one FuncNode per function declaration, method declaration, or
//     function literal in the loaded program, in file/position order;
//   - static call edges resolved through go/types object identity (the
//     loader memoizes type-checked imports, so a method object is the same
//     *types.Func in every package that calls it);
//   - interface dispatch resolved by Class Hierarchy Analysis: a call
//     through an interface method edges to every concrete method of a
//     named type in the program that implements the interface (executor
//     Node implementations, trace.Recorder implementations, ...);
//   - `go` statements recorded as spawns (asynchronous — not call edges),
//     with the spawned function resolved when it is a literal or a
//     statically known function/method;
//   - `defer` and literal-as-argument treated as ordinary call edges (the
//     callee runs on the same goroutine, which is what the lock and
//     accounting rules care about).
//
// Soundness caveats (documented in DESIGN.md §10): bodies of packages
// outside the module (the stdlib is type-checked from source for its API
// only) are not walked, so facts inside them are invisible; calls through
// plain function values are unresolved; CHA over-approximates dispatch —
// it never misses an implementation declared in the program, but may add
// edges to implementations that cannot flow to a given call site.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// FuncNode is one function in the call graph: a declared function or
// method (Obj != nil) or a function literal (Lit != nil).
type FuncNode struct {
	Obj    *types.Func  // nil for literals and synthetic package-init nodes
	Lit    *ast.FuncLit // nil for declared functions
	Name   string       // qualified display name, e.g. "(*gatherNode).Open" or "Open$1"
	Pkg    *Package
	Body   *ast.BlockStmt
	Pos    token.Pos
	Parent *FuncNode // enclosing function, for literals
	Sum    *Summary

	index int
	calls []*FuncNode // outgoing edges, deduplicated, in resolution order
}

// Callees returns the functions this node may call synchronously.
func (f *FuncNode) Callees() []*FuncNode { return f.calls }

// GoSpawn is one `go` statement.
type GoSpawn struct {
	Pos    token.Pos
	In     *FuncNode // spawning function
	Callee *FuncNode // spawned function; nil when not statically resolvable
	Pkg    *Package
}

// CallGraph is the whole-program view the interprocedural rules share.
type CallGraph struct {
	Prog   *Program
	Funcs  []*FuncNode
	Spawns []*GoSpawn

	byObj map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode

	// concreteTypes is every named non-interface type declared in the
	// program, in (package path, name) order — the CHA universe.
	concreteTypes []*types.TypeName
	implCache     map[*types.Func][]*FuncNode
	cfgCache      map[*FuncNode]*CFG
}

// FuncCFG returns the memoized control-flow graph for fn's body, or nil for
// bodyless nodes (synthetic package-init nodes).
func (g *CallGraph) FuncCFG(fn *FuncNode) *CFG {
	if fn == nil || fn.Body == nil {
		return nil
	}
	if c, ok := g.cfgCache[fn]; ok {
		return c
	}
	if g.cfgCache == nil {
		g.cfgCache = map[*FuncNode]*CFG{}
	}
	c := BuildCFG(fn.Body)
	g.cfgCache[fn] = c
	return c
}

// NodeFor returns the graph node for a declared function or method, or nil.
func (g *CallGraph) NodeFor(obj *types.Func) *FuncNode { return g.byObj[obj] }

// pendingIface is an interface-method call awaiting CHA resolution.
type pendingIface struct {
	caller *FuncNode
	method *types.Func
	evIdx  int // index of the EvCall event to patch with resolved targets
}

// callGraphs memoizes one graph per program so the three interprocedural
// analyzers in a single Run share the construction work. Run executes
// analyzers sequentially, so no locking is needed.
var callGraphs = map[*Program]*CallGraph{}

// programGraph returns the memoized call graph for prog.
func programGraph(prog *Program) *CallGraph {
	if g, ok := callGraphs[prog]; ok {
		return g
	}
	g := BuildCallGraph(prog)
	callGraphs[prog] = g
	return g
}

// BuildCallGraph constructs the call graph and per-function summaries for
// the program. The result is deterministic: nodes are created in file and
// traversal order, and edges are resolved in that same order.
func BuildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{
		Prog:      prog,
		byObj:     map[*types.Func]*FuncNode{},
		byLit:     map[*ast.FuncLit]*FuncNode{},
		implCache: map[*types.Func][]*FuncNode{},
	}
	g.collectConcreteTypes()

	// Pass 1: one node per declared function/method, so forward references
	// resolve no matter the declaration order.
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := &FuncNode{
					Obj:  obj,
					Name: declName(fd),
					Pkg:  pkg,
					Body: fd.Body,
					Pos:  fd.Pos(),
				}
				g.addNode(n)
				g.byObj[obj] = n
			}
		}
	}

	// Pass 2: walk every body, creating literal nodes, summaries, edges and
	// spawns. Interface-method calls are queued and CHA-resolved afterwards,
	// once every node exists.
	var pending []pendingIface
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					obj, _ := pkg.Info.Defs[d.Name].(*types.Func)
					if obj == nil {
						continue
					}
					w := &walker{g: g, pkg: pkg, pending: &pending}
					w.walkBody(g.byObj[obj], d.Body)
				case *ast.GenDecl:
					// Package-level initializer expressions may contain
					// function literals (e.g. registry tables); attribute
					// them to a synthetic per-file init node.
					var init *FuncNode
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, v := range vs.Values {
							if !containsFuncLit(v) {
								continue
							}
							if init == nil {
								init = &FuncNode{Name: "init#" + pkg.Path, Pkg: pkg, Pos: d.Pos()}
								g.addNode(init)
							}
							w := &walker{g: g, pkg: pkg, pending: &pending}
							w.walkExpr(init, v)
						}
					}
				}
			}
		}
	}

	// Pass 3: CHA resolution of the queued interface calls. Each resolved
	// implementation becomes a call edge, and the EvCall event recorded at
	// queue time learns its targets so lockorder's replay sees them.
	for _, p := range pending {
		impls := g.implementations(p.method)
		for _, impl := range impls {
			p.caller.addCall(impl)
		}
		if p.evIdx >= 0 && p.evIdx < len(p.caller.Sum.Events) {
			p.caller.Sum.Events[p.evIdx].Targets = impls
		}
	}
	return g
}

func (g *CallGraph) addNode(n *FuncNode) {
	n.index = len(g.Funcs)
	n.Sum = &Summary{}
	g.Funcs = append(g.Funcs, n)
	if n.Lit != nil {
		g.byLit[n.Lit] = n
	}
}

func (f *FuncNode) addCall(callee *FuncNode) {
	if callee == nil {
		return
	}
	for _, c := range f.calls {
		if c == callee {
			return
		}
	}
	f.calls = append(f.calls, callee)
}

func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return "(" + recvString(fd.Recv.List[0].Type) + ")." + fd.Name.Name
}

func recvString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return "*" + recvString(t.X)
	case *ast.IndexExpr:
		return recvString(t.X)
	case *ast.IndexListExpr:
		return recvString(t.X)
	}
	return "?"
}

func containsFuncLit(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			found = true
		}
		return !found
	})
	return found
}

// collectConcreteTypes gathers the CHA universe: every named non-interface
// type declared at package scope anywhere in the program, sorted.
func (g *CallGraph) collectConcreteTypes() {
	for _, pkg := range g.Prog.Packages {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		names := scope.Names() // already sorted
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if types.IsInterface(tn.Type()) {
				continue
			}
			g.concreteTypes = append(g.concreteTypes, tn)
		}
	}
}

// implementations resolves an interface method to the concrete methods in
// the program that can satisfy it (Class Hierarchy Analysis). Results are
// memoized and ordered by the concrete type universe order.
func (g *CallGraph) implementations(method *types.Func) []*FuncNode {
	if impls, ok := g.implCache[method]; ok {
		return impls
	}
	var impls []*FuncNode
	sig, _ := method.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		g.implCache[method] = nil
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	if iface == nil {
		g.implCache[method] = nil
		return nil
	}
	for _, tn := range g.concreteTypes {
		T := tn.Type()
		var recv types.Type
		switch {
		case types.Implements(T, iface):
			recv = T
		case types.Implements(types.NewPointer(T), iface):
			recv = types.NewPointer(T)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, method.Pkg(), method.Name())
		if f, ok := obj.(*types.Func); ok {
			if n := g.byObj[f]; n != nil {
				impls = append(impls, n)
			}
		}
	}
	g.implCache[method] = impls
	return impls
}

// --- closures -----------------------------------------------------------

// Closure returns the synchronous call closure of start: start plus every
// function reachable from it via call edges, in deterministic order.
func (g *CallGraph) Closure(start *FuncNode) []*FuncNode {
	if start == nil {
		return nil
	}
	seen := make(map[*FuncNode]bool)
	var out []*FuncNode
	var visit func(f *FuncNode)
	visit = func(f *FuncNode) {
		if seen[f] {
			return
		}
		seen[f] = true
		out = append(out, f)
		for _, c := range f.calls {
			visit(c)
		}
	}
	visit(start)
	return out
}

// ClosureAny reports whether any function in the closure of start satisfies
// pred, returning the first witness in traversal order.
func (g *CallGraph) ClosureAny(start *FuncNode, pred func(*FuncNode) bool) (*FuncNode, bool) {
	for _, f := range g.Closure(start) {
		if pred(f) {
			return f, true
		}
	}
	return nil, false
}

// propagate runs a worklist fixpoint: fact(f) starts as base(f) and becomes
// true when any callee's fact is true. It returns the fact set — "a
// base-satisfying function is reachable from f".
func (g *CallGraph) propagate(base func(*FuncNode) bool) map[*FuncNode]bool {
	fact := make(map[*FuncNode]bool, len(g.Funcs))
	callers := make(map[*FuncNode][]*FuncNode)
	var work []*FuncNode
	for _, f := range g.Funcs {
		for _, c := range f.calls {
			callers[c] = append(callers[c], f)
		}
		if base(f) {
			fact[f] = true
			work = append(work, f)
		}
	}
	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]
		for _, caller := range callers[f] {
			if !fact[caller] {
				fact[caller] = true
				work = append(work, caller)
			}
		}
	}
	return fact
}

// sortedFuncs returns the program's functions ordered by source position —
// the canonical reporting order for whole-program rules.
func (g *CallGraph) sortedFuncs() []*FuncNode {
	out := append([]*FuncNode(nil), g.Funcs...)
	sort.Slice(out, func(i, j int) bool {
		pi, pj := g.Prog.Fset.Position(out[i].Pos), g.Prog.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	return out
}
