package lint

import (
	"go/token"
	"go/types"
)

// LockOrderAnalyzer builds the module's lock-acquisition graph and flags
// the two hazards that can deadlock the parallel runtime:
//
//   - acquisition cycles: lock class A is taken while B is held on one
//     path and B while A is held on another (plancache shards vs entries,
//     stats feedback, metrics, trace, the executor check registry — the
//     classes the POP runtime actually nests);
//   - locks held across blocking operations: a mutex held over a channel
//     send/receive/range, select, WaitGroup/Cond Wait, or a call whose
//     closure contains one (executor.Run drains exchange channels, so it
//     inherits "may block" from gatherNode.Next automatically).
//
// Each function's ordered event stream (locks, blocks, resolved calls) is
// replayed with a held-lock set; deferred Unlocks do not release — a
// `defer mu.Unlock()` holds the lock for the rest of the function, which is
// exactly the window the hazards care about. Acquisition edges observed
// while replaying (directly or through a callee's acquired-lock closure)
// feed a global class graph; any edge that closes a directed cycle is
// reported at its first witness.
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "flag lock-acquisition cycles and locks held across blocking operations",
	Run:  runLockOrder,
}

type lockEdge struct {
	from, to types.Object // lock classes
}

type lockWitness struct {
	pos      token.Pos
	fromName string
	toName   string
	fn       string
}

func runLockOrder(prog *Program, report ReportFunc) {
	g := programGraph(prog)

	// Per-function aggregate facts, computed by fixpoint over call edges:
	// blocksClosure(f) — a blocking op is reachable from f;
	// acqClosure(f)    — the lock classes some function reachable from f
	//                    acquires (collected per function below).
	blocksClosure := g.propagate(func(f *FuncNode) bool {
		for _, ev := range f.Sum.Events {
			if ev.Kind == EvBlock {
				return true
			}
		}
		return false
	})

	type held struct {
		class types.Object
		name  string
		write bool
	}

	edges := map[lockEdge]lockWitness{}
	var edgeOrder []lockEdge
	addEdge := func(from held, toClass types.Object, toName string, fn *FuncNode, pos token.Pos) {
		if from.class == nil || toClass == nil || from.class == toClass {
			return
		}
		e := lockEdge{from.class, toClass}
		if _, ok := edges[e]; ok {
			return
		}
		edges[e] = lockWitness{pos: pos, fromName: from.name, toName: toName, fn: fn.Name}
		edgeOrder = append(edgeOrder, e)
	}

	// blockWitness finds, for a callee that may block, the first blocking
	// event in its closure to name in the report.
	blockWitness := func(start *FuncNode) string {
		for _, f := range g.Closure(start) {
			for _, ev := range f.Sum.Events {
				if ev.Kind == EvBlock {
					return ev.Name + " in " + f.Name
				}
			}
		}
		return "blocking operation"
	}

	for _, fn := range g.sortedFuncs() {
		var stack []held
		for _, ev := range fn.Sum.Events {
			switch ev.Kind {
			case EvLock:
				for _, h := range stack {
					if h.class != nil && h.class == ev.Class && (h.write || ev.Write) {
						report(ev.Pos, "%s acquired in %s while already held: recursive acquisition self-deadlocks", ev.Name, fn.Name)
					}
					addEdge(h, ev.Class, ev.Name, fn, ev.Pos)
				}
				stack = append(stack, held{class: ev.Class, name: ev.Name, write: ev.Write})
			case EvUnlock:
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i].class == ev.Class {
						stack = append(stack[:i], stack[i+1:]...)
						break
					}
				}
			case EvBlock:
				if len(stack) > 0 {
					top := stack[len(stack)-1]
					report(ev.Pos, "%s held across %s in %s: a blocked holder starves every other acquirer", top.name, ev.Name, fn.Name)
				}
			case EvCall:
				if len(stack) == 0 {
					continue
				}
				for _, callee := range ev.Targets {
					if blocksClosure[callee] {
						top := stack[len(stack)-1]
						report(ev.Pos, "%s held across call to %s, which may block (%s)", top.name, callee.Name, blockWitness(callee))
						break
					}
				}
				// Locks the callee's closure acquires nest under every lock
				// currently held: record the acquisition edges.
				for _, callee := range ev.Targets {
					for _, cf := range g.Closure(callee) {
						for _, cev := range cf.Sum.Events {
							if cev.Kind != EvLock {
								continue
							}
							for _, h := range stack {
								addEdge(h, cev.Class, cev.Name, fn, ev.Pos)
							}
						}
					}
				}
			}
		}
	}

	// Cycle detection over the class graph: an edge a→b closes a cycle when
	// b already reaches a. Edges are checked in insertion (witness) order so
	// the report is deterministic and lands on the edge that completed the
	// cycle.
	adj := map[types.Object][]types.Object{}
	reaches := func(from, to types.Object) bool {
		seen := map[types.Object]bool{}
		var walk func(n types.Object) bool
		walk = func(n types.Object) bool {
			if n == to {
				return true
			}
			if seen[n] {
				return false
			}
			seen[n] = true
			for _, m := range adj[n] {
				if walk(m) {
					return true
				}
			}
			return false
		}
		return walk(from)
	}
	for _, e := range edgeOrder {
		w := edges[e]
		if reaches(e.to, e.from) {
			report(w.pos, "lock-order cycle: %s acquired while %s held in %s, but the reverse order exists elsewhere in the program", w.toName, w.fromName, w.fn)
		}
		adj[e.from] = append(adj[e.from], e.to)
	}
}
