package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFromSrc parses one function body out of src and builds its CFG.
func buildFromSrc(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fn.Body)
}

// cfgShape renders a CFG as "index[L]:succ,succ" lines for golden checks.
func cfgShape(c *CFG) string {
	var sb strings.Builder
	for _, b := range c.Blocks {
		fmt.Fprintf(&sb, "%d", b.Index)
		if b.Loop {
			sb.WriteString("L")
		}
		sb.WriteString(":")
		for i, s := range b.Succs {
			if i > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, "%d", s.Index)
		}
		sb.WriteString(";")
	}
	return sb.String()
}

func TestCFGLinear(t *testing.T) {
	c := buildFromSrc(t, "x := 1\ny := x\n_ = y")
	if len(c.Blocks) != 2 {
		t.Fatalf("linear body built %d blocks, want entry+exit", len(c.Blocks))
	}
	if len(c.Blocks[0].Nodes) != 3 {
		t.Errorf("entry holds %d nodes, want 3", len(c.Blocks[0].Nodes))
	}
	if c.Exit != c.Blocks[1] || len(c.Blocks[0].Succs) != 1 || c.Blocks[0].Succs[0] != c.Exit {
		t.Error("entry must fall through to the exit block")
	}
}

func TestCFGIfElseJoin(t *testing.T) {
	c := buildFromSrc(t, "x := 1\nif x > 0 {\nx = 2\n} else {\nx = 3\n}\n_ = x")
	// entry(0) -> then(1), else(2); both -> after(3); after -> exit(4).
	if got, want := cfgShape(c), "0:1,2;1:3;2:3;3:4;4:;"; got != want {
		t.Errorf("if/else shape = %s, want %s", got, want)
	}
}

func TestCFGIfNoElse(t *testing.T) {
	c := buildFromSrc(t, "x := 1\nif x > 0 {\nx = 2\n}\n_ = x")
	// cond edges both into then(1) and past it to after(2).
	if got, want := cfgShape(c), "0:1,2;1:2;2:3;3:;"; got != want {
		t.Errorf("if shape = %s, want %s", got, want)
	}
}

func TestCFGForLoop(t *testing.T) {
	c := buildFromSrc(t, "s := 0\nfor i := 0; i < 3; i++ {\ns += i\n}\n_ = s")
	// entry(0) -> head(1); head -> body(3) and after(2); body -> post(… )
	loops := 0
	for _, b := range c.Blocks {
		if b.Loop {
			loops++
		}
	}
	if loops < 2 {
		t.Errorf("for loop marked %d Loop blocks, want head+body(+post)", loops)
	}
	// A back edge must exist: some Loop block's successor is an earlier block.
	back := false
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index && s.Loop {
				back = true
			}
		}
	}
	if !back {
		t.Error("for loop built no back edge")
	}
}

func TestCFGRangeHeadHoldsStmt(t *testing.T) {
	c := buildFromSrc(t, "xs := []int{1}\nn := 0\nfor _, x := range xs {\nn += x\n}\n_ = n")
	found := false
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				found = true
				if !b.Loop {
					t.Error("range head block must be marked Loop")
				}
				if len(b.Succs) != 2 {
					t.Errorf("range head has %d successors, want body+after", len(b.Succs))
				}
			}
		}
	}
	if !found {
		t.Fatal("no block holds the RangeStmt node")
	}
}

func TestCFGBreakContinue(t *testing.T) {
	c := buildFromSrc(t, `
for i := 0; i < 9; i++ {
	if i == 2 {
		continue
	}
	if i == 5 {
		break
	}
}`)
	// continue must edge to the post/head region, break to the after block;
	// both statements terminate their block (no fallthrough successors into
	// the next statement's block from the branch itself).
	var brk, cont bool
	for _, b := range c.Blocks {
		if len(b.Nodes) == 0 {
			continue
		}
		if bs, ok := b.Nodes[len(b.Nodes)-1].(*ast.BranchStmt); ok {
			switch bs.Tok {
			case token.BREAK:
				brk = true
				for _, s := range b.Succs {
					if s.Loop {
						t.Error("break must leave the loop")
					}
				}
			case token.CONTINUE:
				cont = true
				for _, s := range b.Succs {
					if !s.Loop {
						t.Error("continue must stay in the loop")
					}
				}
			}
		}
	}
	if !brk || !cont {
		t.Fatalf("break/continue blocks not found (brk=%v cont=%v)", brk, cont)
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	c := buildFromSrc(t, `
outer:
for i := 0; i < 3; i++ {
	for j := 0; j < 3; j++ {
		if i+j > 3 {
			break outer
		}
	}
}`)
	for _, b := range c.Blocks {
		if len(b.Nodes) == 0 {
			continue
		}
		if bs, ok := b.Nodes[len(b.Nodes)-1].(*ast.BranchStmt); ok && bs.Tok == token.BREAK {
			for _, s := range b.Succs {
				if s.Loop {
					t.Error("labeled break must exit both loops")
				}
			}
			return
		}
	}
	t.Fatal("no break block found")
}

func TestCFGDefersReplayInExitLIFO(t *testing.T) {
	c := buildFromSrc(t, "defer a()\ndefer b()\nx := 1\n_ = x")
	if len(c.Exit.Nodes) != 2 {
		t.Fatalf("exit holds %d deferred nodes, want 2", len(c.Exit.Nodes))
	}
	first := c.Exit.Nodes[0].(*ast.DeferStmt)
	fn := first.Call.Fun.(*ast.Ident).Name
	if fn != "b" {
		t.Errorf("deferred calls must replay LIFO: first exit node is %s, want b", fn)
	}
}

func TestCFGUnreachableAfterReturn(t *testing.T) {
	c := buildFromSrc(t, "return\nx := 1\n_ = x")
	// The code after return parks in a block with no predecessors.
	var parked *CFGBlock
	for _, b := range c.Blocks {
		if len(b.Nodes) > 0 && len(b.Preds) == 0 && b.Index != 0 {
			parked = b
		}
	}
	if parked == nil {
		t.Fatal("unreachable code must park in a predecessor-less block")
	}
}

func TestCFGSelectClauseBlocks(t *testing.T) {
	c := buildFromSrc(t, `
var a, b chan int
select {
case v := <-a:
	_ = v
case b <- 1:
}`)
	comms := 0
	for _, b := range c.Blocks {
		if len(b.Nodes) == 0 {
			continue
		}
		switch b.Nodes[0].(type) {
		case *ast.AssignStmt, *ast.SendStmt:
			if len(b.Preds) == 1 && b.Preds[0] == c.Blocks[0] {
				comms++
			}
		}
	}
	if comms != 2 {
		t.Errorf("found %d comm clause blocks fanning out of the head, want 2", comms)
	}
}

func TestCFGEmptySelectBlocksForever(t *testing.T) {
	c := buildFromSrc(t, "select {}")
	// select{} never proceeds: the after block has no predecessors, and the
	// exit is reachable only from it (the fall-off edge), so nothing real
	// flows to exit.
	if len(c.Exit.Preds) != 1 || len(c.Exit.Preds[0].Preds) != 0 {
		t.Error("select{} must leave the fall-through path unreachable")
	}
}

func TestCFGGotoEdges(t *testing.T) {
	c := buildFromSrc(t, "i := 0\nloop:\ni++\nif i < 3 {\ngoto loop\n}")
	// goto must produce a backward edge to the labeled block.
	back := false
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index {
				back = true
			}
		}
	}
	if !back {
		t.Error("goto loop built no backward edge")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	c := buildFromSrc(t, `
x := 1
switch x {
case 1:
	x = 2
	fallthrough
case 2:
	x = 3
default:
	x = 4
}
_ = x`)
	// The fallthrough block must edge into the next clause's block, which
	// therefore has two predecessors (head + falling-through clause).
	multi := 0
	for _, b := range c.Blocks {
		if len(b.Preds) == 2 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("fallthrough built no two-predecessor clause block")
	}
}

func TestCFGDeterministicRebuild(t *testing.T) {
	body := `
x := 0
for i := 0; i < 4; i++ {
	switch {
	case i%2 == 0:
		x += i
	default:
		continue
	}
	select {
	case <-make(chan int):
	default:
	}
}
defer println(x)
return`
	a := buildFromSrc(t, body)
	b := buildFromSrc(t, body)
	if cfgShape(a) != cfgShape(b) {
		t.Errorf("rebuild differs:\n%s\n%s", cfgShape(a), cfgShape(b))
	}
}

// TestSolverTermination drives the forward solvers over a looping CFG with a
// transfer that keeps toggling facts, pinning the round bound.
func TestSolverTermination(t *testing.T) {
	c := buildFromSrc(t, "x := 0\nfor {\nx++\n}")
	calls := 0
	solveForwardMay(c, varFacts{}, func(b *CFGBlock, in varFacts) varFacts {
		calls++
		return in
	})
	if calls == 0 {
		t.Fatal("solver never ran")
	}
	if max := solverMaxRounds(c) * len(c.Blocks); calls > max {
		t.Errorf("solver ran %d transfers, bound is %d", calls, max)
	}
	musts := 0
	solveForwardMust(c, func(b *CFGBlock, in lockSet) lockSet {
		musts++
		return in
	})
	if musts == 0 {
		t.Fatal("must-solver never ran")
	}
}
