package lint

// Forward dataflow solvers over the CFG. Facts are per-variable lattices
// keyed on types.Object identity — the same identity discipline the call
// graph uses, so a fact attached to a field's *types.Var composes with the
// interprocedural summaries.
//
// Two lattice shapes cover the shipped rules:
//
//   - varFacts: a may-analysis bitset per object, joined by union
//     (batchescape taint: "this variable MAY alias foreign batch storage");
//   - lockSet: a must-analysis set, joined by intersection with an explicit
//     top element for not-yet-visited blocks (guardedfield: "this mutex
//     class is held on EVERY path reaching here").
//
// Both solvers iterate blocks in index order until fixpoint, which keeps
// the result — and therefore finding order — deterministic. Iteration is
// bounded defensively so a non-monotone transfer (or a pathological fuzz
// input) terminates rather than spinning; the fuzz target asserts the bound
// is never hit on parseable inputs.

import "go/types"

// varFacts maps a variable to a rule-defined bitset of may-facts.
type varFacts map[types.Object]uint8

func (f varFacts) clone() varFacts {
	c := make(varFacts, len(f))
	for k, v := range f {
		c[k] = v
	}
	return c
}

// join unions o into f, reporting whether f changed.
func (f varFacts) join(o varFacts) bool {
	changed := false
	for k, v := range o {
		if f[k]|v != f[k] {
			f[k] |= v
			changed = true
		}
	}
	return changed
}

func factsEqual(a, b varFacts) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// solveForwardMay runs a forward may-analysis to fixpoint and returns the
// in-state of every block, indexed by CFGBlock.Index. transfer receives a
// private copy of the in-state and returns the out-state; it must not
// retain either map. entry seeds Blocks[0].
func solveForwardMay(c *CFG, entry varFacts, transfer func(b *CFGBlock, in varFacts) varFacts) []varFacts {
	in := make([]varFacts, len(c.Blocks))
	out := make([]varFacts, len(c.Blocks))
	for i := range in {
		in[i] = varFacts{}
	}
	in[0] = entry.clone()
	for round := 0; round < solverMaxRounds(c); round++ {
		changed := false
		for _, b := range c.Blocks {
			newOut := transfer(b, in[b.Index].clone())
			if !factsEqual(out[b.Index], newOut) {
				out[b.Index] = newOut
				changed = true
			}
			for _, s := range b.Succs {
				if in[s.Index].join(newOut) {
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return in
}

// lockSet is a must-analysis fact: the set of lock classes held on every
// path. A nil lockSet is the lattice top ("unvisited"); an empty non-nil
// set means "nothing provably held".
type lockSet map[types.Object]bool

func (s lockSet) clone() lockSet {
	if s == nil {
		return nil
	}
	c := make(lockSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

// meet intersects b into a, treating nil as top. Returns the met set and
// whether it differs from a.
func (a lockSet) meet(b lockSet) (lockSet, bool) {
	if a == nil {
		return b.clone(), b != nil
	}
	changed := false
	for k := range a {
		if !b[k] {
			delete(a, k)
			changed = true
		}
	}
	return a, changed
}

func lockSetsEqual(a, b lockSet) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// solveForwardMust runs a forward must-analysis (meet = intersection) and
// returns per-block in-states. Unreachable blocks keep a nil (top) in-state;
// callers treat top as "no facts" when replaying them.
func solveForwardMust(c *CFG, transfer func(b *CFGBlock, in lockSet) lockSet) []lockSet {
	in := make([]lockSet, len(c.Blocks))
	out := make([]lockSet, len(c.Blocks))
	in[0] = lockSet{}
	for round := 0; round < solverMaxRounds(c); round++ {
		changed := false
		for _, b := range c.Blocks {
			src := in[b.Index]
			if src == nil {
				src = lockSet{} // replay unreachable blocks with no facts
			}
			newOut := transfer(b, src.clone())
			if !lockSetsEqual(out[b.Index], newOut) {
				out[b.Index] = newOut
				changed = true
			}
			for _, s := range b.Succs {
				met, ch := in[s.Index].meet(newOut)
				in[s.Index] = met
				if ch {
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return in
}

// solverMaxRounds bounds fixpoint iteration: facts per block change at most
// once per bit/element, so blocks+bits rounds suffice for monotone
// transfers; the slack absorbs join/meet interleaving.
func solverMaxRounds(c *CFG) int {
	return 2*len(c.Blocks) + 16
}

// --- branch-sensitive value solver --------------------------------------
//
// The third solver shape carries the abstract-interpretation value states
// (absint.go) and differs from the may/must solvers in two ways:
//
//   - edges are labeled: a block ending in a Branch condition propagates a
//     REFINED copy of its out-state along the true and false edges, so
//     `if err != nil` narrows nilness and `x > 0` narrows intervals per
//     successor. A refinement that proves an edge infeasible (the condition
//     contradicts the state) simply does not propagate — the successor may
//     end up unreachable, which callers observe as a nil in-state.
//   - loop heads widen: after widenAfterJoins in-state changes at a block
//     with a back edge, joins jump moving interval bounds to ±∞ so counter
//     chains converge in O(1) further rounds instead of one per value.

// edgeKind labels one CFG edge for the refinement hook.
type edgeKind uint8

const (
	edgeFlow  edgeKind = iota // unconditional successor
	edgeTrue                  // Branch condition is true on this edge
	edgeFalse                 // Branch condition is false on this edge
)

// edgeKindOf returns the label of the edge from b to its si-th successor,
// following the builder's convention: Succs[0] is the true edge and Succs[1]
// the false edge of b.Branch.
func edgeKindOf(b *CFGBlock, si int) edgeKind {
	if b.Branch == nil {
		return edgeFlow
	}
	switch si {
	case 0:
		return edgeTrue
	case 1:
		return edgeFalse
	}
	return edgeFlow
}

// isLoopHead reports a Loop-marked block that receives a back edge — the
// widening points of the value solver.
func isLoopHead(b *CFGBlock) bool {
	if !b.Loop {
		return false
	}
	for _, p := range b.Preds {
		if p.Index >= b.Index {
			return true
		}
	}
	return false
}

// widenAfterJoins is how many in-state changes a loop head absorbs by plain
// join before widening kicks in. A couple of precise rounds let short
// constant chains (i := 0; i < 3) settle exactly; after that, moving bounds
// jump to the sentinels.
const widenAfterJoins = 3

// solveForwardVals runs the branch-sensitive forward value analysis to
// fixpoint and returns the per-block in-states (nil = unreachable) plus
// whether a fixpoint was reached within solverMaxRounds. transfer maps a
// block's in-state to its out-state; refine narrows an out-state for a
// true/false edge, returning ok=false when the edge is provably infeasible.
func solveForwardVals(
	c *CFG,
	entry valState,
	transfer func(b *CFGBlock, in valState) valState,
	refine func(b *CFGBlock, kind edgeKind, out valState) (valState, bool),
) ([]valState, bool) {
	in := make([]valState, len(c.Blocks))
	out := make([]valState, len(c.Blocks))
	joins := make([]int, len(c.Blocks))
	in[0] = entry.clone()
	for round := 0; round < solverMaxRounds(c); round++ {
		changed := false
		for _, b := range c.Blocks {
			if in[b.Index] == nil {
				continue // unreachable (so far): nothing to propagate
			}
			newOut := transfer(b, in[b.Index].clone())
			if !valStatesEqual(out[b.Index], newOut) {
				out[b.Index] = newOut
				changed = true
			}
			if newOut == nil {
				continue // block ends in a no-return call: out-edges dead
			}
			for si, s := range b.Succs {
				eo := newOut
				if k := edgeKindOf(b, si); k != edgeFlow && refine != nil {
					var ok bool
					eo, ok = refine(b, k, newOut.clone())
					if !ok {
						continue // infeasible edge
					}
				}
				cur := in[s.Index]
				if cur == nil {
					in[s.Index] = eo.clone()
					changed = true
					continue
				}
				joined := cur.join(eo)
				if isLoopHead(s) && joins[s.Index] >= widenAfterJoins {
					joined = cur.widen(joined)
				}
				if !valStatesEqual(cur, joined) {
					in[s.Index] = joined
					joins[s.Index]++
					changed = true
				}
			}
		}
		if !changed {
			return in, true
		}
	}
	return in, false
}
