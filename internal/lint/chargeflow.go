package lint

import (
	"go/ast"
	"go/types"
)

// ChargeFlowAnalyzer machine-checks the accounting completeness the PR 3
// "work bit-identical across modes" benchmark assumes. Four obligations,
// all interprocedural:
//
//  1. Every concrete executor.Node implementation whose Next can produce a
//     row must reach a Meter charge (Add or AddTicks) from Next or Open
//     (materializing operators like sort and hash-agg charge their whole
//     input in Open; streaming ones charge per row in Next). Likewise every
//     NextBatch that can produce a batch must reach a charge from NextBatch
//     or Open. An uncharged row silently deflates the simulated work the
//     checkpoints compare against.
//  2. Every function that constructs a CheckViolation must reach a write of
//     NodeStats.Violated — EXPLAIN ANALYZE's violation flag comes from that
//     field, and a violation that does not mark its node disappears from
//     the analyze output.
//  3. Every function that extracts a CheckViolation via errors.As must
//     reach an emitter of trace.CheckpointViolated — catching a violation
//     without tracing it breaks the PR 3 violations-traced invariant.
//  4. Every caller of plancache Entry.Invalidate must reach an emitter of
//     trace.CacheInvalidate — an untraced invalidation makes cache verdict
//     streams lie.
//
// An "emitter of kind K" is a function that references the trace.Kind
// constant K and from which a Record(trace.Event) call is reachable.
var ChargeFlowAnalyzer = &Analyzer{
	Name: "chargeflow",
	Doc:  "operator Next paths must reach a Meter charge; violation/checkpoint/invalidation paths must reach their paired trace emission",
	Run:  runChargeFlow,
}

func runChargeFlow(prog *Program, report ReportFunc) {
	g := programGraph(prog)

	nodeIface := findExecutorNodeInterface(prog)
	if nodeIface != nil {
		checkOperatorCharges(g, nodeIface, report)
	}

	recordReach := g.propagate(func(f *FuncNode) bool { return len(f.Sum.Records) > 0 })
	emitterReach := func(kind string) map[*FuncNode]bool {
		return g.propagate(func(f *FuncNode) bool {
			return recordReach[f] && f.Sum.RefsKind(kind)
		})
	}

	// Obligation 2: CheckViolation construction must mark the node.
	violReach := g.propagate(func(f *FuncNode) bool { return len(f.Sum.ViolatedWrites) > 0 })
	for _, fn := range g.sortedFuncs() {
		for _, pos := range fn.Sum.ViolationLits {
			if !violReach[fn] {
				report(pos, "CheckViolation constructed in %s but no NodeStats.Violated write is reachable; the violation will not surface in EXPLAIN ANALYZE", fn.Name)
			}
		}
	}

	// Obligation 3: errors.As(..., **CheckViolation) must trace the violation.
	violatedEmitters := emitterReach("CheckpointViolated")
	for _, fn := range g.sortedFuncs() {
		for _, pos := range fn.Sum.ErrorsAsCV {
			if !violatedEmitters[fn] {
				report(pos, "CheckViolation extracted via errors.As in %s but no trace.CheckpointViolated emission is reachable; caught violations must be traced", fn.Name)
			}
		}
	}

	// Obligation 4: Entry.Invalidate must trace the invalidation.
	invalidateEmitters := emitterReach("CacheInvalidate")
	for _, fn := range g.sortedFuncs() {
		for _, pos := range fn.Sum.InvalidateCalls {
			if !invalidateEmitters[fn] {
				report(pos, "plan-cache Entry.Invalidate called in %s but no trace.CacheInvalidate emission is reachable; invalidations must be traced", fn.Name)
			}
		}
	}
}

// findExecutorNodeInterface locates executor.Node's interface type through
// the loaded packages (directly, or via a fixture package's imports).
func findExecutorNodeInterface(prog *Program) *types.Interface {
	lookup := func(tp *types.Package) *types.Interface {
		if tp == nil || tp.Path() != executorPath {
			return nil
		}
		tn, ok := tp.Scope().Lookup("Node").(*types.TypeName)
		if !ok {
			return nil
		}
		iface, _ := tn.Type().Underlying().(*types.Interface)
		return iface
	}
	for _, pkg := range prog.Packages {
		if pkg.Types == nil {
			continue
		}
		if iface := lookup(pkg.Types); iface != nil {
			return iface
		}
		for _, imp := range pkg.Types.Imports() {
			if iface := lookup(imp); iface != nil {
				return iface
			}
		}
	}
	return nil
}

// checkOperatorCharges enforces obligation 1 over every concrete Node
// implementation declared under the executor path.
func checkOperatorCharges(g *CallGraph, nodeIface *types.Interface, report ReportFunc) {
	chargeReach := g.propagate(func(f *FuncNode) bool { return len(f.Sum.Charges) > 0 })

	for _, pkg := range g.Prog.Packages {
		if pkg.Types == nil || !inScope(pkg.Path, []string{executorPath}) {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() || types.IsInterface(tn.Type()) {
				continue
			}
			T := tn.Type()
			var recv types.Type
			switch {
			case types.Implements(T, nodeIface):
				recv = T
			case types.Implements(types.NewPointer(T), nodeIface):
				recv = types.NewPointer(T)
			default:
				continue
			}
			open := methodNode(g, recv, "Open")
			openCharges := open != nil && chargeReach[open]
			if next := methodNode(g, recv, "Next"); next != nil && producesRows(next) &&
				!chargeReach[next] && !openCharges {
				report(next.Pos, "%s.Next produces rows but no Meter charge is reachable from Next or Open; uncharged rows deflate simulated work", tn.Name())
			}
			if nb := methodNode(g, recv, "NextBatch"); nb != nil && producesBatches(nb) &&
				!chargeReach[nb] && !openCharges {
				report(nb.Pos, "%s.NextBatch produces rows but no Meter charge is reachable from NextBatch or Open; uncharged rows deflate simulated work", tn.Name())
			}
		}
	}
}

// methodNode resolves a named method of recv to its graph node, or nil.
func methodNode(g *CallGraph, recv types.Type, name string) *FuncNode {
	obj, _, _ := types.LookupFieldOrMethod(recv, true, nil, name)
	f, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return g.byObj[f]
}

// producesRows reports whether a Next body contains a return whose
// more-rows result is not the literal false — i.e. the operator can hand a
// row upward. Exchange stubs that only ever return (nil, false, nil) are
// exempt from the charge obligation.
// producesBatches reports whether a NextBatch body contains a return whose
// batch result is not the literal nil — i.e. the operator can hand a batch
// upward. Stubs that only ever return (nil, err) are exempt from the charge
// obligation.
func producesBatches(nb *FuncNode) bool {
	if nb.Body == nil {
		return false
	}
	produces := false
	ast.Inspect(nb.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) < 2 {
			return true
		}
		if id, ok := ret.Results[0].(*ast.Ident); ok && id.Name == "nil" {
			return true
		}
		produces = true
		return true
	})
	return produces
}

func producesRows(next *FuncNode) bool {
	if next.Body == nil {
		return false
	}
	produces := false
	ast.Inspect(next.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) < 2 {
			return true
		}
		if id, ok := ret.Results[1].(*ast.Ident); ok && id.Name == "false" {
			return true
		}
		produces = true
		return true
	})
	return produces
}
