package lint

// Interprocedural composition of the value layer. Each declared function
// gets a ValueSummary — per-result interval, nilness, len, identity-param
// forwarding, and "is this result nil when the trailing error is (non-)nil"
// facts — built from its solved return states and consumed by callers'
// abstract interpreters (absint.go) at statically resolved call sites.
//
// The analysis runs in three phases over the §10 call graph's canonical
// function order (sortedFuncs — position-sorted, so results and therefore
// findings are deterministic):
//
//  1. Sink fixpoint (syntactic): which parameters flow into
//     (*executor.Meter).AddTicks. Backward closure through plain
//     assignments but NOT through call arguments — a value laundered
//     through a helper (e.g. a saturating multiply) is the helper's
//     responsibility, so wrapping arithmetic in a checked helper is how
//     engine code discharges the overflow rule without an allow.
//  2. Summary fixpoint: solve every function, rebuild its summary from the
//     evaluated return sites, repeat until summaries stop changing
//     (bounded; summaries only feed result values, so a stale round loses
//     precision, never soundness).
//  3. Site collection: one final solve+replay per function with the site
//     hooks armed, producing the mulAdd/div/deref/range/index site lists
//     the overflow, nilguard and rangeinvariant rules walk.
//
// programValues memoizes per Program, mirroring programGraph: the three
// value rules share one analysis pass.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// nilWhen is a conditional nilness fact: what a call result is known to be
// on the error (or success) path of its callee.
type nilWhen uint8

const (
	nilUnknownW   nilWhen = iota // no returns classified for this path
	nilNeverW                    // result proven non-nil on every such return
	nilSometimesW                // result nil on some, non-nil on other returns
	nilAlwaysW                   // result proven nil on every such return
)

// ResultFact summarizes one result position of a function.
type ResultFact struct {
	IV       Interval // join of the result's intervals over all returns
	Nil      nilness  // join of the result's nilness over all returns
	Len      Interval // join of the result's len intervals (slices/maps)
	NilOnErr nilWhen  // result nilness when the trailing error is non-nil
	NilOnOK  nilWhen  // result nilness when the trailing error is nil
	Param    int      // parameter returned verbatim by every return, or -1
}

// ValueSummary is a function's param→result value transfer.
type ValueSummary struct {
	Results []ResultFact
}

func summariesEqual(a, b *ValueSummary) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if len(a.Results) != len(b.Results) {
		return false
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			return false
		}
	}
	return true
}

// valueAnalysis is the module-wide value layer: summaries, sink parameters
// and per-function site lists, built once per Program.
type valueAnalysis struct {
	prog *Program
	g    *CallGraph

	sinkParams   map[*types.Func][]bool
	sinkObjsByFn map[*FuncNode]map[types.Object]bool
	summaries    map[*types.Func]*ValueSummary
	sites        map[*FuncNode]*valueSites
	funcs        []*FuncNode // canonical order
	nonConverged map[*FuncNode]bool
}

// valueAnalyses memoizes per Program. Run drives analyzers sequentially, so
// no locking is needed (same discipline as callGraphs).
var valueAnalyses = map[*Program]*valueAnalysis{}

func programValues(prog *Program) *valueAnalysis {
	if va, ok := valueAnalyses[prog]; ok {
		return va
	}
	va := &valueAnalysis{
		prog:         prog,
		g:            programGraph(prog),
		sinkParams:   map[*types.Func][]bool{},
		sinkObjsByFn: map[*FuncNode]map[types.Object]bool{},
		summaries:    map[*types.Func]*ValueSummary{},
		sites:        map[*FuncNode]*valueSites{},
		nonConverged: map[*FuncNode]bool{},
	}
	va.run()
	valueAnalyses[prog] = va
	return va
}

// summaryRounds bounds the interprocedural fixpoint. Call chains deeper
// than this lose precision at the boundary, never correctness.
const summaryRounds = 4

func (va *valueAnalysis) run() {
	va.funcs = va.g.sortedFuncs()
	va.computeSinks()
	ips := make(map[*FuncNode]*interp, len(va.funcs))
	for _, fn := range va.funcs {
		ips[fn] = newInterp(va, fn)
	}
	for round := 0; round < summaryRounds; round++ {
		changed := false
		for _, fn := range va.funcs {
			if fn.Obj == nil {
				continue // literals and synthetic init nodes have no call sites to summarize
			}
			sum, _, _ := va.analyzeFn(ips[fn], false)
			if sum == nil {
				continue
			}
			if !summariesEqual(va.summaries[fn.Obj], sum) {
				va.summaries[fn.Obj] = sum
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, fn := range va.funcs {
		_, sites, converged := va.analyzeFn(ips[fn], true)
		va.sites[fn] = sites
		if !converged {
			va.nonConverged[fn] = true
		}
	}
}

// analyzeFn solves one function and replays it, returning the rebuilt
// summary (nil for literals), collected sites (nil unless requested), and
// whether the solver converged.
func (va *valueAnalysis) analyzeFn(ip *interp, collectSites bool) (*ValueSummary, *valueSites, bool) {
	fv := ip.solve()
	var rets []returnFact
	ip.rets = &rets
	var sites *valueSites
	if collectSites {
		sites = &valueSites{}
		ip.sites = sites
	}
	ip.replay(fv)
	ip.rets, ip.sites = nil, nil
	var sum *ValueSummary
	if ip.fn.Obj != nil {
		if sig := ip.signature(); sig != nil {
			sum = buildSummary(sig, rets)
		}
	}
	return sum, sites, fv.converged
}

// buildSummary folds a function's evaluated return sites into per-result
// facts.
func buildSummary(sig *types.Signature, rets []returnFact) *ValueSummary {
	n := sig.Results().Len()
	sum := &ValueSummary{Results: make([]ResultFact, n)}
	for i := range sum.Results {
		sum.Results[i] = ResultFact{IV: FullInterval(), Nil: nilUnknown, Len: FullInterval(), Param: -1}
	}
	if n == 0 || len(rets) == 0 {
		return sum
	}
	errLast := isErrorType(sig.Results().At(n - 1).Type())
	for i := 0; i < n; i++ {
		iv, lenIv := EmptyInterval(), EmptyInterval()
		nl := nilness(0)
		first := true
		param := -2
		var errNils, okNils []nilness
		for _, r := range rets {
			v := r.vals[i]
			iv = iv.Join(v.iv)
			lenIv = lenIv.Join(v.lenIv)
			if first {
				nl = v.nl
				first = false
			} else {
				nl = joinNil(nl, v.nl)
			}
			switch {
			case param == -2:
				param = r.params[i]
			case param != r.params[i]:
				param = -1
			}
			if errLast && i < n-1 {
				// Classify this return by the trailing error's nilness:
				// proven non-nil → error path, proven nil → success path,
				// unknown → counts toward both (degrades to sometimes).
				switch r.vals[n-1].nl {
				case nilNo:
					errNils = append(errNils, v.nl)
				case nilYes:
					okNils = append(okNils, v.nl)
				default:
					errNils = append(errNils, v.nl)
					okNils = append(okNils, v.nl)
				}
			}
		}
		if param == -2 {
			param = -1
		}
		// Variadic identity forwarding is positionally unreliable; drop it.
		if param >= 0 && sig.Variadic() && param >= sig.Params().Len()-1 {
			param = -1
		}
		f := &sum.Results[i]
		f.IV, f.Len, f.Nil, f.Param = iv, lenIv, nl, param
		if f.IV.IsEmpty() {
			f.IV = FullInterval()
		}
		if f.Len.IsEmpty() {
			f.Len = FullInterval()
		}
		f.NilOnErr = classifyNil(errNils)
		f.NilOnOK = classifyNil(okNils)
	}
	return sum
}

// classifyNil folds per-return nilness observations into a nilWhen fact.
// "always"/"never" require agreement with no unknowns; positive nil
// evidence anywhere degrades to "sometimes".
func classifyNil(obs []nilness) nilWhen {
	if len(obs) == 0 {
		return nilUnknownW
	}
	var yes, no, maybe, unk int
	for _, o := range obs {
		switch o {
		case nilYes:
			yes++
		case nilNo:
			no++
		case nilMaybe:
			maybe++
		default:
			unk++
		}
	}
	switch {
	case yes == len(obs):
		return nilAlwaysW
	case no == len(obs):
		return nilNeverW
	case yes > 0 || maybe > 0:
		return nilSometimesW
	}
	return nilUnknownW
}

// --- summary consumption (called from absint's evalCall) -----------------

// resultVal abstracts result i of a call to callee given the evaluated
// arguments: identity-forwarded parameters carry the argument's value,
// otherwise the summary's joined facts apply, always clipped to the
// declared result type.
func (va *valueAnalysis) resultVal(callee *types.Func, i int, rt types.Type, call *ast.CallExpr, argVals []absVal) absVal {
	v := topForType(rt)
	sum := va.summaries[callee]
	if sum == nil || i >= len(sum.Results) {
		return v
	}
	f := sum.Results[i]
	if f.Param >= 0 && f.Param < len(argVals) && !call.Ellipsis.IsValid() {
		av := argVals[f.Param]
		if met := av.iv.Meet(v.iv); !met.IsEmpty() {
			v.iv = met
			v.flags |= av.flags & fZeroPath
		}
		v.nl = av.nl
		v.lenIv = av.lenIv
		return v
	}
	if met := f.IV.Meet(v.iv); !met.IsEmpty() {
		v.iv = met
	}
	if f.Nil != nilUnknown {
		v.nl = f.Nil
	}
	v.lenIv = f.Len
	return v
}

// nilOnErr reports what result i of callee is when its trailing error is
// non-nil; nilUnknownW for unsummarized (stdlib, interface) callees.
func (va *valueAnalysis) nilOnErr(callee *types.Func, i int) nilWhen {
	if sum := va.summaries[callee]; sum != nil && i < len(sum.Results) {
		return sum.Results[i].NilOnErr
	}
	return nilUnknownW
}

// nilOnOK reports what result i of callee is when its trailing error is nil.
func (va *valueAnalysis) nilOnOK(callee *types.Func, i int) nilWhen {
	if sum := va.summaries[callee]; sum != nil && i < len(sum.Results) {
		return sum.Results[i].NilOnOK
	}
	return nilUnknownW
}

// --- tick-sink fixpoint --------------------------------------------------

// isMeterAddTicks reports a (*executor.Meter).AddTicks call.
func isMeterAddTicks(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Name() != "AddTicks" {
		return false
	}
	pkgPath, typeName := methodRecv(f)
	return pkgPath == executorPath && typeName == "Meter"
}

// sinkRounds bounds the interprocedural sink fixpoint (sink-ness propagates
// one call edge per round; metering call chains are shallow).
const sinkRounds = 10

// computeSinks runs the module-wide sink fixpoint: a function's parameter
// is a tick sink if its value flows (through plain assignments) into an
// AddTicks argument or into another function's sink parameter.
func (va *valueAnalysis) computeSinks() {
	for round := 0; round < sinkRounds; round++ {
		changed := false
		for _, fn := range va.funcs {
			if fn.Body == nil {
				continue
			}
			objs := va.sinkObjsFor(fn)
			if !objSetsEqual(va.sinkObjsByFn[fn], objs) {
				va.sinkObjsByFn[fn] = objs
				changed = true
			}
			if fn.Obj == nil {
				continue
			}
			sig, ok := fn.Obj.Type().(*types.Signature)
			if !ok {
				continue
			}
			sp := make([]bool, sig.Params().Len())
			for i := range sp {
				sp[i] = objs[sig.Params().At(i)]
			}
			if !boolsEqual(va.sinkParams[fn.Obj], sp) {
				va.sinkParams[fn.Obj] = sp
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

func objSetsEqual(a, b map[types.Object]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sinkAssign is one plain assignment edge for the backward closure.
type sinkAssign struct {
	lhs types.Object
	rhs ast.Expr
}

// sinkObjsFor computes one function's sink objects under the current
// sinkParams: seeds from AddTicks/sink-param call arguments, closed
// backward over plain assignments.
func (va *valueAnalysis) sinkObjsFor(fn *FuncNode) map[types.Object]bool {
	info := fn.Pkg.Info
	w := &walker{pkg: fn.Pkg}
	mark := map[types.Object]bool{}
	var assigns []sinkAssign

	record := func(l, r ast.Expr) {
		id, ok := unparen(l).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if _, isVar := obj.(*types.Var); isVar {
			assigns = append(assigns, sinkAssign{lhs: obj, rhs: r})
		}
	}

	inspectNoLit(fn.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isMeterAddTicks(info, n) {
				for _, a := range n.Args {
					addSinkRoots(info, a, mark)
				}
				return
			}
			callee := w.staticCallee(n)
			if callee == nil {
				return
			}
			sp := va.sinkParams[callee]
			for i, a := range n.Args {
				if i < len(sp) && sp[i] {
					addSinkRoots(info, a, mark)
				}
			}
		case *ast.AssignStmt:
			switch {
			case n.Tok == token.ASSIGN || n.Tok == token.DEFINE:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						record(n.Lhs[i], n.Rhs[i])
					}
				}
			case len(n.Lhs) == 1 && len(n.Rhs) == 1:
				record(n.Lhs[0], n.Rhs[0]) // compound assign: x op= rhs
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i := range vs.Names {
					record(vs.Names[i], vs.Values[i])
				}
			}
		}
	})

	// Backward closure: if the LHS is a sink, the RHS roots are sinks.
	for {
		changed := false
		for _, a := range assigns {
			if mark[a.lhs] && addSinkRoots(info, a.rhs, mark) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return mark
}

// addSinkRoots marks the identifier roots of a sink-feeding expression,
// descending through parens, arithmetic and type conversions but stopping
// at real calls (the callee's own sink parameters handle those), selectors,
// indexes and literals. Reports whether anything new was marked.
func addSinkRoots(info *types.Info, e ast.Expr, mark map[types.Object]bool) bool {
	changed := false
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			if v, ok := obj.(*types.Var); ok && !mark[v] {
				mark[v] = true
				changed = true
			}
		case *ast.BinaryExpr:
			walk(x.X)
			walk(x.Y)
		case *ast.UnaryExpr:
			if x.Op == token.SUB || x.Op == token.ADD || x.Op == token.XOR {
				walk(x.X)
			}
		case *ast.CallExpr:
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				walk(x.Args[0]) // conversion: the value flows through
			}
		}
	}
	walk(e)
	return changed
}
