package lint

// Per-function summaries: the facts the interprocedural rules consume.
// The walker in this file populates them while building call edges, in a
// single deterministic traversal per function body.

import (
	"go/ast"
	"go/token"
	"go/types"
)

const (
	executorPath  = "repro/internal/executor"
	tracePath     = "repro/internal/trace"
	plancachePath = "repro/internal/plancache"
)

// EventKind classifies one entry in a function's ordered event stream.
type EventKind int

// The event kinds the lock-order replay distinguishes.
const (
	EvLock   EventKind = iota // mutex Lock/RLock
	EvUnlock                  // mutex Unlock/RUnlock (non-deferred only)
	EvBlock                   // potentially blocking operation
	EvCall                    // resolved synchronous call
)

// Event is one lock, blocking, or call site, in source order. The lockorder
// rule replays the stream with a held-lock set.
type Event struct {
	Kind    EventKind
	Pos     token.Pos
	Class   types.Object // lock class for EvLock/EvUnlock
	Name    string       // lock class display name, blocking-op description, or callee name
	Write   bool         // EvLock: write lock (Lock) vs read lock (RLock)
	Targets []*FuncNode  // EvCall: one static callee, or CHA-resolved implementations
}

// WGOpKind is a sync.WaitGroup operation.
type WGOpKind int

// The WaitGroup operations the leak rule pairs up.
const (
	WGAdd WGOpKind = iota
	WGDone
	WGWait
)

// WGOp is one WaitGroup Add/Done/Wait call, keyed by the WaitGroup's
// variable identity so Add in Open, Done in a worker literal, and Wait in a
// closer pair up across functions.
type WGOp struct {
	Kind  WGOpKind
	Class types.Object
	Pos   token.Pos
}

// ChanOpKind is a channel operation.
type ChanOpKind int

// The channel operations the leak rule tracks per channel identity.
const (
	ChanSend ChanOpKind = iota
	ChanRecv
	ChanClose
	ChanRange
)

// ChanOp is one channel operation, keyed by the channel's variable identity.
type ChanOp struct {
	Kind  ChanOpKind
	Class types.Object
	Pos   token.Pos
}

// Summary is the per-function fact set.
type Summary struct {
	Events []Event // ordered lock/block/call stream for lockorder

	Charges  []token.Pos // calls to (*executor.Meter).Add
	KindRefs []KindRef   // uses of trace.Kind constants
	Records  []token.Pos // calls to a Record(trace.Event) method

	WGOps   []WGOp
	ChanOps []ChanOp

	ViolationLits   []token.Pos // &executor.CheckViolation{...} literals
	ViolatedWrites  []token.Pos // assignments to NodeStats.Violated
	ErrorsAsCV      []token.Pos // errors.As(err, &*CheckViolation)
	InvalidateCalls []token.Pos // calls to (*plancache.Entry).Invalidate
}

// KindRef is a reference to a trace.Kind constant by name.
type KindRef struct {
	Name string
	Pos  token.Pos
}

// RefsKind reports whether the function references the trace.Kind constant.
func (s *Summary) RefsKind(name string) bool {
	for _, k := range s.KindRefs {
		if k.Name == name {
			return true
		}
	}
	return false
}

// --- the walker ---------------------------------------------------------

type walker struct {
	g       *CallGraph
	pkg     *Package
	pending *[]pendingIface
}

// walkBody traverses fn's body, populating fn.Sum and fn's call edges.
// Function literals become their own nodes (walked recursively); `go`
// statements become spawns rather than call edges.
func (w *walker) walkBody(fn *FuncNode, body *ast.BlockStmt) {
	if fn == nil || body == nil {
		return
	}
	for _, stmt := range body.List {
		w.walkStmt(fn, stmt)
	}
}

func (w *walker) walkStmt(fn *FuncNode, stmt ast.Stmt) {
	switch s := stmt.(type) {
	case nil:
	case *ast.GoStmt:
		w.walkGo(fn, s)
	case *ast.DeferStmt:
		w.walkCall(fn, s.Call, true)
	case *ast.SendStmt:
		w.walkExpr(fn, s.Chan)
		w.walkExpr(fn, s.Value)
		w.chanOp(fn, ChanSend, s.Chan, s.Pos())
		w.block(fn, "channel send", s.Pos())
	case *ast.RangeStmt:
		w.walkExpr(fn, s.X)
		if t := w.pkg.Info.TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				w.chanOp(fn, ChanRange, s.X, s.Pos())
				w.block(fn, "channel range", s.Pos())
			}
		}
		w.walkBody(fn, s.Body)
	case *ast.SelectStmt:
		blocking := true
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				blocking = false // default clause
			}
		}
		if blocking {
			w.block(fn, "select", s.Pos())
		}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			// Record the comm's channel op without a second block event.
			switch comm := cc.Comm.(type) {
			case *ast.SendStmt:
				w.walkExpr(fn, comm.Chan)
				w.walkExpr(fn, comm.Value)
				w.chanOp(fn, ChanSend, comm.Chan, comm.Pos())
			case *ast.ExprStmt:
				w.commRecv(fn, comm.X)
			case *ast.AssignStmt:
				for _, rhs := range comm.Rhs {
					w.commRecv(fn, rhs)
				}
			}
			for _, body := range cc.Body {
				w.walkStmt(fn, body)
			}
		}
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			w.noteViolatedWrite(fn, lhs)
			w.walkExpr(fn, lhs)
		}
		for _, rhs := range s.Rhs {
			w.walkExpr(fn, rhs)
		}
	case *ast.ExprStmt:
		w.walkExpr(fn, s.X)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.walkExpr(fn, r)
		}
	case *ast.IfStmt:
		w.walkStmt(fn, s.Init)
		w.walkExpr(fn, s.Cond)
		w.walkBody(fn, s.Body)
		w.walkStmt(fn, s.Else)
	case *ast.ForStmt:
		w.walkStmt(fn, s.Init)
		w.walkExpr(fn, s.Cond)
		w.walkStmt(fn, s.Post)
		w.walkBody(fn, s.Body)
	case *ast.SwitchStmt:
		w.walkStmt(fn, s.Init)
		w.walkExpr(fn, s.Tag)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.walkExpr(fn, e)
				}
				for _, b := range cc.Body {
					w.walkStmt(fn, b)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		w.walkStmt(fn, s.Init)
		w.walkStmt(fn, s.Assign)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, b := range cc.Body {
					w.walkStmt(fn, b)
				}
			}
		}
	case *ast.BlockStmt:
		w.walkBody(fn, s)
	case *ast.LabeledStmt:
		w.walkStmt(fn, s.Stmt)
	case *ast.IncDecStmt:
		w.walkExpr(fn, s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(fn, v)
					}
				}
			}
		}
	}
}

// walkExpr traverses an expression, turning calls into events/edges and
// literals into child nodes.
func (w *walker) walkExpr(fn *FuncNode, e ast.Expr) {
	switch x := e.(type) {
	case nil:
	case *ast.CallExpr:
		w.walkCall(fn, x, false)
	case *ast.FuncLit:
		lit := w.litNode(fn, x)
		// A literal that is not the operand of `go` runs on this goroutine
		// (defer, immediate call, callback registration): call edge.
		fn.noteCall(lit, x.Pos())
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			w.walkExpr(fn, x.X)
			w.chanOp(fn, ChanRecv, x.X, x.Pos())
			w.block(fn, "channel receive", x.Pos())
			return
		}
		w.walkExpr(fn, x.X)
	case *ast.BinaryExpr:
		w.walkExpr(fn, x.X)
		w.walkExpr(fn, x.Y)
	case *ast.ParenExpr:
		w.walkExpr(fn, x.X)
	case *ast.StarExpr:
		w.walkExpr(fn, x.X)
	case *ast.SelectorExpr:
		w.noteKindRef(fn, x.Sel)
		w.walkExpr(fn, x.X)
	case *ast.Ident:
		w.noteKindRef(fn, x)
	case *ast.IndexExpr:
		w.walkExpr(fn, x.X)
		w.walkExpr(fn, x.Index)
	case *ast.IndexListExpr:
		w.walkExpr(fn, x.X)
		for _, idx := range x.Indices {
			w.walkExpr(fn, idx)
		}
	case *ast.SliceExpr:
		w.walkExpr(fn, x.X)
		w.walkExpr(fn, x.Low)
		w.walkExpr(fn, x.High)
		w.walkExpr(fn, x.Max)
	case *ast.TypeAssertExpr:
		w.walkExpr(fn, x.X)
	case *ast.CompositeLit:
		w.noteViolationLit(fn, x)
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.walkExpr(fn, kv.Value)
				continue
			}
			w.walkExpr(fn, el)
		}
	case *ast.KeyValueExpr:
		w.walkExpr(fn, x.Value)
	}
}

// commRecv records the channel receive inside a select comm clause (no
// extra block event — the select itself already produced one).
func (w *walker) commRecv(fn *FuncNode, e ast.Expr) {
	if un, ok := e.(*ast.UnaryExpr); ok && un.Op == token.ARROW {
		w.walkExpr(fn, un.X)
		w.chanOp(fn, ChanRecv, un.X, un.Pos())
		return
	}
	w.walkExpr(fn, e)
}

func (w *walker) litNode(parent *FuncNode, lit *ast.FuncLit) *FuncNode {
	if n, ok := w.g.byLit[lit]; ok {
		return n
	}
	n := &FuncNode{
		Lit:    lit,
		Name:   parent.Name + "$lit",
		Pkg:    w.pkg,
		Body:   lit.Body,
		Pos:    lit.Pos(),
		Parent: parent,
	}
	w.g.addNode(n)
	w.walkBody(n, lit.Body)
	return n
}

func (w *walker) walkGo(fn *FuncNode, s *ast.GoStmt) {
	// Arguments evaluate synchronously on the spawner.
	for _, arg := range s.Call.Args {
		w.walkExpr(fn, arg)
	}
	sp := &GoSpawn{Pos: s.Pos(), In: fn, Pkg: w.pkg}
	switch fun := s.Call.Fun.(type) {
	case *ast.FuncLit:
		sp.Callee = w.litNode(fn, fun)
	default:
		if obj := w.staticCallee(s.Call); obj != nil {
			sp.Callee = w.g.byObj[obj]
		}
	}
	w.g.Spawns = append(w.g.Spawns, sp)
}

// walkCall handles a call expression: summary facts, blocking
// classification, and the call edge. deferred marks `defer f(...)` — its
// unlocks are held to function end rather than released in sequence.
func (w *walker) walkCall(fn *FuncNode, call *ast.CallExpr, deferred bool) {
	// Type conversions are not calls.
	if tv, ok := w.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		for _, arg := range call.Args {
			w.walkExpr(fn, arg)
		}
		return
	}

	// close(ch) builtin.
	if id, ok := call.Fun.(*ast.Ident); ok && len(call.Args) == 1 {
		if b, isB := w.pkg.Info.Uses[id].(*types.Builtin); isB && b.Name() == "close" {
			w.walkExpr(fn, call.Args[0])
			w.chanOp(fn, ChanClose, call.Args[0], call.Pos())
			return
		}
	}

	for _, arg := range call.Args {
		w.walkExpr(fn, arg)
	}
	w.noteErrorsAs(fn, call)

	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if w.handleMethodCall(fn, call, sel, deferred) {
			return
		}
		w.noteKindRef(fn, sel.Sel)
		w.walkExpr(fn, sel.X)
	} else {
		w.walkExpr(fn, call.Fun)
	}

	if obj := w.staticCallee(call); obj != nil {
		if callee := w.g.byObj[obj]; callee != nil {
			fn.noteCall(callee, call.Pos())
			return
		}
		return
	}
	if method := w.interfaceCallee(call); method != nil {
		*w.pending = append(*w.pending, pendingIface{caller: fn, method: method, evIdx: len(fn.Sum.Events)})
		fn.Sum.Events = append(fn.Sum.Events, Event{Kind: EvCall, Pos: call.Pos(), Name: method.Name()})
	}
}

// noteCall records both the graph edge and the ordered call event at the
// call site.
func (fn *FuncNode) noteCall(callee *FuncNode, pos token.Pos) {
	fn.addCall(callee)
	fn.Sum.Events = append(fn.Sum.Events, Event{Kind: EvCall, Pos: pos, Targets: []*FuncNode{callee}, Name: callee.Name})
}

// handleMethodCall recognizes the method families the rules track (mutex,
// WaitGroup, Cond, Meter, Record, Invalidate, executor.Run) and records
// their facts. It returns true when the call was fully handled.
func (w *walker) handleMethodCall(fn *FuncNode, call *ast.CallExpr, sel *ast.SelectorExpr, deferred bool) bool {
	obj, _ := w.calleeObj(sel)
	if obj == nil {
		return false
	}
	pkgPath, typeName := methodRecv(obj)
	name := obj.Name()

	switch {
	case pkgPath == "sync" && (typeName == "Mutex" || typeName == "RWMutex"):
		class, cname := w.classOf(sel.X)
		switch name {
		case "Lock", "RLock":
			fn.Sum.Events = append(fn.Sum.Events, Event{
				Kind: EvLock, Pos: call.Pos(), Class: class, Name: cname, Write: name == "Lock",
			})
		case "Unlock", "RUnlock":
			if !deferred {
				fn.Sum.Events = append(fn.Sum.Events, Event{Kind: EvUnlock, Pos: call.Pos(), Class: class, Name: cname})
			}
		case "TryLock", "TryRLock":
			// Non-blocking, and failure paths release nothing: ignore.
		}
		w.walkExpr(fn, sel.X)
		return true

	case pkgPath == "sync" && typeName == "WaitGroup":
		class, _ := w.classOf(sel.X)
		switch name {
		case "Add":
			fn.Sum.WGOps = append(fn.Sum.WGOps, WGOp{Kind: WGAdd, Class: class, Pos: call.Pos()})
		case "Done":
			fn.Sum.WGOps = append(fn.Sum.WGOps, WGOp{Kind: WGDone, Class: class, Pos: call.Pos()})
		case "Wait":
			fn.Sum.WGOps = append(fn.Sum.WGOps, WGOp{Kind: WGWait, Class: class, Pos: call.Pos()})
			w.block(fn, "WaitGroup.Wait", call.Pos())
		}
		w.walkExpr(fn, sel.X)
		return true

	case pkgPath == "sync" && typeName == "Cond" && name == "Wait":
		w.block(fn, "Cond.Wait", call.Pos())
		w.walkExpr(fn, sel.X)
		return true

	case pkgPath == executorPath && typeName == "Meter" && (name == "Add" || name == "AddTicks"):
		fn.Sum.Charges = append(fn.Sum.Charges, call.Pos())
		w.walkExpr(fn, sel.X)
		return true

	case pkgPath == plancachePath && typeName == "Entry" && name == "Invalidate":
		fn.Sum.InvalidateCalls = append(fn.Sum.InvalidateCalls, call.Pos())
		// fall through to edge recording below
	}

	// Record(ev trace.Event) — concrete or through the Recorder interface.
	if name == "Record" && isRecordSig(obj) {
		fn.Sum.Records = append(fn.Sum.Records, call.Pos())
	}

	w.walkExpr(fn, sel.X)

	if callee := w.g.byObj[obj]; callee != nil {
		// executor.Run-style node drains are long-running; the direct
		// blocking classification lives with the callee's own channel ops,
		// so no extra fact is needed here.
		fn.noteCall(callee, call.Pos())
		return true
	}
	if isInterfaceMethod(obj) {
		*w.pending = append(*w.pending, pendingIface{caller: fn, method: obj, evIdx: len(fn.Sum.Events)})
		fn.Sum.Events = append(fn.Sum.Events, Event{Kind: EvCall, Pos: call.Pos(), Name: obj.Name()})
		return true
	}
	return true
}

// calleeObj resolves the *types.Func a selector call targets.
func (w *walker) calleeObj(sel *ast.SelectorExpr) (*types.Func, bool) {
	if s, ok := w.pkg.Info.Selections[sel]; ok {
		f, _ := s.Obj().(*types.Func)
		return f, true
	}
	// Qualified identifier: pkg.Func.
	f, _ := w.pkg.Info.Uses[sel.Sel].(*types.Func)
	return f, false
}

// staticCallee resolves a call to a statically known declared function.
func (w *walker) staticCallee(call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		f, _ := w.pkg.Info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := w.calleeObj(fun)
		if f != nil && !isInterfaceMethod(f) {
			return f
		}
	case *ast.ParenExpr:
		inner := &ast.CallExpr{Fun: fun.X, Args: call.Args}
		return w.staticCallee(inner)
	}
	return nil
}

// interfaceCallee resolves a call through an interface method.
func (w *walker) interfaceCallee(call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	f, _ := w.calleeObj(sel)
	if f != nil && isInterfaceMethod(f) {
		return f
	}
	return nil
}

func isInterfaceMethod(f *types.Func) bool {
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// methodRecv returns the package path and named receiver type of a method,
// or ("", "") for plain functions.
func methodRecv(f *types.Func) (pkgPath, typeName string) {
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}

// isRecordSig reports whether f has the Record(trace.Event) shape.
func isRecordSig(f *types.Func) bool {
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Params().Len() != 1 || sig.Results().Len() != 0 {
		return false
	}
	named, ok := sig.Params().At(0).Type().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Event" && obj.Pkg() != nil && obj.Pkg().Path() == tracePath
}

// classOf resolves a synchronization object operand (mutex, WaitGroup,
// channel) to a stable class: the *types.Var of the field or variable.
// Field identity is shared across all instances of the owning struct, which
// is exactly the granularity the lock-order and join analyses need.
func (w *walker) classOf(e ast.Expr) (types.Object, string) {
	switch x := e.(type) {
	case *ast.Ident:
		obj := w.pkg.Info.Uses[x]
		if obj == nil {
			obj = w.pkg.Info.Defs[x]
		}
		return obj, w.pkg.Types.Name() + "." + x.Name
	case *ast.SelectorExpr:
		if s, ok := w.pkg.Info.Selections[x]; ok {
			obj := s.Obj()
			recv := s.Recv()
			if p, isPtr := recv.(*types.Pointer); isPtr {
				recv = p.Elem()
			}
			if named, isNamed := recv.(*types.Named); isNamed {
				tn := named.Obj()
				prefix := tn.Name()
				if tn.Pkg() != nil {
					prefix = tn.Pkg().Name() + "." + prefix
				}
				return obj, prefix + "." + obj.Name()
			}
			return obj, obj.Name()
		}
		// Qualified package-level variable.
		obj := w.pkg.Info.Uses[x.Sel]
		if pn := pkgNameOf(w.pkg.Info, x.X); pn != nil && obj != nil {
			return obj, pn.Imported().Name() + "." + obj.Name()
		}
		return obj, x.Sel.Name
	case *ast.ParenExpr:
		return w.classOf(x.X)
	case *ast.StarExpr:
		return w.classOf(x.X)
	case *ast.UnaryExpr:
		return w.classOf(x.X)
	case *ast.IndexExpr:
		return w.classOf(x.X)
	}
	return nil, "?"
}

func (w *walker) chanOp(fn *FuncNode, kind ChanOpKind, ch ast.Expr, pos token.Pos) {
	class, _ := w.classOf(ch)
	if class == nil {
		return
	}
	fn.Sum.ChanOps = append(fn.Sum.ChanOps, ChanOp{Kind: kind, Class: class, Pos: pos})
}

func (w *walker) block(fn *FuncNode, desc string, pos token.Pos) {
	fn.Sum.Events = append(fn.Sum.Events, Event{Kind: EvBlock, Pos: pos, Name: desc})
}

// noteKindRef records a use of a trace.Kind constant.
func (w *walker) noteKindRef(fn *FuncNode, id *ast.Ident) {
	c, ok := w.pkg.Info.Uses[id].(*types.Const)
	if !ok {
		return
	}
	named, ok := c.Type().(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Name() == "Kind" && obj.Pkg() != nil && obj.Pkg().Path() == tracePath {
		fn.Sum.KindRefs = append(fn.Sum.KindRefs, KindRef{Name: c.Name(), Pos: id.Pos()})
	}
}

// noteViolationLit records executor.CheckViolation composite literals.
func (w *walker) noteViolationLit(fn *FuncNode, lit *ast.CompositeLit) {
	t := w.pkg.Info.TypeOf(lit)
	if t == nil {
		return
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Name() == "CheckViolation" && obj.Pkg() != nil && obj.Pkg().Path() == executorPath {
		fn.Sum.ViolationLits = append(fn.Sum.ViolationLits, lit.Pos())
	}
}

// noteViolatedWrite records assignments to executor.NodeStats.Violated.
func (w *walker) noteViolatedWrite(fn *FuncNode, lhs ast.Expr) {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Violated" {
		return
	}
	s, ok := w.pkg.Info.Selections[sel]
	if !ok {
		return
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() || v.Pkg() == nil || v.Pkg().Path() != executorPath {
		return
	}
	fn.Sum.ViolatedWrites = append(fn.Sum.ViolatedWrites, sel.Pos())
}

// noteErrorsAs records errors.As calls whose target is a CheckViolation.
func (w *walker) noteErrorsAs(fn *FuncNode, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "As" || len(call.Args) != 2 {
		return
	}
	pn := pkgNameOf(w.pkg.Info, sel.X)
	if pn == nil || pn.Imported().Path() != "errors" {
		return
	}
	t := w.pkg.Info.TypeOf(call.Args[1])
	for t != nil {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Name() == "CheckViolation" && obj.Pkg() != nil && obj.Pkg().Path() == executorPath {
		fn.Sum.ErrorsAsCV = append(fn.Sum.ErrorsAsCV, call.Pos())
	}
}
