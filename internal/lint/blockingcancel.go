package lint

// blockingcancel machine-checks the scheduler-blocking contract of
// DESIGN.md §12: every blocking channel operation (and Cond.Wait) that a
// server or executor loop can reach must stay cancellable, or a drain
// wedges behind it. A site is audited when it repeats — it sits inside a
// CFG loop block, or its function is reachable (via call edges and go
// spawns) from a call made inside a loop body of an in-scope function; the
// composition of the CFG's loop marks with the call graph is what turns
// "this send blocks" into "this send can wedge a drain".
//
// An audited site is exempt when it has a shutdown edge:
//
//   - it is a select arm and a sibling arm receives from ctx.Done(), from a
//     channel the program provably closes, or the select has a default arm;
//   - it is a bare receive (or range) from a channel the program closes —
//     matched by variable identity first, then by element type as a
//     fallback for handoffs where the closing function holds the channel
//     under a different variable (the client's pending-response map);
//   - bare sends and Cond.Wait have no such witness and always report; the
//     engine's deliberately-unconditional error sends carry reasoned
//     //poplint:allow annotations citing their drain invariants.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BlockingCancelAnalyzer is the blocking-without-cancellation rule.
var BlockingCancelAnalyzer = &Analyzer{
	Name: "blockingcancel",
	Doc:  "blocking chan ops and Cond.Wait reachable from server/executor loops need a ctx.Done() arm or a close-based shutdown edge",
	Run:  runBlockingCancel,
}

var blockingCancelScope = []string{executorPath, serverPath}

func runBlockingCancel(prog *Program, report ReportFunc) {
	g := programGraph(prog)

	// Program-wide shutdown facts: which channel classes (and, as a
	// fallback, element types) some function closes.
	closedClasses := map[types.Object]bool{}
	closedElems := map[string]bool{}
	for _, fn := range g.Funcs {
		for _, op := range fn.Sum.ChanOps {
			if op.Kind == ChanClose && op.Class != nil {
				closedClasses[op.Class] = true
			}
		}
	}
	for _, pkg := range prog.Packages {
		if pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				id, ok := unparen(call.Fun).(*ast.Ident)
				if !ok {
					return true
				}
				if b, ok := pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "close" {
					return true
				}
				if tv, ok := pkg.Info.Types[call.Args[0]]; ok && tv.Type != nil {
					if ch, ok := tv.Type.Underlying().(*types.Chan); ok {
						closedElems[types.TypeString(ch.Elem(), nil)] = true
					}
				}
				return true
			})
		}
	}

	loopReach := loopEnteredFuncs(g)

	for _, fn := range g.sortedFuncs() {
		if fn.Body == nil || fn.Pkg.Info == nil || !inScope(fn.Pkg.Path, blockingCancelScope) {
			continue
		}
		a := &blockAudit{
			g: g, fn: fn, report: report,
			closedClasses: closedClasses, closedElems: closedElems,
			inLoopFn: loopReach[fn],
			reported: map[token.Pos]bool{},
			comms:    selectComms(fn.Body),
		}
		a.run()
	}
}

// loopEnteredFuncs computes the functions reachable from calls or spawns
// made inside loop bodies of in-scope functions, by composing per-function
// CFG loop marks with call-graph closure.
func loopEnteredFuncs(g *CallGraph) map[*FuncNode]bool {
	roots := map[*FuncNode]bool{}
	addRoot := func(fn *FuncNode) {
		if fn != nil && !roots[fn] {
			roots[fn] = true
		}
	}
	for _, fn := range g.Funcs {
		if fn.Body == nil || !inScope(fn.Pkg.Path, blockingCancelScope) {
			continue
		}
		cfg := g.FuncCFG(fn)
		var ranges [][2]token.Pos
		for _, b := range cfg.Blocks {
			if !b.Loop {
				continue
			}
			for _, n := range b.Nodes {
				ranges = append(ranges, [2]token.Pos{n.Pos(), n.End()})
			}
		}
		if len(ranges) == 0 {
			continue
		}
		inLoop := func(pos token.Pos) bool {
			for _, r := range ranges {
				if pos >= r[0] && pos < r[1] {
					return true
				}
			}
			return false
		}
		for _, ev := range fn.Sum.Events {
			if ev.Kind == EvCall && inLoop(ev.Pos) {
				for _, t := range ev.Targets {
					addRoot(t)
				}
			}
		}
		for _, sp := range g.Spawns {
			if sp.In == fn && inLoop(sp.Pos) {
				addRoot(sp.Callee)
			}
		}
		// Literals defined inside the loop (worker closures) repeat too.
		for _, lit := range g.Funcs {
			if lit.Lit != nil && lit.Parent == fn && inLoop(lit.Pos) {
				addRoot(lit)
			}
		}
	}
	// Closure over call edges and spawns: anything a loop-entered function
	// runs, repeats.
	reach := map[*FuncNode]bool{}
	var work []*FuncNode
	for _, fn := range g.Funcs { // deterministic seeding order
		if roots[fn] {
			reach[fn] = true
			work = append(work, fn)
		}
	}
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		for _, c := range fn.calls {
			if !reach[c] {
				reach[c] = true
				work = append(work, c)
			}
		}
		for _, sp := range g.Spawns {
			if sp.In == fn && sp.Callee != nil && !reach[sp.Callee] {
				reach[sp.Callee] = true
				work = append(work, sp.Callee)
			}
		}
	}
	return reach
}

// selectComms maps each select communication statement to its SelectStmt,
// so the CFG walk can tell a select arm from a bare operation.
func selectComms(body *ast.BlockStmt) map[ast.Stmt]*ast.SelectStmt {
	out := map[ast.Stmt]*ast.SelectStmt{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cs := range sel.Body.List {
			if cc, ok := cs.(*ast.CommClause); ok && cc.Comm != nil {
				out[cc.Comm] = sel
			}
		}
		return true
	})
	return out
}

// blockAudit audits one function's blocking sites.
type blockAudit struct {
	g             *CallGraph
	fn            *FuncNode
	report        ReportFunc
	closedClasses map[types.Object]bool
	closedElems   map[string]bool
	inLoopFn      bool
	reported      map[token.Pos]bool
	comms         map[ast.Stmt]*ast.SelectStmt
}

func (a *blockAudit) run() {
	cfg := a.g.FuncCFG(a.fn)
	for _, b := range cfg.Blocks {
		audited := a.inLoopFn || b.Loop
		if !audited {
			continue
		}
		for _, n := range b.Nodes {
			a.node(n)
		}
	}
}

func (a *blockAudit) reportOnce(pos token.Pos, format string, args ...any) {
	if a.reported[pos] {
		return
	}
	a.reported[pos] = true
	a.report(pos, format, args...)
}

func (a *blockAudit) node(n ast.Node) {
	// Select arms appear as their own CFG nodes: judge them by their select.
	if stmt, ok := n.(ast.Stmt); ok {
		if sel, isComm := a.comms[stmt]; isComm {
			if !a.selectHasCancelArm(sel) {
				op, pos := commOp(stmt)
				a.reportOnce(pos, "blocking %s in a select with no cancellation arm (ctx.Done(), closed channel, or default) — a drain can wedge here", op)
			}
			return
		}
	}
	inspectNoLit(n, func(sub ast.Node) {
		switch sub := sub.(type) {
		case *ast.SendStmt:
			a.reportOnce(sub.Arrow, "unconditional channel send can block forever; wrap in a select with a ctx.Done() arm or document the shutdown edge")
		case *ast.UnaryExpr:
			if sub.Op != token.ARROW {
				return
			}
			if a.chanHasCloseWitness(sub.X) {
				return
			}
			a.reportOnce(sub.OpPos, "unconditional receive from a channel the program never closes; add a ctx.Done() select arm or a close-based shutdown edge")
		case *ast.RangeStmt:
			tv, ok := a.fn.Pkg.Info.Types[sub.X]
			if !ok || tv.Type == nil {
				return
			}
			if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
				return
			}
			if a.chanHasCloseWitness(sub.X) {
				return
			}
			a.reportOnce(sub.For, "range over a channel the program never closes blocks forever; close it on shutdown or select with ctx.Done()")
		case *ast.CallExpr:
			if isCondWait(a.fn.Pkg.Info, sub) {
				a.reportOnce(sub.Pos(), "Cond.Wait has no cancellation edge; a drain can wedge behind it — prefer a channel with a ctx.Done() select arm")
			}
		}
	})
}

// selectHasCancelArm reports whether any arm of sel is a shutdown edge: a
// default clause, a receive from ctx.Done(), or a receive from a channel
// with a close witness.
func (a *blockAudit) selectHasCancelArm(sel *ast.SelectStmt) bool {
	for _, cs := range sel.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default: the op cannot block
		}
		recv := commRecvExpr(cc.Comm)
		if recv == nil {
			continue
		}
		if isCtxDoneCall(a.fn.Pkg.Info, recv.X) {
			return true
		}
		if a.chanHasCloseWitness(recv.X) {
			return true
		}
	}
	return false
}

// chanHasCloseWitness reports whether the channel expression is provably
// closed somewhere: by variable/field identity, or (fallback) some channel
// of the same element type is closed — covering handoffs where closer and
// receiver hold the channel under different variables.
func (a *blockAudit) chanHasCloseWitness(ch ast.Expr) bool {
	w := &walker{pkg: a.fn.Pkg}
	if class, _ := w.classOf(ch); class != nil && a.closedClasses[class] {
		return true
	}
	if tv, ok := a.fn.Pkg.Info.Types[ch]; ok && tv.Type != nil {
		if c, ok := tv.Type.Underlying().(*types.Chan); ok {
			return a.closedElems[types.TypeString(c.Elem(), nil)]
		}
	}
	return false
}

// commOp describes a select communication for reporting.
func commOp(s ast.Stmt) (string, token.Pos) {
	switch s := s.(type) {
	case *ast.SendStmt:
		return "send", s.Arrow
	case *ast.ExprStmt:
		if u, ok := unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return "receive", u.OpPos
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if u, ok := unparen(s.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return "receive", u.OpPos
			}
		}
	}
	return "operation", s.Pos()
}

// commRecvExpr extracts the receive expression of a select comm, or nil for
// sends.
func commRecvExpr(s ast.Stmt) *ast.UnaryExpr {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if u, ok := unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return u
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if u, ok := unparen(s.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return u
			}
		}
	}
	return nil
}

// isCtxDoneCall matches ctx.Done() for a context.Context receiver.
func isCtxDoneCall(info *types.Info, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && f.Pkg() != nil && f.Pkg().Path() == "context"
}

// isCondWait matches (*sync.Cond).Wait().
func isCondWait(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return false
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	pkgPath, typeName := methodRecv(f)
	return pkgPath == "sync" && typeName == "Cond"
}
