package lint

// Intraprocedural control-flow graphs: the flow-sensitive substrate under
// the dataflow rules (batchescape, blockingcancel, guardedfield). A CFG is
// built from a function body's AST alone — no type information — so the
// builder also serves as a fuzz target over arbitrary parseable sources.
//
// Shape:
//
//   - Blocks[0] is the entry; Exit is a synthetic block created last, and
//     every return statement (and normal fall-off) edges to it. Deferred
//     calls execute at function exit, so the recorded defer expressions are
//     replayed as the Exit block's trailing nodes, in LIFO order.
//   - a block's Nodes mix statements and the expressions that control
//     branches (if/for conditions, switch tags, range operands), in
//     execution order, so a forward transfer function sees conditions
//     exactly once per traversal of the block.
//   - branch edges: if/else joins, for/range back edges, switch/select
//     clause fan-out (with fallthrough), break/continue/goto (labeled or
//     not) resolved against the enclosing frame stack, unreachable code
//     parked in predecessor-less blocks.
//   - Loop marks every block created inside a for/range loop (head, body,
//     and post blocks) so rules can ask "does this site repeat?" without
//     re-deriving cycles. Cycles formed only by goto are not marked.
//   - function literals are NOT descended into: each literal is its own
//     FuncNode with its own CFG; the literal expression just appears inside
//     some node of the enclosing function.
//
// Block creation order is deterministic (a single syntax-directed pass), so
// two builds of the same body yield identical Block indices and Succ
// orders — pinned by the fuzz target.

import (
	"go/ast"
	"go/token"
)

// CFGBlock is one basic block: straight-line nodes plus ordered successor
// edges.
type CFGBlock struct {
	Index int
	Nodes []ast.Node // stmts and branch-controlling exprs, execution order
	Succs []*CFGBlock
	Preds []*CFGBlock
	Loop  bool // created inside a for/range loop

	// Branch is the condition expression that decides which successor runs,
	// when this block ends in a two-way test: an if condition, or a for
	// condition. By construction Succs[0] is the TRUE edge and Succs[1] the
	// FALSE edge (ifStmt wires then before else/after; forStmt wires body
	// before after). Branch is nil for straight-line blocks, switch/select
	// heads, and range heads — their successor choice is not a boolean
	// condition. The value solver uses Branch to refine facts per out-edge.
	Branch ast.Expr
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*CFGBlock // creation order; Blocks[0] is the entry
	Exit   *CFGBlock   // synthetic exit; holds deferred calls in LIFO order
}

// BuildCFG constructs the control-flow graph for a function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, labels: map[string]*CFGBlock{}}
	b.cur = b.newBlock()
	if body != nil {
		b.stmtList(body.List)
	}
	exit := b.newBlock()
	b.cfg.Exit = exit
	if b.cur != nil {
		b.edge(b.cur, exit)
	}
	for _, ret := range b.exits {
		b.edge(ret, exit)
	}
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.edge(g.from, target)
		}
	}
	for i := len(b.defers) - 1; i >= 0; i-- {
		exit.Nodes = append(exit.Nodes, b.defers[i])
	}
	return b.cfg
}

// cfgFrame is one enclosing breakable construct: a loop (cont != nil), or a
// switch/select (cont == nil, next = fallthrough target for switches).
type cfgFrame struct {
	label string
	brk   *CFGBlock
	cont  *CFGBlock
	next  *CFGBlock // fallthrough target within a switch
}

type pendingGoto struct {
	from  *CFGBlock
	label string
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *CFGBlock // nil after a terminating statement
	frames []*cfgFrame
	labels map[string]*CFGBlock
	gotos  []pendingGoto
	exits  []*CFGBlock // blocks ending in return
	defers []ast.Node  // deferred calls, declaration order

	loopDepth int
	nextLabel string // label attached to the next for/range/switch/select
}

func (b *cfgBuilder) newBlock() *CFGBlock {
	blk := &CFGBlock{Index: len(b.cfg.Blocks), Loop: b.loopDepth > 0}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *CFGBlock) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a node to the current block, materializing an unreachable
// block first when control cannot reach here (code after return/break).
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	b.ensure()
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) ensure() {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the label recorded by an enclosing LabeledStmt.
func (b *cfgBuilder) takeLabel() string {
	l := b.nextLabel
	b.nextLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		b.ensure()
		target := b.newBlock()
		b.edge(b.cur, target)
		b.cur = target
		b.labels[s.Label.Name] = target
		b.nextLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.nextLabel = ""
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, s.Body)
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Body, s.Assign)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.exits = append(b.exits, b.cur)
		b.cur = nil
	case *ast.DeferStmt:
		b.add(s)
		b.defers = append(b.defers, s)
	default:
		// Assign, Decl, Expr, Send, IncDec, Go: straight-line nodes.
		b.add(s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	cond.Branch = s.Cond
	then := b.newBlock()
	b.edge(cond, then)
	b.cur = then
	b.stmt(s.Body)
	thenEnd := b.cur
	var elseEnd *CFGBlock
	hasElse := s.Else != nil
	if hasElse {
		els := b.newBlock()
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		elseEnd = b.cur
	}
	after := b.newBlock()
	if !hasElse {
		b.edge(cond, after)
	}
	if thenEnd != nil {
		b.edge(thenEnd, after)
	}
	if elseEnd != nil {
		b.edge(elseEnd, after)
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	b.ensure()
	outer := b.loopDepth
	b.loopDepth++
	head := b.newBlock()
	b.edge(b.cur, head)
	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
		head.Branch = s.Cond
	}
	b.loopDepth = outer
	after := b.newBlock()
	b.loopDepth = outer + 1
	var post *CFGBlock
	cont := head
	if s.Post != nil {
		post = b.newBlock()
		cont = post
	}
	body := b.newBlock()
	b.edge(head, body)
	if s.Cond != nil {
		b.edge(head, after)
	}
	b.frames = append(b.frames, &cfgFrame{label: label, brk: after, cont: cont})
	b.cur = body
	b.stmt(s.Body)
	b.frames = b.frames[:len(b.frames)-1]
	if b.cur != nil {
		b.edge(b.cur, cont)
	}
	if post != nil {
		b.cur = post
		b.add(s.Post)
		b.edge(post, head)
	}
	b.loopDepth = outer
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	b.ensure()
	outer := b.loopDepth
	b.loopDepth++
	head := b.newBlock()
	b.edge(b.cur, head)
	b.cur = head
	b.add(s) // the RangeStmt node carries X evaluation + key/value binding
	b.loopDepth = outer
	after := b.newBlock()
	b.loopDepth = outer + 1
	body := b.newBlock()
	b.edge(head, body)
	b.edge(head, after)
	b.frames = append(b.frames, &cfgFrame{label: label, brk: after, cont: head})
	b.cur = body
	b.stmt(s.Body)
	b.frames = b.frames[:len(b.frames)-1]
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.loopDepth = outer
	b.cur = after
}

// switchStmt handles both expression and type switches; extra holds the
// type switch's Assign statement, executed in the head block.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, extra ...ast.Stmt) {
	label := b.takeLabel()
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	for _, e := range extra {
		b.add(e)
	}
	b.ensure()
	head := b.cur
	after := b.newBlock()
	var clauses []*ast.CaseClause
	var blocks []*CFGBlock
	hasDefault := false
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.edge(head, blk)
		if cc.List == nil {
			hasDefault = true
		}
		clauses = append(clauses, cc)
		blocks = append(blocks, blk)
	}
	if !hasDefault {
		b.edge(head, after)
	}
	for i, cc := range clauses {
		frame := &cfgFrame{label: label, brk: after}
		if i+1 < len(blocks) {
			frame.next = blocks[i+1]
		}
		b.frames = append(b.frames, frame)
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		b.stmtList(cc.Body)
		b.frames = b.frames[:len(b.frames)-1]
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	b.ensure()
	head := b.cur
	after := b.newBlock()
	var clauses []*ast.CommClause
	var blocks []*CFGBlock
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.edge(head, blk)
		clauses = append(clauses, cc)
		blocks = append(blocks, blk)
	}
	for i, cc := range clauses {
		b.frames = append(b.frames, &cfgFrame{label: label, brk: after})
		b.cur = blocks[i]
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.frames = b.frames[:len(b.frames)-1]
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	// A clauseless select {} blocks forever: after stays unreachable.
	b.cur = after
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if t := b.findFrame(label, false); t != nil {
			b.edge(b.cur, t.brk)
		}
	case token.CONTINUE:
		if t := b.findFrame(label, true); t != nil {
			b.edge(b.cur, t.cont)
		}
	case token.GOTO:
		b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
	case token.FALLTHROUGH:
		for i := len(b.frames) - 1; i >= 0; i-- {
			if b.frames[i].next != nil {
				b.edge(b.cur, b.frames[i].next)
				break
			}
			if b.frames[i].cont == nil {
				break // innermost switch has no next clause
			}
		}
	}
	b.cur = nil
}

// findFrame resolves a break (needCont=false) or continue (needCont=true)
// target, innermost first; label "" matches any eligible frame.
func (b *cfgBuilder) findFrame(label string, needCont bool) *cfgFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if needCont && f.cont == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}
