package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicAnalyzer enforces atomic-access consistency across the whole
// program: any variable or struct field whose address is ever passed to a
// sync/atomic function must never be read or written plainly anywhere else.
// Mixing the two races — the plain access tears against the atomic one —
// and in the POP parallel runtime it silently corrupts work accounting.
// The analyzer runs in two passes over every loaded package: first it
// collects the set of atomically-accessed objects (field identity is shared
// across packages because the loader memoizes type-checked imports), then
// it flags every plain access to a member of that set.
var AtomicAnalyzer = &Analyzer{
	Name: "atomicplain",
	Doc:  "forbid plain access to variables/fields that are accessed via sync/atomic",
	Run:  runAtomic,
}

func runAtomic(prog *Program, report ReportFunc) {
	atomicObjs := map[types.Object]token.Position{} // object -> first atomic site
	sanctioned := map[ast.Node]bool{}               // operand nodes inside atomic calls

	// Pass A: find atomic.Xxx(&obj, …) calls, record the objects and the
	// exact operand nodes so pass B does not flag the atomic sites.
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pn := pkgNameOf(pkg.Info, sel.X)
				if pn == nil || pn.Imported().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					un, ok := arg.(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					obj := addressedObj(pkg, un.X)
					if obj == nil {
						continue
					}
					if _, seen := atomicObjs[obj]; !seen {
						atomicObjs[obj] = prog.Fset.Position(un.X.Pos())
					}
					markSanctioned(sanctioned, un.X)
				}
				return true
			})
		}
	}
	if len(atomicObjs) == 0 {
		return
	}

	// Pass B: every other use of those objects is a plain access.
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.SelectorExpr:
					s, ok := pkg.Info.Selections[e]
					if !ok || sanctioned[e] {
						return true
					}
					if first, hit := atomicObjs[s.Obj()]; hit {
						report(e.Sel.Pos(), "%s is accessed via sync/atomic (first at %s:%d) but accessed plainly here; use sync/atomic or annotate //poplint:allow atomicplain <reason>",
							s.Obj().Name(), first.Filename, first.Line)
					}
				case *ast.Ident:
					obj := pkg.Info.Uses[e]
					if obj == nil || sanctioned[e] {
						return true
					}
					if v, ok := obj.(*types.Var); !ok || v.IsField() {
						return true // fields are reported at their selector
					}
					if first, hit := atomicObjs[obj]; hit {
						report(e.Pos(), "%s is accessed via sync/atomic (first at %s:%d) but accessed plainly here; use sync/atomic or annotate //poplint:allow atomicplain <reason>",
							obj.Name(), first.Filename, first.Line)
					}
				}
				return true
			})
		}
	}
}

// addressedObj resolves the operand of &x in an atomic call to the variable
// or field object it denotes.
func addressedObj(pkg *Package, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.Ident:
		return pkg.Info.Uses[x]
	case *ast.SelectorExpr:
		if s, ok := pkg.Info.Selections[x]; ok {
			return s.Obj()
		}
		// Qualified identifier (&otherpkg.Var) — not a selection.
		return pkg.Info.Uses[x.Sel]
	case *ast.IndexExpr:
		return addressedObj(pkg, x.X)
	}
	return nil
}

// markSanctioned records the operand node and, for selector chains, the
// nested nodes whose own objects pass B would otherwise flag.
func markSanctioned(sanctioned map[ast.Node]bool, e ast.Expr) {
	for {
		sanctioned[e] = true
		switch x := e.(type) {
		case *ast.SelectorExpr:
			sanctioned[x.Sel] = true
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return
		}
	}
}
