// Package fixgoleakgood is a poplint fixture: the two join idioms the POP
// exchange runtime uses — WaitGroup-paired workers and a closer goroutine
// whose channel close is observed by the consumer.
package fixgoleakgood

import "sync"

type pool struct {
	wg sync.WaitGroup
	ch chan int
}

// Start spawns workers joined through the WaitGroup and a closer joined
// through the channel close that Drain observes.
func (p *pool) Start() {
	for i := 0; i < 4; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	go func() {
		p.wg.Wait()
		close(p.ch)
	}()
}

func (p *pool) worker() {
	defer p.wg.Done()
	p.ch <- 1
}

// Drain receives until the closer closes the channel — the receive
// completing is the join witness for the closer goroutine.
func (p *pool) Drain() int {
	total := 0
	for v := range p.ch {
		total += v
	}
	return total
}
