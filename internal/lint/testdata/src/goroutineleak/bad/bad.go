// Package fixgoleak is a poplint fixture: go statements with no provable
// join — a bare literal, a named worker, an unresolvable function value,
// and a half-wired WaitGroup whose goroutine never calls Done.
package fixgoleak

import "sync"

// counter gives the goroutines a side effect to perform.
var counter int

func work() { counter++ }

// SpawnLiteral leaks a bare literal: no WaitGroup pairing, no channel close.
func SpawnLiteral() {
	go func() { // want goroutineleak
		work()
	}()
}

// SpawnNamed leaks a named worker the same way.
func SpawnNamed() {
	go work() // want goroutineleak
}

// SpawnValue spawns through a function value the analyzer cannot resolve,
// so no join can be proven.
func SpawnValue(f func()) {
	go f() // want goroutineleak
}

// SpawnHalfJoined Adds and Waits but the goroutine never calls Done: the
// pairing is incomplete and Wait deadlocks.
func SpawnHalfJoined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want goroutineleak
		work()
	}()
	wg.Wait()
}
