package fixdocmissing // want doccomment

// M exists so the file has a declaration.
var M int
