// Package fixdoc documented a second time. // want doccomment
package fixdoc

// B exists so the file has a declaration.
var B int
