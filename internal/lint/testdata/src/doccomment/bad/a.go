// The wrong opening line for a package comment. // want doccomment
package fixdoc

// A exists so the file has a declaration.
var A int
