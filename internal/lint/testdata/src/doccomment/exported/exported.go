// Package fixdocexported is a poplint fixture: exported package-level
// identifiers without doc comments, each marked where the rule reports.
package fixdocexported

func Exported() {} // want doccomment

type Exposed struct{} // want doccomment

// Receiver methods are exempt: godoc groups them under the (documented)
// receiver type, so only the undocumented type itself fires above.
func (Exposed) Method() {}

var Loose = 1 // want doccomment

const (
	First  = 1 // want doccomment
	second = 2
)

// unexported declarations need no docs.
func hidden() {}

var quiet int

func init() { hidden(); quiet++; _ = second }
