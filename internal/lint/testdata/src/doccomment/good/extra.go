package fixdocgood

// Extra lives in a second, undocumented file — only one file may carry the
// package comment.
var Extra int
