// Package fixdocgood is a poplint fixture: the canonical single package
// comment plus the documented-exported shapes the doccomment rule accepts.
package fixdocgood

// G exists so the file has a declaration.
var G int

// Do is a documented exported function.
func Do() {}

// Kind is a documented exported type.
type Kind int

// A group doc comment covers every exported spec inside the group.
const (
	KindA Kind = iota
	KindB
)

// Undocumented methods are fine; the receiver type carries the docs.
func (Kind) String() string { return "" }

func helper() {} // unexported: no doc required

var _ = helper
