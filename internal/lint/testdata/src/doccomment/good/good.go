// Package fixdocgood is a poplint fixture: the canonical single package
// comment the doccomment rule must accept.
package fixdocgood

// G exists so the file has a declaration.
var G int
