// Package fixcg is a poplint fixture: a small interface hierarchy plus
// literal and deferred calls, exercising the call-graph layer's CHA
// dispatch resolution and function-literal tracking.
package fixcg

// Animal is the dispatch interface of the fixture hierarchy.
type Animal interface{ Sound() string }

// Dog implements Animal by value.
type Dog struct{}

// Sound implements Animal.
func (Dog) Sound() string { return "woof" }

// Cat implements Animal by pointer.
type Cat struct{ n int }

// Sound implements Animal.
func (c *Cat) Sound() string { c.n++; return "meow" }

// Speak dispatches through the interface: CHA must resolve the call to both
// concrete implementations.
func Speak(a Animal) string { return a.Sound() }

// SpawnLit launches a function literal; the graph must track the literal as
// the spawn's callee and see Speak inside it.
func SpawnLit() {
	done := make(chan struct{})
	go func() {
		Speak(Dog{})
		close(done)
	}()
	<-done
}

// Deferred defers a call; deferred calls are ordinary call edges.
func Deferred() string {
	c := &Cat{}
	defer Speak(c)
	return "done"
}
