// Package fixallowval pins //poplint:allow coverage for the value rules:
// each annotated site must be suppressed with annotations honored and
// resurface with suppression disabled, and the unannotated twin must keep
// firing either way.
package fixallowval

import "repro/internal/executor"

// allowedCharge carries a reasoned allow on a may-overflow product.
func allowedCharge(m *executor.Meter, perRow int64, rows int) {
	m.AddTicks(perRow * int64(rows)) //poplint:allow overflow fixture pin: suppression must cover value-rule findings
}

// plainCharge is the unannotated twin: it must keep firing.
func plainCharge(m *executor.Meter, perRow int64, rows int) {
	m.AddTicks(perRow * int64(rows)) // want overflow
}
