// Package fixbatch is a poplint fixture: row-level aliases of an ephemeral
// *executor.Batch escaping the pull loop — every store here keeps slab-backed
// memory alive past the next pull, which batchescape must catch.
package fixbatch

import (
	"sync"

	"repro/internal/executor"
	"repro/internal/schema"
	"repro/internal/types"
)

// puller produces ephemeral batches, like the batchEdge adapter: each call
// invalidates the rows of the previous result.
type puller interface {
	pull() *executor.Batch
}

// lastRow and lastRows are package-level stores that outlive any pull loop.
var lastRow schema.Row

var lastRows []schema.Row

// sink outlives the pull loop; its fields must only hold deep copies.
type sink struct {
	last  schema.Row
	byKey map[string]schema.Row
	dat   *types.Datum
}

// fieldStore stashes a row header from a foreign batch into a field.
func (s *sink) fieldStore(p puller) {
	b := p.pull()
	if b.Len() > 0 {
		s.last = b.Rows[0] // want batchescape
	}
}

// pkgStore retains a row in a package variable.
func pkgStore(p puller) {
	b := p.pull()
	lastRow = b.Rows[0] // want batchescape
}

// mapStore writes rows bound by a range over the batch into a persistent map.
func (s *sink) mapStore(p puller) {
	b := p.pull()
	for _, r := range b.Rows {
		s.byKey["k"] = r // want batchescape
	}
}

// accumulate appends foreign rows across loop iterations: the next pull
// invalidates everything gathered so far.
func accumulate(p puller) []schema.Row {
	var acc []schema.Row
	for {
		b := p.pull()
		if b == nil {
			break
		}
		acc = append(acc, b.Rows...) // want batchescape
	}
	return acc
}

// send transfers a row on a channel without cloning it first.
func send(p puller, out chan schema.Row) {
	b := p.pull()
	out <- b.Rows[0] // want batchescape
}

// spawner owns the WaitGroup joining its goroutines.
type spawner struct {
	wg sync.WaitGroup
}

// spawnCapture hands a row to a goroutine that outlives the pull iteration
// through closure capture.
func (sp *spawner) spawnCapture(p puller) {
	b := p.pull()
	row := b.Rows[0]
	sp.wg.Add(1)
	go func() {
		defer sp.wg.Done()
		lastRow = row.Clone() // want batchescape
	}()
}

// join is the WaitGroup join witness for the spawns above.
func (sp *spawner) join() {
	sp.wg.Wait()
}

// stash persists its parameter, so callers must not pass it foreign rows.
func stash(r schema.Row) {
	lastRow = r
}

// useStash forwards a foreign row to the retaining callee.
func useStash(p puller) {
	b := p.pull()
	stash(b.Rows[0]) // want batchescape
}

// fromField reads a held batch back out of a field: the holder may recycle
// it on the next pull, so its rows are foreign too.
type edge struct {
	buf *executor.Batch
}

func fromField(e *edge) {
	rows := e.buf.Rows
	lastRows = rows // want batchescape
}

// fromChan receives a batch from a channel; received batches are foreign by
// construction.
func fromChan(ch chan *executor.Batch, s *sink) {
	b := <-ch
	s.last = b.Rows[0] // want batchescape
}

// datumPtr keeps a pointer into a row's slab-backed Datum storage.
func datumPtr(p puller, s *sink) {
	b := p.pull()
	row := b.Rows[0]
	s.dat = &row[0] // want batchescape
}
