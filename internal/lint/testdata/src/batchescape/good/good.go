// Package fixbatchgood is a poplint fixture: the sanctioned ways to keep
// data derived from an ephemeral *executor.Batch — deep copies via
// Row.Clone, owned batches from NewBatch, the held-batch pointer idiom, and
// writes that stay inside the batch's own storage. None of these may fire
// batchescape.
package fixbatchgood

import (
	"sync"

	"repro/internal/executor"
	"repro/internal/schema"
)

// puller produces ephemeral batches, like the batchEdge adapter.
type puller interface {
	pull() *executor.Batch
}

var lastRow schema.Row

// sink mirrors the bad fixture's sink but only ever holds deep copies.
type sink struct {
	last  schema.Row
	byKey map[string]schema.Row
	held  *executor.Batch
}

// fieldStoreClone deep-copies the row before the store.
func (s *sink) fieldStoreClone(p puller) {
	b := p.pull()
	if b.Len() > 0 {
		s.last = b.Rows[0].Clone()
	}
}

// pkgStoreClone clones before retaining in a package variable.
func pkgStoreClone(p puller) {
	b := p.pull()
	lastRow = b.Rows[0].Clone()
}

// mapStoreClone clones each ranged row before the persistent map write.
func (s *sink) mapStoreClone(p puller) {
	b := p.pull()
	for _, r := range b.Rows {
		s.byKey["k"] = r.Clone()
	}
}

// accumulateClone clones per iteration, so earlier rows survive the next pull.
func accumulateClone(p puller) []schema.Row {
	var acc []schema.Row
	for {
		b := p.pull()
		if b == nil {
			break
		}
		for _, r := range b.Rows {
			acc = append(acc, r.Clone())
		}
	}
	return acc
}

// sendClone transfers a deep copy on the channel.
func sendClone(p puller, out chan schema.Row) {
	b := p.pull()
	out <- b.Rows[0].Clone()
}

// spawner owns the WaitGroup joining its goroutines.
type spawner struct {
	wg sync.WaitGroup
}

// spawnClone captures a cloned row, safe past the pull iteration.
func (sp *spawner) spawnClone(p puller) {
	b := p.pull()
	row := b.Rows[0].Clone()
	sp.wg.Add(1)
	go func() {
		defer sp.wg.Done()
		lastRow = row
	}()
}

// join is the WaitGroup join witness for spawnClone.
func (sp *spawner) join() {
	sp.wg.Wait()
}

// heldBatch stores the *Batch pointer itself: the held-batch idiom, where
// the field is overwritten before the next pull. Row-level aliases are the
// corruption vector, not the pointer.
func (s *sink) heldBatch(p puller) {
	s.held = p.pull()
}

// ownedCopy moves rows into a batch this function owns via NewBatch.
func ownedCopy(p puller, s *sink) {
	b := p.pull()
	nb := executor.NewBatch(b.Len())
	for _, r := range b.Rows {
		nb.Append(r.Clone())
	}
	s.held = nb
}

// trimInPlace writes into the batch's own storage: stores whose base is the
// batch stay inside the ownership unit.
func trimInPlace(p puller) {
	b := p.pull()
	if b.Len() > 1 {
		b.Rows = b.Rows[:1]
	}
}

// passThrough returns a foreign row: the pull contract itself — the caller
// inherits the ephemerality, it is not an escape.
func passThrough(p puller) schema.Row {
	b := p.pull()
	return b.Rows[0]
}

// localOnly keeps every alias in locals that die with the frame.
func localOnly(p puller) int {
	b := p.pull()
	n := 0
	for _, r := range b.Rows {
		if len(r) > 0 {
			n++
		}
	}
	return n
}
