// Package fixnilgood is the clean twin of the nilguard fixture: results are
// dereferenced only after the error check passes or behind an explicit nil
// guard, and nil-tolerant pointer-receiver method calls stay exempt.
package fixnilgood

import "errors"

type conn struct {
	name string
}

// ping tolerates a nil receiver by design — the Meter/trace-recorder idiom.
func (c *conn) ping() error {
	if c == nil {
		return nil
	}
	return nil
}

// dial returns a nil conn with every non-nil error.
func dial(name string) (*conn, error) {
	if name == "" {
		return nil, errors.New("empty name")
	}
	return &conn{name: name}, nil
}

// useAfterCheck dereferences only on the non-error path, where the summary
// proves the conn non-nil.
func useAfterCheck(name string) (string, error) {
	c, err := dial(name)
	if err != nil {
		return "", err
	}
	return c.name, nil
}

// useGuarded ignores the error but guards the pointer explicitly.
func useGuarded(name string) string {
	c, _ := dial(name)
	if c == nil {
		return ""
	}
	return c.name
}

// pingOnErrPath calls a pointer-receiver method on the error path: never a
// dereference site, because the receiver handles nil itself.
func pingOnErrPath(name string) error {
	c, err := dial(name)
	if err != nil {
		return c.ping()
	}
	return c.ping()
}
