// Package fixnil is a poplint fixture: dereferences the nilguard rule must
// catch — using a result inside the error branch when the callee's summary
// says that result is nil alongside a non-nil error, and dereferencing a
// pointer zero value.
package fixnil

import "errors"

type conn struct {
	name string
}

// dial returns a nil conn with every non-nil error.
func dial(name string) (*conn, error) {
	if name == "" {
		return nil, errors.New("empty name")
	}
	return &conn{name: name}, nil
}

// useOnErrPath reads the result inside the error branch: dial's summary
// proves the conn is always nil there.
func useOnErrPath(name string) string {
	c, err := dial(name)
	if err != nil {
		return c.name // want nilguard
	}
	return c.name
}

// zeroDeref dereferences the pointer zero value.
func zeroDeref() string {
	var c *conn
	return c.name // want nilguard
}

// dialFlaky sometimes pairs a non-nil conn with its error, so the error
// branch only proves "maybe nil" — still flagged, because the paired error
// was non-nil and one error return does carry nil.
func dialFlaky(name string) (*conn, error) {
	if name == "retry" {
		return &conn{name: name}, errors.New("transient")
	}
	if name == "" {
		return nil, errors.New("empty name")
	}
	return &conn{name: name}, nil
}

func useFlaky(name string) string {
	c, err := dialFlaky(name)
	if err != nil {
		return c.name // want nilguard
	}
	return c.name
}
