// Package fixallowbad is a poplint fixture: malformed annotations must be
// findings themselves, never silent no-ops.
package fixallowbad

// Malformed carries one annotation with no rule, one with an unknown rule,
// and one missing its mandatory reason.
func Malformed() {
	//poplint:allow
	//poplint:allow nosuchrule because of a typo
	//poplint:allow determinism
}
