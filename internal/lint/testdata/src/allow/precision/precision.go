// Package fixallow is a poplint fixture for suppression precision: each
// //poplint:allow must cover exactly one source line — the line it trails,
// or the line directly below the standalone form — and nothing else.
package fixallow

import "time"

// Trailing has two identical violations; only the first is annotated.
func Trailing() (int64, int64) {
	aa := time.Now().UnixNano() //poplint:allow determinism trailing form suppresses exactly this line
	bb := time.Now().UnixNano() // want determinism
	return aa, bb
}

// Standalone uses the own-line form: the annotation covers the next line
// only, not the one after it.
func Standalone() (int64, int64) {
	//poplint:allow determinism standalone form suppresses exactly the next line
	cc := time.Now().UnixNano()
	dd := time.Now().UnixNano() // want determinism
	return cc, dd
}
