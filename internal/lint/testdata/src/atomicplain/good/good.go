// Package fixatomicgood is a poplint fixture: consistent atomic usage —
// typed atomics, all-atomic raw fields, and untouched plain fields. Zero
// findings expected.
package fixatomicgood

import "sync/atomic"

type meter struct {
	ticks atomic.Int64 // typed atomics are safe by construction
	local int64        // never touched atomically; plain access is fine
}

// Add mixes a typed atomic with an unrelated plain field.
func (m *meter) Add(n int64) {
	m.ticks.Add(n)
	m.local += n
}

// Read loads through the typed atomic.
func (m *meter) Read() int64 {
	return m.ticks.Load()
}

type raw struct{ n int64 }

// Consistent touches the raw field only through sync/atomic.
func Consistent(r *raw) int64 {
	atomic.AddInt64(&r.n, 1)
	atomic.StoreInt64(&r.n, 7)
	return atomic.LoadInt64(&r.n)
}
