// Package fixatomic is a poplint fixture: fields and package variables
// written through sync/atomic but read plainly elsewhere — the tearing race
// that corrupts work accounting in a parallel runtime.
package fixatomic

import "sync/atomic"

type meter struct {
	ticks int64
	name  string
}

// Add is the atomic writer that puts ticks under the rule.
func (m *meter) Add(n int64) {
	atomic.AddInt64(&m.ticks, n)
}

// Read races Add: a plain load of an atomically-written field.
func (m *meter) Read() int64 {
	return m.ticks // want atomicplain
}

// Reset races Add with a plain store. The name field stays plain-only and
// is never flagged.
func (m *meter) Reset() {
	m.ticks = 0 // want atomicplain
	m.name = ""
}

var hits int64

// Bump puts the package variable under the rule.
func Bump() {
	atomic.AddInt64(&hits, 1)
}

// Peek is the plain read of it.
func Peek() int64 {
	return hits // want atomicplain
}
