// Package fixmapgood is a poplint fixture: the three sanctioned shapes of
// map iteration — collect-then-sort, keyless counting, and an annotated
// order-insensitive fold. Zero findings expected.
package fixmapgood

import "sort"

// Keys uses the collect-then-sort idiom the analyzer recognizes.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Pairs collects into two slices, both sorted afterwards.
func Pairs(m map[string]int) ([]string, []int) {
	var ks []string
	var vs []int
	for k, v := range m {
		ks = append(ks, k)
		vs = append(vs, v)
	}
	sort.Strings(ks)
	sort.Ints(vs)
	return ks, vs
}

// Count observes no ordering: a keyless range cannot see the key.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Sum is order-insensitive and annotated as such.
func Sum(m map[string]int) int {
	total := 0
	//poplint:allow maporder commutative sum; iteration order cannot change the total
	for _, v := range m {
		total += v
	}
	return total
}
