// Package fixmap is a poplint fixture: map iteration reaching emitted
// output and cost tie-breaks — the exact bug class that flips plan choice
// between runs.
package fixmap

import "fmt"

// Render emits map entries in iteration order — nondeterministic output.
func Render(m map[string]int) string {
	out := ""
	for k, v := range m { // want maporder
		out += fmt.Sprintf("%s=%d;", k, v)
	}
	return out
}

// Best breaks cost ties by iteration order, so ties pick a different
// winner per process.
func Best(m map[int]float64) int {
	best, bestCost := -1, 0.0
	for k, c := range m { // want maporder
		if best == -1 || c < bestCost {
			best, bestCost = k, c
		}
	}
	return best
}

// CollectedButNeverSorted appends keys yet never orders them, so the
// collect half of the idiom alone must not pass.
func CollectedButNeverSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want maporder
		keys = append(keys, k)
	}
	return keys
}
