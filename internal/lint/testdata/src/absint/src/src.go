// Package absintfix exercises the abstract-interpretation value layer for
// the white-box tests: if/else joins, loop widening, select-clause edges,
// branch-sensitive refinement, err-pair nilness and the MaxInt64/b guard
// idiom. Each function isolates one behavior the tests assert on through
// the computed summaries and replay sites.
package absintfix

import (
	"errors"
	"math"
)

// joinRange merges two branch constants: the summary interval is [2, 3].
func joinRange(b bool) int {
	x := 0
	if b {
		x = 2
	} else {
		x = 3
	}
	return x
}

// widen counts to n: the loop head widens the counter, so the analysis
// converges with s in [0, +inf] instead of iterating per value.
func widen(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s++
	}
	return s
}

// selectJoin merges per-clause constants through select-clause edges.
func selectJoin(a, b chan int) int {
	x := 5
	select {
	case <-a:
		x = 5
	case <-b:
		x = 7
	}
	return x
}

// clamp pins branch-sensitive refinement on both edge polarities: the
// summary interval is exactly [0, 100].
func clamp(n int) int {
	if n < 0 {
		return 0
	}
	if n > 100 {
		return 100
	}
	return n
}

type box struct {
	v int
}

// open returns a nil box with every non-nil error — the err-pair protocol
// the summaries classify (NilOnErr always, NilOnOK never).
func open(ok bool) (*box, error) {
	if !ok {
		return nil, errors.New("no")
	}
	return &box{v: 1}, nil
}

// errPath dereferences on both sides of the error check: the error-branch
// site must solve to provably-nil, the ok-branch site to non-nil.
func errPath(ok bool) int {
	b, err := open(ok)
	if err != nil {
		return b.v
	}
	return b.v
}

// guarded multiplies under the MaxInt64/b guard idiom: the site's guard
// flag must be set on the true edge.
func guarded(a, b int64) int64 {
	if b > 0 && a <= math.MaxInt64/b {
		return a * b
	}
	return 0
}

// unguarded is the same product without the guard.
func unguarded(a, b int64) int64 {
	return a * b
}
