// Package fixdrop is a poplint fixture: Close/Run/Flush-shaped calls whose
// error results vanish — bare, deferred, and goroutine-spawned.
package fixdrop

import "os"

type sink struct{}

func (sink) Close() error { return nil }
func (sink) Flush() error { return nil }
func (sink) Run() error   { return nil }

// Leak drops every failure a sink can report.
func Leak(f *os.File) {
	s := sink{}
	s.Close()       // want droppederror
	defer s.Flush() // want droppederror
	go s.Run()      // want droppederror goroutineleak
	f.Close()       // want droppederror
}
