// Package fixdropgood is a poplint fixture: every accepted way to consume a
// Close-shaped error — handling it, explicit discard, an annotation, and a
// Close that returns nothing. Zero findings expected.
package fixdropgood

type sink struct{}

func (sink) Close() error { return nil }

// Handled propagates, discards explicitly, and annotates.
func Handled(s sink) error {
	if err := s.Close(); err != nil {
		return err
	}
	_ = s.Close() // explicit discard is visible in review
	s.Close()     //poplint:allow droppederror fixture documents the annotation escape hatch
	return nil
}

type quiet struct{}

// Close returns no error, so a bare call discards nothing.
func (quiet) Close() {}

// NoError calls the error-free shape.
func NoError(q quiet) {
	q.Close()
}
