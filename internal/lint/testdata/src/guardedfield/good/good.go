// Package fixguardgood is a poplint fixture: locking patterns the
// guardedfield vote must accept — full consistency, no clear majority,
// constructor initialization, and the xxxLocked helper whose callers all
// hold the lock.
package fixguardgood

import "sync"

// counter is fully consistent: every site holds mu.
type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) dec() {
	c.mu.Lock()
	c.n--
	c.mu.Unlock()
}

func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) set(v int) {
	c.mu.Lock()
	c.n = v
	c.mu.Unlock()
}

func (c *counter) swap(v int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.n
	c.n = v
	return old
}

// mixed has no ≥80% majority: three of five sites lock, two are
// single-goroutine phases — two disciplines, not a forgotten lock.
type mixed struct {
	mu sync.Mutex
	v  int
}

func (m *mixed) a() {
	m.mu.Lock()
	m.v++
	m.mu.Unlock()
}

func (m *mixed) b() {
	m.mu.Lock()
	m.v--
	m.mu.Unlock()
}

func (m *mixed) c() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.v
}

func (m *mixed) initPhase() {
	m.v = 0
}

func (m *mixed) loadPhase(v int) {
	m.v = v
}

// pool initializes free in its constructor, where the builder owns the only
// reference; those sites neither vote nor get flagged, and the remaining
// sites are fully guarded.
type pool struct {
	mu   sync.Mutex
	free []int
}

func newPool() *pool {
	p := &pool{}
	p.free = append(p.free, 1)
	p.free = append(p.free, 2)
	return p
}

func (p *pool) take() (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) == 0 {
		return 0, false
	}
	v := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return v, true
}

func (p *pool) put(v int) {
	p.mu.Lock()
	p.free = append(p.free, v)
	p.mu.Unlock()
}

func (p *pool) depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// ledger drives bumpLocked only with the lock held: the helper's sites
// inherit mu from every call site, keeping the vote fully consistent.
type ledger struct {
	mu  sync.Mutex
	bal int
}

func (l *ledger) bumpLocked(v int) {
	l.bal += v
}

func (l *ledger) deposit(v int) {
	l.mu.Lock()
	l.bumpLocked(v)
	l.mu.Unlock()
}

func (l *ledger) withdraw(v int) {
	l.mu.Lock()
	l.bumpLocked(-v)
	l.mu.Unlock()
}

func (l *ledger) balance() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bal
}

func (l *ledger) solvent() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bal >= 0
}

func (l *ledger) audit() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	v := l.bal
	l.bumpLocked(0)
	return v
}

func (l *ledger) reset() {
	l.mu.Lock()
	l.bal = 0
	l.mu.Unlock()
}
