// Package fixguard is a poplint fixture: fields with a clear majority
// locking discipline and a minority site that skips the lock — near-certain
// races that guardedfield must flag.
package fixguard

import "sync"

// reg guards n with mu at four of five sites; peek forgot the lock.
type reg struct {
	mu sync.Mutex
	n  int
}

func (r *reg) inc() {
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
}

func (r *reg) dec() {
	r.mu.Lock()
	r.n--
	r.mu.Unlock()
}

func (r *reg) get() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

func (r *reg) set(v int) {
	r.mu.Lock()
	r.n = v
	r.mu.Unlock()
}

func (r *reg) add(v int) {
	r.mu.Lock()
	r.n += v
	r.mu.Unlock()
}

func (r *reg) reset() {
	r.mu.Lock()
	r.n = 0
	r.mu.Unlock()
}

func (r *reg) positive() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n > 0
}

func (r *reg) peek() int {
	return r.n // want guardedfield
}

// registry guards its map with an RWMutex everywhere except raw, which
// leaks the map without any lock.
type registry struct {
	rw sync.RWMutex
	m  map[string]int
}

func (g *registry) add(k string, v int) {
	g.rw.Lock()
	g.m[k] = v
	g.rw.Unlock()
}

func (g *registry) del(k string) {
	g.rw.Lock()
	delete(g.m, k)
	g.rw.Unlock()
}

func (g *registry) lookup(k string) int {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return g.m[k]
}

func (g *registry) size() int {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return len(g.m)
}

func (g *registry) raw() map[string]int {
	return g.m // want guardedfield
}

// branchy releases on one branch before the access: the flow-sensitive
// must-analysis knows the lock is not held at the join, so the site is a
// genuine minority even though a Lock call appears earlier in the function.
func (r *reg) branchy(early bool) int {
	r.mu.Lock()
	if early {
		r.mu.Unlock()
		return r.n // want guardedfield
	}
	v := r.n
	r.mu.Unlock()
	return v
}
