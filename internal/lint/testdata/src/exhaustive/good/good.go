// Package fixexhgood is the clean twin of the exhaustive fixture: enum
// switches either cover every constant value (aliases count by value) or
// carry a default, and non-enum or undecidable switches are skipped.
package fixexhgood

type phase string

const (
	phasePlan  phase = "plan"
	phaseExec  phase = "exec"
	phaseReopt phase = "reopt"
	phaseDone  phase = "done"
	// phaseFinal aliases phaseDone's value: coverage is by value, so a case
	// on either constant covers both.
	phaseFinal phase = "done"
)

// describe covers every declared value.
func describe(p phase) string {
	switch p {
	case phasePlan:
		return "planning"
	case phaseExec:
		return "executing"
	case phaseReopt:
		return "reoptimizing"
	case phaseDone:
		return "done"
	}
	return "?"
}

// withDefault is total by construction.
func withDefault(p phase) bool {
	switch p {
	default:
		return false
	case phasePlan:
		return true
	}
}

// nonConstant cases make coverage undecidable: the switch is skipped.
func nonConstant(p, q phase) bool {
	switch p {
	case q:
		return true
	}
	return false
}

// plainString switches over an ordinary string: not a module enum.
func plainString(s string) bool {
	switch s {
	case "a":
		return true
	}
	return false
}
