// Package fixexh is a poplint fixture: enum switches the exhaustive rule
// must catch — switches over module string and integer enums that miss
// declared constants without carrying a default.
package fixexh

type phase string

const (
	phasePlan  phase = "plan"
	phaseExec  phase = "exec"
	phaseReopt phase = "reopt"
	phaseDone  phase = "done"
)

// describe misses two of phase's four constants and has no default.
func describe(p phase) string {
	switch p { // want exhaustive
	case phasePlan:
		return "planning"
	case phaseExec:
		return "executing"
	}
	return "?"
}

type level int

const (
	levelOff level = iota
	levelInfo
	levelDebug
)

// verbosity misses levelDebug on an integer enum.
func verbosity(l level) bool {
	switch l { // want exhaustive
	case levelOff:
		return false
	case levelInfo:
		return true
	}
	return true
}
