// Package fixpool is a poplint fixture: the worker-pool leaks the poolleak
// rule must catch — a discarded grant, an acquire with no release anywhere
// in reach, and an acquire whose only "release" is a method of a type the
// acquiring path never constructs.
package fixpool

import "repro/internal/executor"

// Burn acquires and throws the grant away: the bare expression statement
// can never release.
func Burn(gate executor.WorkerGate) {
	gate.AcquireWorkers(4) // want poolleak
}

// Hoard keeps the grant in a local but no ReleaseWorkers call is reachable
// from here through any call edge or constructed type.
func Hoard(gate executor.WorkerGate) int {
	got := gate.AcquireWorkers(4) // want poolleak
	return got
}

// holder owns a grant but its releasing method lives on a different type
// (dropper) that Stash never constructs, so the handoff extension must not
// discharge it.
type holder struct {
	gate executor.WorkerGate
	n    int
}

// dropper is the unrelated type whose free method would release.
type dropper struct {
	gate executor.WorkerGate
	n    int
}

func (d *dropper) free() { d.gate.ReleaseWorkers(d.n) }

// Stash wraps the grant in a holder, which has no releasing method.
func Stash(gate executor.WorkerGate) *holder {
	return &holder{gate: gate, n: gate.AcquireWorkers(2)} // want poolleak
}
