// Package fixpoolgood is a poplint fixture: discharge idioms the poolleak
// rule must accept — a release on the same path, a release through a helper
// two calls deep, a deferred release, and the executor's ownership-transfer
// idiom where the grant is wrapped in a struct whose release method is
// invoked by a later owner.
package fixpoolgood

import "repro/internal/executor"

// RunBounded releases on the same path it acquired.
func RunBounded(gate executor.WorkerGate) {
	got := gate.AcquireWorkers(4)
	work(got)
	gate.ReleaseWorkers(got)
}

// RunDeferred releases via defer, covering early returns.
func RunDeferred(gate executor.WorkerGate) {
	got := gate.AcquireWorkers(4)
	defer gate.ReleaseWorkers(got)
	work(got)
}

// RunHelper reaches the release two helper calls deep.
func RunHelper(gate executor.WorkerGate) {
	got := gate.AcquireWorkers(4)
	work(got)
	giveBack(gate, got)
}

func giveBack(gate executor.WorkerGate, n int) { returnAll(gate, n) }
func returnAll(gate executor.WorkerGate, n int) {
	gate.ReleaseWorkers(n)
}

// grant is the ownership-transfer idiom: the acquiring function hands the
// grant to a value whose release method the eventual owner calls.
type grant struct {
	gate executor.WorkerGate
	n    int
}

func (g *grant) release() {
	if g.gate != nil && g.n > 0 {
		g.gate.ReleaseWorkers(g.n)
		g.n = 0
	}
}

// Borrow acquires and transfers ownership: constructing grant puts its
// release method in reach even though Borrow itself never releases.
func Borrow(gate executor.WorkerGate) *grant {
	got := gate.AcquireWorkers(2)
	return &grant{gate: gate, n: got}
}

// Close is the eventual owner's discharge path.
func Close(g *grant) { g.release() }

func work(n int) {
	for i := 0; i < n; i++ {
		_ = i
	}
}
