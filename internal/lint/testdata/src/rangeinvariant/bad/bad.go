// Package fixrange is a poplint fixture: invariant violations the
// rangeinvariant rule must catch — validity Range literals with provably
// inverted bounds and slice indexing provably outside the proven length.
package fixrange

// Range mirrors the optimizer's validity range; the rule matches the
// shape (a module struct named Range with float64 Lo/Hi) structurally.
type Range struct {
	Lo, Hi float64
}

// inverted constructs a range that rejects every cardinality.
func inverted() Range {
	return Range{Lo: 10, Hi: 2} // want rangeinvariant
}

// swapped builds the bounds from locals whose intervals prove Lo > Hi.
func swapped() Range {
	lo := 8.0
	hi := 4.0
	return Range{Lo: lo, Hi: hi} // want rangeinvariant
}

// missingHi forgets the upper bound, leaving it at the zero value below Lo.
func missingHi() Range {
	return Range{Lo: 800} // want rangeinvariant
}

// pastEnd indexes beyond the length bound the guard just proved.
func pastEnd(xs []int64) int64 {
	if len(xs) > 4 {
		return 0
	}
	return xs[7] // want rangeinvariant
}

// negative indexes with a provably negative index on the true edge.
func negative(xs []int64, i int) int64 {
	if i < 0 {
		return xs[i] // want rangeinvariant
	}
	return xs[i]
}
