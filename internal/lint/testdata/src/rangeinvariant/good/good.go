// Package fixrangegood is the clean twin of the rangeinvariant fixture:
// ranges are ordered and indexing stays inside what the guards prove.
package fixrangegood

// Range mirrors the optimizer's validity range.
type Range struct {
	Lo, Hi float64
}

// ordered builds a well-formed range.
func ordered() Range {
	return Range{Lo: 2, Hi: 10}
}

// fromLocals orders computed bounds.
func fromLocals() Range {
	lo := 4.0
	hi := 8.0
	return Range{Lo: lo, Hi: hi}
}

// inBounds indexes inside the guard-proven length.
func inBounds(xs []int64) int64 {
	if len(xs) > 4 {
		return xs[3]
	}
	return 0
}

// clamped keeps the index non-negative and below the length before use.
func clamped(xs []int64, i int) int64 {
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		return 0
	}
	return xs[i]
}
