// Package fixdet is a poplint fixture: every nondeterminism class the
// determinism analyzer must catch inside a bit-identical package.
package fixdet

import (
	"math/rand"
	"os"
	"time"
)

// Timestamp leaks wall-clock time into cost accounting.
func Timestamp() int64 {
	return time.Now().UnixNano() // want determinism
}

// Jitter injects process-local randomness.
func Jitter() float64 {
	return rand.Float64() // want determinism
}

// Pid leaks process identity.
func Pid() int {
	return os.Getpid() // want determinism
}

// Since is wall-clock arithmetic in disguise.
func Since(t0 time.Time) time.Duration {
	return time.Since(t0) // want determinism
}

// Env output varies per host.
func Env() string {
	return os.Getenv("POP_SEED") // want determinism
}
