// Package fixdetgood is a poplint fixture: deterministic uses of the time
// package plus a correctly annotated exemption — zero findings expected.
package fixdetgood

import "time"

// Elapsed only manipulates values handed in; no clock is read.
func Elapsed(a, b time.Time) time.Duration {
	return b.Sub(a)
}

// Annotated documents the exemption grammar the executor wall-clock uses.
func Annotated() int64 {
	return time.Now().UnixNano() //poplint:allow determinism fixture documents the trailing exemption form
}
