// Package fixlockgood is a poplint fixture: lock usage the lockorder rule
// must accept — a consistent nesting order repeated at two sites, and a
// channel send performed only after the mutex is released.
package fixlockgood

import "sync"

type state struct {
	a  sync.Mutex
	b  sync.Mutex
	ch chan int
}

// Nested takes a before b.
func (s *state) Nested() {
	s.a.Lock()
	defer s.a.Unlock()
	s.b.Lock()
	defer s.b.Unlock()
}

// NestedAgain repeats the same a-then-b order: consistent, no cycle.
func (s *state) NestedAgain() {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}

// SendOutsideLock releases the mutex before the blocking send.
func (s *state) SendOutsideLock() {
	s.a.Lock()
	v := 1
	s.a.Unlock()
	s.ch <- v
}
