// Package fixlock is a poplint fixture: the lock hazards the lockorder
// rule must catch — an acquisition cycle, a lock held across a channel
// send, a lock held across a call whose closure blocks, and a recursive
// acquisition.
package fixlock

import "sync"

type state struct {
	a  sync.Mutex
	b  sync.Mutex
	ch chan int
}

// LockAB nests b under a: the first half of the cycle.
func (s *state) LockAB() {
	s.a.Lock()
	defer s.a.Unlock()
	s.b.Lock()
	defer s.b.Unlock()
}

// LockBA nests a under b, closing the cycle LockAB opened.
func (s *state) LockBA() {
	s.b.Lock()
	defer s.b.Unlock()
	s.a.Lock() // want lockorder
	defer s.a.Unlock()
}

// HoldAcrossSend blocks on a channel send with the mutex held: every other
// acquirer starves until a receiver shows up.
func (s *state) HoldAcrossSend() {
	s.a.Lock()
	defer s.a.Unlock()
	s.ch <- 1 // want lockorder
}

// blockingDrain may block on the receive.
func (s *state) blockingDrain() int {
	return <-s.ch
}

// HoldAcrossCall holds the mutex across a call whose closure blocks — the
// interprocedural case a per-function rule cannot see.
func (s *state) HoldAcrossCall() int {
	s.a.Lock()
	defer s.a.Unlock()
	return s.blockingDrain() // want lockorder
}

// Recursive re-acquires a mutex it already holds: self-deadlock.
func (s *state) Recursive() {
	s.a.Lock()
	s.a.Lock() // want lockorder
	s.a.Unlock()
	s.a.Unlock()
}
