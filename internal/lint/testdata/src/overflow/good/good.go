// Package fixovfgood is the clean twin of the overflow fixture: every
// product feeding the meter is guarded with the MaxInt64/b idiom, bounded,
// or routed through a saturating helper, and every division guards its
// divisor first.
package fixovfgood

import (
	"math"

	"repro/internal/executor"
)

// chargeGuarded bounds the product with the MaxInt64/b guard idiom before
// metering it.
func chargeGuarded(m *executor.Meter, perRow int64, rows int) {
	k := int64(rows)
	if perRow <= 0 || k <= 0 {
		return
	}
	if perRow > math.MaxInt64/k {
		return
	}
	m.AddTicks(perRow * k)
}

// chargeSat routes the arithmetic through a saturating helper: the call
// boundary stops sink propagation, and the helper itself guards.
func chargeSat(m *executor.Meter, perRow int64, rows int) {
	m.AddTicks(mulSat(perRow, int64(rows)))
}

func mulSat(a, b int64) int64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

// bounded multiplies two interval-bounded operands: no corner overflows.
func bounded(m *executor.Meter, rows int) {
	if rows < 0 || rows > 1<<20 {
		return
	}
	m.AddTicks(100 * int64(rows))
}

// selectivityGuarded excludes zero before dividing.
func selectivityGuarded(card, n float64) float64 {
	if n <= 0 {
		return 0
	}
	return card / n
}

// remainderGuarded guards the integer divisor.
func remainderGuarded(total, n int64) int64 {
	if n == 0 {
		return 0
	}
	return total % n
}
