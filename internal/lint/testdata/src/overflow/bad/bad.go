// Package fixovf is a poplint fixture: tick arithmetic the overflow rule
// must catch — an unguarded per-row × batch-length product feeding
// Meter.AddTicks, a provably overflowing accumulator addition, and
// selectivity division/modulo whose divisor a reaching path proves zero.
package fixovf

import (
	"math"

	"repro/internal/executor"
)

// charge multiplies an unbounded per-row rate by an unbounded row count and
// meters the product directly: the corner cases exceed int64.
func charge(m *executor.Meter, perRow int64, rows int) {
	m.AddTicks(perRow * int64(rows)) // want overflow
}

// accumulate provably overflows: the accumulator is pinned at MaxInt64
// before the add.
func accumulate(m *executor.Meter) {
	t := int64(math.MaxInt64)
	m.AddTicks(t + 1) // want overflow
}

// viaLocal routes the product through a local before metering it; the
// sink closure still reaches the multiplication.
func viaLocal(m *executor.Meter, perRow, k int64) {
	t := perRow * k // want overflow
	m.AddTicks(t)
}

// selectivity divides by a divisor the true edge just proved zero.
func selectivity(card, n float64) float64 {
	if n == 0 {
		return card / n // want overflow
	}
	return card / n
}

// remainder is the integer form: a modulo on a path where the divisor was
// compared equal to zero.
func remainder(total, n int64) int64 {
	if n == 0 {
		return total % n // want overflow
	}
	return total % n
}
