// Package fixblock is a poplint fixture: blocking channel operations and
// Cond.Wait sites that a server loop repeats with no cancellation edge —
// each one can wedge a drain, and blockingcancel must catch them all.
package fixblock

import "sync"

// loopSend repeats a bare send: nothing unblocks it on shutdown.
func loopSend(ch chan int) {
	for i := 0; i < 10; i++ {
		ch <- i // want blockingcancel
	}
}

// loopRecv repeats a bare receive from a channel nothing in this program
// ever closes.
func loopRecv(ch chan uint32) uint32 {
	var total uint32
	for i := 0; i < 3; i++ {
		total += <-ch // want blockingcancel
	}
	return total
}

// selectNoCancel repeats a select whose every arm blocks: no default, no
// ctx.Done(), no closed-channel receive.
func selectNoCancel(a, b chan string) {
	for {
		select {
		case a <- "x": // want blockingcancel
		case b <- "y": // want blockingcancel
		}
	}
}

// queue wedges drains behind Cond.Wait: no cancellation can wake it.
type queue struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

func (q *queue) waitNonEmpty() {
	q.mu.Lock()
	for q.n == 0 {
		q.cond.Wait() // want blockingcancel lockorder
	}
	q.n--
	q.mu.Unlock()
}

// pump repeats deliver through a call edge: the send is not syntactically
// in a loop, but the loop reaches it, so it repeats all the same.
func pump(ch chan float64) {
	for i := 0; i < 4; i++ {
		deliver(ch, float64(i))
	}
}

func deliver(ch chan float64, v float64) {
	ch <- v // want blockingcancel
}

// drain ranges over a channel nothing ever closes: the loop never exits.
func drain(ch chan byte) int {
	n := 0
	for range ch { // want blockingcancel
		n++
	}
	return n
}
