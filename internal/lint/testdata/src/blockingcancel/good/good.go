// Package fixblockgood is a poplint fixture: every blocking site here has a
// shutdown edge — a ctx.Done() arm, a default arm, a close-based witness —
// or does not repeat at all. blockingcancel must stay silent.
package fixblockgood

import "context"

// serve repeats a receive, but the sibling ctx.Done() arm unblocks it on
// cancellation.
func serve(ctx context.Context, ch chan int) int {
	total := 0
	for {
		select {
		case v := <-ch:
			total += v
		case <-ctx.Done():
			return total
		}
	}
}

// offer repeats a send, but the default arm means it never blocks.
func offer(ch chan string) {
	for i := 0; i < 8; i++ {
		select {
		case ch <- "x":
		default:
		}
	}
}

// guardedSend repeats a send with a ctx.Done() escape.
func guardedSend(ctx context.Context, ch chan float64) {
	for i := 0; i < 4; i++ {
		select {
		case ch <- float64(i):
		case <-ctx.Done():
			return
		}
	}
}

// conn owns a channel the program provably closes: receives from it wake up
// at shutdown.
type conn struct {
	updates chan uint64
}

// shutdown is the close witness for conn.updates.
func (c *conn) shutdown() {
	close(c.updates)
}

// consume repeats a receive, but the close in shutdown is its witness — the
// field identity matches across functions.
func (c *conn) consume() uint64 {
	var last uint64
	for i := 0; i < 3; i++ {
		last = <-c.updates
	}
	return last
}

// drainAll ranges over the closed channel: the range exits when shutdown
// closes it.
func (c *conn) drainAll() int {
	n := 0
	for range c.updates {
		n++
	}
	return n
}

// handoff receives under a different variable than the closer holds: the
// element-type fallback still finds the witness.
type resp struct {
	id int
}

func closeRespChan(ch chan resp) {
	close(ch)
}

func awaitResps(pending map[int]chan resp) {
	for _, ch := range pending {
		<-ch
	}
}

// oneShot sends exactly once, outside any loop, and no loop reaches it: the
// site never repeats, so it is not audited.
func oneShot(ch chan int) {
	ch <- 1
}
