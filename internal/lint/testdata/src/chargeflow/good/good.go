// Package fixchargegood is a poplint fixture: complete accounting the
// chargeflow rule must accept — a charge reached through two helper calls,
// a never-producing stub owing no charge, an Open-charging materializer,
// and violation/invalidation paths paired with their trace emissions.
package fixchargegood

import (
	"errors"
	"math"

	"repro/internal/executor"
	"repro/internal/optimizer"
	"repro/internal/plancache"
	"repro/internal/schema"
	"repro/internal/trace"
)

// meteredNode charges every row through a helper two calls deep — the
// interprocedural reach the rule exists to see.
type meteredNode struct {
	stats executor.NodeStats
	meter *executor.Meter
	n     int
}

func (m *meteredNode) Open() error { return nil }

func (m *meteredNode) Next() (schema.Row, bool, error) {
	if m.n == 0 {
		return nil, false, nil
	}
	m.n--
	m.charge(1)
	return schema.Row{}, true, nil
}

func (m *meteredNode) charge(w float64)      { m.chargeMeter(w) }
func (m *meteredNode) chargeMeter(w float64) { m.meter.Add(w) }

func (m *meteredNode) Close() error               { return nil }
func (m *meteredNode) Plan() *optimizer.Plan      { return nil }
func (m *meteredNode) Stats() *executor.NodeStats { return &m.stats }
func (m *meteredNode) Children() []executor.Node  { return nil }

// stubNode never produces a row (exchange-stub idiom), so it owes no charge.
type stubNode struct{ stats executor.NodeStats }

func (s *stubNode) Open() error                     { return nil }
func (s *stubNode) Next() (schema.Row, bool, error) { return nil, false, nil }
func (s *stubNode) Close() error                    { return nil }
func (s *stubNode) Plan() *optimizer.Plan           { return nil }
func (s *stubNode) Stats() *executor.NodeStats      { return &s.stats }
func (s *stubNode) Children() []executor.Node       { return nil }

// openChargerNode materializes in Open (sort/hash-agg idiom): the charge
// reachable from Open satisfies the obligation for its Next.
type openChargerNode struct {
	stats executor.NodeStats
	meter *executor.Meter
	rows  []schema.Row
}

func (o *openChargerNode) Open() error {
	o.meter.Add(float64(len(o.rows)))
	return nil
}

func (o *openChargerNode) Next() (schema.Row, bool, error) {
	if len(o.rows) == 0 {
		return nil, false, nil
	}
	r := o.rows[0]
	o.rows = o.rows[1:]
	return r, true, nil
}

func (o *openChargerNode) Close() error               { return nil }
func (o *openChargerNode) Plan() *optimizer.Plan      { return nil }
func (o *openChargerNode) Stats() *executor.NodeStats { return &o.stats }
func (o *openChargerNode) Children() []executor.Node  { return nil }

// meteredBatchNode charges each delivered batch through Meter.AddTicks —
// the pre-scaled charge idiom of the vectorized fast path.
type meteredBatchNode struct {
	stats executor.NodeStats
	meter *executor.Meter
	out   *executor.Batch
	n     int
}

func (m *meteredBatchNode) Open() error                     { return nil }
func (m *meteredBatchNode) Next() (schema.Row, bool, error) { return nil, false, nil }

func (m *meteredBatchNode) NextBatch(max int) (*executor.Batch, error) {
	if m.n == 0 {
		return nil, nil
	}
	m.n--
	t, k := executor.Ticks(1), int64(m.out.Len())
	var charge int64
	if k > 0 && t <= math.MaxInt64/k {
		charge = t * k
	}
	m.meter.AddTicks(charge)
	return m.out, nil
}

func (m *meteredBatchNode) Close() error               { return nil }
func (m *meteredBatchNode) Plan() *optimizer.Plan      { return nil }
func (m *meteredBatchNode) Stats() *executor.NodeStats { return &m.stats }
func (m *meteredBatchNode) Children() []executor.Node  { return nil }

// sink is a concrete trace.Recorder, so the emit helpers below have a
// reachable Record call.
type sink struct{ events []trace.Event }

func (s *sink) Record(ev trace.Event) { s.events = append(s.events, ev) }

// emitViolated is the paired emission Catch reaches.
func emitViolated(s *sink) {
	s.Record(trace.Event{Kind: trace.CheckpointViolated})
}

// Catch extracts a violation, marks the node, and reaches the paired
// CheckpointViolated emission.
func Catch(s *sink, err error, stats *executor.NodeStats) bool {
	var cv *executor.CheckViolation
	if errors.As(err, &cv) {
		stats.Violated = true
		emitViolated(s)
		return true
	}
	return false
}

// Raise constructs the violation and marks the node in the same path.
func Raise(meta *optimizer.CheckMeta, stats *executor.NodeStats) error {
	stats.Violated = true
	return &executor.CheckViolation{Check: meta, Actual: 1}
}

// Drop invalidates and traces the invalidation.
func Drop(s *sink, e *plancache.Entry, cp *plancache.CachedPlan) {
	e.Invalidate(cp)
	s.Record(trace.Event{Kind: trace.CacheInvalidate})
}
