// Package fixcharge is a poplint fixture: the accounting gaps the
// chargeflow rule must catch — a row-producing operator that never charges
// the meter, a CheckViolation that never marks its node, a caught
// violation that is never traced, and an untraced plan-cache invalidation.
package fixcharge

import (
	"errors"

	"repro/internal/executor"
	"repro/internal/optimizer"
	"repro/internal/plancache"
	"repro/internal/schema"
)

// freeNode produces rows without ever reaching a Meter.Add from Next or
// Open: its rows are invisible to the simulated-work accounting.
type freeNode struct {
	stats executor.NodeStats
	n     int
}

func (f *freeNode) Open() error { return nil }

func (f *freeNode) Next() (schema.Row, bool, error) { // want chargeflow
	if f.n == 0 {
		return nil, false, nil
	}
	f.n--
	return schema.Row{}, true, nil
}

func (f *freeNode) Close() error               { return nil }
func (f *freeNode) Plan() *optimizer.Plan      { return nil }
func (f *freeNode) Stats() *executor.NodeStats { return &f.stats }
func (f *freeNode) Children() []executor.Node  { return nil }

// freeBatchNode's NextBatch produces batches without ever reaching a Meter
// charge from NextBatch or Open: a vectorized operator invisible to the
// simulated-work accounting. Its Next never produces, so only the batch
// obligation fires.
type freeBatchNode struct {
	stats executor.NodeStats
	out   *executor.Batch
	n     int
}

func (f *freeBatchNode) Open() error                     { return nil }
func (f *freeBatchNode) Next() (schema.Row, bool, error) { return nil, false, nil }

func (f *freeBatchNode) NextBatch(max int) (*executor.Batch, error) { // want chargeflow
	if f.n == 0 {
		return nil, nil
	}
	f.n--
	return f.out, nil
}

func (f *freeBatchNode) Close() error               { return nil }
func (f *freeBatchNode) Plan() *optimizer.Plan      { return nil }
func (f *freeBatchNode) Stats() *executor.NodeStats { return &f.stats }
func (f *freeBatchNode) Children() []executor.Node  { return nil }

// RaiseUnmarked constructs a CheckViolation but no NodeStats.Violated
// write is reachable: the violation vanishes from EXPLAIN ANALYZE.
func RaiseUnmarked(meta *optimizer.CheckMeta) error {
	return &executor.CheckViolation{Check: meta, Actual: 1} // want chargeflow
}

// CatchSilently extracts a violation without a reachable
// trace.CheckpointViolated emission.
func CatchSilently(err error) bool {
	var cv *executor.CheckViolation
	return errors.As(err, &cv) // want chargeflow
}

// DropQuietly invalidates a cached plan without a reachable
// trace.CacheInvalidate emission.
func DropQuietly(e *plancache.Entry, cp *plancache.CachedPlan) {
	e.Invalidate(cp) // want chargeflow
}
