package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestModuleIsLintClean is the in-tree mirror of the CI poplint gate: the
// full suite over every package in the module must report nothing.
func TestModuleIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	ld := loader(t)
	prog, err := ld.LoadPatterns("./...")
	if err != nil {
		t.Fatal(err)
	}
	if errs := ld.Errors(); len(errs) > 0 {
		t.Fatalf("load errors: %v", errs)
	}
	if len(prog.Packages) < 20 {
		t.Fatalf("expected the whole module, loaded only %d packages", len(prog.Packages))
	}
	findings, _ := lint.Run(prog, lint.Analyzers(), lint.Options{})
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestExecutorWallClockAnnotationIsLoadBearing pins the acceptance
// criterion that removing the //poplint:allow from the analyze-mode
// wall-clock site in internal/executor makes the gate fail: with
// annotations honored the determinism analyzer is silent there, and with
// suppression disabled the same site resurfaces as a finding.
func TestExecutorWallClockAnnotationIsLoadBearing(t *testing.T) {
	ld := loader(t)
	prog, err := ld.LoadPatterns("./internal/executor")
	if err != nil {
		t.Fatal(err)
	}
	findings, suppressed := lint.Run(prog, lint.Analyzers(), lint.Options{})
	for _, f := range findings {
		if f.Rule == lint.DeterminismAnalyzer.Name {
			t.Errorf("unexpected determinism finding with annotations honored: %s", f)
		}
	}
	if !hasWallClockFinding(suppressed) {
		t.Errorf("expected the executor wall-clock site among suppressed findings, got %v", suppressed)
	}

	unsuppressed, _ := lint.Run(prog, lint.Analyzers(), lint.Options{DisableAllow: true})
	if !hasWallClockFinding(unsuppressed) {
		t.Errorf("removing the annotation must resurface the wall-clock finding, got %v", unsuppressed)
	}
}

func hasWallClockFinding(fs []lint.Finding) bool {
	for _, f := range fs {
		if f.Rule == lint.DeterminismAnalyzer.Name &&
			strings.HasSuffix(f.Pos.Filename, "executor.go") &&
			strings.Contains(f.Message, "time.Now") {
			return true
		}
	}
	return false
}
