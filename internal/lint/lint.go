package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer hit, addressable as file:line.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Message)
}

// Analyzer is one named rule. Run is invoked once per Program (not per
// package) so rules that need whole-program views — atomic-consistency
// tracks every access to a field across all packages — get them for free.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(prog *Program, report ReportFunc)
}

// ReportFunc records a finding at pos. The rule name is attached by the
// harness; analyzers only supply position and message.
type ReportFunc func(pos token.Pos, format string, args ...any)

// AllowRule is the rule name under which malformed //poplint:allow
// annotations are themselves reported.
const AllowRule = "allow"

const allowPrefix = "//poplint:allow"

// Analyzers returns the full POP suite in reporting order: the four
// intra-procedural rules from the original suite, the doc-comment gate,
// the four interprocedural rules built on the call graph, the three
// dataflow rules built on the CFG layer, and the four value rules built on
// the abstract-interpretation layer (absint.go/summaryval.go).
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		MapOrderAnalyzer,
		DroppedErrorAnalyzer,
		AtomicAnalyzer,
		DocCommentAnalyzer,
		GoroutineLeakAnalyzer,
		LockOrderAnalyzer,
		ChargeFlowAnalyzer,
		PoolLeakAnalyzer,
		BatchEscapeAnalyzer,
		BlockingCancelAnalyzer,
		GuardedFieldAnalyzer,
		OverflowAnalyzer,
		NilGuardAnalyzer,
		RangeInvariantAnalyzer,
		ExhaustiveAnalyzer,
	}
}

// Options configures a lint run.
type Options struct {
	// DisableAllow ignores every //poplint:allow annotation, reporting the
	// findings they would have suppressed. The self-gate test uses this to
	// prove annotations are load-bearing: the executor wall-clock exemption
	// must resurface when suppression is off.
	DisableAllow bool
}

// Run executes the analyzers over the program and returns surviving
// findings plus the findings suppressed by //poplint:allow annotations,
// both sorted by file, line, column, rule.
func Run(prog *Program, analyzers []*Analyzer, opts Options) (findings, suppressed []Finding) {
	allows, allowFindings := collectAllows(prog)
	if !opts.DisableAllow {
		findings = append(findings, allowFindings...)
	}
	for _, a := range analyzers {
		a.Run(prog, func(pos token.Pos, format string, args ...any) {
			f := Finding{
				Pos:     prog.Fset.Position(pos),
				Rule:    a.Name,
				Message: fmt.Sprintf(format, args...),
			}
			if !opts.DisableAllow && allows[allowKey{f.Pos.Filename, f.Pos.Line, a.Name}] {
				suppressed = append(suppressed, f)
				return
			}
			findings = append(findings, f)
		})
	}
	sortFindings(findings)
	sortFindings(suppressed)
	return findings, suppressed
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// allowKey identifies one (file, line, rule) suppression.
type allowKey struct {
	file string
	line int
	rule string
}

// collectAllows parses every //poplint:allow annotation in the program.
// A trailing annotation (code precedes it on the line) covers its own line;
// an annotation alone on a line covers exactly the next line. Malformed
// annotations (no rule, unknown rule, or missing reason) are returned as
// findings under the "allow" rule so typos fail the gate instead of
// silently suppressing nothing.
func collectAllows(prog *Program) (map[allowKey]bool, []Finding) {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	allows := map[allowKey]bool{}
	var bad []Finding
	malformed := func(pos token.Position, msg string) {
		bad = append(bad, Finding{Pos: pos, Rule: AllowRule, Message: msg})
	}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, allowPrefix) {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, allowPrefix)
					if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
						continue // e.g. //poplint:allowance — not ours
					}
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						malformed(pos, "malformed annotation: want //poplint:allow <rule>[,<rule>...] <reason>")
						continue
					}
					rules := strings.Split(fields[0], ",")
					ok := true
					for _, r := range rules {
						if !known[r] {
							malformed(pos, fmt.Sprintf("unknown rule %q in //poplint:allow (known: %s)", r, strings.Join(knownRules(known), ", ")))
							ok = false
						}
					}
					if !ok {
						continue
					}
					line := pos.Line
					if !codePrecedes(pkg, pos) {
						line++ // standalone comment covers the next line only
					}
					for _, r := range rules {
						allows[allowKey{pos.Filename, line, r}] = true
					}
				}
			}
		}
	}
	sortFindings(bad)
	return allows, bad
}

func knownRules(known map[string]bool) []string {
	out := make([]string, 0, len(known))
	for r := range known {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// codePrecedes reports whether non-whitespace source text precedes pos on
// its line — i.e. the annotation trails code rather than standing alone.
func codePrecedes(pkg *Package, pos token.Position) bool {
	src, ok := pkg.Sources[pos.Filename]
	if !ok {
		return false
	}
	lineStart := pos.Offset - (pos.Column - 1)
	if lineStart < 0 || pos.Offset > len(src) {
		return false
	}
	return len(bytes.TrimSpace(src[lineStart:pos.Offset])) > 0
}

// inScope reports whether pkgPath falls under any of the given import-path
// prefixes (exact match or subdirectory).
func inScope(pkgPath string, prefixes []string) bool {
	for _, p := range prefixes {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// pkgNameOf resolves an identifier used as the operand of a selector to the
// imported package it names, or nil.
func pkgNameOf(info *types.Info, e ast.Expr) *types.PkgName {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := info.Uses[id].(*types.PkgName)
	return pn
}
