package lint

// rangeinvariant: constructed validity ranges must satisfy Lo <= Hi, and
// slice/batch indexing must stay inside the proven length bound.
//
// Both halves use PROVEN semantics — a finding means the bad state is
// certain on some reachable path, not merely unexcluded:
//
//   - Range literals (any module struct named Range with float64 Lo/Hi,
//     matched structurally so fixtures need no optimizer import) are
//     flagged when the abstract floor of Lo exceeds the abstract ceiling
//     of Hi. An inverted validity range makes its CHECK operator reject
//     every cardinality, turning each execution into a spurious
//     re-optimization — the exact robustness failure §3 of the paper's
//     checkpointing discipline exists to prevent.
//   - Index expressions are flagged when the index interval's minimum is
//     at least the length's proven maximum (make-with-constant, array
//     types, len-comparison refinement), or the index maximum is negative.
//
// Everything in between ("might be out of bounds") is deliberately silent:
// interval joins lose too much for may-semantics to be tolerable here.

// RangeInvariantAnalyzer is the range/bounds value rule.
var RangeInvariantAnalyzer = &Analyzer{
	Name: "rangeinvariant",
	Doc:  "Range literals with provably inverted bounds (Lo > Hi) and slice indexing provably outside the length bound",
	Run:  runRangeInvariant,
}

var rangeInvariantScope = []string{"repro"}

func runRangeInvariant(prog *Program, report ReportFunc) {
	va := programValues(prog)
	for _, fn := range va.funcs {
		if !inScope(fn.Pkg.Path, rangeInvariantScope) {
			continue
		}
		sites := va.sites[fn]
		if sites == nil {
			continue
		}
		for _, s := range sites.ranges {
			lo, hi := s.loV.iv, s.hiV.iv
			if lo.IsEmpty() || hi.IsEmpty() || !lo.BoundedBelow() || !hi.BoundedAbove() {
				continue
			}
			if lo.Lo > hi.Hi {
				report(s.pos, "%s literal with Lo = %s provably greater than Hi = %s (every CHECK against it fails)", s.typeName, s.loS, s.hiS)
			}
		}
		for _, s := range sites.indexes {
			iv := s.idxV.iv
			if iv.IsEmpty() {
				continue
			}
			switch {
			case s.hasLen && iv.BoundedBelow() && iv.Lo >= s.lenHi:
				report(s.pos, "index %s (at least %d) provably exceeds len(%s) (at most %d)", s.idxS, iv.Lo, s.baseS, s.lenHi)
			case iv.BoundedAbove() && iv.Hi < 0:
				report(s.pos, "index %s is provably negative (at most %d)", s.idxS, iv.Hi)
			}
		}
	}
}
