package lint_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/lint"
)

// graphNode finds a call-graph node by its display name.
func graphNode(t *testing.T, g *lint.CallGraph, name string) *lint.FuncNode {
	t.Helper()
	for _, fn := range g.Funcs {
		if fn.Name == name {
			return fn
		}
	}
	t.Fatalf("call graph has no node %q", name)
	return nil
}

func calleeNames(fn *lint.FuncNode) []string {
	var out []string
	for _, c := range fn.Callees() {
		out = append(out, c.Name)
	}
	return out
}

func containsName(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

// TestCallGraphInterfaceDispatch pins the CHA resolution: a call through an
// interface must grow edges to every concrete implementation in the program,
// value and pointer receivers alike.
func TestCallGraphInterfaceDispatch(t *testing.T) {
	prog := loadFixture(t, "callgraph/hier", "repro/internal/fixcg")
	g := lint.BuildCallGraph(prog)

	speak := graphNode(t, g, "Speak")
	callees := calleeNames(speak)
	for _, want := range []string{"(Dog).Sound", "(*Cat).Sound"} {
		if !containsName(callees, want) {
			t.Errorf("Speak's callees %v missing CHA edge to %s", callees, want)
		}
	}
}

// TestCallGraphLiteralSpawn pins function-literal tracking: a `go func(){…}`
// records a spawn whose callee is the literal's own node, with the literal's
// body walked (its call to Speak is an edge), and a deferred call is an
// ordinary call edge on the deferring function.
func TestCallGraphLiteralSpawn(t *testing.T) {
	prog := loadFixture(t, "callgraph/hier", "repro/internal/fixcg")
	g := lint.BuildCallGraph(prog)

	var spawns int
	for _, sp := range g.Spawns {
		if sp.In.Name != "SpawnLit" {
			continue
		}
		spawns++
		if sp.Callee == nil {
			t.Fatal("literal spawn has no resolved callee")
		}
		if !strings.HasSuffix(sp.Callee.Name, "$lit") {
			t.Errorf("spawn callee %q is not the literal's node", sp.Callee.Name)
		}
		if !containsName(calleeNames(sp.Callee), "Speak") {
			t.Errorf("literal body not walked: callees %v missing Speak", calleeNames(sp.Callee))
		}
	}
	if spawns != 1 {
		t.Fatalf("want exactly 1 spawn in SpawnLit, got %d", spawns)
	}

	if callees := calleeNames(graphNode(t, g, "Deferred")); !containsName(callees, "Speak") {
		t.Errorf("deferred call missing from Deferred's edges %v", callees)
	}
}

// TestJSONDeterminism pins the -json contract: eight runs over the same
// program must encode byte-identically — the ordering comes entirely from
// the deterministic finding sort, never from map iteration.
func TestJSONDeterminism(t *testing.T) {
	prog := loadFixture(t, "lockorder/bad", "repro/internal/fixlockdet")
	var first []byte
	for i := 0; i < 8; i++ {
		findings, _ := lint.Run(prog, lint.Analyzers(), lint.Options{})
		var buf bytes.Buffer
		if err := lint.EncodeJSON(&buf, findings); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = buf.Bytes()
			if !bytes.Contains(first, []byte("lockorder")) {
				t.Fatalf("expected lockorder findings in JSON output:\n%s", first)
			}
			continue
		}
		if !bytes.Equal(first, buf.Bytes()) {
			t.Fatalf("run %d JSON differs:\nfirst:\n%s\nnow:\n%s", i, first, buf.Bytes())
		}
	}
}
