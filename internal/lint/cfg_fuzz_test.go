package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// FuzzCFG throws arbitrary parseable Go at the CFG builder and pins its
// structural invariants: deterministic rebuilds (identical block/edge
// structure both times), symmetric Succs/Preds, the entry/exit contract,
// and solver termination within the round bound on every body.
func FuzzCFG(f *testing.F) {
	seeds := []string{
		"package p\nfunc f() { x := 1; _ = x }",
		"package p\nfunc f(n int) int {\n\tif n > 0 {\n\t\treturn n\n\t}\n\treturn -n\n}",
		"package p\nfunc f() {\n\tfor i := 0; i < 9; i++ {\n\t\tif i == 2 {\n\t\t\tcontinue\n\t\t}\n\t\tif i == 5 {\n\t\t\tbreak\n\t\t}\n\t}\n}",
		"package p\nfunc f(xs []int) int {\n\ts := 0\n\tfor _, x := range xs {\n\t\ts += x\n\t}\n\treturn s\n}",
		"package p\nfunc f(ch chan int) {\n\tselect {\n\tcase v := <-ch:\n\t\t_ = v\n\tdefault:\n\t}\n}",
		"package p\nfunc f(x int) {\n\tswitch x {\n\tcase 1:\n\t\tfallthrough\n\tcase 2:\n\tdefault:\n\t}\n}",
		"package p\nfunc f() {\n\ti := 0\nloop:\n\ti++\n\tif i < 3 {\n\t\tgoto loop\n\t}\n}",
		"package p\nfunc f() {\n\tdefer println(1)\n\tdefer println(2)\nouter:\n\tfor {\n\t\tfor j := 0; ; j++ {\n\t\t\tbreak outer\n\t\t}\n\t}\n}",
		"package p\nfunc f() {\n\treturn\n\tprintln(\"dead\")\n}",
		"package p\nfunc f() { select {} }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, 0)
		if err != nil {
			t.Skip()
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a := BuildCFG(fd.Body)
			b := BuildCFG(fd.Body)
			checkCFGInvariants(t, a)
			if !sameCFGStructure(a, b) {
				t.Fatalf("rebuild produced a different structure for %s", fd.Name.Name)
			}
			// Solvers must hit fixpoint (or the defensive bound) and return
			// in-states for every block, never panic or spin.
			may := solveForwardMay(a, varFacts{}, func(blk *CFGBlock, in varFacts) varFacts { return in })
			if len(may) != len(a.Blocks) {
				t.Fatalf("may-solver returned %d states for %d blocks", len(may), len(a.Blocks))
			}
			must := solveForwardMust(a, func(blk *CFGBlock, in lockSet) lockSet { return in })
			if len(must) != len(a.Blocks) {
				t.Fatalf("must-solver returned %d states for %d blocks", len(must), len(a.Blocks))
			}
		}
	})
}

func checkCFGInvariants(t *testing.T, c *CFG) {
	t.Helper()
	if len(c.Blocks) < 2 {
		t.Fatalf("CFG has %d blocks, want at least entry+exit", len(c.Blocks))
	}
	if c.Exit == nil {
		t.Fatal("CFG has no exit block")
	}
	for i, b := range c.Blocks {
		if b.Index != i {
			t.Fatalf("block at position %d has Index %d", i, b.Index)
		}
		for _, s := range b.Succs {
			if !hasEdgeBack(s.Preds, b) {
				t.Fatalf("edge %d->%d missing from Preds", b.Index, s.Index)
			}
		}
		for _, p := range b.Preds {
			if !hasEdgeBack(p.Succs, b) {
				t.Fatalf("pred edge %d<-%d missing from Succs", b.Index, p.Index)
			}
		}
	}
	if len(c.Exit.Succs) != 0 {
		t.Fatalf("exit block has %d successors", len(c.Exit.Succs))
	}
}

func hasEdgeBack(list []*CFGBlock, want *CFGBlock) bool {
	for _, b := range list {
		if b == want {
			return true
		}
	}
	return false
}

func sameCFGStructure(a, b *CFG) bool {
	if len(a.Blocks) != len(b.Blocks) || (a.Exit.Index != b.Exit.Index) {
		return false
	}
	for i := range a.Blocks {
		x, y := a.Blocks[i], b.Blocks[i]
		if len(x.Nodes) != len(y.Nodes) || len(x.Succs) != len(y.Succs) || x.Loop != y.Loop {
			return false
		}
		for j := range x.Succs {
			if x.Succs[j].Index != y.Succs[j].Index {
				return false
			}
		}
	}
	return true
}
