package lint

import (
	"go/ast"
	"go/types"
)

// mapOrderScope lists the packages where map iteration order can reach plan
// choice, guard lists, cache signatures, or EXPLAIN output.
var mapOrderScope = []string{
	"repro/internal/optimizer",
	"repro/internal/plancache",
}

// sortFuncs are the calls the analyzer recognizes as establishing a
// deterministic order, keyed by package path then function name.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// MapOrderAnalyzer flags `for … := range m` over a map in the optimizer and
// plan cache. Go randomizes map iteration per run, so any such loop that
// feeds plan signatures, guard ordering, cost tie-breaks, or emitted output
// is a reproducibility bug. The one recognized safe idiom is collect-then-
// sort: a loop whose body only appends keys/values to slices that the same
// function later sorts. Everything else must sort explicitly or carry a
// //poplint:allow maporder annotation arguing order-insensitivity.
var MapOrderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "flag nondeterministic map iteration in plan-affecting packages",
	Run:  runMapOrder,
}

func runMapOrder(prog *Program, report ReportFunc) {
	for _, pkg := range prog.Packages {
		if !inScope(pkg.Path, mapOrderScope) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					body = fn.Body
				case *ast.FuncLit:
					body = fn.Body
				default:
					return true
				}
				if body != nil {
					checkFuncMapRanges(pkg, body, report)
				}
				return true
			})
		}
	}
}

// checkFuncMapRanges reports nondeterministic map ranges directly inside
// one function body. Nested function literals are skipped here — the outer
// Inspect visits them as functions in their own right, so their loops are
// judged against their own bodies.
func checkFuncMapRanges(pkg *Package, body *ast.BlockStmt, report ReportFunc) {
	inspectShallow(body, func(n ast.Node) {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		t := pkg.Info.TypeOf(rng.X)
		if t == nil {
			return
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		if rng.Key == nil {
			return // `for range m`: body cannot observe order
		}
		if isCollectThenSort(pkg, body, rng) {
			return
		}
		report(rng.Pos(), "map iteration order is nondeterministic; sort the keys first or annotate //poplint:allow maporder <why order cannot matter>")
	})
}

// inspectShallow walks n, calling f on every node but not descending into
// nested function literals.
func inspectShallow(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}

// isCollectThenSort recognizes the canonical deterministic-iteration idiom:
//
//	keys := make([]K, 0, len(m))
//	for k := range m { keys = append(keys, k) }
//	sort.Slice(keys, …)            // or sort.Strings / slices.Sort / …
//
// The loop body must consist solely of self-appends to local slices, and
// every appended-to slice must be passed to a recognized sort call later in
// the same function body.
func isCollectThenSort(pkg *Package, funcBody *ast.BlockStmt, rng *ast.RangeStmt) bool {
	targets := map[types.Object]bool{}
	for _, stmt := range rng.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fun, ok := call.Fun.(*ast.Ident)
		if !ok || fun.Name != "append" || pkg.Info.Uses[fun] != nil && pkg.Info.Uses[fun].Pkg() != nil {
			return false // not the builtin append
		}
		if len(call.Args) < 2 {
			return false
		}
		first, ok := call.Args[0].(*ast.Ident)
		if !ok || first.Name != lhs.Name {
			return false
		}
		obj := identObj(pkg, lhs)
		if obj == nil {
			return false
		}
		targets[obj] = true
	}
	if len(targets) == 0 {
		return false
	}
	sorted := map[types.Object]bool{}
	inspectShallow(funcBody, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		pn := pkgNameOf(pkg.Info, sel.X)
		if pn == nil || !sortFuncs[pn.Imported().Path()][sel.Sel.Name] {
			return
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok {
			if obj := identObj(pkg, arg); obj != nil {
				sorted[obj] = true
			}
		}
	})
	for obj := range targets {
		if !sorted[obj] {
			return false
		}
	}
	return true
}

// identObj resolves an identifier to its object whether the site defines or
// uses it.
func identObj(pkg *Package, id *ast.Ident) types.Object {
	if o := pkg.Info.Uses[id]; o != nil {
		return o
	}
	return pkg.Info.Defs[id]
}
