package lint

// nilguard: no dereference of a value the value layer proves nil, or proves
// possibly-nil on an error-handling path.
//
// Two severities, both from the solved nilness component (absint.go):
//
//   - provably nil (nilYes): the zero value or a nil assignment reaches the
//     use on every path — e.g. using a result inside `if err != nil` when
//     the callee's summary says that result is always nil alongside a
//     non-nil error.
//   - possibly nil on an error path (nilMaybe + fErrPath): the use sits on
//     a path where `err != nil` held and the callee's summary says the
//     sibling result is nil on at least one of its error returns. Plain
//     nilMaybe without error-path evidence is NOT flagged — joins produce
//     it constantly and the error-path bit is what separates "the analysis
//     lost precision" from "this code ignored its error check".
//
// Method calls through a pointer receiver are never dereference sites: the
// nil-receiver method is a supported Go idiom in this codebase (Meter and
// trace recorders accept nil receivers by design). Interface method calls,
// func-value calls, field accesses, *p, slice indexing and map writes are.

// NilGuardAnalyzer is the nil-dereference value rule.
var NilGuardAnalyzer = &Analyzer{
	Name: "nilguard",
	Doc:  "dereference, call, or field access on a value provably nil, or possibly nil on an error-handling path",
	Run:  runNilGuard,
}

var nilGuardScope = []string{"repro"}

func runNilGuard(prog *Program, report ReportFunc) {
	va := programValues(prog)
	for _, fn := range va.funcs {
		if !inScope(fn.Pkg.Path, nilGuardScope) {
			continue
		}
		sites := va.sites[fn]
		if sites == nil {
			continue
		}
		for _, s := range sites.derefs {
			switch {
			case s.v.nl == nilYes:
				report(s.pos, "%s on %s, which is provably nil here", s.kind, s.name)
			case s.v.nl == nilMaybe && s.v.flags&fErrPath != 0:
				report(s.pos, "%s on %s, which may be nil on this error path (the paired error was non-nil)", s.kind, s.name)
			}
		}
	}
}
