package lint_test

import (
	"bytes"
	"testing"

	"repro/internal/lint"
)

// TestJSONDeterminismValueRules extends the eight-run byte-identity pin to
// the abstract-interpretation rules: the worklist solver, the summary
// fixpoint, and the site collection must order findings entirely through
// the deterministic sort, never through map iteration.
func TestJSONDeterminismValueRules(t *testing.T) {
	fixtures := []struct {
		dir    string
		asPath string
		rule   string
	}{
		{"overflow/bad", "repro/internal/optimizer/fixovf", "overflow"},
		{"nilguard/bad", "repro/internal/fixnil", "nilguard"},
		{"rangeinvariant/bad", "repro/internal/fixrange", "rangeinvariant"},
		{"exhaustive/bad", "repro/internal/fixexh", "exhaustive"},
	}
	for _, fx := range fixtures {
		prog := loadFixture(t, fx.dir, fx.asPath)
		var first []byte
		for i := 0; i < 8; i++ {
			findings, _ := lint.Run(prog, lint.Analyzers(), lint.Options{})
			var buf bytes.Buffer
			if err := lint.EncodeJSON(&buf, findings); err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				first = buf.Bytes()
				if !bytes.Contains(first, []byte(fx.rule)) {
					t.Fatalf("%s: expected %s findings in JSON output:\n%s", fx.dir, fx.rule, first)
				}
				continue
			}
			if !bytes.Equal(first, buf.Bytes()) {
				t.Fatalf("%s: run %d JSON differs:\nfirst:\n%s\nnow:\n%s", fx.dir, i, first, buf.Bytes())
			}
		}
	}
}

// TestValueRuleAllowIsLoadBearing pins suppression for the value rules the
// way TestDataflowAllowsAreLoadBearing does for the CFG rules: an annotated
// overflow site disappears from findings, shows up among the suppressed,
// and resurfaces with suppression disabled — while the unannotated twin
// fires throughout.
func TestValueRuleAllowIsLoadBearing(t *testing.T) {
	prog := loadFixture(t, "allowvalue/src", "repro/internal/fixallowval")

	findings, suppressed := lint.Run(prog, lint.Analyzers(), lint.Options{})
	diffStrings(t, "allowvalue honored", expectedFindings(prog), gotFindings(findings))
	if !hasRuleFinding(suppressed, "overflow", "src.go") {
		t.Error("annotated overflow site missing from suppressed findings")
	}

	unsuppressed, _ := lint.Run(prog, lint.Analyzers(), lint.Options{DisableAllow: true})
	var overflowCount int
	for _, f := range unsuppressed {
		if f.Rule == "overflow" {
			overflowCount++
		}
	}
	if overflowCount != 2 {
		t.Errorf("disabling allows resurfaced %d overflow findings, want 2 (annotated + twin)", overflowCount)
	}
}

// TestRuleCounts pins the per-rule tally cmd/poplint reports in CI: counts
// key by rule name, sum to the finding total, and unlisted rules are absent.
func TestRuleCounts(t *testing.T) {
	prog := loadFixture(t, "overflow/bad", "repro/internal/optimizer/fixovf")
	findings, _ := lint.Run(prog, lint.Analyzers(), lint.Options{})
	counts := lint.RuleCounts(findings)
	total := 0
	for _, rc := range counts {
		if rc.Count <= 0 {
			t.Errorf("rule %s reported non-positive count %d", rc.Rule, rc.Count)
		}
		total += rc.Count
	}
	if total != len(findings) {
		t.Errorf("rule counts sum to %d, want %d", total, len(findings))
	}
	if len(counts) == 0 || counts[0].Rule != "overflow" {
		t.Errorf("overflow fixture counts = %+v, want overflow first", counts)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i-1].Rule >= counts[i].Rule {
			t.Errorf("rule counts not sorted by rule name: %+v", counts)
		}
	}
}
