package lint

import "go/types"

// GoroutineLeakAnalyzer proves a join for every `go` statement in the
// engine packages. The POP parallel runtime promises deadlock-free DOP-N
// runs and bounded goroutine lifetimes; a spawn without a join either leaks
// (worker outlives the query) or deadlocks Close. A spawn counts as joined
// when the interprocedural summaries show one of the two idioms the runtime
// uses:
//
//   - WaitGroup pairing: the spawned closure calls Done on a WaitGroup
//     class whose Add is reachable from the spawner and whose Wait appears
//     somewhere in the program (gather/probe workers);
//   - channel close: the spawned closure closes a channel class that some
//     function in the program receives from or ranges over (closer
//     goroutines — the receive completing proves the closer ran).
//
// A `go` whose target cannot be resolved statically is flagged too: a join
// that cannot be seen cannot be proven.
var GoroutineLeakAnalyzer = &Analyzer{
	Name: "goroutineleak",
	Doc:  "every go statement in internal/* must have a provable join (WaitGroup pairing or channel close)",
	Run:  runGoroutineLeak,
}

var goroutineLeakScope = []string{"repro/internal"}

func runGoroutineLeak(prog *Program, report ReportFunc) {
	g := programGraph(prog)

	// Program-wide join anchors: WaitGroup classes somebody Waits on, and
	// channel classes somebody receives from or ranges over.
	waited := map[types.Object]bool{}
	received := map[types.Object]bool{}
	for _, f := range g.Funcs {
		for _, op := range f.Sum.WGOps {
			if op.Kind == WGWait && op.Class != nil {
				waited[op.Class] = true
			}
		}
		for _, op := range f.Sum.ChanOps {
			if (op.Kind == ChanRecv || op.Kind == ChanRange) && op.Class != nil {
				received[op.Class] = true
			}
		}
	}

	for _, sp := range g.Spawns {
		if !inScope(sp.Pkg.Path, goroutineLeakScope) {
			continue
		}
		if sp.Callee == nil {
			report(sp.Pos, "goroutine target is not statically resolvable, so no join can be proven; spawn a named function or literal")
			continue
		}
		if spawnJoined(g, sp, waited, received) {
			continue
		}
		report(sp.Pos, "goroutine has no provable join: the spawned closure neither calls Done on a WaitGroup the spawner Adds to (with a Wait in the program) nor closes a channel the program receives from")
	}
}

// spawnJoined checks the two join idioms against the spawned and spawner
// closures.
func spawnJoined(g *CallGraph, sp *GoSpawn, waited, received map[types.Object]bool) bool {
	spawned := g.Closure(sp.Callee)
	spawner := g.Closure(sp.In)

	// WaitGroup pairing: Done in the spawned closure, Add reachable from
	// the spawner, Wait anywhere.
	addClasses := map[types.Object]bool{}
	for _, f := range spawner {
		for _, op := range f.Sum.WGOps {
			if op.Kind == WGAdd && op.Class != nil {
				addClasses[op.Class] = true
			}
		}
	}
	for _, f := range spawned {
		for _, op := range f.Sum.WGOps {
			if op.Kind == WGDone && op.Class != nil && addClasses[op.Class] && waited[op.Class] {
				return true
			}
		}
	}

	// Channel close: the spawned closure closes a channel the program
	// receives from — the receive completing is the join witness.
	for _, f := range spawned {
		for _, op := range f.Sum.ChanOps {
			if op.Kind == ChanClose && op.Class != nil && received[op.Class] {
				return true
			}
		}
	}
	return false
}
