package lint_test

import (
	"bytes"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestDataflowAllowsAreLoadBearing pins the engine findings the CFG/dataflow
// rules produced against the real tree: each site carries a reasoned
// //poplint:allow, so with annotations honored the gate is silent and the
// sites appear among the suppressed findings, and with suppression disabled
// every one of them resurfaces. Deleting any of those annotations (or
// breaking the analysis so it no longer sees the site) fails this test.
func TestDataflowAllowsAreLoadBearing(t *testing.T) {
	type site struct {
		rule string
		file string
	}
	cases := []struct {
		pattern string
		sites   []site
	}{
		{"./internal/executor", []site{
			{lint.BlockingCancelAnalyzer.Name, "exchange.go"}, // error delivery before close, 3 sites
			{lint.BatchEscapeAnalyzer.Name, "join.go"},        // probe cursor drained before next pull
		}},
		{"./internal/server", []site{
			{lint.BlockingCancelAnalyzer.Name, "client.go"}, // buffered cap-1 pending channel
		}},
	}
	for _, c := range cases {
		prog, err := loader(t).LoadPatterns(c.pattern)
		if err != nil {
			t.Fatal(err)
		}
		findings, suppressed := lint.Run(prog, lint.Analyzers(), lint.Options{})
		for _, f := range findings {
			if f.Rule == lint.BatchEscapeAnalyzer.Name || f.Rule == lint.BlockingCancelAnalyzer.Name {
				t.Errorf("%s: unexpected finding with annotations honored: %s", c.pattern, f)
			}
		}
		unsuppressed, _ := lint.Run(prog, lint.Analyzers(), lint.Options{DisableAllow: true})
		for _, s := range c.sites {
			if !hasRuleFinding(suppressed, s.rule, s.file) {
				t.Errorf("%s: %s allow in %s is not load-bearing: site missing from suppressed findings", c.pattern, s.rule, s.file)
			}
			if !hasRuleFinding(unsuppressed, s.rule, s.file) {
				t.Errorf("%s: disabling allows must resurface the %s finding in %s", c.pattern, s.rule, s.file)
			}
		}
	}
}

func hasRuleFinding(fs []lint.Finding, rule, file string) bool {
	for _, f := range fs {
		if f.Rule == rule && strings.HasSuffix(f.Pos.Filename, file) {
			return true
		}
	}
	return false
}

// TestJSONDeterminismDataflowRules extends the eight-run byte-identity pin
// to the CFG/dataflow rules: their finding order must come entirely from the
// deterministic sort, never from map iteration inside the solvers, the
// call-graph closure, or the lock-set vote.
func TestJSONDeterminismDataflowRules(t *testing.T) {
	fixtures := []struct {
		dir    string
		asPath string
		rule   string
	}{
		{"batchescape/bad", "repro/internal/executor/fixbatch", "batchescape"},
		{"blockingcancel/bad", "repro/internal/server/fixblock", "blockingcancel"},
		{"guardedfield/bad", "repro/internal/fixguard", "guardedfield"},
	}
	for _, fx := range fixtures {
		prog := loadFixture(t, fx.dir, fx.asPath)
		var first []byte
		for i := 0; i < 8; i++ {
			findings, _ := lint.Run(prog, lint.Analyzers(), lint.Options{})
			var buf bytes.Buffer
			if err := lint.EncodeJSON(&buf, findings); err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				first = buf.Bytes()
				if !bytes.Contains(first, []byte(fx.rule)) {
					t.Fatalf("%s: expected %s findings in JSON output:\n%s", fx.dir, fx.rule, first)
				}
				continue
			}
			if !bytes.Equal(first, buf.Bytes()) {
				t.Fatalf("%s: run %d JSON differs:\nfirst:\n%s\nnow:\n%s", fx.dir, i, first, buf.Bytes())
			}
		}
	}
}

// TestFindingsMatchProblemMatcher pins the CI annotation contract for every
// analyzer, new dataflow rules included: each rule name must fit the
// problem-matcher's code group ([a-z]+), and a rendered finding from each
// rule's bad fixture must parse under the matcher's full line regexp
// (.github/poplint-problem-matcher.json).
func TestFindingsMatchProblemMatcher(t *testing.T) {
	matcher := regexp.MustCompile(`^(.+?):(\d+): \[([a-z]+)\] (.+)$`)
	ruleCode := regexp.MustCompile(`^[a-z]+$`)
	for _, a := range lint.Analyzers() {
		if !ruleCode.MatchString(a.Name) {
			t.Errorf("analyzer %q does not fit the problem-matcher code group [a-z]+", a.Name)
		}
	}
	for _, fx := range []struct{ dir, asPath string }{
		{"batchescape/bad", "repro/internal/executor/fixbatch"},
		{"blockingcancel/bad", "repro/internal/server/fixblock"},
		{"guardedfield/bad", "repro/internal/fixguard"},
		{"overflow/bad", "repro/internal/optimizer/fixovf"},
		{"nilguard/bad", "repro/internal/fixnil"},
		{"rangeinvariant/bad", "repro/internal/fixrange"},
		{"exhaustive/bad", "repro/internal/fixexh"},
	} {
		prog := loadFixture(t, fx.dir, fx.asPath)
		findings, _ := lint.Run(prog, lint.Analyzers(), lint.Options{})
		if len(findings) == 0 {
			t.Fatalf("%s produced no findings to format", fx.dir)
		}
		for _, f := range findings {
			if !matcher.MatchString(f.String()) {
				t.Errorf("%s: finding %q does not parse under the problem matcher", fx.dir, f)
			}
		}
	}
}

// BenchmarkPoplint measures one full suite run over the executor package —
// the heaviest real target for the dataflow rules (CFG construction, both
// solvers, the retain fixpoint, and loop-reachability all fire). Loading and
// type-checking happen once in setup; the benchmark loop measures analysis
// only, which is what poplint adds on top of go build.
func BenchmarkPoplint(b *testing.B) {
	ld, err := sharedLoader()
	if err != nil {
		b.Fatal(err)
	}
	prog, err := ld.LoadPatterns("./internal/executor", "./internal/server")
	if err != nil {
		b.Fatal(err)
	}
	if errs := ld.Errors(); len(errs) > 0 {
		b.Fatalf("load errors: %v", errs)
	}
	analyzers := lint.Analyzers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		findings, _ := lint.Run(prog, analyzers, lint.Options{})
		if len(findings) != 0 {
			b.Fatalf("benchmark tree must be lint-clean, got %v", findings)
		}
	}
}
