package lint

import (
	"math"
	"sync"
	"testing"
)

// wbLoader memoizes one in-package loader so the stdlib is type-checked
// once for all white-box value-layer tests.
var wbLoader = sync.OnceValues(func() (*Loader, error) {
	return NewLoader(".")
})

// loadValueFixture loads the absint fixture and runs the value analysis.
func loadValueFixture(t *testing.T) *valueAnalysis {
	t.Helper()
	ld, err := wbLoader()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ld.LoadDirAs("testdata/src/absint/src", "repro/internal/fixabsint")
	if err != nil {
		t.Fatal(err)
	}
	return programValues(prog)
}

// fnNode finds a function node by display name.
func fnNode(t *testing.T, va *valueAnalysis, name string) *FuncNode {
	t.Helper()
	for _, fn := range va.funcs {
		if fn.Name == name {
			return fn
		}
	}
	t.Fatalf("no function %q in the fixture", name)
	return nil
}

// summaryOf returns a function's computed value summary.
func summaryOf(t *testing.T, va *valueAnalysis, name string) *ValueSummary {
	t.Helper()
	fn := fnNode(t, va, name)
	sum := va.summaries[fn.Obj]
	if sum == nil || len(sum.Results) == 0 {
		t.Fatalf("%s has no value summary", name)
	}
	return sum
}

// TestValueSolverConverges pins termination: every fixture function —
// including the widening loop — must reach a fixpoint within
// solverMaxRounds.
func TestValueSolverConverges(t *testing.T) {
	va := loadValueFixture(t)
	for fn := range va.nonConverged {
		t.Errorf("%s did not converge", fn.Name)
	}
}

// TestBranchJoinInterval pins the if/else join: two branch constants merge
// into their hull.
func TestBranchJoinInterval(t *testing.T) {
	va := loadValueFixture(t)
	got := summaryOf(t, va, "joinRange").Results[0].IV
	if got != (Interval{2, 3}) {
		t.Errorf("joinRange returns %v, want [2, 3]", got)
	}
}

// TestLoopWidening pins widening at the Loop-marked head: the counter jumps
// to +inf instead of iterating per value, and keeps its proven lower bound.
func TestLoopWidening(t *testing.T) {
	va := loadValueFixture(t)
	got := summaryOf(t, va, "widen").Results[0].IV
	if got != (Interval{0, math.MaxInt64}) {
		t.Errorf("widen returns %v, want [0, +inf]", got)
	}
}

// TestSelectClauseEdges pins state flow through select-clause edges: both
// clause constants reach the merged return.
func TestSelectClauseEdges(t *testing.T) {
	va := loadValueFixture(t)
	got := summaryOf(t, va, "selectJoin").Results[0].IV
	if !got.Contains(5) || !got.Contains(7) || got.Hi != 7 {
		t.Errorf("selectJoin returns %v, want a hull of {5, 7} capped at 7", got)
	}
}

// TestBranchSensitiveRefinement pins edge refinement on both polarities:
// the clamp's summary is exactly the clamped range.
func TestBranchSensitiveRefinement(t *testing.T) {
	va := loadValueFixture(t)
	got := summaryOf(t, va, "clamp").Results[0].IV
	if got != (Interval{0, 100}) {
		t.Errorf("clamp returns %v, want [0, 100]", got)
	}
}

// TestErrPairSummary pins the interprocedural nilness classification: open
// returns nil on every error path and non-nil on every ok path.
func TestErrPairSummary(t *testing.T) {
	va := loadValueFixture(t)
	res := summaryOf(t, va, "open").Results[0]
	if res.NilOnErr != nilAlwaysW {
		t.Errorf("open's NilOnErr = %v, want always-nil", res.NilOnErr)
	}
	if res.NilOnOK != nilNeverW {
		t.Errorf("open's NilOnOK = %v, want never-nil", res.NilOnOK)
	}
}

// TestErrPathDerefSites pins branch-sensitive nilness at the use sites: the
// error-branch dereference solves to provably nil, the ok-branch one to
// non-nil.
func TestErrPathDerefSites(t *testing.T) {
	va := loadValueFixture(t)
	fn := fnNode(t, va, "errPath")
	sites := va.sites[fn]
	if sites == nil || len(sites.derefs) != 2 {
		t.Fatalf("errPath recorded %d deref sites, want 2", len(sites.derefs))
	}
	var sawNil, sawNonNil bool
	for _, d := range sites.derefs {
		switch d.v.nl {
		case nilYes:
			sawNil = true
		case nilNo:
			sawNonNil = true
		default:
			t.Errorf("deref of %s solved to nilness %d, want a definite answer", d.name, d.v.nl)
		}
	}
	if !sawNil || !sawNonNil {
		t.Errorf("err-path derefs: provably-nil=%v non-nil=%v, want both", sawNil, sawNonNil)
	}
}

// TestMulGuardIdiom pins the guard recognition: the MaxInt64/b comparison
// marks the product guarded on its true edge, and the bare product stays
// unguarded.
func TestMulGuardIdiom(t *testing.T) {
	va := loadValueFixture(t)
	for _, tc := range []struct {
		fn    string
		guard bool
	}{
		{"guarded", true},
		{"unguarded", false},
	} {
		fn := fnNode(t, va, tc.fn)
		sites := va.sites[fn]
		var muls []mulAddSite
		for _, s := range sites.mulAdds {
			if s.xs == "a" && s.ys == "b" {
				muls = append(muls, s)
			}
		}
		if len(muls) != 1 {
			t.Fatalf("%s recorded %d a*b sites, want 1", tc.fn, len(muls))
		}
		if muls[0].guard != tc.guard {
			t.Errorf("%s's product guard = %v, want %v", tc.fn, muls[0].guard, tc.guard)
		}
	}
}

// TestCFGBranchEdges pins the true/false edge convention the refinement
// relies on: a conditional block carries its condition in Branch with
// Succs[0] the true edge and Succs[1] the false edge.
func TestCFGBranchEdges(t *testing.T) {
	c := buildFromSrc(t, "x := 1\nif x > 0 {\nx = 2\n} else {\nx = 3\n}\n_ = x")
	entry := c.Blocks[0]
	if entry.Branch == nil {
		t.Fatal("if-condition block has no Branch expression")
	}
	if len(entry.Succs) != 2 {
		t.Fatalf("branch block has %d successors, want 2", len(entry.Succs))
	}
	if edgeKindOf(entry, 0) != edgeTrue || edgeKindOf(entry, 1) != edgeFalse {
		t.Error("Succs[0]/Succs[1] must be the true/false edges")
	}
	if last := c.Blocks[len(c.Blocks)-1]; edgeKindOf(entry, 0) == edgeFlow || len(last.Succs) != 0 {
		t.Error("exit block must have no successors")
	}
}
