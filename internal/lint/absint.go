package lint

// Abstract interpretation over the CFG: the value layer under the overflow,
// nilguard and rangeinvariant rules. Per function, every tracked local gets
// an abstract value from a product lattice:
//
//   - an int64 Interval (intervals.go) — also used for bools (0/1) and as a
//     floor/ceil envelope for floats;
//   - nilness: provably nil / provably non-nil / maybe nil / unknown;
//   - a len interval for slices and maps;
//   - may-evidence flags: "a path proves this exactly zero" (the divisor
//     rule's trigger) and "tainted by an `err != nil` branch";
//   - structural markers pairing a call's error result with its sibling
//     results, so `x, err := f()` + `if err != nil` can consult f's value
//     summary (summaryval.go) about x's nilness on the error path.
//
// States are solved by solveForwardVals (dataflow.go): branch conditions
// refine facts per out-edge (`err != nil`, `x > 0`, `len(b) >= k`, the
// `a > math.MaxInt64/b` overflow-guard idiom), loop heads widen. The rules
// then replay each block from its solved in-state, collecting typed sites
// (multiplications feeding tick sinks, divisions, dereferences, Range
// literals, index expressions) with the abstract values in force there.
//
// Tracking discipline: only *types.Var locals, parameters and named results
// of the function itself are tracked, and only while their address is never
// taken and no closure captures them; everything else (fields, globals,
// captured variables) evaluates to the type's top value. Soundness caveat
// (shared with every interval analysis that does not model two's-complement
// wrap): arithmetic is assumed not to overflow when computing ranges — the
// overflow rule exists precisely to flag where that assumption is at risk.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
)

// nilness is the pointer/interface/slice/map/chan/func component.
type nilness uint8

const (
	nilUnknown nilness = iota // top: no information
	nilYes                    // provably nil
	nilNo                     // provably non-nil
	nilMaybe                  // positive evidence it can be nil on some path
)

func joinNil(a, b nilness) nilness {
	if a == b {
		return a
	}
	if a == nilUnknown || b == nilUnknown {
		return nilUnknown
	}
	return nilMaybe
}

// meetNil refines cur with the branch fact c (nilYes or nilNo); ok=false
// reports a contradiction (the edge is infeasible).
func meetNil(cur, c nilness) (nilness, bool) {
	switch cur {
	case nilUnknown, nilMaybe:
		return c, true
	case c:
		return c, true
	}
	return cur, false // nilYes vs nilNo
}

// absVal flag bits. fZeroPath and fErrPath are may-evidence (OR'd at joins);
// fErrObj/fResultObj mark the error result of a call pair and its siblings
// and survive a join only when both sides agree on the pair.
const (
	fZeroPath  uint8 = 1 << iota // some path proves the value exactly zero
	fErrPath                     // value tainted by an `err != nil` branch
	fErrObj                      // object holds the error result of pair
	fResultObj                   // object holds a non-error result of pair
)

// absVal is one variable's abstract value.
type absVal struct {
	iv    Interval
	nl    nilness
	flags uint8
	pair  int32        // 1-based call-pair id for fErrObj/fResultObj; 0 = none
	res   int16        // result index within the pair, for fResultObj
	lenIv Interval     // slices/maps: abstract len
	guard types.Object // partner proven safe to multiply by (MaxInt64/b idiom)
}

func topVal() absVal {
	return absVal{iv: FullInterval(), nl: nilUnknown, lenIv: FullInterval()}
}

func (v absVal) isTop() bool { return v == topVal() }

func joinVal(a, b absVal) absVal {
	o := absVal{
		iv:    a.iv.Join(b.iv),
		lenIv: a.lenIv.Join(b.lenIv),
		nl:    joinNil(a.nl, b.nl),
		flags: (a.flags | b.flags) & (fZeroPath | fErrPath),
	}
	if a.pair == b.pair && a.res == b.res {
		o.pair, o.res = a.pair, a.res
		o.flags |= (a.flags & b.flags) & (fErrObj | fResultObj)
	}
	if a.guard != nil && a.guard == b.guard {
		o.guard = a.guard
	}
	return o
}

func widenVal(prev, next absVal) absVal {
	next.iv = prev.iv.Widen(next.iv)
	next.lenIv = prev.lenIv.Widen(next.lenIv)
	return next
}

// valState maps tracked objects to abstract values. A nil valState is the
// solver's "unreachable"; a missing key is the object's top value. Stored
// values are normalized: exact top values are deleted.
type valState map[types.Object]absVal

func (s valState) clone() valState {
	c := make(valState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (s valState) get(obj types.Object) (absVal, bool) {
	v, ok := s[obj]
	if !ok {
		return topVal(), false
	}
	return v, true
}

func (s valState) set(obj types.Object, v absVal) {
	if v.isTop() {
		delete(s, obj)
		return
	}
	s[obj] = v
}

// join returns the pointwise join of two states (missing key = top; results
// equal to top are dropped).
func (a valState) join(b valState) valState {
	o := make(valState, len(a))
	for k, av := range a {
		bv, ok := b[k]
		if !ok {
			bv = topVal()
		}
		o.set(k, joinVal(av, bv))
	}
	for k, bv := range b {
		if _, ok := a[k]; !ok {
			o.set(k, joinVal(topVal(), bv))
		}
	}
	return o
}

// widen applies interval widening pointwise: prev is the loop head's old
// in-state, next the freshly joined one.
func (prev valState) widen(next valState) valState {
	o := make(valState, len(next))
	for k, nv := range next {
		pv, ok := prev[k]
		if !ok {
			pv = topVal()
		}
		o.set(k, widenVal(pv, nv))
	}
	return o
}

func valStatesEqual(a, b valState) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// --- type helpers --------------------------------------------------------

func basicOf(t types.Type) *types.Basic {
	if t == nil {
		return nil
	}
	b, _ := t.Underlying().(*types.Basic)
	return b
}

func isIntType(t types.Type) bool {
	b := basicOf(t)
	return b != nil && b.Info()&types.IsInteger != 0
}

func isFloatType(t types.Type) bool {
	b := basicOf(t)
	return b != nil && b.Info()&types.IsFloat != 0
}

// basicRange is the value interval of a basic type: sized integers get
// their exact range, unsigned 64-bit the non-negative half, booleans 0/1.
func basicRange(b *types.Basic) Interval {
	switch b.Kind() {
	case types.Bool, types.UntypedBool:
		return Interval{0, 1}
	case types.Int8:
		return typeRange(8, true)
	case types.Int16:
		return typeRange(16, true)
	case types.Int32, types.UntypedRune:
		return typeRange(32, true)
	case types.Uint8:
		return typeRange(8, false)
	case types.Uint16:
		return typeRange(16, false)
	case types.Uint32:
		return typeRange(32, false)
	case types.Uint, types.Uint64, types.Uintptr:
		return Interval{0, math.MaxInt64}
	}
	return FullInterval()
}

// isNilable reports types whose zero value is nil.
func isNilable(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan,
		*types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// topForType is the no-information value of a type: full intervals clipped
// to the type's representable range.
func topForType(t types.Type) absVal {
	v := topVal()
	if b := basicOf(t); b != nil {
		v.iv = basicRange(b)
	}
	return v
}

// zeroValOf abstracts a type's zero value (var declarations without
// initializer, named results at entry).
func zeroValOf(t types.Type) absVal {
	v := topForType(t)
	if t == nil {
		return v
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch {
		case u.Info()&(types.IsInteger|types.IsFloat) != 0:
			v.iv = ConstInterval(0)
			v.flags |= fZeroPath
		case u.Info()&types.IsBoolean != 0:
			v.iv = ConstInterval(0)
		}
	case *types.Slice, *types.Map:
		v.nl = nilYes
		v.lenIv = ConstInterval(0)
	case *types.Pointer, *types.Chan, *types.Signature, *types.Interface:
		v.nl = nilYes
	}
	return v
}

// constToVal abstracts a typed or untyped constant.
func constToVal(cv constant.Value, t types.Type) absVal {
	v := topForType(t)
	switch cv.Kind() {
	case constant.Int:
		if i, exact := constant.Int64Val(cv); exact {
			v.iv = ConstInterval(i)
		} else if constant.Sign(cv) > 0 {
			v.iv = Interval{math.MaxInt64, math.MaxInt64}
		} else {
			v.iv = Interval{math.MinInt64, math.MinInt64}
		}
	case constant.Float:
		f, _ := constant.Float64Val(cv)
		v.iv = floatInterval(f)
	case constant.Bool:
		if constant.BoolVal(cv) {
			v.iv = ConstInterval(1)
		} else {
			v.iv = ConstInterval(0)
		}
	case constant.String:
		v.lenIv = ConstInterval(int64(len(constant.StringVal(cv))))
	}
	if v.iv == ConstInterval(0) && cv.Kind() != constant.Bool && cv.Kind() != constant.String {
		v.flags |= fZeroPath
	}
	return v
}

// floatInterval envelopes a float64 in an integer interval ([floor, ceil],
// with infinities and huge magnitudes pinned to the sentinels).
func floatInterval(f float64) Interval {
	const lim = float64(math.MaxInt64) // 2^63; anything ≥ is sentinel land
	switch {
	case math.IsNaN(f):
		return FullInterval()
	case f >= lim:
		return Interval{math.MaxInt64, math.MaxInt64}
	case f <= -lim:
		return Interval{math.MinInt64, math.MinInt64}
	}
	return Interval{int64(math.Floor(f)), int64(math.Ceil(f))}
}

// --- collected sites -----------------------------------------------------

// derefKind classifies one dereference site for the nilguard rule. Pointer
// method calls with pointer receivers are deliberately NOT sites: the
// nil-receiver method is a supported Go idiom (Meter, trace recorders).
type derefKind uint8

const (
	derefField     derefKind = iota // p.f field read/write through a pointer
	derefStar                       // *p
	derefIndex                      // s[i] on a slice
	derefMapWrite                   // m[k] = v on a map
	derefIfaceCall                  // x.M() through an interface value
	derefFuncCall                   // f() through a func value
)

func (k derefKind) String() string {
	switch k {
	case derefField:
		return "field access"
	case derefStar:
		return "dereference"
	case derefIndex:
		return "index"
	case derefMapWrite:
		return "map write"
	case derefIfaceCall:
		return "interface method call"
	case derefFuncCall:
		return "call"
	}
	return "use"
}

type mulAddSite struct {
	pos    token.Pos
	op     token.Token // token.MUL or token.ADD
	xs, ys string      // rendered operands
	xv, yv absVal
	sink   bool // value feeds Meter.AddTicks or a sink parameter
	guard  bool // a dominating a > MaxInt64/b comparison proved the pair safe
}

type divSite struct {
	pos    token.Pos
	op     token.Token // token.QUO or token.REM
	divStr string
	dv     absVal
	intOp  bool // integer division (panics on zero) vs float (silent ±Inf)
}

type derefSite struct {
	pos  token.Pos
	name string
	kind derefKind
	v    absVal
}

type rangeLitSite struct {
	pos      token.Pos
	typeName string
	loV, hiV absVal
	loS, hiS string
}

type indexSite struct {
	pos    token.Pos
	idxS   string
	baseS  string
	idxV   absVal
	lenHi  int64 // best proven upper bound on len(base)
	hasLen bool
}

// valueSites is everything one function's replay collected.
type valueSites struct {
	mulAdds []mulAddSite
	divs    []divSite
	derefs  []derefSite
	ranges  []rangeLitSite
	indexes []indexSite
}

// returnFact is one evaluated return site, for summary building.
type returnFact struct {
	vals []absVal
	// params[i] is the parameter index result i returned verbatim, or -1.
	params []int
}

// --- the interpreter -----------------------------------------------------

// callPair records one `x, ..., err := f(...)` assignment: the statically
// resolved callee and the LHS objects, so an `err != nil` refinement can
// consult f's value summary about the sibling results.
type callPair struct {
	id     int32
	callee *types.Func
	objs   []types.Object // one per LHS, nil for untracked/blank
	errIdx int            // index of the error result within objs
}

// interp is the per-function abstract interpreter: prescan products
// (trackability, sinks, call pairs) plus the transfer/refine/eval machinery.
type interp struct {
	va   *valueAnalysis
	fn   *FuncNode
	pkg  *Package
	info *types.Info

	owned    map[types.Object]bool // declared by this function (params/results/locals)
	unstable map[types.Object]bool // address taken or captured by a literal
	sinkObjs map[types.Object]bool // value flows into a tick sink (syntactic)
	pairs    map[*ast.AssignStmt]*callPair
	pairByID []*callPair

	namedResults []types.Object // named result objects, entry-seeded

	// replay hooks; nil while solving
	sites *valueSites
	rets  *[]returnFact

	// dead is set by step when a no-return call (panic, os.Exit, log.Fatal)
	// executes: the rest of the block and its out-edges are unreachable.
	dead bool
}

func newInterp(va *valueAnalysis, fn *FuncNode) *interp {
	ip := &interp{
		va:       va,
		fn:       fn,
		pkg:      fn.Pkg,
		info:     fn.Pkg.Info,
		owned:    map[types.Object]bool{},
		unstable: map[types.Object]bool{},
		sinkObjs: map[types.Object]bool{},
		pairs:    map[*ast.AssignStmt]*callPair{},
	}
	ip.prescan()
	if s := va.sinkObjsByFn[fn]; s != nil {
		ip.sinkObjs = s
	}
	return ip
}

// signature returns the function's type signature (declared or literal).
func (ip *interp) signature() *types.Signature {
	if ip.fn.Obj != nil {
		sig, _ := ip.fn.Obj.Type().(*types.Signature)
		return sig
	}
	if ip.fn.Lit != nil {
		sig, _ := ip.info.TypeOf(ip.fn.Lit).(*types.Signature)
		return sig
	}
	return nil
}

// prescan runs once per function: ownership (params, results, locals),
// stability (no address-taken, no closure capture), call pairs. Tick-sink
// seeds are recomputed separately by the sink fixpoint (summaryval.go).
func (ip *interp) prescan() {
	sig := ip.signature()
	if sig != nil {
		own := func(tup *types.Tuple) {
			for i := 0; i < tup.Len(); i++ {
				ip.owned[tup.At(i)] = true
			}
		}
		own(sig.Params())
		own(sig.Results())
		if r := sig.Recv(); r != nil {
			ip.owned[r] = true
		}
		for i := 0; i < sig.Results().Len(); i++ {
			if v := sig.Results().At(i); v.Name() != "" && v.Name() != "_" {
				ip.namedResults = append(ip.namedResults, v)
			}
		}
	}
	if ip.fn.Body == nil {
		return
	}
	// Locals: every Defs entry inside the body (but not inside nested
	// literals — those belong to the literal's own node).
	inspectNoLit(ip.fn.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := ip.info.Defs[n]; obj != nil {
				if _, isVar := obj.(*types.Var); isVar {
					ip.owned[obj] = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := unparen(n.X).(*ast.Ident); ok {
					if obj := ip.objOf(id); obj != nil {
						ip.unstable[obj] = true
					}
				}
			}
		case *ast.FuncLit:
			// inspectNoLit does not descend; capture detection below does.
		case *ast.AssignStmt:
			ip.prescanPair(n)
		}
	})
	// Closure capture: any owned object referenced inside a nested literal
	// can change behind the analysis's back (or observe stale facts).
	ast.Inspect(ip.fn.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := ip.objOf(id); obj != nil && ip.owned[obj] {
					ip.unstable[obj] = true
				}
			}
			return true
		})
		return false
	})
}

// prescanPair registers `x, ..., err := f(...)` assignments whose callee is
// statically known and whose last LHS is error-typed.
func (ip *interp) prescanPair(as *ast.AssignStmt) {
	if len(as.Lhs) < 2 || len(as.Rhs) != 1 {
		return
	}
	call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	w := &walker{pkg: ip.pkg}
	callee := w.staticCallee(call)
	if callee == nil {
		return
	}
	last := unparen(as.Lhs[len(as.Lhs)-1])
	lastID, ok := last.(*ast.Ident)
	if !ok {
		return
	}
	lastObj := ip.objOf(lastID)
	if lastObj == nil || !isErrorType(lastObj.Type()) {
		return
	}
	p := &callPair{
		id:     int32(len(ip.pairByID) + 1),
		callee: callee,
		errIdx: len(as.Lhs) - 1,
	}
	for _, l := range as.Lhs {
		if id, ok := unparen(l).(*ast.Ident); ok && id.Name != "_" {
			p.objs = append(p.objs, ip.objOf(id))
		} else {
			p.objs = append(p.objs, nil)
		}
	}
	ip.pairs[as] = p
	ip.pairByID = append(ip.pairByID, p)
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// objOf resolves an identifier to its object (use or def).
func (ip *interp) objOf(id *ast.Ident) types.Object {
	if obj := ip.info.Uses[id]; obj != nil {
		return obj
	}
	return ip.info.Defs[id]
}

// tracked reports whether obj participates in the state: a variable this
// function declared whose address is never taken and which no literal
// captures.
func (ip *interp) tracked(obj types.Object) bool {
	if obj == nil || !ip.owned[obj] || ip.unstable[obj] {
		return false
	}
	_, isVar := obj.(*types.Var)
	return isVar
}

// entryState seeds the function entry: named results hold their zero values.
func (ip *interp) entryState() valState {
	st := valState{}
	for _, r := range ip.namedResults {
		if ip.tracked(r) {
			st.set(r, zeroValOf(r.Type()))
		}
	}
	return st
}

// identTarget unwraps parens and numeric conversions down to a tracked
// identifier's object, for guard bookkeeping.
func (ip *interp) identTarget(e ast.Expr) types.Object {
	for {
		e = unparen(e)
		if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
			if tv, ok := ip.info.Types[call.Fun]; ok && tv.IsType() {
				e = call.Args[0]
				continue
			}
		}
		break
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := ip.objOf(id)
	if !ip.tracked(obj) {
		return nil
	}
	return obj
}

// --- transfer ------------------------------------------------------------

// step interprets one CFG node, mutating st. During replay (ip.sites or
// ip.rets non-nil) it also records sites and return facts.
func (ip *interp) step(st valState, n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		ip.assign(st, n)
	case *ast.IncDecStmt:
		v := ip.eval(st, n.X, false)
		one := ConstInterval(1)
		if n.Tok == token.DEC {
			one = ConstInterval(-1)
		}
		if obj := ip.identTarget(n.X); obj != nil {
			nv := topForType(obj.Type())
			nv.iv = v.iv.Add(one)
			ip.setObj(st, obj, nv)
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			var vals []absVal
			for _, v := range vs.Values {
				vals = append(vals, ip.eval(st, v, false))
			}
			for i, name := range vs.Names {
				obj := ip.info.Defs[name]
				if obj == nil || name.Name == "_" {
					continue
				}
				switch {
				case len(vs.Values) == 0:
					ip.setObj(st, obj, zeroValOf(obj.Type()))
				case i < len(vals) && len(vs.Values) == len(vs.Names):
					ip.setObj(st, obj, vals[i])
				default: // tuple form var a, b = f()
					ip.setObj(st, obj, topForType(obj.Type()))
				}
			}
		}
	case *ast.ExprStmt:
		ip.eval(st, n.X, false)
		if call, ok := unparen(n.X).(*ast.CallExpr); ok && ip.isNoReturn(call) {
			ip.dead = true
		}
	case *ast.SendStmt:
		ip.eval(st, n.Chan, false)
		ip.eval(st, n.Value, false)
	case *ast.RangeStmt:
		ip.rangeBind(st, n)
	case *ast.ReturnStmt:
		ip.returnStep(st, n)
	case *ast.DeferStmt:
		ip.evalCallArgsOnly(st, n.Call)
	case *ast.GoStmt:
		ip.evalCallArgsOnly(st, n.Call)
	case *ast.BranchStmt, *ast.LabeledStmt, *ast.EmptyStmt:
	case ast.Expr:
		ip.eval(st, n, false)
	}
}

// noReturnFuncs are the stdlib functions that terminate the goroutine or
// process: control never reaches the statement after them, so the value
// solver kills the state there (otherwise every `if err != nil { log.Fatal }`
// guard would leak its error path into the code below it).
var noReturnFuncs = map[string]bool{
	"os.Exit":        true,
	"runtime.Goexit": true,
	"log.Fatal":      true,
	"log.Fatalf":     true,
	"log.Fatalln":    true,
	"log.Panic":      true,
	"log.Panicf":     true,
	"log.Panicln":    true,
}

// isNoReturn reports a call that provably does not return: the panic
// builtin or one of noReturnFuncs.
func (ip *interp) isNoReturn(call *ast.CallExpr) bool {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := ip.info.Uses[id].(*types.Builtin); isB {
			return b.Name() == "panic"
		}
	}
	w := &walker{pkg: ip.pkg}
	callee := w.staticCallee(call)
	if callee == nil || callee.Pkg() == nil {
		return false
	}
	return noReturnFuncs[callee.Pkg().Path()+"."+callee.Name()]
}

// evalCallArgsOnly evaluates a deferred/spawned call's arguments (they run
// now) without treating the call itself as executing here.
func (ip *interp) evalCallArgsOnly(st valState, call *ast.CallExpr) {
	for _, a := range call.Args {
		ip.eval(st, a, false)
	}
}

// returnStep evaluates a return's results and, when collecting, records the
// return fact (naked returns read the named result objects).
func (ip *interp) returnStep(st valState, n *ast.ReturnStmt) {
	sig := ip.signature()
	nres := 0
	if sig != nil {
		nres = sig.Results().Len()
	}
	var vals []absVal
	var params []int
	if len(n.Results) == 0 {
		for _, r := range ip.namedResults {
			v, _ := st.get(r)
			vals = append(vals, v)
			params = append(params, -1)
		}
	} else if len(n.Results) == nres {
		for _, e := range n.Results {
			vals = append(vals, ip.eval(st, e, false))
			params = append(params, ip.paramIndexOf(e))
		}
	} else {
		// return f() forwarding a tuple: no per-result precision.
		for _, e := range n.Results {
			ip.eval(st, e, false)
		}
		for i := 0; i < nres; i++ {
			vals = append(vals, topVal())
			params = append(params, -1)
		}
	}
	if ip.rets != nil && len(vals) == nres && nres > 0 {
		*ip.rets = append(*ip.rets, returnFact{vals: vals, params: params})
	}
}

// paramIndexOf reports which parameter e returns verbatim, or -1.
func (ip *interp) paramIndexOf(e ast.Expr) int {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return -1
	}
	obj := ip.objOf(id)
	sig := ip.signature()
	if obj == nil || sig == nil {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return i
		}
	}
	return -1
}

// setObj writes a tracked object's value, clearing any overflow-guard
// pointing at it (the guarded relation dies when either side changes).
func (ip *interp) setObj(st valState, obj types.Object, v absVal) {
	if !ip.tracked(obj) {
		return
	}
	for k, kv := range st {
		if kv.guard == obj {
			kv.guard = nil
			st.set(k, kv)
		}
	}
	st.set(obj, v)
}

// assign interprets an assignment statement.
func (ip *interp) assign(st valState, as *ast.AssignStmt) {
	// Compound ops: x op= y.
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		lv := ip.eval(st, as.Lhs[0], false)
		rv := ip.eval(st, as.Rhs[0], false)
		obj := ip.identTarget(as.Lhs[0])
		if obj == nil {
			return
		}
		var binOp token.Token
		switch as.Tok {
		case token.ADD_ASSIGN:
			binOp = token.ADD
		case token.SUB_ASSIGN:
			binOp = token.SUB
		case token.MUL_ASSIGN:
			binOp = token.MUL
		case token.QUO_ASSIGN:
			binOp = token.QUO
		case token.REM_ASSIGN:
			binOp = token.REM
		default:
			ip.setObj(st, obj, topForType(obj.Type()))
			return
		}
		nv := ip.arith(binOp, lv, rv, obj.Type())
		// x *= y / x += y feeding a sink is a site too.
		if ip.sinkObjs[obj] && (binOp == token.MUL || binOp == token.ADD) && isIntType(obj.Type()) && ip.sites != nil {
			ip.sites.mulAdds = append(ip.sites.mulAdds, mulAddSite{
				pos: as.Pos(), op: binOp,
				xs: exprString(as.Lhs[0]), ys: exprString(as.Rhs[0]),
				xv: lv, yv: rv, sink: true,
				guard: ip.mulGuarded(st, as.Lhs[0], as.Rhs[0]),
			})
		}
		ip.setObj(st, obj, nv)
		return
	}

	// Tuple form: x, y := f() / v, ok := m[k] / v, ok := <-ch / v, ok := x.(T)
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		ip.assignTuple(st, as)
		return
	}

	// Pairwise: evaluate every RHS first (Go semantics), then assign.
	vals := make([]absVal, len(as.Rhs))
	for i, r := range as.Rhs {
		sink := false
		if i < len(as.Lhs) {
			if obj := ip.identTarget(as.Lhs[i]); obj != nil && ip.sinkObjs[obj] {
				sink = true
			}
		}
		vals[i] = ip.eval(st, r, sink)
	}
	for i, l := range as.Lhs {
		if i >= len(vals) {
			break
		}
		ip.assignLHS(st, l, vals[i])
	}
}

// assignLHS stores v into an assignment target, recording deref sites for
// pointer/map targets.
func (ip *interp) assignLHS(st valState, l ast.Expr, v absVal) {
	l = unparen(l)
	switch l := l.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := ip.objOf(l)
		if obj == nil {
			return
		}
		nv := v
		// Clip to the target type's representable range (assignment cannot
		// widen past it).
		if b := basicOf(obj.Type()); b != nil {
			nv.iv = nv.iv.Meet(basicRange(b))
			if nv.iv.IsEmpty() {
				nv.iv = basicRange(b)
			}
		}
		ip.setObj(st, obj, nv)
	case *ast.IndexExpr:
		idxV := ip.eval(st, l.Index, false)
		if id, ok := unparen(l.X).(*ast.Ident); ok {
			bv := ip.evalIdent(st, id)
			if t := ip.info.TypeOf(l.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					ip.noteDeref(l.Pos(), id.Name, derefMapWrite, bv)
				} else {
					ip.noteSliceIndex(l, id, bv, idxV)
				}
			}
		} else {
			ip.eval(st, l.X, false)
		}
	case *ast.SelectorExpr, *ast.StarExpr:
		ip.eval(st, l, false)
	}
}

// assignTuple handles multi-assign from one RHS.
func (ip *interp) assignTuple(st valState, as *ast.AssignStmt) {
	rhs := unparen(as.Rhs[0])
	setAll := func(get func(i int, t types.Type) absVal) {
		for i, l := range as.Lhs {
			id, ok := unparen(l).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := ip.objOf(id)
			if obj == nil {
				continue
			}
			ip.setObj(st, obj, get(i, obj.Type()))
		}
	}
	switch r := rhs.(type) {
	case *ast.CallExpr:
		results := ip.evalCall(st, r, false)
		pair := ip.pairs[as]
		setAll(func(i int, t types.Type) absVal {
			v := topForType(t)
			if i < len(results) {
				v = results[i]
			}
			if pair != nil {
				v.pair = pair.id
				v.res = int16(i)
				if i == pair.errIdx {
					v.flags |= fErrObj
				} else {
					v.flags |= fResultObj
				}
			}
			return v
		})
	case *ast.TypeAssertExpr:
		ip.eval(st, r.X, false)
		setAll(func(i int, t types.Type) absVal {
			v := topForType(t)
			if i == 1 {
				v.iv = Interval{0, 1}
			}
			return v
		})
	case *ast.UnaryExpr: // v, ok := <-ch
		ip.eval(st, r.X, false)
		setAll(func(i int, t types.Type) absVal {
			v := topForType(t)
			if i == 1 {
				v.iv = Interval{0, 1}
			}
			return v
		})
	case *ast.IndexExpr: // v, ok := m[k]
		ip.eval(st, r, false)
		setAll(func(i int, t types.Type) absVal {
			v := topForType(t)
			if i == 1 {
				v.iv = Interval{0, 1}
			}
			return v
		})
	default:
		ip.eval(st, rhs, false)
		setAll(func(i int, t types.Type) absVal { return topForType(t) })
	}
}

// rangeBind evaluates a range statement's operand and binds key/value.
func (ip *interp) rangeBind(st valState, n *ast.RangeStmt) {
	xv := ip.eval(st, n.X, false)
	xt := ip.info.TypeOf(n.X)
	var hi int64 = math.MaxInt64
	if xt != nil {
		switch u := xt.Underlying().(type) {
		case *types.Slice, *types.Map:
			hi = xv.lenIv.Hi
		case *types.Array:
			hi = u.Len()
		case *types.Pointer: // *[N]T
			if arr, ok := u.Elem().Underlying().(*types.Array); ok {
				hi = arr.Len()
			}
		case *types.Basic:
			if u.Info()&types.IsInteger != 0 {
				hi = xv.iv.Hi
			}
		}
	}
	bind := func(e ast.Expr, mk func(t types.Type) absVal) {
		if e == nil {
			return
		}
		id, ok := unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := ip.objOf(id)
		if obj == nil {
			return
		}
		ip.setObj(st, obj, mk(obj.Type()))
	}
	bind(n.Key, func(t types.Type) absVal {
		v := topForType(t)
		if isIntType(t) {
			top := hi
			if top != math.MaxInt64 {
				top = satAdd64(top, -1)
				if top < 0 {
					top = 0
				}
			}
			v.iv = v.iv.Meet(Interval{0, top})
			if v.iv.IsEmpty() {
				v.iv = Interval{0, top}
			}
		}
		return v
	})
	bind(n.Value, topForType)
}

// --- eval ----------------------------------------------------------------

func exprString(e ast.Expr) string { return types.ExprString(e) }

// noteDeref records a dereference site during replay.
func (ip *interp) noteDeref(pos token.Pos, name string, kind derefKind, v absVal) {
	if ip.sites == nil {
		return
	}
	ip.sites.derefs = append(ip.sites.derefs, derefSite{pos: pos, name: name, kind: kind, v: v})
}

// noteSliceIndex records both the nil-deref and bounds aspects of s[i]. The
// caller evaluates the index exactly once and passes the result, so nested
// expressions inside the index do not double-record sites.
func (ip *interp) noteSliceIndex(ix *ast.IndexExpr, baseID *ast.Ident, bv, idxV absVal) {
	if ip.sites == nil {
		return
	}
	t := ip.info.TypeOf(ix.X)
	if t == nil {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		ip.sites.derefs = append(ip.sites.derefs, derefSite{pos: ix.Pos(), name: baseID.Name, kind: derefIndex, v: bv})
		site := indexSite{pos: ix.Pos(), idxS: exprString(ix.Index), baseS: baseID.Name, idxV: idxV}
		if bv.lenIv.BoundedAbove() {
			site.lenHi, site.hasLen = bv.lenIv.Hi, true
		}
		ip.sites.indexes = append(ip.sites.indexes, site)
	case *types.Array:
		ip.sites.indexes = append(ip.sites.indexes, indexSite{
			pos: ix.Pos(), idxS: exprString(ix.Index), baseS: baseID.Name,
			idxV: idxV, lenHi: u.Len(), hasLen: true,
		})
	}
}

// evalIdent reads an identifier's abstract value.
func (ip *interp) evalIdent(st valState, id *ast.Ident) absVal {
	obj := ip.objOf(id)
	if obj == nil {
		return topVal()
	}
	if v, ok := st[obj]; ok {
		return v
	}
	return topForType(obj.Type())
}

// eval computes an expression's abstract value, recording analysis sites
// along the way when replaying. sink marks that the value feeds tick
// accounting (Meter.AddTicks or a sink parameter) — the overflow rule's
// context bit.
func (ip *interp) eval(st valState, e ast.Expr, sink bool) absVal {
	if e == nil {
		return topVal()
	}
	e = unparen(e)
	// Constants first: any expression the type checker folded is exact.
	if tv, ok := ip.info.Types[e]; ok {
		if tv.Value != nil {
			return constToVal(tv.Value, tv.Type)
		}
		if tv.IsNil() {
			v := topVal()
			v.nl = nilYes
			return v
		}
	}

	switch x := e.(type) {
	case *ast.Ident:
		return ip.evalIdent(st, x)

	case *ast.BinaryExpr:
		return ip.evalBinary(st, x, sink)

	case *ast.UnaryExpr:
		switch x.Op {
		case token.SUB:
			v := ip.eval(st, x.X, sink)
			out := topForType(ip.info.TypeOf(e))
			out.iv = v.iv.Neg()
			out.flags |= v.flags & fZeroPath
			return out
		case token.NOT:
			v := ip.eval(st, x.X, false)
			out := topForType(ip.info.TypeOf(e))
			switch v.iv {
			case ConstInterval(1):
				out.iv = ConstInterval(0)
			case ConstInterval(0):
				out.iv = ConstInterval(1)
			}
			return out
		case token.AND: // &x: non-nil by construction
			ip.eval(st, x.X, false)
			v := topVal()
			v.nl = nilNo
			return v
		case token.ARROW: // <-ch
			ip.eval(st, x.X, false)
			return topForType(ip.info.TypeOf(e))
		default:
			ip.eval(st, x.X, false)
			return topForType(ip.info.TypeOf(e))
		}

	case *ast.StarExpr:
		if id, ok := unparen(x.X).(*ast.Ident); ok {
			ip.noteDeref(x.Pos(), id.Name, derefStar, ip.evalIdent(st, id))
		}
		ip.eval(st, x.X, false)
		return topForType(ip.info.TypeOf(e))

	case *ast.SelectorExpr:
		return ip.evalSelector(st, x)

	case *ast.CallExpr:
		res := ip.evalCall(st, x, sink)
		if len(res) > 0 {
			return res[0]
		}
		return topForType(ip.info.TypeOf(e))

	case *ast.IndexExpr:
		return ip.evalIndex(st, x)

	case *ast.SliceExpr:
		base := ip.eval(st, x.X, false)
		ip.eval(st, x.Low, false)
		ip.eval(st, x.High, false)
		ip.eval(st, x.Max, false)
		v := topForType(ip.info.TypeOf(e))
		if base.nl == nilNo && x.Low == nil && x.High == nil {
			v.nl = nilNo // s[:] of a non-nil slice
		}
		return v

	case *ast.CompositeLit:
		return ip.evalComposite(st, x)

	case *ast.FuncLit:
		v := topVal()
		v.nl = nilNo
		return v

	case *ast.TypeAssertExpr:
		ip.eval(st, x.X, false)
		return topForType(ip.info.TypeOf(e))

	case *ast.KeyValueExpr:
		ip.eval(st, x.Value, false)
		return topVal()
	}
	return topForType(ip.info.TypeOf(e))
}

// mulGuarded reports whether a dominating `a > math.MaxInt64/b` comparison
// (false edge) proved this operand pair safe to multiply.
func (ip *interp) mulGuarded(st valState, x, y ast.Expr) bool {
	xo, yo := ip.identTarget(x), ip.identTarget(y)
	if xo == nil || yo == nil {
		return false
	}
	if v, ok := st[xo]; ok && v.guard == yo {
		return true
	}
	if v, ok := st[yo]; ok && v.guard == xo {
		return true
	}
	return false
}

// evalBinary abstracts arithmetic, recording overflow/div sites.
func (ip *interp) evalBinary(st valState, x *ast.BinaryExpr, sink bool) absVal {
	t := ip.info.TypeOf(x)
	switch x.Op {
	case token.LAND, token.LOR:
		ip.eval(st, x.X, false)
		ip.eval(st, x.Y, false)
		v := topForType(t)
		v.iv = Interval{0, 1}
		return v
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		ip.eval(st, x.X, false)
		ip.eval(st, x.Y, false)
		v := topForType(t)
		v.iv = Interval{0, 1}
		return v
	}

	xv := ip.eval(st, x.X, sink)
	yv := ip.eval(st, x.Y, sink)

	if ip.sites != nil {
		switch x.Op {
		case token.MUL, token.ADD:
			if isIntType(t) {
				ip.sites.mulAdds = append(ip.sites.mulAdds, mulAddSite{
					pos: x.Pos(), op: x.Op,
					xs: exprString(x.X), ys: exprString(x.Y),
					xv: xv, yv: yv, sink: sink,
					guard: ip.mulGuarded(st, x.X, x.Y),
				})
			}
		case token.QUO, token.REM:
			if isIntType(t) || isFloatType(t) {
				ip.sites.divs = append(ip.sites.divs, divSite{
					pos: x.Pos(), op: x.Op, divStr: exprString(x.Y),
					dv: yv, intOp: isIntType(t),
				})
			}
		}
	}
	return ip.arith(x.Op, xv, yv, t)
}

// arith is the interval transfer for a binary arithmetic op.
func (ip *interp) arith(op token.Token, xv, yv absVal, t types.Type) absVal {
	out := topForType(t)
	switch op {
	case token.ADD:
		out.iv = xv.iv.Add(yv.iv)
	case token.SUB:
		out.iv = xv.iv.Sub(yv.iv)
	case token.MUL:
		out.iv = xv.iv.Mul(yv.iv)
	case token.QUO:
		if c := yv.iv; c.Lo == c.Hi && c.Lo > 0 && isIntType(t) {
			out.iv = Interval{quoFloor(xv.iv.Lo, c.Lo), quoFloor(xv.iv.Hi, c.Lo)}
		}
	case token.REM:
		if c := yv.iv; c.Lo == c.Hi && c.Lo > 0 && c.Lo != math.MaxInt64 {
			if xv.iv.Lo >= 0 {
				out.iv = Interval{0, c.Lo - 1}
			} else {
				out.iv = Interval{-(c.Lo - 1), c.Lo - 1}
			}
		}
	case token.AND:
		if xv.iv.Lo >= 0 && yv.iv.Lo >= 0 {
			hi := xv.iv.Hi
			if yv.iv.Hi < hi {
				hi = yv.iv.Hi
			}
			out.iv = Interval{0, hi}
		}
	case token.SHR:
		if xv.iv.Lo >= 0 {
			out.iv = Interval{0, xv.iv.Hi}
		}
	}
	// Clip to the result type's representable range; an empty meet means the
	// transfer proved nothing useful (wrap), fall back to the type range.
	if b := basicOf(t); b != nil {
		clipped := out.iv.Meet(basicRange(b))
		if clipped.IsEmpty() {
			clipped = basicRange(b)
		}
		out.iv = clipped
	}
	return out
}

// quoFloor divides preserving sentinel semantics (±∞ / c = ±∞).
func quoFloor(a, c int64) int64 {
	if a == math.MaxInt64 || a == math.MinInt64 {
		return a
	}
	q := a / c
	if a%c != 0 && (a < 0) != (c < 0) {
		q-- // floor toward -∞ so the interval stays an envelope
	}
	return q
}

// evalSelector handles field reads and method values, recording deref and
// interface-call sites.
func (ip *interp) evalSelector(st valState, sel *ast.SelectorExpr) absVal {
	// Qualified identifier pkg.X: nothing to dereference.
	if pkgNameOf(ip.info, sel.X) != nil {
		return topForType(ip.info.TypeOf(sel))
	}
	s, ok := ip.info.Selections[sel]
	if ok {
		if id, isID := unparen(sel.X).(*ast.Ident); isID {
			bv := ip.evalIdent(st, id)
			switch s.Kind() {
			case types.FieldVal:
				if s.Indirect() || isPointerType(ip.info.TypeOf(sel.X)) {
					ip.noteDeref(sel.Sel.Pos(), id.Name, derefField, bv)
				}
			case types.MethodVal:
				recvT := ip.info.TypeOf(sel.X)
				if recvT != nil && types.IsInterface(recvT) {
					ip.noteDeref(sel.Sel.Pos(), id.Name, derefIfaceCall, bv)
				} else if s.Indirect() && !methodHasPointerReceiver(s) {
					// Value-receiver method on a pointer base auto-derefs.
					ip.noteDeref(sel.Sel.Pos(), id.Name, derefField, bv)
				}
			}
		}
	}
	ip.eval(st, sel.X, false)
	return topForType(ip.info.TypeOf(sel))
}

func isPointerType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

func methodHasPointerReceiver(s *types.Selection) bool {
	f, ok := s.Obj().(*types.Func)
	if !ok {
		return false
	}
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	_, isPtr := sig.Recv().Type().(*types.Pointer)
	return isPtr
}

// evalIndex handles s[i] reads.
func (ip *interp) evalIndex(st valState, ix *ast.IndexExpr) absVal {
	idxV := ip.eval(st, ix.Index, false)
	t := ip.info.TypeOf(ix.X)
	if t == nil {
		ip.eval(st, ix.X, false)
		return topVal()
	}
	if _, isMap := t.Underlying().(*types.Map); isMap {
		// Reading a nil map is legal; no deref site.
		ip.eval(st, ix.X, false)
		return topForType(ip.info.TypeOf(ix))
	}
	if id, ok := unparen(ix.X).(*ast.Ident); ok {
		bv := ip.evalIdent(st, id)
		ip.noteSliceIndex(ix, id, bv, idxV)
		return topForType(ip.info.TypeOf(ix))
	}
	ip.eval(st, ix.X, false)
	return topForType(ip.info.TypeOf(ix))
}

// evalComposite abstracts a composite literal (non-nil; slice lits know
// their length), evaluating every element exactly once, and records
// Range-shaped literal sites from the collected element values.
func (ip *interp) evalComposite(st valState, lit *ast.CompositeLit) absVal {
	t := ip.info.TypeOf(lit)
	isMapLit := false
	if t != nil {
		_, isMapLit = t.Underlying().(*types.Map)
	}
	var (
		n       int64
		keyed   bool
		keyVals map[string]absVal
		keyStrs map[string]string
		posVals []absVal
	)
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			keyed = true
			if isMapLit {
				ip.eval(st, kv.Key, false)
			}
			v := ip.eval(st, kv.Value, false)
			if key, ok := kv.Key.(*ast.Ident); ok && !isMapLit {
				if keyVals == nil {
					keyVals = map[string]absVal{}
					keyStrs = map[string]string{}
				}
				keyVals[key.Name] = v
				keyStrs[key.Name] = exprString(kv.Value)
			}
			continue
		}
		n++
		posVals = append(posVals, ip.eval(st, el, false))
	}
	ip.noteRangeLit(lit, keyVals, keyStrs, posVals)
	v := topForType(t)
	v.nl = nilNo
	if t != nil {
		switch t.Underlying().(type) {
		case *types.Slice, *types.Map:
			if !keyed {
				v.lenIv = ConstInterval(n)
			}
		}
	}
	return v
}

// noteRangeLit records a validity-range literal: any module-declared struct
// named "Range" with float64 Lo/Hi fields (structurally matched so fixtures
// need not import the optimizer). Element values arrive pre-evaluated from
// evalComposite; missing fields hold the zero value 0.0.
func (ip *interp) noteRangeLit(lit *ast.CompositeLit, keyVals map[string]absVal, keyStrs map[string]string, posVals []absVal) {
	if ip.sites == nil {
		return
	}
	t := ip.info.TypeOf(lit)
	tn := namedTypeOf(t)
	if tn == nil || tn.Name() != "Range" || tn.Pkg() == nil {
		return
	}
	strct, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	loIdx, hiIdx := -1, -1
	for i := 0; i < strct.NumFields(); i++ {
		f := strct.Field(i)
		if b := basicOf(f.Type()); b == nil || b.Kind() != types.Float64 {
			continue
		}
		switch f.Name() {
		case "Lo":
			loIdx = i
		case "Hi":
			hiIdx = i
		}
	}
	if loIdx < 0 || hiIdx < 0 {
		return
	}
	loV, hiV := zeroValOf(strct.Field(loIdx).Type()), zeroValOf(strct.Field(hiIdx).Type())
	loS, hiS := "0", "0"
	if keyVals != nil {
		if v, ok := keyVals["Lo"]; ok {
			loV, loS = v, keyStrs["Lo"]
		}
		if v, ok := keyVals["Hi"]; ok {
			hiV, hiS = v, keyStrs["Hi"]
		}
	} else if len(posVals) > 0 {
		if loIdx < len(posVals) {
			loV, loS = posVals[loIdx], exprString(lit.Elts[loIdx])
		}
		if hiIdx < len(posVals) {
			hiV, hiS = posVals[hiIdx], exprString(lit.Elts[hiIdx])
		}
	}
	ip.sites.ranges = append(ip.sites.ranges, rangeLitSite{
		pos: lit.Pos(), typeName: tn.Pkg().Name() + "." + tn.Name(),
		loV: loV, hiV: hiV, loS: loS, hiS: hiS,
	})
}

// evalCall abstracts a call: conversions, builtins, then summaries for
// statically known module functions. Returns one absVal per result.
func (ip *interp) evalCall(st valState, call *ast.CallExpr, sink bool) []absVal {
	// Conversion T(x).
	if tv, ok := ip.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		inner := ip.eval(st, call.Args[0], sink)
		return []absVal{ip.convert(inner, tv.Type)}
	}

	// Builtins.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := ip.info.Uses[id].(*types.Builtin); isB {
			return []absVal{ip.evalBuiltin(st, b.Name(), call)}
		}
	}

	// Callee expression: func-value calls are deref sites; method calls run
	// through evalSelector (interface-call sites).
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj := ip.objOf(fun); obj != nil {
			if _, isVar := obj.(*types.Var); isVar {
				ip.noteDeref(fun.Pos(), fun.Name, derefFuncCall, ip.evalIdent(st, fun))
			}
		}
	case *ast.SelectorExpr:
		ip.evalSelector(st, fun)
	default:
		ip.eval(st, fun, false)
	}

	// Arguments: sink context flows into Meter.AddTicks args and known sink
	// parameters.
	w := &walker{pkg: ip.pkg}
	callee := w.staticCallee(call)
	argVals := make([]absVal, len(call.Args))
	for i, a := range call.Args {
		argSink := false
		if ip.isTickSinkCall(call) {
			argSink = true
		} else if callee != nil {
			if sp := ip.va.sinkParams[callee]; i < len(sp) && sp[i] {
				argSink = true
			}
		}
		argVals[i] = ip.eval(st, a, argSink)
	}

	// Result values from the callee's value summary.
	sig, _ := ip.info.TypeOf(call.Fun).(*types.Signature)
	nres := 1
	if sig != nil {
		nres = sig.Results().Len()
	}
	out := make([]absVal, nres)
	for i := range out {
		var rt types.Type
		if sig != nil && i < sig.Results().Len() {
			rt = sig.Results().At(i).Type()
		}
		out[i] = topForType(rt)
		if callee != nil {
			out[i] = ip.va.resultVal(callee, i, rt, call, argVals)
			if i == 0 && isNonNilReturnFunc(callee) {
				out[i].nl = nilNo
			}
		}
	}
	return out
}

// nonNilReturnFuncs are stdlib constructors whose result is never nil.
// Without this, `return nil, errors.New(...)` leaves the error's nilness
// unknown and the return counts toward BOTH the err and ok classifications,
// degrading every caller's ok-path result to maybe-nil.
var nonNilReturnFuncs = map[string]bool{
	"errors.New": true,
	"fmt.Errorf": true,
}

// isNonNilReturnFunc reports a callee from nonNilReturnFuncs.
func isNonNilReturnFunc(callee *types.Func) bool {
	if callee.Pkg() == nil {
		return false
	}
	return nonNilReturnFuncs[callee.Pkg().Path()+"."+callee.Name()]
}

// isTickSinkCall reports a (*executor.Meter).AddTicks call — the root tick
// sink the overflow rule protects (shared with the syntactic sink pass in
// summaryval.go).
func (ip *interp) isTickSinkCall(call *ast.CallExpr) bool {
	return isMeterAddTicks(ip.info, call)
}

// evalBuiltin abstracts the builtins the rules care about.
func (ip *interp) evalBuiltin(st valState, name string, call *ast.CallExpr) absVal {
	switch name {
	case "len":
		if len(call.Args) == 1 {
			arg := call.Args[0]
			av := ip.eval(st, arg, false)
			t := ip.info.TypeOf(arg)
			v := topForType(types.Typ[types.Int])
			if t != nil {
				if arr, ok := t.Underlying().(*types.Array); ok {
					v.iv = ConstInterval(arr.Len())
					return v
				}
			}
			v.iv = av.lenIv.Meet(Interval{0, math.MaxInt64})
			if v.iv.IsEmpty() {
				v.iv = Interval{0, math.MaxInt64}
			}
			return v
		}
	case "cap":
		for _, a := range call.Args {
			ip.eval(st, a, false)
		}
		v := topForType(types.Typ[types.Int])
		v.iv = Interval{0, math.MaxInt64}
		return v
	case "make":
		v := topVal()
		v.nl = nilNo
		v.lenIv = Interval{0, math.MaxInt64}
		if t := ip.info.TypeOf(call); t != nil {
			if _, isSlice := t.Underlying().(*types.Slice); isSlice {
				if len(call.Args) >= 2 {
					n := ip.eval(st, call.Args[1], false)
					v.lenIv = n.iv.Meet(Interval{0, math.MaxInt64})
					if v.lenIv.IsEmpty() {
						v.lenIv = Interval{0, math.MaxInt64}
					}
				}
			} else {
				v.lenIv = Interval{0, math.MaxInt64}
				for i := 1; i < len(call.Args); i++ {
					ip.eval(st, call.Args[i], false)
				}
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				v.lenIv = ConstInterval(0)
				for i := 1; i < len(call.Args); i++ {
					ip.eval(st, call.Args[i], false)
				}
			}
		}
		return v
	case "new":
		v := topVal()
		v.nl = nilNo
		return v
	case "append":
		var base absVal
		for i, a := range call.Args {
			av := ip.eval(st, a, false)
			if i == 0 {
				base = av
			}
		}
		v := topVal()
		added := int64(len(call.Args) - 1)
		if call.Ellipsis.IsValid() {
			v.lenIv = Interval{base.lenIv.Lo, math.MaxInt64}
			v.nl = base.nl
		} else if added > 0 {
			v.nl = nilNo
			v.lenIv = base.lenIv.Add(ConstInterval(added)).Meet(Interval{0, math.MaxInt64})
		} else {
			v = base
		}
		return v
	case "min", "max":
		var out absVal
		for i, a := range call.Args {
			av := ip.eval(st, a, false)
			if i == 0 {
				out = av
				continue
			}
			if name == "min" {
				out.iv = Interval{minI64(out.iv.Lo, av.iv.Lo), minI64(out.iv.Hi, av.iv.Hi)}
			} else {
				out.iv = Interval{maxI64(out.iv.Lo, av.iv.Lo), maxI64(out.iv.Hi, av.iv.Hi)}
			}
		}
		out.flags = 0
		return out
	default:
		for _, a := range call.Args {
			ip.eval(st, a, false)
		}
	}
	return topForType(ip.info.TypeOf(call))
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// convert abstracts a type conversion. Integer conversions keep the value
// when it provably fits the target (otherwise truncation wraps and nothing
// carries over); reference conversions preserve nilness.
func (ip *interp) convert(inner absVal, dst types.Type) absVal {
	if b := basicOf(dst); b != nil {
		if b.Info()&(types.IsInteger|types.IsFloat) != 0 {
			out := topForType(dst)
			r := basicRange(b)
			if b.Info()&types.IsFloat != 0 {
				r = FullInterval()
			}
			if !inner.iv.IsEmpty() && inner.iv.Lo >= r.Lo && inner.iv.Hi <= r.Hi {
				out.iv = inner.iv
				out.flags |= inner.flags & fZeroPath
			}
			return out
		}
		return topForType(dst)
	}
	if isNilable(dst) {
		out := topForType(dst)
		out.nl = inner.nl
		out.lenIv = inner.lenIv
		return out
	}
	return topForType(dst)
}

// --- branch refinement ---------------------------------------------------

// refineEdge narrows st with the knowledge that cond evaluated to takeTrue.
// It returns false when the state contradicts the condition — the edge is
// infeasible and must not propagate.
func (ip *interp) refineEdge(st valState, cond ast.Expr, takeTrue bool) bool {
	cond = unparen(cond)
	switch c := cond.(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return ip.refineEdge(st, c.X, !takeTrue)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if takeTrue { // A && B true: both hold
				return ip.refineEdge(st, c.X, true) && ip.refineEdge(st, c.Y, true)
			}
			return true // !(A && B): disjunction, no refinement
		case token.LOR:
			if !takeTrue { // !(A || B): both false
				return ip.refineEdge(st, c.X, false) && ip.refineEdge(st, c.Y, false)
			}
			return true
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			op := c.Op
			if !takeTrue {
				op = negateCmp(op)
			}
			return ip.refineCmp(st, op, c.X, c.Y)
		}
	case *ast.Ident: // if ok { ... }
		obj := ip.identTarget(c)
		if obj == nil {
			return true
		}
		v, _ := st.get(obj)
		want := ConstInterval(1)
		if !takeTrue {
			want = ConstInterval(0)
		}
		met := v.iv.Meet(want)
		if met.IsEmpty() {
			return false
		}
		v.iv = met
		st.set(obj, v)
		return true
	}
	return true
}

func negateCmp(op token.Token) token.Token {
	switch op {
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	}
	return op
}

// flipCmp mirrors a comparison: x OP y == y FLIP(OP) x.
func flipCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op // EQL/NEQ symmetric
}

// isNilExpr reports the predeclared nil.
func (ip *interp) isNilExpr(e ast.Expr) bool {
	tv, ok := ip.info.Types[unparen(e)]
	return ok && tv.IsNil()
}

// refineCmp applies `x op y` (already normalized for the edge's truth).
func (ip *interp) refineCmp(st valState, op token.Token, x, y ast.Expr) bool {
	// nil comparisons drive nilness and the err-pair protocol.
	if ip.isNilExpr(y) {
		return ip.refineNil(st, op, x)
	}
	if ip.isNilExpr(x) {
		return ip.refineNil(st, op, y)
	}

	// Overflow-guard idiom: after `if a > math.MaxInt64/b` failed, the pair
	// (a, b) multiplies safely. Detect the normalized false-edge ops.
	if op == token.LEQ {
		ip.noteMulGuard(st, x, y)
	}
	if op == token.GEQ {
		ip.noteMulGuard(st, y, x)
	}

	// Numeric/len refinement, both directions.
	ok1 := ip.refineNumeric(st, op, x, y)
	ok2 := ip.refineNumeric(st, flipCmp(op), y, x)
	return ok1 && ok2
}

// noteMulGuard records `a <= math.MaxInt64 / b` on both operands.
func (ip *interp) noteMulGuard(st valState, a, quo ast.Expr) {
	q, ok := unparen(quo).(*ast.BinaryExpr)
	if !ok || q.Op != token.QUO {
		return
	}
	tv, ok := ip.info.Types[unparen(q.X)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return
	}
	if c, exact := constant.Int64Val(tv.Value); !exact || c != math.MaxInt64 {
		return
	}
	ao, bo := ip.identTarget(a), ip.identTarget(q.Y)
	if ao == nil || bo == nil {
		return
	}
	av, _ := st.get(ao)
	bv, _ := st.get(bo)
	av.guard, bv.guard = bo, ao
	st.set(ao, av)
	st.set(bo, bv)
}

// refineNil applies `e op nil`.
func (ip *interp) refineNil(st valState, op token.Token, e ast.Expr) bool {
	obj := ip.identTarget(e)
	if obj == nil {
		return true
	}
	v, _ := st.get(obj)
	var fact nilness
	switch op {
	case token.EQL:
		fact = nilYes
	case token.NEQ:
		fact = nilNo
	default:
		return true
	}
	nl, ok := meetNil(v.nl, fact)
	if !ok {
		return false
	}
	v.nl = nl
	st.set(obj, v)

	// Err-pair protocol: refining the error result informs the siblings.
	if v.flags&fErrObj != 0 && v.pair > 0 && int(v.pair) <= len(ip.pairByID) {
		ip.refineErrSiblings(st, ip.pairByID[v.pair-1], v.pair, fact == nilNo)
	}
	return true
}

// refineErrSiblings taints or clears a call pair's non-error results when
// the paired error is proven non-nil (errPath=true) or nil.
func (ip *interp) refineErrSiblings(st valState, pair *callPair, id int32, errNonNil bool) {
	for obj, v := range st {
		if v.flags&fResultObj == 0 || v.pair != id {
			continue
		}
		idx := int(v.res)
		if errNonNil {
			switch ip.va.nilOnErr(pair.callee, idx) {
			case nilAlwaysW:
				if nl, ok := meetNil(v.nl, nilYes); ok {
					v.nl = nl
				} else {
					v.nl = nilYes // contradictory refinements: keep the taint
				}
				v.flags |= fErrPath
			case nilSometimesW:
				if v.nl != nilNo {
					v.nl = nilMaybe
					v.flags |= fErrPath
				}
			default:
				// nilNeverW/nilUnknownW: the callee never returns nil here
				// (or is unsummarized) — no taint.
			}
		} else {
			switch ip.va.nilOnOK(pair.callee, idx) {
			case nilNeverW:
				if nl, ok := meetNil(v.nl, nilNo); ok {
					v.nl = nl
				}
				v.flags &^= fErrPath
			case nilAlwaysW:
				if nl, ok := meetNil(v.nl, nilYes); ok {
					v.nl = nl
				}
				v.flags &^= fErrPath
			default:
				v.flags &^= fErrPath // success path: error taint is gone
			}
		}
		st.set(obj, v)
	}
}

// refTarget describes a refinable left side: a tracked ident's value
// interval, or the len interval of a tracked slice/map (via len(x)).
type refTarget struct {
	obj   types.Object
	isLen bool
}

func (ip *interp) refTargetOf(e ast.Expr) (refTarget, bool) {
	e = unparen(e)
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if id, ok := unparen(call.Fun).(*ast.Ident); ok {
			if b, isB := ip.info.Uses[id].(*types.Builtin); isB && b.Name() == "len" {
				if obj := ip.identTarget(call.Args[0]); obj != nil {
					switch obj.Type().Underlying().(type) {
					case *types.Slice, *types.Map:
						return refTarget{obj: obj, isLen: true}, true
					}
				}
				return refTarget{}, false
			}
		}
	}
	if obj := ip.identTarget(e); obj != nil {
		return refTarget{obj: obj}, true
	}
	return refTarget{}, false
}

// refineNumeric narrows target's interval with `target op other`.
func (ip *interp) refineNumeric(st valState, op token.Token, target, other ast.Expr) bool {
	rt, ok := ip.refTargetOf(target)
	if !ok {
		return true
	}
	otherV := ip.eval(st, other, false)
	oiv := otherV.iv
	if rt.isLen {
		// len(x) compared against a length-shaped expression: when the other
		// side is itself len(y) use its len interval... the eval above already
		// produced the numeric interval for any expression, including len(y).
	}
	if oiv.IsEmpty() {
		return true
	}

	v, _ := st.get(rt.obj)
	cur := v.iv
	isFloat := !rt.isLen && isFloatType(rt.obj.Type())
	if rt.isLen {
		cur = v.lenIv
		isFloat = false
	}

	var cons Interval
	pointOther := oiv.Lo == oiv.Hi && oiv.BoundedBelow() && oiv.BoundedAbove()
	switch op {
	case token.EQL:
		cons = oiv
	case token.NEQ:
		cons = FullInterval()
		if pointOther {
			if cur.Lo == oiv.Lo && cur.Lo != math.MinInt64 {
				cons.Lo = oiv.Lo + 1
			}
			if cur.Hi == oiv.Lo && cur.Hi != math.MaxInt64 {
				cons.Hi = oiv.Lo - 1
			}
		}
	case token.LSS:
		hi := oiv.Hi
		if hi != math.MaxInt64 && !isFloat {
			hi = satAdd64(hi, -1)
		}
		cons = Interval{math.MinInt64, hi}
	case token.LEQ:
		cons = Interval{math.MinInt64, oiv.Hi}
	case token.GTR:
		lo := oiv.Lo
		if lo != math.MinInt64 && !isFloat {
			lo = satAdd64(lo, 1)
		}
		cons = Interval{lo, math.MaxInt64}
	case token.GEQ:
		cons = Interval{oiv.Lo, math.MaxInt64}
	default:
		return true
	}

	met := cur.Meet(cons)
	if met.IsEmpty() && !isFloat {
		return false // infeasible edge
	}
	if met.IsEmpty() {
		met = cur // float envelopes are approximate; never prune on them
	}

	// Zero-path bookkeeping: a refinement that excludes zero clears the
	// evidence; `== 0` asserts it. Floats are dense, so x > 0 excludes zero
	// even though the integer envelope [0, ∞) still contains it.
	zeroOther := pointOther && oiv.Lo == 0
	switch {
	case op == token.EQL && zeroOther:
		v.flags |= fZeroPath
	case !met.Contains(0),
		zeroOther && op == token.NEQ,
		isFloat && zeroOther && (op == token.GTR || op == token.LSS):
		v.flags &^= fZeroPath
	}

	if rt.isLen {
		v.lenIv = met.Meet(Interval{0, math.MaxInt64})
		if v.lenIv.IsEmpty() {
			return false
		}
		// A proven non-empty length implies a non-nil slice/map.
		if v.lenIv.Lo > 0 {
			nl, ok := meetNil(v.nl, nilNo)
			if !ok {
				return false
			}
			v.nl = nl
		}
	} else {
		v.iv = met
	}
	st.set(rt.obj, v)
	return true
}

// --- per-function analysis ----------------------------------------------

// funcValues is one function's solved value analysis.
type funcValues struct {
	ins       []valState
	converged bool
}

// solve runs the branch-sensitive solver over the function's CFG.
func (ip *interp) solve() *funcValues {
	cfg := ip.va.g.FuncCFG(ip.fn)
	if cfg == nil {
		return &funcValues{converged: true}
	}
	ins, converged := solveForwardVals(cfg, ip.entryState(),
		func(b *CFGBlock, in valState) valState {
			ip.dead = false
			for _, n := range b.Nodes {
				ip.step(in, n)
				if ip.dead {
					return nil // no-return call: out-edges unreachable
				}
			}
			return in
		},
		func(b *CFGBlock, kind edgeKind, out valState) (valState, bool) {
			ok := ip.refineEdge(out, b.Branch, kind == edgeTrue)
			return out, ok
		},
	)
	return &funcValues{ins: ins, converged: converged}
}

// replay walks every reachable block from its solved in-state with the
// current hooks (sites/rets) active. Unreachable blocks are skipped: code
// the analysis proved dead cannot produce real findings.
func (ip *interp) replay(fv *funcValues) {
	cfg := ip.va.g.FuncCFG(ip.fn)
	if cfg == nil {
		return
	}
	for _, b := range cfg.Blocks {
		if b.Index >= len(fv.ins) {
			break
		}
		in := fv.ins[b.Index]
		if in == nil {
			continue
		}
		st := in.clone()
		ip.dead = false
		for _, n := range b.Nodes {
			ip.step(st, n)
			if ip.dead {
				break // nothing after a no-return call executes
			}
		}
	}
}
