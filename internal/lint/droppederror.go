package lint

import (
	"go/ast"
	"go/types"
)

// droppedErrorNames are the method/function names whose error results the
// analyzer refuses to see silently discarded. They are the shapes that
// report deferred failure — a Close that loses a flush error, a Run whose
// outcome vanishes — exactly the class that turned up live in the POP
// runner and executor.
var droppedErrorNames = map[string]bool{
	"Close":    true,
	"Run":      true,
	"Flush":    true,
	"Sync":     true,
	"Stop":     true,
	"Shutdown": true,
	"Wait":     true,
}

// DroppedErrorAnalyzer flags statements that call a Close/Run/Flush-shaped
// function returning an error and drop the result on the floor: bare
// expression statements, defers, and go statements. An explicit `_ = …`
// assignment is accepted — the discard is then visible in review — as is a
// //poplint:allow droppederror annotation.
var DroppedErrorAnalyzer = &Analyzer{
	Name: "droppederror",
	Doc:  "flag discarded error results from Close/Run/Flush-shaped calls",
	Run:  runDroppedError,
}

func runDroppedError(prog *Program, report ReportFunc) {
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				var call *ast.CallExpr
				var how string
				switch s := n.(type) {
				case *ast.ExprStmt:
					call, _ = s.X.(*ast.CallExpr)
					how = "discarded"
				case *ast.DeferStmt:
					call = s.Call
					how = "discarded by defer"
				case *ast.GoStmt:
					call = s.Call
					how = "discarded by go"
				default:
					return true
				}
				if call == nil {
					return true
				}
				name, ok := calleeName(call)
				if !ok || !droppedErrorNames[name] {
					return true
				}
				sig, ok := pkg.Info.TypeOf(call.Fun).(*types.Signature)
				if !ok {
					return true // conversion or builtin
				}
				if !returnsError(sig) {
					return true
				}
				report(call.Pos(), "error result of %s %s; handle it, assign to _ explicitly, or annotate //poplint:allow droppederror <reason>", name, how)
				return true
			})
		}
	}
}

func calleeName(call *ast.CallExpr) (string, bool) {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name, true
	case *ast.SelectorExpr:
		return f.Sel.Name, true
	}
	return "", false
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok {
			if named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
				return true
			}
		}
	}
	return false
}
