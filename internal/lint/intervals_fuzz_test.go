package lint

import (
	"math"
	"testing"
)

// fuzzDomain is the concrete small domain the interval oracle enumerates.
// It is wide enough that sums and products of members stay finite, so the
// saturating transfer functions must be EXACT over it, while the raw fuzz
// inputs still exercise the sentinel/saturation paths through clampBound.
const fuzzDomain = 8

// clampBound folds an arbitrary fuzz input into a bound: values near the
// extremes map to the ±∞ sentinels, the rest into [-fuzzDomain, fuzzDomain].
func clampBound(v int64) int64 {
	switch {
	case v == math.MinInt64 || v == math.MinInt64+1:
		return math.MinInt64
	case v == math.MaxInt64 || v == math.MaxInt64-1:
		return math.MaxInt64
	default:
		m := v % (fuzzDomain + 1)
		return m // in [-fuzzDomain, fuzzDomain]
	}
}

// members enumerates iv ∩ [-fuzzDomain, fuzzDomain].
func members(iv Interval) []int64 {
	var out []int64
	for x := int64(-fuzzDomain); x <= fuzzDomain; x++ {
		if iv.Contains(x) {
			out = append(out, x)
		}
	}
	return out
}

func interval(lo, hi int64) Interval {
	return Interval{Lo: lo, Hi: hi}
}

// FuzzIntervals checks the lattice and transfer functions against a
// brute-force oracle over the small domain: join/meet membership must be
// exact, add/mul must contain every pairwise result (and be exactly the
// pairwise hull when both operands lie inside the domain), widening must
// over-approximate the join, and the overflow predicates must agree with
// 128-bit arithmetic on the corners.
func FuzzIntervals(f *testing.F) {
	f.Add(int64(0), int64(0), int64(0), int64(0))
	f.Add(int64(-3), int64(5), int64(2), int64(2))
	f.Add(int64(math.MinInt64), int64(8), int64(0), int64(math.MaxInt64))
	f.Add(int64(4), int64(-4), int64(1), int64(3)) // empty left operand
	f.Add(int64(math.MaxInt64), int64(math.MaxInt64), int64(2), int64(2))

	f.Fuzz(func(t *testing.T, aLo, aHi, bLo, bHi int64) {
		a := interval(clampBound(aLo), clampBound(aHi))
		b := interval(clampBound(bLo), clampBound(bHi))
		am, bm := members(a), members(b)

		join := a.Join(b)
		meet := a.Meet(b)
		for x := int64(-fuzzDomain); x <= fuzzDomain; x++ {
			inA, inB := a.Contains(x), b.Contains(x)
			if (inA || inB) && !join.Contains(x) {
				t.Fatalf("Join(%v, %v) loses member %d", a, b, x)
			}
			if inA && inB && !meet.Contains(x) {
				t.Fatalf("Meet(%v, %v) loses member %d", a, b, x)
			}
			if !inA && !inB && meet.Contains(x) && meet.Lo >= -fuzzDomain && meet.Hi <= fuzzDomain {
				t.Fatalf("Meet(%v, %v) invents member %d", a, b, x)
			}
		}

		// Lattice laws on the small structure. Empty intervals are equal as
		// sets even when their (Lo > Hi) representations differ.
		if j2 := b.Join(a); join != j2 && !(join.IsEmpty() && j2.IsEmpty()) {
			t.Fatalf("Join not commutative: %v vs %v", join, j2)
		}
		if m2 := b.Meet(a); !meet.IsEmpty() || !m2.IsEmpty() {
			if meet != m2 && !(meet.IsEmpty() && m2.IsEmpty()) {
				t.Fatalf("Meet not commutative: %v vs %v", meet, m2)
			}
		}
		if !a.IsEmpty() {
			if aj := a.Join(a); aj != a {
				t.Fatalf("Join not idempotent: %v -> %v", a, aj)
			}
		}

		// Widening over-approximates the join and reaches a fixpoint.
		w := a.Widen(join)
		for x := int64(-fuzzDomain); x <= fuzzDomain; x++ {
			if join.Contains(x) && !w.Contains(x) {
				t.Fatalf("Widen(%v, %v) = %v loses member %d", a, join, w, x)
			}
		}
		if w2 := w.Widen(w.Join(join)); w2 != w {
			t.Fatalf("widening not stable: %v then %v", w, w2)
		}

		// Transfer soundness: every concrete pairwise result is contained.
		sum := a.Add(b)
		prod := a.Mul(b)
		neg := a.Neg()
		diff := a.Sub(b)
		if len(am) > 0 && len(bm) > 0 {
			wantSum := interval(math.MaxInt64, math.MinInt64)
			wantProd := interval(math.MaxInt64, math.MinInt64)
			for _, x := range am {
				for _, y := range bm {
					if !sum.Contains(x + y) {
						t.Fatalf("Add(%v, %v) = %v loses %d+%d", a, b, sum, x, y)
					}
					if !prod.Contains(x * y) {
						t.Fatalf("Mul(%v, %v) = %v loses %d*%d", a, b, prod, x, y)
					}
					if !diff.Contains(x - y) {
						t.Fatalf("Sub(%v, %v) = %v loses %d-%d", a, b, diff, x, y)
					}
					if wantSum.Lo > x+y {
						wantSum.Lo = x + y
					}
					if wantSum.Hi < x+y {
						wantSum.Hi = x + y
					}
					if wantProd.Lo > x*y {
						wantProd.Lo = x * y
					}
					if wantProd.Hi < x*y {
						wantProd.Hi = x * y
					}
				}
			}
			// When both operands lie entirely inside the domain no saturation
			// can occur: the transfer functions must be the exact hull.
			if a.Lo >= -fuzzDomain && a.Hi <= fuzzDomain && b.Lo >= -fuzzDomain && b.Hi <= fuzzDomain {
				if sum != wantSum {
					t.Fatalf("Add(%v, %v) = %v, exact hull is %v", a, b, sum, wantSum)
				}
				if prod != wantProd {
					t.Fatalf("Mul(%v, %v) = %v, exact hull is %v", a, b, prod, wantProd)
				}
				if a.MulCanOverflow(b) {
					t.Fatalf("MulCanOverflow(%v, %v) on domain-bounded operands", a, b)
				}
				if a.AddMustOverflow(b) {
					t.Fatalf("AddMustOverflow(%v, %v) on domain-bounded operands", a, b)
				}
			}
			for _, x := range am {
				if !neg.Contains(-x) {
					t.Fatalf("Neg(%v) = %v loses %d", a, neg, -x)
				}
			}
		}
		if (a.IsEmpty() || b.IsEmpty()) && (!sum.IsEmpty() || !prod.IsEmpty()) {
			t.Fatalf("empty operand did not produce empty Add/Mul: %v, %v", sum, prod)
		}
	})
}

// TestOverflowPredicates pins the corner-exact overflow predicates with the
// sentinel conventions the fuzz target cannot reach through clampBound.
func TestOverflowPredicates(t *testing.T) {
	full := FullInterval()
	if !full.MulCanOverflow(full) {
		t.Error("unknown * unknown must be able to overflow")
	}
	if full.AddMustOverflow(full) {
		t.Error("unknown + unknown must not be a proven overflow")
	}
	small := interval(0, 1<<20)
	if small.MulCanOverflow(interval(0, 1<<20)) {
		t.Error("2^20 * 2^20 cannot overflow int64")
	}
	if !interval(1<<40, 1<<40).MulCanOverflow(interval(1<<40, 1<<40)) {
		t.Error("2^40 * 2^40 overflows int64")
	}
	pin := ConstInterval(math.MaxInt64 - 1)
	if pin.AddMustOverflow(ConstInterval(1)) {
		t.Error("MaxInt64-1 + 1 does not overflow")
	}
	if !pin.AddMustOverflow(ConstInterval(2)) {
		t.Error("MaxInt64-1 + 2 provably overflows")
	}
	if !ConstInterval(math.MinInt64 + 1).AddMustOverflow(ConstInterval(-2)) {
		t.Error("MinInt64+1 + -2 provably overflows")
	}
	if interval(0, math.MaxInt64).AddMustOverflow(ConstInterval(1)) {
		t.Error("sentinel Hi must not count as a proven bound")
	}
}
