package lint

// batchescape machine-checks the batch-ownership contract of DESIGN.md §11:
// an ephemeral *executor.Batch — one returned by NextBatch or the batchEdge
// adapter — is valid only until the next pull on the same producer, because
// its Rows alias a reusable slab. A value derived from such a batch (the
// batch pointer itself, its Rows slice, a schema.Row, or a pointer into a
// row's Datum storage) must therefore never reach a store that outlives the
// pull loop without passing through a deep copy (appendBatchRows, Clone, an
// element copy) or the sync.Pool transfer path (cloneForTransfer/getBatch,
// whose results are owned, not ephemeral).
//
// The rule runs a forward may-analysis over each function's CFG. Taint
// sources are "foreign" batches: results of calls returning *Batch other
// than the owned constructors (NewBatch, getBatch, cloneForTransfer),
// *Batch-typed field reads (n.held, be.buf, msg.batch), and channel
// receives. Taint propagates through assignment, .Rows, indexing, slicing,
// range, append, conversions, and Alloc on a tainted batch; it does NOT
// propagate through other calls (Clone/Concat return fresh storage) or
// through Datum element reads (Datum is a value type — copying an element
// is a deep copy). Escapes:
//
//   - a tainted row/slice assigned to a struct field, package variable,
//     pointer target, or an element of a persistent map/slice;
//   - a tainted slice accumulated across loop iterations (x = append(x, …)
//     inside a for/range — the next pull invalidates earlier iterations);
//   - a tainted value sent on a channel (transfer requires an owned clone);
//   - a tainted value captured by or passed to a go-spawned function;
//   - a tainted value passed to a parameter the callee persists (a small
//     interprocedural "retains" fixpoint over the call graph).
//
// Storing the *batch pointer itself* into a field is exempt: that is the
// held-batch idiom (gather recycling, batchEdge buffers, hash-join input
// cursors) where the field is overwritten before the next pull; the rule
// audits row-level aliases, which are the silent-corruption vector.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BatchEscapeAnalyzer is the batch-ownership escape rule.
var BatchEscapeAnalyzer = &Analyzer{
	Name: "batchescape",
	Doc:  "rows derived from an ephemeral *executor.Batch must not reach storage that outlives the pull loop without a deep copy",
	Run:  runBatchEscape,
}

var batchEscapeScope = []string{executorPath}

const (
	tBatch uint8 = 1 << iota // a foreign (ephemeral) *executor.Batch
	tRows                    // a []schema.Row aliasing a foreign batch
	tRow                     // a schema.Row (or pointer into one) aliasing a foreign batch
)

const schemaPath = "repro/internal/schema"

func runBatchEscape(prog *Program, report ReportFunc) {
	g := programGraph(prog)
	retains := computeBatchRetains(g)
	for _, fn := range g.sortedFuncs() {
		if fn.Body == nil || fn.Pkg.Info == nil || !inScope(fn.Pkg.Path, batchEscapeScope) {
			continue
		}
		s := &escapeScan{info: fn.Pkg.Info, retains: retains, reported: map[token.Pos]bool{}}
		cfg := g.FuncCFG(fn)
		ins := solveForwardMay(cfg, varFacts{}, func(b *CFGBlock, in varFacts) varFacts {
			s.block, s.report = b, nil
			for _, n := range b.Nodes {
				s.transferNode(n, in)
			}
			return in
		})
		// Replay each block from its solved in-state with reporting on.
		s.report = report
		for _, b := range cfg.Blocks {
			s.block = b
			facts := ins[b.Index].clone()
			for _, n := range b.Nodes {
				s.transferNode(n, facts)
			}
		}
	}
}

// escapeScan is the per-function analysis state shared by the solver pass
// (report == nil) and the reporting replay.
type escapeScan struct {
	info     *types.Info
	retains  map[*types.Var]bool
	block    *CFGBlock
	report   ReportFunc // nil during the fixpoint pass
	reported map[token.Pos]bool
}

func (s *escapeScan) reportOnce(pos token.Pos, format string, args ...any) {
	if s.report == nil || s.reported[pos] {
		return
	}
	s.reported[pos] = true
	s.report(pos, format, args...)
}

// transferNode applies one CFG node to facts, reporting escapes when the
// scan is in replay mode.
func (s *escapeScan) transferNode(n ast.Node, facts varFacts) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
			// Multi-value: b, err := pull(); v, ok := <-ch. The taint (if
			// any) is the first result's; type masks silence the rest.
			t := s.taintOf(n.Rhs[0], facts)
			s.checkCalls(n.Rhs[0], facts)
			for i, lhs := range n.Lhs {
				ti := uint8(0)
				if i == 0 {
					ti = t
				}
				s.assign(lhs, n.Rhs[0], ti, facts)
			}
			return
		}
		for i, lhs := range n.Lhs {
			var rhs ast.Expr
			var t uint8
			if i < len(n.Rhs) {
				rhs = n.Rhs[i]
				t = s.taintOf(rhs, facts)
				s.checkCalls(rhs, facts)
			}
			s.assign(lhs, rhs, t, facts)
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			multi := len(vs.Values) == 1 && len(vs.Names) > 1
			for i, name := range vs.Names {
				var rhs ast.Expr
				var t uint8
				switch {
				case multi:
					rhs = vs.Values[0]
					if i == 0 {
						t = s.taintOf(rhs, facts)
					}
				case i < len(vs.Values):
					rhs = vs.Values[i]
					t = s.taintOf(rhs, facts)
				}
				if rhs != nil && i == 0 {
					s.checkCalls(rhs, facts)
				}
				s.assign(name, rhs, t, facts)
			}
		}
	case *ast.RangeStmt:
		t := s.taintOf(n.X, facts)
		s.checkCalls(n.X, facts)
		if n.Value != nil {
			vt := uint8(0)
			if t&tRows != 0 {
				vt = tRow // ranging tainted rows binds aliasing row headers
			}
			s.assign(n.Value, n.X, vt, facts)
		}
	case *ast.SendStmt:
		if t := s.taintOf(n.Value, facts); t != 0 {
			s.reportOnce(n.Arrow, "channel send transfers %s aliasing an ephemeral batch; clone for transfer first (cloneForTransfer / appendBatchRows / Row.Clone)", taintNoun(t))
		}
		s.checkCalls(n.Value, facts)
	case *ast.GoStmt:
		s.checkGo(n, facts)
	case *ast.DeferStmt:
		s.checkCalls(n.Call, facts)
	case *ast.ExprStmt:
		s.checkCalls(n.X, facts)
	case *ast.ReturnStmt:
		// Returning tainted values is the pull contract itself (NextBatch
		// hands its caller an ephemeral batch); only nested calls matter.
		for _, r := range n.Results {
			s.checkCalls(r, facts)
		}
	case *ast.IfStmt, *ast.IncDecStmt, *ast.LabeledStmt, *ast.BranchStmt:
	case ast.Expr:
		// Branch-controlling expressions (conditions, switch tags).
		s.checkCalls(n, facts)
	}
}

// assign updates lhs's fact (strong update for plain locals) and reports
// persistent stores of tainted values.
func (s *escapeScan) assign(lhs, rhs ast.Expr, t uint8, facts varFacts) {
	s.checkStore(lhs, rhs, t, facts)
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := s.objOf(id)
	if obj == nil || isPackageLevel(obj) {
		return
	}
	t &= taintMaskForType(obj.Type())
	if t == 0 {
		delete(facts, obj)
	} else {
		facts[obj] = t
	}
}

// checkStore reports tainted values reaching stores that outlive the pull
// loop, plus cross-iteration accumulation inside loops.
func (s *escapeScan) checkStore(lhs, rhs ast.Expr, t uint8, facts varFacts) {
	if s.report == nil {
		return
	}
	// x = append(x, tainted…) inside a loop: the accumulated rows from
	// earlier iterations are invalidated by the next pull.
	if call, ok := unparen(rhs).(*ast.CallExpr); ok && s.block.Loop && s.isAppend(call) && len(call.Args) > 1 {
		tainted := uint8(0)
		for _, a := range call.Args[1:] {
			tainted |= s.taintOf(a, facts) & (tRow | tRows)
		}
		if tainted != 0 && types.ExprString(unparen(lhs)) == types.ExprString(unparen(call.Args[0])) {
			s.reportOnce(lhs.Pos(), "%s accumulates rows aliasing an ephemeral batch across loop iterations; the next pull invalidates them — use appendBatchRows or copy the rows", types.ExprString(unparen(lhs)))
			return
		}
	}
	if t == 0 {
		return
	}
	rowBits := t & (tRow | tRows)
	switch l := unparen(lhs).(type) {
	case *ast.Ident:
		if obj := s.objOf(l); obj != nil && isPackageLevel(obj) {
			s.reportOnce(l.Pos(), "package variable %s retains %s aliasing an ephemeral batch; deep-copy before storing", l.Name, taintNoun(t))
		}
	case *ast.SelectorExpr:
		if pkgNameOf(s.info, l.X) != nil {
			s.reportOnce(l.Pos(), "package variable %s retains %s aliasing an ephemeral batch; deep-copy before storing", l.Sel.Name, taintNoun(t))
			return
		}
		if rowBits == 0 {
			return // storing the *Batch pointer itself is the held-batch idiom
		}
		if isBatchPtrType(s.typeOf(l.X)) {
			return // writes into a batch's own storage stay inside the ownership unit
		}
		if sel, ok := s.info.Selections[l]; ok && sel.Obj() != nil {
			s.reportOnce(l.Pos(), "struct field %s retains %s aliasing an ephemeral batch beyond the pull loop; deep-copy first (appendBatchRows / Row.Clone)", l.Sel.Name, taintNoun(rowBits))
		}
	case *ast.StarExpr:
		if rowBits != 0 {
			s.reportOnce(l.Pos(), "pointer target retains %s aliasing an ephemeral batch; deep-copy first", taintNoun(rowBits))
		}
	case *ast.IndexExpr:
		if rowBits != 0 && s.persistentBase(l.X) {
			s.reportOnce(l.Pos(), "element store retains %s aliasing an ephemeral batch; deep-copy first", taintNoun(rowBits))
		}
	}
}

// checkGo reports tainted values crossing into a spawned goroutine, whose
// lifetime is not bounded by the current pull iteration.
func (s *escapeScan) checkGo(g *ast.GoStmt, facts varFacts) {
	if s.report == nil {
		return
	}
	for _, a := range g.Call.Args {
		if t := s.taintOf(a, facts); t != 0 {
			s.reportOnce(a.Pos(), "goroutine receives %s aliasing an ephemeral batch; it may outlive the pull iteration — deep-copy first", taintNoun(t))
		}
	}
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := s.info.Uses[id]
			if obj == nil {
				return true
			}
			if t := facts[obj]; t != 0 {
				s.reportOnce(id.Pos(), "goroutine captures %s (%s) aliasing an ephemeral batch; it may outlive the pull iteration — deep-copy first", id.Name, taintNoun(t))
			}
			return true
		})
	}
	s.checkCalls(g.Call, facts)
}

// checkCalls walks e for calls passing tainted arguments to parameters the
// callee persists (the interprocedural composition with the call graph).
func (s *escapeScan) checkCalls(e ast.Expr, facts varFacts) {
	if s.report == nil || e == nil {
		return
	}
	inspectNoLit(e, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		callee := s.staticCalleeFunc(call)
		if callee == nil {
			return
		}
		sig, _ := callee.Type().(*types.Signature)
		if sig == nil {
			return
		}
		params := sig.Params()
		for i, a := range call.Args {
			pi := i
			if pi >= params.Len() {
				if !sig.Variadic() || params.Len() == 0 {
					break
				}
				pi = params.Len() - 1
			}
			if !s.retains[params.At(pi)] {
				continue
			}
			if t := s.taintOf(a, facts); t&(tRow|tRows|tBatch) != 0 {
				s.reportOnce(a.Pos(), "%s persists its %q parameter, but this argument is %s aliasing an ephemeral batch; deep-copy first", callee.Name(), params.At(pi).Name(), taintNoun(t))
			}
		}
	})
}

// taintOf computes the taint bits of an expression under facts.
func (s *escapeScan) taintOf(e ast.Expr, facts varFacts) uint8 {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := s.objOf(e); obj != nil {
			return facts[obj]
		}
	case *ast.ParenExpr:
		return s.taintOf(e.X, facts)
	case *ast.SelectorExpr:
		if pkgNameOf(s.info, e.X) != nil {
			return 0
		}
		t := s.typeOf(e)
		if _, isField := s.info.Selections[e]; isField && isBatchPtrType(t) {
			// Reading a *Batch out of any field yields a foreign batch: the
			// holder may recycle or overwrite it on the next pull.
			return tBatch
		}
		if bt := s.taintOf(e.X, facts); bt&tBatch != 0 {
			switch {
			case isRowSliceType(t):
				return tRows
			case isRowType(t):
				return tRow
			}
		}
	case *ast.IndexExpr:
		if s.taintOf(e.X, facts)&tRows != 0 {
			return tRow
		}
		// Indexing a Row yields a Datum value — a deep copy.
	case *ast.SliceExpr:
		return s.taintOf(e.X, facts) // reslicing preserves aliasing
	case *ast.StarExpr:
		return s.taintOf(e.X, facts)
	case *ast.TypeAssertExpr:
		return s.taintOf(e.X, facts)
	case *ast.UnaryExpr:
		switch e.Op {
		case token.AND:
			// &rows[i] / &row[j]: a pointer into slab-backed storage.
			if ix, ok := unparen(e.X).(*ast.IndexExpr); ok {
				if s.taintOf(ix.X, facts)&(tRow|tRows) != 0 {
					return tRow
				}
			}
			return s.taintOf(e.X, facts) &^ tBatch
		case token.ARROW:
			// Channel receives yield foreign values by construction.
			return taintMaskForType(s.typeOf(e))
		}
	case *ast.CompositeLit:
		var t uint8
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			t |= s.taintOf(el, facts)
		}
		return t
	case *ast.CallExpr:
		return s.taintOfCall(e, facts)
	}
	return 0
}

func (s *escapeScan) taintOfCall(call *ast.CallExpr, facts varFacts) uint8 {
	if s.isAppend(call) {
		var t uint8
		for _, a := range call.Args {
			t |= s.taintOf(a, facts) & (tRow | tRows)
		}
		if t != 0 {
			return tRows
		}
		return 0
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := s.info.Uses[id].(*types.Builtin); isBuiltin {
			return 0 // len/cap/copy/make/new — copy is element-wise, a deep copy
		}
	}
	// Conversions preserve aliasing for slice-shaped types.
	if tv, ok := s.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return s.taintOf(call.Args[0], facts) & taintMaskForType(s.typeOf(call))
	}
	if callee := s.staticCalleeFunc(call); callee != nil && isOwnedBatchSource(callee) {
		return 0
	}
	// Alloc on a tainted batch carves a row out of its slab.
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if isBatchPtrType(s.typeOf(sel.X)) && isRowType(s.typeOf(call)) {
			if s.taintOf(sel.X, facts)&tBatch != 0 {
				return tRow
			}
			return 0
		}
	}
	// Any other call returning *Batch produces a foreign batch (NextBatch,
	// batchEdge.pull, interface dispatch).
	if isBatchPtrType(s.resultType0(call)) {
		return tBatch
	}
	return 0
}

func (s *escapeScan) isAppend(call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := s.info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func (s *escapeScan) objOf(id *ast.Ident) types.Object {
	if obj := s.info.Defs[id]; obj != nil {
		return obj
	}
	return s.info.Uses[id]
}

func (s *escapeScan) typeOf(e ast.Expr) types.Type {
	if tv, ok := s.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// resultType0 is the type of a call's first (or only) result.
func (s *escapeScan) resultType0(call *ast.CallExpr) types.Type {
	t := s.typeOf(call)
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return nil
		}
		return tup.At(0).Type()
	}
	return t
}

// staticCalleeFunc resolves a call to its declared function or method, or
// nil for builtins, literals, and function values.
func (s *escapeScan) staticCalleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := s.info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := s.info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// persistentBase reports whether an index expression's base outlives the
// function frame: a field, package variable, or pointer dereference.
func (s *escapeScan) persistentBase(e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		obj := s.objOf(e)
		return obj != nil && isPackageLevel(obj)
	case *ast.SelectorExpr:
		if pkgNameOf(s.info, e.X) != nil {
			return true
		}
		_, isField := s.info.Selections[e]
		return isField
	case *ast.StarExpr:
		return true
	case *ast.IndexExpr:
		return s.persistentBase(e.X)
	}
	return false
}

// --- type and callee classification --------------------------------------

func namedTypeOf(t types.Type) *types.TypeName {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt.Obj()
		default:
			return nil
		}
	}
}

func isNamedAs(t types.Type, pkgPath, name string) bool {
	tn := namedTypeOf(t)
	return tn != nil && tn.Name() == name && tn.Pkg() != nil && tn.Pkg().Path() == pkgPath
}

func isBatchPtrType(t types.Type) bool { return isNamedAs(t, executorPath, "Batch") }
func isRowType(t types.Type) bool      { return isNamedAs(t, schemaPath, "Row") }

func isRowSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	return ok && isRowType(sl.Elem())
}

func isDatumPtrType(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	return ok && isNamedAs(p.Elem(), "repro/internal/types", "Datum")
}

// taintMaskForType is the taint a value of this static type can carry.
func taintMaskForType(t types.Type) uint8 {
	switch {
	case t == nil:
		return 0
	case isBatchPtrType(t):
		return tBatch
	case isRowType(t), isDatumPtrType(t):
		return tRow
	case isRowSliceType(t):
		return tRows
	}
	if p, ok := t.(*types.Pointer); ok {
		if isRowType(p.Elem()) || isRowSliceType(p.Elem()) {
			return tRow | tRows
		}
	}
	if ch, ok := t.Underlying().(*types.Chan); ok {
		return taintMaskForType(ch.Elem()) // recv taint of the element
	}
	return 0
}

// isOwnedBatchSource reports whether f constructs an owned (non-foreign)
// batch: fresh allocation or the pool transfer path.
func isOwnedBatchSource(f *types.Func) bool {
	if f.Pkg() == nil || f.Pkg().Path() != executorPath {
		return false
	}
	switch f.Name() {
	case "NewBatch", "getBatch", "cloneForTransfer":
		return true
	}
	return false
}

// isBatchSanitizer reports whether f deep-copies batch rows.
func isBatchSanitizer(f *types.Func) bool {
	return f.Pkg() != nil && f.Pkg().Path() == executorPath && f.Name() == "appendBatchRows"
}

func isPackageLevel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func taintNoun(t uint8) string {
	switch {
	case t&tBatch != 0:
		return "a batch"
	case t&tRows != 0:
		return "rows"
	default:
		return "a row"
	}
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// inspectNoLit walks n in source order without descending into function
// literal bodies (each literal is its own FuncNode with its own analysis)
// or into a range statement's body: the CFG carries the whole RangeStmt in
// its loop-head block while the body's statements live in successor blocks,
// so descending would re-visit body sites out of their flow context —
// select sends would lose their arm, field sites would vote twice.
func inspectNoLit(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case nil:
			return false
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			f(n)
			if n.Key != nil {
				inspectNoLit(n.Key, f)
			}
			if n.Value != nil {
				inspectNoLit(n.Value, f)
			}
			inspectNoLit(n.X, f)
			return false
		}
		f(n)
		return true
	})
}

// computeBatchRetains finds parameters that persist their argument: the
// parameter (by identifier use) reaches a persistent store, a channel send,
// or a go-captured closure inside the callee, or is forwarded to another
// retaining parameter — a worklist fixpoint over the call graph.
func computeBatchRetains(g *CallGraph) map[*types.Var]bool {
	retains := map[*types.Var]bool{}
	type fwd struct{ from, to *types.Var }
	var forwards []fwd

	for _, fn := range g.sortedFuncs() {
		if fn.Body == nil || fn.Pkg.Info == nil {
			continue
		}
		info := fn.Pkg.Info
		params := paramVars(fn)
		if len(params) == 0 {
			continue
		}
		s := &escapeScan{info: info}
		usesParam := func(e ast.Expr) *types.Var {
			var found *types.Var
			inspectNoLit(e, func(n ast.Node) {
				id, ok := n.(*ast.Ident)
				if !ok || found != nil {
					return
				}
				if v, ok := info.Uses[id].(*types.Var); ok && params[v] {
					found = v
				}
			})
			return found
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					if !s.persistentLHS(lhs) {
						continue
					}
					if p := usesParam(n.Rhs[i]); p != nil {
						retains[p] = true
					}
				}
			case *ast.SendStmt:
				if p := usesParam(n.Value); p != nil {
					retains[p] = true
				}
			case *ast.GoStmt:
				if p := usesParam(n.Call); p != nil {
					retains[p] = true
				}
			case *ast.CallExpr:
				callee := s.staticCalleeFunc(n)
				if callee == nil {
					return true
				}
				sig, _ := callee.Type().(*types.Signature)
				if sig == nil {
					return true
				}
				for i, a := range n.Args {
					pi := i
					if pi >= sig.Params().Len() {
						if !sig.Variadic() || sig.Params().Len() == 0 {
							break
						}
						pi = sig.Params().Len() - 1
					}
					if id, ok := unparen(a).(*ast.Ident); ok {
						if v, ok := info.Uses[id].(*types.Var); ok && params[v] {
							forwards = append(forwards, fwd{from: v, to: sig.Params().At(pi)})
						}
					}
				}
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for _, f := range forwards {
			if retains[f.to] && !retains[f.from] {
				retains[f.from] = true
				changed = true
			}
		}
	}
	return retains
}

// persistentLHS reports whether an assignment target outlives the call
// frame, with the *Batch-base exemption shared with checkStore.
func (s *escapeScan) persistentLHS(lhs ast.Expr) bool {
	switch l := unparen(lhs).(type) {
	case *ast.Ident:
		obj := s.objOf(l)
		return obj != nil && isPackageLevel(obj)
	case *ast.SelectorExpr:
		if pkgNameOf(s.info, l.X) != nil {
			return true
		}
		if isBatchPtrType(s.typeOf(l.X)) {
			return false // stores into a batch stay inside the ownership unit
		}
		_, isField := s.info.Selections[l]
		return isField
	case *ast.StarExpr:
		// Writes through pointer parameters (e.g. *all = appendBatchRows(…))
		// hand the value to the caller, whose ownership the call-site check
		// audits; not a retain by the callee itself.
		return false
	case *ast.IndexExpr:
		return s.persistentBase(l.X)
	}
	return false
}

// paramVars collects fn's parameter objects whose types can carry taint.
func paramVars(fn *FuncNode) map[*types.Var]bool {
	var sig *types.Signature
	if fn.Obj != nil {
		sig, _ = fn.Obj.Type().(*types.Signature)
	} else if fn.Lit != nil && fn.Pkg.Info != nil {
		if tv, ok := fn.Pkg.Info.Types[fn.Lit]; ok {
			sig, _ = tv.Type.(*types.Signature)
		}
	}
	if sig == nil {
		return nil
	}
	out := map[*types.Var]bool{}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if taintMaskForType(p.Type()) != 0 {
			out[p] = true
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
