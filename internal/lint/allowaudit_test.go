package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestEveryAllowIsLoadBearing audits the module's //poplint:allow
// annotations: each one must suppress at least one finding. An allow that
// suppresses nothing is stale — the code it excused was fixed or removed,
// or interprocedural precision stopped flagging the site — and stale allows
// are holes the gate silently grows through, so they fail here instead.
func TestEveryAllowIsLoadBearing(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	ld := loader(t)
	prog, err := ld.LoadPatterns("./...")
	if err != nil {
		t.Fatal(err)
	}
	if errs := ld.Errors(); len(errs) > 0 {
		t.Fatalf("load errors: %v", errs)
	}
	_, suppressed := lint.Run(prog, lint.Analyzers(), lint.Options{})

	type allow struct {
		file  string
		line  int // annotation's own line; it covers this line or the next
		rules string
	}
	var allows []allow
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//poplint:allow")
					if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						continue // malformed; the allow rule reports it
					}
					pos := prog.Fset.Position(c.Pos())
					allows = append(allows, allow{pos.Filename, pos.Line, fields[0]})
				}
			}
		}
	}
	if len(allows) == 0 {
		t.Fatal("module has no //poplint:allow annotations; the audit loaded the wrong tree")
	}
	for _, a := range allows {
		found := false
		for _, f := range suppressed {
			if f.Pos.Filename != a.file {
				continue
			}
			if (f.Pos.Line == a.line || f.Pos.Line == a.line+1) &&
				strings.Contains(a.rules, f.Rule) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: //poplint:allow %s suppresses no finding; remove the stale annotation", a.file, a.line, a.rules)
		}
	}
}
