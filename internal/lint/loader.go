// Package lint is a self-hosted static-analysis framework for the POP
// reproduction, built on nothing but the standard library's go/parser,
// go/ast, and go/types. It loads and type-checks packages and runs a suite
// of repo-specific analyzers that machine-check the invariants the paper's
// claims rest on: deterministic simulated cost units, map-iteration-free
// plan choice, propagated close errors, and atomic-access consistency in
// the parallel runtime.
//
// Findings print as "file:line: [rule] message". A site can opt out with an
// annotation comment
//
//	//poplint:allow <rule>[,<rule>...] <reason>
//
// placed either at the end of the offending line or on its own line
// directly above it. The reason is mandatory; a malformed annotation is
// itself a finding. Suppression is exact: the annotation covers the single
// annotated source line and nothing else.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path    string // import path ("repro/internal/optimizer")
	Dir     string
	Files   []*ast.File
	Sources map[string][]byte // filename -> source bytes, for annotation parsing
	Types   *types.Package
	Info    *types.Info
}

// Program is the full set of packages a lint run analyzes. Analyzers run
// once per program so whole-program rules (atomic consistency) see every
// access site.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package // sorted by import path
}

// Loader parses and type-checks packages from a Go module using only the
// standard library: module-internal imports are resolved by recursively
// type-checking their directories, everything else (stdlib) is type-checked
// from source under GOROOT via go/importer's "source" compiler. No GOPATH,
// no export data, no x/tools.
type Loader struct {
	ModulePath string
	RootDir    string

	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*Package // import path -> loaded package
	errs []error             // type/parse errors accumulated across loads
}

// NewLoader creates a loader rooted at the module containing dir (dir or
// the nearest parent holding a go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		ModulePath: modPath,
		RootDir:    root,
		fset:       fset,
		pkgs:       map[string]*Package{},
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Errors returns parse/type errors accumulated by every load so far.
func (l *Loader) Errors() []error { return l.errs }

// LoadPatterns loads the packages matched by go-style patterns relative to
// the module root: "./..." walks the whole module, "./internal/..." a
// subtree, and a plain relative directory loads that one package. Returns a
// Program with packages sorted by import path.
func (l *Loader) LoadPatterns(patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var pkgs []*Package
	add := func(p *Package) {
		if p != nil && !seen[p.Path] {
			seen[p.Path] = true
			pkgs = append(pkgs, p)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base := filepath.Join(l.RootDir, filepath.FromSlash(strings.TrimPrefix(rest, "./")))
			dirs, err := goDirs(base)
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				p, err := l.loadDir(d, l.pathForDir(d))
				if err != nil {
					return nil, err
				}
				add(p)
			}
			continue
		}
		d := filepath.Join(l.RootDir, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		p, err := l.loadDir(d, l.pathForDir(d))
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("lint: no non-test Go files in %s", pat)
		}
		add(p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return &Program{Fset: l.fset, Packages: pkgs}, nil
}

// LoadDirAs loads the single directory dir as if it had the given import
// path. Tests use this to place fixture packages under testdata inside the
// path scopes the analyzers enforce.
func (l *Loader) LoadDirAs(dir, path string) (*Program, error) {
	p, err := l.loadDir(dir, path)
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	return &Program{Fset: l.fset, Packages: []*Package{p}}, nil
}

func (l *Loader) pathForDir(dir string) string {
	rel, err := filepath.Rel(l.RootDir, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// goDirs returns every directory under root that contains at least one
// non-test .go file, skipping testdata, hidden, and VCS directories.
func goDirs(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if isSourceName(e.Name()) {
				out = append(out, path)
				break
			}
		}
		return nil
	})
	return out, err
}

func isSourceName(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// loadDir parses and type-checks the package in dir under the given import
// path, memoized. Returns (nil, nil) if dir holds no non-test Go files.
func (l *Loader) loadDir(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	sources := map[string][]byte{}
	for _, e := range ents {
		if e.IsDir() || !isSourceName(e.Name()) {
			continue
		}
		fn := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(fn)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.fset, fn, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			l.errs = append(l.errs, err)
			continue
		}
		files = append(files, f)
		sources[fn] = src
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { l.errs = append(l.errs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info) // errors land in l.errs
	p := &Package{Path: path, Dir: dir, Files: files, Sources: sources, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// loaderImporter adapts the loader into a types.Importer: module-internal
// paths recurse into loadDir, all else goes to the stdlib source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		dir := filepath.Join(l.RootDir, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath)))
		p, err := l.loadDir(dir, path)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("lint: no Go files for %s", path)
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, l.RootDir, 0)
}
