package pop

import (
	"strings"
	"testing"

	"repro/internal/optimizer"
)

// forceParallelHash configures an optimizer to plan hash joins only, for the
// given worker count.
func forceParallelHash(workers int) func(*optimizer.Optimizer) {
	return func(o *optimizer.Optimizer) {
		o.DisableNLJN = true
		o.DisableMGJN = true
		o.Model.Params.Workers = workers
	}
}

// TestParallelPOPMatchesSerial runs the full POP loop over a parallel plan
// and checks the result multiset is identical to the serial run's.
func TestParallelPOPMatchesSerial(t *testing.T) {
	cat := correlatedFixture(t)
	q := correlatedQuery(t, cat)

	sOpts := DefaultOptions()
	sOpts.Configure = forceParallelHash(1)
	serial, err := NewRunner(cat, sOpts).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}

	pOpts := DefaultOptions()
	pOpts.Configure = forceParallelHash(4)
	par, err := NewRunner(cat, pOpts).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(par.Attempts[0].Explain, "XCHG") {
		t.Fatalf("parallel run's initial plan has no exchange:\n%s", par.Attempts[0].Explain)
	}

	g, w := canon(par.Rows), canon(serial.Rows)
	if len(g) != len(w) {
		t.Fatalf("parallel POP returned %d rows, serial %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("row %d: parallel %s vs serial %s", i, g[i], w[i])
		}
	}

	// One logical CHECK must yield one merged observation even though it is
	// cloned once per partition worker.
	seen := map[*optimizer.CheckMeta]bool{}
	for _, obs := range par.CheckStats {
		if seen[obs.Meta] {
			t.Fatalf("check #%d reported more than once", obs.Meta.ID)
		}
		seen[obs.Meta] = true
	}
}

// TestParallelForcedReoptimization forces a checkpoint inside the parallel
// plan to fail: exactly one violation must reach the controller, trigger
// exactly one re-optimization, and the final result must match a run
// without POP.
func TestParallelForcedReoptimization(t *testing.T) {
	cat := correlatedFixture(t)
	q := correlatedQuery(t, cat)

	opts := DefaultOptions()
	opts.Configure = forceParallelHash(4)
	opts.Policy.FailCheckIDs = map[int]bool{0: true}
	res, err := NewRunner(cat, opts).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reopts != 1 {
		t.Fatalf("forced failure should cause exactly one re-optimization, got %d", res.Reopts)
	}
	if res.Attempts[0].Violation == nil {
		t.Fatal("first attempt should record the violation")
	}

	off := Options{Enabled: false, Configure: forceParallelHash(4)}
	base, err := NewRunner(cat, off).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, w := canon(res.Rows), canon(base.Rows)
	if len(g) != len(w) {
		t.Fatalf("re-optimized parallel run returned %d rows, baseline %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("row %d: got %s, want %s", i, g[i], w[i])
		}
	}
}
