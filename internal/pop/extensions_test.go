package pop

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/optimizer"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/types"
)

// TestLEOSharedFeedback exercises the §7 "Learning for the Future"
// extension: with a shared feedback cache, the second execution of a query
// that needed a re-optimization starts with the corrected cardinalities and
// completes without re-optimizing at all.
func TestLEOSharedFeedback(t *testing.T) {
	cat := correlatedFixture(t)
	q := correlatedQuery(t, cat)
	fb := stats.NewFeedback()
	opts := DefaultOptions()
	opts.SharedFeedback = fb

	first, err := NewRunner(cat, opts).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Reopts != 1 {
		t.Fatalf("first execution should re-optimize once, got %d", first.Reopts)
	}
	if fb.Len() == 0 {
		t.Fatal("shared cache should retain observations after the statement")
	}
	second, err := NewRunner(cat, opts).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if second.Reopts != 0 {
		t.Errorf("second execution should start with the learned cardinalities (reopts=%d)", second.Reopts)
	}
	if strings.Contains(second.Attempts[0].Explain, "NLJN[index]") {
		t.Errorf("learned plan should not repeat the index NLJN mistake:\n%s", second.Attempts[0].Explain)
	}
	if second.Work >= first.Work {
		t.Errorf("learned execution (%v) should be cheaper than the re-optimized one (%v)", second.Work, first.Work)
	}
	if len(second.Rows) != len(first.Rows) {
		t.Error("results differ across executions")
	}
}

// TestForceMVReuseOnFinalAttempt verifies the §7 termination heuristic: on
// the last permitted re-optimization, matching intermediate results are
// reused unconditionally.
func TestForceMVReuseOnFinalAttempt(t *testing.T) {
	cat := correlatedFixture(t)
	q := correlatedQuery(t, cat)
	opts := DefaultOptions()
	opts.MaxReopts = 1 // attempt 1 is the final one: ForceMVReuse applies
	res, err := NewRunner(cat, opts).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reopts != 1 {
		t.Fatalf("expected one re-optimization, got %d", res.Reopts)
	}
	final := res.Attempts[len(res.Attempts)-1]
	if !strings.Contains(final.Explain, "MVSCAN") {
		t.Errorf("final attempt must reuse the materialized intermediate:\n%s", final.Explain)
	}
}

// TestRobustnessBonusPrefersMergePlans verifies the §7 "Checking
// Opportunities" extension: with a robustness handicap on hash and index
// joins, the optimizer shifts to sort-merge plans whose materialization
// points provide low-risk checkpoints.
func TestRobustnessBonusPrefersMergePlans(t *testing.T) {
	cat := correlatedFixture(t)
	q := correlatedQuery(t, cat)

	plain := optimizer.New(cat)
	p1, err := plain.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	robust := optimizer.New(cat)
	robust.RobustnessBonus = 3.0 // strong preference for checkable plans
	p2, err := robust.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	matPoints := func(p *optimizer.Plan) int {
		return p.Count(optimizer.OpSort) + p.Count(optimizer.OpTemp) + p.Count(optimizer.OpMGJN)
	}
	if matPoints(p2) <= matPoints(p1)-1 {
		t.Errorf("robust mode should not reduce checkable structure: plain=%d robust=%d\nplain:\n%s\nrobust:\n%s",
			matPoints(p1), matPoints(p2), optimizer.Explain(p1, q), optimizer.Explain(p2, q))
	}
	if p2.Count(optimizer.OpMGJN) == 0 && p2.Count(optimizer.OpHSJN) > 0 {
		t.Errorf("with a 3x handicap, hash joins should lose to merge joins:\n%s", optimizer.Explain(p2, q))
	}
}

// TestUncertaintyPenaltyDuringReopt verifies the §7 uncertainty extension:
// during re-optimization, unobserved estimates are inflated, steering the
// new plan toward operators that are safe under larger cardinalities.
func TestUncertaintyPenaltyDuringReopt(t *testing.T) {
	cat := correlatedFixture(t)
	q := correlatedQuery(t, cat)

	// Without the penalty the re-optimized plan is chosen at face value.
	base, err := NewRunner(cat, DefaultOptions()).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.UncertaintyPenalty = 2.0
	res, err := NewRunner(cat, opts).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reopts == 0 {
		t.Fatal("scenario should re-optimize")
	}
	// The results must agree and the run must stay in the same cost regime
	// (the penalty may change the plan but must not break anything).
	if len(res.Rows) != len(base.Rows) {
		t.Errorf("row counts differ: %d vs %d", len(res.Rows), len(base.Rows))
	}
	if res.Work > base.Work*3 {
		t.Errorf("uncertainty-penalized run is %.1fx the base run", res.Work/base.Work)
	}
	// The penalized re-optimization must not pick a plan that banks on a
	// small unobserved cardinality: no index NLJN over unobserved edges.
	final := res.Attempts[len(res.Attempts)-1]
	if strings.Contains(final.Explain, "NLJN[index]") {
		t.Logf("note: penalized plan still uses index NLJN:\n%s", final.Explain)
	}
}

// TestECWCPlacementAndFiring covers the fourth flavor end to end: an eager
// check pushed below a SORT materialization point fires *before* the
// materialization completes. ECWC/ECDC are the liberal flavors the paper
// places almost anywhere (§3.4), so the test uses threshold-style check
// ranges rather than the validity-range gate.
func TestECWCPlacementAndFiring(t *testing.T) {
	cat := correlatedFixture(t)
	q := correlatedQuery(t, cat)
	opts := DefaultOptions()
	opts.Policy = Policy{
		ECWC:                 true,
		RequireBoundedRange:  false,
		FixedThresholdFactor: 4, // fire when actual > 4x the estimate
	}
	opts.Configure = func(o *optimizer.Optimizer) {
		// Force sort-merge plans so SORT materialization points exist for
		// ECWC to push below.
		o.DisableHSJN = true
		o.DisableIndexJoin = true
	}
	res, err := NewRunner(cat, opts).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reopts == 0 {
		t.Fatalf("ECWC should have fired:\n%s", res.Attempts[0].Explain)
	}
	v := res.Attempts[0].Violation
	if v.Check.Flavor != optimizer.ECWC {
		t.Fatalf("violating flavor = %s, want ECWC", v.Check.Flavor)
	}
	if v.Exact {
		t.Error("ECWC fires mid-stream, before the materialization completes")
	}
	if v.Actual >= 8000 {
		t.Errorf("ECWC fired only at %v rows; it should react before the full 8000", v.Actual)
	}
	off, err := NewRunner(cat, Options{Enabled: false}).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(off.Rows) {
		t.Errorf("ECWC run rows = %d, baseline = %d", len(res.Rows), len(off.Rows))
	}
}

// TestSuccessiveReoptimizations builds a query with two independent
// correlated estimation errors — one on LINEITEM, one on ORDERS. The runner
// must survive however many oscillations the errors cause (paper §2:
// "alternating optimization and execution steps can occur any number of
// times") and still return the exact result. Note that the second error need
// not trigger a second re-optimization: after the first correction the
// orders-side under-estimate no longer makes the plan suboptimal, and the
// conservative validity ranges rightly leave it alone.
func TestSuccessiveReoptimizations(t *testing.T) {
	cat := correlatedFixture(t)
	b := logical.NewBuilder(cat)
	b.AddTable("lineitem", "l")
	b.AddTable("orders", "o")
	b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("l", "l_order"), R: b.Col("o", "o_id")})
	two := &expr.Const{Val: types.NewInt(2)}
	b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("l", "l_c1"), R: two})
	b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("l", "l_c2"), R: two})
	b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("l", "l_c3"), R: two})
	b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("o", "o_c1"), R: two})
	b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("o", "o_c2"), R: two})
	b.SelectCol("l", "l_qty")
	b.SelectCol("o", "o_cust")
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewRunner(cat, DefaultOptions()).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	off, err := NewRunner(cat, Options{Enabled: false}).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(off.Rows) {
		t.Fatalf("rows differ: POP %d vs baseline %d", len(res.Rows), len(off.Rows))
	}
	t.Logf("reopts=%d", res.Reopts)
	if res.Reopts < 1 {
		t.Fatalf("double-error query should re-optimize at least once:\n%s", res.Attempts[0].Explain)
	}
	// Every attempt but the last must carry a violation, each from a
	// different signature (a different mis-estimated edge).
	sigs := map[string]bool{}
	for _, a := range res.Attempts[:len(res.Attempts)-1] {
		if a.Violation == nil {
			t.Fatal("non-final attempt without violation")
		}
		sigs[a.Violation.Check.Signature] = true
	}
	if len(sigs) != res.Reopts {
		t.Errorf("expected %d distinct violated edges, got %d", res.Reopts, len(sigs))
	}
}

// TestReuseHashBuilds exercises the §4 enhancement on a two-level hash
// plan: the top join builds on (lineitem ⋈ orders), whose cardinality is
// under-estimated 25x; the LC check on that build edge fires after the
// *lower* join's build (lineitem) completed. With ReuseHashBuilds on, that
// completed build is promoted to a temp MV and the re-optimized plan scans
// it instead of re-filtering lineitem.
func TestReuseHashBuilds(t *testing.T) {
	cat := correlatedFixture(t)
	cust, err := cat.CreateTable("cust", schema.New(
		schema.Column{Name: "c_id", Type: types.KindInt},
		schema.Column{Name: "c_name", Type: types.KindString},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		cust.Heap.MustInsert(schema.Row{types.NewInt(int64(i)), types.NewString("c")})
	}
	if err := cat.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	build := func(t *testing.T) *logical.Query {
		b := logical.NewBuilder(cat)
		b.AddTable("lineitem", "l")
		b.AddTable("orders", "o")
		b.AddTable("cust", "c")
		b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("l", "l_order"), R: b.Col("o", "o_id")})
		b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("o", "o_cust"), R: b.Col("c", "c_id")})
		two := &expr.Const{Val: types.NewInt(2)}
		b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("l", "l_c1"), R: two})
		b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("l", "l_c2"), R: two})
		b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("l", "l_c3"), R: two})
		b.SelectCol("l", "l_qty")
		b.SelectCol("c", "c_name")
		q, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	q := build(t)
	mkOpts := func(reuse bool) Options {
		return Options{
			Enabled:         true,
			MaxReopts:       3,
			ReuseHashBuilds: reuse,
			Policy:          Policy{LC: true, RequireBoundedRange: true},
			Configure: func(o *optimizer.Optimizer) {
				o.DisableNLJN = true
				o.DisableMGJN = true
			},
		}
	}
	with, err := NewRunner(cat, mkOpts(true)).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if with.Reopts == 0 {
		t.Fatalf("scenario should re-optimize:\n%s", with.Attempts[0].Explain)
	}
	reused := false
	for _, a := range with.Attempts[1:] {
		if strings.Contains(a.Explain, "MVSCAN") {
			reused = true
		}
	}
	if !reused {
		t.Errorf("hash build should be reused as an MV:\n%s", with.Attempts[len(with.Attempts)-1].Explain)
	}
	without, err := NewRunner(cat, mkOpts(false)).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(with.Rows) != len(without.Rows) {
		t.Errorf("row counts differ: %d vs %d", len(with.Rows), len(without.Rows))
	}
	if with.Work >= without.Work {
		t.Errorf("build reuse (%v) should beat recomputation (%v)", with.Work, without.Work)
	}
}
