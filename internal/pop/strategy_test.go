package pop

import (
	"reflect"
	"regexp"
	"strings"
	"testing"

	"repro/internal/optimizer"
)

// TestStrategyRegistry pins the canonical strategy set: names, lookup, and
// the error for unknown names (the server maps it to a parse error, so it
// must list the valid spellings).
func TestStrategyRegistry(t *testing.T) {
	want := []string{"dp-pop", "greedy-pop", "greedy-only", "reopt-unguarded"}
	sts := Strategies()
	if len(sts) != len(want) {
		t.Fatalf("Strategies() returned %d entries, want %d", len(sts), len(want))
	}
	for i, st := range sts {
		if st.Name() != want[i] {
			t.Errorf("Strategies()[%d] = %q, want %q", i, st.Name(), want[i])
		}
		if st.Describe() == "" {
			t.Errorf("strategy %s has no description", st.Name())
		}
		got, err := StrategyByName(st.Name())
		if err != nil {
			t.Errorf("StrategyByName(%q): %v", st.Name(), err)
		} else if got.Name() != st.Name() {
			t.Errorf("StrategyByName(%q) resolved to %q", st.Name(), got.Name())
		}
	}
	if _, err := StrategyByName("bogus"); err == nil {
		t.Fatal("unknown strategy name should error")
	} else {
		for _, n := range want {
			if !strings.Contains(err.Error(), n) {
				t.Errorf("unknown-name error should list %q: %v", n, err)
			}
		}
	}
}

// TestResolveRewritesOptions: each strategy's runtime rewrite must land in
// the resolved Options, the plan-side hook must chain after any
// user-supplied Configure, and resolving twice must not apply either twice.
func TestResolveRewritesOptions(t *testing.T) {
	t.Run("greedy-only disables POP and orders greedily", func(t *testing.T) {
		opts := DefaultOptions()
		userRan := 0
		opts.Configure = func(o *optimizer.Optimizer) { userRan++ }
		opts.Planner = GreedyOnly
		opts = opts.Resolve()
		opts = opts.Resolve() // idempotent: must not re-wrap Configure
		if opts.Enabled {
			t.Error("greedy-only should disable re-optimization")
		}
		o := optimizer.New(nil)
		opts.Configure(o)
		if o.JoinOrder != optimizer.JoinOrderGreedy {
			t.Error("greedy-only should set the greedy join order")
		}
		if userRan != 1 {
			t.Errorf("user Configure ran %d times, want 1", userRan)
		}
	})

	t.Run("reopt-unguarded degenerates the ranges", func(t *testing.T) {
		opts := DefaultOptions()
		opts.Planner = ReoptUnguarded
		opts = opts.Resolve()
		if !opts.Enabled {
			t.Error("reopt-unguarded should keep re-optimization on")
		}
		if opts.Policy.RequireBoundedRange {
			t.Error("reopt-unguarded should not require bounded ranges")
		}
		if opts.Policy.FixedThresholdFactor != 1 {
			t.Errorf("reopt-unguarded threshold factor = %v, want 1 ([est,est] checks)",
				opts.Policy.FixedThresholdFactor)
		}
	})

	t.Run("dp-pop is the identity", func(t *testing.T) {
		base := DefaultOptions()
		opts := base
		opts.Planner = DPPOP
		opts = opts.Resolve()
		if opts.Enabled != base.Enabled || opts.MaxReopts != base.MaxReopts ||
			!reflect.DeepEqual(opts.Policy, base.Policy) {
			t.Error("dp-pop must not rewrite the runtime options")
		}
	})

	t.Run("nil planner untouched", func(t *testing.T) {
		opts := DefaultOptions()
		if got := opts.Resolve(); !reflect.DeepEqual(got, opts) {
			t.Error("Resolve without a planner must be a no-op")
		}
	})
}

// planShape strips planner metadata that does not affect execution — the
// global statement counter in temp-MV names, CHECK ranges and validity
// bounds — leaving the operator tree and cardinalities that determine
// simulated work.
var planShapeRules = []*regexp.Regexp{
	regexp.MustCompile(`stmt\d+/`),
	regexp.MustCompile(` range=\[[^\]]*\]`),
	regexp.MustCompile(` validity\[\d+\]=\[[^\]]*\]`),
}

func planShape(explain string) string {
	for _, re := range planShapeRules {
		explain = re.ReplaceAllString(explain, "")
	}
	return explain
}

// TestCrossStrategyWorkIdentity is the bit-identity claim behind the
// shootout: strategies are planner policies, not execution semantics, so
// whenever two strategies settle on the same final plan shape, the final
// attempt's simulated work must be bit-identical — and every strategy must
// return the same rows regardless of plan.
func TestCrossStrategyWorkIdentity(t *testing.T) {
	cat := correlatedFixture(t)
	q := correlatedQuery(t, cat)

	type outcome struct {
		name    string
		explain string
		work    float64
	}
	var rowsWant []string
	byPlan := map[string][]outcome{}
	for _, st := range Strategies() {
		opts := DefaultOptions()
		opts.Planner = st
		res, err := NewRunner(cat, opts).Run(q, nil)
		if err != nil {
			t.Fatalf("%s: %v", st.Name(), err)
		}
		rows := canon(res.Rows)
		if rowsWant == nil {
			rowsWant = rows
		} else if !reflect.DeepEqual(rows, rowsWant) {
			t.Fatalf("%s returned different rows than the first strategy", st.Name())
		}
		last := res.Attempts[len(res.Attempts)-1]
		shape := planShape(last.Explain)
		byPlan[shape] = append(byPlan[shape], outcome{
			name:    st.Name(),
			explain: last.Explain,
			work:    res.Work - last.WorkBefore,
		})
	}

	shared := 0
	for plan, outs := range byPlan {
		if len(outs) < 2 {
			continue
		}
		shared++
		for _, o := range outs[1:] {
			if o.work != outs[0].work {
				t.Errorf("same final plan, different final-attempt work: %s=%v %s=%v\nplan:\n%s",
					outs[0].name, outs[0].work, o.name, o.work, plan)
			}
		}
	}
	if shared == 0 {
		var got []string
		for plan, outs := range byPlan {
			names := make([]string, len(outs))
			for i, o := range outs {
				names[i] = o.name
			}
			got = append(got, strings.Join(names, ",")+":\n"+plan)
		}
		t.Fatalf("expected at least two strategies to converge on one final plan; got:\n%s",
			strings.Join(got, "\n"))
	}
}
