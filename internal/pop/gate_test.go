package pop

import (
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/tpch"
	"repro/internal/trace"
	"repro/internal/types"
)

// testGate is a budgeted WorkerGate that tracks outstanding grants, the peak
// occupancy, and acquire/release balance.
type testGate struct {
	mu       sync.Mutex
	budget   int
	out      int
	peak     int
	acquires int
	releases int
	negative bool // a release drove the outstanding count below zero
}

func (g *testGate) AcquireWorkers(want int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.acquires++
	free := g.budget - g.out
	if free < 0 {
		free = 0
	}
	got := want
	if got > free {
		got = free
	}
	g.out += got
	if g.out > g.peak {
		g.peak = g.out
	}
	return got
}

func (g *testGate) ReleaseWorkers(n int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.releases++
	g.out -= n
	if g.out < 0 {
		g.negative = true
	}
}

// snapshot returns (outstanding, peak) under the lock.
func (g *testGate) snapshot() (int, int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.out, g.peak
}

// TestGatedWorkMatchesUngated pins the scheduler's core contract: a worker
// gate changes when and how wide an exchange runs, never what it computes.
// The same forced-reoptimization statement is run ungated (full DOP) and
// under budgets that clamp the exchanges to partial width and all the way to
// the inline zero-goroutine fallback, in both row and batch mode. Simulated
// work must be bit-identical and the result multiset unchanged, and every
// grant must be balanced by a release.
func TestGatedWorkMatchesUngated(t *testing.T) {
	cat := correlatedFixture(t)
	q := correlatedQuery(t, cat)

	run := func(gate *testGate, batch int, tr trace.Recorder) *Result {
		t.Helper()
		opts := DefaultOptions()
		opts.Configure = forceParallelHash(4)
		opts.Policy.FailCheckIDs = map[int]bool{0: true}
		opts.BatchSize = batch
		opts.Trace = tr
		if gate != nil {
			opts.Gate = gate
		}
		res, err := NewRunner(cat, opts).Run(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reopts == 0 {
			t.Fatal("forced checkpoint failure must re-optimize")
		}
		return res
	}

	for _, batch := range []int{0, 64} {
		base := run(nil, batch, nil)
		for _, budget := range []int{0, 1, 2, 100} {
			gate := &testGate{budget: budget}
			col := trace.NewCollector()
			res := run(gate, batch, col)

			if res.Work != base.Work {
				t.Errorf("batch=%d budget=%d: gated work %v != ungated %v", batch, budget, res.Work, base.Work)
			}
			g, w := canon(res.Rows), canon(base.Rows)
			if len(g) != len(w) {
				t.Fatalf("batch=%d budget=%d: gated %d rows, ungated %d", batch, budget, len(g), len(w))
			}
			for i := range g {
				if g[i] != w[i] {
					t.Fatalf("batch=%d budget=%d row %d: %s vs %s", batch, budget, i, g[i], w[i])
				}
			}

			out, peak := gate.snapshot()
			if out != 0 {
				t.Errorf("batch=%d budget=%d: %d workers still outstanding after the run", batch, budget, out)
			}
			if gate.negative {
				t.Errorf("batch=%d budget=%d: release drove occupancy negative", batch, budget)
			}
			if peak > budget {
				t.Errorf("batch=%d budget=%d: peak occupancy %d exceeds budget", batch, budget, peak)
			}
			if gate.acquires == 0 {
				t.Errorf("batch=%d budget=%d: plan never consulted the gate", batch, budget)
			}

			clamps := col.OfKind(trace.DOPClamp)
			if budget < 4 && len(clamps) == 0 {
				t.Errorf("batch=%d budget=%d: no dop_clamp event despite a constraining budget", batch, budget)
			}
			if budget == 0 {
				for _, ev := range clamps {
					if ev.Sched == nil || ev.Sched.Granted != 0 {
						t.Errorf("batch=%d budget=0: clamp event should record a zero grant: %+v", batch, ev.Sched)
					}
				}
			}
		}
	}
}

// TestGateOccupancy32ConcurrentQ10 is the unbounded-goroutine-growth pin: 32
// concurrent parameterized Q10 statements (each planned at DOP 4 and forced
// through a re-optimization) share one budgeted gate, and the pool's peak
// occupancy must never exceed the budget even though the aggregate demand is
// an order of magnitude larger.
func TestGateOccupancy32ConcurrentQ10(t *testing.T) {
	cat := catalog.New()
	if err := tpch.Load(cat, tpch.Config{ScaleFactor: 0.002, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	q, err := tpch.Q10Param(cat)
	if err != nil {
		t.Fatal(err)
	}

	const sessions = 32
	const budget = 6
	gate := &testGate{budget: budget}

	baseOpts := DefaultOptions()
	baseOpts.Configure = forceParallelHash(4)
	base, err := NewRunner(cat, baseOpts).Run(q, []types.Datum{types.NewFloat(50)})
	if err != nil {
		t.Fatal(err)
	}

	want := len(base.Rows)

	var wg sync.WaitGroup
	errs := make([]error, sessions)
	rows := make([]int, sessions)
	reopts := make([]int, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			opts := DefaultOptions()
			opts.Configure = forceParallelHash(4)
			opts.Gate = gate
			res, err := NewRunner(cat, opts).Run(q, []types.Datum{types.NewFloat(50)})
			if err != nil {
				errs[s] = err
				return
			}
			rows[s] = len(res.Rows)
			reopts[s] = res.Reopts
		}(s)
	}
	wg.Wait()

	// Work (and float-aggregate low bits) through a mid-stream violation is
	// not DOP-comparable — sibling workers drain a scheduling-dependent
	// amount before cancellation, and partitioned SUM accumulation order
	// varies with the effective DOP — so the bit-identity pin lives in
	// TestGatedWorkMatchesUngated; here the contract is result cardinality
	// plus the occupancy bound.
	anyReopt := false
	for s := 0; s < sessions; s++ {
		if errs[s] != nil {
			t.Fatalf("session %d: %v", s, errs[s])
		}
		if rows[s] != want {
			t.Fatalf("session %d returned %d rows, baseline %d", s, rows[s], want)
		}
		anyReopt = anyReopt || reopts[s] > 0
	}
	if !anyReopt {
		t.Error("no session re-optimized; the scenario must exercise the POP loop under contention")
	}
	out, peak := gate.snapshot()
	if out != 0 {
		t.Errorf("%d workers still outstanding after all sessions", out)
	}
	if gate.negative {
		t.Error("a release drove occupancy negative")
	}
	if peak > budget {
		t.Errorf("peak pool occupancy %d exceeds budget %d", peak, budget)
	}
	if peak == 0 {
		t.Error("no worker was ever granted; the gate was not exercised")
	}
}
