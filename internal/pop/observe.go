package pop

// Observability glue: the runner stamps statement identity and attempt
// numbers onto trace events, fingerprints chosen plans, and republishes the
// merged per-operator runtime stats as operator_done events.

import (
	"fmt"
	"hash/fnv"
	"io"
	"sync/atomic"

	"repro/internal/executor"
	"repro/internal/logical"
	"repro/internal/optimizer"
	"repro/internal/trace"
)

// stampRecorder decorates every event emitted during one statement with the
// statement's signature and the attempt number current at emission time.
// Executor-side producers (CHECK operators, exchange workers) know neither;
// the attempt is atomic because worker goroutines record concurrently.
type stampRecorder struct {
	r       trace.Recorder
	query   string
	attempt atomic.Int32
}

func (s *stampRecorder) Record(ev trace.Event) {
	ev.Query = s.query
	ev.Attempt = int(s.attempt.Load())
	s.r.Record(ev)
}

// querySig names a statement in the trace: the signature of its full table
// subset (every alias, sorted), bound-parameter-scoped when the runner is.
func querySig(q *logical.Query) string {
	return optimizer.Signature(q, (uint64(1)<<uint(len(q.Tables)))-1)
}

// PlanSig fingerprints a plan as the FNV-64a hash of its rendered EXPLAIN:
// cheap, stable across processes, and sensitive to exactly the differences
// EXPLAIN shows. Trace consumers compare it across attempts to see whether a
// re-optimization actually changed the plan.
func PlanSig(p *optimizer.Plan, q *logical.Query) string {
	h := fnv.New64a()
	io.WriteString(h, optimizer.Explain(p, q))
	return fmt.Sprintf("%016x", h.Sum64())
}

// emitOperatorStats republishes a collected stats tree as one operator_done
// event per logical operator (partition clones already merged).
func emitOperatorStats(tr trace.Recorder, sn *executor.StatsNode) {
	sn.Walk(func(n *executor.StatsNode) {
		op := &trace.OpInfo{
			Op:     n.Plan.Op.String(),
			Est:    n.Plan.Card,
			Actual: n.Stats.RowsOut,
			Work:   n.Stats.Work,
			Spill:  n.Stats.Spilled,
		}
		if n.Clones > 1 {
			op.DOP = n.Clones
		}
		tr.Record(trace.Event{Kind: trace.OperatorDone, Op: op})
	})
}
