package pop

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/executor"
	"repro/internal/logical"
	"repro/internal/optimizer"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/types"
)

// Options configures a POP run.
type Options struct {
	// Enabled turns progressive optimization on. When false, the query runs
	// its initial plan to completion, however bad.
	Enabled bool
	// Policy selects checkpoint flavors and placement constraints.
	Policy Policy
	// MaxReopts bounds the optimization↔execution oscillation; the final
	// attempt runs without checkpoints to guarantee termination (paper §7).
	MaxReopts int
	// Pipelined streams partial results to the application before a
	// violation can occur. The runner then wires ECDC compensation: rows
	// already returned are recorded in a rid side-table and the re-optimized
	// plan is anti-joined against it so no duplicates are returned.
	Pipelined bool
	// Configure customizes each optimizer instance (experiment knobs).
	Configure func(*optimizer.Optimizer)
	// SharedFeedback, when non-nil, is used instead of a per-statement
	// feedback cache and is retained across Run calls — the LEO-style
	// "learning for the future" extension (paper §7, [SLM+01]): actual
	// cardinalities observed while re-optimizing one execution improve the
	// initial plan of the next.
	SharedFeedback *stats.Feedback
	// UncertaintyPenalty, when > 1, is applied during re-optimizations:
	// estimates not backed by observed cardinalities are inflated by this
	// factor (paper §7 "Considering Uncertainty during Re-optimization").
	UncertaintyPenalty float64
	// ReuseHashBuilds promotes completed hash-join builds to temporary
	// materialized views alongside SORT/TEMP results — the further
	// intermediate-result reuse the paper's §4 plans as an enhancement
	// ("we ... plan to enhance our prototype to reuse further intermediate
	// results in order to make re-optimization even more efficient").
	ReuseHashBuilds bool
	// InitialPlan, when non-nil, is executed on the first attempt instead of
	// invoking the optimizer — the plan-cache hit path. Checkpoint placement
	// and re-optimization on violation proceed exactly as for a freshly
	// optimized plan; the plan itself is cloned before any rewrite, so the
	// caller's tree is never mutated.
	InitialPlan *optimizer.Plan
	// Analyze turns on per-operator runtime attribution: each attempt's
	// AttemptInfo.Stats carries the merged stats tree EXPLAIN ANALYZE
	// renders. Off by default — the attribution costs one branch per work
	// charge plus a clock reading when on.
	Analyze bool
	// Trace, when non-nil, receives the statement's structured event stream
	// (see package trace): optimization rounds, checkpoint outcomes,
	// re-optimizations, exchange worker lifecycles, and (with Analyze)
	// per-operator stats. Nil keeps every emission site on its no-op path.
	Trace trace.Recorder
	// BindParamEstimates makes every (re-)optimization during the run bind
	// the statement's parameter values for estimation (see
	// optimizer.Optimizer.ParamBindings), and scopes feedback and checkpoint
	// signatures to the bound query: a parameter-dependent edge observed under
	// one binding must not override the estimate for another binding, while
	// binding-independent subsets keep sharing entries. Off by default to
	// preserve the paper experiments' default-selectivity behavior.
	BindParamEstimates bool
	// BatchSize turns on vectorized batch execution: operators with a batch
	// fast path move rows batch-at-a-time in slabs of this many rows, and the
	// remaining operators are bridged by a row adapter. 0 (the default) keeps
	// classic row-at-a-time execution. Results, checkpoint outcomes and the
	// simulated work total are bit-identical across all settings.
	BatchSize int
	// Gate, when non-nil, arbitrates exchange worker spawning against a
	// shared pool (see executor.WorkerGate): exchanges run at whatever width
	// the gate grants, down to an inline zero-goroutine mode, with the
	// simulated work total bit-identical at every granted width. The server's
	// scheduler supplies this; nil keeps the library's ungated spawning.
	Gate executor.WorkerGate
	// Planner selects the planner/adaptivity strategy (see strategy.go). Nil
	// behaves exactly like DPPOP: the options run as written. Non-nil
	// strategies are folded in by Resolve — NewRunner and the plan-cache
	// runner both call it, so callers only set the field.
	Planner Strategy

	// plannerResolved marks that Resolve already folded Planner into
	// Enabled/Policy/Configure, making a second Resolve a no-op.
	plannerResolved bool
}

// DefaultOptions is POP as the paper's prototype defaults: enabled, LC+LCEM,
// at most three re-optimizations, non-pipelined.
func DefaultOptions() Options {
	return Options{Enabled: true, Policy: DefaultPolicy(), MaxReopts: 3}
}

// AttemptInfo records one optimization→execution round.
type AttemptInfo struct {
	Plan *optimizer.Plan
	// Optimized is the plan as the optimizer produced it, before checkpoint
	// placement — the form the plan cache stores and guards.
	Optimized  *optimizer.Plan
	Explain    string
	Checks     int
	WorkBefore float64 // meter reading when the attempt started
	Violation  *executor.CheckViolation
	MVsCreated int
	FeedbackN  int
	// RowsReturned counts rows this attempt streamed to the application
	// (pipelined mode).
	RowsReturned int
	// Stats is the attempt's merged per-operator runtime stats tree
	// (EXPLAIN ANALYZE), collected when Options.Analyze is on — including for
	// attempts a violation cut short, where it shows how far each operator
	// got before the plan was abandoned.
	Stats *executor.StatsNode
}

// Result is the outcome of a POP run.
type Result struct {
	Rows     []schema.Row
	Work     float64 // total simulated work units across all attempts
	Reopts   int     // number of re-optimizations triggered
	Attempts []AttemptInfo
	// CheckStats carries the runtime stats of every CHECK node from the last
	// fully executed attempt (for the opportunity analysis).
	CheckStats []CheckObservation
}

// CheckObservation is one checkpoint's runtime timing.
type CheckObservation struct {
	Meta      *optimizer.CheckMeta
	FirstWork float64
	DoneWork  float64
	RowsSeen  float64
	Touched   bool
}

// Runner executes queries with progressive re-optimization.
type Runner struct {
	Cat  *catalog.Catalog
	Opts Options
}

// NewRunner returns a runner over the catalog with the given options.
func NewRunner(cat *catalog.Catalog, opts Options) *Runner {
	opts = opts.Resolve()
	if opts.MaxReopts <= 0 {
		opts.MaxReopts = 3
	}
	return &Runner{Cat: cat, Opts: opts}
}

func (r *Runner) newOptimizer(fb *stats.Feedback) *optimizer.Optimizer {
	opt := optimizer.New(r.Cat)
	opt.Feedback = fb
	if r.Opts.Configure != nil {
		r.Opts.Configure(opt)
	}
	return opt
}

// statementCounter allocates distinct temp-MV namespaces so concurrent
// statements sharing a catalog never observe each other's intermediates.
var statementCounter atomic.Uint64

// fail closes a failed statement's event stream with a terminal query_error
// before propagating the error. Every abort path goes through it so the trace
// never ends on a dangling optimize_start (or silently mid-attempt) — a
// consumer, the metrics registry included, can always account the statement.
func fail(tr *stampRecorder, err error) error {
	if tr != nil {
		tr.Record(trace.Event{Kind: trace.QueryError, Err: &trace.ErrInfo{Error: err.Error()}})
	}
	return err
}

// Run compiles and executes the query, re-optimizing on CHECK violations.
func (r *Runner) Run(q *logical.Query, params []types.Datum) (*Result, error) {
	fb := r.Opts.SharedFeedback
	if fb == nil {
		fb = stats.NewFeedback()
	}
	meter := &executor.Meter{}
	side := executor.NewReturnedSet()
	res := &Result{}
	pol := r.Opts.Policy
	if pol.GuardSpill && pol.MemoryBytes == 0 {
		// Fill the spill-guard budget from the cost model's memory budget.
		probe := r.newOptimizer(fb)
		pol.MemoryBytes = probe.Model.Params.MemoryBytes
	}
	ns := fmt.Sprintf("stmt%d/", statementCounter.Add(1))
	// Paper Fig. 1: clean up this statement's temp MVs at statement end.
	defer r.Cat.DropViewsPrefixed(ns)

	// With BindParamEstimates, feedback and checkpoint signatures render the
	// bound query so parameter-dependent observations stay scoped to this
	// binding. sigQ == q otherwise — behavior is bit-identical.
	sigQ := q
	if r.Opts.BindParamEstimates && len(params) > 0 {
		sigQ = logical.BindParams(q, params)
	}

	// All statement-scoped events flow through one stamping recorder so
	// executor-side emissions carry the statement signature and the attempt
	// in flight. tr stays a typed nil pointer when tracing is off — every
	// emission below is guarded, and ex.Trace is only assigned when non-nil.
	var tr *stampRecorder
	if r.Opts.Trace != nil {
		tr = &stampRecorder{r: r.Opts.Trace, query: querySig(sigQ)}
	}

	for attempt := 0; ; attempt++ {
		if tr != nil {
			tr.attempt.Store(int32(attempt))
		}
		opt := r.newOptimizer(fb)
		opt.MVNamespace = ns
		if r.Opts.BindParamEstimates && len(params) > 0 {
			opt.ParamBindings = params
		}
		if attempt > 0 && r.Opts.UncertaintyPenalty > 1 {
			opt.UncertaintyPenalty = r.Opts.UncertaintyPenalty
		}
		if attempt == r.Opts.MaxReopts {
			// Termination heuristic (§7): on the last permitted attempt,
			// force reuse of the intermediate results so progress is made.
			opt.ForceMVReuse = true
		}
		var plan *optimizer.Plan
		cached := attempt == 0 && r.Opts.InitialPlan != nil
		if cached {
			plan = r.Opts.InitialPlan // plan-cache hit: skip optimization
		} else {
			if tr != nil {
				tr.Record(trace.Event{Kind: trace.OptimizeStart})
			}
			var err error
			plan, err = opt.Optimize(q)
			if err != nil {
				return nil, fail(tr, err)
			}
		}
		optimized := plan
		checks := 0
		final := !r.Opts.Enabled || attempt >= r.Opts.MaxReopts
		if !final {
			plan, checks = Place(plan, sigQ, pol)
		}
		if tr != nil && !cached {
			tr.Record(trace.Event{Kind: trace.OptimizeDone, Opt: &trace.OptInfo{
				PlanSig:    PlanSig(plan, q),
				Cost:       plan.Cost,
				Candidates: opt.EnumeratedCandidates,
				Checks:     checks,
			}})
		}
		info := AttemptInfo{
			Plan:       plan,
			Optimized:  optimized,
			Explain:    optimizer.Explain(plan, q),
			Checks:     checks,
			WorkBefore: meter.Work(),
		}

		ex, err := executor.NewExecutor(r.Cat, q, params, opt.Model.Params, meter)
		if err != nil {
			return nil, fail(tr, err)
		}
		ex.Analyze = r.Opts.Analyze
		ex.BatchSize = r.Opts.BatchSize
		ex.Gate = r.Opts.Gate
		if tr != nil {
			ex.Trace = tr
		}
		root, err := ex.Build(plan)
		if err != nil {
			return nil, fail(tr, err)
		}
		var emitted *executor.ReturnedSet
		if r.Opts.Pipelined {
			if attempt > 0 {
				root = executor.NewAntiJoin(ex, root, side)
			}
			// Record this attempt's emissions separately: compensation must
			// only apply to rows returned by *previous* attempts.
			emitted = executor.NewReturnedSet()
			root = executor.NewInsertRid(ex, root, emitted)
		}

		rows, runErr := executor.RunWith(root, r.Opts.BatchSize)
		info.RowsReturned = len(rows)
		if r.Opts.Pipelined {
			// Rows produced before a violation were already returned to the
			// application; keep them (compensation prevents duplicates).
			res.Rows = append(res.Rows, rows...)
			side.Merge(emitted)
		}

		var cv *executor.CheckViolation
		if runErr != nil && !errors.As(runErr, &cv) {
			if cerr := root.Close(); cerr != nil {
				runErr = errors.Join(runErr, cerr)
			}
			return nil, fail(tr, runErr)
		}
		if cv == nil {
			// Completed.
			if !r.Opts.Pipelined {
				res.Rows = rows
			}
			res.CheckStats = collectCheckStats(root)
			if r.Opts.Analyze {
				info.Stats = executor.CollectStats(root)
			}
			res.Attempts = append(res.Attempts, info)
			res.Work = meter.Work()
			if tr != nil {
				if info.Stats != nil {
					emitOperatorStats(tr, info.Stats)
				}
				tr.Record(trace.Event{Kind: trace.QueryDone, Done: &trace.DoneInfo{
					Rows: len(res.Rows), Work: res.Work, Reopts: res.Reopts,
				}})
			}
			return res, nil
		}

		// CHECK violated: re-optimize.
		info.Violation = cv
		if r.Opts.Analyze {
			info.Stats = executor.CollectStats(root)
		}
		if tr != nil {
			tr.Record(trace.Event{Kind: trace.CheckpointViolated,
				Check: executor.CheckEventInfo(cv.Check, cv.Actual, cv.Exact)})
		}
		info.MVsCreated, info.FeedbackN = r.harvest(root, sigQ, fb, cv, ns)
		res.Attempts = append(res.Attempts, info)
		res.Reopts++
		if tr != nil {
			if info.Stats != nil {
				emitOperatorStats(tr, info.Stats)
			}
			tr.Record(trace.Event{Kind: trace.Reoptimize, Reopt: &trace.ReoptInfo{
				MVsCreated: info.MVsCreated, FeedbackN: info.FeedbackN,
			}})
		}
		// executor.Run already closed the tree; this second Close is the
		// idempotent safety net for wrapper nodes, and its error — previously
		// dropped — now aborts the run instead of silently re-optimizing over
		// a tree that failed to release its resources.
		if cerr := root.Close(); cerr != nil {
			return nil, fail(tr, fmt.Errorf("pop: closing violated attempt %d: %w", attempt+1, cerr))
		}
		// Charge the optimizer re-invocation (context switch, Fig. 12 gap).
		meter.Add(opt.Model.Params.ReoptInvoke)
		// A forced dummy failure applies to the initial attempt only.
		pol.FailCheckIDs = nil

		if attempt >= r.Opts.MaxReopts {
			return nil, fail(tr, fmt.Errorf("pop: re-optimization limit exceeded (%d attempts): %w",
				attempt+1, cv))
		}
	}
}

// harvest implements the two feedback channels of a violation (paper §2):
// actual cardinalities observed so far are recorded in the feedback cache,
// and completed materializations are promoted to temporary materialized
// views with exact cardinalities.
func (r *Runner) harvest(root executor.Node, q *logical.Query, fb *stats.Feedback, cv *executor.CheckViolation, ns string) (mvs, fbn int) {
	// The violated checkpoint's observation: for eager checks this is a
	// lower bound, which still guarantees a plan change because the bound
	// already exceeds the validity range (paper §3.4).
	fb.Record(cv.Check.Signature, cv.Actual)
	fbn++

	// Walk with a "whole stream" flag: a node under the inner side of an
	// NLJN is re-scanned (naive) or probed (index), so its RowsOut counter
	// does not equal its subtree's logical cardinality and must not feed
	// the cache.
	var visit func(n executor.Node, whole bool)
	visit = func(n executor.Node, whole bool) {
		p := n.Plan()
		st := n.Stats()
		if p.Tables() != 0 {
			sig := optimizer.Signature(q, p.Tables())
			if whole && st.Done && countsObservable(p.Op) {
				fb.Record(sig, st.RowsOut)
				fbn++
			}
			// Completed materializations become temp MVs. SORT/TEMP always
			// (like the paper's prototype); hash-join builds additionally
			// when Options.ReuseHashBuilds enables the §4 enhancement
			// (handled below).
			if m, ok := n.(executor.Materializer); ok && whole &&
				(p.Op == optimizer.OpSort || p.Op == optimizer.OpTemp) {
				if rows, done := m.Materialized(); done {
					fb.Record(sig, float64(len(rows)))
					fbn++
					mv := &catalog.MatView{
						Signature: ns + sig,
						Cols:      append([]int(nil), p.Cols...),
						Rows:      rows,
						Card:      float64(len(rows)),
					}
					if p.Op == optimizer.OpSort && len(p.SortKeys) == 1 && !p.SortKeys[0].Desc {
						mv.Sorted = true
						mv.OrderedCol = p.SortKeys[0].Col
					}
					r.Cat.RegisterView(mv)
					mvs++
				}
			}
		}
		// Optional §4 enhancement: promote a completed hash-join build. The
		// retained rows include NULL-keyed ones the hash table drops, so the
		// view is the build child's complete logical output.
		if bm, ok := n.(executor.BuildMaterializer); ok && whole && r.Opts.ReuseHashBuilds {
			if rows, ci, done := bm.BuildMaterialized(); done && ci < len(p.Children) {
				child := p.Children[ci]
				if child.Tables() != 0 && child.Op != optimizer.OpMVScan {
					bsig := optimizer.Signature(q, child.Tables())
					fb.Record(bsig, float64(len(rows)))
					fbn++
					r.Cat.RegisterView(&catalog.MatView{
						Signature: ns + bsig,
						Cols:      append([]int(nil), child.Cols...),
						Rows:      rows,
						Card:      float64(len(rows)),
					})
					mvs++
				}
			}
		}
		for i, c := range n.Children() {
			childWhole := whole
			// The inner side of an NLJN is re-scanned per outer row, and the
			// children of an exchange are partition clones whose counters
			// cover one morsel stripe each — neither is a whole-stream count.
			if (p.Op == optimizer.OpNLJN && i == 1) || p.Op == optimizer.OpExchange {
				childWhole = false
			}
			visit(c, childWhole)
		}
	}
	visit(root, true)
	return mvs, fbn
}

// countsObservable reports whether an operator's RowsOut counter is a
// trustworthy edge cardinality when the stream completed.
func countsObservable(op optimizer.OpKind) bool {
	switch op {
	case optimizer.OpTableScan, optimizer.OpIndexScan, optimizer.OpHashLookup,
		optimizer.OpNLJN, optimizer.OpHSJN, optimizer.OpMGJN,
		optimizer.OpSort, optimizer.OpTemp, optimizer.OpExchange:
		return true
	default:
		return false
	}
}

// collectCheckStats gathers checkpoint timings from an executed tree. In a
// parallel plan one logical CHECK appears once per partition clone; the
// instances are merged by their shared CheckMeta: rows seen sum across
// clones, the first touch is the earliest and completion the latest.
func collectCheckStats(root executor.Node) []CheckObservation {
	var out []CheckObservation
	index := make(map[*optimizer.CheckMeta]int)
	executor.Walk(root, func(n executor.Node) {
		p := n.Plan()
		if p.Op != optimizer.OpCheck || p.Check == nil {
			return
		}
		st := n.Stats()
		i, seen := index[p.Check]
		if !seen {
			index[p.Check] = len(out)
			out = append(out, CheckObservation{
				Meta:      p.Check,
				FirstWork: st.FirstWork,
				DoneWork:  st.DoneWork,
				RowsSeen:  st.RowsOut,
				Touched:   st.Touched,
			})
			return
		}
		obs := &out[i]
		obs.RowsSeen += st.RowsOut
		if st.Touched && (!obs.Touched || st.FirstWork < obs.FirstWork) {
			obs.FirstWork = st.FirstWork
		}
		if st.DoneWork > obs.DoneWork {
			obs.DoneWork = st.DoneWork
		}
		obs.Touched = obs.Touched || st.Touched
	})
	return out
}
