package pop

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/tpch"
	"repro/internal/trace"
	"repro/internal/types"
)

// TestTracedParallelReoptimization runs the correlated fixture on a DOP-4
// plan with a forced checkpoint failure and checks the event stream's
// invariants: exactly one checkpoint_violated per re-optimization (the
// shared-check registry must collapse the DOP clones to one logical event),
// exactly one checkpoint_passed per passing logical CHECK per attempt,
// matched worker lifecycles, and a coherent optimize/reoptimize/query_done
// bracket. Runs under -race in CI, which also validates concurrent emission.
func TestTracedParallelReoptimization(t *testing.T) {
	cat := correlatedFixture(t)
	q := correlatedQuery(t, cat)

	col := trace.NewCollector()
	opts := DefaultOptions()
	opts.Configure = forceParallelHash(4)
	opts.Policy.FailCheckIDs = map[int]bool{0: true}
	opts.Analyze = true
	opts.Trace = col
	res, err := NewRunner(cat, opts).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reopts != 1 {
		t.Fatalf("forced failure should re-optimize once, got %d", res.Reopts)
	}

	// The traced, analyzed run must charge exactly the work an untraced run
	// does — the zero-overhead guarantee on the simulated substrate.
	untraced := DefaultOptions()
	untraced.Configure = forceParallelHash(4)
	untraced.Policy.FailCheckIDs = map[int]bool{0: true}
	ures, err := NewRunner(correlatedFixture(t), untraced).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ures.Work != res.Work {
		t.Errorf("tracing perturbed the meter: %v traced vs %v untraced", res.Work, ures.Work)
	}

	violated := col.OfKind(trace.CheckpointViolated)
	if len(violated) != res.Reopts {
		t.Fatalf("%d checkpoint_violated events for %d re-optimizations", len(violated), res.Reopts)
	}
	v := violated[0]
	if v.Attempt != 0 {
		t.Errorf("violation stamped attempt %d, want 0", v.Attempt)
	}
	if v.Check == nil {
		t.Fatal("checkpoint_violated without Check payload")
	}
	cv := res.Attempts[0].Violation
	if v.Check.Est != cv.Check.EstCard || v.Check.Actual != cv.Actual || v.Check.ID != cv.Check.ID {
		t.Errorf("violation payload %+v does not match %v", v.Check, cv)
	}

	reopts := col.OfKind(trace.Reoptimize)
	if len(reopts) != res.Reopts {
		t.Fatalf("%d reoptimize events for %d re-optimizations", len(reopts), res.Reopts)
	}
	if reopts[0].Reopt.FeedbackN != res.Attempts[0].FeedbackN ||
		reopts[0].Reopt.MVsCreated != res.Attempts[0].MVsCreated {
		t.Errorf("reoptimize payload %+v vs attempt %+v", reopts[0].Reopt, res.Attempts[0])
	}

	optStarts := col.OfKind(trace.OptimizeStart)
	optDones := col.OfKind(trace.OptimizeDone)
	if len(optStarts) != len(res.Attempts) || len(optDones) != len(res.Attempts) {
		t.Fatalf("optimize events %d/%d for %d attempts", len(optStarts), len(optDones), len(res.Attempts))
	}
	for i, od := range optDones {
		if od.Opt == nil || od.Opt.PlanSig == "" || od.Opt.Candidates <= 0 {
			t.Errorf("optimize_done %d payload %+v", i, od.Opt)
		}
	}
	if optDones[0].Opt.PlanSig == optDones[1].Opt.PlanSig {
		t.Error("re-optimization did not change the plan signature")
	}

	// Exactly one checkpoint_passed per passing logical CHECK per attempt:
	// the DOP clones of one CHECK must collapse to a single event.
	passedAt := make(map[[2]int]int)
	for _, ev := range col.OfKind(trace.CheckpointPassed) {
		if ev.Check == nil {
			t.Fatal("checkpoint_passed without Check payload")
		}
		passedAt[[2]int{ev.Attempt, ev.Check.ID}]++
	}
	for k, n := range passedAt {
		if n != 1 {
			t.Errorf("checkpoint %v passed %d times, want exactly 1", k, n)
		}
	}
	if _, ok := passedAt[[2]int{0, 0}]; ok {
		t.Error("the violated checkpoint must not also report passed on attempt 0")
	}

	starts := col.OfKind(trace.WorkerStart)
	drains := col.OfKind(trace.WorkerDrain)
	if len(starts) == 0 || len(starts) != len(drains) {
		t.Fatalf("worker lifecycle unbalanced: %d starts, %d drains", len(starts), len(drains))
	}
	var workerWork float64
	for _, ev := range drains {
		if ev.Worker == nil || ev.Worker.DOP != 4 {
			t.Fatalf("worker_drain payload %+v", ev.Worker)
		}
		workerWork += ev.Worker.Work
	}
	if workerWork <= 0 {
		t.Error("drained workers reported no work")
	}

	ops := col.OfKind(trace.OperatorDone)
	if len(ops) == 0 {
		t.Fatal("analyze mode emitted no operator_done events")
	}
	sawDOP := false
	for _, ev := range ops {
		if ev.Op.DOP > 1 {
			sawDOP = true
		}
	}
	if !sawDOP {
		t.Error("no operator_done event carries the merged DOP")
	}

	dones := col.OfKind(trace.QueryDone)
	if len(dones) != 1 {
		t.Fatalf("%d query_done events, want 1", len(dones))
	}
	d := dones[0]
	if d.Done.Rows != len(res.Rows) || d.Done.Work != res.Work || d.Done.Reopts != res.Reopts {
		t.Errorf("query_done payload %+v vs result rows=%d work=%v reopts=%d",
			d.Done, len(res.Rows), res.Work, res.Reopts)
	}

	// Every statement-scoped event carries the same query signature.
	sig := querySig(q)
	for _, ev := range col.Events() {
		if ev.Query != sig {
			t.Fatalf("event %s carries query %q, want %q", ev.Kind, ev.Query, sig)
		}
	}
}

// TestTracedQ10 is the acceptance scenario: parameterized TPC-H Q10 with a
// default-selectivity estimate and an extreme binding emits checkpoint events
// carrying the estimated cardinality, the actual cardinality and the violated
// validity range.
func TestTracedQ10(t *testing.T) {
	cat := catalog.New()
	if err := tpch.Load(cat, tpch.Config{ScaleFactor: 0.005, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	q, err := tpch.Q10Param(cat)
	if err != nil {
		t.Fatal(err)
	}

	col := trace.NewCollector()
	opts := DefaultOptions()
	opts.Trace = col
	// No parameter binding during estimation: qty=50 selects all of LINEITEM
	// while the optimizer assumed the default selectivity, so a checkpoint
	// must catch the misestimate at runtime.
	res, err := NewRunner(cat, opts).Run(q, []types.Datum{types.NewFloat(50)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reopts == 0 {
		t.Fatal("extreme Q10 binding must violate a checkpoint")
	}

	violated := col.OfKind(trace.CheckpointViolated)
	if len(violated) != res.Reopts {
		t.Fatalf("%d checkpoint_violated events for %d re-optimizations", len(violated), res.Reopts)
	}
	for _, ev := range violated {
		c := ev.Check
		if c == nil {
			t.Fatal("checkpoint_violated without payload")
		}
		if c.Est <= 0 || c.Actual <= 0 || c.Flavor == "" {
			t.Errorf("incomplete violation payload %+v", c)
		}
		// The observed cardinality must actually lie outside the validity
		// range the event reports.
		inRange := c.Actual >= c.RangeLo && (c.RangeHi == nil || c.Actual <= *c.RangeHi)
		if inRange && c.Exact {
			t.Errorf("violation payload %+v reports an in-range actual", c)
		}
	}
	if len(col.OfKind(trace.QueryDone)) != 1 {
		t.Error("traced Q10 must close with one query_done")
	}
}

// TestFailedRunEmitsQueryError pins the terminal event of a failed
// statement: the trace must end with a query_error carrying the failure,
// not stop dead after an optimize_start. Failure is forced by running a
// query built against one catalog on an empty one, so the initial
// optimization's table lookup fails.
func TestFailedRunEmitsQueryError(t *testing.T) {
	cat := correlatedFixture(t)
	q := correlatedQuery(t, cat)

	col := trace.NewCollector()
	opts := DefaultOptions()
	opts.Trace = col
	_, err := NewRunner(catalog.New(), opts).Run(q, nil)
	if err == nil {
		t.Fatal("run against an empty catalog must fail")
	}

	evs := col.Events()
	if len(evs) == 0 {
		t.Fatal("failed run emitted no events")
	}
	last := evs[len(evs)-1]
	if last.Kind != trace.QueryError {
		t.Fatalf("stream must end with query_error, got %q", last.Kind)
	}
	if last.Err == nil || last.Err.Error != err.Error() {
		t.Errorf("query_error payload %+v does not carry the run error %q", last.Err, err)
	}
	if len(col.OfKind(trace.QueryDone)) != 0 {
		t.Error("failed run must not emit query_done")
	}
}
