package pop

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"repro/internal/executor"
)

// TestBatchModeMatrixMatchesRowMode pins the vectorized executor's end-to-end
// invariant through the full POP loop: for every DOP, the result multiset,
// the simulated work total (bit-for-bit), and the re-optimization count are
// identical between row mode and every batch size — including runs where a
// checkpoint violation aborts an attempt mid-way and the plan is re-optimized.
func TestBatchModeMatrixMatchesRowMode(t *testing.T) {
	cat := correlatedFixture(t)
	q := correlatedQuery(t, cat)

	cases := []struct {
		name      string
		configure func(opts *Options)
		wantReopt bool
	}{
		// The default optimizer falls for the correlated estimate, picks index
		// NLJN, violates a checkpoint and re-optimizes — the batch runs must
		// walk the exact same attempt sequence.
		{"default", func(*Options) {}, true},
		{"dop=1", func(o *Options) { o.Configure = forceParallelHash(1) }, false},
		{"dop=2", func(o *Options) { o.Configure = forceParallelHash(2) }, false},
		{"dop=4", func(o *Options) { o.Configure = forceParallelHash(4) }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := DefaultOptions()
			tc.configure(&base)
			want, err := NewRunner(cat, base).Run(q, nil)
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantReopt && want.Reopts == 0 {
				t.Fatal("fixture should trigger at least one re-optimization")
			}
			wantRows := canon(want.Rows)

			for _, size := range []int{1, 64, 1024} {
				opts := DefaultOptions()
				tc.configure(&opts)
				opts.BatchSize = size
				got, err := NewRunner(cat, opts).Run(q, nil)
				if err != nil {
					t.Fatal(err)
				}
				if got.Work != want.Work {
					t.Errorf("size=%d: work = %v, want %v (row mode)", size, got.Work, want.Work)
				}
				if got.Reopts != want.Reopts {
					t.Errorf("size=%d: reopts = %d, want %d", size, got.Reopts, want.Reopts)
				}
				gotRows := canon(got.Rows)
				if len(gotRows) != len(wantRows) {
					t.Fatalf("size=%d: %d rows, want %d", size, len(gotRows), len(wantRows))
				}
				for i := range gotRows {
					if gotRows[i] != wantRows[i] {
						t.Fatalf("size=%d: row %d = %s, want %s", size, i, gotRows[i], wantRows[i])
					}
				}
			}
		})
	}
}

// TestBatchExplainAnalyzeMatchesRow pins EXPLAIN ANALYZE attribution under
// batching: every attempt's rendered stats tree — per-operator Work and
// logical RowsOut — must be string-identical to the row-mode run's. Batched
// operators charge pre-scaled integer ticks, and tick totals below 2^33 sum
// losslessly in float64, so even the Work columns match exactly.
func TestBatchExplainAnalyzeMatchesRow(t *testing.T) {
	cat := correlatedFixture(t)
	q := correlatedQuery(t, cat)

	render := func(batchSize int) string {
		opts := DefaultOptions()
		opts.Analyze = true
		opts.BatchSize = batchSize
		res, err := NewRunner(cat, opts).Run(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for i, a := range res.Attempts {
			if a.Stats == nil {
				t.Fatalf("size=%d: attempt %d has no stats tree", batchSize, i)
			}
			fmt.Fprintf(&b, "-- attempt %d:\n", i)
			b.WriteString(executor.FormatStats(a.Stats, q, executor.AnalyzeOptions{}))
		}
		// Temp-MV signatures embed the process-global statement counter;
		// normalize it exactly as the golden test does.
		return regexp.MustCompile(`stmt\d+/`).ReplaceAllString(b.String(), "stmt#/")
	}

	want := render(0)
	if !strings.Contains(want, "actual=") {
		t.Fatalf("row-mode analyze output looks empty:\n%s", want)
	}
	for _, size := range []int{1, 64, 1024} {
		if got := render(size); got != want {
			t.Errorf("size=%d: EXPLAIN ANALYZE differs from row mode:\ngot:\n%s\nwant:\n%s", size, got, want)
		}
	}
}
