package pop

import (
	"sync"
	"testing"
)

// TestConcurrentStatements runs many POP statements in parallel over one
// shared catalog. Each statement re-optimizes and registers temp MVs; the
// per-statement MV namespaces must keep them from observing (or dropping)
// each other's intermediates, and every result must match the serial
// baseline.
func TestConcurrentStatements(t *testing.T) {
	cat := correlatedFixture(t)
	q := correlatedQuery(t, cat)

	baseline, err := NewRunner(cat, Options{Enabled: false}).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := len(baseline.Rows)

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	counts := make([]int, workers)
	reopts := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res, err := NewRunner(cat, DefaultOptions()).Run(q, nil)
			if err != nil {
				errs[w] = err
				return
			}
			counts[w] = len(res.Rows)
			reopts[w] = res.Reopts
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if counts[w] != want {
			t.Errorf("worker %d returned %d rows, want %d", w, counts[w], want)
		}
		if reopts[w] != 1 {
			t.Errorf("worker %d re-optimized %d times, want 1 (no cross-statement MV leakage)", w, reopts[w])
		}
	}
	if cat.ViewCount() != 0 {
		t.Errorf("%d temp MVs leaked after all statements finished", cat.ViewCount())
	}
}
