package pop

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/executor"
	"repro/internal/logical"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestExplainAnalyzeGolden pins the EXPLAIN ANALYZE rendering against a
// golden file. The serial run is fully deterministic, so every attempt is
// golden — including attempt 0, whose stats show how far each operator got
// before its CHECK violated. The parallel run's violated attempt is
// cancellation-timing dependent, so only its completed final attempt is
// pinned (work totals are deterministic by the meter's integer-tick design).
// Regenerate with: go test ./internal/pop -run ExplainAnalyzeGolden -update
func TestExplainAnalyzeGolden(t *testing.T) {
	cat := correlatedFixture(t)
	q := correlatedQuery(t, cat)

	var b strings.Builder

	serial := DefaultOptions()
	serial.Analyze = true
	res, err := NewRunner(cat, serial).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reopts == 0 {
		t.Fatal("fixture must force a re-optimization")
	}
	b.WriteString("== serial ==\n")
	for i, a := range res.Attempts {
		if a.Stats == nil {
			t.Fatalf("attempt %d has no stats tree", i)
		}
		writeAttempt(&b, i, a, q)
	}

	parCat := correlatedFixture(t)
	par := DefaultOptions()
	par.Analyze = true
	par.Configure = forceParallelHash(4)
	pres, err := NewRunner(parCat, par).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString("== parallel (final attempt) ==\n")
	writeAttempt(&b, len(pres.Attempts)-1, pres.Attempts[len(pres.Attempts)-1], q)

	// Temp-MV signatures embed the process-global statement counter
	// (stmt7/...); normalize it so the golden is stable regardless of which
	// tests ran before this one.
	got := regexp.MustCompile(`stmt\d+/`).ReplaceAllString(b.String(), "stmt#/")
	path := filepath.Join("testdata", "explain_analyze.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Errorf("EXPLAIN ANALYZE output changed (regenerate with -update if intended):\ngot:\n%s\nwant:\n%s", got, want)
	}

	// The violated serial attempt must flag its CHECK node.
	if !strings.Contains(got, "[violated]") {
		t.Error("no [violated] flag in the violated attempt's stats")
	}
}

// writeAttempt renders one attempt's stats tree with the deterministic
// columns only (no wall clock).
func writeAttempt(b *strings.Builder, i int, a AttemptInfo, q *logical.Query) {
	fmt.Fprintf(b, "-- attempt %d", i)
	if a.Violation != nil {
		fmt.Fprint(b, " (violated)")
	}
	b.WriteString(":\n")
	b.WriteString(executor.FormatStats(a.Stats, q, executor.AnalyzeOptions{}))
}
