// Package pop implements Progressive Query Optimization — the paper's
// primary contribution. It layers three mechanisms over the optimizer and
// executor substrates:
//
//  1. a checkpoint-placement post-pass that inserts CHECK operators into a
//     chosen plan (five flavors: LC, LCEM, ECB, ECWC, ECDC — paper §3, §4),
//     with check ranges taken from the validity ranges the optimizer computed
//     during pruning (paper §2.2);
//  2. a re-optimization controller that catches CHECK violations, feeds
//     actual cardinalities back, promotes completed materializations to
//     temporary materialized views, recompiles, and re-executes — at most
//     MaxReopts times (paper §2, §7 "Ensuring Termination");
//  3. duplicate-free pipelining via ECDC's rid side-table and compensating
//     anti-join (paper §3.3, Figure 9).
package pop

import (
	"math"

	"repro/internal/logical"
	"repro/internal/optimizer"
)

// Policy controls which checkpoint flavors the post-pass places. The zero
// value places nothing; DefaultPolicy mirrors the paper's conservative
// default (§4): LC and LCEM only.
type Policy struct {
	LC   bool // lazy checks above materialization points and HSJN builds
	LCEM bool // check + eager TEMP on NLJN outers
	ECB  bool // buffered eager check on NLJN outers (replaces LCEM there)
	ECWC bool // eager check below materialization points
	ECDC bool // eager check with deferred compensation on pipelined join edges

	// MinPlanCost suppresses checkpointing for cheap plans — monitoring and
	// re-optimizing a trivial query is not worth it (paper §4).
	MinPlanCost float64

	// RequireBoundedRange places a checkpoint only when the edge's validity
	// range is bounded, i.e. an alternative plan exists above the checkpoint
	// (paper §4). Disabled by the Fig. 14 opportunity study, which wants
	// every potential checkpoint instrumented.
	RequireBoundedRange bool

	// FailCheckIDs forces the listed checkpoints to fail when reached, used
	// by the Fig. 12 overhead experiment ("dummy re-optimization").
	FailCheckIDs map[int]bool

	// Unchecked widens every check range to (0, +inf) so no checkpoint ever
	// fires; the Fig. 14 opportunity study uses it to observe checkpoint
	// timing over a full execution.
	Unchecked bool

	// FixedThresholdFactor, when positive, replaces the validity-range check
	// ranges with ad-hoc error thresholds [est/K, est·K] — the strategy of
	// [KD98] that the paper argues against (§1.2). Used by the ablation
	// benchmark comparing the two.
	FixedThresholdFactor float64

	// GuardSpill places an eager check (ECB) on every hash-join build edge
	// whose estimated size fits in memory, with the upper bound at the spill
	// boundary: if the build unexpectedly outgrows memory, the query
	// re-optimizes instead of spilling (paper §3.3: "An ECB can also help
	// SORT or HSJN builds, if these run out of temporary space when creating
	// their results, by re-optimizing instead of signaling an error").
	// MemoryBytes is the build budget; the POP runner fills it in from the
	// cost model when zero.
	GuardSpill  bool
	MemoryBytes float64
}

// DefaultPolicy is the paper's conservative default: LC and LCEM only, with
// bounded-range and minimum-cost requirements.
func DefaultPolicy() Policy {
	return Policy{
		LC:                  true,
		LCEM:                true,
		MinPlanCost:         1000,
		RequireBoundedRange: true,
	}
}

// Place rewrites the plan with CHECK operators per the policy and returns
// the new root together with the number of checkpoints placed. The input
// plan is not modified.
func Place(plan *optimizer.Plan, q *logical.Query, pol Policy) (*optimizer.Plan, int) {
	if plan.Cost < pol.MinPlanCost {
		return plan, 0
	}
	p := &placer{q: q, pol: pol}
	root := p.rewrite(plan, nil, 0)
	return root, p.nextID
}

type placer struct {
	q      *logical.Query
	pol    Policy
	nextID int
}

// newCheck wraps child in a CHECK with the given flavor and range.
func (p *placer) newCheck(child *optimizer.Plan, flavor optimizer.CheckFlavor, r optimizer.Range, est float64) *optimizer.Plan {
	return p.newCheckAt(child, flavor, r, est, "")
}

// newCheckAt is newCheck with a placement-site label (paper Fig. 14 legend).
func (p *placer) newCheckAt(child *optimizer.Plan, flavor optimizer.CheckFlavor, r optimizer.Range, est float64, where string) *optimizer.Plan {
	if k := p.pol.FixedThresholdFactor; k > 0 {
		r = optimizer.Range{Lo: est / k, Hi: est * k}
	}
	if p.pol.Unchecked {
		r = optimizer.UnboundedRange()
	}
	id := p.nextID
	p.nextID++
	if p.pol.FailCheckIDs[id] {
		// An impossible range: count < Lo at end of stream always fails.
		r = optimizer.Range{Lo: math.Inf(1), Hi: math.Inf(1)}
	}
	return optimizer.WrapCheck(child, &optimizer.CheckMeta{
		ID:        id,
		Flavor:    flavor,
		Range:     r,
		EstCard:   est,
		Signature: optimizer.Signature(p.q, child.Tables()),
		Where:     where,
	})
}

// newTemp wraps child in an eager materialization (TEMP).
func (p *placer) newTemp(child *optimizer.Plan) *optimizer.Plan {
	return optimizer.WrapTemp(child)
}

// rewrite walks the tree bottom-up, inserting checkpoints on edges.
// parent and edge identify the edge above node (parent == nil at the root).
func (p *placer) rewrite(node *optimizer.Plan, parent *optimizer.Plan, edge int) *optimizer.Plan {
	n := cloneNode(node)
	for i := range n.Children {
		n.Children[i] = p.rewrite(n.Children[i], node, i)
	}

	// ECWC: an eager check pushed below a materialization point (paper
	// Fig. 7 right): the materialization's input edge carries the same
	// cardinality as its output edge, so the output edge's validity range
	// applies.
	if p.pol.ECWC && n.Op.IsMaterialization() && parent != nil {
		v := parent.EdgeValidity(edge)
		if p.placeable(v) && n.Children[0].Op != optimizer.OpCheck {
			n.Children[0] = p.newCheck(n.Children[0], optimizer.ECWC, v, n.Children[0].Card)
		}
	}

	switch n.Op {
	case optimizer.OpNLJN:
		// LCEM / ECB guard the outer of every NLJN (paper §3.2, §4).
		v := node.EdgeValidity(0)
		outer := n.Children[0]
		alreadySafe := outer.Op == optimizer.OpCheck || outer.Op.IsMaterialization()
		if p.placeable(v) && !alreadySafe {
			switch {
			case p.pol.ECB:
				// BUFCHECK = TEMP over CHECK (paper §5): the check fires
				// while the buffer fills, before materialization completes.
				buf := int(v.Hi) + 1
				ck := p.newCheckAt(outer, optimizer.ECB, v, outer.Card, "NLJN outer")
				ck.Check.BufferSize = buf
				n.Children[0] = p.newTemp(ck)
			case p.pol.LCEM:
				// CHECK above an eager TEMP: validated once, after the
				// materialization completes.
				n.Children[0] = p.newCheckAt(p.newTemp(outer), optimizer.LCEM, v, outer.Card, "NLJN outer")
			case p.pol.ECDC:
				// Pure streaming check: rows keep flowing to the client; the
				// runner compensates returned rows after re-optimization.
				n.Children[0] = p.newCheck(outer, optimizer.ECDC, v, outer.Card)
			}
		} else if p.placeable(v) && outer.Op.IsMaterialization() && p.pol.LC {
			// A natural materialization below the outer: plain LC suffices.
			n.Children[0] = p.newCheck(outer, optimizer.LC, v, outer.Card)
		}

	case optimizer.OpHSJN:
		// Spill guard (paper §3.3): an ECB on the build edge capped at the
		// in-memory boundary — better to re-optimize than to start staging.
		if p.pol.GuardSpill && p.pol.MemoryBytes > 0 && n.Children[1].Op != optimizer.OpCheck {
			build := n.Children[1]
			spillRows := p.pol.MemoryBytes / (12 * float64(len(build.Cols)))
			if build.Card <= spillRows {
				v := node.EdgeValidity(1)
				if v.Hi > spillRows {
					v.Hi = spillRows
				}
				ck := p.newCheckAt(build, optimizer.ECB, v, build.Card, "HJ build (spill guard)")
				ck.Check.BufferSize = int(spillRows)
				n.Children[1] = ck
			}
		}
		// LC above the hash-join build side (paper Fig. 14 "LC (above HJ)"):
		// the build is a materialization inside the operator, so a check on
		// the build edge fires no later than the end of the build.
		if p.pol.LC {
			v := node.EdgeValidity(1)
			if p.placeable(v) && n.Children[1].Op != optimizer.OpCheck {
				n.Children[1] = p.newCheckAt(n.Children[1], optimizer.LC, v, n.Children[1].Card, "above HJ")
			}
		}
		// ECDC: streaming check on the pipelined probe edge.
		if p.pol.ECDC {
			v := node.EdgeValidity(0)
			if p.placeable(v) && n.Children[0].Op != optimizer.OpCheck {
				n.Children[0] = p.newCheck(n.Children[0], optimizer.ECDC, v, n.Children[0].Card)
			}
		}

	case optimizer.OpMGJN, optimizer.OpSort, optimizer.OpTemp, optimizer.OpHashAgg, optimizer.OpProject, optimizer.OpCheck:
		// Handled via the generic materialization rule below.
	default:
		// Leaves (scans, lookups) and exchanges carry no join-specific
		// checkpoint placement; the generic rule below still applies.
	}

	// LC above materialization points (paper §3.1): if a child is a SORT or
	// TEMP, checkpoint the edge above it. NLJN outers were handled above,
	// and an ECB's TEMP-over-CHECK pair must not be re-wrapped.
	if p.pol.LC {
		for i := range n.Children {
			if n.Op == optimizer.OpNLJN && i == 0 {
				continue
			}
			c := n.Children[i]
			if !c.Op.IsMaterialization() {
				continue
			}
			if len(c.Children) == 1 && c.Children[0].Op == optimizer.OpCheck {
				continue // ECB pair
			}
			v := node.EdgeValidity(i)
			if p.placeable(v) {
				n.Children[i] = p.newCheckAt(c, optimizer.LC, v, c.Card, "above TMP/SORT")
			}
		}
	}

	return n
}

// placeable applies the bounded-range requirement.
func (p *placer) placeable(v optimizer.Range) bool {
	if p.pol.RequireBoundedRange && !v.Bounded() {
		return false
	}
	return true
}

// cloneNode shallow-copies a plan node with fresh child and validity slices.
func cloneNode(p *optimizer.Plan) *optimizer.Plan { return optimizer.CloneNode(p) }

// CheckCount returns the number of CHECK operators in a plan.
func CheckCount(p *optimizer.Plan) int { return p.Count(optimizer.OpCheck) }

// Checks lists the CheckMeta of every checkpoint in plan order.
func Checks(p *optimizer.Plan) []*optimizer.CheckMeta {
	var out []*optimizer.CheckMeta
	p.Walk(func(n *optimizer.Plan) {
		if n.Op == optimizer.OpCheck && n.Check != nil {
			out = append(out, n.Check)
		}
	})
	return out
}
