package pop

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/optimizer"
	"repro/internal/schema"
	"repro/internal/types"
)

// spillFixture: a probe table and a build table with two correlated columns,
// so the build side is under-estimated enough to "fit in memory" at plan
// time while actually exceeding it.
func spillFixture(t *testing.T) (*catalog.Catalog, *logical.Query) {
	t.Helper()
	c := catalog.New()
	probe, err := c.CreateTable("probe", schema.New(
		schema.Column{Name: "p_key", Type: types.KindInt},
		schema.Column{Name: "p_val", Type: types.KindInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9000; i++ {
		probe.Heap.MustInsert(schema.Row{types.NewInt(int64(i % 3000)), types.NewInt(int64(i))})
	}
	build, err := c.CreateTable("build", schema.New(
		schema.Column{Name: "b_key", Type: types.KindInt},
		schema.Column{Name: "b_c1", Type: types.KindInt},
		schema.Column{Name: "b_c2", Type: types.KindInt}, // == b_c1
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		bc := int64(i % 2) // 50% selectivity per predicate, perfectly correlated
		build.Heap.MustInsert(schema.Row{types.NewInt(int64(i)), types.NewInt(bc), types.NewInt(bc)})
	}
	if err := c.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	b := logical.NewBuilder(c)
	b.AddTable("probe", "p")
	b.AddTable("build", "bl")
	b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("p", "p_key"), R: b.Col("bl", "b_key")})
	one := &expr.Const{Val: types.NewInt(1)}
	b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("bl", "b_c1"), R: one})
	b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("bl", "b_c2"), R: one})
	b.SelectCol("p", "p_val")
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c, q
}

// TestSpillGuard verifies paper §3.3: with the guard, an under-estimated
// hash-join build that would outgrow memory triggers re-optimization at the
// spill boundary instead of staging.
func TestSpillGuard(t *testing.T) {
	cat, q := spillFixture(t)
	// Build estimate: 3000 × 0.5² = 750 rows ≈ 27 KB; actual 1500 ≈ 54 KB.
	// A 36 KB budget admits the estimate but not the actual.
	const mem = 36_000
	configure := func(o *optimizer.Optimizer) {
		o.Model.Params.MemoryBytes = mem
		o.DisableNLJN = true // isolate the hash join path
		o.DisableMGJN = true
	}

	// Without the guard: the build spills (work includes staging charges).
	plain, err := NewRunner(cat, Options{Enabled: false, Configure: configure}).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}

	opts := Options{
		Enabled:   true,
		MaxReopts: 3,
		Policy:    Policy{GuardSpill: true},
		Configure: configure,
	}
	guarded, err := NewRunner(cat, opts).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if guarded.Reopts == 0 {
		t.Fatalf("spill guard should fire:\n%s", guarded.Attempts[0].Explain)
	}
	v := guarded.Attempts[0].Violation
	if v.Check.Flavor != optimizer.ECB {
		t.Errorf("guard flavor = %s, want ECB", v.Check.Flavor)
	}
	wantBoundary := mem / (12 * 3) // 3 build columns
	if v.Actual > float64(wantBoundary)+2 {
		t.Errorf("guard fired at %v rows, should fire at the %d-row boundary", v.Actual, wantBoundary)
	}
	if len(guarded.Rows) != len(plain.Rows) {
		t.Errorf("guarded run rows = %d, baseline = %d", len(guarded.Rows), len(plain.Rows))
	}
	// The re-optimized plan knows the build is big; whatever it picks, it
	// must not be a same-direction in-memory fantasy. At minimum the run
	// completes within a sane factor of the spilling baseline.
	if guarded.Work > plain.Work*2 {
		t.Errorf("guarded work %.0f vs spilling baseline %.0f", guarded.Work, plain.Work)
	}
}

// TestSpillGuardQuietWhenEstimatesHold verifies the guard does not fire when
// the build truly fits.
func TestSpillGuardQuietWhenEstimatesHold(t *testing.T) {
	cat, q := spillFixture(t)
	configure := func(o *optimizer.Optimizer) {
		o.Model.Params.MemoryBytes = 1 << 20 // roomy
		o.DisableNLJN = true
		o.DisableMGJN = true
	}
	opts := Options{
		Enabled:   true,
		MaxReopts: 3,
		Policy:    Policy{GuardSpill: true},
		Configure: configure,
	}
	res, err := NewRunner(cat, opts).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reopts != 0 {
		t.Errorf("guard fired with a roomy budget (reopts=%d)", res.Reopts)
	}
}
