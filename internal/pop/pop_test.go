package pop

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/optimizer"
	"repro/internal/schema"
	"repro/internal/types"
)

// correlatedFixture builds the paper's canonical mis-estimation scenario:
// LINEITEM-like fact table with three perfectly correlated columns. Three
// predicates each of selectivity 0.2 estimate to 0.008 under independence
// but actually select 0.2 — a 25× under-estimate that flips the optimal
// join method from index NLJN to hash join.
func correlatedFixture(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	orders, err := c.CreateTable("orders", schema.New(
		schema.Column{Name: "o_id", Type: types.KindInt},
		schema.Column{Name: "o_cust", Type: types.KindInt},
		schema.Column{Name: "o_c1", Type: types.KindInt},
		schema.Column{Name: "o_c2", Type: types.KindInt}, // == o_c1: correlated
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		oc := int64(i % 10)
		orders.Heap.MustInsert(schema.Row{
			types.NewInt(int64(i)), types.NewInt(int64(i % 500)),
			types.NewInt(oc), types.NewInt(oc),
		})
	}
	line, err := c.CreateTable("lineitem", schema.New(
		schema.Column{Name: "l_order", Type: types.KindInt},
		schema.Column{Name: "l_qty", Type: types.KindFloat},
		schema.Column{Name: "l_c1", Type: types.KindInt},
		schema.Column{Name: "l_c2", Type: types.KindInt},
		schema.Column{Name: "l_c3", Type: types.KindInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40000; i++ {
		corr := int64(i % 10) // l_c1 = l_c2 = l_c3: perfect correlation
		line.Heap.MustInsert(schema.Row{
			types.NewInt(int64(i % 20000)),
			types.NewFloat(float64(i % 50)),
			types.NewInt(corr),
			types.NewInt(corr),
			types.NewInt(corr),
		})
	}
	if _, err := c.CreateBTreeIndex("orders_pk", "orders", "o_id"); err != nil {
		t.Fatal(err)
	}
	if err := c.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	return c
}

// correlatedQuery joins lineitem to orders with the three correlated
// predicates.
func correlatedQuery(t *testing.T, cat *catalog.Catalog) *logical.Query {
	t.Helper()
	b := logical.NewBuilder(cat)
	b.AddTable("lineitem", "l")
	b.AddTable("orders", "o")
	b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("l", "l_order"), R: b.Col("o", "o_id")})
	two := &expr.Const{Val: types.NewInt(2)}
	b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("l", "l_c1"), R: two})
	b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("l", "l_c2"), R: two})
	b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("l", "l_c3"), R: two})
	b.SelectCol("l", "l_qty")
	b.SelectCol("o", "o_cust")
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func canon(rows []schema.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func TestUnderestimateTriggersReoptimization(t *testing.T) {
	cat := correlatedFixture(t)
	q := correlatedQuery(t, cat)

	// Baseline without POP: the optimizer picks index NLJN off the bad
	// estimate and runs it to completion.
	off := NewRunner(cat, Options{Enabled: false})
	resOff, err := off.Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resOff.Rows) != 8000*2 { // 8000 lineitem survivors × 2 matching orders rows? no: unique o_id → 8000
		// Each lineitem row joins exactly one order (i%20000 vs o_id) and
		// lineitem has 2 rows per order id among survivors.
		t.Logf("baseline rows = %d", len(resOff.Rows))
	}
	if resOff.Reopts != 0 {
		t.Error("POP disabled must not re-optimize")
	}
	initialPlan := resOff.Attempts[0].Explain
	if !strings.Contains(initialPlan, "NLJN[index]") {
		t.Fatalf("baseline should pick index NLJN:\n%s", initialPlan)
	}

	// With POP: the LCEM checkpoint on the NLJN outer fires, the query is
	// re-optimized into a hash join reusing the materialized outer.
	on := NewRunner(cat, DefaultOptions())
	resOn, err := on.Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resOn.Reopts != 1 {
		t.Fatalf("expected exactly one re-optimization, got %d", resOn.Reopts)
	}
	first := resOn.Attempts[0]
	if first.Violation == nil {
		t.Fatal("first attempt should record a violation")
	}
	if first.Violation.Check.Flavor != optimizer.LCEM {
		t.Errorf("violating check flavor = %s, want LCEM", first.Violation.Check.Flavor)
	}
	if !first.Violation.Exact || first.Violation.Actual != 8000 {
		t.Errorf("violation actual = %v exact=%v, want exact 8000", first.Violation.Actual, first.Violation.Exact)
	}
	if first.MVsCreated == 0 {
		t.Error("completed LCEM materialization should be promoted to an MV")
	}
	second := resOn.Attempts[1]
	if strings.Contains(second.Explain, "NLJN[index]") {
		t.Errorf("re-optimized plan should abandon index NLJN:\n%s", second.Explain)
	}
	if !strings.Contains(second.Explain, "MVSCAN") {
		t.Errorf("re-optimized plan should reuse the materialized outer:\n%s", second.Explain)
	}

	// Results identical.
	got, want := canon(resOn.Rows), canon(resOff.Rows)
	if len(got) != len(want) {
		t.Fatalf("row count mismatch: POP %d vs baseline %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d differs: %s vs %s", i, got[i], want[i])
		}
	}

	// Temp MVs cleaned up after the statement.
	if cat.ViewCount() != 0 {
		t.Errorf("%d temp MVs leaked", cat.ViewCount())
	}
}

func TestAccurateEstimateNoReopt(t *testing.T) {
	cat := correlatedFixture(t)
	// A single (uncorrelated) predicate: estimates are accurate, POP places
	// checkpoints but none fire, and overhead stays negligible.
	b := logical.NewBuilder(cat)
	b.AddTable("lineitem", "l")
	b.AddTable("orders", "o")
	b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("l", "l_order"), R: b.Col("o", "o_id")})
	b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("l", "l_c1"), R: &expr.Const{Val: types.NewInt(2)}})
	b.SelectCol("l", "l_qty")
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	off, err := NewRunner(cat, Options{Enabled: false}).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	on, err := NewRunner(cat, DefaultOptions()).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if on.Reopts != 0 {
		t.Fatalf("accurate estimates must not trigger re-optimization (got %d):\n%s",
			on.Reopts, on.Attempts[0].Explain)
	}
	if len(on.Rows) != len(off.Rows) {
		t.Error("row counts differ")
	}
	// Paper: overhead of POP without re-optimization is ~2-3%.
	overhead := on.Work/off.Work - 1
	if overhead > 0.10 {
		t.Errorf("POP overhead = %.1f%%, want < 10%%", overhead*100)
	}
}

func TestECBFiresBeforeMaterializationCompletes(t *testing.T) {
	cat := correlatedFixture(t)
	q := correlatedQuery(t, cat)
	opts := DefaultOptions()
	opts.Policy.LCEM = false
	opts.Policy.ECB = true
	res, err := NewRunner(cat, opts).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reopts != 1 {
		t.Fatalf("expected one re-optimization, got %d", res.Reopts)
	}
	v := res.Attempts[0].Violation
	if v.Check.Flavor != optimizer.ECB {
		t.Fatalf("flavor = %s, want ECB", v.Check.Flavor)
	}
	if v.Exact {
		t.Error("ECB fires mid-stream: the count must be a lower bound")
	}
	if v.Actual >= 8000 {
		t.Errorf("ECB should fire before the full 8000 rows, at %v", v.Actual)
	}
	if v.Check.BufferSize <= 0 {
		t.Error("ECB should carry a buffer size")
	}
	// ECB aborts the materialization, so no MV of the outer exists; the
	// final result must still be correct.
	off, err := NewRunner(cat, Options{Enabled: false}).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(off.Rows) {
		t.Errorf("ECB run rows = %d, baseline = %d", len(res.Rows), len(off.Rows))
	}
}

func TestECDCPipelinedNoDuplicates(t *testing.T) {
	cat := correlatedFixture(t)
	q := correlatedQuery(t, cat)
	opts := Options{
		Enabled:   true,
		MaxReopts: 3,
		Pipelined: true,
		Policy: Policy{
			ECDC:                true,
			RequireBoundedRange: true,
		},
	}
	res, err := NewRunner(cat, opts).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reopts == 0 {
		t.Fatalf("expected a re-optimization:\n%s", res.Attempts[0].Explain)
	}
	v := res.Attempts[0].Violation
	if v.Check.Flavor != optimizer.ECDC {
		t.Errorf("flavor = %s, want ECDC", v.Check.Flavor)
	}
	off, err := NewRunner(cat, Options{Enabled: false}).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, want := canon(res.Rows), canon(off.Rows)
	if len(got) != len(want) {
		t.Fatalf("pipelined POP returned %d rows, want %d (duplicates or loss)", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d differs after compensation", i)
		}
	}
}

func TestForcedDummyReoptKeepsResultAndFinishes(t *testing.T) {
	cat := correlatedFixture(t)
	// Accurate single-predicate query, but force checkpoint 0 to fail: a
	// "dummy" re-optimization as in the paper's Fig. 12 overhead study.
	b := logical.NewBuilder(cat)
	b.AddTable("lineitem", "l")
	b.AddTable("orders", "o")
	b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("l", "l_order"), R: b.Col("o", "o_id")})
	b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("l", "l_c1"), R: &expr.Const{Val: types.NewInt(2)}})
	b.SelectCol("l", "l_qty")
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Policy.FailCheckIDs = map[int]bool{0: true}
	res, err := NewRunner(cat, opts).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reopts != 1 {
		t.Fatalf("forced failure should cause exactly one re-optimization, got %d", res.Reopts)
	}
	off, err := NewRunner(cat, Options{Enabled: false}).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(off.Rows) {
		t.Error("dummy re-optimization changed the result")
	}
}

func TestPlacementPolicies(t *testing.T) {
	cat := correlatedFixture(t)
	q := correlatedQuery(t, cat)
	opt := optimizer.New(cat)
	plan, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}

	// No policy → no checks.
	p0, n0 := Place(plan, q, Policy{})
	if n0 != 0 || CheckCount(p0) != 0 {
		t.Error("empty policy placed checks")
	}
	// Default policy → at least the LCEM on the NLJN outer.
	p1, n1 := Place(plan, q, DefaultPolicy())
	if n1 == 0 || CheckCount(p1) == 0 {
		t.Fatalf("default policy placed no checks:\n%s", optimizer.Explain(p1, q))
	}
	metas := Checks(p1)
	if len(metas) != n1 {
		t.Errorf("Checks() = %d, Place reported %d", len(metas), n1)
	}
	for i, m := range metas {
		if m.Signature == "" {
			t.Error("check without signature")
		}
		if m.EstCard <= 0 {
			t.Error("check without estimate")
		}
		_ = i
	}
	// Original plan untouched.
	if CheckCount(plan) != 0 {
		t.Error("Place mutated the input plan")
	}
	// Cheap plans are not checkpointed.
	pol := DefaultPolicy()
	pol.MinPlanCost = 1e12
	_, n2 := Place(plan, q, pol)
	if n2 != 0 {
		t.Error("min-cost threshold ignored")
	}
}

func TestMaxReoptsTermination(t *testing.T) {
	cat := correlatedFixture(t)
	q := correlatedQuery(t, cat)
	// MaxReopts = 0 would be normalized; use 1 and verify the run completes
	// with at most one reopt and correct results.
	opts := DefaultOptions()
	opts.MaxReopts = 1
	res, err := NewRunner(cat, opts).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reopts > 1 {
		t.Errorf("reopts = %d exceeds limit", res.Reopts)
	}
	off, _ := NewRunner(cat, Options{Enabled: false}).Run(q, nil)
	if len(res.Rows) != len(off.Rows) {
		t.Error("row counts differ")
	}
}

func TestCheckObservationsCollected(t *testing.T) {
	cat := correlatedFixture(t)
	q := correlatedQuery(t, cat)
	opts := DefaultOptions()
	opts.Policy.Unchecked = true // observe opportunities, never fire
	opts.Policy.RequireBoundedRange = false
	res, err := NewRunner(cat, opts).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reopts != 0 {
		t.Fatal("unchecked run must not re-optimize")
	}
	if len(res.CheckStats) == 0 {
		t.Fatalf("no check observations:\n%s", res.Attempts[0].Explain)
	}
	for _, obs := range res.CheckStats {
		if obs.Touched && (obs.FirstWork < 0 || obs.FirstWork > res.Work) {
			t.Errorf("check %d first-touch work %v outside [0, %v]", obs.Meta.ID, obs.FirstWork, res.Work)
		}
	}
}
