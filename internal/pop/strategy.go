package pop

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/optimizer"
)

// A Strategy is one planner/adaptivity combination the engine can run a
// statement under: how the join order is searched (exhaustive DP vs the
// statistics-free greedy chain) crossed with how the runtime adapts
// (validity-range-guarded POP, no adaptivity at all, or unguarded
// re-optimization that re-costs at every checkpoint). Strategies compose
// with the plan cache (the strategy name is part of the cached-plan key),
// exchanges and the batch path without touching their bit-identity
// guarantees: a strategy only picks plans and checkpoint policy, never how
// a chosen plan is metered.
type Strategy interface {
	// Name is the stable identifier used on the wire, in popsql \planner, in
	// popbench output and as the plan-cache key component.
	Name() string
	// Describe returns the one-line human description shown by \planner.
	Describe() string
	// PlanConfig applies the strategy's planning-side knobs to an optimizer
	// instance. It is called for every (re-)optimization of the statement,
	// after the caller's own Configure hook.
	PlanConfig(*optimizer.Optimizer)
	// Runtime rewrites the run options with the strategy's execution-side
	// knobs (POP on/off, checkpoint policy). It sees the caller's options and
	// must not touch fields it does not own.
	Runtime(Options) Options
}

// StrategyName is the stable identifier of a built-in strategy. It is a
// named type so switches dispatching on a strategy fall under poplint's
// exhaustive rule: adding a strategy without updating every switch is a
// lint error, not a silently ignored row.
type StrategyName string

// The built-in strategy names, in canonical display order.
const (
	// NameDPPOP names the engine default: DP join ordering + guarded POP.
	NameDPPOP StrategyName = "dp-pop"
	// NameGreedyPOP names greedy join ordering + guarded POP.
	NameGreedyPOP StrategyName = "greedy-pop"
	// NameGreedyOnly names greedy join ordering with adaptivity off.
	NameGreedyOnly StrategyName = "greedy-only"
	// NameReoptUnguarded names unguarded re-optimization at every checkpoint.
	NameReoptUnguarded StrategyName = "reopt-unguarded"
)

// strategy is the shared Strategy implementation: a name, a description and
// two optional hooks.
type strategy struct {
	name    StrategyName
	desc    string
	plan    func(*optimizer.Optimizer)
	runtime func(Options) Options
}

func (s *strategy) Name() string     { return string(s.name) }
func (s *strategy) Describe() string { return s.desc }

func (s *strategy) PlanConfig(opt *optimizer.Optimizer) {
	if s.plan != nil {
		s.plan(opt)
	}
}

func (s *strategy) Runtime(o Options) Options {
	if s.runtime != nil {
		return s.runtime(o)
	}
	return o
}

// greedyOrder is the shared planning hook of the greedy strategies.
func greedyOrder(opt *optimizer.Optimizer) { opt.JoinOrder = optimizer.JoinOrderGreedy }

var (
	// DPPOP is the engine default and the paper's configuration: exhaustive
	// DP join ordering plus progressive optimization with validity-range
	// guarded checkpoints.
	DPPOP Strategy = &strategy{
		name: NameDPPOP,
		desc: "DP join ordering + POP with validity-range checkpoints (the paper's configuration)",
	}

	// GreedyPOP plans the join order with the statistics-free greedy chain
	// but keeps POP's guarded checkpoints: planning is ~constant-time, and
	// mis-orderings the heuristic causes are caught and repaired at run time.
	GreedyPOP Strategy = &strategy{
		name: NameGreedyPOP,
		desc: "statistics-free greedy join ordering + POP validity-range checkpoints",
		plan: greedyOrder,
	}

	// GreedyOnly is the greedy planner with all adaptivity off: the cheapest
	// possible planning and zero runtime safety net — the janus-datalog
	// position that statistics (and re-optimization) are unnecessary.
	GreedyOnly Strategy = &strategy{
		name: NameGreedyOnly,
		desc: "statistics-free greedy join ordering, no re-optimization",
		plan: greedyOrder,
		runtime: func(o Options) Options {
			o.Enabled = false
			return o
		},
	}

	// ReoptUnguarded is the alternate plan-based AQP strategy from the
	// "Systematic Evaluation of Plan-based Adaptive Query Processing"
	// taxonomy: mid-query re-optimization WITHOUT validity ranges. Every
	// eligible edge is checkpointed (no bounded-range requirement) and check
	// ranges degenerate to the point estimate ([est/K, est·K] with K=1, the
	// [KD98] thresholds the paper argues against), so any deviation between
	// estimate and observation triggers an unconditional re-cost. Feedback
	// makes it converge — a re-placed checkpoint whose estimate now equals
	// the observed cardinality passes — and MaxReopts still bounds the
	// oscillation.
	ReoptUnguarded Strategy = &strategy{
		name: NameReoptUnguarded,
		desc: "DP join ordering + re-optimization at every checkpoint on any estimate deviation (no validity ranges)",
		runtime: func(o Options) Options {
			o.Enabled = true
			pol := o.Policy
			pol.RequireBoundedRange = false
			pol.FixedThresholdFactor = 1
			o.Policy = pol
			return o
		},
	}
)

// Strategies returns every built-in strategy in its canonical display order.
func Strategies() []Strategy {
	return []Strategy{DPPOP, GreedyPOP, GreedyOnly, ReoptUnguarded}
}

// StrategyByName resolves a strategy identifier (as sent on the wire or
// typed at \planner). The error lists the valid names.
func StrategyByName(name string) (Strategy, error) {
	for _, s := range Strategies() {
		if s.Name() == name {
			return s, nil
		}
	}
	names := make([]string, 0, len(Strategies()))
	for _, s := range Strategies() {
		names = append(names, s.Name())
	}
	sort.Strings(names)
	return nil, fmt.Errorf("pop: unknown planner strategy %q (valid: %s)", name, strings.Join(names, ", "))
}

// Resolve folds the Planner strategy into the concrete option fields: the
// runtime rewrite is applied, and PlanConfig is chained after the caller's
// Configure hook so every optimizer the run (or the plan cache's miss and
// re-optimize paths) constructs plans under the strategy. Resolving twice is
// a no-op, and a nil Planner returns the options unchanged — the default
// behavior is exactly DPPOP.
func (o Options) Resolve() Options {
	if o.Planner == nil || o.plannerResolved {
		return o
	}
	o = o.Planner.Runtime(o)
	user := o.Configure
	st := o.Planner
	o.Configure = func(opt *optimizer.Optimizer) {
		if user != nil {
			user(opt)
		}
		st.PlanConfig(opt)
	}
	o.plannerResolved = true
	return o
}
