package logical

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/types"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	mustCreate := func(name string, cols ...schema.Column) {
		if _, err := c.CreateTable(name, schema.New(cols...)); err != nil {
			t.Fatal(err)
		}
	}
	mustCreate("customer",
		schema.Column{Name: "c_custkey", Type: types.KindInt},
		schema.Column{Name: "c_name", Type: types.KindString},
	)
	mustCreate("orders",
		schema.Column{Name: "o_orderkey", Type: types.KindInt},
		schema.Column{Name: "o_custkey", Type: types.KindInt},
		schema.Column{Name: "o_date", Type: types.KindDate},
	)
	mustCreate("lineitem",
		schema.Column{Name: "l_orderkey", Type: types.KindInt},
		schema.Column{Name: "l_quantity", Type: types.KindFloat},
	)
	return c
}

func buildQ10ish(t *testing.T) *Query {
	t.Helper()
	b := NewBuilder(testCatalog(t))
	b.AddTable("customer", "c")
	b.AddTable("orders", "o")
	b.AddTable("lineitem", "l")
	b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("c", "c_custkey"), R: b.Col("o", "o_custkey")})
	b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("o", "o_orderkey"), R: b.Col("l", "l_orderkey")})
	b.Where(&expr.Cmp{Op: expr.LE, L: b.Col("l", "l_quantity"), R: b.Param(0)})
	b.SelectCol("c", "c_name")
	b.SelectAgg(AggSum, b.Col("l", "l_quantity"), "total_qty")
	b.GroupBy(b.Col("c", "c_name"))
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestGlobalIDLayout(t *testing.T) {
	q := buildQ10ish(t)
	if q.NumColumns() != 2+3+2 {
		t.Fatalf("NumColumns = %d", q.NumColumns())
	}
	if q.Base(0) != 0 || q.Base(1) != 2 || q.Base(2) != 5 {
		t.Errorf("bases = %d %d %d", q.Base(0), q.Base(1), q.Base(2))
	}
	// TableOf / OrdinalOf round trip.
	for ti := 0; ti < 3; ti++ {
		for ord := 0; ord < q.Schemas[ti].Len(); ord++ {
			g := q.GlobalID(ti, ord)
			if q.TableOf(g) != ti || q.OrdinalOf(g) != ord {
				t.Errorf("round trip failed for table %d ord %d (g=%d)", ti, ord, g)
			}
		}
	}
	if q.TableOf(-1) != -1 || q.TableOf(99) != -1 {
		t.Error("out-of-range TableOf should be -1")
	}
	if q.OrdinalOf(99) != -1 {
		t.Error("out-of-range OrdinalOf should be -1")
	}
}

func TestColumnNameAndType(t *testing.T) {
	q := buildQ10ish(t)
	if q.ColumnName(q.GlobalID(1, 2)) != "o.o_date" {
		t.Errorf("name = %s", q.ColumnName(q.GlobalID(1, 2)))
	}
	if q.ColumnType(q.GlobalID(1, 2)) != types.KindDate {
		t.Error("type lookup")
	}
	if q.ColumnType(99) != types.KindNull {
		t.Error("out-of-range type should be KindNull")
	}
	if q.ColumnName(99) != "$99" {
		t.Error("out-of-range name")
	}
}

func TestPredicateClassification(t *testing.T) {
	q := buildQ10ish(t)
	joins := q.JoinPredicates()
	if len(joins) != 2 {
		t.Fatalf("join predicates = %d, want 2", len(joins))
	}
	local := q.LocalPredicates(2) // lineitem has the param predicate
	if len(local) != 1 {
		t.Fatalf("lineitem local predicates = %d, want 1", len(local))
	}
	if !expr.HasParam(local[0]) {
		t.Error("lineitem local predicate should carry the param")
	}
	if len(q.LocalPredicates(0)) != 0 {
		t.Error("customer should have no local predicates")
	}
}

func TestTablesUsed(t *testing.T) {
	q := buildQ10ish(t)
	joins := q.JoinPredicates()
	m := q.TablesUsed(joins[0]) // c.c_custkey = o.o_custkey
	if m != 0b011 {
		t.Errorf("mask = %b", m)
	}
}

func TestNumParams(t *testing.T) {
	q := buildQ10ish(t)
	if q.NumParams != 1 {
		t.Errorf("NumParams = %d", q.NumParams)
	}
}

func TestQueryString(t *testing.T) {
	q := buildQ10ish(t)
	s := q.String()
	for _, want := range []string{"SELECT", "FROM customer c", "WHERE", "GROUP BY", "SUM", "?0"} {
		if !strings.Contains(s, want) {
			t.Errorf("query string %q missing %q", s, want)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	cat := testCatalog(t)

	b := NewBuilder(cat)
	b.AddTable("missing", "")
	if _, err := b.Build(); err == nil {
		t.Error("missing table should fail")
	}

	b = NewBuilder(cat)
	b.AddTable("customer", "c")
	b.AddTable("orders", "c") // duplicate alias
	if _, err := b.Build(); err == nil {
		t.Error("duplicate alias should fail")
	}

	b = NewBuilder(cat)
	b.AddTable("customer", "c")
	b.Col("zzz", "c_name")
	b.SelectCol("c", "c_name")
	if _, err := b.Build(); err == nil {
		t.Error("unknown alias should fail")
	}

	b = NewBuilder(cat)
	b.AddTable("customer", "c")
	b.SelectCol("c", "nope")
	if _, err := b.Build(); err == nil {
		t.Error("unknown column should fail")
	}

	b = NewBuilder(cat)
	if _, err := b.Build(); err == nil {
		t.Error("no tables should fail")
	}

	b = NewBuilder(cat)
	b.AddTable("customer", "c")
	if _, err := b.Build(); err == nil {
		t.Error("no select list should fail")
	}
}

func TestBuilderDefaultAliasAndExtras(t *testing.T) {
	b := NewBuilder(testCatalog(t))
	b.AddTable("customer", "")
	b.SelectExpr(&expr.Arith{Op: expr.Add, L: b.Col("customer", "c_custkey"), R: &expr.Const{Val: types.NewInt(1)}}, "plus1")
	b.OrderBy(b.Col("customer", "c_name"), true)
	b.Limit(10)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if q.Tables[0].Alias != "customer" {
		t.Error("default alias")
	}
	if q.Limit != 10 || len(q.OrderBy) != 1 || !q.OrderBy[0].Desc {
		t.Error("order/limit lost")
	}
	s := q.String()
	if !strings.Contains(s, "ORDER BY") || !strings.Contains(s, "DESC") || !strings.Contains(s, "LIMIT 10") {
		t.Errorf("string = %q", s)
	}
}

func TestWhereSplitsConjuncts(t *testing.T) {
	b := NewBuilder(testCatalog(t))
	b.AddTable("customer", "c")
	p1 := &expr.Cmp{Op: expr.GT, L: b.Col("c", "c_custkey"), R: &expr.Const{Val: types.NewInt(1)}}
	p2 := &expr.Cmp{Op: expr.LT, L: b.Col("c", "c_custkey"), R: &expr.Const{Val: types.NewInt(9)}}
	b.Where(&expr.Logic{Op: expr.And, Args: []expr.Expr{p1, p2}})
	b.SelectCol("c", "c_name")
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 2 {
		t.Errorf("conjuncts = %d, want 2", len(q.Where))
	}
}

func TestSelectItemString(t *testing.T) {
	if (SelectItem{Agg: AggCount}).String() != "COUNT(*)" {
		t.Error("COUNT(*) rendering")
	}
	if (SelectItem{Agg: AggAvg, E: &expr.ColRef{Pos: 1, Name: "x"}}).String() != "AVG(x)" {
		t.Error("AVG rendering")
	}
	if (SelectItem{E: &expr.ColRef{Pos: 1, Name: "x"}}).String() != "x" {
		t.Error("plain rendering")
	}
	for _, a := range []AggKind{AggCount, AggSum, AggMin, AggMax, AggAvg} {
		if a.String() == "" {
			t.Error("agg name empty")
		}
	}
}
