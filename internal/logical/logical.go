// Package logical defines the logical query representation consumed by the
// optimizer: a query block of base-table references, predicates, projections,
// grouping and ordering.
//
// Columns are identified by query-global ids. Table i's columns occupy the
// contiguous id range [base(i), base(i)+arity). Expressions at this level use
// global ids in their ColRef positions; the optimizer rewrites them to
// operator-input ordinals before execution.
package logical

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/types"
)

// TableRef is a base-table reference in the FROM list.
type TableRef struct {
	Table string // catalog table name
	Alias string
}

// AggKind enumerates the supported aggregate functions.
type AggKind uint8

// Aggregate kinds; AggNone marks a plain scalar projection.
const (
	AggNone AggKind = iota
	AggCount
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String returns the SQL name of the aggregate.
func (a AggKind) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	default:
		return ""
	}
}

// SelectItem is one output column: either a scalar expression (AggNone) or
// an aggregate over an expression.
type SelectItem struct {
	Agg  AggKind
	E    expr.Expr // nil for COUNT(*)
	Name string
}

// String renders the item for EXPLAIN.
func (s SelectItem) String() string {
	inner := "*"
	if s.E != nil {
		inner = s.E.String()
	}
	if s.Agg == AggNone {
		return inner
	}
	return fmt.Sprintf("%s(%s)", s.Agg, inner)
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	E    expr.Expr
	Desc bool
}

// Query is a resolved single-block query.
type Query struct {
	Tables  []TableRef
	Schemas []*schema.Schema // resolved schema per table ref
	Where   []expr.Expr      // conjunctive predicates over global column ids
	Select  []SelectItem
	GroupBy []expr.Expr // grouping keys (column refs)
	OrderBy []OrderItem
	Limit   int // 0 = unlimited

	// Distinct requests duplicate elimination over the select output.
	Distinct bool

	// NumParams is the number of distinct parameter markers in the query.
	NumParams int

	colBase []int
	numCols int
}

// finalize computes the global-id layout. Called by the Builder.
func (q *Query) finalize() {
	q.colBase = make([]int, len(q.Tables))
	id := 0
	for i, s := range q.Schemas {
		q.colBase[i] = id
		id += s.Len()
	}
	q.numCols = id
}

// NumColumns returns the total number of global column ids.
func (q *Query) NumColumns() int { return q.numCols }

// Base returns the first global id of table i's columns.
func (q *Query) Base(i int) int { return q.colBase[i] }

// TableOf returns the index of the table owning global column id g.
func (q *Query) TableOf(g int) int {
	i := sort.Search(len(q.colBase), func(i int) bool { return q.colBase[i] > g }) - 1
	if i < 0 || g >= q.numCols {
		return -1
	}
	return i
}

// OrdinalOf returns the within-table ordinal of global column id g.
func (q *Query) OrdinalOf(g int) int {
	t := q.TableOf(g)
	if t < 0 {
		return -1
	}
	return g - q.colBase[t]
}

// GlobalID returns the global id of column ord of table i.
func (q *Query) GlobalID(i, ord int) int { return q.colBase[i] + ord }

// ColumnName returns the display name "alias.column" for a global id.
func (q *Query) ColumnName(g int) string {
	t := q.TableOf(g)
	if t < 0 {
		return fmt.Sprintf("$%d", g)
	}
	return q.Tables[t].Alias + "." + q.Schemas[t].Col(g-q.colBase[t]).Name
}

// ColumnType returns the type of a global column id.
func (q *Query) ColumnType(g int) types.Kind {
	t := q.TableOf(g)
	if t < 0 {
		return types.KindNull
	}
	return q.Schemas[t].Col(g - q.colBase[t]).Type
}

// TablesUsed returns the bitmask of table indexes referenced by the
// expression (bit i = table i).
func (q *Query) TablesUsed(e expr.Expr) uint64 {
	var mask uint64
	for _, g := range expr.ColumnsUsed(e) {
		if t := q.TableOf(g); t >= 0 {
			mask |= 1 << uint(t)
		}
	}
	return mask
}

// LocalPredicates returns the WHERE conjuncts that reference only table i.
func (q *Query) LocalPredicates(i int) []expr.Expr {
	var out []expr.Expr
	for _, p := range q.Where {
		if q.TablesUsed(p) == 1<<uint(i) {
			out = append(out, p)
		}
	}
	return out
}

// JoinPredicates returns the WHERE conjuncts that reference more than one
// table.
func (q *Query) JoinPredicates() []expr.Expr {
	var out []expr.Expr
	for _, p := range q.Where {
		m := q.TablesUsed(p)
		if m != 0 && m&(m-1) != 0 { // more than one bit set
			out = append(out, p)
		}
	}
	return out
}

// String renders the query in SQL-ish form for diagnostics.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, s := range q.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.String())
	}
	b.WriteString(" FROM ")
	for i, t := range q.Tables {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.Table)
		if t.Alias != t.Table {
			b.WriteString(" " + t.Alias)
		}
	}
	if len(q.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, p := range q.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(p.String())
		}
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if len(q.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range q.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.E.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}

// BindParams returns a copy of q with every parameter marker replaced by its
// bound constant. The copy shares the (immutable) table references, schemas
// and global-id layout with q; only expression trees containing markers are
// rewritten. Queries without markers — or empty bindings — come back as q
// itself. Binding is an estimation-side tool: the optimizer and the plan
// cache estimate selectivities and compute feedback signatures on the bound
// copy while the executable plan keeps the markers.
func BindParams(q *Query, params []types.Datum) *Query {
	if q.NumParams == 0 || len(params) == 0 {
		return q
	}
	c := *q
	c.Where = make([]expr.Expr, len(q.Where))
	for i, p := range q.Where {
		c.Where[i] = expr.BindParams(p, params)
	}
	c.Select = make([]SelectItem, len(q.Select))
	for i, s := range q.Select {
		c.Select[i] = SelectItem{Agg: s.Agg, E: expr.BindParams(s.E, params), Name: s.Name}
	}
	c.GroupBy = make([]expr.Expr, len(q.GroupBy))
	for i, g := range q.GroupBy {
		c.GroupBy[i] = expr.BindParams(g, params)
	}
	c.OrderBy = make([]OrderItem, len(q.OrderBy))
	for i, o := range q.OrderBy {
		c.OrderBy[i] = OrderItem{E: expr.BindParams(o.E, params), Desc: o.Desc}
	}
	return &c
}

// Builder constructs resolved queries against a catalog.
type Builder struct {
	cat   *catalog.Catalog
	q     *Query
	alias map[string]int // alias -> table index
	err   error
}

// NewBuilder returns a builder bound to a catalog.
func NewBuilder(cat *catalog.Catalog) *Builder {
	return &Builder{cat: cat, q: &Query{}, alias: make(map[string]int)}
}

// AddTable appends a table reference; alias defaults to the table name.
// It returns the table index.
func (b *Builder) AddTable(table, alias string) int {
	if alias == "" {
		alias = table
	}
	t, err := b.cat.Table(table)
	if err != nil {
		b.fail(err)
		return -1
	}
	key := strings.ToLower(alias)
	if _, dup := b.alias[key]; dup {
		b.fail(fmt.Errorf("logical: duplicate alias %q", alias))
		return -1
	}
	b.q.Tables = append(b.q.Tables, TableRef{Table: t.Name, Alias: alias})
	b.q.Schemas = append(b.q.Schemas, t.Schema)
	idx := len(b.q.Tables) - 1
	b.alias[key] = idx
	return idx
}

// Col returns a column reference "alias.column" with its global id. The
// Builder must be finalized by Build before the id layout is meaningful, so
// Col computes the layout on demand.
func (b *Builder) Col(alias, column string) *expr.ColRef {
	key := strings.ToLower(alias)
	ti, ok := b.alias[key]
	if !ok {
		b.fail(fmt.Errorf("logical: unknown alias %q", alias))
		return &expr.ColRef{Pos: -1, Name: alias + "." + column}
	}
	ord := b.q.Schemas[ti].Ordinal(column)
	if ord < 0 {
		b.fail(fmt.Errorf("logical: unknown column %s.%s", alias, column))
		return &expr.ColRef{Pos: -1, Name: alias + "." + column}
	}
	base := 0
	for i := 0; i < ti; i++ {
		base += b.q.Schemas[i].Len()
	}
	return &expr.ColRef{Pos: base + ord, Name: alias + "." + column}
}

// Param allocates/returns a parameter marker with the given id.
func (b *Builder) Param(id int) *expr.Param {
	if id+1 > b.q.NumParams {
		b.q.NumParams = id + 1
	}
	return &expr.Param{ID: id}
}

// Distinct marks the query as SELECT DISTINCT.
func (b *Builder) Distinct() *Builder {
	b.q.Distinct = true
	return b
}

// Where adds a conjunct to the WHERE clause.
func (b *Builder) Where(p expr.Expr) *Builder {
	b.q.Where = append(b.q.Where, expr.Conjuncts(p)...)
	return b
}

// SelectCol adds a plain column projection.
func (b *Builder) SelectCol(alias, column string) *Builder {
	c := b.Col(alias, column)
	b.q.Select = append(b.q.Select, SelectItem{E: c, Name: c.Name})
	return b
}

// SelectExpr adds a scalar expression projection.
func (b *Builder) SelectExpr(e expr.Expr, name string) *Builder {
	b.q.Select = append(b.q.Select, SelectItem{E: e, Name: name})
	return b
}

// SelectAgg adds an aggregate projection; e may be nil for COUNT(*).
func (b *Builder) SelectAgg(agg AggKind, e expr.Expr, name string) *Builder {
	b.q.Select = append(b.q.Select, SelectItem{Agg: agg, E: e, Name: name})
	return b
}

// GroupBy adds grouping keys.
func (b *Builder) GroupBy(cols ...expr.Expr) *Builder {
	b.q.GroupBy = append(b.q.GroupBy, cols...)
	return b
}

// OrderBy adds an ordering key.
func (b *Builder) OrderBy(e expr.Expr, desc bool) *Builder {
	b.q.OrderBy = append(b.q.OrderBy, OrderItem{E: e, Desc: desc})
	return b
}

// Limit caps the result size.
func (b *Builder) Limit(n int) *Builder {
	b.q.Limit = n
	return b
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build finalizes and returns the query, or the first error encountered.
func (b *Builder) Build() (*Query, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.q.Tables) == 0 {
		return nil, fmt.Errorf("logical: query has no tables")
	}
	if len(b.q.Select) == 0 {
		return nil, fmt.Errorf("logical: query has no select list")
	}
	b.q.finalize()
	return b.q, nil
}
