package executor

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/optimizer"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/types"
)

// partitioned is implemented by leaf operators that can restrict themselves
// to one disjoint morsel stripe of their input. The exchange runtime applies
// it to every leaf of a partition clone.
type partitioned interface {
	setPartition(part, of int)
}

// tableScanNode scans a heap (or one morsel stripe of it) and applies the
// residual filter.
type tableScanNode struct {
	base
	ex     *Executor
	heap   *storage.Table
	filter expr.Expr
	npreds float64
	it     *storage.TableIterator

	out      *Batch // reusable output batch (batch mode)
	rowTicks int64  // pre-scaled per-scanned-row charge

	part, parts int // morsel stripe (parts == 0 → whole heap)
}

func (e *Executor) buildTableScan(p *optimizer.Plan) (Node, error) {
	if p.Table < 0 || p.Table >= len(e.tabs) {
		return nil, fmt.Errorf("executor: table index %d out of range", p.Table)
	}
	f, err := e.remap(p.Filter, p.Cols)
	if err != nil {
		return nil, err
	}
	return &tableScanNode{
		base:   base{plan: p},
		ex:     e,
		heap:   e.tabs[p.Table].Heap,
		filter: f,
		npreds: float64(len(expr.Conjuncts(p.Filter))),
	}, nil
}

func (n *tableScanNode) setPartition(part, of int) { n.part, n.parts = part, of }

func (n *tableScanNode) Open() error {
	if n.parts > 1 {
		n.it = n.heap.ScanPartition(n.part, n.parts)
	} else {
		n.it = n.heap.Scan()
	}
	n.stats = NodeStats{Opened: true}
	n.rowTicks = Ticks(n.ex.Cost.ScanRow + n.npreds*n.ex.Cost.PredEval)
	if n.ex.BatchSize > 0 && n.out == nil {
		n.out = NewBatch(n.ex.BatchSize)
	}
	return nil
}

func (n *tableScanNode) Rewind() error {
	n.it.Reset()
	n.stats.Done = false
	return nil
}

func (n *tableScanNode) Next() (schema.Row, bool, error) {
	pr := &n.ex.Cost
	for {
		row, _, ok := n.it.Next()
		if !ok {
			n.stats.Done = true
			return nil, false, nil
		}
		n.charge(n.ex, pr.ScanRow+n.npreds*pr.PredEval)
		keep, err := evalFilter(n.filter, n.ex.ectx, row)
		if err != nil {
			return nil, false, err
		}
		if keep {
			n.stats.RowsOut++
			return row, true, nil
		}
	}
}

// NextBatch scans rows into a reusable batch of heap-row references (heap
// rows are stable, so the batch is not ephemeral). Every scanned row —
// kept or filtered out — charges exactly the row path's per-row amount, in
// a single meter operation per batch.
func (n *tableScanNode) NextBatch(max int) (*Batch, error) {
	b := n.out
	b.Reset()
	if max <= 0 || max > cap(b.Rows) {
		max = cap(b.Rows)
	}
	scanned := 0
	for b.Len() < max {
		row, _, ok := n.it.Next()
		if !ok {
			n.stats.Done = true
			break
		}
		scanned++
		keep, err := evalFilter(n.filter, n.ex.ectx, row)
		if err != nil {
			n.chargeTicks(n.ex, n.rowTicks, scanned)
			return nil, err
		}
		if keep {
			b.Append(row)
		}
	}
	n.chargeTicks(n.ex, n.rowTicks, scanned)
	n.stats.RowsOut += float64(b.Len())
	if b.Len() == 0 {
		return nil, nil
	}
	return b, nil
}

func (n *tableScanNode) Close() error { return nil }

// indexScanNode performs a sargable B+tree range scan: it collects the
// qualifying rids in key order, fetches the rows and applies the residual
// filter. Bounds are constant expressions fixed at plan time.
type indexScanNode struct {
	base
	ex     *Executor
	ix     *storage.BTreeIndex
	filter expr.Expr
	npreds float64
	rids   []schema.RID
	pos    int

	out      *Batch // reusable output batch (batch mode)
	rowTicks int64  // pre-scaled per-fetched-row charge

	part, parts int // morsel stripe over the qualifying rids (parts == 0 → all)
}

func (e *Executor) buildIndexScan(p *optimizer.Plan) (Node, error) {
	t := e.tabs[p.Table]
	ix := t.BTreeOn(p.IndexOrd)
	if ix == nil {
		return nil, fmt.Errorf("executor: no B+tree on %s ordinal %d", t.Name, p.IndexOrd)
	}
	f, err := e.remap(p.Filter, p.Cols)
	if err != nil {
		return nil, err
	}
	return &indexScanNode{
		base:   base{plan: p},
		ex:     e,
		ix:     ix,
		filter: f,
		npreds: float64(len(expr.Conjuncts(p.Filter))),
	}, nil
}

func (n *indexScanNode) bound(e expr.Expr, inc bool) (storage.Bound, error) {
	if e == nil {
		return storage.Bound{}, nil
	}
	v, err := e.Eval(n.ex.ectx, nil)
	if err != nil {
		return storage.Bound{}, err
	}
	return storage.Bound{Value: &v, Inclusive: inc}, nil
}

func (n *indexScanNode) setPartition(part, of int) { n.part, n.parts = part, of }

// step returns the rid-list stride (1 when unpartitioned).
func (n *indexScanNode) step() int {
	if n.parts > 1 {
		return n.parts
	}
	return 1
}

func (n *indexScanNode) Open() error {
	n.stats = NodeStats{Opened: true}
	n.rids = n.rids[:0]
	n.pos = n.part
	p := n.plan
	lo, err := n.bound(p.IndexLo, p.IndexLoInc)
	if err != nil {
		return err
	}
	hi, err := n.bound(p.IndexHi, p.IndexHiInc)
	if err != nil {
		return err
	}
	pr := &n.ex.Cost
	// The B+tree descent happens once per logical scan; in a partitioned
	// scan only stripe 0 charges it so the work total matches the serial
	// plan exactly.
	if n.part == 0 {
		n.charge(n.ex, float64(n.ix.Height())*pr.IndexLevel)
	}
	n.ix.AscendRange(lo, hi, func(_ types.Datum, rid schema.RID) bool {
		n.rids = append(n.rids, rid)
		return true
	})
	n.rowTicks = Ticks(pr.FetchRow + n.npreds*pr.PredEval)
	if n.ex.BatchSize > 0 && n.out == nil {
		n.out = NewBatch(n.ex.BatchSize)
	}
	return nil
}

func (n *indexScanNode) Rewind() error {
	n.pos = n.part
	n.stats.Done = false
	return nil
}

func (n *indexScanNode) Next() (schema.Row, bool, error) {
	pr := &n.ex.Cost
	for n.pos < len(n.rids) {
		rid := n.rids[n.pos]
		n.pos += n.step()
		row, err := n.ix.Table().Get(rid)
		if err != nil {
			return nil, false, err
		}
		n.charge(n.ex, pr.FetchRow+n.npreds*pr.PredEval)
		keep, err := evalFilter(n.filter, n.ex.ectx, row)
		if err != nil {
			return nil, false, err
		}
		if keep {
			n.stats.RowsOut++
			return row, true, nil
		}
	}
	n.stats.Done = true
	return nil, false, nil
}

// NextBatch fetches qualifying rids into a reusable batch of stable heap
// rows, charging the row path's per-fetch amount once per batch. A fetch
// error is surfaced after charging the rows fetched so far, exactly like
// the row path (which charges after each successful Get).
func (n *indexScanNode) NextBatch(max int) (*Batch, error) {
	b := n.out
	b.Reset()
	if max <= 0 || max > cap(b.Rows) {
		max = cap(b.Rows)
	}
	fetched := 0
	for b.Len() < max && n.pos < len(n.rids) {
		rid := n.rids[n.pos]
		n.pos += n.step()
		row, err := n.ix.Table().Get(rid)
		if err != nil {
			n.chargeTicks(n.ex, n.rowTicks, fetched)
			return nil, err
		}
		fetched++
		keep, err := evalFilter(n.filter, n.ex.ectx, row)
		if err != nil {
			n.chargeTicks(n.ex, n.rowTicks, fetched)
			return nil, err
		}
		if keep {
			b.Append(row)
		}
	}
	n.chargeTicks(n.ex, n.rowTicks, fetched)
	if n.pos >= len(n.rids) {
		n.stats.Done = true
	}
	n.stats.RowsOut += float64(b.Len())
	if b.Len() == 0 {
		return nil, nil
	}
	return b, nil
}

func (n *indexScanNode) Close() error { return nil }

// mvScanNode streams a temporary materialized view (or one morsel stripe).
type mvScanNode struct {
	base
	ex  *Executor
	pos int

	part, parts int
}

func (e *Executor) buildMVScan(p *optimizer.Plan) (Node, error) {
	if p.MV == nil {
		return nil, fmt.Errorf("executor: MVSCAN without a view")
	}
	return &mvScanNode{base: base{plan: p}, ex: e}, nil
}

func (n *mvScanNode) setPartition(part, of int) { n.part, n.parts = part, of }

func (n *mvScanNode) step() int {
	if n.parts > 1 {
		return n.parts
	}
	return 1
}

func (n *mvScanNode) Open() error {
	n.stats = NodeStats{Opened: true}
	n.pos = n.part
	return nil
}

func (n *mvScanNode) Rewind() error {
	n.pos = n.part
	n.stats.Done = false
	return nil
}

func (n *mvScanNode) Next() (schema.Row, bool, error) {
	rows := n.plan.MV.Rows
	if n.pos >= len(rows) {
		n.stats.Done = true
		return nil, false, nil
	}
	row := rows[n.pos]
	n.pos += n.step()
	n.charge(n.ex, n.ex.Cost.TempRead)
	n.stats.RowsOut++
	return row, true, nil
}

func (n *mvScanNode) Close() error { return nil }

// hashLookupNode serves an equality predicate from a hash index: one O(1)
// probe, then fetch and residual-filter the qualifying rows.
type hashLookupNode struct {
	base
	ex     *Executor
	ix     *storage.HashIndex
	filter expr.Expr
	npreds float64
	rids   []schema.RID
	pos    int
}

func (e *Executor) buildHashLookup(p *optimizer.Plan) (Node, error) {
	t := e.tabs[p.Table]
	ix := t.HashOn(p.IndexOrd)
	if ix == nil {
		return nil, fmt.Errorf("executor: no hash index on %s ordinal %d", t.Name, p.IndexOrd)
	}
	f, err := e.remap(p.Filter, p.Cols)
	if err != nil {
		return nil, err
	}
	return &hashLookupNode{
		base:   base{plan: p},
		ex:     e,
		ix:     ix,
		filter: f,
		npreds: float64(len(expr.Conjuncts(p.Filter))),
	}, nil
}

func (n *hashLookupNode) Open() error {
	n.stats = NodeStats{Opened: true}
	n.rids = n.rids[:0]
	n.pos = 0
	key, err := n.plan.IndexLo.Eval(n.ex.ectx, nil)
	if err != nil {
		return err
	}
	n.charge(n.ex, n.ex.Cost.HashProbeRow)
	rids, _, err := n.ix.Lookup([]types.Datum{key})
	if err != nil {
		return err
	}
	n.rids = rids
	return nil
}

func (n *hashLookupNode) Rewind() error {
	n.pos = 0
	n.stats.Done = false
	return nil
}

func (n *hashLookupNode) Next() (schema.Row, bool, error) {
	pr := &n.ex.Cost
	for n.pos < len(n.rids) {
		rid := n.rids[n.pos]
		n.pos++
		row, err := n.ix.Table().Get(rid)
		if err != nil {
			return nil, false, err
		}
		n.charge(n.ex, pr.FetchRow+n.npreds*pr.PredEval)
		keep, err := evalFilter(n.filter, n.ex.ectx, row)
		if err != nil {
			return nil, false, err
		}
		if keep {
			n.stats.RowsOut++
			return row, true, nil
		}
	}
	n.stats.Done = true
	return nil, false, nil
}

func (n *hashLookupNode) Close() error { return nil }
