package executor

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/optimizer"
	"repro/internal/schema"
	"repro/internal/types"
)

// sortNode fully materializes and sorts its input on Open — a
// materialization point in the paper's sense, and therefore a lazy-check
// anchor and a reusable intermediate result.
type sortNode struct {
	base
	ex   *Executor
	keys []int // key positions in the row
	desc []bool
	rows []schema.Row
	pos  int
	done bool // materialization completed
}

func (e *Executor) buildSort(p *optimizer.Plan) (Node, error) {
	child, err := e.Build(p.Children[0])
	if err != nil {
		return nil, err
	}
	n := &sortNode{base: base{plan: p, children: []Node{child}}, ex: e}
	lay := layoutOf(p.Children[0].Cols)
	for _, k := range p.SortKeys {
		pos, err := lay.pos(p.Children[0].Cols, k.Col)
		if err != nil {
			return nil, err
		}
		n.keys = append(n.keys, pos)
		n.desc = append(n.desc, k.Desc)
	}
	return n, nil
}

// compareRows orders rows on the given key positions; NULLs sort first.
func compareRows(a, b schema.Row, keys []int, desc []bool) int {
	for i, k := range keys {
		av, bv := a[k], b[k]
		var c int
		switch {
		case av.IsNull() && bv.IsNull():
			c = 0
		case av.IsNull():
			c = -1
		case bv.IsNull():
			c = 1
		default:
			var err error
			c, err = av.Compare(bv)
			if err != nil {
				c = 0
			}
		}
		if desc != nil && desc[i] {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return 0
}

// drainMaterialize absorbs a materializing operator's entire input into
// dst, charging perRow work units for every row. In batch mode the child
// subtree runs its batch path and each absorbed batch costs one meter
// operation and O(1) copy allocations; the row path is charge-for-charge
// identical.
func (b *base) drainMaterialize(e *Executor, child Node, dst []schema.Row, perRow float64) ([]schema.Row, error) {
	if e.BatchSize > 0 {
		edge := e.batchEdge(child)
		t := Ticks(perRow)
		for {
			nb, err := edge.pull(0)
			if err != nil {
				return dst, err
			}
			if nb == nil {
				return dst, nil
			}
			dst = appendBatchRows(dst, nb)
			b.chargeTicks(e, t, nb.Len())
		}
	}
	for {
		row, ok, err := child.Next()
		if err != nil {
			return dst, err
		}
		if !ok {
			return dst, nil
		}
		b.charge(e, perRow)
		dst = append(dst, row)
	}
}

func (n *sortNode) Open() error {
	n.stats = NodeStats{Opened: true}
	n.rows = n.rows[:0]
	n.pos = 0
	n.done = false
	child := n.children[0]
	if err := child.Open(); err != nil {
		return err
	}
	pr := &n.ex.Cost
	var err error
	n.rows, err = n.drainMaterialize(n.ex, child, n.rows, pr.TempWrite)
	if err != nil {
		return err
	}
	cn := float64(len(n.rows))
	n.charge(n.ex, cn*math.Log2(cn+2)*pr.SortCmpRow)
	sort.SliceStable(n.rows, func(i, j int) bool {
		return compareRows(n.rows[i], n.rows[j], n.keys, n.desc) < 0
	})
	n.done = true
	return nil
}

func (n *sortNode) Rewind() error {
	n.pos = 0
	n.stats.Done = false
	return nil
}

func (n *sortNode) Next() (schema.Row, bool, error) {
	if n.pos >= len(n.rows) {
		n.stats.Done = true
		return nil, false, nil
	}
	row := n.rows[n.pos]
	n.pos++
	n.stats.RowsOut++
	return row, true, nil
}

func (n *sortNode) Close() error { return n.closeChildren() }

// Materialized exposes the sorted buffer once materialization completed.
func (n *sortNode) Materialized() ([]schema.Row, bool) { return n.rows, n.done }

// tempNode materializes its input into a buffer on Open and streams it out —
// the TEMP operator, the other lazy-check anchor, and the buffer that
// implements BUFCHECK when placed over a CHECK (paper §5: "we implement
// BUFCHECK by placing a TEMP over a CHECK").
type tempNode struct {
	base
	ex   *Executor
	rows []schema.Row
	pos  int
	done bool
}

func (e *Executor) buildTemp(p *optimizer.Plan) (Node, error) {
	child, err := e.Build(p.Children[0])
	if err != nil {
		return nil, err
	}
	return &tempNode{base: base{plan: p, children: []Node{child}}, ex: e}, nil
}

func (n *tempNode) Open() error {
	n.stats = NodeStats{Opened: true}
	n.rows = n.rows[:0]
	n.pos = 0
	n.done = false
	child := n.children[0]
	if err := child.Open(); err != nil {
		return err
	}
	var err error
	n.rows, err = n.drainMaterialize(n.ex, child, n.rows, n.ex.Cost.TempWrite)
	if err != nil {
		return err
	}
	n.done = true
	return nil
}

func (n *tempNode) Rewind() error {
	n.pos = 0
	n.stats.Done = false
	return nil
}

func (n *tempNode) Next() (schema.Row, bool, error) {
	if n.pos >= len(n.rows) {
		n.stats.Done = true
		return nil, false, nil
	}
	row := n.rows[n.pos]
	n.pos++
	n.charge(n.ex, n.ex.Cost.TempRead)
	n.stats.RowsOut++
	return row, true, nil
}

func (n *tempNode) Close() error { return n.closeChildren() }

// Materialized exposes the buffer once materialization completed.
func (n *tempNode) Materialized() ([]schema.Row, bool) { return n.rows, n.done }

// aggState accumulates one aggregate function.
type aggState struct {
	kind  logical.AggKind
	count float64
	sum   float64
	min   types.Datum
	max   types.Datum
	first types.Datum // representative value for plain items
	seen  bool
}

func (a *aggState) add(v types.Datum) {
	if !a.seen {
		a.first = v
		a.seen = true
	}
	if a.kind == logical.AggCount {
		if !v.IsNull() {
			a.count++
		}
		return
	}
	if v.IsNull() {
		return
	}
	switch a.kind {
	case logical.AggSum, logical.AggAvg:
		a.count++
		a.sum += v.Float()
	case logical.AggMin:
		if a.min.IsNull() || v.MustCompare(a.min) < 0 {
			a.min = v
		}
	case logical.AggMax:
		if a.max.IsNull() || v.MustCompare(a.max) > 0 {
			a.max = v
		}
	default:
		// AggCount returned above; AggNone only needs the representative
		// value captured by the seen check.
	}
}

func (a *aggState) result() types.Datum {
	switch a.kind {
	case logical.AggCount:
		return types.NewInt(int64(a.count))
	case logical.AggSum:
		if a.count == 0 {
			return types.Null
		}
		return types.NewFloat(a.sum)
	case logical.AggAvg:
		if a.count == 0 {
			return types.Null
		}
		return types.NewFloat(a.sum / a.count)
	case logical.AggMin:
		return a.min
	case logical.AggMax:
		return a.max
	default:
		return a.first
	}
}

// hashAggNode groups its input by the GroupBy keys and evaluates the select
// items per group: aggregates accumulate, plain items take the group's first
// row's value (they must be grouping columns for deterministic results).
type hashAggNode struct {
	base
	ex       *Executor
	keys     []int // positions of grouping columns in the child row
	items    []logical.SelectItem
	itemExpr []expr.Expr // remapped to child layout; nil for COUNT(*)
	groups   []schema.Row
	pos      int
	out      *Batch // reusable output batch (batch mode)
}

func (e *Executor) buildHashAgg(p *optimizer.Plan) (Node, error) {
	child, err := e.Build(p.Children[0])
	if err != nil {
		return nil, err
	}
	n := &hashAggNode{base: base{plan: p, children: []Node{child}}, ex: e, items: p.Items}
	lay := layoutOf(p.Children[0].Cols)
	for _, g := range p.GroupBy {
		pos, err := lay.pos(p.Children[0].Cols, g)
		if err != nil {
			return nil, err
		}
		n.keys = append(n.keys, pos)
	}
	for _, it := range p.Items {
		if it.E == nil {
			if it.Agg != logical.AggCount {
				return nil, fmt.Errorf("executor: aggregate %s requires an argument", it.Agg)
			}
			n.itemExpr = append(n.itemExpr, nil)
			continue
		}
		re, err := e.remap(it.E, p.Children[0].Cols)
		if err != nil {
			return nil, err
		}
		n.itemExpr = append(n.itemExpr, re)
	}
	return n, nil
}

// aggGroup is one grouping key's accumulator set.
type aggGroup struct {
	key    schema.Row
	states []*aggState
}

// aggBuilder holds the grouping hash table while an aggregation drains its
// input; emission order is first-encounter order, independent of hash
// values and batch boundaries.
type aggBuilder struct {
	n     *hashAggNode
	table map[uint64][]*aggGroup
	order []*aggGroup
}

// absorb folds one input row into its group. The row is only read — key
// datums are copied into the group key — so ephemeral batch rows are safe
// to absorb without cloning.
func (a *aggBuilder) absorb(row schema.Row) error {
	n := a.n
	hv := types.HashSeed
	for _, k := range n.keys {
		hv = row[k].HashFold(hv)
	}
	var g *aggGroup
	for _, cand := range a.table[hv] {
		match := true
		for i, k := range n.keys {
			if !cand.key[i].Equal(row[k]) {
				match = false
				break
			}
		}
		if match {
			g = cand
			break
		}
	}
	if g == nil {
		key := make(schema.Row, len(n.keys))
		for i, k := range n.keys {
			key[i] = row[k]
		}
		g = &aggGroup{key: key, states: make([]*aggState, len(n.items))}
		for i, it := range n.items {
			g.states[i] = &aggState{kind: it.Agg}
		}
		a.table[hv] = append(a.table[hv], g)
		a.order = append(a.order, g)
	}
	for i, st := range g.states {
		var v types.Datum
		if n.itemExpr[i] == nil {
			v = types.NewInt(1) // COUNT(*)
		} else {
			var err error
			v, err = n.itemExpr[i].Eval(n.ex.ectx, row)
			if err != nil {
				return err
			}
		}
		st.add(v)
	}
	return nil
}

func (n *hashAggNode) Open() error {
	n.stats = NodeStats{Opened: true}
	n.groups = n.groups[:0]
	n.pos = 0
	child := n.children[0]
	if err := child.Open(); err != nil {
		return err
	}
	pr := &n.ex.Cost
	a := &aggBuilder{n: n, table: make(map[uint64][]*aggGroup)}
	if n.ex.BatchSize > 0 {
		edge := n.ex.batchEdge(child)
		t := Ticks(pr.HashBuildRow)
		for {
			b, err := edge.pull(0)
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
			absorbed := 0
			for _, row := range b.Rows {
				absorbed++
				if err := a.absorb(row); err != nil {
					n.chargeTicks(n.ex, t, absorbed)
					return err
				}
			}
			n.chargeTicks(n.ex, t, absorbed)
		}
	} else {
		for {
			row, ok, err := child.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			n.charge(n.ex, pr.HashBuildRow)
			if err := a.absorb(row); err != nil {
				return err
			}
		}
	}
	// Degenerate aggregation without GROUP BY over empty input still yields
	// one group (COUNT(*) = 0).
	if len(a.order) == 0 && len(n.keys) == 0 {
		g := &aggGroup{states: make([]*aggState, len(n.items))}
		for i, it := range n.items {
			g.states[i] = &aggState{kind: it.Agg}
		}
		a.order = append(a.order, g)
	}
	for _, g := range a.order {
		n.charge(n.ex, pr.OutputRow)
		out := make(schema.Row, len(n.items))
		for i, st := range g.states {
			out[i] = st.result()
		}
		n.groups = append(n.groups, out)
	}
	return nil
}

// NextBatch streams the finalized groups, which are stable rows owned by
// the node, in the same first-encounter order as Next. All charging
// happened at Open (HashBuildRow per input row, OutputRow per group), same
// as the row path.
func (n *hashAggNode) NextBatch(max int) (*Batch, error) {
	if n.pos >= len(n.groups) {
		n.stats.Done = true
		return nil, nil
	}
	if n.out == nil {
		n.out = NewBatch(n.ex.BatchSize)
	}
	b := n.out
	b.Reset()
	if max <= 0 || max > cap(b.Rows) {
		max = cap(b.Rows)
	}
	for b.Len() < max && n.pos < len(n.groups) {
		b.Append(n.groups[n.pos])
		n.pos++
	}
	n.stats.RowsOut += float64(b.Len())
	return b, nil
}

func (n *hashAggNode) Rewind() error {
	n.pos = 0
	n.stats.Done = false
	return nil
}

func (n *hashAggNode) Next() (schema.Row, bool, error) {
	if n.pos >= len(n.groups) {
		n.stats.Done = true
		return nil, false, nil
	}
	row := n.groups[n.pos]
	n.pos++
	n.stats.RowsOut++
	return row, true, nil
}

func (n *hashAggNode) Close() error { return n.closeChildren() }

// Materialized exposes the group buffer; aggregation is a materialization.
func (n *hashAggNode) Materialized() ([]schema.Row, bool) {
	return n.groups, n.stats.Opened
}

// projectNode evaluates the select items per input row.
type projectNode struct {
	base
	ex    *Executor
	exprs []expr.Expr

	edge     *batchEdge // batch-mode child edge
	out      *Batch     // reusable output batch (batch mode)
	outTicks int64      // pre-scaled per-output-row charge
}

func (e *Executor) buildProject(p *optimizer.Plan) (Node, error) {
	child, err := e.Build(p.Children[0])
	if err != nil {
		return nil, err
	}
	n := &projectNode{base: base{plan: p, children: []Node{child}}, ex: e}
	for _, it := range p.Items {
		if it.E == nil {
			return nil, fmt.Errorf("executor: projection item without expression")
		}
		re, err := e.remap(it.E, p.Children[0].Cols)
		if err != nil {
			return nil, err
		}
		n.exprs = append(n.exprs, re)
	}
	return n, nil
}

func (n *projectNode) Open() error {
	n.stats = NodeStats{Opened: true}
	n.outTicks = Ticks(n.ex.Cost.OutputRow)
	if n.ex.BatchSize > 0 {
		n.edge = n.ex.batchEdge(n.children[0])
		if n.out == nil {
			n.out = NewBatch(n.ex.BatchSize)
		}
	}
	return n.children[0].Open()
}

func (n *projectNode) Next() (schema.Row, bool, error) {
	row, ok, err := n.children[0].Next()
	if err != nil || !ok {
		n.stats.Done = err == nil && !ok
		return nil, false, err
	}
	n.charge(n.ex, n.ex.Cost.OutputRow)
	out := make(schema.Row, len(n.exprs))
	for i, ex := range n.exprs {
		v, err := ex.Eval(n.ex.ectx, row)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	n.stats.RowsOut++
	return out, true, nil
}

// NextBatch evaluates the select items over one input batch, carving output
// rows from the reusable batch slab — one charge and O(1) allocations per
// batch instead of one of each per row. An evaluation error is surfaced
// after charging the rows processed so far (including the failing one),
// exactly matching the row path's charge-before-eval order.
func (n *projectNode) NextBatch(max int) (*Batch, error) {
	in, err := n.edge.pull(max)
	if err != nil {
		return nil, err
	}
	if in == nil {
		n.stats.Done = true
		return nil, nil
	}
	b := n.out
	b.Reset()
	processed := 0
	for _, row := range in.Rows {
		processed++
		out := b.Alloc(len(n.exprs))
		for i, ex := range n.exprs {
			v, err := ex.Eval(n.ex.ectx, row)
			if err != nil {
				n.chargeTicks(n.ex, n.outTicks, processed)
				return nil, err
			}
			out[i] = v
		}
	}
	n.chargeTicks(n.ex, n.outTicks, processed)
	n.stats.RowsOut += float64(b.Len())
	return b, nil
}

func (n *projectNode) Close() error { return n.closeChildren() }
