package executor

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/optimizer"
	"repro/internal/schema"
	"repro/internal/types"
)

// joinQuery builds emp ⋈ dept on e_dept = d_id, selecting plain columns so
// result rows are comparable across execution orders.
func joinQuery(t *testing.T, cat *catalog.Catalog) *logical.Query {
	t.Helper()
	b := logical.NewBuilder(cat)
	b.AddTable("emp", "e")
	b.AddTable("dept", "d")
	b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("e", "e_dept"), R: b.Col("d", "d_id")})
	b.SelectCol("e", "e_id")
	b.SelectCol("d", "d_name")
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// parallelOptimizer returns an optimizer that forces a hash join and plans
// for the given worker count.
func parallelOptimizer(cat *catalog.Catalog, workers int) *optimizer.Optimizer {
	opt := optimizer.New(cat)
	opt.DisableNLJN = true
	opt.DisableMGJN = true
	opt.Model.Params.Workers = workers
	return opt
}

// planContains reports whether any node of the plan satisfies pred.
func planContains(p *optimizer.Plan, pred func(*optimizer.Plan) bool) bool {
	if pred(p) {
		return true
	}
	for _, c := range p.Children {
		if planContains(c, pred) {
			return true
		}
	}
	return false
}

// execPlan runs a prebuilt plan at the given DOP override, returning rows,
// work, and the error Run surfaced.
func execPlan(t *testing.T, cat *catalog.Catalog, q *logical.Query, plan *optimizer.Plan,
	params optimizer.CostParams, dop int) ([]schema.Row, float64, error) {
	t.Helper()
	meter := &Meter{}
	ex, err := NewExecutor(cat, q, nil, params, meter)
	if err != nil {
		t.Fatal(err)
	}
	ex.DOP = dop
	root, err := ex.Build(plan)
	if err != nil {
		t.Fatalf("build: %v\n%s", err, optimizer.Explain(plan, q))
	}
	rows, runErr := Run(root)
	return rows, meter.Work(), runErr
}

func TestParallelPlanShape(t *testing.T) {
	cat := fixture(t)
	q := joinQuery(t, cat)

	serial, err := parallelOptimizer(cat, 1).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if planContains(serial, func(p *optimizer.Plan) bool { return p.Op == optimizer.OpExchange }) {
		t.Fatalf("Workers=1 plan contains an exchange:\n%s", optimizer.Explain(serial, q))
	}

	par, err := parallelOptimizer(cat, 4).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	explain := optimizer.Explain(par, q)
	if !planContains(par, func(p *optimizer.Plan) bool {
		return p.Op == optimizer.OpExchange && p.ExKind == optimizer.ExGather
	}) {
		t.Fatalf("Workers=4 plan has no gather exchange:\n%s", explain)
	}
	if !planContains(par, func(p *optimizer.Plan) bool {
		return p.Op == optimizer.OpExchange && p.ExKind == optimizer.ExRepart
	}) {
		t.Fatalf("Workers=4 plan has no repartition exchange:\n%s", explain)
	}
	if !strings.Contains(explain, "gather dop=4") || !strings.Contains(explain, "repart dop=4") {
		t.Fatalf("explain does not render exchanges:\n%s", explain)
	}
}

// TestParallelJoinRowsAndWork checks the two halves of the determinism
// contract: the parallel plan returns the same multiset of rows as the
// serial plan at every DOP, and its simulated work total is bit-for-bit
// identical across DOP.
func TestParallelJoinRowsAndWork(t *testing.T) {
	cat := fixture(t)
	q := joinQuery(t, cat)

	sopt := parallelOptimizer(cat, 1)
	serialPlan, err := sopt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	want, _, runErr := execPlan(t, cat, q, serialPlan, sopt.Model.Params, 0)
	if runErr != nil {
		t.Fatal(runErr)
	}
	if len(want) == 0 {
		t.Fatal("serial join returned no rows; fixture broken")
	}

	popt := parallelOptimizer(cat, 4)
	par, err := popt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	var baseWork float64
	for _, dop := range []int{1, 2, 8} {
		rows, work, runErr := execPlan(t, cat, q, par, popt.Model.Params, dop)
		if runErr != nil {
			t.Fatalf("dop=%d: %v", dop, runErr)
		}
		sameRows(t, rows, want, "parallel join vs serial")
		if dop == 1 {
			baseWork = work
		} else if work != baseWork {
			t.Errorf("dop=%d work %v differs from dop=1 work %v", dop, work, baseWork)
		}
	}
}

// TestParallelGatherScan covers the plain gather (no join): a single-table
// scan split into morsel stripes.
func TestParallelGatherScan(t *testing.T) {
	cat := fixture(t)
	b := logical.NewBuilder(cat)
	b.AddTable("emp", "e")
	b.Where(&expr.Cmp{Op: expr.GT, L: b.Col("e", "e_salary"), R: &expr.Const{Val: types.NewFloat(3000)}})
	b.SelectCol("e", "e_id")
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	sopt := parallelOptimizer(cat, 1)
	serialPlan, err := sopt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	want, _, runErr := execPlan(t, cat, q, serialPlan, sopt.Model.Params, 0)
	if runErr != nil {
		t.Fatal(runErr)
	}

	popt := parallelOptimizer(cat, 4)
	par, err := popt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if !planContains(par, func(p *optimizer.Plan) bool {
		return p.Op == optimizer.OpExchange && p.ExKind == optimizer.ExGather
	}) {
		t.Fatalf("Workers=4 scan plan has no gather:\n%s", optimizer.Explain(par, q))
	}
	var baseWork float64
	for _, dop := range []int{1, 2, 8} {
		rows, work, runErr := execPlan(t, cat, q, par, popt.Model.Params, dop)
		if runErr != nil {
			t.Fatalf("dop=%d: %v", dop, runErr)
		}
		sameRows(t, rows, want, "parallel scan vs serial")
		if dop == 1 {
			baseWork = work
		} else if work != baseWork {
			t.Errorf("dop=%d work %v differs from dop=1 work %v", dop, work, baseWork)
		}
	}
}

// hsjnUnderGather locates the partitioned hash join inside the plan.
func hsjnUnderGather(t *testing.T, p *optimizer.Plan) *optimizer.Plan {
	t.Helper()
	var join *optimizer.Plan
	var walk func(*optimizer.Plan)
	walk = func(n *optimizer.Plan) {
		if n.Op == optimizer.OpExchange && n.ExKind == optimizer.ExGather &&
			n.Children[0].Op == optimizer.OpHSJN {
			join = n.Children[0]
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p)
	if join == nil {
		t.Fatalf("no partitioned hash join in plan:\n%s", optimizer.Explain(p, nil))
	}
	return join
}

// TestParallelCheckUpperBound hammers a firing upper-bound CHECK inside a
// partitioned hash join: at every DOP exactly one CheckViolation escapes,
// and its observed cardinality is deterministically Hi+1 — the increment
// that crossed the bound — no matter how the workers race.
func TestParallelCheckUpperBound(t *testing.T) {
	cat := fixture(t)
	q := joinQuery(t, cat)
	popt := parallelOptimizer(cat, 4)
	par, err := popt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	join := hsjnUnderGather(t, par)
	const hi = 10
	meta := &optimizer.CheckMeta{
		ID:      90,
		Flavor:  optimizer.ECWC,
		Range:   optimizer.Range{Lo: 0, Hi: hi},
		EstCard: hi,
		Where:   "parallel probe edge",
	}
	join.Children[0] = optimizer.WrapCheck(join.Children[0], meta)

	for _, dop := range []int{1, 2, 8} {
		for iter := 0; iter < 20; iter++ {
			_, _, runErr := execPlan(t, cat, q, par, popt.Model.Params, dop)
			var cv *CheckViolation
			if !errors.As(runErr, &cv) {
				t.Fatalf("dop=%d iter=%d: want CheckViolation, got %v", dop, iter, runErr)
			}
			if cv.Check != meta {
				t.Fatalf("dop=%d: violation from wrong check %+v", dop, cv.Check)
			}
			if cv.Actual != hi+1 {
				t.Fatalf("dop=%d iter=%d: actual %v, want %d", dop, iter, cv.Actual, hi+1)
			}
		}
	}
}

// TestParallelCheckLowerBound fires the end-of-stream lower bound. The check
// is evaluated only when the last partition stream drains, after every row
// has flowed through the full plan — so the violation's cardinality is the
// exact edge count and the work total stays identical across DOP even
// though the run errors.
func TestParallelCheckLowerBound(t *testing.T) {
	cat := fixture(t)
	q := joinQuery(t, cat)
	popt := parallelOptimizer(cat, 4)
	par, err := popt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	join := hsjnUnderGather(t, par)
	meta := &optimizer.CheckMeta{
		ID:      91,
		Flavor:  optimizer.LC,
		Range:   optimizer.Range{Lo: 1e12, Hi: math.Inf(1)},
		EstCard: 1e12,
		Where:   "parallel probe edge",
	}
	join.Children[0] = optimizer.WrapCheck(join.Children[0], meta)

	var baseActual, baseWork float64
	var baseRows int
	for _, dop := range []int{1, 2, 8} {
		rows, work, runErr := execPlan(t, cat, q, par, popt.Model.Params, dop)
		var cv *CheckViolation
		if !errors.As(runErr, &cv) {
			t.Fatalf("dop=%d: want CheckViolation, got %v", dop, runErr)
		}
		if !cv.Exact {
			t.Fatalf("dop=%d: end-of-stream violation should carry the exact count", dop)
		}
		if dop == 1 {
			baseActual, baseWork, baseRows = cv.Actual, work, len(rows)
			if baseActual <= 0 {
				t.Fatalf("edge count %v, want > 0", baseActual)
			}
			continue
		}
		if cv.Actual != baseActual {
			t.Errorf("dop=%d actual %v differs from dop=1 actual %v", dop, cv.Actual, baseActual)
		}
		if work != baseWork {
			t.Errorf("dop=%d work %v differs from dop=1 work %v", dop, work, baseWork)
		}
		if len(rows) != baseRows {
			t.Errorf("dop=%d drained %d rows before the violation, dop=1 drained %d", dop, len(rows), baseRows)
		}
	}
}

// closeErrNode is a synthetic leaf that streams rows indefinitely and fails
// on Close — the shape a partition clone takes when its resource release
// breaks after the consumer stopped early.
type closeErrNode struct {
	base
	closeErr error
}

func (n *closeErrNode) Open() error { n.stats = NodeStats{Opened: true}; return nil }
func (n *closeErrNode) Next() (schema.Row, bool, error) {
	n.stats.RowsOut++
	return schema.Row{}, true, nil
}
func (n *closeErrNode) Close() error { return n.closeErr }

// TestGatherSurfacesCloseErrorOnEarlyClose pins that a worker clone's Close
// error survives an early (LIMIT-style) termination: the gather's abort
// drains the worker channel, and before the fix the drain silently discarded
// the error message the worker had delivered.
func TestGatherSurfacesCloseErrorOnEarlyClose(t *testing.T) {
	closeErr := errors.New("clone close failed")
	clone := &closeErrNode{base: base{plan: &optimizer.Plan{}}, closeErr: closeErr}
	ex := &Executor{Meter: &Meter{}}
	ex.stmt = ex.Meter
	g := &gatherNode{
		base:   base{plan: &optimizer.Plan{Op: optimizer.OpExchange}},
		ex:     ex,
		dop:    1,
		clones: []Node{clone},
		meters: []*Meter{{}},
	}
	if err := g.Open(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := g.Next(); err != nil || !ok {
		t.Fatalf("first row: ok=%v err=%v", ok, err)
	}
	// The consumer stops before end-of-stream, as a LIMIT does.
	if err := g.Close(); !errors.Is(err, closeErr) {
		t.Fatalf("gather Close dropped the clone's close error: got %v", err)
	}
}
