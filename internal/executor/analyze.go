package executor

// EXPLAIN ANALYZE support: after an execution, CollectStats folds the
// executable tree's per-node runtime counters into a stats tree that mirrors
// the plan, merging the partition clones a parallel plan created for one
// logical operator. FormatStats renders that tree in the style of
// optimizer.Explain, with the estimate and the observed cardinality side by
// side — the per-operator view of the estimation errors POP's checkpoints
// guard against.

import (
	"fmt"
	"runtime"
	"strings"

	"repro/internal/logical"
	"repro/internal/optimizer"
)

// ChargeAllocsPerRun measures the average heap allocations one work charge
// performs, in the style of testing.AllocsPerRun. The observability study
// uses it to certify the zero-overhead guarantee from the shipped binary:
// with analyze off the charge path must allocate nothing.
func ChargeAllocsPerRun(runs int, analyze bool) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	ex := &Executor{Meter: &Meter{}, Analyze: analyze}
	ex.stmt = ex.Meter
	b := &base{}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		b.charge(ex, 1)
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// extraWorker is implemented by nodes whose worker goroutines charge work
// that the consumer-thread charge path cannot attribute (the partitioned
// hash join's build/probe loops).
type extraWorker interface {
	extraWork() float64
}

// StatsNode is one logical operator's merged runtime stats. Clones reports
// how many executable instances (partition clones) were folded into it; 1
// for a serial operator.
type StatsNode struct {
	Plan     *optimizer.Plan
	Stats    NodeStats
	Clones   int
	Children []*StatsNode
}

// Walk visits the stats tree in pre-order.
func (sn *StatsNode) Walk(fn func(*StatsNode)) {
	if sn == nil {
		return
	}
	fn(sn)
	for _, c := range sn.Children {
		c.Walk(fn)
	}
}

// CollectStats folds an executable tree into a stats tree. Partition clones
// share their *optimizer.Plan pointers (every clone is built from the same
// plan fragment), so sibling instances of one logical operator are recognized
// by plan identity and merged: rows and work sum, Done requires every clone
// done, flags OR, FirstWork is the earliest touched reading and DoneWork the
// latest. Call it only on a quiescent tree — after Run returned or the POP
// controller harvested a violation.
func CollectStats(root Node) *StatsNode {
	return mergeClones([]*StatsNode{collectNode(root)})
}

func collectNode(n Node) *StatsNode {
	sn := &StatsNode{Plan: n.Plan(), Stats: *n.Stats(), Clones: 1}
	if ew, ok := n.(extraWorker); ok {
		sn.Stats.Work += ew.extraWork()
	}
	var order []*optimizer.Plan
	groups := make(map[*optimizer.Plan][]*StatsNode)
	for _, c := range n.Children() {
		cs := collectNode(c)
		if _, ok := groups[cs.Plan]; !ok {
			order = append(order, cs.Plan)
		}
		groups[cs.Plan] = append(groups[cs.Plan], cs)
	}
	for _, p := range order {
		sn.Children = append(sn.Children, mergeClones(groups[p]))
	}
	return sn
}

// mergeClones folds sibling instances of one logical operator into a single
// stats node. All instances share the plan node, and therefore the subtree
// shape, so children merge positionally.
func mergeClones(clones []*StatsNode) *StatsNode {
	if len(clones) == 1 {
		return clones[0]
	}
	out := &StatsNode{Plan: clones[0].Plan}
	s := &out.Stats
	s.Done = true
	for _, c := range clones {
		cs := c.Stats
		out.Clones += c.Clones
		s.RowsOut += cs.RowsOut
		s.Work += cs.Work
		s.Done = s.Done && cs.Done
		s.Opened = s.Opened || cs.Opened
		s.Spilled = s.Spilled || cs.Spilled
		s.Violated = s.Violated || cs.Violated
		if cs.Touched {
			if !s.Touched || cs.FirstWork < s.FirstWork {
				s.FirstWork = cs.FirstWork
			}
			s.Touched = true
			if cs.DoneWork > s.DoneWork {
				s.DoneWork = cs.DoneWork
			}
		}
		if cs.WallFirstNS != 0 && (s.WallFirstNS == 0 || cs.WallFirstNS < s.WallFirstNS) {
			s.WallFirstNS = cs.WallFirstNS
		}
		if cs.WallLastNS > s.WallLastNS {
			s.WallLastNS = cs.WallLastNS
		}
	}
	for i := range clones[0].Children {
		group := make([]*StatsNode, len(clones))
		for j, c := range clones {
			group[j] = c.Children[i]
		}
		out.Children = append(out.Children, mergeClones(group))
	}
	return out
}

// AnalyzeOptions selects optional EXPLAIN ANALYZE columns.
type AnalyzeOptions struct {
	// Wall includes each node's wall-clock span. Off by default: wall time is
	// nondeterministic, and the golden-file tests pin the deterministic
	// columns only.
	Wall bool
}

// FormatStats renders a stats tree in the style of optimizer.Explain, one
// node per line:
//
//	HSJN  est=3200.0 actual=41210 work=94611.0 dop=4 [spill]
//
// est is the optimizer's cardinality estimate, actual the rows the operator
// produced (summed over clones), work the simulated work units it charged
// (analyze mode only), dop the number of partition clones merged. Flags:
// [spill] grace-hash staging, [violated] the CHECK that stopped the attempt,
// [partial] opened but cancelled before end-of-stream, [unopened] never ran.
func FormatStats(sn *StatsNode, q *logical.Query, opts AnalyzeOptions) string {
	var b strings.Builder
	formatStatsNode(&b, sn, q, opts, 0)
	return b.String()
}

func formatStatsNode(b *strings.Builder, sn *StatsNode, q *logical.Query, opts AnalyzeOptions, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(optimizer.NodeLabel(sn.Plan, q))
	s := &sn.Stats
	fmt.Fprintf(b, "  est=%.1f actual=%.0f work=%.1f", sn.Plan.Card, s.RowsOut, s.Work)
	if sn.Clones > 1 {
		fmt.Fprintf(b, " dop=%d", sn.Clones)
	}
	if opts.Wall {
		fmt.Fprintf(b, " wall=%.3fms", float64(s.WallNS())/1e6)
	}
	switch {
	case !s.Opened:
		b.WriteString(" [unopened]")
	case s.Violated:
		b.WriteString(" [violated]")
	case !s.Done:
		b.WriteString(" [partial]")
	}
	if s.Spilled {
		b.WriteString(" [spill]")
	}
	b.WriteByte('\n')
	for _, c := range sn.Children {
		formatStatsNode(b, c, q, opts, depth+1)
	}
}

// ExplainAnalyze collects and renders an executed tree's runtime stats.
func ExplainAnalyze(root Node, q *logical.Query, opts AnalyzeOptions) string {
	return FormatStats(CollectStats(root), q, opts)
}
