package executor

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/optimizer"
	"repro/internal/schema"
	"repro/internal/trace"
)

// workerEvent emits one exchange-worker lifecycle event when tracing is on.
// Recorders must be concurrency-safe: this is called from worker goroutines.
func (e *Executor) workerEvent(kind trace.Kind, phase string, worker, dop int, rows, work float64) {
	if tr := e.Trace; tr != nil {
		tr.Record(trace.Event{
			Kind:   kind,
			Worker: &trace.WorkerInfo{Phase: phase, Worker: worker, DOP: dop, Rows: rows, Work: work},
		})
	}
}

// clampEvent emits a dop_clamp trace event recording that the worker gate
// granted fewer workers than the plan's DOP asked for (granted 0 = the
// exchange ran inline on the caller's goroutine).
func (e *Executor) clampEvent(want, granted int) {
	if tr := e.Trace; tr != nil {
		tr.Record(trace.Event{
			Kind:  trace.DOPClamp,
			Sched: &trace.SchedInfo{Want: want, Granted: granted},
		})
	}
}

// acquireWorkers resolves the width an exchange actually runs at. With no
// gate the plan's width is granted in full (the library's historical
// behavior). With a gate, the grant is whatever the pool can spare right
// now: less than asked clamps the DOP, and zero selects the inline fallback
// — dop 1 on the caller's goroutine with no spawned workers. The returned
// grant must be released exactly once by the owning node (poolleak checks
// this pairing).
func (e *Executor) acquireWorkers(want int) (dop int, grant workerGrant, inline bool) {
	if want < 1 {
		want = 1
	}
	if e.Gate == nil {
		return want, workerGrant{}, false
	}
	got := e.Gate.AcquireWorkers(want)
	grant = workerGrant{gate: e.Gate, n: got}
	if got < want {
		e.clampEvent(want, got)
	}
	if got < 1 {
		return 1, grant, true
	}
	return got, grant, false
}

// This file implements morsel-style intra-query parallelism: exchange
// operators (GATHER, and REPART folded into a partitioned hash join) that
// fan a plan fragment out across DOP workers.
//
// Determinism contract: the simulated work total of a parallel plan is
// bit-for-bit independent of the executed DOP. Every per-row charge uses the
// same weights at every DOP, one-time charges (exchange setup, index
// descent, spill staging) are issued exactly once per logical operator, and
// the meter accumulates integer ticks so the summation order across workers
// cannot perturb the total. Only wall-clock time scales with workers.
//
// Error contract: a CheckViolation (or any error) raised by one worker
// cancels its siblings via context, and the consumer does not observe the
// error until every worker of the exchange has flushed its local meter and
// exited — so the POP controller always harvests a quiescent tree.

// exchangeBuffer is the per-worker capacity of an exchange's output channel.
const exchangeBuffer = 64

// rowMsg carries one row (row mode), one transfer batch (batch mode), or a
// terminal error from a worker to the consumer. Batch and row payloads
// share one channel so the abort/drain/error-delivery contracts are
// identical in both modes.
type rowMsg struct {
	row   schema.Row
	batch *Batch
	err   error
}

// buildExchange dispatches a GATHER plan node to its executable form: a
// partitioned hash join when the gathered child is a hash join over two
// repartitioned inputs, a plain gather otherwise. Bare REPART nodes occur
// only as children of a partitioned join and are consumed by it.
func (e *Executor) buildExchange(p *optimizer.Plan) (Node, error) {
	if p.ExKind == optimizer.ExRepart {
		return nil, fmt.Errorf("executor: repartition exchange outside a partitioned hash join")
	}
	if c := p.Children[0]; c.Op == optimizer.OpHSJN && len(c.Children) == 2 &&
		isRepartEdge(c.Children[0]) && isRepartEdge(c.Children[1]) {
		return e.buildParallelHSJN(p, c)
	}
	return e.buildGather(p)
}

// isRepartEdge recognizes a repartitioned join input, possibly with CHECK
// operators layered on the edge by the POP post-pass.
func isRepartEdge(p *optimizer.Plan) bool {
	for p.Op == optimizer.OpCheck {
		p = p.Children[0]
	}
	return p.Op == optimizer.OpExchange && p.ExKind == optimizer.ExRepart
}

// stripRepart removes REPART exchange nodes from a join input's plan: the
// partitioned join performs the repartitioning itself. CHECK nodes on the
// edge are kept — their counters are shared across partition clones, so
// their position inside the partition pipeline does not change what they
// count.
func stripRepart(p *optimizer.Plan) *optimizer.Plan {
	if p.Op == optimizer.OpExchange && p.ExKind == optimizer.ExRepart {
		return stripRepart(p.Children[0])
	}
	changed := false
	kids := make([]*optimizer.Plan, len(p.Children))
	for i, c := range p.Children {
		kids[i] = stripRepart(c)
		changed = changed || kids[i] != c
	}
	if !changed {
		return p
	}
	n := optimizer.CloneNode(p)
	copy(n.Children, kids)
	return n
}

// applyPartition restricts every partitionable leaf of a clone to one morsel
// stripe.
func applyPartition(root Node, part, of int) {
	Walk(root, func(n Node) {
		if pn, ok := n.(partitioned); ok {
			pn.setPartition(part, of)
		}
	})
}

// buildClones builds one partition clone of the plan per worker, each
// charging a fresh worker-local meter.
func (e *Executor) buildClones(p *optimizer.Plan, dop int) (clones []Node, meters []*Meter, err error) {
	for i := 0; i < dop; i++ {
		lm := &Meter{}
		clone, err := e.workerCopy(lm).Build(p)
		if err != nil {
			return nil, nil, err
		}
		applyPartition(clone, i, dop)
		clones = append(clones, clone)
		meters = append(meters, lm)
	}
	return clones, meters, nil
}

// exchangeStub stands in for an exchange edge in the executable tree: it
// owns the partition clones of one plan fragment so tree walks (stats
// harvesting, check collection) can see them, while the enclosing operator
// drives the clones directly.
type exchangeStub struct {
	base
}

func newExchangeStub(p *optimizer.Plan, clones []Node) *exchangeStub {
	return &exchangeStub{base: base{plan: p, children: clones}}
}

func (s *exchangeStub) Open() error                     { s.stats.Opened = true; return nil }
func (s *exchangeStub) Next() (schema.Row, bool, error) { return nil, false, nil }
func (s *exchangeStub) Close() error                    { return nil }

// gatherNode runs DOP partition clones of its child concurrently and merges
// their output streams in arrival order. When the worker gate grants zero
// workers it degrades to an inline mode: one un-partitioned clone driven
// directly on the consumer's goroutine, charging exactly what a DOP-1
// gather charges but spawning nothing.
type gatherNode struct {
	base
	ex     *Executor
	dop    int
	clones []Node
	meters []*Meter
	grant  workerGrant
	inline bool

	ctx      context.Context
	cancel   context.CancelFunc
	ch       chan rowMsg
	wg       sync.WaitGroup
	stop     sync.Once
	opened   bool
	surfaced bool  // an error was already returned from Next
	drainErr error // first worker error discarded while draining on abort

	held   *Batch     // last delivered transfer batch, recycled on the next pull
	exRowT int64      // pre-scaled per-row exchange charge
	inEdge *batchEdge // inline batch mode: the clone's batch edge
}

func (e *Executor) buildGather(p *optimizer.Plan) (Node, error) {
	dop, grant, inline := e.acquireWorkers(e.dopFor(p))
	if inline {
		// Zero grant: build one full-width clone charging the consumer's
		// meter directly — no worker copy, no goroutines. Work is identical
		// to a DOP-1 gather (which is identical to every other DOP).
		clone, err := e.Build(p.Children[0])
		if err != nil {
			grant.release()
			return nil, err
		}
		applyPartition(clone, 0, 1)
		return &gatherNode{
			base:   base{plan: p, children: []Node{clone}},
			ex:     e,
			dop:    1,
			clones: []Node{clone},
			grant:  grant,
			inline: true,
		}, nil
	}
	clones, meters, err := e.buildClones(p.Children[0], dop)
	if err != nil {
		grant.release()
		return nil, err
	}
	return &gatherNode{
		base:   base{plan: p, children: clones},
		ex:     e,
		dop:    dop,
		clones: clones,
		meters: meters,
		grant:  grant,
	}, nil
}

func (n *gatherNode) Open() error {
	n.stats = NodeStats{Opened: true}
	n.exRowT = Ticks(n.ex.Cost.ExchangeRow)
	n.held = nil
	n.charge(n.ex, n.ex.Cost.ExchangeSetup)
	if n.inline {
		n.opened = true
		if err := n.clones[0].Open(); err != nil {
			return err
		}
		if n.ex.BatchSize > 0 {
			n.inEdge = n.ex.batchEdge(n.clones[0])
		}
		return nil
	}
	n.ctx, n.cancel = context.WithCancel(context.Background())
	n.ch = make(chan rowMsg, n.dop*exchangeBuffer)
	n.opened = true
	for i := range n.clones {
		n.wg.Add(1)
		go func(i int) {
			defer n.wg.Done()
			n.ex.workerEvent(trace.WorkerStart, "gather", i, n.dop, 0, 0)
			defer func() {
				work := n.meters[i].Work()
				n.meters[i].drain(n.ex.Meter)
				n.ex.workerEvent(trace.WorkerDrain, "gather", i, n.dop, n.clones[i].Stats().RowsOut, work)
			}()
			if n.ex.BatchSize > 0 {
				runPartitionBatched(n.ctx, n.ex, n.clones[i], n.ch)
			} else {
				runPartition(n.ctx, n.clones[i], n.ch)
			}
		}(i)
	}
	go func() {
		n.wg.Wait()
		close(n.ch)
	}()
	return nil
}

// runPartition drives one partition clone to completion, forwarding its rows
// (or its terminal error) to the consumer. Cancellation is a quiet stop: the
// canceller already holds the error that matters.
func runPartition(ctx context.Context, clone Node, ch chan<- rowMsg) {
	err := func() error {
		if err := clone.Open(); err != nil {
			return err
		}
		for {
			if ctx.Err() != nil {
				return nil
			}
			row, ok, err := clone.Next()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			select {
			case ch <- rowMsg{row: row}:
			case <-ctx.Done():
				return nil
			}
		}
	}()
	if cerr := clone.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		// The consumer (or an abort in progress) always drains the channel
		// until the closer goroutine closes it, so this send cannot deadlock
		// — same argument as the probe worker's error delivery. Racing it
		// against ctx.Done would randomly drop a cancelled clone's Close
		// error before the drain could retain it.
		ch <- rowMsg{err: err} //poplint:allow blockingcancel the consumer drains until the closer closes the channel, so this error delivery cannot wedge; a Done arm would race and drop the error
	}
}

// runPartitionBatched is runPartition's batch-mode form: it drives the
// clone through a batch edge and hands each batch to the consumer as a
// pooled transfer copy (the clone reuses its own buffer immediately, so the
// transfer must own its rows). Error and cancellation contracts are
// identical to the row form.
func runPartitionBatched(ctx context.Context, ex *Executor, clone Node, ch chan<- rowMsg) {
	err := func() error {
		if err := clone.Open(); err != nil {
			return err
		}
		edge := ex.batchEdge(clone)
		for {
			if ctx.Err() != nil {
				return nil
			}
			b, err := edge.pull(0)
			if err != nil {
				return err
			}
			if b == nil {
				return nil
			}
			tb := cloneForTransfer(b, ex.BatchSize)
			select {
			case ch <- rowMsg{batch: tb}:
			case <-ctx.Done():
				putBatch(tb)
				return nil
			}
		}
	}()
	if cerr := clone.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		ch <- rowMsg{err: err} //poplint:allow blockingcancel same drain invariant as runPartition: the consumer drains until close, so the unconditional error send cannot wedge
	}
}

func (n *gatherNode) Next() (schema.Row, bool, error) {
	if n.inline {
		row, ok, err := n.clones[0].Next()
		if err != nil || !ok {
			if err == nil {
				n.stats.Done = true
			}
			return nil, false, err
		}
		n.charge(n.ex, n.ex.Cost.ExchangeRow)
		n.stats.RowsOut++
		return row, true, nil
	}
	msg, ok := <-n.ch
	if !ok {
		n.stats.Done = true
		return nil, false, nil
	}
	if msg.err != nil {
		// Join the workers before surfacing the error: the POP controller
		// harvests stats from a tree it must be able to assume quiescent.
		n.surfaced = true
		n.abort()
		return nil, false, msg.err
	}
	n.charge(n.ex, n.ex.Cost.ExchangeRow)
	n.stats.RowsOut++
	return msg.row, true, nil
}

// NextBatch surfaces worker transfer batches in arrival order, charging
// ExchangeRow per logical row. max is advisory — a transfer batch arrives
// sized by its producing worker; an enclosing CHECK handles oversized
// batches through its crossing logic. The previously delivered batch is
// recycled to the pool, which is safe because the consumer's pull is the
// end of that batch's validity window.
func (n *gatherNode) NextBatch(max int) (*Batch, error) {
	if n.inline {
		// The clone's batch is returned directly: its validity window (until
		// the consumer's next pull) is exactly the edge's own, so no transfer
		// copy and no held recycling are needed.
		b, err := n.inEdge.pull(0)
		if err != nil {
			return nil, err
		}
		if b == nil {
			n.stats.Done = true
			return nil, nil
		}
		n.chargeTicks(n.ex, n.exRowT, b.Len())
		n.stats.RowsOut += float64(b.Len())
		return b, nil
	}
	if n.held != nil {
		putBatch(n.held)
		n.held = nil
	}
	msg, ok := <-n.ch
	if !ok {
		n.stats.Done = true
		return nil, nil
	}
	if msg.err != nil {
		n.surfaced = true
		n.abort()
		return nil, msg.err
	}
	n.chargeTicks(n.ex, n.exRowT, msg.batch.Len())
	n.stats.RowsOut += float64(msg.batch.Len())
	n.held = msg.batch
	return msg.batch, nil
}

// abort cancels outstanding workers and drains the channel until the closer
// goroutine closes it, guaranteeing every worker has exited and flushed. The
// first genuine worker error found while draining is retained: when the
// consumer stops early (LIMIT) rather than on a surfaced error, a clone's
// Close failure would otherwise vanish in the drain. A drained CheckViolation
// is not retained — a consumer that stopped needing rows makes a racing
// cardinality check moot.
func (n *gatherNode) abort() {
	n.stop.Do(func() {
		n.cancel()
		for msg := range n.ch {
			n.retainDrainErr(msg.err)
		}
	})
}

func (n *gatherNode) retainDrainErr(err error) {
	var cv *CheckViolation
	//poplint:allow chargeflow a drained violation is discarded as moot, not handled; surfaced violations are traced by the POP controller
	if err != nil && n.drainErr == nil && !errors.As(err, &cv) {
		n.drainErr = err
	}
}

func (n *gatherNode) Close() error {
	defer n.grant.release()
	if n.inline {
		return n.closeChildren() // the single inline clone
	}
	if !n.opened {
		return n.closeChildren()
	}
	n.abort() // workers close their own clones
	if n.held != nil {
		putBatch(n.held)
		n.held = nil
	}
	if n.surfaced {
		return nil // the error already reached the consumer via Next
	}
	return n.drainErr
}

// buildEntry is one hashed build row routed to a partition.
type buildEntry struct {
	row  schema.Row
	hash uint64
}

// parallelHSJNNode is the partitioned hash join: DOP workers drain morsel
// stripes of the build input and route rows to hash partitions by key hash;
// DOP workers then build one hash table per partition; DOP probe workers
// stream morsel stripes of the probe input, each probing only the partition
// its row hashes to. Its Plan() is the underlying HSJN node, so stats
// harvesting and build-reuse promotion see the join, not the exchange.
type parallelHSJNNode struct {
	base
	ex     *Executor
	gplan  *optimizer.Plan // the GATHER above the join (exchange charges)
	dop    int
	grant  workerGrant
	inline bool

	probeKeys []int
	buildKeys []int
	filter    expr.Expr

	probeClones, buildClones []Node
	probeMeters, buildMeters []*Meter
	probeStub, buildStub     *exchangeStub

	parts      []map[uint64][]schema.Row
	buildRows  []schema.Row
	buildDone  bool
	spillExtra float64

	// analyzeTicks accumulates the work this node's worker loops charge
	// (exchange routing, hash build/probe) in analyze mode. Worker loops run
	// concurrently, so attribution is batched per worker into an atomic and
	// folded into the node's stats at collection time via extraWork.
	analyzeTicks atomic.Int64

	ctx      context.Context
	cancel   context.CancelFunc
	ch       chan rowMsg
	wg       sync.WaitGroup
	stop     sync.Once
	opened   bool
	probes   bool // probe workers launched (ch live)
	surfaced bool // an error was already returned from Next
	drainErr error

	held   *Batch // last delivered transfer batch, recycled on the next pull
	exRowT int64  // pre-scaled per-row exchange charge

	// Inline (zero-grant) mode state: the single-partition probe runs on the
	// consumer's goroutine with a bucket cursor mirroring the serial hash
	// join's, charging exactly the worker-loop amounts.
	probeT, outT  int64      // pre-scaled per-probe-row / per-output-row ticks
	inEdge        *batchEdge // probe clone's batch edge (batch mode)
	curRow        schema.Row // probe row whose bucket is being drained
	curBucket     []schema.Row
	curIdx        int
	inBatch       *Batch // current probe batch (batch mode)
	inRowIdx      int
	srcDone       bool
	inlineDrained bool // finishInlineProbe ran
}

func (e *Executor) buildParallelHSJN(gp, jp *optimizer.Plan) (Node, error) {
	dop, grant, inline := e.acquireWorkers(e.dopFor(gp))
	n := &parallelHSJNNode{base: base{plan: jp}, ex: e, gplan: gp, dop: dop, grant: grant, inline: inline}
	built := false
	defer func() {
		if !built {
			n.grant.release()
		}
	}()
	var err error
	n.filter, err = e.remap(jp.Filter, jp.Cols)
	if err != nil {
		return nil, err
	}
	n.probeKeys, n.buildKeys, err = equiKeyPositions(jp)
	if err != nil {
		return nil, err
	}
	probePlan := stripRepart(jp.Children[0])
	buildPlan := stripRepart(jp.Children[1])
	n.probeClones, n.probeMeters, err = e.buildClones(probePlan, dop)
	if err != nil {
		return nil, err
	}
	n.buildClones, n.buildMeters, err = e.buildClones(buildPlan, dop)
	if err != nil {
		return nil, err
	}
	// The stubs carry the original (repartitioned) child plans so tree walks
	// see the join's edges with their original metadata.
	n.probeStub = newExchangeStub(jp.Children[0], n.probeClones)
	n.buildStub = newExchangeStub(jp.Children[1], n.buildClones)
	n.children = []Node{n.probeStub, n.buildStub}
	built = true
	return n, nil
}

// addAnalyzeTicks folds one worker's accumulated loop work into the node's
// atomic tick counter (fixed-point, so cross-worker summation order cannot
// perturb the total). Workers accumulate pre-scaled ticks in both row and
// batch mode, so the attributed Work is bit-identical across modes.
func (n *parallelHSJNNode) addAnalyzeTicks(t int64) {
	if t > 0 {
		n.analyzeTicks.Add(t)
	}
}

// extraWork reports the analyze-mode work charged by this node's worker
// loops, which runs outside the consumer-thread charge path. CollectStats
// folds it into the node's Work column.
func (n *parallelHSJNNode) extraWork() float64 {
	return float64(n.analyzeTicks.Load()) / meterTick
}

// BuildMaterialized exposes the completed partitioned build for temp-MV
// promotion, exactly like the serial hash join.
func (n *parallelHSJNNode) BuildMaterialized() ([]schema.Row, int, bool) {
	return n.buildRows, 1, n.buildDone
}

func (n *parallelHSJNNode) Open() error {
	n.stats = NodeStats{Opened: true}
	pr := &n.ex.Cost
	n.exRowT = Ticks(pr.ExchangeRow)
	n.held = nil
	// One setup charge per exchange in the plan fragment: the gather plus
	// the two repartitions.
	n.charge(n.ex, 3*pr.ExchangeSetup)
	n.ctx, n.cancel = context.WithCancel(context.Background())
	n.opened = true
	n.buildStub.stats.Opened = true
	if n.inline {
		return n.openInline()
	}

	// Phase 1: partitioned build. Each worker drains its morsel stripe into
	// per-worker, per-partition buffers — no locks on the hot path.
	bufs := make([][][]buildEntry, n.dop)
	all := make([][]schema.Row, n.dop)
	errs := make([]error, n.dop)
	var wg sync.WaitGroup
	for w := 0; w < n.dop; w++ {
		bufs[w] = make([][]buildEntry, n.dop)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n.ex.workerEvent(trace.WorkerStart, "build", w, n.dop, 0, 0)
			defer func() {
				work := n.buildMeters[w].Work()
				n.buildMeters[w].drain(n.ex.Meter)
				n.ex.workerEvent(trace.WorkerDrain, "build", w, n.dop, n.buildClones[w].Stats().RowsOut, work)
			}()
			errs[w] = n.runBuildWorker(w, bufs[w], &all[w])
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Retain the complete build input (worker order, so the retained rows
	// are deterministic for a given DOP) for temp-MV promotion.
	total := 0
	for w := range all {
		total += len(all[w])
	}
	n.buildRows = make([]schema.Row, 0, total)
	for w := range all {
		n.buildRows = append(n.buildRows, all[w]...)
	}
	n.buildDone = true
	n.buildStub.stats.RowsOut = float64(total)
	n.buildStub.stats.Done = true

	// Phase 2: one hash table per partition, built in parallel.
	n.parts = make([]map[uint64][]schema.Row, n.dop)
	for p := 0; p < n.dop; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cnt := 0
			for w := 0; w < n.dop; w++ {
				cnt += len(bufs[w][p])
			}
			table := make(map[uint64][]schema.Row, cnt)
			for w := 0; w < n.dop; w++ {
				for _, e := range bufs[w][p] {
					table[e.hash] = append(table[e.hash], e.row)
				}
			}
			n.parts[p] = table
		}(p)
	}
	wg.Wait()

	// Grace-hash staging charge, identical to the serial join's.
	buildRows := float64(total)
	width := float64(len(n.plan.Children[1].Cols)) * 12
	stages := 1.0
	if pr.MemoryBytes > 0 {
		for buildRows*width > stages*pr.MemoryBytes {
			stages++
		}
	}
	if stages > 1 {
		n.charge(n.ex, (stages-1)*buildRows*pr.SpillRow)
		n.spillExtra = (stages - 1) * pr.SpillRow
		n.stats.Spilled = true
	}

	// Phase 3: concurrent probe.
	n.ch = make(chan rowMsg, n.dop*exchangeBuffer)
	n.probes = true
	n.probeStub.stats.Opened = true
	for w := 0; w < n.dop; w++ {
		n.wg.Add(1)
		go n.runProbeWorker(w)
	}
	go func() {
		n.wg.Wait()
		// Aggregate the probe edge's stats before the close signals the
		// consumer (channel close is the happens-before edge).
		rows := 0.0
		done := true
		for _, c := range n.probeClones {
			rows += c.Stats().RowsOut
			done = done && c.Stats().Done
		}
		n.probeStub.stats.RowsOut = rows
		n.probeStub.stats.Done = done
		close(n.ch)
	}()
	return nil
}

// openInline is the zero-grant Open: build and probe both run at dop 1 on
// the consumer's goroutine. The build reuses runBuildWorker synchronously
// (it closes its own clone and drains into the worker meter, which is
// drained here), the single partition table is assembled in place, and the
// grace-staging charge is computed by the same formula as the concurrent
// path — so the simulated work total is bit-identical to every other DOP.
func (n *parallelHSJNNode) openInline() error {
	pr := &n.ex.Cost
	bufs := make([][]buildEntry, 1)
	var all []schema.Row
	err := n.runBuildWorker(0, bufs, &all)
	n.buildMeters[0].drain(n.ex.Meter)
	if err != nil {
		return err
	}
	n.buildRows = all
	n.buildDone = true
	n.buildStub.stats.RowsOut = float64(len(all))
	n.buildStub.stats.Done = true

	table := make(map[uint64][]schema.Row, len(bufs[0]))
	for _, e := range bufs[0] {
		table[e.hash] = append(table[e.hash], e.row)
	}
	n.parts = []map[uint64][]schema.Row{table}

	buildRows := float64(len(all))
	width := float64(len(n.plan.Children[1].Cols)) * 12
	stages := 1.0
	if pr.MemoryBytes > 0 {
		for buildRows*width > stages*pr.MemoryBytes {
			stages++
		}
	}
	if stages > 1 {
		n.charge(n.ex, (stages-1)*buildRows*pr.SpillRow)
		n.spillExtra = (stages - 1) * pr.SpillRow
		n.stats.Spilled = true
	}

	n.probeT = Ticks(pr.ExchangeRow + pr.HashProbeRow + n.spillExtra)
	n.outT = Ticks(pr.OutputRow)
	n.probeStub.stats.Opened = true
	if err := n.probeClones[0].Open(); err != nil {
		return err
	}
	if n.ex.BatchSize > 0 {
		n.inEdge = n.ex.batchEdge(n.probeClones[0])
	}
	return nil
}

// chargeInline charges worker-loop ticks from the inline probe loop: the
// meter funding matches a probe worker's (statement meter via the consumer)
// and the analyze attribution matches the concurrent path's extraWork.
func (n *parallelHSJNNode) chargeInline(t int64) {
	n.ex.Meter.AddTicks(t)
	if n.ex.Analyze {
		n.addAnalyzeTicks(t)
	}
}

// finishInlineProbe drains the probe clone's worker meter into the
// statement meter and folds its stats into the probe stub, mirroring what
// the concurrent probe workers and their closer goroutine do. Idempotent:
// called at end of stream and again from Close.
func (n *parallelHSJNNode) finishInlineProbe() {
	if n.inlineDrained {
		return
	}
	n.inlineDrained = true
	n.probeMeters[0].drain(n.ex.Meter)
	n.probeStub.stats.RowsOut = n.probeClones[0].Stats().RowsOut
	n.probeStub.stats.Done = n.probeClones[0].Stats().Done
}

// inlineNext is the row-mode inline probe loop: drain the current hash
// bucket's cursor, then advance to the next probe row. Charges are the
// probe worker's exactly — probeT per probe row (keyed or not), outT per
// emitted row — plus the consumer's ExchangeRow per delivered row.
func (n *parallelHSJNNode) inlineNext() (schema.Row, bool, error) {
	for {
		for n.curIdx < len(n.curBucket) {
			b := n.curBucket[n.curIdx]
			n.curIdx++
			if !keysEqual(n.curRow, n.probeKeys, b, n.buildKeys) {
				continue
			}
			joined := n.curRow.Concat(b)
			keep, ferr := evalFilter(n.filter, n.ex.ectx, joined)
			if ferr != nil {
				return nil, false, ferr
			}
			if !keep {
				continue
			}
			n.chargeInline(n.outT)
			n.charge(n.ex, n.ex.Cost.ExchangeRow)
			n.stats.RowsOut++
			return joined, true, nil
		}
		row, ok, err := n.probeClones[0].Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			n.stats.Done = true
			n.finishInlineProbe()
			return nil, false, nil
		}
		n.chargeInline(n.probeT)
		h, keyed := hashKeyAt(row, n.probeKeys)
		if !keyed {
			continue
		}
		n.curRow = row
		n.curBucket = n.parts[0][h]
		n.curIdx = 0
	}
}

// inlineNextBatch is the batch-mode inline probe loop: probe batches are
// pulled through the clone's batch edge (probeT per pulled row), joined
// rows are carved into a pooled output batch (outT per emitted row), and
// each delivered batch charges ExchangeRow per row — the exact tick totals
// of runProbeWorkerBatched plus the consumer's NextBatch charge.
func (n *parallelHSJNNode) inlineNextBatch() (*Batch, error) {
	if n.held != nil {
		putBatch(n.held)
		n.held = nil
	}
	if n.srcDone {
		return nil, nil
	}
	out := getBatch(n.ex.BatchSize)
	emitted := 0
	charge := func() {
		if emitted > 0 {
			n.chargeInline(mulTicksSat(n.outT, int64(emitted)))
			emitted = 0
		}
	}
	deliver := func() *Batch {
		charge()
		n.chargeTicks(n.ex, n.exRowT, out.Len())
		n.stats.RowsOut += float64(out.Len())
		n.held = out
		return out
	}
	for {
		if n.inBatch == nil || n.inRowIdx >= n.inBatch.Len() {
			b, err := n.inEdge.pull(0)
			if err != nil {
				charge()
				putBatch(out)
				return nil, err
			}
			if b == nil {
				n.srcDone = true
				n.stats.Done = true
				n.finishInlineProbe()
				if out.Len() == 0 {
					putBatch(out)
					return nil, nil
				}
				return deliver(), nil
			}
			n.chargeInline(mulTicksSat(n.probeT, int64(b.Len())))
			n.inBatch = b
			n.inRowIdx = 0
		}
		for n.inRowIdx < n.inBatch.Len() {
			row := n.inBatch.Rows[n.inRowIdx]
			n.inRowIdx++
			h, keyed := hashKeyAt(row, n.probeKeys)
			if !keyed {
				continue
			}
			for _, br := range n.parts[0][h] {
				if !keysEqual(row, n.probeKeys, br, n.buildKeys) {
					continue
				}
				joined := out.Alloc(len(row) + len(br))
				copy(joined, row)
				copy(joined[len(row):], br)
				keep, ferr := evalFilter(n.filter, n.ex.ectx, joined)
				if ferr != nil {
					out.dropLast(len(row) + len(br))
					charge()
					putBatch(out)
					return nil, ferr
				}
				if !keep {
					out.dropLast(len(row) + len(br))
					continue
				}
				emitted++
			}
			if out.Len() >= n.ex.BatchSize {
				return deliver(), nil
			}
		}
	}
}

// closeInline releases inline-mode resources: the probe clone (the build
// clone was closed by the synchronous runBuildWorker) and the held batch,
// then folds the probe stub stats for an early (LIMIT) stop.
func (n *parallelHSJNNode) closeInline() error {
	n.cancel()
	if n.held != nil {
		putBatch(n.held)
		n.held = nil
	}
	err := closeAll(n.probeClones)
	n.finishInlineProbe()
	return err
}

// runBuildWorker drains one build stripe, retaining rows and routing keyed
// rows into partition buffers. On error it cancels sibling workers. In
// batch mode the stripe is drained batch-at-a-time: each batch's rows are
// retained (cloned when ephemeral) and then routed, with one meter
// operation per batch.
func (n *parallelHSJNNode) runBuildWorker(w int, bufs [][]buildEntry, all *[]schema.Row) error {
	clone := n.buildClones[w]
	pr := &n.ex.Cost
	meter := n.buildMeters[w]
	rowT := Ticks(pr.ExchangeRow + pr.HashBuildRow)
	var awT int64 // loop ticks attributed to the join node in analyze mode
	defer func() { n.addAnalyzeTicks(awT) }()
	route := func(rows []schema.Row) {
		for _, row := range rows {
			if h, keyed := hashKeyAt(row, n.buildKeys); keyed {
				p := int(h % uint64(n.dop))
				bufs[p] = append(bufs[p], buildEntry{row: row, hash: h})
			}
		}
	}
	err := func() error {
		if err := clone.Open(); err != nil {
			return err
		}
		if n.ex.BatchSize > 0 {
			edge := n.ex.batchEdge(clone)
			for {
				if n.ctx.Err() != nil {
					return nil
				}
				b, err := edge.pull(0)
				if err != nil {
					return err
				}
				if b == nil {
					return nil
				}
				t := mulTicksSat(rowT, int64(b.Len()))
				meter.AddTicks(t)
				if n.ex.Analyze {
					awT += t
				}
				start := len(*all)
				*all = appendBatchRows(*all, b)
				route((*all)[start:])
			}
		}
		for {
			if n.ctx.Err() != nil {
				return nil
			}
			row, ok, err := clone.Next()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			meter.AddTicks(rowT)
			if n.ex.Analyze {
				awT += rowT
			}
			*all = append(*all, row)
			route((*all)[len(*all)-1:])
		}
	}()
	if cerr := clone.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		n.cancel()
	}
	return err
}

// runProbeWorker streams one probe stripe against the partitioned hash
// tables (read-only after phase 2), emitting joined rows to the consumer.
func (n *parallelHSJNNode) runProbeWorker(w int) {
	defer n.wg.Done()
	n.ex.workerEvent(trace.WorkerStart, "probe", w, n.dop, 0, 0)
	defer func() {
		work := n.probeMeters[w].Work()
		n.probeMeters[w].drain(n.ex.Meter)
		n.ex.workerEvent(trace.WorkerDrain, "probe", w, n.dop, n.probeClones[w].Stats().RowsOut, work)
	}()
	clone := n.probeClones[w]
	pr := &n.ex.Cost
	meter := n.probeMeters[w]
	probeT := Ticks(pr.ExchangeRow + pr.HashProbeRow + n.spillExtra)
	outT := Ticks(pr.OutputRow)
	var awT int64 // loop ticks attributed to the join node in analyze mode
	defer func() { n.addAnalyzeTicks(awT) }()
	err := func() error {
		if err := clone.Open(); err != nil {
			return err
		}
		if n.ex.BatchSize > 0 {
			return n.runProbeWorkerBatched(clone, meter, probeT, outT, &awT)
		}
		for {
			if n.ctx.Err() != nil {
				return nil
			}
			row, ok, err := clone.Next()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			meter.AddTicks(probeT)
			if n.ex.Analyze {
				awT += probeT
			}
			h, keyed := hashKeyAt(row, n.probeKeys)
			if !keyed {
				continue
			}
			for _, b := range n.parts[h%uint64(n.dop)][h] {
				if !keysEqual(row, n.probeKeys, b, n.buildKeys) {
					continue
				}
				joined := row.Concat(b)
				keep, ferr := evalFilter(n.filter, n.ex.ectx, joined)
				if ferr != nil {
					return ferr
				}
				if !keep {
					continue
				}
				meter.AddTicks(outT)
				if n.ex.Analyze {
					awT += outT
				}
				select {
				case n.ch <- rowMsg{row: joined}:
				case <-n.ctx.Done():
					return nil
				}
			}
		}
	}()
	if cerr := clone.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		// Deliver the error before cancelling the siblings: the consumer (or
		// an abort in progress) always drains the channel until the closer
		// goroutine closes it, so a blocking send cannot deadlock — whereas
		// cancelling first would race this send against the closed Done
		// channel and could drop the violation.
		n.ch <- rowMsg{err: err} //poplint:allow blockingcancel deliberate: deliver the error before cancel; the consumer drains until close, so this cannot wedge (see comment above)
		n.cancel()
	}
}

// runProbeWorkerBatched is the probe loop's batch-mode form: it pulls probe
// batches through a batch edge, carves joined rows into pooled transfer
// batches (flushed to the consumer at BatchSize), and issues one meter
// operation per probe batch plus one per batch of emitted rows — the exact
// tick totals of the row loop.
func (n *parallelHSJNNode) runProbeWorkerBatched(clone Node, meter *Meter, probeT, outT int64, awT *int64) error {
	edge := n.ex.batchEdge(clone)
	out := getBatch(n.ex.BatchSize)
	defer func() {
		if out != nil {
			putBatch(out)
		}
	}()
	// flush hands the accumulated transfer batch to the consumer; it reports
	// false when cancellation won the race, which ends the loop quietly.
	flush := func() bool {
		if out.Len() == 0 {
			return true
		}
		select {
		case n.ch <- rowMsg{batch: out}:
			out = getBatch(n.ex.BatchSize)
			return true
		case <-n.ctx.Done():
			return false
		}
	}
	for {
		if n.ctx.Err() != nil {
			return nil
		}
		b, err := edge.pull(0)
		if err != nil {
			return err
		}
		if b == nil {
			flush()
			return nil
		}
		t := mulTicksSat(probeT, int64(b.Len()))
		meter.AddTicks(t)
		if n.ex.Analyze {
			*awT += t
		}
		emitted := 0
		charge := func() {
			et := mulTicksSat(outT, int64(emitted))
			meter.AddTicks(et)
			if n.ex.Analyze {
				*awT += et
			}
		}
		for _, row := range b.Rows {
			h, keyed := hashKeyAt(row, n.probeKeys)
			if !keyed {
				continue
			}
			for _, br := range n.parts[h%uint64(n.dop)][h] {
				if !keysEqual(row, n.probeKeys, br, n.buildKeys) {
					continue
				}
				joined := out.Alloc(len(row) + len(br))
				copy(joined, row)
				copy(joined[len(row):], br)
				keep, ferr := evalFilter(n.filter, n.ex.ectx, joined)
				if ferr != nil {
					out.dropLast(len(row) + len(br))
					charge()
					return ferr
				}
				if !keep {
					out.dropLast(len(row) + len(br))
					continue
				}
				emitted++
				if out.Len() >= n.ex.BatchSize {
					if !flush() {
						charge()
						return nil
					}
				}
			}
		}
		charge()
	}
}

func (n *parallelHSJNNode) Next() (schema.Row, bool, error) {
	if n.inline {
		return n.inlineNext()
	}
	msg, ok := <-n.ch
	if !ok {
		n.stats.Done = true
		return nil, false, nil
	}
	if msg.err != nil {
		n.surfaced = true
		n.abort()
		return nil, false, msg.err
	}
	n.charge(n.ex, n.ex.Cost.ExchangeRow)
	n.stats.RowsOut++
	return msg.row, true, nil
}

// NextBatch surfaces probe-worker transfer batches in arrival order,
// charging ExchangeRow per logical row. max is advisory, exactly as for
// gatherNode.NextBatch; the previously delivered batch is recycled on the
// next pull.
func (n *parallelHSJNNode) NextBatch(max int) (*Batch, error) {
	if n.inline {
		return n.inlineNextBatch()
	}
	if n.held != nil {
		putBatch(n.held)
		n.held = nil
	}
	msg, ok := <-n.ch
	if !ok {
		n.stats.Done = true
		return nil, nil
	}
	if msg.err != nil {
		n.surfaced = true
		n.abort()
		return nil, msg.err
	}
	n.chargeTicks(n.ex, n.exRowT, msg.batch.Len())
	n.stats.RowsOut += float64(msg.batch.Len())
	n.held = msg.batch
	return msg.batch, nil
}

// abort mirrors gatherNode.abort, retaining the first genuine probe-worker
// error the drain would otherwise discard on an early (LIMIT) Close.
func (n *parallelHSJNNode) abort() {
	n.stop.Do(func() {
		n.cancel()
		if n.probes {
			for msg := range n.ch {
				n.retainDrainErr(msg.err)
			}
		}
	})
}

func (n *parallelHSJNNode) retainDrainErr(err error) {
	var cv *CheckViolation
	//poplint:allow chargeflow a drained violation is discarded as moot, not handled; surfaced violations are traced by the POP controller
	if err != nil && n.drainErr == nil && !errors.As(err, &cv) {
		n.drainErr = err
	}
}

func closeAll(nodes []Node) error {
	var first error
	for _, c := range nodes {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (n *parallelHSJNNode) Close() error {
	defer n.grant.release()
	if !n.opened {
		if err := closeAll(n.probeClones); err != nil {
			closeAll(n.buildClones)
			return err
		}
		return closeAll(n.buildClones)
	}
	if n.inline {
		return n.closeInline()
	}
	n.abort() // build workers already closed their clones; probe workers close theirs on exit
	if n.held != nil {
		putBatch(n.held)
		n.held = nil
	}
	if !n.probes {
		// Open failed during the build phase: the probe workers never
		// launched, so their clones are closed here.
		return closeAll(n.probeClones)
	}
	if n.surfaced {
		return nil // the error already reached the consumer via Next
	}
	return n.drainErr
}
