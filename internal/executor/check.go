package executor

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/optimizer"
	"repro/internal/schema"
	"repro/internal/trace"
	"repro/internal/types"
)

// CheckEventInfo builds the trace payload for a checkpoint event: the
// estimate the validity range was derived from, the observed cardinality,
// and the range itself (an unbounded upper limit becomes a nil RangeHi —
// JSON has no +Inf).
func CheckEventInfo(meta *optimizer.CheckMeta, actual float64, exact bool) *trace.CheckInfo {
	ci := &trace.CheckInfo{
		ID:      meta.ID,
		Flavor:  meta.Flavor.String(),
		Where:   meta.Where,
		Est:     meta.EstCard,
		Actual:  actual,
		Exact:   exact,
		RangeLo: meta.Range.Lo,
	}
	if !math.IsInf(meta.Range.Hi, 1) {
		ci.RangeHi = trace.Float(meta.Range.Hi)
	}
	return ci
}

// sharedCheck is the runtime state of one logical CHECK operator, shared by
// every partition-clone instance of it in a parallel plan. The row count is
// global and atomic, so a check split across DOP workers observes the same
// totals — and fires at the same count — as its serial form.
type sharedCheck struct {
	count     atomic.Int64 // rows observed across all instances
	streams   atomic.Int32 // built instances that have not yet hit end-of-stream
	validated atomic.Bool  // cardinality already validated (materializer fast path / rewind)
}

// checkRegistry maps CHECK metadata to its shared runtime state. One registry
// lives per statement executor; worker copies share it, so clones of the same
// plan-level CHECK resolve to the same counters.
type checkRegistry struct {
	mu sync.Mutex
	m  map[*optimizer.CheckMeta]*sharedCheck
}

func newCheckRegistry() *checkRegistry {
	return &checkRegistry{m: make(map[*optimizer.CheckMeta]*sharedCheck)}
}

// instance returns the shared state for a check, registering one more
// instance's stream. Registration happens at build time — before any worker
// runs — so a fast worker can never observe a stream count that later
// instances would still increment.
func (r *checkRegistry) instance(meta *optimizer.CheckMeta) *sharedCheck {
	r.mu.Lock()
	defer r.mu.Unlock()
	sc := r.m[meta]
	if sc == nil {
		sc = &sharedCheck{}
		r.m[meta] = sc
	}
	sc.streams.Add(1)
	return sc
}

// checkNode implements the CHECK operator of paper Figure 10 for check range
// [low, high]:
//
//	NEXT: count++; if count > high → re-optimize;
//	      if EOF and count < low → re-optimize.
//
// When its child is a materialization (SORT/TEMP/GRPBY), the check is
// evaluated once against the materialized count right after Open — the
// optimization the paper describes for checks above materialization points.
//
// In a parallel plan the same logical CHECK is cloned once per partition
// worker; all clones count into one sharedCheck. Exactly one violation
// escapes: the upper bound fires only in the instance whose increment first
// crossed it, and the lower bound is evaluated only when the last remaining
// stream reaches end-of-stream (a partial stream's count proves nothing).
type checkNode struct {
	base
	ex   *Executor
	sc   *sharedCheck
	skip bool // this instance validated at Open; per-row checks off
	eof  bool // this instance already accounted its end-of-stream

	edge    *batchEdge // batch-mode child edge
	pending error      // violation held until the truncated batch is delivered
	checkT  int64      // pre-scaled per-row CheckRow charge
}

func (e *Executor) buildCheck(p *optimizer.Plan) (Node, error) {
	child, err := e.Build(p.Children[0])
	if err != nil {
		return nil, err
	}
	return &checkNode{
		base: base{plan: p, children: []Node{child}},
		ex:   e,
		sc:   e.checks.instance(p.Check),
	}, nil
}

func (n *checkNode) violation(actual float64, exact bool) error {
	n.stats.Violated = true
	return &CheckViolation{
		Check:  n.plan.Check,
		Node:   n.plan,
		Actual: actual,
		Exact:  exact,
	}
}

// passed emits the exactly-once checkpoint_passed event. Both call sites sit
// behind an exactly-once guard (the validated CompareAndSwap, or the
// last-stream end-of-stream test), so a parallel plan traces one pass per
// logical CHECK, same as its serial form.
func (n *checkNode) passed(actual float64, exact bool) {
	if tr := n.ex.Trace; tr != nil {
		tr.Record(trace.Event{
			Kind:  trace.CheckpointPassed,
			Check: CheckEventInfo(n.plan.Check, actual, exact),
		})
	}
}

// touch records the statement-global work level at which this check first and
// last validated rows. Partition clones run against a worker-local meter, so
// the statement meter — not the worker's — is the clock FirstWork/DoneWork
// must be read from (statementWork folds both).
func (n *checkNode) touch() {
	if !n.stats.Touched {
		n.stats.Touched = true
		n.stats.FirstWork = n.ex.statementWork()
	}
	n.stats.DoneWork = n.ex.statementWork()
}

func (n *checkNode) Open() error {
	n.stats = NodeStats{Opened: true}
	n.pending = nil
	n.checkT = Ticks(n.ex.Cost.CheckRow)
	child := n.children[0]
	if err := child.Open(); err != nil {
		return err
	}
	if n.ex.BatchSize > 0 {
		n.edge = n.ex.batchEdge(child)
	}
	// Lazy checks above materialization points validate once, against the
	// completed materialization's exact cardinality. Under parallelism only
	// the first instance to reach this point validates.
	if m, ok := child.(Materializer); ok {
		if rows, done := m.Materialized(); done {
			if n.sc.validated.CompareAndSwap(false, true) {
				card := float64(len(rows))
				n.charge(n.ex, n.ex.Cost.CheckRow)
				n.touch()
				if !n.plan.Check.Range.Contains(card) {
					return n.violation(card, true)
				}
				n.passed(card, true)
			}
			n.skip = true
		}
	}
	return nil
}

func (n *checkNode) Next() (schema.Row, bool, error) {
	child := n.children[0]
	row, ok, err := child.Next()
	if err != nil {
		return nil, false, err
	}
	if n.skip || n.sc.validated.Load() {
		if ok {
			n.stats.RowsOut++
		} else {
			n.stats.Done = true
		}
		return row, ok, nil
	}
	r := n.plan.Check.Range
	if !ok {
		n.stats.Done = true
		if !n.eof {
			n.eof = true
			// The lower bound needs the complete edge cardinality, so it is
			// tested only by whichever instance drains the last live stream.
			// That final evaluation also carries the single end-of-stream
			// CheckRow charge, keeping the work total DOP-independent.
			if n.sc.streams.Add(-1) == 0 {
				n.charge(n.ex, n.ex.Cost.CheckRow)
				n.touch()
				c := float64(n.sc.count.Load())
				if c < r.Lo {
					return nil, false, n.violation(c, true)
				}
				n.passed(c, true)
			}
		}
		return nil, false, nil
	}
	n.charge(n.ex, n.ex.Cost.CheckRow)
	n.touch()
	c := n.sc.count.Add(1)
	if float64(c) > r.Hi {
		// Eager detection: the actual cardinality is at least count — a
		// lower bound that already proves the range violated. Exactly one
		// instance fires: the one whose increment first crossed the bound.
		// Racing siblings past the bound stop emitting quietly and are
		// cancelled by the enclosing exchange.
		if c == int64(r.Hi)+1 {
			return nil, false, n.violation(float64(c), false)
		}
		return nil, false, nil
	}
	n.stats.RowsOut++
	return row, true, nil
}

// NextBatch is the batched CHECK: it counts whole batches into the shared
// counter and raises a violation at exactly the same logical row as the row
// path. The pull size is clamped so a serial stream's crossing batch holds
// exactly the rows up to and including count == Hi+1 — the violating row is
// truncated from the delivered batch and the violation is either returned
// immediately (empty batch) or held in pending until the next pull, mirroring
// the row path's row-by-row delivery order. CheckRow is charged once per
// batch, pre-scaled, so work totals are bit-identical to row mode.
func (n *checkNode) NextBatch(max int) (*Batch, error) {
	if n.pending != nil {
		err := n.pending
		n.pending = nil
		return nil, err
	}
	r := n.plan.Check.Range
	passthrough := n.skip || n.sc.validated.Load()
	lim := max
	if lim <= 0 || lim > n.edge.size {
		lim = n.edge.size
	}
	if !passthrough && !math.IsInf(r.Hi, 1) {
		// Never pull past the crossing row: the batch that crosses the upper
		// bound then holds exactly the rows to emit plus the violating row.
		if rem := int64(r.Hi) + 1 - n.sc.count.Load(); rem < int64(lim) {
			lim = int(rem)
			if lim < 1 {
				lim = 1
			}
		}
	}
	b, err := n.edge.pull(lim)
	if err != nil {
		return nil, err
	}
	if passthrough {
		if b == nil {
			n.stats.Done = true
			return nil, nil
		}
		n.stats.RowsOut += float64(b.Len())
		return b, nil
	}
	if b == nil {
		n.stats.Done = true
		if !n.eof {
			n.eof = true
			if n.sc.streams.Add(-1) == 0 {
				n.chargeTicks(n.ex, n.checkT, 1)
				n.touch()
				c := float64(n.sc.count.Load())
				if c < r.Lo {
					return nil, n.violation(c, true)
				}
				n.passed(c, true)
			}
		}
		return nil, nil
	}
	k := b.Len()
	n.chargeTicks(n.ex, n.checkT, k)
	n.touch()
	c := n.sc.count.Add(int64(k))
	prev := c - int64(k)
	if float64(c) > r.Hi {
		if float64(prev) > r.Hi {
			// A sibling instance already crossed the bound; stop emitting
			// quietly — the enclosing exchange cancels this stream.
			return nil, nil
		}
		// This batch contains the crossing row: emit the rows below the
		// bound, report the violation at count == Hi+1.
		emit := int(int64(r.Hi) - prev)
		b.Rows = b.Rows[:emit]
		viol := n.violation(r.Hi+1, false)
		if emit == 0 {
			return nil, viol
		}
		n.pending = viol
		n.stats.RowsOut += float64(emit)
		return b, nil
	}
	n.stats.RowsOut += float64(k)
	return b, nil
}

func (n *checkNode) Close() error { return n.closeChildren() }

// Rewind restarts the output stream when the child supports it; the
// per-row check is not repeated (the cardinality was already validated).
func (n *checkNode) Rewind() error {
	rw, ok := n.children[0].(Rewinder)
	if !ok {
		return errNotRewindable(n.children[0])
	}
	if err := rw.Rewind(); err != nil {
		return err
	}
	n.sc.validated.Store(true) // first pass validated the count
	n.skip = true
	n.stats.Done = false
	return nil
}

func errNotRewindable(n Node) error {
	return &notRewindableError{op: n.Plan().Op}
}

type notRewindableError struct{ op optimizer.OpKind }

func (e *notRewindableError) Error() string {
	return "executor: " + e.op.String() + " does not support rewind"
}

// RowDigest hashes a full row to a stable 64-bit identity. ECDC's deferred
// compensation uses it as the surrogate rid for derived rows (the paper
// constructs rids for rows derived from base tables).
func RowDigest(row schema.Row) uint64 {
	h := types.HashSeed
	for _, d := range row {
		h = d.HashFold(h)
	}
	return h
}

// ReturnedSet is the ECDC side table S: a multiset of the digests of rows
// already returned to the application during a prior partial execution.
type ReturnedSet struct {
	counts map[uint64]int
	total  int
}

// NewReturnedSet returns an empty side table.
func NewReturnedSet() *ReturnedSet {
	return &ReturnedSet{counts: make(map[uint64]int)}
}

// Add records one returned row.
func (s *ReturnedSet) Add(row schema.Row) {
	s.counts[RowDigest(row)]++
	s.total++
}

// Len returns the number of recorded rows.
func (s *ReturnedSet) Len() int { return s.total }

// Merge folds another set's contents into this one. The POP runner records
// each attempt's emissions separately and merges them afterwards — rows
// returned within an attempt must not be compensated against that same
// attempt's later output.
func (s *ReturnedSet) Merge(o *ReturnedSet) {
	for d, c := range o.counts {
		s.counts[d] += c
		s.total += c
	}
}

// Remove consumes one occurrence of the row if present, reporting whether it
// was. The anti-join uses multiset semantics so duplicate result rows are
// compensated exactly once each.
func (s *ReturnedSet) Remove(row schema.Row) bool {
	d := RowDigest(row)
	if s.counts[d] > 0 {
		s.counts[d]--
		s.total--
		return true
	}
	return false
}

// insertRidNode is ECDC's INSERT operator: it records every row flowing to
// the application in the side table, transparently passing rows through.
type insertRidNode struct {
	base
	ex   *Executor
	side *ReturnedSet
}

// NewInsertRid wraps a node so every emitted row is recorded in side.
func NewInsertRid(ex *Executor, child Node, side *ReturnedSet) Node {
	p := child.Plan()
	return &insertRidNode{base: base{plan: p, children: []Node{child}}, ex: ex, side: side}
}

func (n *insertRidNode) Open() error {
	n.stats = NodeStats{Opened: true}
	return n.children[0].Open()
}

func (n *insertRidNode) Next() (schema.Row, bool, error) {
	row, ok, err := n.children[0].Next()
	if err != nil || !ok {
		n.stats.Done = err == nil && !ok
		return nil, false, err
	}
	n.charge(n.ex, n.ex.Cost.TempWrite)
	n.side.Add(row)
	n.stats.RowsOut++
	return row, true, nil
}

func (n *insertRidNode) Close() error { return n.closeChildren() }

// antiJoinNode compensates a re-optimized pipelined plan: rows found in the
// side table were already returned in the initial run and are suppressed
// (set-difference via NOT EXISTS on the rid side table, paper Figure 9).
type antiJoinNode struct {
	base
	ex   *Executor
	side *ReturnedSet
}

// NewAntiJoin wraps a node, suppressing rows present in side.
func NewAntiJoin(ex *Executor, child Node, side *ReturnedSet) Node {
	p := child.Plan()
	return &antiJoinNode{base: base{plan: p, children: []Node{child}}, ex: ex, side: side}
}

func (n *antiJoinNode) Open() error {
	n.stats = NodeStats{Opened: true}
	return n.children[0].Open()
}

func (n *antiJoinNode) Next() (schema.Row, bool, error) {
	for {
		row, ok, err := n.children[0].Next()
		if err != nil || !ok {
			n.stats.Done = err == nil && !ok
			return nil, false, err
		}
		n.charge(n.ex, n.ex.Cost.HashProbeRow)
		if n.side.Remove(row) {
			continue // already returned during the initial run
		}
		n.stats.RowsOut++
		return row, true, nil
	}
}

func (n *antiJoinNode) Close() error { return n.closeChildren() }
