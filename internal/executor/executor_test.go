package executor

import (
	"math"
	"sort"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/optimizer"
	"repro/internal/schema"
	"repro/internal/types"
)

// fixture builds a small three-table star: emp → dept → loc, with indexes
// and statistics.
func fixture(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	locs, err := c.CreateTable("loc", schema.New(
		schema.Column{Name: "l_id", Type: types.KindInt},
		schema.Column{Name: "l_city", Type: types.KindString},
	))
	if err != nil {
		t.Fatal(err)
	}
	cities := []string{"paris", "tokyo", "lima", "oslo", "cairo"}
	for i, city := range cities {
		locs.Heap.MustInsert(schema.Row{types.NewInt(int64(i)), types.NewString(city)})
	}
	depts, err := c.CreateTable("dept", schema.New(
		schema.Column{Name: "d_id", Type: types.KindInt},
		schema.Column{Name: "d_name", Type: types.KindString},
		schema.Column{Name: "d_loc", Type: types.KindInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		depts.Heap.MustInsert(schema.Row{
			types.NewInt(int64(i)),
			types.NewString([]string{"eng", "sales", "hr", "ops"}[i%4]),
			types.NewInt(int64(i % 5)),
		})
	}
	emps, err := c.CreateTable("emp", schema.New(
		schema.Column{Name: "e_id", Type: types.KindInt},
		schema.Column{Name: "e_dept", Type: types.KindInt},
		schema.Column{Name: "e_salary", Type: types.KindFloat},
		schema.Column{Name: "e_name", Type: types.KindString},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		emps.Heap.MustInsert(schema.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 20)),
			types.NewFloat(float64(1000 + (i*37)%5000)),
			types.NewString("emp" + string(rune('a'+i%26))),
		})
	}
	for _, ix := range [][3]string{
		{"dept_pk", "dept", "d_id"},
		{"emp_dept", "emp", "e_dept"},
		{"loc_pk", "loc", "l_id"},
	} {
		if _, err := c.CreateBTreeIndex(ix[0], ix[1], ix[2]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	return c
}

// runPlan compiles a query with the given optimizer, executes it, and
// returns the result rows.
func runPlan(t *testing.T, opt *optimizer.Optimizer, q *logical.Query, params []types.Datum) []schema.Row {
	t.Helper()
	plan, err := opt.Optimize(q)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	ex, err := NewExecutor(opt.Cat, q, params, opt.Model.Params, &Meter{})
	if err != nil {
		t.Fatal(err)
	}
	root, err := ex.Build(plan)
	if err != nil {
		t.Fatalf("build %v:\n%s", err, optimizer.Explain(plan, q))
	}
	rows, err := Run(root)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, optimizer.Explain(plan, q))
	}
	return rows
}

// canon renders rows as sorted strings for multiset comparison.
func canon(rows []schema.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func sameRows(t *testing.T, got, want []schema.Row, label string) {
	t.Helper()
	g, w := canon(got), canon(want)
	if len(g) != len(w) {
		t.Fatalf("%s: got %d rows, want %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: row %d: got %s, want %s", label, i, g[i], w[i])
		}
	}
}

func TestScanWithFilter(t *testing.T) {
	cat := fixture(t)
	b := logical.NewBuilder(cat)
	b.AddTable("emp", "e")
	b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("e", "e_id"), R: &expr.Const{Val: types.NewInt(10)}})
	b.SelectCol("e", "e_id")
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rows := runPlan(t, optimizer.New(cat), q, nil)
	if len(rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(rows))
	}
}

// reference computes emp⋈dept⋈loc with a filter on e_id by brute force.
func reference(t *testing.T, cat *catalog.Catalog, maxEID int64) []schema.Row {
	t.Helper()
	emp, _ := cat.Table("emp")
	dept, _ := cat.Table("dept")
	loc, _ := cat.Table("loc")
	var out []schema.Row
	eit := emp.Heap.Scan()
	for {
		e, _, ok := eit.Next()
		if !ok {
			break
		}
		if e[0].Int() >= maxEID {
			continue
		}
		dit := dept.Heap.Scan()
		for {
			d, _, ok := dit.Next()
			if !ok {
				break
			}
			if d[0].Int() != e[1].Int() {
				continue
			}
			lit := loc.Heap.Scan()
			for {
				l, _, ok := lit.Next()
				if !ok {
					break
				}
				if l[0].Int() != d[2].Int() {
					continue
				}
				out = append(out, schema.Row{e[0], d[1], l[1]})
			}
		}
	}
	return out
}

func threeWayQuery(t *testing.T, cat *catalog.Catalog, maxEID int64) *logical.Query {
	t.Helper()
	b := logical.NewBuilder(cat)
	b.AddTable("emp", "e")
	b.AddTable("dept", "d")
	b.AddTable("loc", "l")
	b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("e", "e_dept"), R: b.Col("d", "d_id")})
	b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("d", "d_loc"), R: b.Col("l", "l_id")})
	b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("e", "e_id"), R: &expr.Const{Val: types.NewInt(maxEID)}})
	b.SelectCol("e", "e_id")
	b.SelectCol("d", "d_name")
	b.SelectCol("l", "l_city")
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestJoinMethodsAgree runs the same 3-way join with each join method forced
// and checks every one returns the brute-force reference result.
func TestJoinMethodsAgree(t *testing.T) {
	cat := fixture(t)
	want := reference(t, cat, 50)
	if len(want) == 0 {
		t.Fatal("reference result empty; fixture broken")
	}
	configs := map[string]func(*optimizer.Optimizer){
		"default":   func(o *optimizer.Optimizer) {},
		"onlyHSJN":  func(o *optimizer.Optimizer) { o.DisableNLJN = true; o.DisableMGJN = true },
		"onlyMGJN":  func(o *optimizer.Optimizer) { o.DisableNLJN = true; o.DisableHSJN = true },
		"onlyNLJN":  func(o *optimizer.Optimizer) { o.DisableHSJN = true; o.DisableMGJN = true },
		"naiveNLJN": func(o *optimizer.Optimizer) { o.DisableHSJN = true; o.DisableMGJN = true; o.DisableIndexJoin = true },
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			opt := optimizer.New(cat)
			cfg(opt)
			q := threeWayQuery(t, cat, 50)
			got := runPlan(t, opt, q, nil)
			sameRows(t, got, want, name)
		})
	}
}

func TestPlanShapesDiffer(t *testing.T) {
	cat := fixture(t)
	q := threeWayQuery(t, cat, 50)

	onlyHash := optimizer.New(cat)
	onlyHash.DisableNLJN = true
	onlyHash.DisableMGJN = true
	p1, err := onlyHash.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Count(optimizer.OpHSJN) != 2 {
		t.Errorf("expected 2 hash joins:\n%s", optimizer.Explain(p1, q))
	}
	onlyMerge := optimizer.New(cat)
	onlyMerge.DisableNLJN = true
	onlyMerge.DisableHSJN = true
	p2, err := onlyMerge.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Count(optimizer.OpMGJN) != 2 {
		t.Errorf("expected 2 merge joins:\n%s", optimizer.Explain(p2, q))
	}
}

func TestAggregationAndOrdering(t *testing.T) {
	cat := fixture(t)
	b := logical.NewBuilder(cat)
	b.AddTable("emp", "e")
	b.AddTable("dept", "d")
	b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("e", "e_dept"), R: b.Col("d", "d_id")})
	b.SelectCol("d", "d_name")
	b.SelectAgg(logical.AggCount, nil, "n")
	b.SelectAgg(logical.AggSum, b.Col("e", "e_salary"), "total")
	b.SelectAgg(logical.AggMin, b.Col("e", "e_salary"), "lo")
	b.SelectAgg(logical.AggMax, b.Col("e", "e_salary"), "hi")
	b.SelectAgg(logical.AggAvg, b.Col("e", "e_salary"), "avg")
	b.GroupBy(b.Col("d", "d_name"))
	b.OrderBy(b.Col("d", "d_name"), false)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rows := runPlan(t, optimizer.New(cat), q, nil)
	if len(rows) != 4 {
		t.Fatalf("got %d groups, want 4", len(rows))
	}
	// Ordered ascending by name.
	names := []string{}
	var totalCount int64
	for _, r := range rows {
		names = append(names, r[0].Str())
		totalCount += r[1].Int()
		// AVG consistency.
		if math.Abs(r[5].Float()-r[2].Float()/float64(r[1].Int())) > 1e-6 {
			t.Errorf("avg inconsistent for %s", r[0])
		}
		if r[3].Float() > r[5].Float() || r[5].Float() > r[4].Float() {
			t.Errorf("min <= avg <= max violated for %s", r[0])
		}
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("groups not ordered: %v", names)
	}
	if totalCount != 500 {
		t.Errorf("counts sum to %d, want 500", totalCount)
	}
}

func TestOrderByDescAndLimit(t *testing.T) {
	cat := fixture(t)
	b := logical.NewBuilder(cat)
	b.AddTable("emp", "e")
	b.SelectCol("e", "e_id")
	b.OrderBy(b.Col("e", "e_id"), true)
	b.Limit(5)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rows := runPlan(t, optimizer.New(cat), q, nil)
	if len(rows) != 5 {
		t.Fatalf("limit: got %d rows", len(rows))
	}
	for i, r := range rows {
		if r[0].Int() != int64(499-i) {
			t.Errorf("row %d = %v, want %d", i, r[0], 499-i)
		}
	}
}

func TestParameterMarkerExecution(t *testing.T) {
	cat := fixture(t)
	b := logical.NewBuilder(cat)
	b.AddTable("emp", "e")
	b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("e", "e_id"), R: b.Param(0)})
	b.SelectCol("e", "e_id")
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rows := runPlan(t, optimizer.New(cat), q, []types.Datum{types.NewInt(25)})
	if len(rows) != 25 {
		t.Fatalf("got %d rows, want 25", len(rows))
	}
	// Unbound param should error at runtime.
	opt := optimizer.New(cat)
	plan, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	ex, _ := NewExecutor(cat, q, nil, opt.Model.Params, &Meter{})
	root, err := ex.Build(plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(root); err == nil {
		t.Error("unbound parameter should error")
	}
}

func TestMeterAccumulates(t *testing.T) {
	cat := fixture(t)
	q := threeWayQuery(t, cat, 100)
	opt := optimizer.New(cat)
	plan, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	meter := &Meter{}
	ex, _ := NewExecutor(cat, q, nil, opt.Model.Params, meter)
	root, err := ex.Build(plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(root); err != nil {
		t.Fatal(err)
	}
	if meter.Work() <= 0 {
		t.Error("meter should accumulate work")
	}
}

// wrapCheck inserts a CHECK above the given plan node.
func wrapCheck(p *optimizer.Plan, r optimizer.Range, flavor optimizer.CheckFlavor) *optimizer.Plan {
	return &optimizer.Plan{
		Op:       optimizer.OpCheck,
		Children: []*optimizer.Plan{p},
		Check:    &optimizer.CheckMeta{ID: 1, Flavor: flavor, Range: r, EstCard: p.Card},
		Cols:     p.Cols,
		Card:     p.Card,
	}
}

func TestCheckUpperViolation(t *testing.T) {
	cat := fixture(t)
	b := logical.NewBuilder(cat)
	b.AddTable("emp", "e")
	b.SelectCol("e", "e_id")
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt := optimizer.New(cat)
	plan, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	// Insert CHECK below the projection with an upper bound of 100: the scan
	// produces 500 rows, so the check must fire with a lower-bound count.
	plan.Children[0] = wrapCheck(plan.Children[0], optimizer.Range{Lo: 0, Hi: 100}, optimizer.ECDC)
	ex, _ := NewExecutor(cat, q, nil, opt.Model.Params, &Meter{})
	root, err := ex.Build(plan)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(root)
	cv, ok := err.(*CheckViolation)
	if !ok {
		t.Fatalf("want CheckViolation, got %v", err)
	}
	if cv.Exact {
		t.Error("streaming upper violation should be a lower bound, not exact")
	}
	if cv.Actual != 101 {
		t.Errorf("violation at count %v, want 101", cv.Actual)
	}
	if !strings.Contains(cv.Error(), "CHECK #1") {
		t.Errorf("error text: %s", cv.Error())
	}
}

func TestCheckLowerViolationAtEOF(t *testing.T) {
	cat := fixture(t)
	b := logical.NewBuilder(cat)
	b.AddTable("emp", "e")
	b.SelectCol("e", "e_id")
	q, _ := b.Build()
	opt := optimizer.New(cat)
	plan, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	plan.Children[0] = wrapCheck(plan.Children[0], optimizer.Range{Lo: 1000, Hi: math.Inf(1)}, optimizer.ECDC)
	ex, _ := NewExecutor(cat, q, nil, opt.Model.Params, &Meter{})
	root, _ := ex.Build(plan)
	_, err = Run(root)
	cv, ok := err.(*CheckViolation)
	if !ok {
		t.Fatalf("want CheckViolation, got %v", err)
	}
	if !cv.Exact || cv.Actual != 500 {
		t.Errorf("EOF violation: exact=%v actual=%v", cv.Exact, cv.Actual)
	}
}

func TestCheckPassesInRange(t *testing.T) {
	cat := fixture(t)
	b := logical.NewBuilder(cat)
	b.AddTable("emp", "e")
	b.SelectCol("e", "e_id")
	q, _ := b.Build()
	opt := optimizer.New(cat)
	plan, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	plan.Children[0] = wrapCheck(plan.Children[0], optimizer.Range{Lo: 100, Hi: 1000}, optimizer.LC)
	ex, _ := NewExecutor(cat, q, nil, opt.Model.Params, &Meter{})
	root, _ := ex.Build(plan)
	rows, err := Run(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 500 {
		t.Errorf("got %d rows", len(rows))
	}
}

func TestCheckAboveMaterializationValidatesOnce(t *testing.T) {
	cat := fixture(t)
	b := logical.NewBuilder(cat)
	b.AddTable("emp", "e")
	b.SelectCol("e", "e_id")
	b.OrderBy(b.Col("e", "e_id"), false)
	q, _ := b.Build()
	opt := optimizer.New(cat)
	plan, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Op != optimizer.OpSort {
		t.Fatalf("expected SORT on top, got %s", plan.Op)
	}
	// CHECK above the SORT materialization with a violated upper bound must
	// fire exactly at Open with the exact cardinality.
	check := wrapCheck(plan, optimizer.Range{Lo: 0, Hi: 10}, optimizer.LC)
	ex, _ := NewExecutor(cat, q, nil, opt.Model.Params, &Meter{})
	root, err := ex.Build(check)
	if err != nil {
		t.Fatal(err)
	}
	err = root.Open()
	cv, ok := err.(*CheckViolation)
	if !ok {
		t.Fatalf("want CheckViolation at Open, got %v", err)
	}
	if !cv.Exact || cv.Actual != 500 {
		t.Errorf("materialized check: exact=%v actual=%v", cv.Exact, cv.Actual)
	}
	root.Close()
}

func TestReturnedSetAndCompensation(t *testing.T) {
	s := NewReturnedSet()
	r1 := schema.Row{types.NewInt(1), types.NewString("a")}
	r2 := schema.Row{types.NewInt(2), types.NewString("b")}
	s.Add(r1)
	s.Add(r1) // duplicate result row returned twice
	s.Add(r2)
	if s.Len() != 3 {
		t.Errorf("len = %d", s.Len())
	}
	if !s.Remove(r1) || !s.Remove(r1) {
		t.Error("both duplicate occurrences should be removable")
	}
	if s.Remove(r1) {
		t.Error("third removal should fail (multiset)")
	}
	if !s.Remove(r2) {
		t.Error("r2 should be removable")
	}
	if s.Len() != 0 {
		t.Errorf("len after removals = %d", s.Len())
	}
}

func TestECDCAntiJoinEndToEnd(t *testing.T) {
	cat := fixture(t)
	b := logical.NewBuilder(cat)
	b.AddTable("emp", "e")
	b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("e", "e_id"), R: &expr.Const{Val: types.NewInt(20)}})
	b.SelectCol("e", "e_id")
	q, _ := b.Build()
	opt := optimizer.New(cat)
	plan, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	// Initial run: return the first 8 rows through an INSERT wrapper.
	side := NewReturnedSet()
	ex, _ := NewExecutor(cat, q, nil, opt.Model.Params, &Meter{})
	root, err := ex.Build(plan)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := NewInsertRid(ex, root, side)
	if err := wrapped.Open(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, ok, err := wrapped.Next(); err != nil || !ok {
			t.Fatalf("initial run row %d: %v", i, err)
		}
	}
	wrapped.Close()
	if side.Len() != 8 {
		t.Fatalf("side table has %d rows", side.Len())
	}
	// Re-optimized run compensates via anti-join: total rows = 20 - 8.
	ex2, _ := NewExecutor(cat, q, nil, opt.Model.Params, &Meter{})
	root2, err := ex2.Build(plan)
	if err != nil {
		t.Fatal(err)
	}
	comp := NewAntiJoin(ex2, root2, side)
	rows, err := Run(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Errorf("compensated run returned %d rows, want 12", len(rows))
	}
}

func TestWalkAndStats(t *testing.T) {
	cat := fixture(t)
	q := threeWayQuery(t, cat, 50)
	opt := optimizer.New(cat)
	plan, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	ex, _ := NewExecutor(cat, q, nil, opt.Model.Params, &Meter{})
	root, err := ex.Build(plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(root); err != nil {
		t.Fatal(err)
	}
	nodes := 0
	Walk(root, func(n Node) {
		nodes++
		if n.Stats().Opened == false && n.Plan().Op != optimizer.OpIndexScan {
			t.Errorf("node %s never opened", n.Plan().Op)
		}
	})
	if nodes < 4 {
		t.Errorf("walked only %d nodes", nodes)
	}
	if root.Stats().RowsOut == 0 {
		t.Error("root produced no rows")
	}
}

func TestMVScanExecution(t *testing.T) {
	cat := fixture(t)
	// Register an MV matching "emp with e_id < 10" and verify execution
	// through an MVSCAN plan returns its rows.
	b := logical.NewBuilder(cat)
	b.AddTable("emp", "e")
	b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("e", "e_id"), R: &expr.Const{Val: types.NewInt(10)}})
	b.SelectCol("e", "e_id")
	q, _ := b.Build()

	sig := optimizer.Signature(q, 1)
	mvRows := make([]schema.Row, 10)
	for i := range mvRows {
		mvRows[i] = schema.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 20)), types.NewFloat(0), types.NewString("x")}
	}
	cat.RegisterView(&catalog.MatView{
		Signature: sig,
		Cols:      []int{0, 1, 2, 3},
		Rows:      mvRows,
		Card:      10,
	})
	opt := optimizer.New(cat)
	plan, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Count(optimizer.OpMVScan) != 1 {
		t.Fatalf("expected MVSCAN in plan:\n%s", optimizer.Explain(plan, q))
	}
	rows := runPlan(t, opt, q, nil)
	if len(rows) != 10 {
		t.Errorf("MV execution returned %d rows", len(rows))
	}
}
