package executor

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/optimizer"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/types"
)

// nljnNode implements both naive and index nested-loop joins. The naive
// variant rewinds its inner child once per outer row; the index variant
// probes a B+tree on the inner table with a key taken from the outer row.
type nljnNode struct {
	base
	ex     *Executor
	outer  Node
	inner  Node // naive variant only
	filter expr.Expr

	// Index variant.
	probe     *probeState
	outerKey  int // position of the lookup key in the outer row
	innerPlan *optimizer.Plan

	curOuter schema.Row
	haveOut  bool
	// queued inner matches for the index variant
	queue []schema.Row
}

// probeState tracks the index-probe machinery of an index NLJN and doubles
// as the Node for the inner edge so tree walks see both children.
type probeState struct {
	base
	ix     *storage.BTreeIndex
	filter expr.Expr // inner residual filter in table layout
	npred  float64
}

func (p *probeState) Open() error                     { p.stats.Opened = true; return nil }
func (p *probeState) Next() (schema.Row, bool, error) { return nil, false, nil }
func (p *probeState) Close() error                    { return nil }

func (e *Executor) buildNLJN(p *optimizer.Plan) (Node, error) {
	outer, err := e.Build(p.Children[0])
	if err != nil {
		return nil, err
	}
	filter, err := e.remap(p.Filter, p.Cols)
	if err != nil {
		return nil, err
	}
	n := &nljnNode{base: base{plan: p}, ex: e, outer: outer, filter: filter}
	if p.IndexJoin {
		innerPlan := p.Children[1]
		t := e.tabs[innerPlan.Table]
		ix := t.BTreeOn(innerPlan.IndexOrd)
		if ix == nil {
			return nil, fmt.Errorf("executor: index NLJN without B+tree on %s ordinal %d", t.Name, innerPlan.IndexOrd)
		}
		innerFilter, err := e.remap(innerPlan.Filter, innerPlan.Cols)
		if err != nil {
			return nil, err
		}
		keyPos, err := layoutOf(p.Children[0].Cols).pos(p.Children[0].Cols, p.LookupCol)
		if err != nil {
			return nil, err
		}
		n.outerKey = keyPos
		n.innerPlan = innerPlan
		n.probe = &probeState{
			base:   base{plan: innerPlan},
			ix:     ix,
			filter: innerFilter,
			npred:  float64(len(expr.Conjuncts(innerPlan.Filter))),
		}
		n.children = []Node{outer, n.probe}
		return n, nil
	}
	inner, err := e.Build(p.Children[1])
	if err != nil {
		return nil, err
	}
	if _, ok := inner.(Rewinder); !ok {
		return nil, fmt.Errorf("executor: naive NLJN inner %s is not rewindable", inner.Plan().Op)
	}
	n.inner = inner
	n.children = []Node{outer, inner}
	return n, nil
}

func (n *nljnNode) Open() error {
	n.stats = NodeStats{Opened: true}
	n.haveOut = false
	n.queue = nil
	if err := n.outer.Open(); err != nil {
		return err
	}
	if n.inner != nil {
		return n.inner.Open()
	}
	return n.probe.Open()
}

func (n *nljnNode) Next() (schema.Row, bool, error) {
	if n.probe != nil {
		return n.nextIndex()
	}
	return n.nextNaive()
}

func (n *nljnNode) nextNaive() (schema.Row, bool, error) {
	pr := &n.ex.Cost
	for {
		if !n.haveOut {
			row, ok, err := n.outer.Next()
			if err != nil || !ok {
				n.stats.Done = ok == false && err == nil
				return nil, false, err
			}
			n.curOuter = row
			n.haveOut = true
			if err := n.inner.(Rewinder).Rewind(); err != nil {
				return nil, false, err
			}
		}
		irow, ok, err := n.inner.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			n.haveOut = false
			continue
		}
		n.charge(n.ex, pr.PredEval)
		joined := n.curOuter.Concat(irow)
		keep, err := evalFilter(n.filter, n.ex.ectx, joined)
		if err != nil {
			return nil, false, err
		}
		if keep {
			n.charge(n.ex, pr.OutputRow)
			n.stats.RowsOut++
			return joined, true, nil
		}
	}
}

func (n *nljnNode) nextIndex() (schema.Row, bool, error) {
	pr := &n.ex.Cost
	for {
		if len(n.queue) > 0 {
			joined := n.queue[0]
			n.queue = n.queue[1:]
			keep, err := evalFilter(n.filter, n.ex.ectx, joined)
			if err != nil {
				return nil, false, err
			}
			if keep {
				n.charge(n.ex, pr.OutputRow)
				n.stats.RowsOut++
				return joined, true, nil
			}
			continue
		}
		orow, ok, err := n.outer.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			n.stats.Done = true
			return nil, false, nil
		}
		key := orow[n.outerKey]
		n.probe.charge(n.ex, float64(n.probe.ix.Height())*pr.IndexLevel)
		for _, rid := range n.probe.ix.Lookup(key) {
			irow, err := n.probe.ix.Table().Get(rid)
			if err != nil {
				return nil, false, err
			}
			n.probe.charge(n.ex, pr.FetchRow+n.probe.npred*pr.PredEval)
			keep, err := evalFilter(n.probe.filter, n.ex.ectx, irow)
			if err != nil {
				return nil, false, err
			}
			if keep {
				n.probe.stats.RowsOut++
				n.queue = append(n.queue, orow.Concat(irow))
			}
		}
	}
}

func (n *nljnNode) Close() error { return n.closeChildren() }

// hsjnNode is a hash join: it fully materializes and hashes the build child
// (children[1]) on Open, then streams the probe child. Builds larger than
// the memory budget simulate grace-hash staging by charging spill work for
// every build and probe row per extra stage — the cost cliff the validity
// analysis must cope with.
type hsjnNode struct {
	base
	ex        *Executor
	probe     Node
	build     Node
	probeKeys []int // positions in probe rows
	buildKeys []int // positions in build rows
	filter    expr.Expr

	table      map[uint64][]schema.Row
	spillExtra float64 // extra work charged per probe row
	// curBucket/curIdx cursor over the current probe row's hash bucket:
	// match candidates are key-checked lazily at emission, so no per-probe
	// match slice is ever built.
	curBucket []schema.Row
	curIdx    int
	curProbe  schema.Row

	// Batch-mode state: the probe edge, the reusable output batch, a held
	// input batch with its cursor, and the pre-scaled per-row charges.
	probeEdge *batchEdge
	out       *Batch
	inBatch   *Batch
	inPos     int
	probeT    int64
	outT      int64
	width     int // joined-row width (probe + build columns)

	// buildRows retains the complete build input (including NULL-keyed rows
	// the hash table drops) so the build can be promoted to a temp MV — the
	// reuse enhancement the paper's §4 plans for its prototype.
	buildRows []schema.Row
	buildDone bool
}

// BuildMaterializer is implemented by joins that fully materialize one
// input; the POP runner can promote that input to a temporary materialized
// view when Options.ReuseHashBuilds is set.
type BuildMaterializer interface {
	// BuildMaterialized returns the materialized input rows, the child index
	// they came from, and whether the materialization completed.
	BuildMaterialized() (rows []schema.Row, childIndex int, done bool)
}

// BuildMaterialized exposes the completed hash-join build.
func (n *hsjnNode) BuildMaterialized() ([]schema.Row, int, bool) {
	return n.buildRows, 1, n.buildDone
}

func (e *Executor) buildHSJN(p *optimizer.Plan) (Node, error) {
	probe, err := e.Build(p.Children[0])
	if err != nil {
		return nil, err
	}
	build, err := e.Build(p.Children[1])
	if err != nil {
		return nil, err
	}
	filter, err := e.remap(p.Filter, p.Cols)
	if err != nil {
		return nil, err
	}
	n := &hsjnNode{
		base:   base{plan: p, children: []Node{probe, build}},
		ex:     e,
		probe:  probe,
		build:  build,
		filter: filter,
	}
	n.probeKeys, n.buildKeys, err = equiKeyPositions(p)
	if err != nil {
		return nil, err
	}
	return n, nil
}

// equiKeyPositions resolves a join's equi-key global ids into positions in
// the probe (child 0) and build (child 1) row layouts, each indexed once.
func equiKeyPositions(p *optimizer.Plan) (probeKeys, buildKeys []int, err error) {
	probeLay := layoutOf(p.Children[0].Cols)
	buildLay := layoutOf(p.Children[1].Cols)
	for i := range p.EquiLeft {
		pk, err := probeLay.pos(p.Children[0].Cols, p.EquiLeft[i])
		if err != nil {
			return nil, nil, err
		}
		bk, err := buildLay.pos(p.Children[1].Cols, p.EquiRight[i])
		if err != nil {
			return nil, nil, err
		}
		probeKeys = append(probeKeys, pk)
		buildKeys = append(buildKeys, bk)
	}
	return probeKeys, buildKeys, nil
}

func hashKeyAt(row schema.Row, keys []int) (uint64, bool) {
	h := types.HashSeed
	for _, k := range keys {
		if row[k].IsNull() {
			return 0, false
		}
		h = row[k].HashFold(h)
	}
	return h, true
}

func keysEqual(a schema.Row, aKeys []int, b schema.Row, bKeys []int) bool {
	for i := range aKeys {
		c, err := a[aKeys[i]].Compare(b[bKeys[i]])
		if err != nil || c != 0 {
			return false
		}
	}
	return true
}

func (n *hsjnNode) Open() error {
	n.stats = NodeStats{Opened: true}
	n.curBucket, n.curIdx = nil, 0
	n.buildRows = n.buildRows[:0]
	n.buildDone = false
	pr := &n.ex.Cost
	if err := n.build.Open(); err != nil {
		return err
	}
	var err error
	n.buildRows, err = n.drainMaterialize(n.ex, n.build, n.buildRows, pr.HashBuildRow)
	if err != nil {
		return err
	}
	// Two-pass arena build: count each bucket, carve all buckets out of one
	// backing slice, then fill. Appends never grow, so the table costs two
	// map allocations and one arena instead of a slice per distinct key.
	// Per-bucket insertion order is the build input order, same as a direct
	// append-per-row build.
	counts := make(map[uint64]int, len(n.buildRows))
	keyed := 0
	for _, row := range n.buildRows {
		if h, ok := hashKeyAt(row, n.buildKeys); ok {
			counts[h]++
			keyed++
		}
	}
	arena := make([]schema.Row, keyed)
	n.table = make(map[uint64][]schema.Row, len(counts))
	pos := 0
	buildRows := float64(len(n.buildRows))
	for _, row := range n.buildRows {
		if h, ok := hashKeyAt(row, n.buildKeys); ok {
			b, seen := n.table[h]
			if !seen {
				c := counts[h]
				b = arena[pos : pos : pos+c]
				pos += c
			}
			n.table[h] = append(b, row)
		}
	}
	n.buildDone = true
	// Grace-hash staging charge.
	width := float64(len(n.plan.Children[1].Cols)) * 12
	stages := 1.0
	if pr.MemoryBytes > 0 {
		for buildRows*width > stages*pr.MemoryBytes {
			stages++
		}
	}
	if stages > 1 {
		n.charge(n.ex, (stages-1)*buildRows*pr.SpillRow)
		n.spillExtra = (stages - 1) * pr.SpillRow
		n.stats.Spilled = true
	}
	// Pre-scale the per-row charges once per Open: spillExtra is folded into
	// the probe charge exactly as the row path passes it to a single Add.
	n.probeT = Ticks(pr.HashProbeRow + n.spillExtra)
	n.outT = Ticks(pr.OutputRow)
	if n.ex.BatchSize > 0 {
		n.probeEdge = n.ex.batchEdge(n.probe)
		if n.out == nil {
			n.out = NewBatch(n.ex.BatchSize)
		}
		n.inBatch = nil
		n.inPos = 0
	}
	return n.probe.Open()
}

// NextBatch probes the hash table with input pulled batch-at-a-time,
// carving joined rows from the output slab. The pull size is bounded by the
// remaining output need, so an eager CHECK above the join can bound how far
// the probe runs past its validity range. Probe rows charge HashProbeRow
// (+spill surcharge) and emitted rows OutputRow, each pre-scaled and
// batch-aggregated to the exact tick totals of the row path.
func (n *hsjnNode) NextBatch(max int) (*Batch, error) {
	b := n.out
	b.Reset()
	if max <= 0 || max > cap(b.Rows) {
		max = cap(b.Rows)
	}
	consumed := 0 // probe rows consumed during this call
	flush := func() {
		n.chargeTicks(n.ex, n.probeT, consumed)
		n.chargeTicks(n.ex, n.outT, b.Len())
	}
	for b.Len() < max {
		// Emit pending matches for the current probe row, key-checking each
		// bucket candidate lazily.
		for n.curIdx < len(n.curBucket) && b.Len() < max {
			m := n.curBucket[n.curIdx]
			n.curIdx++
			if !keysEqual(n.curProbe, n.probeKeys, m, n.buildKeys) {
				continue
			}
			out := b.Alloc(len(n.curProbe) + len(m))
			copy(out, n.curProbe)
			copy(out[len(n.curProbe):], m)
			keep, ferr := evalFilter(n.filter, n.ex.ectx, out)
			if ferr != nil {
				b.dropLast(len(out)) // not an output row: the row path charges no OutputRow for it
				flush()
				return nil, ferr
			}
			if !keep {
				b.dropLast(len(out))
			}
		}
		if n.curIdx < len(n.curBucket) {
			break // batch full mid-bucket; curProbe stays valid until the next pull
		}
		if n.inBatch == nil || n.inPos >= n.inBatch.Len() {
			nb, err := n.probeEdge.pull(max - b.Len())
			if err != nil {
				flush()
				return nil, err
			}
			if nb == nil {
				n.inBatch = nil
				n.stats.Done = true
				break
			}
			n.inBatch = nb
			n.inPos = 0
		}
		row := n.inBatch.Rows[n.inPos]
		n.inPos++
		consumed++
		h, hasKey := hashKeyAt(row, n.probeKeys)
		if !hasKey {
			continue
		}
		n.curProbe = row //poplint:allow batchescape probe cursor: drained into the output batch before the next pull replaces inBatch, so the alias never outlives its batch
		n.curBucket, n.curIdx = n.table[h], 0
	}
	flush()
	n.stats.RowsOut += float64(b.Len())
	if b.Len() == 0 {
		return nil, nil
	}
	return b, nil
}

func (n *hsjnNode) Next() (schema.Row, bool, error) {
	pr := &n.ex.Cost
	for {
		for n.curIdx < len(n.curBucket) {
			m := n.curBucket[n.curIdx]
			n.curIdx++
			if !keysEqual(n.curProbe, n.probeKeys, m, n.buildKeys) {
				continue
			}
			joined := n.curProbe.Concat(m)
			keep, err := evalFilter(n.filter, n.ex.ectx, joined)
			if err != nil {
				return nil, false, err
			}
			if keep {
				n.charge(n.ex, pr.OutputRow)
				n.stats.RowsOut++
				return joined, true, nil
			}
		}
		row, ok, err := n.probe.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			n.stats.Done = true
			return nil, false, nil
		}
		n.charge(n.ex, pr.HashProbeRow+n.spillExtra)
		h, hasKey := hashKeyAt(row, n.probeKeys)
		if !hasKey {
			continue
		}
		n.curProbe = row
		n.curBucket, n.curIdx = n.table[h], 0
	}
}

func (n *hsjnNode) Close() error { return n.closeChildren() }

// mgjnNode merges two inputs sorted ascending on their single join keys,
// buffering duplicate groups on the right.
type mgjnNode struct {
	base
	ex       *Executor
	left     Node
	right    Node
	leftKey  int
	rightKey int
	filter   expr.Expr

	lrow    schema.Row
	lok     bool
	group   []schema.Row // current right-side duplicate group
	gpos    int
	gkey    schema.Row // representative right row of the group
	rahead  schema.Row // lookahead right row
	rvalid  bool
	started bool
}

func (e *Executor) buildMGJN(p *optimizer.Plan) (Node, error) {
	left, err := e.Build(p.Children[0])
	if err != nil {
		return nil, err
	}
	right, err := e.Build(p.Children[1])
	if err != nil {
		return nil, err
	}
	filter, err := e.remap(p.Filter, p.Cols)
	if err != nil {
		return nil, err
	}
	lks, rks, err := equiKeyPositions(p)
	if err != nil {
		return nil, err
	}
	lk, rk := lks[0], rks[0]
	return &mgjnNode{
		base:     base{plan: p, children: []Node{left, right}},
		ex:       e,
		left:     left,
		right:    right,
		leftKey:  lk,
		rightKey: rk,
		filter:   filter,
	}, nil
}

func (n *mgjnNode) Open() error {
	n.stats = NodeStats{Opened: true}
	n.started = false
	n.group = nil
	if err := n.left.Open(); err != nil {
		return err
	}
	return n.right.Open()
}

func (n *mgjnNode) advanceLeft() error {
	row, ok, err := n.left.Next()
	if err != nil {
		return err
	}
	n.lrow, n.lok = row, ok
	if ok {
		n.charge(n.ex, n.ex.Cost.MergeRow)
	}
	return nil
}

func (n *mgjnNode) advanceRight() error {
	row, ok, err := n.right.Next()
	if err != nil {
		return err
	}
	n.rahead, n.rvalid = row, ok
	if ok {
		n.charge(n.ex, n.ex.Cost.MergeRow)
	}
	return nil
}

// loadGroup collects the run of right rows equal to the current lookahead.
func (n *mgjnNode) loadGroup() error {
	n.group = n.group[:0]
	n.gkey = n.rahead
	key := n.rahead[n.rightKey]
	for n.rvalid {
		c, err := n.rahead[n.rightKey].Compare(key)
		if err != nil || c != 0 {
			break
		}
		n.group = append(n.group, n.rahead)
		if err := n.advanceRight(); err != nil {
			return err
		}
	}
	return nil
}

func (n *mgjnNode) Next() (schema.Row, bool, error) {
	pr := &n.ex.Cost
	if !n.started {
		n.started = true
		if err := n.advanceLeft(); err != nil {
			return nil, false, err
		}
		if err := n.advanceRight(); err != nil {
			return nil, false, err
		}
		n.gpos = 0
	}
	for {
		// Emit pending pairs from the current group.
		for n.lok && len(n.group) > 0 && n.gpos < len(n.group) {
			c, err := n.lrow[n.leftKey].Compare(n.gkey[n.rightKey])
			if err != nil || c != 0 {
				break
			}
			joined := n.lrow.Concat(n.group[n.gpos])
			n.gpos++
			keep, ferr := evalFilter(n.filter, n.ex.ectx, joined)
			if ferr != nil {
				return nil, false, ferr
			}
			if keep {
				n.charge(n.ex, pr.OutputRow)
				n.stats.RowsOut++
				return joined, true, nil
			}
		}
		if n.lok && len(n.group) > 0 && n.gpos >= len(n.group) {
			// Exhausted group for this left row; next left row may match the
			// same group (duplicates on the left).
			if err := n.advanceLeft(); err != nil {
				return nil, false, err
			}
			if n.lok {
				if c, err := n.lrow[n.leftKey].Compare(n.gkey[n.rightKey]); err == nil && c == 0 {
					n.gpos = 0
					continue
				}
			}
			n.group = n.group[:0]
			continue
		}
		if !n.lok || (!n.rvalid && len(n.group) == 0) {
			n.stats.Done = true
			return nil, false, nil
		}
		// No active group: align the sides. NULL keys never match.
		if n.lrow[n.leftKey].IsNull() {
			if err := n.advanceLeft(); err != nil {
				return nil, false, err
			}
			continue
		}
		if n.rahead[n.rightKey].IsNull() {
			if err := n.advanceRight(); err != nil {
				return nil, false, err
			}
			if !n.rvalid && len(n.group) == 0 {
				n.stats.Done = true
				return nil, false, nil
			}
			continue
		}
		c, err := n.lrow[n.leftKey].Compare(n.rahead[n.rightKey])
		if err != nil {
			return nil, false, err
		}
		switch {
		case c < 0:
			if err := n.advanceLeft(); err != nil {
				return nil, false, err
			}
		case c > 0:
			if err := n.advanceRight(); err != nil {
				return nil, false, err
			}
			if !n.rvalid {
				n.stats.Done = true
				return nil, false, nil
			}
		default:
			if err := n.loadGroup(); err != nil {
				return nil, false, err
			}
			n.gpos = 0
		}
	}
}

func (n *mgjnNode) Close() error { return n.closeChildren() }
