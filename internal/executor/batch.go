package executor

// Batch-at-a-time execution. The Volcano Next path moves one row per
// virtual call; the batch path amortizes that dispatch (and the per-row
// output allocation) over a fixed-capacity vector of rows. Operators with a
// native NextBatch keep the work meter bit-identical to the row path by
// pre-scaling their per-row charge into integer ticks (see Ticks) and
// issuing one AddTicks per batch. Operators without a native batch path are
// driven through a row-level adapter (batchEdge), so a plan may freely mix
// converted and unconverted operators.

import (
	"errors"
	"sync"

	"repro/internal/schema"
	"repro/internal/types"
)

// DefaultBatchSize is the batch capacity used when batching is enabled
// without an explicit size.
const DefaultBatchSize = 1024

// Batch is a fixed-capacity vector of rows moving through the executor as
// one unit. Output-producing operators (projection, joins) carve their rows
// out of a shared slab so a whole batch costs O(1) allocations instead of
// one per row.
//
// Ownership contract: a batch returned by NextBatch (and every row in it)
// is valid only until the next NextBatch call on the same producer. A
// consumer that retains rows across pulls must copy them when Ephemeral
// reports true; non-ephemeral rows (heap references, materialized buffers)
// are stable and may be retained by reference.
type Batch struct {
	// Rows holds the batch's rows in production order.
	Rows []schema.Row

	slab      []types.Datum // backing storage for Alloc-carved rows
	ephemeral bool          // rows alias the slab and are reused on Reset
}

// NewBatch returns an empty batch with capacity for capRows rows.
func NewBatch(capRows int) *Batch {
	if capRows < 1 {
		capRows = 1
	}
	return &Batch{Rows: make([]schema.Row, 0, capRows)}
}

// Len returns the number of rows currently in the batch.
func (b *Batch) Len() int { return len(b.Rows) }

// Ephemeral reports whether the batch's rows alias producer-owned storage
// that the next pull reuses; such rows must be copied before being retained.
func (b *Batch) Ephemeral() bool { return b.ephemeral }

// Reset empties the batch for refilling, keeping row and slab capacity.
func (b *Batch) Reset() {
	b.Rows = b.Rows[:0]
	b.slab = b.slab[:0]
	b.ephemeral = false
}

// Append adds a stable row (owned elsewhere) to the batch by reference.
func (b *Batch) Append(row schema.Row) { b.Rows = append(b.Rows, row) }

// Alloc appends a new row of n datums carved from the batch slab and
// returns it for the caller to fill. Alloc marks the batch ephemeral. Rows
// are always carved at the current slab tail (a full slab is replaced by a
// fresh block, leaving previously carved rows on the old backing), which is
// what lets dropLast reclaim the most recent row by truncation.
func (b *Batch) Alloc(n int) schema.Row {
	b.ephemeral = true
	if n == 0 {
		b.Rows = append(b.Rows, schema.Row{})
		return b.Rows[len(b.Rows)-1]
	}
	if len(b.slab)+n > cap(b.slab) {
		rem := cap(b.Rows) - len(b.Rows)
		if rem < 1 {
			rem = 1
		}
		b.slab = make([]types.Datum, 0, n*rem)
	}
	off := len(b.slab)
	b.slab = b.slab[:off+n]
	row := schema.Row(b.slab[off : off+n : off+n])
	b.Rows = append(b.Rows, row)
	return row
}

// dropLast removes the most recently Alloc'd row (of width n), reclaiming
// its slab space. Join and projection operators use it to un-emit a carved
// row their residual filter rejected.
func (b *Batch) dropLast(n int) {
	b.Rows = b.Rows[:len(b.Rows)-1]
	b.slab = b.slab[:len(b.slab)-n]
}

// batchPool recycles transfer batches handed across exchange channels,
// where the producing worker cannot reuse its own buffer.
var batchPool = sync.Pool{New: func() any { return new(Batch) }}

// getBatch returns an empty pooled batch with capacity for capRows rows.
func getBatch(capRows int) *Batch {
	b := batchPool.Get().(*Batch)
	b.Reset()
	if cap(b.Rows) < capRows {
		b.Rows = make([]schema.Row, 0, capRows)
	}
	return b
}

// putBatch returns a batch to the pool once no consumer references it.
func putBatch(b *Batch) {
	if b != nil {
		batchPool.Put(b)
	}
}

// BatchNode is the vectorized fast path of Node. NextBatch returns the
// operator's next rows as one batch, or (nil, nil) at end of stream; an
// empty non-nil batch is never returned. max caps the number of rows the
// caller wants (<= 0 means the producer's capacity); it is how CHECK
// operators bound how far a child may run past a validity range, keeping
// eager violations at the same logical row as the row path. Exchange
// consumers treat max as advisory: a transfer batch arrives sized by its
// producing worker.
//
// The driving side of every edge picks exactly one protocol per execution:
// a parent either calls Next or NextBatch on a child, never both.
type BatchNode interface {
	Node
	// NextBatch returns the next batch of at most max rows, or nil at end
	// of stream.
	NextBatch(max int) (*Batch, error)
}

// batchEdge drives one parent→child edge batch-at-a-time: natively when the
// child implements BatchNode, through a row-level adapter otherwise. The
// adapter is the shim that keeps unconverted operators (sort output, MV
// scan, hash lookup, NLJN, MGJN) usable below converted parents.
type batchEdge struct {
	bn   BatchNode // non-nil: child's native batch path
	n    Node      // row-path child driven through the adapter
	buf  *Batch    // adapter-owned buffer (row path only)
	size int
	eos  bool
	err  error // child error held until the buffered rows are consumed
}

// batchEdge returns the edge for driving child batch-at-a-time.
func (e *Executor) batchEdge(child Node) *batchEdge {
	size := e.BatchSize
	if size <= 0 {
		size = DefaultBatchSize
	}
	if bn, ok := child.(BatchNode); ok && e.BatchSize > 0 {
		return &batchEdge{bn: bn, size: size}
	}
	return &batchEdge{n: child, size: size}
}

// pull returns the child's next batch of (about) max rows, nil at end of
// stream. Adapter-filled batches hold rows produced by the child's Next,
// which are stable (operator-owned or heap references), so they are not
// ephemeral. A child error with rows already buffered is held back until
// the partial batch is consumed, mirroring the row path where those rows
// were handed upward before the error.
func (be *batchEdge) pull(max int) (*Batch, error) {
	if be.err != nil {
		err := be.err
		be.err = nil
		return nil, err
	}
	if be.eos {
		return nil, nil
	}
	if max <= 0 || max > be.size {
		max = be.size
	}
	if be.bn != nil {
		return be.bn.NextBatch(max)
	}
	if be.buf == nil {
		be.buf = NewBatch(be.size)
	}
	b := be.buf
	b.Reset()
	for b.Len() < max {
		row, ok, err := be.n.Next()
		if err != nil {
			if b.Len() == 0 {
				return nil, err
			}
			be.err = err
			return b, nil
		}
		if !ok {
			be.eos = true
			break
		}
		b.Append(row)
	}
	if b.Len() == 0 {
		return nil, nil
	}
	return b, nil
}

// appendBatchRows appends a batch's rows to dst. Ephemeral rows alias the
// producer's reusable slab, so they are deep-copied — through one shared
// backing array for the whole batch, not one allocation per row.
func appendBatchRows(dst []schema.Row, b *Batch) []schema.Row {
	if !b.ephemeral {
		return append(dst, b.Rows...)
	}
	total := 0
	for _, r := range b.Rows {
		total += len(r)
	}
	backing := make([]types.Datum, total)
	off := 0
	for _, r := range b.Rows {
		nr := backing[off : off+len(r) : off+len(r)]
		copy(nr, r)
		dst = append(dst, schema.Row(nr))
		off += len(r)
	}
	return dst
}

// cloneForTransfer copies a batch into a pooled batch for handoff across an
// exchange channel: the producing worker reuses its own buffer immediately,
// so the transfer must own its rows. Stable rows transfer by reference;
// ephemeral rows are carved into the transfer batch's slab.
func cloneForTransfer(b *Batch, capRows int) *Batch {
	nb := getBatch(capRows)
	if !b.ephemeral {
		nb.Rows = append(nb.Rows, b.Rows...)
		return nb
	}
	for _, r := range b.Rows {
		copy(nb.Alloc(len(r)), r)
	}
	return nb
}

// RunWith drains a node like Run, batch-at-a-time when batchSize > 0 and
// the root has a native batch path. The executor that built the tree must
// have been configured with the same BatchSize: each edge is driven over
// exactly one protocol per execution, chosen at Open time.
func RunWith(n Node, batchSize int) (rows []schema.Row, err error) {
	bn, ok := n.(BatchNode)
	if batchSize <= 0 || !ok {
		return Run(n)
	}
	if err := n.Open(); err != nil {
		if cerr := n.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, err
	}
	defer func() {
		if cerr := n.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	limit := n.Plan().Limit
	est := int(n.Plan().Card)
	if limit > 0 && limit < est {
		est = limit
	}
	if est < 0 {
		est = 0
	}
	if est > runPrealloc {
		est = runPrealloc
	}
	rows = make([]schema.Row, 0, est)
	for {
		max := batchSize
		if limit > 0 && limit-len(rows) < max {
			max = limit - len(rows)
		}
		b, berr := bn.NextBatch(max)
		if berr != nil {
			return rows, berr
		}
		if b == nil {
			return rows, nil
		}
		rows = appendBatchRows(rows, b)
		if limit > 0 && len(rows) >= limit {
			return rows[:limit], nil
		}
	}
}
