package executor

import (
	"errors"
	"testing"

	"repro/internal/optimizer"
	"repro/internal/schema"
	"repro/internal/types"
)

// scriptedNode is a row-path Node yielding a fixed script of rows followed
// by an optional terminal error, for driving batchEdge's adapter directly.
type scriptedNode struct {
	rows []schema.Row
	err  error
	pos  int
}

func (s *scriptedNode) Open() error  { return nil }
func (s *scriptedNode) Close() error { return nil }
func (s *scriptedNode) Next() (schema.Row, bool, error) {
	if s.pos < len(s.rows) {
		r := s.rows[s.pos]
		s.pos++
		return r, true, nil
	}
	if s.err != nil {
		return nil, false, s.err
	}
	return nil, false, nil
}
func (s *scriptedNode) Plan() *optimizer.Plan { return &optimizer.Plan{} }
func (s *scriptedNode) Stats() *NodeStats     { return &NodeStats{} }
func (s *scriptedNode) Children() []Node      { return nil }

func intRow(v int64) schema.Row { return schema.Row{types.NewInt(v)} }

// TestBatchEdgePartialBeforeError pins the adapter's error-holdback
// contract: when the child errors with rows already buffered, the partial
// batch is delivered first (mirroring the row path, where those rows were
// already handed upward) and the error surfaces on the following pull.
func TestBatchEdgePartialBeforeError(t *testing.T) {
	boom := errors.New("boom")
	child := &scriptedNode{rows: []schema.Row{intRow(1), intRow(2), intRow(3)}, err: boom}
	be := &batchEdge{n: child, size: 8}

	b, err := be.pull(8)
	if err != nil {
		t.Fatalf("first pull: unexpected error %v (rows must be delivered before the error)", err)
	}
	if b == nil || b.Len() != 3 {
		t.Fatalf("first pull: got %v, want the 3 buffered rows", b)
	}
	if b.Rows[0][0].Int() != 1 || b.Rows[2][0].Int() != 3 {
		t.Errorf("partial batch rows corrupted: %v", b.Rows)
	}
	if b.Ephemeral() {
		t.Error("adapter-filled batches hold stable rows and must not be ephemeral")
	}

	if _, err := be.pull(8); !errors.Is(err, boom) {
		t.Fatalf("second pull: err = %v, want the held-back child error", err)
	}
}

// TestBatchEdgeImmediateError pins the complementary case: an error with no
// rows buffered surfaces immediately, with no empty batch in between.
func TestBatchEdgeImmediateError(t *testing.T) {
	boom := errors.New("boom")
	be := &batchEdge{n: &scriptedNode{err: boom}, size: 4}
	b, err := be.pull(4)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want immediate child error", err)
	}
	if b != nil {
		t.Errorf("batch = %v, want nil alongside the error", b)
	}
}

// TestBatchEdgeEOSAfterPartial pins end-of-stream behavior: a short final
// batch is followed by (nil, nil), and pulls after that stay (nil, nil).
func TestBatchEdgeEOSAfterPartial(t *testing.T) {
	child := &scriptedNode{rows: []schema.Row{intRow(1), intRow(2)}}
	be := &batchEdge{n: child, size: 8}
	b, err := be.pull(8)
	if err != nil || b == nil || b.Len() != 2 {
		t.Fatalf("first pull: b=%v err=%v, want 2 rows", b, err)
	}
	for i := 0; i < 2; i++ {
		b, err = be.pull(8)
		if err != nil || b != nil {
			t.Fatalf("pull after EOS: b=%v err=%v, want (nil, nil)", b, err)
		}
	}
}

// TestAppendBatchRowsNonEphemeral pins the stable fast path: rows of a
// non-ephemeral batch append by reference — same backing array, zero datum
// copies — because stable rows are owned elsewhere and safe to retain.
func TestAppendBatchRowsNonEphemeral(t *testing.T) {
	b := NewBatch(3)
	r1 := schema.Row{types.NewInt(1), types.NewInt(2)}
	r2 := schema.Row{types.NewInt(3)}
	b.Append(r1)
	b.Append(r2)
	if b.Ephemeral() {
		t.Fatal("Append must not mark the batch ephemeral")
	}

	dst := make([]schema.Row, 0, 4)
	dst = appendBatchRows(dst, b)
	if len(dst) != 2 {
		t.Fatalf("len(dst) = %d, want 2", len(dst))
	}
	if &dst[0][0] != &r1[0] || &dst[1][0] != &r2[0] {
		t.Error("non-ephemeral rows must append by reference, not copy")
	}

	// Appending onto an existing prefix keeps prior rows intact.
	prefix := []schema.Row{intRow(7)}
	out := appendBatchRows(prefix, b)
	if len(out) != 3 || out[0][0].Int() != 7 {
		t.Errorf("prefix corrupted: %v", out)
	}
	// Mutating the source row is visible through dst: proof of aliasing,
	// which is the documented contract for stable rows.
	r1[0] = types.NewInt(42)
	if dst[0][0].Int() != 42 {
		t.Error("expected reference semantics for stable rows")
	}
}
