package executor

import (
	"strings"
	"testing"

	"repro/internal/optimizer"
)

// TestChargeZeroAllocWhenOff is the zero-overhead guarantee: with analyze and
// tracing off, the work-charge hot path must not allocate.
func TestChargeZeroAllocWhenOff(t *testing.T) {
	if allocs := ChargeAllocsPerRun(1<<16, false); allocs != 0 {
		t.Fatalf("charge allocates %g objects per call with observability off, want 0", allocs)
	}
}

// TestChargeAttribution checks that analyze mode attributes charged work to
// the node and stamps its wall-clock span, and that off mode leaves the
// stats untouched while still metering.
func TestChargeAttribution(t *testing.T) {
	ex := &Executor{Meter: &Meter{}}
	ex.stmt = ex.Meter
	b := &base{}
	b.charge(ex, 2)
	if b.stats.Work != 0 || b.stats.WallFirstNS != 0 {
		t.Fatalf("analyze off must not attribute: %+v", b.stats)
	}
	if ex.Meter.Work() != 2 {
		t.Fatalf("meter = %v, want 2", ex.Meter.Work())
	}

	ex.Analyze = true
	b.charge(ex, 3)
	b.charge(ex, 4)
	if b.stats.Work != 7 {
		t.Fatalf("attributed work = %v, want 7", b.stats.Work)
	}
	if b.stats.WallFirstNS == 0 || b.stats.WallLastNS < b.stats.WallFirstNS {
		t.Fatalf("wall span not stamped: %+v", b.stats)
	}
	if ex.Meter.Work() != 9 {
		t.Fatalf("meter = %v, want 9", ex.Meter.Work())
	}
}

// statsNodeFixture builds three partition clones of one plan fragment
// (XCHG over HSJN over two scans), as the executor would after a DOP-3 run.
func statsNodeFixture() (*optimizer.Plan, []*StatsNode) {
	scanL := &optimizer.Plan{Op: optimizer.OpTableScan, Card: 1000}
	scanR := &optimizer.Plan{Op: optimizer.OpTableScan, Card: 500}
	join := &optimizer.Plan{Op: optimizer.OpHSJN, Card: 100, Children: []*optimizer.Plan{scanL, scanR}}
	clone := func(rows, work float64, done bool) *StatsNode {
		return &StatsNode{
			Plan:   join,
			Stats:  NodeStats{RowsOut: rows, Work: work, Done: done, Opened: true},
			Clones: 1,
			Children: []*StatsNode{
				{Plan: scanL, Stats: NodeStats{RowsOut: rows * 10, Done: done, Opened: true}, Clones: 1},
				{Plan: scanR, Stats: NodeStats{RowsOut: rows * 5, Done: true, Opened: true}, Clones: 1},
			},
		}
	}
	return join, []*StatsNode{clone(40, 7, true), clone(35, 6, true), clone(25, 5, false)}
}

// TestMergeClones checks the fold: rows and work sum, Done ANDs, flags OR,
// and children merge positionally.
func TestMergeClones(t *testing.T) {
	join, clones := statsNodeFixture()
	clones[1].Stats.Spilled = true
	merged := mergeClones(clones)
	if merged.Plan != join || merged.Clones != 3 {
		t.Fatalf("merged %d clones of %v", merged.Clones, merged.Plan)
	}
	s := merged.Stats
	if s.RowsOut != 100 || s.Work != 18 {
		t.Errorf("RowsOut=%v Work=%v, want 100/18", s.RowsOut, s.Work)
	}
	if s.Done {
		t.Error("Done must AND across clones (one clone incomplete)")
	}
	if !s.Spilled || !s.Opened {
		t.Errorf("flags must OR: %+v", s)
	}
	if len(merged.Children) != 2 {
		t.Fatalf("children = %d, want 2", len(merged.Children))
	}
	if got := merged.Children[0].Stats.RowsOut; got != 1000 {
		t.Errorf("left child rows = %v, want 1000", got)
	}
	if !merged.Children[1].Stats.Done {
		t.Error("right child Done must survive the merge")
	}
}

// TestFormatStatsFlags pins the rendered line shape: est/actual/work columns,
// dop for merged clones, and the [partial]/[spill]/[unopened] flags.
func TestFormatStatsFlags(t *testing.T) {
	_, clones := statsNodeFixture()
	clones[2].Stats.Spilled = true
	merged := mergeClones(clones)
	merged.Children[1].Stats.Opened = false

	out := FormatStats(merged, nil, AnalyzeOptions{})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "HSJN") ||
		!strings.Contains(lines[0], "est=100.0 actual=100 work=18.0 dop=3") ||
		!strings.Contains(lines[0], "[partial]") || !strings.Contains(lines[0], "[spill]") {
		t.Errorf("join line = %q", lines[0])
	}
	if strings.Contains(lines[0], "wall=") {
		t.Errorf("wall column must be off by default: %q", lines[0])
	}
	if !strings.Contains(lines[2], "[unopened]") {
		t.Errorf("unopened child line = %q", lines[2])
	}
	out = FormatStats(merged, nil, AnalyzeOptions{Wall: true})
	if !strings.Contains(out, "wall=") {
		t.Errorf("Wall option must add the wall column:\n%s", out)
	}
}
