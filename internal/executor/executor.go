// Package executor interprets physical plans with Volcano-style
// open/next/close iterators. Every operator charges simulated work units
// using the same weights as the optimizer's cost model, so a plan's measured
// work equals its modeled cost evaluated at the *actual* cardinalities —
// which makes the paper's figures deterministic and machine-independent.
//
// CHECK operators follow Figure 10 of the paper: they count the rows flowing
// from producer to consumer and raise a *CheckViolation when the count
// leaves the check range. The POP controller (package pop) catches the
// violation, harvests actual cardinalities and completed materializations,
// and re-invokes the optimizer.
package executor

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/optimizer"
	"repro/internal/schema"
	"repro/internal/types"
)

// Meter accumulates simulated work units across a (possibly re-optimized)
// statement execution.
type Meter struct {
	Work float64
}

// Add charges work units.
func (m *Meter) Add(w float64) {
	if m != nil {
		m.Work += w
	}
}

// NodeStats exposes an operator's runtime counters.
type NodeStats struct {
	RowsOut float64 // rows produced so far
	Done    bool    // reached end of stream
	Opened  bool

	// FirstWork and DoneWork record the meter reading when the node first
	// acted and when it finished (CHECK nodes maintain them; the harness uses
	// them to plot checkpoint opportunities as fractions of execution,
	// paper Figure 14).
	FirstWork float64
	DoneWork  float64
	Touched   bool // FirstWork recorded
}

// Node is an executable plan operator.
type Node interface {
	Open() error
	Next() (schema.Row, bool, error)
	Close() error
	Plan() *optimizer.Plan
	Stats() *NodeStats
	Children() []Node
}

// Rewinder is implemented by nodes that can restart their output stream
// without re-opening (base accesses and materializations); the naive
// nested-loop join requires its inner to implement it.
type Rewinder interface {
	Rewind() error
}

// Materializer is implemented by nodes that buffer their entire input
// (SORT, TEMP). After materialization completes, the buffered rows can be
// promoted to a temporary materialized view for reuse (paper §2.3).
type Materializer interface {
	Materialized() ([]schema.Row, bool)
}

// CheckViolation is the error raised when a CHECK range is violated; it
// carries everything the re-optimization controller needs.
type CheckViolation struct {
	Check  *optimizer.CheckMeta
	Node   *optimizer.Plan // the CHECK plan node
	Actual float64         // observed cardinality when the check fired
	Exact  bool            // true if Actual is the complete edge cardinality
}

// Error implements the error interface.
func (v *CheckViolation) Error() string {
	kind := "lower bound"
	if v.Exact {
		kind = "exact"
	}
	return fmt.Sprintf("executor: CHECK #%d (%s) violated: actual cardinality %.0f (%s) outside range [%.1f, %.1f] (estimate %.1f)",
		v.Check.ID, v.Check.Flavor, v.Actual, kind, v.Check.Range.Lo, v.Check.Range.Hi, v.Check.EstCard)
}

// Executor builds executable trees for one query.
type Executor struct {
	Cat    *catalog.Catalog
	Q      *logical.Query
	Cost   optimizer.CostParams
	Meter  *Meter
	Params []types.Datum

	tabs []*catalog.Table
	ectx *expr.Context
}

// NewExecutor resolves the query's tables and prepares an executor.
func NewExecutor(cat *catalog.Catalog, q *logical.Query, params []types.Datum, cost optimizer.CostParams, meter *Meter) (*Executor, error) {
	tabs := make([]*catalog.Table, len(q.Tables))
	for i, tr := range q.Tables {
		t, err := cat.Table(tr.Table)
		if err != nil {
			return nil, err
		}
		tabs[i] = t
	}
	if meter == nil {
		meter = &Meter{}
	}
	return &Executor{
		Cat:    cat,
		Q:      q,
		Cost:   cost,
		Meter:  meter,
		Params: params,
		tabs:   tabs,
		ectx:   &expr.Context{Params: params},
	}, nil
}

// remap rewrites an expression's query-global column ids into positions in
// the given output column layout.
func (e *Executor) remap(ex expr.Expr, cols []int) (expr.Expr, error) {
	var missing error
	out := expr.Remap(ex, func(g int) int {
		for i, c := range cols {
			if c == g {
				return i
			}
		}
		if missing == nil {
			missing = fmt.Errorf("executor: column id %d not present in layout %v", g, cols)
		}
		return -1
	})
	return out, missing
}

// colPos returns the position of global id g in cols or an error.
func colPos(cols []int, g int) (int, error) {
	for i, c := range cols {
		if c == g {
			return i, nil
		}
	}
	return -1, fmt.Errorf("executor: column id %d not present in layout %v", g, cols)
}

// Build constructs the executable tree for a plan.
func (e *Executor) Build(p *optimizer.Plan) (Node, error) {
	switch p.Op {
	case optimizer.OpTableScan:
		return e.buildTableScan(p)
	case optimizer.OpIndexScan:
		return e.buildIndexScan(p)
	case optimizer.OpHashLookup:
		return e.buildHashLookup(p)
	case optimizer.OpMVScan:
		return e.buildMVScan(p)
	case optimizer.OpNLJN:
		return e.buildNLJN(p)
	case optimizer.OpHSJN:
		return e.buildHSJN(p)
	case optimizer.OpMGJN:
		return e.buildMGJN(p)
	case optimizer.OpSort:
		return e.buildSort(p)
	case optimizer.OpTemp:
		return e.buildTemp(p)
	case optimizer.OpHashAgg:
		return e.buildHashAgg(p)
	case optimizer.OpProject:
		return e.buildProject(p)
	case optimizer.OpCheck:
		return e.buildCheck(p)
	default:
		return nil, fmt.Errorf("executor: unsupported operator %s", p.Op)
	}
}

// Run drains a node to completion, honoring the plan's LIMIT.
func Run(n Node) ([]schema.Row, error) {
	if err := n.Open(); err != nil {
		n.Close()
		return nil, err
	}
	defer n.Close()
	limit := n.Plan().Limit
	var out []schema.Row
	for {
		row, ok, err := n.Next()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, row)
		if limit > 0 && len(out) >= limit {
			return out, nil
		}
	}
}

// Walk visits every node of an executable tree in pre-order.
func Walk(n Node, fn func(Node)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children() {
		Walk(c, fn)
	}
}

// base provides the shared bookkeeping for operators.
type base struct {
	plan     *optimizer.Plan
	stats    NodeStats
	children []Node
}

func (b *base) Plan() *optimizer.Plan { return b.plan }
func (b *base) Stats() *NodeStats     { return &b.stats }
func (b *base) Children() []Node      { return b.children }

func (b *base) closeChildren() error {
	var first error
	for _, c := range b.children {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// evalFilter applies a (pre-remapped) filter with three-valued semantics.
func evalFilter(f expr.Expr, ctx *expr.Context, row schema.Row) (bool, error) {
	if f == nil {
		return true, nil
	}
	v, err := f.Eval(ctx, row)
	if err != nil {
		return false, err
	}
	return expr.Accept(v), nil
}
