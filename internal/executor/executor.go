// Package executor interprets physical plans with Volcano-style
// open/next/close iterators. Every operator charges simulated work units
// using the same weights as the optimizer's cost model, so a plan's measured
// work equals its modeled cost evaluated at the *actual* cardinalities —
// which makes the paper's figures deterministic and machine-independent.
//
// CHECK operators follow Figure 10 of the paper: they count the rows flowing
// from producer to consumer and raise a *CheckViolation when the count
// leaves the check range. The POP controller (package pop) catches the
// violation, harvests actual cardinalities and completed materializations,
// and re-invokes the optimizer.
package executor

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/optimizer"
	"repro/internal/schema"
	"repro/internal/trace"
	"repro/internal/types"
)

// meterTick is the fixed-point scale of the work meter: one work unit is
// 2^20 ticks. A power of two keeps every cost-model weight exactly
// representable after rounding once, so the quantization is the same no
// matter which worker performs a charge.
const meterTick = 1 << 20

// Meter accumulates simulated work units across a (possibly re-optimized,
// possibly parallel) statement execution. Work is held in integer ticks
// rather than a float64: integer addition is associative, so concurrent
// workers charging in any interleaving produce bit-identical totals — the
// determinism the paper's figures (and the cross-DOP acceptance tests)
// rely on.
type Meter struct {
	ticks atomic.Int64
}

// Ticks converts a work-unit amount into integer meter ticks, applying the
// meter's fixed-point rounding exactly once. Batch operators pre-scale
// their per-row charge with it: k rows charged as perRowTicks*k equal
// exactly k row-at-a-time Add calls of the same amount, which is the basis
// of the cross-mode bit-identity tests.
func Ticks(w float64) int64 {
	return int64(math.Round(w * meterTick))
}

// Add charges work units.
func (m *Meter) Add(w float64) {
	if m != nil && w != 0 {
		m.ticks.Add(Ticks(w))
	}
}

// AddTicks charges pre-scaled integer ticks (see Ticks) — the batch path's
// one-meter-operation-per-batch charge.
func (m *Meter) AddTicks(t int64) {
	if m != nil && t != 0 {
		m.ticks.Add(t)
	}
}

// Work returns the accumulated work units.
func (m *Meter) Work() float64 {
	if m == nil {
		return 0
	}
	return float64(m.ticks.Load()) / meterTick
}

// drain moves this meter's ticks into dst. Parallel workers charge a
// worker-local meter (no contention on the hot path) and drain it into the
// shared statement meter before exiting.
func (m *Meter) drain(dst *Meter) {
	dst.ticks.Add(m.ticks.Swap(0))
}

// NodeStats exposes an operator's runtime counters.
type NodeStats struct {
	RowsOut float64 // rows produced so far
	Done    bool    // reached end of stream
	Opened  bool

	// FirstWork and DoneWork record the statement-global meter reading when
	// the node first acted and when it finished (CHECK nodes maintain them;
	// the harness uses them to plot checkpoint opportunities as fractions of
	// execution, paper Figure 14).
	FirstWork float64
	DoneWork  float64
	Touched   bool // FirstWork recorded

	// Analyze-mode counters (Executor.Analyze): work units this node charged
	// and the wall-clock span between its first and last charge. Off by
	// default so the hot path stays branch-cheap and allocation-free.
	Work        float64
	WallFirstNS int64
	WallLastNS  int64

	// Spilled marks a hash join whose build exceeded the memory budget and
	// charged grace-hash staging; Violated marks a CHECK that raised the
	// violation that stopped this attempt.
	Spilled  bool
	Violated bool
}

// WallNS returns the node's active wall-clock span (analyze mode only).
func (s *NodeStats) WallNS() int64 {
	if s.WallFirstNS == 0 {
		return 0
	}
	return s.WallLastNS - s.WallFirstNS
}

// Node is an executable plan operator.
type Node interface {
	Open() error
	Next() (schema.Row, bool, error)
	Close() error
	Plan() *optimizer.Plan
	Stats() *NodeStats
	Children() []Node
}

// Rewinder is implemented by nodes that can restart their output stream
// without re-opening (base accesses and materializations); the naive
// nested-loop join requires its inner to implement it.
type Rewinder interface {
	Rewind() error
}

// Materializer is implemented by nodes that buffer their entire input
// (SORT, TEMP). After materialization completes, the buffered rows can be
// promoted to a temporary materialized view for reuse (paper §2.3).
type Materializer interface {
	Materialized() ([]schema.Row, bool)
}

// CheckViolation is the error raised when a CHECK range is violated; it
// carries everything the re-optimization controller needs.
type CheckViolation struct {
	Check  *optimizer.CheckMeta
	Node   *optimizer.Plan // the CHECK plan node
	Actual float64         // observed cardinality when the check fired
	Exact  bool            // true if Actual is the complete edge cardinality
}

// Error implements the error interface.
func (v *CheckViolation) Error() string {
	kind := "lower bound"
	if v.Exact {
		kind = "exact"
	}
	return fmt.Sprintf("executor: CHECK #%d (%s) violated: actual cardinality %.0f (%s) outside range [%.1f, %.1f] (estimate %.1f)",
		v.Check.ID, v.Check.Flavor, v.Actual, kind, v.Check.Range.Lo, v.Check.Range.Hi, v.Check.EstCard)
}

// WorkerGate arbitrates the global worker pool between concurrent queries.
// AcquireWorkers asks for up to want additional workers and returns how many
// were granted (0..want) without blocking; every granted worker must be
// returned with exactly one ReleaseWorkers call (the poplint poolleak rule
// checks the pairing). A zero grant means "run inline on the caller's
// goroutine": exchanges degrade to a DOP-1 inline mode that spawns nothing
// yet charges the same simulated work. A nil gate grants every request in
// full, preserving the library's historical spawn-freely behavior.
type WorkerGate interface {
	// AcquireWorkers requests up to want workers, returning the grant.
	AcquireWorkers(want int) int
	// ReleaseWorkers returns previously granted workers to the pool.
	ReleaseWorkers(n int)
}

// workerGrant records an acquisition from a WorkerGate so the owning node can
// release it exactly once on every exit path.
type workerGrant struct {
	gate WorkerGate
	n    int
}

// release returns the grant to the gate. Safe to call more than once and on
// the zero value: the first call zeroes the count.
func (g *workerGrant) release() {
	if g.gate != nil && g.n > 0 {
		g.gate.ReleaseWorkers(g.n)
		g.n = 0
	}
}

// Executor builds executable trees for one query.
type Executor struct {
	Cat    *catalog.Catalog
	Q      *logical.Query
	Cost   optimizer.CostParams
	Meter  *Meter
	Params []types.Datum

	// DOP overrides the DOP recorded in exchange plan nodes at execution
	// time (0 = use the plan's). Work charges are DOP-independent, so the
	// parallel benchmarks use this to run one plan shape at several worker
	// counts.
	DOP int

	// Analyze turns on per-node runtime attribution (NodeStats.Work and the
	// wall-clock span) for EXPLAIN ANALYZE. Off, the only cost is one
	// predictable branch per charge — no allocations, no time syscalls, and
	// a bit-identical work total.
	Analyze bool

	// Trace receives structured runtime events (checkpoint outcomes,
	// exchange worker lifecycles) when non-nil. Emission sites are guarded
	// by a nil check, so the disabled path constructs no events.
	Trace trace.Recorder

	// Gate, when non-nil, arbitrates exchange worker spawning against a
	// global pool: each exchange asks for its plan DOP and runs at whatever
	// width is granted (including an inline zero-goroutine mode at grant 0).
	// Simulated work is bit-identical at every granted width; only wall-clock
	// parallelism changes. Nil preserves ungated spawning.
	Gate WorkerGate

	// BatchSize enables batch-at-a-time execution: operators with a native
	// NextBatch move rows in batches of this many rows, and materializing
	// operators drain their inputs batch-wise. 0 (the default) keeps pure
	// row-at-a-time Volcano execution. The tree must be driven by RunWith
	// with the same size. Work totals are bit-identical across sizes.
	BatchSize int

	tabs   []*catalog.Table
	ectx   *expr.Context
	checks *checkRegistry
	stmt   *Meter // statement-global meter (== Meter outside worker copies)
}

// NewExecutor resolves the query's tables and prepares an executor.
func NewExecutor(cat *catalog.Catalog, q *logical.Query, params []types.Datum, cost optimizer.CostParams, meter *Meter) (*Executor, error) {
	tabs := make([]*catalog.Table, len(q.Tables))
	for i, tr := range q.Tables {
		t, err := cat.Table(tr.Table)
		if err != nil {
			return nil, err
		}
		tabs[i] = t
	}
	if meter == nil {
		meter = &Meter{}
	}
	return &Executor{
		Cat:    cat,
		Q:      q,
		Cost:   cost,
		Meter:  meter,
		Params: params,
		tabs:   tabs,
		ectx:   &expr.Context{Params: params},
		checks: newCheckRegistry(),
		stmt:   meter,
	}, nil
}

// workerCopy returns a shallow copy of the executor whose charges go to the
// given worker-local meter. The copy shares the catalog, the expression
// context (read-only at execution time), the check registry and the
// statement-global meter, so CHECK counting and work-progress readings stay
// global across partition clones.
func (e *Executor) workerCopy(m *Meter) *Executor {
	we := *e
	we.Meter = m
	return &we
}

// statementWork reads the statement's global work progress as seen by this
// (possibly worker-local) executor: the drained statement total plus this
// worker's still-local ticks. Sibling workers' undrained ticks are not
// visible, so the reading is a lower bound on true global work — but it is
// monotonic per observer and consistent between serial and parallel plans,
// unlike the worker-local meter alone (which made cloned CHECKs report
// near-zero FirstWork/DoneWork).
func (e *Executor) statementWork() float64 {
	w := e.stmt.Work()
	if e.Meter != e.stmt {
		w += e.Meter.Work()
	}
	return w
}

// dopFor resolves the execution DOP for an exchange plan node, honoring the
// executor-level override.
func (e *Executor) dopFor(p *optimizer.Plan) int {
	d := p.DOP
	if e.DOP > 0 {
		d = e.DOP
	}
	if d < 1 {
		d = 1
	}
	return d
}

// layout maps query-global column ids to their positions in an operator's
// output rows. Operators build one per input at construction time, so
// resolving a column reference is one map lookup instead of a linear scan of
// the layout per row.
type layout map[int]int

// layoutOf indexes a column layout. The first occurrence wins when an id
// appears twice (matching the old linear scan's behavior).
func layoutOf(cols []int) layout {
	l := make(layout, len(cols))
	for i, c := range cols {
		if _, ok := l[c]; !ok {
			l[c] = i
		}
	}
	return l
}

// pos returns the position of global id g, with cols used for the error
// message only.
func (l layout) pos(cols []int, g int) (int, error) {
	if i, ok := l[g]; ok {
		return i, nil
	}
	return -1, fmt.Errorf("executor: column id %d not present in layout %v", g, cols)
}

// remap rewrites an expression's query-global column ids into positions in
// the given output column layout.
func (e *Executor) remap(ex expr.Expr, cols []int) (expr.Expr, error) {
	if ex == nil {
		return nil, nil
	}
	l := layoutOf(cols)
	var missing error
	out := expr.Remap(ex, func(g int) int {
		if i, ok := l[g]; ok {
			return i
		}
		if missing == nil {
			missing = fmt.Errorf("executor: column id %d not present in layout %v", g, cols)
		}
		return -1
	})
	return out, missing
}

// Build constructs the executable tree for a plan.
func (e *Executor) Build(p *optimizer.Plan) (Node, error) {
	switch p.Op {
	case optimizer.OpTableScan:
		return e.buildTableScan(p)
	case optimizer.OpIndexScan:
		return e.buildIndexScan(p)
	case optimizer.OpHashLookup:
		return e.buildHashLookup(p)
	case optimizer.OpMVScan:
		return e.buildMVScan(p)
	case optimizer.OpNLJN:
		return e.buildNLJN(p)
	case optimizer.OpHSJN:
		return e.buildHSJN(p)
	case optimizer.OpMGJN:
		return e.buildMGJN(p)
	case optimizer.OpSort:
		return e.buildSort(p)
	case optimizer.OpTemp:
		return e.buildTemp(p)
	case optimizer.OpHashAgg:
		return e.buildHashAgg(p)
	case optimizer.OpProject:
		return e.buildProject(p)
	case optimizer.OpCheck:
		return e.buildCheck(p)
	case optimizer.OpExchange:
		return e.buildExchange(p)
	default:
		return nil, fmt.Errorf("executor: unsupported operator %s", p.Op)
	}
}

// runPrealloc caps the cardinality-based preallocation of Run's output
// slice, so a wildly overestimated plan cannot allocate unbounded memory up
// front.
const runPrealloc = 1 << 16

// Run drains a node to completion, honoring the plan's LIMIT. The output
// slice is preallocated from the plan's cardinality estimate, and a Close
// error is surfaced (alongside any rows drained so far) instead of being
// dropped.
func Run(n Node) (rows []schema.Row, err error) {
	if err := n.Open(); err != nil {
		if cerr := n.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, err
	}
	defer func() {
		if cerr := n.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	limit := n.Plan().Limit
	est := int(n.Plan().Card)
	if limit > 0 && limit < est {
		est = limit
	}
	if est < 0 {
		est = 0
	}
	if est > runPrealloc {
		est = runPrealloc
	}
	rows = make([]schema.Row, 0, est)
	for {
		row, ok, nerr := n.Next()
		if nerr != nil {
			return rows, nerr
		}
		if !ok {
			return rows, nil
		}
		rows = append(rows, row)
		if limit > 0 && len(rows) >= limit {
			return rows, nil
		}
	}
}

// Walk visits every node of an executable tree in pre-order.
func Walk(n Node, fn func(Node)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children() {
		Walk(c, fn)
	}
}

// base provides the shared bookkeeping for operators.
type base struct {
	plan     *optimizer.Plan
	stats    NodeStats
	children []Node
}

func (b *base) Plan() *optimizer.Plan { return b.plan }
func (b *base) Stats() *NodeStats     { return &b.stats }
func (b *base) Children() []Node      { return b.children }

// charge adds work to the executor's meter and, in analyze mode, attributes
// it to this node's stats together with the wall-clock span of the node's
// activity. Each node instance is driven by exactly one goroutine (partition
// clones are distinct instances), so the attribution needs no atomics.
func (b *base) charge(e *Executor, w float64) {
	b.chargeTicks(e, Ticks(w), 1)
}

// chargeTicks charges k logical rows of perRow pre-scaled ticks in one
// meter operation — the batched form of charge, and the single path both
// modes fund the meter and the analyze attribution through. Attributing the
// quantized tick value (not the raw float) makes per-node Work exact and
// bit-identical between row and batch execution: every attributed amount is
// a multiple of 2^-20, so float64 accumulation is lossless at the work
// magnitudes the engine produces.
func (b *base) chargeTicks(e *Executor, perRow int64, k int) {
	if k <= 0 {
		return
	}
	t := mulTicksSat(perRow, int64(k))
	e.Meter.AddTicks(t)
	if e.Analyze {
		b.stats.Work += float64(t) / meterTick
		now := time.Now().UnixNano() //poplint:allow determinism analyze-mode wall spans are diagnostic; simulated work stays bit-identical
		if b.stats.WallFirstNS == 0 {
			b.stats.WallFirstNS = now
		}
		b.stats.WallLastNS = now
	}
}

// mulTicksSat multiplies a per-row tick rate by a row count, saturating at
// MaxInt64 instead of wrapping. Tick rates and counts are non-negative in
// every caller (Ticks quantizes non-negative cost weights; counts are batch
// lengths), so saturation only engages at astronomically large products —
// where a pinned meter is correct and a silently negative one would corrupt
// every downstream guard comparison. Non-positive operands charge nothing.
// The two separate guards keep each comparison branch-refinable, which is
// how the lint value layer proves the product safe.
func mulTicksSat(perRow, k int64) int64 {
	if perRow <= 0 || k <= 0 {
		return 0
	}
	if perRow > math.MaxInt64/k {
		return math.MaxInt64
	}
	return perRow * k
}

func (b *base) closeChildren() error {
	var first error
	for _, c := range b.children {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// evalFilter applies a (pre-remapped) filter with three-valued semantics.
func evalFilter(f expr.Expr, ctx *expr.Context, row schema.Row) (bool, error) {
	if f == nil {
		return true, nil
	}
	v, err := f.Eval(ctx, row)
	if err != nil {
		return false, err
	}
	return expr.Accept(v), nil
}
