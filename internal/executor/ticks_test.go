package executor

import (
	"math"
	"testing"
)

// TestMulTicksSat pins the saturating multiply every metering hot path now
// funnels through: exact products in range, MaxInt64 (never a wrapped
// negative) past it, and zero for non-positive operands.
func TestMulTicksSat(t *testing.T) {
	cases := []struct {
		perRow, k, want int64
	}{
		{0, 5, 0},
		{5, 0, 0},
		{-3, 7, 0},
		{3, -7, 0},
		{1, 1, 1},
		{1000, 4096, 4096000},
		{math.MaxInt64, 1, math.MaxInt64},
		{1, math.MaxInt64, math.MaxInt64},
		{math.MaxInt64, 2, math.MaxInt64},
		{math.MaxInt64/2 + 1, 2, math.MaxInt64},
		{math.MaxInt64 / 2, 2, math.MaxInt64 - 1},
		{3037000500, 3037000500, math.MaxInt64}, // ~sqrt(MaxInt64) squared wraps
	}
	for _, tc := range cases {
		if got := mulTicksSat(tc.perRow, tc.k); got != tc.want {
			t.Errorf("mulTicksSat(%d, %d) = %d, want %d", tc.perRow, tc.k, got, tc.want)
		}
		if got := mulTicksSat(tc.perRow, tc.k); got < 0 {
			t.Errorf("mulTicksSat(%d, %d) went negative: %d", tc.perRow, tc.k, got)
		}
	}
}

// TestChargeTicksSaturates drives the chargeTicks path with a rate that
// would wrap int64: the meter must pin at MaxInt64, not go negative.
func TestChargeTicksSaturates(t *testing.T) {
	e := &Executor{Meter: &Meter{}}
	var b base
	b.chargeTicks(e, math.MaxInt64/2, 3)
	if got := e.Meter.ticks.Load(); got != math.MaxInt64 {
		t.Fatalf("meter after saturating charge = %d, want MaxInt64", got)
	}
}
