package executor

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/optimizer"
	"repro/internal/schema"
	"repro/internal/types"
)

// pairFixture builds two tables with controllable contents for join corner
// cases. Values may include NULL keys and duplicates.
func pairFixture(t *testing.T, left, right []types.Datum) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	lt, err := c.CreateTable("lt", schema.New(
		schema.Column{Name: "lk", Type: types.KindInt, Nullable: true},
		schema.Column{Name: "lv", Type: types.KindInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range left {
		lt.Heap.MustInsert(schema.Row{k, types.NewInt(int64(i))})
	}
	rt, err := c.CreateTable("rt", schema.New(
		schema.Column{Name: "rk", Type: types.KindInt, Nullable: true},
		schema.Column{Name: "rv", Type: types.KindInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range right {
		rt.Heap.MustInsert(schema.Row{k, types.NewInt(int64(100 + i))})
	}
	if err := c.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	return c
}

// joinPair runs SELECT l.lk, r.rk FROM lt l, rt r WHERE l.lk = r.rk under
// the given optimizer config and returns the row count.
func joinPair(t *testing.T, cat *catalog.Catalog, cfg func(*optimizer.Optimizer)) int {
	t.Helper()
	b := logical.NewBuilder(cat)
	b.AddTable("lt", "l")
	b.AddTable("rt", "r")
	b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("l", "lk"), R: b.Col("r", "rk")})
	b.SelectCol("l", "lk")
	b.SelectCol("r", "rv")
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt := optimizer.New(cat)
	cfg(opt)
	plan, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(cat, q, nil, opt.Model.Params, &Meter{})
	if err != nil {
		t.Fatal(err)
	}
	root, err := ex.Build(plan)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Run(root)
	if err != nil {
		t.Fatalf("%v\n%s", err, optimizer.Explain(plan, q))
	}
	return len(rows)
}

func ints(vs ...int64) []types.Datum {
	out := make([]types.Datum, len(vs))
	for i, v := range vs {
		out[i] = types.NewInt(v)
	}
	return out
}

var joinConfigs = map[string]func(*optimizer.Optimizer){
	"hash":  func(o *optimizer.Optimizer) { o.DisableNLJN = true; o.DisableMGJN = true },
	"merge": func(o *optimizer.Optimizer) { o.DisableNLJN = true; o.DisableHSJN = true },
	"naive": func(o *optimizer.Optimizer) { o.DisableHSJN = true; o.DisableMGJN = true; o.DisableIndexJoin = true },
}

func TestJoinCornerCases(t *testing.T) {
	cases := []struct {
		name        string
		left, right []types.Datum
		want        int
	}{
		{"bothEmpty", nil, nil, 0},
		{"leftEmpty", nil, ints(1, 2, 3), 0},
		{"rightEmpty", ints(1, 2, 3), nil, 0},
		{"noOverlap", ints(1, 2, 3), ints(4, 5, 6), 0},
		{"oneMatch", ints(1, 2, 3), ints(3, 4, 5), 1},
		{"dupLeft", ints(7, 7, 7, 8), ints(7, 9), 3},
		{"dupRight", ints(7, 8), ints(7, 7, 7, 9), 3},
		{"dupBoth", ints(5, 5, 6), ints(5, 5, 5, 6), 7}, // 2*3 + 1*1
		{"allSame", ints(1, 1, 1), ints(1, 1), 6},
		{"nullsNeverMatch", []types.Datum{types.Null, types.NewInt(1), types.Null},
			[]types.Datum{types.Null, types.NewInt(1)}, 1},
		{"allNulls", []types.Datum{types.Null, types.Null}, []types.Datum{types.Null}, 0},
		{"firstAndLast", ints(0, 50, 99), ints(0, 99), 2},
	}
	for _, c := range cases {
		for method, cfg := range joinConfigs {
			t.Run(c.name+"/"+method, func(t *testing.T) {
				cat := pairFixture(t, c.left, c.right)
				if got := joinPair(t, cat, cfg); got != c.want {
					t.Errorf("%s/%s: got %d rows, want %d", c.name, method, got, c.want)
				}
			})
		}
	}
}

func TestHashJoinSpillCharges(t *testing.T) {
	// A build side far bigger than the memory budget must charge spill work.
	left := make([]types.Datum, 200)
	right := make([]types.Datum, 5000)
	for i := range left {
		left[i] = types.NewInt(int64(i))
	}
	for i := range right {
		right[i] = types.NewInt(int64(i % 200))
	}
	cat := pairFixture(t, left, right)
	b := logical.NewBuilder(cat)
	b.AddTable("rt", "r") // big side
	b.AddTable("lt", "l")
	b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("r", "rk"), R: b.Col("l", "lk")})
	b.SelectCol("r", "rv")
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	run := func(mem float64) float64 {
		opt := optimizer.New(cat)
		opt.DisableNLJN = true
		opt.DisableMGJN = true
		opt.Model.Params.MemoryBytes = mem
		plan, err := opt.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		meter := &Meter{}
		ex, _ := NewExecutor(cat, q, nil, opt.Model.Params, meter)
		root, err := ex.Build(plan)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(root); err != nil {
			t.Fatal(err)
		}
		return meter.Work()
	}
	roomy := run(1 << 30)
	tight := run(1 << 10)
	if tight <= roomy {
		t.Errorf("spilling run (%v) must cost more than in-memory (%v)", tight, roomy)
	}
}

func TestSortStability(t *testing.T) {
	// Rows with equal keys must keep their input order (SliceStable).
	c := catalog.New()
	tab, err := c.CreateTable("s", schema.New(
		schema.Column{Name: "k", Type: types.KindInt},
		schema.Column{Name: "seq", Type: types.KindInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		tab.Heap.MustInsert(schema.Row{types.NewInt(int64(i % 3)), types.NewInt(int64(i))})
	}
	if err := c.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	b := logical.NewBuilder(c)
	b.AddTable("s", "s")
	b.SelectCol("s", "k")
	b.SelectCol("s", "seq")
	b.OrderBy(b.Col("s", "k"), false)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt := optimizer.New(c)
	plan, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	ex, _ := NewExecutor(c, q, nil, opt.Model.Params, &Meter{})
	root, _ := ex.Build(plan)
	rows, err := Run(root)
	if err != nil {
		t.Fatal(err)
	}
	prevKey, prevSeq := int64(-1), int64(-1)
	for _, r := range rows {
		k, seq := r[0].Int(), r[1].Int()
		if k == prevKey && seq < prevSeq {
			t.Fatalf("sort not stable: seq %d after %d within key %d", seq, prevSeq, k)
		}
		if k < prevKey {
			t.Fatalf("not sorted: key %d after %d", k, prevKey)
		}
		prevKey, prevSeq = k, seq
	}
}

func TestAggregationEdges(t *testing.T) {
	c := catalog.New()
	tab, err := c.CreateTable("e", schema.New(
		schema.Column{Name: "g", Type: types.KindInt},
		schema.Column{Name: "v", Type: types.KindInt, Nullable: true},
	))
	if err != nil {
		t.Fatal(err)
	}
	// Group 1 has only NULL values; group 2 mixes.
	tab.Heap.MustInsert(schema.Row{types.NewInt(1), types.Null})
	tab.Heap.MustInsert(schema.Row{types.NewInt(1), types.Null})
	tab.Heap.MustInsert(schema.Row{types.NewInt(2), types.NewInt(10)})
	tab.Heap.MustInsert(schema.Row{types.NewInt(2), types.Null})
	if err := c.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	b := logical.NewBuilder(c)
	b.AddTable("e", "e")
	b.SelectCol("e", "g")
	b.SelectAgg(logical.AggCount, nil, "n")              // COUNT(*) counts rows
	b.SelectAgg(logical.AggCount, b.Col("e", "v"), "nv") // COUNT(v) skips NULLs
	b.SelectAgg(logical.AggSum, b.Col("e", "v"), "sv")
	b.SelectAgg(logical.AggMin, b.Col("e", "v"), "minv")
	b.SelectAgg(logical.AggAvg, b.Col("e", "v"), "avgv")
	b.GroupBy(b.Col("e", "g"))
	b.OrderBy(b.Col("e", "g"), false)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt := optimizer.New(c)
	plan, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	ex, _ := NewExecutor(c, q, nil, opt.Model.Params, &Meter{})
	root, _ := ex.Build(plan)
	rows, err := Run(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("groups = %d", len(rows))
	}
	g1 := rows[0]
	if g1[1].Int() != 2 || g1[2].Int() != 0 {
		t.Errorf("group 1: COUNT(*)=%v COUNT(v)=%v, want 2/0", g1[1], g1[2])
	}
	if !g1[3].IsNull() || !g1[4].IsNull() || !g1[5].IsNull() {
		t.Errorf("group 1: SUM/MIN/AVG over all NULLs must be NULL: %v", g1)
	}
	g2 := rows[1]
	if g2[1].Int() != 2 || g2[2].Int() != 1 || g2[3].Float() != 10 {
		t.Errorf("group 2: %v", g2)
	}
}

func TestEmptyAggregationYieldsOneRow(t *testing.T) {
	c := catalog.New()
	if _, err := c.CreateTable("empty", schema.New(
		schema.Column{Name: "x", Type: types.KindInt},
	)); err != nil {
		t.Fatal(err)
	}
	if err := c.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	b := logical.NewBuilder(c)
	b.AddTable("empty", "e")
	b.SelectAgg(logical.AggCount, nil, "n")
	b.SelectAgg(logical.AggSum, b.Col("e", "x"), "s")
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt := optimizer.New(c)
	plan, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	ex, _ := NewExecutor(c, q, nil, opt.Model.Params, &Meter{})
	root, _ := ex.Build(plan)
	rows, err := Run(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("ungrouped aggregate over empty input must yield 1 row, got %d", len(rows))
	}
	if rows[0][0].Int() != 0 || !rows[0][1].IsNull() {
		t.Errorf("COUNT(*)=0 and SUM=NULL expected, got %v", rows[0])
	}
}

// TestHashLookupAccessPath verifies the optimizer picks a hash-index point
// lookup for an equality predicate and that execution matches a plain scan.
func TestHashLookupAccessPath(t *testing.T) {
	c := catalog.New()
	tab, err := c.CreateTable("h", schema.New(
		schema.Column{Name: "k", Type: types.KindString},
		schema.Column{Name: "v", Type: types.KindInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		tab.Heap.MustInsert(schema.Row{
			types.NewString([]string{"red", "blue", "green", "gold"}[i%4]),
			types.NewInt(int64(i)),
		})
	}
	if _, err := c.CreateHashIndex("h_k", "h", "k"); err != nil {
		t.Fatal(err)
	}
	if err := c.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	b := logical.NewBuilder(c)
	b.AddTable("h", "h")
	b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("h", "k"), R: &expr.Const{Val: types.NewString("blue")}})
	b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("h", "v"), R: &expr.Const{Val: types.NewInt(100)}})
	b.SelectCol("h", "v")
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt := optimizer.New(c)
	plan, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Count(optimizer.OpHashLookup) != 1 {
		t.Fatalf("equality on a hash-indexed column should use HXSCAN:\n%s", optimizer.Explain(plan, q))
	}
	ex, _ := NewExecutor(c, q, nil, opt.Model.Params, &Meter{})
	root, err := ex.Build(plan)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Run(root)
	if err != nil {
		t.Fatal(err)
	}
	// blue = i%4==1 and v<100 → v in {1,5,...,97} = 25 rows.
	if len(rows) != 25 {
		t.Errorf("got %d rows, want 25", len(rows))
	}
	// Missing key: zero rows, no error.
	b2 := logical.NewBuilder(c)
	b2.AddTable("h", "h")
	b2.Where(&expr.Cmp{Op: expr.EQ, L: b2.Col("h", "k"), R: &expr.Const{Val: types.NewString("mauve")}})
	b2.SelectCol("h", "v")
	q2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := optimizer.New(c).Optimize(q2)
	if err != nil {
		t.Fatal(err)
	}
	ex2, _ := NewExecutor(c, q2, nil, opt.Model.Params, &Meter{})
	root2, _ := ex2.Build(p2)
	rows2, err := Run(root2)
	if err != nil || len(rows2) != 0 {
		t.Errorf("absent key: rows=%d err=%v", len(rows2), err)
	}
}
