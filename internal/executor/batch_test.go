package executor

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/optimizer"
	"repro/internal/schema"
	"repro/internal/types"
)

func TestBatchAllocSlabSemantics(t *testing.T) {
	b := NewBatch(4)
	r1 := b.Alloc(3)
	r1[0], r1[1], r1[2] = types.NewInt(1), types.NewInt(2), types.NewInt(3)
	r2 := b.Alloc(3)
	r2[0], r2[1], r2[2] = types.NewInt(4), types.NewInt(5), types.NewInt(6)
	if !b.Ephemeral() {
		t.Error("Alloc must mark the batch ephemeral")
	}
	if b.Len() != 2 {
		t.Fatalf("len = %d, want 2", b.Len())
	}
	if b.Rows[0][0].Int() != 1 || b.Rows[1][2].Int() != 6 {
		t.Error("carved rows lost their values")
	}

	// dropLast reclaims the slab tail: the next Alloc reuses the same space.
	b.dropLast(3)
	if b.Len() != 1 {
		t.Fatalf("len after dropLast = %d", b.Len())
	}
	r3 := b.Alloc(3)
	r3[0], r3[1], r3[2] = types.NewInt(7), types.NewInt(8), types.NewInt(9)
	if b.Rows[1][0].Int() != 7 {
		t.Error("Alloc after dropLast did not reuse the tail")
	}
	if b.Rows[0][0].Int() != 1 {
		t.Error("dropLast corrupted an earlier row")
	}

	// Slab growth mid-batch must leave previously carved rows intact.
	g := NewBatch(2)
	a := g.Alloc(2)
	a[0], a[1] = types.NewInt(10), types.NewInt(11)
	wide := g.Alloc(64) // exceeds the initial slab block
	wide[0] = types.NewInt(12)
	if g.Rows[0][0].Int() != 10 || g.Rows[0][1].Int() != 11 {
		t.Error("slab growth invalidated an earlier row")
	}

	// Reset keeps capacity but empties rows and slab.
	b.Reset()
	if b.Len() != 0 || b.Ephemeral() {
		t.Error("Reset must empty the batch and clear ephemeral")
	}

	// Zero-width rows are representable (projection of no columns).
	z := NewBatch(1)
	if got := z.Alloc(0); len(got) != 0 {
		t.Errorf("Alloc(0) row has %d datums", len(got))
	}
}

func TestAppendBatchRowsCopiesEphemeral(t *testing.T) {
	b := NewBatch(2)
	r := b.Alloc(2)
	r[0], r[1] = types.NewInt(1), types.NewInt(2)
	var dst []schema.Row
	dst = appendBatchRows(dst, b)

	// Producer reuses the slab for its next batch; the copy must survive.
	b.Reset()
	r2 := b.Alloc(2)
	r2[0], r2[1] = types.NewInt(99), types.NewInt(99)
	if dst[0][0].Int() != 1 || dst[0][1].Int() != 2 {
		t.Error("ephemeral rows were retained by reference, not copied")
	}

	// Stable batches append by reference (no copy needed).
	s := NewBatch(2)
	stable := schema.Row{types.NewInt(7)}
	s.Append(stable)
	dst2 := appendBatchRows(nil, s)
	if &dst2[0][0] != &stable[0] {
		t.Error("stable rows should be appended by reference")
	}
}

// runModes executes one plan in row mode and at every batch size, asserting
// identical result multisets and a bit-identical work total, and returns the
// row-mode rows.
func runModes(t *testing.T, cat *catalog.Catalog, q *logical.Query, plan *optimizer.Plan,
	params optimizer.CostParams, dop int, label string) []schema.Row {
	t.Helper()
	exec := func(batchSize int) ([]schema.Row, float64) {
		meter := &Meter{}
		ex, err := NewExecutor(cat, q, nil, params, meter)
		if err != nil {
			t.Fatal(err)
		}
		ex.DOP = dop
		ex.BatchSize = batchSize
		root, err := ex.Build(plan)
		if err != nil {
			t.Fatalf("build: %v\n%s", err, optimizer.Explain(plan, q))
		}
		rows, err := RunWith(root, batchSize)
		if err != nil {
			t.Fatalf("%s size=%d: %v", label, batchSize, err)
		}
		return rows, meter.Work()
	}
	wantRows, wantWork := exec(0)
	for _, size := range []int{1, 3, 64, 1024} {
		rows, work := exec(size)
		sameRows(t, rows, wantRows, label)
		if work != wantWork {
			t.Errorf("%s size=%d: work = %v, want %v (row mode)", label, size, work, wantWork)
		}
	}
	return wantRows
}

// TestBatchMatchesRowExecution pins the tentpole invariant: result rows and
// the simulated work total are bit-identical between row-at-a-time and
// batch-at-a-time execution, at every batch size, across plan shapes that
// exercise scans, hash joins, aggregation and sort.
func TestBatchMatchesRowExecution(t *testing.T) {
	cat := fixture(t)

	t.Run("threeWayJoin", func(t *testing.T) {
		q := threeWayQuery(t, cat, 50)
		for name, cfg := range map[string]func(*optimizer.Optimizer){
			"default":  func(o *optimizer.Optimizer) {},
			"onlyHSJN": func(o *optimizer.Optimizer) { o.DisableNLJN = true; o.DisableMGJN = true },
		} {
			opt := optimizer.New(cat)
			cfg(opt)
			plan, err := opt.Optimize(q)
			if err != nil {
				t.Fatal(err)
			}
			rows := runModes(t, cat, q, plan, opt.Model.Params, 1, name)
			sameRows(t, rows, reference(t, cat, 50), name)
		}
	})

	t.Run("aggregationAndSort", func(t *testing.T) {
		b := logical.NewBuilder(cat)
		b.AddTable("emp", "e")
		b.AddTable("dept", "d")
		b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("e", "e_dept"), R: b.Col("d", "d_id")})
		b.SelectCol("d", "d_name")
		b.SelectAgg(logical.AggCount, nil, "n")
		b.SelectAgg(logical.AggSum, b.Col("e", "e_salary"), "total")
		b.GroupBy(b.Col("d", "d_name"))
		b.OrderBy(b.Col("d", "d_name"), false)
		q, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		opt := optimizer.New(cat)
		plan, err := opt.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		rows := runModes(t, cat, q, plan, opt.Model.Params, 1, "agg")
		if len(rows) != 4 {
			t.Errorf("got %d groups, want 4", len(rows))
		}
	})

	t.Run("indexScanWithLimit", func(t *testing.T) {
		b := logical.NewBuilder(cat)
		b.AddTable("emp", "e")
		b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("e", "e_id"), R: &expr.Const{Val: types.NewInt(200)}})
		b.SelectCol("e", "e_id")
		b.OrderBy(b.Col("e", "e_id"), true)
		b.Limit(7)
		q, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		opt := optimizer.New(cat)
		plan, err := opt.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		rows := runModes(t, cat, q, plan, opt.Model.Params, 1, "limit")
		if len(rows) != 7 {
			t.Errorf("limit returned %d rows", len(rows))
		}
	})
}

// TestBatchParallelMatchesRow extends the invariant across exchanges: the
// partitioned hash join's work total must be identical across row/batch mode
// at every DOP.
func TestBatchParallelMatchesRow(t *testing.T) {
	cat := fixture(t)
	q := joinQuery(t, cat)
	opt := parallelOptimizer(cat, 4)
	plan, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if !planContains(plan, func(p *optimizer.Plan) bool { return p.Op == optimizer.OpExchange }) {
		t.Fatalf("expected a parallel plan:\n%s", optimizer.Explain(plan, q))
	}
	var wantRows []schema.Row
	var wantWork float64
	for _, dop := range []int{1, 2, 4} {
		rows := runModes(t, cat, q, plan, opt.Model.Params, dop, "parallel")
		meter := &Meter{}
		ex, err := NewExecutor(cat, q, nil, opt.Model.Params, meter)
		if err != nil {
			t.Fatal(err)
		}
		ex.DOP = dop
		root, err := ex.Build(plan)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(root); err != nil {
			t.Fatal(err)
		}
		if wantRows == nil {
			wantRows, wantWork = rows, meter.Work()
			continue
		}
		sameRows(t, rows, wantRows, "parallel dop")
		if meter.Work() != wantWork {
			t.Errorf("dop=%d: work = %v, want %v", dop, meter.Work(), wantWork)
		}
	}
}

// batchViolationRun executes a plan expecting a CheckViolation, returning the
// rows delivered before the violation and the work total.
func batchViolationRun(t *testing.T, cat *catalog.Catalog, q *logical.Query, plan *optimizer.Plan,
	params optimizer.CostParams, batchSize int) ([]schema.Row, float64, *CheckViolation) {
	t.Helper()
	meter := &Meter{}
	ex, err := NewExecutor(cat, q, nil, params, meter)
	if err != nil {
		t.Fatal(err)
	}
	ex.BatchSize = batchSize
	root, err := ex.Build(plan)
	if err != nil {
		t.Fatal(err)
	}
	rows, runErr := RunWith(root, batchSize)
	cv, ok := runErr.(*CheckViolation)
	if !ok {
		t.Fatalf("size=%d: want CheckViolation, got %v", batchSize, runErr)
	}
	return rows, meter.Work(), cv
}

// TestBatchCheckUpperViolationParity pins the eager CHECK's batch semantics:
// the violation fires at exactly count == Hi+1, the rows below the bound are
// still delivered, and the work total matches row mode bit-for-bit — at
// every batch size, including sizes that straddle the crossing row.
func TestBatchCheckUpperViolationParity(t *testing.T) {
	cat := fixture(t)
	b := logical.NewBuilder(cat)
	b.AddTable("emp", "e")
	b.SelectCol("e", "e_id")
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt := optimizer.New(cat)
	plan, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	plan.Children[0] = wrapCheck(plan.Children[0], optimizer.Range{Lo: 0, Hi: 100}, optimizer.ECDC)

	wantRows, wantWork, wantCV := batchViolationRun(t, cat, q, plan, opt.Model.Params, 0)
	if wantCV.Actual != 101 || wantCV.Exact {
		t.Fatalf("row mode violation: actual=%v exact=%v", wantCV.Actual, wantCV.Exact)
	}
	for _, size := range []int{1, 7, 100, 101, 1024} {
		rows, work, cv := batchViolationRun(t, cat, q, plan, opt.Model.Params, size)
		if cv.Actual != 101 || cv.Exact {
			t.Errorf("size=%d: violation actual=%v exact=%v, want 101/false", size, cv.Actual, cv.Exact)
		}
		if len(rows) != len(wantRows) {
			t.Errorf("size=%d: %d rows delivered before violation, want %d", size, len(rows), len(wantRows))
		}
		if work != wantWork {
			t.Errorf("size=%d: work = %v, want %v", size, work, wantWork)
		}
	}
}

// TestBatchCheckLowerViolationParity pins the end-of-stream lower-bound
// check: exact violation at the full cardinality, identical work.
func TestBatchCheckLowerViolationParity(t *testing.T) {
	cat := fixture(t)
	b := logical.NewBuilder(cat)
	b.AddTable("emp", "e")
	b.SelectCol("e", "e_id")
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt := optimizer.New(cat)
	plan, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	plan.Children[0] = wrapCheck(plan.Children[0], optimizer.Range{Lo: 1000, Hi: math.Inf(1)}, optimizer.ECDC)

	wantRows, wantWork, wantCV := batchViolationRun(t, cat, q, plan, opt.Model.Params, 0)
	if !wantCV.Exact || wantCV.Actual != 500 {
		t.Fatalf("row mode EOF violation: exact=%v actual=%v", wantCV.Exact, wantCV.Actual)
	}
	for _, size := range []int{1, 64, 1024} {
		rows, work, cv := batchViolationRun(t, cat, q, plan, opt.Model.Params, size)
		if !cv.Exact || cv.Actual != 500 {
			t.Errorf("size=%d: EOF violation exact=%v actual=%v", size, cv.Exact, cv.Actual)
		}
		if len(rows) != len(wantRows) {
			t.Errorf("size=%d: %d rows, want %d", size, len(rows), len(wantRows))
		}
		if work != wantWork {
			t.Errorf("size=%d: work = %v, want %v", size, work, wantWork)
		}
	}
}

// TestBatchCheckPassParity runs an in-range CHECK through the batch path and
// expects a clean pass with identical rows and work.
func TestBatchCheckPassParity(t *testing.T) {
	cat := fixture(t)
	b := logical.NewBuilder(cat)
	b.AddTable("emp", "e")
	b.SelectCol("e", "e_id")
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt := optimizer.New(cat)
	plan, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	plan.Children[0] = wrapCheck(plan.Children[0], optimizer.Range{Lo: 100, Hi: 1000}, optimizer.LC)
	rows := runModes(t, cat, q, plan, opt.Model.Params, 1, "checkPass")
	if len(rows) != 500 {
		t.Errorf("got %d rows, want 500", len(rows))
	}
}

// TestRunWithFallsBackForRowOnlyRoot documents the shim: a root without a
// native batch path (the row-only SORT output) is still driven correctly —
// RunWith degrades to Run while converted operators below it batch freely.
func TestRunWithFallsBackForRowOnlyRoot(t *testing.T) {
	cat := fixture(t)
	b := logical.NewBuilder(cat)
	b.AddTable("emp", "e")
	b.SelectCol("e", "e_id")
	b.OrderBy(b.Col("e", "e_id"), true)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt := optimizer.New(cat)
	plan, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Op != optimizer.OpSort {
		t.Skipf("expected SORT root, got %s", plan.Op)
	}
	rows := runModes(t, cat, q, plan, opt.Model.Params, 1, "sortRoot")
	if len(rows) != 500 {
		t.Errorf("got %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1][0].Int() < rows[i][0].Int() {
			t.Fatal("descending order violated")
		}
	}
}
