package catalog

import (
	"strings"
	"testing"

	"repro/internal/types"
)

func TestLoadCSVInference(t *testing.T) {
	c := New()
	data := `id,score,when,label
1,1.5,2020-01-02,alpha
2,2,2020-02-03,beta
3,,2020-03-04,
`
	tab, err := c.LoadCSV("m", strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if tab.RowCount() != 3 {
		t.Fatalf("rows = %v", tab.RowCount())
	}
	wantKinds := []types.Kind{types.KindInt, types.KindFloat, types.KindDate, types.KindString}
	for i, want := range wantKinds {
		if got := tab.Schema.Col(i).Type; got != want {
			t.Errorf("column %d kind = %v, want %v", i, got, want)
		}
	}
	// Empty fields load as NULL and mark the column nullable.
	row, _ := tab.Heap.Get(2)
	if !row[1].IsNull() || !row[3].IsNull() {
		t.Errorf("empty fields should be NULL: %v", row)
	}
	if !tab.Schema.Col(1).Nullable || tab.Schema.Col(0).Nullable {
		t.Error("nullability inference wrong")
	}
	// Statistics analyzed.
	if tab.Stats(0) == nil || tab.Stats(0).RowCount != 3 {
		t.Error("stats not analyzed")
	}
	// Values parsed correctly.
	row0, _ := tab.Heap.Get(0)
	if row0[0].Int() != 1 || row0[1].Float() != 1.5 || row0[3].Str() != "alpha" {
		t.Errorf("row 0 = %v", row0)
	}
	if row0[2].Kind() != types.KindDate {
		t.Errorf("date kind = %v", row0[2].Kind())
	}
}

func TestLoadCSVIntPromotesToFloat(t *testing.T) {
	c := New()
	tab, err := c.LoadCSV("f", strings.NewReader("x\n1\n2.5\n3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Schema.Col(0).Type != types.KindFloat {
		t.Errorf("mixed int/float column = %v, want DOUBLE", tab.Schema.Col(0).Type)
	}
}

func TestLoadCSVAllEmptyColumn(t *testing.T) {
	c := New()
	tab, err := c.LoadCSV("e", strings.NewReader("a,b\n1,\n2,\n"))
	if err != nil {
		t.Fatal(err)
	}
	col := tab.Schema.Col(1)
	if col.Type != types.KindString || !col.Nullable {
		t.Errorf("all-empty column = %v nullable=%v", col.Type, col.Nullable)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty input":       "",
		"empty column name": "a,,c\n1,2,3\n",
		"ragged row":        "a,b\n1\n",
	}
	for name, data := range cases {
		c := New()
		if _, err := c.LoadCSV("t", strings.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Duplicate table name.
	c := New()
	if _, err := c.LoadCSV("dup", strings.NewReader("a\n1\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadCSV("dup", strings.NewReader("a\n1\n")); err == nil {
		t.Error("duplicate table should error")
	}
}

func TestLoadCSVHeaderOnly(t *testing.T) {
	c := New()
	tab, err := c.LoadCSV("h", strings.NewReader("a,b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tab.RowCount() != 0 {
		t.Error("header-only CSV should create an empty table")
	}
}
