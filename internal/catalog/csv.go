package catalog

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/schema"
	"repro/internal/types"
)

// LoadCSV creates a table from CSV data and populates it. The first record
// must be a header of column names. Column types are inferred from the data:
// a column whose every non-empty value parses as an integer is INTEGER, then
// DOUBLE, then DATE (2006-01-02), otherwise VARCHAR. Empty fields load as
// NULL. The whole input is buffered (the engine is in-memory anyway), so
// inference sees every row. Statistics are analyzed before returning.
func (c *Catalog) LoadCSV(tableName string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("catalog: reading CSV for %s: %w", tableName, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("catalog: CSV for %s has no header", tableName)
	}
	header := records[0]
	if len(header) == 0 {
		return nil, fmt.Errorf("catalog: CSV for %s has an empty header", tableName)
	}
	for i, name := range header {
		header[i] = strings.TrimSpace(name)
		if header[i] == "" {
			return nil, fmt.Errorf("catalog: CSV for %s: empty column name at position %d", tableName, i)
		}
	}
	rows := records[1:]
	for n, rec := range rows {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("catalog: CSV for %s: row %d has %d fields, header has %d",
				tableName, n+1, len(rec), len(header))
		}
	}

	cols := make([]schema.Column, len(header))
	for i, name := range header {
		kind, nullable := inferColumnKind(rows, i)
		cols[i] = schema.Column{Name: name, Type: kind, Nullable: nullable}
	}
	t, err := c.CreateTable(tableName, schema.New(cols...))
	if err != nil {
		return nil, err
	}
	for n, rec := range rows {
		row := make(schema.Row, len(cols))
		for i, field := range rec {
			d, err := parseDatum(field, cols[i].Type)
			if err != nil {
				return nil, fmt.Errorf("catalog: CSV for %s: row %d column %s: %w",
					tableName, n+1, cols[i].Name, err)
			}
			row[i] = d
		}
		t.Heap.MustInsert(row)
	}
	if err := c.AnalyzeTable(tableName); err != nil {
		return nil, err
	}
	return t, nil
}

// inferColumnKind picks the narrowest kind every non-empty value fits.
func inferColumnKind(rows [][]string, col int) (types.Kind, bool) {
	canInt, canFloat, canDate := true, true, true
	nullable := false
	sawValue := false
	for _, rec := range rows {
		v := strings.TrimSpace(rec[col])
		if v == "" {
			nullable = true
			continue
		}
		sawValue = true
		if canInt {
			if _, err := strconv.ParseInt(v, 10, 64); err != nil {
				canInt = false
			}
		}
		if canFloat {
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				canFloat = false
			}
		}
		if canDate {
			if _, err := time.Parse("2006-01-02", v); err != nil {
				canDate = false
			}
		}
	}
	switch {
	case !sawValue:
		return types.KindString, true
	case canInt:
		return types.KindInt, nullable
	case canFloat:
		return types.KindFloat, nullable
	case canDate:
		return types.KindDate, nullable
	default:
		return types.KindString, nullable
	}
}

// parseDatum converts one CSV field to the column's kind; empty is NULL.
func parseDatum(field string, kind types.Kind) (types.Datum, error) {
	v := strings.TrimSpace(field)
	if v == "" {
		return types.Null, nil
	}
	switch kind {
	case types.KindInt:
		i, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return types.Null, err
		}
		return types.NewInt(i), nil
	case types.KindFloat:
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return types.Null, err
		}
		return types.NewFloat(f), nil
	case types.KindDate:
		t, err := time.Parse("2006-01-02", v)
		if err != nil {
			return types.Null, err
		}
		return types.MakeDate(t.Year(), t.Month(), t.Day()), nil
	default:
		return types.NewString(v), nil
	}
}
