package catalog

import (
	"math"
	"testing"

	"repro/internal/schema"
	"repro/internal/types"
)

func buildCatalog(t *testing.T) (*Catalog, *Table) {
	t.Helper()
	c := New()
	s := schema.New(
		schema.Column{Name: "id", Type: types.KindInt},
		schema.Column{Name: "grp", Type: types.KindInt},
		schema.Column{Name: "label", Type: types.KindString, Nullable: true},
	)
	tab, err := c.CreateTable("items", s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		label := types.NewString("even")
		if i%2 == 1 {
			label = types.Null
		}
		tab.Heap.MustInsert(schema.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 10)), label})
	}
	return c, tab
}

func TestCreateAndLookupTable(t *testing.T) {
	c, _ := buildCatalog(t)
	tab, err := c.Table("ITEMS") // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if tab.Name != "items" || tab.RowCount() != 200 {
		t.Errorf("table = %s rows = %v", tab.Name, tab.RowCount())
	}
	if _, err := c.Table("missing"); err == nil {
		t.Error("missing table should error")
	}
	if _, err := c.CreateTable("items", tab.Schema); err == nil {
		t.Error("duplicate create should error")
	}
	names := c.TableNames()
	if len(names) != 1 || names[0] != "items" {
		t.Errorf("names = %v", names)
	}
}

func TestCreateIndexes(t *testing.T) {
	c, tab := buildCatalog(t)
	bt, err := c.CreateBTreeIndex("items_id", "items", "id")
	if err != nil {
		t.Fatal(err)
	}
	if bt.EntryCount() != 200 {
		t.Errorf("btree entries = %d", bt.EntryCount())
	}
	if tab.BTreeOn(0) != bt {
		t.Error("BTreeOn(0) should find the index")
	}
	if tab.BTreeOn(1) != nil {
		t.Error("BTreeOn(1) should be nil")
	}
	hx, err := c.CreateHashIndex("items_grp", "items", "grp")
	if err != nil {
		t.Fatal(err)
	}
	if tab.HashOn(1) != hx {
		t.Error("HashOn(1) should find the index")
	}
	if tab.HashOn(0) != nil {
		t.Error("HashOn(0) should be nil")
	}
	// Errors.
	if _, err := c.CreateBTreeIndex("x", "missing", "id"); err == nil {
		t.Error("index on missing table should error")
	}
	if _, err := c.CreateBTreeIndex("x", "items", "nope"); err == nil {
		t.Error("index on missing column should error")
	}
	if _, err := c.CreateHashIndex("x", "items", "nope"); err == nil {
		t.Error("hash index on missing column should error")
	}
}

func TestAnalyzeTable(t *testing.T) {
	c, tab := buildCatalog(t)
	if tab.Stats(0) != nil {
		t.Error("stats should be nil before analyze")
	}
	if err := c.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	cs := tab.Stats(0)
	if cs == nil {
		t.Fatal("stats missing after analyze")
	}
	if cs.RowCount != 200 || math.Abs(cs.Distinct-200) > 2 {
		t.Errorf("id stats: rows=%v distinct=%v", cs.RowCount, cs.Distinct)
	}
	grp := tab.Stats(1)
	if math.Abs(grp.Distinct-10) > 1 {
		t.Errorf("grp distinct = %v, want ~10", grp.Distinct)
	}
	lbl := tab.Stats(2)
	if math.Abs(lbl.NullFraction-0.5) > 0.01 {
		t.Errorf("label null fraction = %v, want 0.5", lbl.NullFraction)
	}
	if tab.Stats(-1) != nil || tab.Stats(99) != nil {
		t.Error("out-of-range stats should be nil")
	}
	if err := c.AnalyzeTable("missing"); err == nil {
		t.Error("analyze of missing table should error")
	}
}

func TestMatViewRegistry(t *testing.T) {
	c := New()
	if c.View("sig") != nil {
		t.Error("empty registry should miss")
	}
	v := &MatView{
		Signature: "sig",
		Schema:    schema.New(schema.Column{Name: "a", Type: types.KindInt}),
		Cols:      []int{7},
		Rows:      []schema.Row{{types.NewInt(1)}},
		Card:      1,
	}
	c.RegisterView(v)
	if got := c.View("sig"); got != v {
		t.Error("view lookup failed")
	}
	if c.ViewCount() != 1 {
		t.Error("view count")
	}
	// Same signature replaces.
	v2 := &MatView{Signature: "sig", Card: 2}
	c.RegisterView(v2)
	if c.ViewCount() != 1 || c.View("sig").Card != 2 {
		t.Error("replacement failed")
	}
	c.RegisterView(&MatView{Signature: "other"})
	if len(c.Views()) != 2 {
		t.Error("views listing")
	}
	c.DropViews()
	if c.ViewCount() != 0 || c.View("sig") != nil {
		t.Error("drop views failed")
	}
}
