// Package catalog holds database metadata: tables, their indexes and
// statistics, and the registry of temporary materialized views that POP
// creates from intermediate results during re-optimization (paper §2.3).
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/types"
)

// Table bundles a heap with its schema, indexes and statistics.
type Table struct {
	Name    string
	Schema  *schema.Schema
	Heap    *storage.Table
	Hash    []*storage.HashIndex
	BTrees  []*storage.BTreeIndex
	ColStat []*stats.ColumnStats // by ordinal; nil until AnalyzeTable
}

// RowCount returns the table cardinality.
func (t *Table) RowCount() float64 { return float64(t.Heap.RowCount()) }

// BTreeOn returns the B+tree index whose key is the given ordinal, or nil.
func (t *Table) BTreeOn(ord int) *storage.BTreeIndex {
	for _, ix := range t.BTrees {
		if ix.KeyOrdinal() == ord {
			return ix
		}
	}
	return nil
}

// HashOn returns a hash index whose key is exactly the given single
// ordinal, or nil.
func (t *Table) HashOn(ord int) *storage.HashIndex {
	for _, ix := range t.Hash {
		k := ix.KeyOrdinals()
		if len(k) == 1 && k[0] == ord {
			return ix
		}
	}
	return nil
}

// Stats returns the column statistics for an ordinal, or nil.
func (t *Table) Stats(ord int) *stats.ColumnStats {
	if ord < 0 || ord >= len(t.ColStat) {
		return nil
	}
	return t.ColStat[ord]
}

// MatView is a temporary materialized view created from an intermediate
// result at a CHECK. Its signature identifies the logical content — the set
// of base tables joined and the canonical text of all predicates applied —
// which is how the optimizer matches it against subplans during
// re-optimization. Cardinality is exact, taken from the runtime counter.
type MatView struct {
	Signature string
	Schema    *schema.Schema
	Cols      []int // query-global column ids, in row order
	Rows      []schema.Row
	Card      float64
	// Sorted reports that the rows are sorted ascending on OrderedCol (a
	// query-global column id). A view promoted from a SORT keeps its order,
	// so re-optimized merge joins can reuse it without re-sorting.
	Sorted     bool
	OrderedCol int
}

// Catalog is the top-level metadata store.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	views  map[string]*MatView
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables: make(map[string]*Table),
		views:  make(map[string]*MatView),
	}
}

// CreateTable registers a new empty table with the given schema.
func (c *Catalog) CreateTable(name string, s *schema.Schema) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, dup := c.tables[key]; dup {
		return nil, fmt.Errorf("catalog: table %s already exists", name)
	}
	t := &Table{
		Name:    name,
		Schema:  s,
		Heap:    storage.NewTable(name, s),
		ColStat: make([]*stats.ColumnStats, s.Len()),
	}
	c.tables[key] = t
	return t, nil
}

// Table looks up a table by name (case-insensitive).
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: table %s does not exist", name)
	}
	return t, nil
}

// TableNames returns all table names, sorted.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// CreateBTreeIndex builds a B+tree index over one column of a table.
func (c *Catalog) CreateBTreeIndex(name, tableName, colName string) (*storage.BTreeIndex, error) {
	t, err := c.Table(tableName)
	if err != nil {
		return nil, err
	}
	ord := t.Schema.Ordinal(colName)
	if ord < 0 {
		return nil, fmt.Errorf("catalog: column %s does not exist in %s", colName, tableName)
	}
	ix, err := storage.NewBTreeIndex(name, t.Heap, ord)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	t.BTrees = append(t.BTrees, ix)
	c.mu.Unlock()
	return ix, nil
}

// CreateHashIndex builds a hash index over one or more columns of a table.
func (c *Catalog) CreateHashIndex(name, tableName string, colNames ...string) (*storage.HashIndex, error) {
	t, err := c.Table(tableName)
	if err != nil {
		return nil, err
	}
	ords := make([]int, len(colNames))
	for i, cn := range colNames {
		ords[i] = t.Schema.Ordinal(cn)
		if ords[i] < 0 {
			return nil, fmt.Errorf("catalog: column %s does not exist in %s", cn, tableName)
		}
	}
	ix, err := storage.NewHashIndex(name, t.Heap, ords)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	t.Hash = append(t.Hash, ix)
	c.mu.Unlock()
	return ix, nil
}

// AnalyzeTable (re)builds column statistics for every column of the table —
// the RUNSTATS step that optimization relies on.
func (c *Catalog) AnalyzeTable(tableName string) error {
	t, err := c.Table(tableName)
	if err != nil {
		return err
	}
	colStat := make([]*stats.ColumnStats, t.Schema.Len())
	for ord := 0; ord < t.Schema.Len(); ord++ {
		colStat[ord] = stats.BuildColumnStats(allColumnValues(t, ord), stats.DefaultBucketCount)
	}
	c.mu.Lock()
	t.ColStat = colStat
	c.mu.Unlock()
	return nil
}

// AnalyzeAll runs AnalyzeTable over every table.
func (c *Catalog) AnalyzeAll() error {
	for _, name := range c.TableNames() {
		if err := c.AnalyzeTable(name); err != nil {
			return err
		}
	}
	return nil
}

// RegisterView registers a temporary materialized view. A view with the same
// signature is replaced (the newer snapshot has more complete cardinality).
func (c *Catalog) RegisterView(v *MatView) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.views[v.Signature] = v
}

// View returns the temp MV with the given signature, or nil.
func (c *Catalog) View(signature string) *MatView {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.views[signature]
}

// Views returns all registered temp MVs (unspecified order).
func (c *Catalog) Views() []*MatView {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*MatView, 0, len(c.views))
	for _, v := range c.views {
		out = append(out, v)
	}
	return out
}

// DropViews removes every temporary materialized view — the cleanup step at
// the end of a POP statement (paper Figure 1, "Clean up").
func (c *Catalog) DropViews() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.views = make(map[string]*MatView)
}

// DropViewsPrefixed removes the temp MVs whose signature carries the given
// prefix — one statement's cleanup, leaving concurrent statements' views
// intact.
func (c *Catalog) DropViewsPrefixed(prefix string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for sig := range c.views {
		if strings.HasPrefix(sig, prefix) {
			delete(c.views, sig)
		}
	}
}

// ViewCount returns the number of live temp MVs.
func (c *Catalog) ViewCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.views)
}

// allColumnValues gathers every value of a column, NULLs included, for the
// statistics builder.
func allColumnValues(t *Table, ord int) []types.Datum {
	out := make([]types.Datum, 0, t.Heap.RowCount())
	it := t.Heap.Scan()
	for {
		row, _, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, row[ord])
	}
}
