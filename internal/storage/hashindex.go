package storage

import (
	"fmt"
	"hash/fnv"

	"repro/internal/schema"
	"repro/internal/types"
)

// HashIndex maps (possibly composite) key values to the RIDs of the rows that
// contain them. It supports only equality lookups; range predicates need a
// BTreeIndex. Hash collisions are resolved by re-checking key equality
// against the heap, so lookups never return false positives.
type HashIndex struct {
	name    string
	table   *Table
	keyOrds []int
	buckets map[uint64][]schema.RID
}

// NewHashIndex builds a hash index over the given key columns of a table,
// indexing all rows currently in the heap.
func NewHashIndex(name string, t *Table, keyOrds []int) (*HashIndex, error) {
	for _, o := range keyOrds {
		if o < 0 || o >= t.Schema().Len() {
			return nil, fmt.Errorf("storage: key ordinal %d out of range for %s", o, t.Name())
		}
	}
	idx := &HashIndex{
		name:    name,
		table:   t,
		keyOrds: keyOrds,
		buckets: make(map[uint64][]schema.RID, t.RowCount()),
	}
	it := t.Scan()
	for {
		row, rid, ok := it.Next()
		if !ok {
			break
		}
		idx.insert(row, rid)
	}
	return idx, nil
}

// Name returns the index name.
func (ix *HashIndex) Name() string { return ix.name }

// Table returns the indexed table.
func (ix *HashIndex) Table() *Table { return ix.table }

// KeyOrdinals returns the indexed column ordinals.
func (ix *HashIndex) KeyOrdinals() []int { return ix.keyOrds }

func (ix *HashIndex) insert(row schema.Row, rid schema.RID) {
	// Rows with a NULL key component are not indexed: NULL never equals
	// anything, so equality lookups can't reach them.
	for _, o := range ix.keyOrds {
		if row[o].IsNull() {
			return
		}
	}
	h := ix.hashKey(ix.extract(row))
	ix.buckets[h] = append(ix.buckets[h], rid)
}

// Add indexes a row that was just inserted into the heap.
func (ix *HashIndex) Add(row schema.Row, rid schema.RID) { ix.insert(row, rid) }

func (ix *HashIndex) extract(row schema.Row) []types.Datum {
	key := make([]types.Datum, len(ix.keyOrds))
	for i, o := range ix.keyOrds {
		key[i] = row[o]
	}
	return key
}

func (ix *HashIndex) hashKey(key []types.Datum) uint64 {
	h := fnv.New64a()
	for _, d := range key {
		d.HashInto(h)
	}
	return h.Sum64()
}

// Lookup returns the RIDs of all rows whose key columns equal the given key
// values. The result may be in any order. probes counts heap re-checks
// performed (collision verification), which the executor charges as work.
func (ix *HashIndex) Lookup(key []types.Datum) (rids []schema.RID, probes int, err error) {
	if len(key) != len(ix.keyOrds) {
		return nil, 0, fmt.Errorf("storage: lookup key arity %d != index arity %d", len(key), len(ix.keyOrds))
	}
	for _, d := range key {
		if d.IsNull() {
			return nil, 0, nil
		}
	}
	h := ix.hashKey(key)
	for _, rid := range ix.buckets[h] {
		probes++
		row, err := ix.table.Get(rid)
		if err != nil {
			return nil, probes, err
		}
		match := true
		for i, o := range ix.keyOrds {
			c, cerr := row[o].Compare(key[i])
			if cerr != nil || c != 0 {
				match = false
				break
			}
		}
		if match {
			rids = append(rids, rid)
		}
	}
	return rids, probes, nil
}

// EntryCount returns the number of indexed rows (NULL-keyed rows excluded).
func (ix *HashIndex) EntryCount() int {
	n := 0
	for _, b := range ix.buckets {
		n += len(b)
	}
	return n
}
