// Package storage implements the physical storage substrate: in-memory heap
// tables addressed by RID, hash indexes for equality lookups, and B+tree
// indexes for ordered and range access. The executor's access-path operators
// (table scan, index scan, index nested-loop join) are built on these.
package storage

import (
	"fmt"

	"repro/internal/schema"
	"repro/internal/types"
)

// Table is an append-only in-memory heap of rows. The slot index of a row is
// its RID; RIDs are stable for the life of the table, which is what ECDC's
// deferred-compensation side table relies on.
type Table struct {
	name   string
	schema *schema.Schema
	rows   []schema.Row
}

// NewTable creates an empty heap with the given schema.
func NewTable(name string, s *schema.Schema) *Table {
	return &Table{name: name, schema: s}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *schema.Schema { return t.schema }

// RowCount returns the number of rows in the heap.
func (t *Table) RowCount() int { return len(t.rows) }

// Insert appends a row and returns its RID. The row must match the schema
// arity; kind checking is the loader's responsibility.
func (t *Table) Insert(r schema.Row) (schema.RID, error) {
	if len(r) != t.schema.Len() {
		return schema.InvalidRID, fmt.Errorf("storage: row arity %d does not match schema arity %d for table %s",
			len(r), t.schema.Len(), t.name)
	}
	t.rows = append(t.rows, r)
	return schema.RID(len(t.rows) - 1), nil
}

// MustInsert inserts a row, panicking on arity mismatch. Generators use it.
func (t *Table) MustInsert(r schema.Row) schema.RID {
	rid, err := t.Insert(r)
	if err != nil {
		panic(err)
	}
	return rid
}

// Get returns the row at the given RID.
func (t *Table) Get(rid schema.RID) (schema.Row, error) {
	if rid < 0 || int(rid) >= len(t.rows) {
		return nil, fmt.Errorf("storage: rid %d out of range for table %s (%d rows)", rid, t.name, len(t.rows))
	}
	return t.rows[rid], nil
}

// Scan returns an iterator over all rows in RID order.
func (t *Table) Scan() *TableIterator {
	return &TableIterator{table: t, step: 1}
}

// ScanPartition returns an iterator over the morsel stripe of rows whose RID
// is congruent to part modulo of. The stripes for part = 0..of-1 are disjoint
// and together cover the heap, which is what parallel table scans split the
// row store by.
func (t *Table) ScanPartition(part, of int) *TableIterator {
	if of < 1 {
		of = 1
	}
	return &TableIterator{table: t, next: part, start: part, step: of}
}

// TableIterator walks a heap (or one stripe of it) in RID order.
type TableIterator struct {
	table *Table
	next  int
	start int
	step  int
}

// Next returns the next row and its RID, or ok=false at end of table.
func (it *TableIterator) Next() (schema.Row, schema.RID, bool) {
	if it.next >= len(it.table.rows) {
		return nil, schema.InvalidRID, false
	}
	rid := schema.RID(it.next)
	row := it.table.rows[it.next]
	it.next += it.step
	return row, rid, true
}

// Reset rewinds the iterator to its first row.
func (it *TableIterator) Reset() { it.next = it.start }

// ColumnValues returns every non-NULL value of a column, in RID order. The
// statistics builder uses it to construct histograms.
func (t *Table) ColumnValues(ord int) []types.Datum {
	out := make([]types.Datum, 0, len(t.rows))
	for _, r := range t.rows {
		if !r[ord].IsNull() {
			out = append(out, r[ord])
		}
	}
	return out
}
