package storage

import (
	"fmt"

	"repro/internal/schema"
	"repro/internal/types"
)

// btreeOrder is the maximum number of keys per B+tree node. 64 keeps nodes
// cache-friendly while exercising real multi-level trees on test data.
const btreeOrder = 64

// BTreeIndex is a single-column B+tree supporting equality and range scans.
// Duplicate keys are allowed: each leaf entry carries the list of RIDs whose
// row holds that key. NULL keys are not indexed.
type BTreeIndex struct {
	name   string
	table  *Table
	keyOrd int
	root   btreeNode
	height int
	count  int // indexed (key,rid) pairs
}

// btreeNode is either a *btreeLeaf or a *btreeInner.
type btreeNode interface {
	// insert adds key→rid under this subtree. If the node split, it returns
	// the new right sibling and the key that separates the two.
	insert(key types.Datum, rid schema.RID) (sep types.Datum, right btreeNode, split bool)
	// firstLeafGE returns the leaf and entry position of the first entry with
	// key >= k (or key > k when strict).
	firstLeafGE(k types.Datum, strict bool) (*btreeLeaf, int)
	// firstLeaf returns the leftmost leaf of the subtree.
	firstLeaf() *btreeLeaf
}

type btreeEntry struct {
	key  types.Datum
	rids []schema.RID
}

type btreeLeaf struct {
	entries []btreeEntry
	next    *btreeLeaf
}

type btreeInner struct {
	// keys[i] separates children[i] (keys < keys[i]) from children[i+1].
	keys     []types.Datum
	children []btreeNode
}

// NewBTreeIndex builds a B+tree over one column of a table, indexing every
// current row.
func NewBTreeIndex(name string, t *Table, keyOrd int) (*BTreeIndex, error) {
	if keyOrd < 0 || keyOrd >= t.Schema().Len() {
		return nil, fmt.Errorf("storage: key ordinal %d out of range for %s", keyOrd, t.Name())
	}
	ix := &BTreeIndex{name: name, table: t, keyOrd: keyOrd, root: &btreeLeaf{}, height: 1}
	it := t.Scan()
	for {
		row, rid, ok := it.Next()
		if !ok {
			break
		}
		if !row[keyOrd].IsNull() {
			ix.Add(row[keyOrd], rid)
		}
	}
	return ix, nil
}

// Name returns the index name.
func (ix *BTreeIndex) Name() string { return ix.name }

// Table returns the indexed table.
func (ix *BTreeIndex) Table() *Table { return ix.table }

// KeyOrdinal returns the indexed column ordinal.
func (ix *BTreeIndex) KeyOrdinal() int { return ix.keyOrd }

// Height returns the tree height in levels (1 = a single leaf). The cost
// model charges one page touch per level per probe.
func (ix *BTreeIndex) Height() int { return ix.height }

// EntryCount returns the number of indexed (key,rid) pairs.
func (ix *BTreeIndex) EntryCount() int { return ix.count }

// Add inserts key→rid. NULL keys are ignored.
func (ix *BTreeIndex) Add(key types.Datum, rid schema.RID) {
	if key.IsNull() {
		return
	}
	sep, right, split := ix.root.insert(key, rid)
	if split {
		ix.root = &btreeInner{keys: []types.Datum{sep}, children: []btreeNode{ix.root, right}}
		ix.height++
	}
	ix.count++
}

func (l *btreeLeaf) insert(key types.Datum, rid schema.RID) (types.Datum, btreeNode, bool) {
	pos, found := l.find(key)
	if found {
		l.entries[pos].rids = append(l.entries[pos].rids, rid)
		return types.Null, nil, false
	}
	l.entries = append(l.entries, btreeEntry{})
	copy(l.entries[pos+1:], l.entries[pos:])
	l.entries[pos] = btreeEntry{key: key, rids: []schema.RID{rid}}
	if len(l.entries) <= btreeOrder {
		return types.Null, nil, false
	}
	mid := len(l.entries) / 2
	right := &btreeLeaf{entries: append([]btreeEntry(nil), l.entries[mid:]...), next: l.next}
	l.entries = l.entries[:mid]
	l.next = right
	return right.entries[0].key, right, true
}

// find returns the position of the first entry with key >= k, and whether an
// exact match exists there.
func (l *btreeLeaf) find(k types.Datum) (int, bool) {
	lo, hi := 0, len(l.entries)
	for lo < hi {
		m := (lo + hi) / 2
		if l.entries[m].key.MustCompare(k) < 0 {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo, lo < len(l.entries) && l.entries[lo].key.MustCompare(k) == 0
}

func (l *btreeLeaf) firstLeafGE(k types.Datum, strict bool) (*btreeLeaf, int) {
	pos, found := l.find(k)
	if strict && found {
		pos++
	}
	return l, pos
}

func (l *btreeLeaf) firstLeaf() *btreeLeaf { return l }

func (in *btreeInner) childFor(k types.Datum) int {
	lo, hi := 0, len(in.keys)
	for lo < hi {
		m := (lo + hi) / 2
		if in.keys[m].MustCompare(k) <= 0 {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

func (in *btreeInner) insert(key types.Datum, rid schema.RID) (types.Datum, btreeNode, bool) {
	ci := in.childFor(key)
	sep, right, split := in.children[ci].insert(key, rid)
	if !split {
		return types.Null, nil, false
	}
	in.keys = append(in.keys, types.Null)
	copy(in.keys[ci+1:], in.keys[ci:])
	in.keys[ci] = sep
	in.children = append(in.children, nil)
	copy(in.children[ci+2:], in.children[ci+1:])
	in.children[ci+1] = right
	if len(in.keys) <= btreeOrder {
		return types.Null, nil, false
	}
	mid := len(in.keys) / 2
	sepUp := in.keys[mid]
	newRight := &btreeInner{
		keys:     append([]types.Datum(nil), in.keys[mid+1:]...),
		children: append([]btreeNode(nil), in.children[mid+1:]...),
	}
	in.keys = in.keys[:mid]
	in.children = in.children[:mid+1]
	return sepUp, newRight, true
}

func (in *btreeInner) firstLeafGE(k types.Datum, strict bool) (*btreeLeaf, int) {
	leaf, pos := in.children[in.childFor(k)].firstLeafGE(k, strict)
	// The target position may fall past the end of this leaf; advance.
	for leaf != nil && pos >= len(leaf.entries) {
		leaf, pos = leaf.next, 0
	}
	return leaf, pos
}

func (in *btreeInner) firstLeaf() *btreeLeaf { return in.children[0].firstLeaf() }

// Lookup returns the RIDs of all rows whose key equals k.
func (ix *BTreeIndex) Lookup(k types.Datum) []schema.RID {
	if k.IsNull() {
		return nil
	}
	leaf, pos := ix.root.firstLeafGE(k, false)
	if leaf == nil || pos >= len(leaf.entries) {
		return nil
	}
	if leaf.entries[pos].key.MustCompare(k) != 0 {
		return nil
	}
	return leaf.entries[pos].rids
}

// Bound describes one end of a range scan. A nil Value means unbounded.
type Bound struct {
	Value     *types.Datum
	Inclusive bool
}

// AscendRange visits every (key, rid) pair with lo <= key <= hi (subject to
// bound inclusivity) in ascending key order, calling fn for each rid. fn
// returning false stops the scan. It returns the number of leaf entries
// visited, which the executor charges as index page work.
func (ix *BTreeIndex) AscendRange(lo, hi Bound, fn func(key types.Datum, rid schema.RID) bool) int {
	var leaf *btreeLeaf
	var pos int
	if lo.Value == nil {
		leaf, pos = ix.root.firstLeaf(), 0
		for leaf != nil && pos >= len(leaf.entries) {
			leaf, pos = leaf.next, 0
		}
	} else {
		leaf, pos = ix.root.firstLeafGE(*lo.Value, !lo.Inclusive)
	}
	visited := 0
	for leaf != nil {
		for ; pos < len(leaf.entries); pos++ {
			e := leaf.entries[pos]
			if hi.Value != nil {
				c := e.key.MustCompare(*hi.Value)
				if c > 0 || (c == 0 && !hi.Inclusive) {
					return visited
				}
			}
			visited++
			for _, rid := range e.rids {
				if !fn(e.key, rid) {
					return visited
				}
			}
		}
		leaf, pos = leaf.next, 0
	}
	return visited
}

// MinKey and MaxKey return the smallest and largest indexed keys, or NULL if
// the index is empty. The statistics builder uses them for column bounds.
func (ix *BTreeIndex) MinKey() types.Datum {
	leaf := ix.root.firstLeaf()
	for leaf != nil && len(leaf.entries) == 0 {
		leaf = leaf.next
	}
	if leaf == nil {
		return types.Null
	}
	return leaf.entries[0].key
}

// MaxKey returns the largest indexed key, or NULL for an empty index.
func (ix *BTreeIndex) MaxKey() types.Datum {
	leaf := ix.root.firstLeaf()
	var last types.Datum = types.Null
	for leaf != nil {
		if len(leaf.entries) > 0 {
			last = leaf.entries[len(leaf.entries)-1].key
		}
		leaf = leaf.next
	}
	return last
}
