package storage

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/schema"
	"repro/internal/types"
)

func newTestTable(t *testing.T) *Table {
	t.Helper()
	s := schema.New(
		schema.Column{Name: "id", Type: types.KindInt},
		schema.Column{Name: "name", Type: types.KindString},
	)
	return NewTable("t", s)
}

func TestHeapInsertGet(t *testing.T) {
	tab := newTestTable(t)
	rid, err := tab.Insert(schema.Row{types.NewInt(1), types.NewString("a")})
	if err != nil || rid != 0 {
		t.Fatalf("insert: rid=%d err=%v", rid, err)
	}
	rid2, _ := tab.Insert(schema.Row{types.NewInt(2), types.NewString("b")})
	if rid2 != 1 {
		t.Fatalf("second rid = %d", rid2)
	}
	row, err := tab.Get(rid2)
	if err != nil || row[1].Str() != "b" {
		t.Fatalf("get: %v %v", row, err)
	}
	if tab.RowCount() != 2 {
		t.Error("row count")
	}
	if _, err := tab.Get(99); err == nil {
		t.Error("out-of-range get should error")
	}
	if _, err := tab.Get(schema.InvalidRID); err == nil {
		t.Error("invalid rid get should error")
	}
}

func TestHeapArityCheck(t *testing.T) {
	tab := newTestTable(t)
	if _, err := tab.Insert(schema.Row{types.NewInt(1)}); err == nil {
		t.Error("arity mismatch should error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustInsert should panic on arity mismatch")
		}
	}()
	tab.MustInsert(schema.Row{types.NewInt(1)})
}

func TestHeapScan(t *testing.T) {
	tab := newTestTable(t)
	for i := 0; i < 5; i++ {
		tab.MustInsert(schema.Row{types.NewInt(int64(i)), types.NewString("r")})
	}
	it := tab.Scan()
	var got []int64
	for {
		row, rid, ok := it.Next()
		if !ok {
			break
		}
		if schema.RID(row[0].Int()) != rid {
			t.Errorf("rid mismatch: %v vs %d", row[0], rid)
		}
		got = append(got, row[0].Int())
	}
	if len(got) != 5 {
		t.Fatalf("scanned %d rows", len(got))
	}
	it.Reset()
	if _, _, ok := it.Next(); !ok {
		t.Error("reset should rewind")
	}
}

func TestColumnValuesSkipsNulls(t *testing.T) {
	tab := newTestTable(t)
	tab.MustInsert(schema.Row{types.NewInt(1), types.Null})
	tab.MustInsert(schema.Row{types.NewInt(2), types.NewString("x")})
	vals := tab.ColumnValues(1)
	if len(vals) != 1 || vals[0].Str() != "x" {
		t.Errorf("ColumnValues = %v", vals)
	}
}

func TestHashIndexLookup(t *testing.T) {
	tab := newTestTable(t)
	for i := 0; i < 100; i++ {
		tab.MustInsert(schema.Row{types.NewInt(int64(i % 10)), types.NewString("r")})
	}
	ix, err := NewHashIndex("ix", tab, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	rids, probes, err := ix.Lookup([]types.Datum{types.NewInt(3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 10 {
		t.Errorf("lookup(3) found %d rows, want 10", len(rids))
	}
	if probes < 10 {
		t.Errorf("probes = %d, want >= 10", probes)
	}
	for _, rid := range rids {
		row, _ := tab.Get(rid)
		if row[0].Int() != 3 {
			t.Errorf("false positive rid %d -> %v", rid, row)
		}
	}
	// Missing key.
	rids, _, _ = ix.Lookup([]types.Datum{types.NewInt(42)})
	if len(rids) != 0 {
		t.Error("lookup of absent key should be empty")
	}
	if ix.EntryCount() != 100 {
		t.Errorf("entry count = %d", ix.EntryCount())
	}
}

func TestHashIndexComposite(t *testing.T) {
	s := schema.New(
		schema.Column{Name: "a", Type: types.KindInt},
		schema.Column{Name: "b", Type: types.KindString},
	)
	tab := NewTable("t", s)
	tab.MustInsert(schema.Row{types.NewInt(1), types.NewString("x")})
	tab.MustInsert(schema.Row{types.NewInt(1), types.NewString("y")})
	tab.MustInsert(schema.Row{types.NewInt(2), types.NewString("x")})
	ix, _ := NewHashIndex("ix", tab, []int{0, 1})
	rids, _, _ := ix.Lookup([]types.Datum{types.NewInt(1), types.NewString("x")})
	if len(rids) != 1 || rids[0] != 0 {
		t.Errorf("composite lookup = %v", rids)
	}
	if _, _, err := ix.Lookup([]types.Datum{types.NewInt(1)}); err == nil {
		t.Error("wrong-arity lookup should error")
	}
}

func TestHashIndexNullKeys(t *testing.T) {
	tab := newTestTable(t)
	tab.MustInsert(schema.Row{types.Null, types.NewString("n")})
	tab.MustInsert(schema.Row{types.NewInt(1), types.NewString("v")})
	ix, _ := NewHashIndex("ix", tab, []int{0})
	if ix.EntryCount() != 1 {
		t.Error("NULL keys must not be indexed")
	}
	rids, _, _ := ix.Lookup([]types.Datum{types.Null})
	if len(rids) != 0 {
		t.Error("NULL lookup must be empty")
	}
}

func TestHashIndexAdd(t *testing.T) {
	tab := newTestTable(t)
	ix, _ := NewHashIndex("ix", tab, []int{0})
	row := schema.Row{types.NewInt(5), types.NewString("late")}
	rid := tab.MustInsert(row)
	ix.Add(row, rid)
	rids, _, _ := ix.Lookup([]types.Datum{types.NewInt(5)})
	if len(rids) != 1 || rids[0] != rid {
		t.Error("incremental add not visible")
	}
}

func TestHashIndexBadOrdinal(t *testing.T) {
	tab := newTestTable(t)
	if _, err := NewHashIndex("ix", tab, []int{9}); err == nil {
		t.Error("bad ordinal should error")
	}
}

func TestBTreeBasic(t *testing.T) {
	tab := newTestTable(t)
	// Insert keys in scrambled order, enough to force multi-level splits.
	n := 2000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, k := range perm {
		tab.MustInsert(schema.Row{types.NewInt(int64(k)), types.NewString("r")})
	}
	ix, err := NewBTreeIndex("bt", tab, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Height() < 2 {
		t.Errorf("expected multi-level tree, height=%d", ix.Height())
	}
	if ix.EntryCount() != n {
		t.Errorf("entry count = %d, want %d", ix.EntryCount(), n)
	}
	// Point lookups.
	for _, k := range []int64{0, 1, 999, 1999} {
		rids := ix.Lookup(types.NewInt(k))
		if len(rids) != 1 {
			t.Fatalf("lookup(%d) = %v", k, rids)
		}
		row, _ := tab.Get(rids[0])
		if row[0].Int() != k {
			t.Errorf("lookup(%d) returned row %v", k, row)
		}
	}
	if len(ix.Lookup(types.NewInt(5000))) != 0 {
		t.Error("absent key lookup should be empty")
	}
	if len(ix.Lookup(types.Null)) != 0 {
		t.Error("NULL lookup should be empty")
	}
	if ix.MinKey().Int() != 0 || ix.MaxKey().Int() != int64(n-1) {
		t.Errorf("min/max = %v/%v", ix.MinKey(), ix.MaxKey())
	}
}

func TestBTreeDuplicates(t *testing.T) {
	tab := newTestTable(t)
	for i := 0; i < 300; i++ {
		tab.MustInsert(schema.Row{types.NewInt(int64(i % 3)), types.NewString("d")})
	}
	ix, _ := NewBTreeIndex("bt", tab, 0)
	for k := int64(0); k < 3; k++ {
		if got := len(ix.Lookup(types.NewInt(k))); got != 100 {
			t.Errorf("lookup(%d) = %d rids, want 100", k, got)
		}
	}
}

func TestBTreeRangeScan(t *testing.T) {
	tab := newTestTable(t)
	for i := 0; i < 500; i++ {
		tab.MustInsert(schema.Row{types.NewInt(int64(i)), types.NewString("r")})
	}
	ix, _ := NewBTreeIndex("bt", tab, 0)

	collect := func(lo, hi Bound) []int64 {
		var keys []int64
		ix.AscendRange(lo, hi, func(k types.Datum, rid schema.RID) bool {
			keys = append(keys, k.Int())
			return true
		})
		return keys
	}
	v := func(x int64) *types.Datum { d := types.NewInt(x); return &d }

	got := collect(Bound{Value: v(10), Inclusive: true}, Bound{Value: v(15), Inclusive: true})
	if len(got) != 6 || got[0] != 10 || got[5] != 15 {
		t.Errorf("[10,15] = %v", got)
	}
	got = collect(Bound{Value: v(10), Inclusive: false}, Bound{Value: v(15), Inclusive: false})
	if len(got) != 4 || got[0] != 11 || got[3] != 14 {
		t.Errorf("(10,15) = %v", got)
	}
	got = collect(Bound{}, Bound{Value: v(2), Inclusive: true})
	if len(got) != 3 {
		t.Errorf("(-inf,2] = %v", got)
	}
	got = collect(Bound{Value: v(497), Inclusive: true}, Bound{})
	if len(got) != 3 {
		t.Errorf("[497,inf) = %v", got)
	}
	// Ascending order across the whole index.
	all := collect(Bound{}, Bound{})
	if len(all) != 500 || !sort.SliceIsSorted(all, func(i, j int) bool { return all[i] < all[j] }) {
		t.Errorf("full scan len=%d sorted=%v", len(all), sort.SliceIsSorted(all, func(i, j int) bool { return all[i] < all[j] }))
	}
	// Early termination.
	n := 0
	ix.AscendRange(Bound{}, Bound{}, func(types.Datum, schema.RID) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestBTreeStrings(t *testing.T) {
	s := schema.New(schema.Column{Name: "w", Type: types.KindString})
	tab := NewTable("t", s)
	words := []string{"pear", "apple", "mango", "banana", "cherry"}
	for _, w := range words {
		tab.MustInsert(schema.Row{types.NewString(w)})
	}
	ix, _ := NewBTreeIndex("bt", tab, 0)
	var got []string
	ix.AscendRange(Bound{}, Bound{}, func(k types.Datum, _ schema.RID) bool {
		got = append(got, k.Str())
		return true
	})
	if !sort.StringsAreSorted(got) {
		t.Errorf("string keys not sorted: %v", got)
	}
	lo := types.NewString("b")
	hi := types.NewString("d")
	var ranged []string
	ix.AscendRange(Bound{Value: &lo, Inclusive: true}, Bound{Value: &hi, Inclusive: false},
		func(k types.Datum, _ schema.RID) bool {
			ranged = append(ranged, k.Str())
			return true
		})
	if len(ranged) != 2 || ranged[0] != "banana" || ranged[1] != "cherry" {
		t.Errorf("range [b,d) = %v", ranged)
	}
}

func TestBTreeEmpty(t *testing.T) {
	tab := newTestTable(t)
	ix, _ := NewBTreeIndex("bt", tab, 0)
	if !ix.MinKey().IsNull() || !ix.MaxKey().IsNull() {
		t.Error("empty index min/max should be NULL")
	}
	if n := ix.AscendRange(Bound{}, Bound{}, func(types.Datum, schema.RID) bool { return true }); n != 0 {
		t.Error("empty scan should visit nothing")
	}
	if _, err := NewBTreeIndex("bt", tab, 5); err == nil {
		t.Error("bad ordinal should error")
	}
}

// Property: for random key multisets, a full B+tree ascent returns exactly
// the sorted multiset.
func TestBTreeSortedProperty(t *testing.T) {
	f := func(keys []int16) bool {
		s := schema.New(schema.Column{Name: "k", Type: types.KindInt})
		tab := NewTable("t", s)
		for _, k := range keys {
			tab.MustInsert(schema.Row{types.NewInt(int64(k))})
		}
		ix, err := NewBTreeIndex("bt", tab, 0)
		if err != nil {
			return false
		}
		var got []int64
		ix.AscendRange(Bound{}, Bound{}, func(k types.Datum, _ schema.RID) bool {
			got = append(got, k.Int())
			return true
		})
		want := make([]int64, len(keys))
		for i, k := range keys {
			want[i] = int64(k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
