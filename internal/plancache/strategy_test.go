package plancache

import (
	"testing"

	"repro/internal/pop"
)

// TestStrategyPartitionsCache: the planner strategy is part of cached-plan
// identity. Runners with different strategies sharing one cache must not
// serve each other's plans — each strategy gets its own entry, and repeats
// under the same strategy hit it.
func TestStrategyPartitionsCache(t *testing.T) {
	cat := correlatedFixture(t)
	cache := New()

	strategies := pop.Strategies()
	for i, st := range strategies {
		opts := pop.DefaultOptions()
		opts.Planner = st
		r := NewRunner(cache, cat, opts)

		if _, info, err := r.Run(correlatedQuery(t, cat), nil); err != nil {
			t.Fatalf("%s first run: %v", st.Name(), err)
		} else if info.Hit {
			t.Fatalf("%s first run hit a foreign strategy's plan", st.Name())
		}
		if _, info, err := r.Run(correlatedQuery(t, cat), nil); err != nil {
			t.Fatalf("%s repeat run: %v", st.Name(), err)
		} else if !info.Hit {
			t.Fatalf("%s repeat run missed its own cached plan", st.Name())
		}

		if got := cache.Stats().Entries; got != i+1 {
			t.Fatalf("after %s: %d entries, want %d (one per strategy)", st.Name(), got, i+1)
		}
	}

	// The default runner (no strategy) uses the bare key: a fifth entry.
	r := NewRunner(cache, cat, pop.DefaultOptions())
	if _, info, err := r.Run(correlatedQuery(t, cat), nil); err != nil {
		t.Fatal(err)
	} else if info.Hit {
		t.Fatal("strategy-less run hit a strategy-suffixed entry")
	}
	if got := cache.Stats().Entries; got != len(strategies)+1 {
		t.Fatalf("strategy-less run should add its own entry: %d entries, want %d",
			got, len(strategies)+1)
	}
	key := Key(correlatedQuery(t, cat))
	if cache.Entry(key) == nil {
		t.Error("bare key should map to the strategy-less entry")
	}
	if cache.Entry(key+"|planner=dp-pop") == nil {
		t.Error("dp-pop key should map to its own entry")
	}
}
