// Package plancache implements a validity-range-guarded plan cache: optimized
// plans are reused across parameterized executions of the same statement, with
// the paper's §2.2 validity ranges acting as reuse guards. A cached plan is
// served to a new parameter binding only when the binding's estimated
// cardinality for every guarded table subset lies inside the plan's validity
// range — the estimate is cheap (histogram lookups, no enumeration), and the
// range makes the reuse provably safe with respect to the cost model. Out of
// range, the statement is optimized in full and the new plan is inserted
// alongside the old one, so an entry accumulates range-disjoint plans: a
// parametric plan selection grown on demand.
package plancache

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/logical"
	"repro/internal/optimizer"
	"repro/internal/stats"
)

// numShards spreads entries across independently locked maps so concurrent
// statements rarely contend.
const numShards = 16

// DefaultMaxPlansPerEntry bounds how many range-disjoint plans one statement
// accumulates before the oldest is evicted.
const DefaultMaxPlansPerEntry = 4

// CachedPlan is one guarded plan of an entry.
type CachedPlan struct {
	Plan    *optimizer.Plan   // pre-placement optimized plan (markers intact)
	Guards  []optimizer.Guard // reuse guards from the plan's validity ranges
	Explain string            // rendered plan, used for dedupe and diagnostics
}

// InRange reports whether every guard accepts the binding's estimates. The
// estimator memoizes per-subset results, so shared guards across candidate
// plans are evaluated once.
func (cp *CachedPlan) InRange(ce *optimizer.CardEstimator) bool {
	for _, g := range cp.Guards {
		if !g.Range.Contains(ce.SubsetCard(g.Tables)) {
			return false
		}
	}
	return true
}

// Entry is the cache line for one normalized statement. It owns a feedback
// cache shared by every execution of the statement (the LEO-style "learning
// for the future" channel, paper §7): actuals observed while one binding
// re-optimized inform the guards checked and the plans built for the next.
type Entry struct {
	mu    sync.Mutex
	plans []*CachedPlan

	// Feedback accumulates observed cardinalities across executions. With
	// bound signatures (pop.Options.BindParamEstimates) parameter-dependent
	// observations stay scoped to their binding while binding-independent
	// subsets share entries.
	Feedback *stats.Feedback

	hits, misses, invalidations int
	lastMissOptWork             int // EnumeratedCandidates of the latest miss
}

// Lookup returns the first cached plan whose guards all accept the binding's
// estimates, or nil. The caller supplies the estimator (built over the bound
// query with this entry's feedback).
func (e *Entry) Lookup(ce *optimizer.CardEstimator) *CachedPlan {
	cp, _ := e.LookupDetail(ce)
	return cp
}

// Rejection records one guard that turned a cached plan away: the guarded
// subset's validity range and the binding's estimate that fell outside it.
type Rejection struct {
	Guard optimizer.Guard
	Est   float64
}

// LookupDetail is Lookup plus the reuse diagnostics: for every cached plan
// the binding could not use, the first guard that rejected it and the
// out-of-range estimate. On a hit the rejections cover the plans tried
// before the accepted one; on a miss, every plan in the entry.
func (e *Entry) LookupDetail(ce *optimizer.CardEstimator) (*CachedPlan, []Rejection) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var rejs []Rejection
	for _, cp := range e.plans {
		rejected := false
		for _, g := range cp.Guards {
			if est := ce.SubsetCard(g.Tables); !g.Range.Contains(est) {
				rejs = append(rejs, Rejection{Guard: g, Est: est})
				rejected = true
				break
			}
		}
		if !rejected {
			e.hits++
			return cp, rejs
		}
	}
	e.misses++
	return nil, rejs
}

// Insert adds a plan, deduplicating by rendered form (a concurrent miss may
// have optimized the same binding) and evicting the oldest plan past the
// per-entry bound.
func (e *Entry) Insert(cp *CachedPlan, maxPlans int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, old := range e.plans {
		if old.Explain == cp.Explain {
			return
		}
	}
	e.plans = append(e.plans, cp)
	if maxPlans > 0 && len(e.plans) > maxPlans {
		e.plans = append(e.plans[:0:0], e.plans[1:]...)
	}
}

// Invalidate removes the plan (matched by identity) after a runtime CHECK
// violation proved its validity ranges wrong for an in-range binding.
func (e *Entry) Invalidate(cp *CachedPlan) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, old := range e.plans {
		if old == cp {
			e.plans = append(e.plans[:i], e.plans[i+1:]...)
			e.invalidations++
			return
		}
	}
}

// Plans returns a snapshot of the entry's cached plans.
func (e *Entry) Plans() []*CachedPlan {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*CachedPlan(nil), e.plans...)
}

// noteMissWork records the enumeration work a miss spent, the baseline a
// later hit's savings are measured against.
func (e *Entry) noteMissWork(candidates int) {
	e.mu.Lock()
	e.lastMissOptWork = candidates
	e.mu.Unlock()
}

// missWork returns the recorded baseline.
func (e *Entry) missWork() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastMissOptWork
}

type shard struct {
	mu      sync.RWMutex
	entries map[string]*Entry
}

// Cache is the concurrent sharded plan cache.
type Cache struct {
	shards [numShards]shard

	// MaxPlansPerEntry bounds each entry's parametric plan set;
	// 0 means DefaultMaxPlansPerEntry.
	MaxPlansPerEntry int

	// Lock-contention observability for the serving path: lookupFast counts
	// Entry calls answered by the shard read lock, lookupSlow the ones that
	// had to take the write lock to create the entry, and contended the lock
	// acquisitions (either kind) that found the lock held and had to wait.
	lookupFast atomic.Int64
	lookupSlow atomic.Int64
	contended  atomic.Int64
}

// New returns an empty cache.
func New() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*Entry)
	}
	return c
}

func (c *Cache) maxPlans() int {
	if c.MaxPlansPerEntry > 0 {
		return c.MaxPlansPerEntry
	}
	return DefaultMaxPlansPerEntry
}

// Entry returns the cache line for the key, creating it on first use.
func (c *Cache) Entry(key string) *Entry {
	h := fnv.New64a()
	h.Write([]byte(key))
	s := &c.shards[h.Sum64()%numShards]
	if !s.mu.TryRLock() {
		c.contended.Add(1)
		s.mu.RLock()
	}
	e := s.entries[key]
	s.mu.RUnlock()
	if e != nil {
		c.lookupFast.Add(1)
		return e
	}
	c.lookupSlow.Add(1)
	if !s.mu.TryLock() {
		c.contended.Add(1)
		s.mu.Lock()
	}
	defer s.mu.Unlock()
	if e = s.entries[key]; e == nil {
		e = &Entry{Feedback: stats.NewFeedback()}
		s.entries[key] = e
	}
	return e
}

// Stats aggregates counters across every entry.
type Stats struct {
	Entries       int
	Plans         int
	Hits          int
	Misses        int
	Invalidations int

	// LookupFast/LookupSlow split Entry calls by the lock they resolved
	// under (shard read lock vs. entry-creating write lock); Contended
	// counts the acquisitions that found the shard lock held.
	LookupFast int64
	LookupSlow int64
	Contended  int64
}

// Stats walks the cache and sums per-entry counters.
func (c *Cache) Stats() Stats {
	st := Stats{
		LookupFast: c.lookupFast.Load(),
		LookupSlow: c.lookupSlow.Load(),
		Contended:  c.contended.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		//poplint:allow maporder commutative integer sums; iteration order cannot change the totals
		for _, e := range s.entries {
			e.mu.Lock()
			st.Entries++
			st.Plans += len(e.plans)
			st.Hits += e.hits
			st.Misses += e.misses
			st.Invalidations += e.invalidations
			e.mu.Unlock()
		}
		s.mu.RUnlock()
	}
	return st
}

// Key normalizes a query into its cache key. Parameter markers render as
// markers (?0, ?1, ...), so every binding of one prepared statement maps to
// the same entry; table names, aliases, predicates, the select list, grouping,
// ordering, DISTINCT and LIMIT all participate, so structurally different
// statements never collide. The caching runner additionally suffixes the key
// with the planner-strategy name when one is set (see Runner.Run): plans from
// different strategies are different plans, so the strategy is part of
// cached-plan identity.
func Key(q *logical.Query) string {
	var b strings.Builder
	b.WriteString("F{")
	for i, t := range q.Tables {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(t.Table)
		b.WriteByte(' ')
		b.WriteString(t.Alias)
	}
	b.WriteString("}|")
	full := uint64(1)<<uint(len(q.Tables)) - 1
	b.WriteString(optimizer.Signature(q, full))
	b.WriteString("|S{")
	for i, it := range q.Select {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(it.String())
	}
	b.WriteString("}|G{")
	for i, g := range q.GroupBy {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(g.String())
	}
	b.WriteString("}|O{")
	for i, o := range q.OrderBy {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(o.E.String())
		if o.Desc {
			b.WriteString(" desc")
		}
	}
	b.WriteByte('}')
	if q.Distinct {
		b.WriteString("|distinct")
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, "|limit=%d", q.Limit)
	}
	return b.String()
}

// cacheable rejects plans that reference statement-scoped state: a plan
// scanning a temporary materialized view (created during re-optimization) is
// dropped at statement end and must never be served to a later execution.
func cacheable(p *optimizer.Plan) bool {
	return p != nil && p.Count(optimizer.OpMVScan) == 0
}
