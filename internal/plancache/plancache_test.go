package plancache

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/pop"
	"repro/internal/schema"
	"repro/internal/tpch"
	"repro/internal/trace"
	"repro/internal/types"
)

var (
	tpchOnce sync.Once
	tpchDB   *catalog.Catalog
	tpchErr  error
)

func tpchFixture(t testing.TB) *catalog.Catalog {
	t.Helper()
	tpchOnce.Do(func() {
		tpchDB = catalog.New()
		tpchErr = tpch.Load(tpchDB, tpch.Config{ScaleFactor: 0.003, Seed: 42})
	})
	if tpchErr != nil {
		t.Fatal(tpchErr)
	}
	return tpchDB
}

// correlatedFixture reproduces the paper's canonical mis-estimation scenario
// (three perfectly correlated predicates, 25× under-estimate) at a size small
// enough for a unit test: the initial plan picks an index NLJN and a CHECK
// violation flips it to a hash join.
func correlatedFixture(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	orders, err := c.CreateTable("orders", schema.New(
		schema.Column{Name: "o_id", Type: types.KindInt},
		schema.Column{Name: "o_cust", Type: types.KindInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		orders.Heap.MustInsert(schema.Row{
			types.NewInt(int64(i)), types.NewInt(int64(i % 500)),
		})
	}
	line, err := c.CreateTable("lineitem", schema.New(
		schema.Column{Name: "l_order", Type: types.KindInt},
		schema.Column{Name: "l_qty", Type: types.KindFloat},
		schema.Column{Name: "l_c1", Type: types.KindInt},
		schema.Column{Name: "l_c2", Type: types.KindInt},
		schema.Column{Name: "l_c3", Type: types.KindInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40000; i++ {
		corr := int64(i % 10) // l_c1 = l_c2 = l_c3: perfect correlation
		line.Heap.MustInsert(schema.Row{
			types.NewInt(int64(i % 20000)),
			types.NewFloat(float64(i % 50)),
			types.NewInt(corr), types.NewInt(corr), types.NewInt(corr),
		})
	}
	if _, err := c.CreateBTreeIndex("orders_pk", "orders", "o_id"); err != nil {
		t.Fatal(err)
	}
	if err := c.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	return c
}

func correlatedQuery(t *testing.T, cat *catalog.Catalog) *logical.Query {
	t.Helper()
	b := logical.NewBuilder(cat)
	b.AddTable("lineitem", "l")
	b.AddTable("orders", "o")
	b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("l", "l_order"), R: b.Col("o", "o_id")})
	two := &expr.Const{Val: types.NewInt(2)}
	b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("l", "l_c1"), R: two})
	b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("l", "l_c2"), R: two})
	b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("l", "l_c3"), R: two})
	b.SelectCol("l", "l_qty")
	b.SelectCol("o", "o_cust")
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func q10Param(t testing.TB, cat *catalog.Catalog) *logical.Query {
	t.Helper()
	q, err := tpch.Q10Param(cat)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestKeyNormalization(t *testing.T) {
	cat := tpchFixture(t)
	q1 := q10Param(t, cat)
	q2 := q10Param(t, cat)
	if Key(q1) != Key(q2) {
		t.Errorf("two builds of the same statement must share a key:\n%s\n%s", Key(q1), Key(q2))
	}
	lit25, err := tpch.Q10Literal(cat, 25)
	if err != nil {
		t.Fatal(err)
	}
	lit30, err := tpch.Q10Literal(cat, 30)
	if err != nil {
		t.Fatal(err)
	}
	if Key(q1) == Key(lit25) {
		t.Error("a marker statement and a literal statement must not collide")
	}
	if Key(lit25) == Key(lit30) {
		t.Error("different literal statements must not collide")
	}
}

func TestHitSkipsOptimization(t *testing.T) {
	cat := tpchFixture(t)
	q := q10Param(t, cat)
	r := NewRunner(New(), cat, pop.DefaultOptions())
	params := []types.Datum{types.NewFloat(25)}

	res1, info1, err := r.Run(q, params)
	if err != nil {
		t.Fatal(err)
	}
	if info1.Hit {
		t.Fatal("first execution must miss")
	}
	if info1.OptWork == 0 {
		t.Fatal("a miss must report enumeration work")
	}
	res2, info2, err := r.Run(q, params)
	if err != nil {
		t.Fatal(err)
	}
	if !info2.Hit {
		t.Fatal("identical binding must hit")
	}
	// Acceptance: a hit's optimization work is at least 5× below a miss's.
	if info2.OptWork*5 > info1.OptWork {
		t.Errorf("hit work %d not ≥5× below miss work %d", info2.OptWork, info1.OptWork)
	}
	if info2.OptWorkSaved <= 0 {
		t.Errorf("hit must report positive work saved, got %d", info2.OptWorkSaved)
	}
	if len(res1.Rows) != len(res2.Rows) {
		t.Errorf("cached execution changed the result: %d vs %d rows", len(res1.Rows), len(res2.Rows))
	}
	st := r.Cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats: want 1 hit / 1 miss, got %+v", st)
	}
}

// TestOutOfRangeNeverReuses is the white-box guard check: a cached plan with
// a bounded guard must never be served to a binding whose estimate falls
// outside the range.
func TestOutOfRangeNeverReuses(t *testing.T) {
	c := catalog.New()
	tab, err := c.CreateTable("t", schema.New(
		schema.Column{Name: "a", Type: types.KindInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		tab.Heap.MustInsert(schema.Row{types.NewInt(int64(i))})
	}
	if err := c.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	b := logical.NewBuilder(c)
	b.AddTable("t", "t")
	b.SelectCol("t", "a")
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	cache := New()
	entry := cache.Entry(Key(q))
	reject := &CachedPlan{
		Plan:    &optimizer.Plan{},
		Guards:  []optimizer.Guard{{Tables: 1, Range: optimizer.Range{Lo: 0, Hi: 50}, EstCard: 25}},
		Explain: "out-of-range",
	}
	entry.Insert(reject, cache.maxPlans())

	// The binding's estimate for subset {t} is 100 rows — outside [0, 50].
	ce, err := optimizer.NewCardEstimator(c, q, entry.Feedback)
	if err != nil {
		t.Fatal(err)
	}
	if got := entry.Lookup(ce); got != nil {
		t.Fatalf("out-of-range binding must not reuse the cached plan, got %q", got.Explain)
	}

	// The same guard with the estimate in range is served.
	accept := &CachedPlan{
		Plan:    &optimizer.Plan{},
		Guards:  []optimizer.Guard{{Tables: 1, Range: optimizer.Range{Lo: 50, Hi: 200}, EstCard: 100}},
		Explain: "in-range",
	}
	entry.Insert(accept, cache.maxPlans())
	ce2, err := optimizer.NewCardEstimator(c, q, entry.Feedback)
	if err != nil {
		t.Fatal(err)
	}
	got := entry.Lookup(ce2)
	if got == nil || got.Explain != "in-range" {
		t.Fatalf("in-range binding must reuse the guarded plan, got %v", got)
	}
}

// TestViolationInvalidatesEntry drives the full invalidation loop on the
// paper's correlated mis-estimation: the first execution caches an index-NLJN
// plan, a CHECK violation mid-run invalidates it, and the subsequent
// identical execution is served the re-optimized (hash-join) plan without
// re-optimizing again.
func TestViolationInvalidatesEntry(t *testing.T) {
	cat := correlatedFixture(t)
	q := correlatedQuery(t, cat)
	r := NewRunner(New(), cat, pop.DefaultOptions())

	res1, info1, err := r.Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Reopts == 0 {
		t.Fatal("fixture should trigger a re-optimization on the first run")
	}
	if !info1.Invalidated {
		t.Fatal("a violated run must invalidate the cached plan")
	}
	entry := r.Cache.Entry(Key(q))
	plans := entry.Plans()
	if len(plans) != 1 {
		t.Fatalf("entry should hold exactly the re-optimized plan, got %d", len(plans))
	}
	if strings.Contains(plans[0].Explain, "NLJN[index]") {
		t.Fatalf("invalidated NLJN plan still cached:\n%s", plans[0].Explain)
	}

	res2, info2, err := r.Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !info2.Hit {
		t.Fatal("subsequent identical execution must hit the re-optimized plan")
	}
	if res2.Reopts != 0 {
		t.Fatalf("the re-optimized plan must run clean, got %d reopts", res2.Reopts)
	}
	if got := optimizer.Explain(res2.Attempts[0].Optimized, q); got != plans[0].Explain {
		t.Errorf("served plan differs from the cached re-optimized plan:\n%s\nvs\n%s",
			got, plans[0].Explain)
	}
	if len(res1.Rows) != len(res2.Rows) {
		t.Errorf("results differ across cache states: %d vs %d rows", len(res1.Rows), len(res2.Rows))
	}
	if st := r.Cache.Stats(); st.Invalidations != 1 {
		t.Errorf("want 1 invalidation, got %+v", st)
	}
}

// TestCacheDisabledMatchesPlainRunner pins the acceptance requirement that a
// nil cache degenerates to the plain POP runner bit-for-bit (same rows, same
// work totals, same re-optimization count).
func TestCacheDisabledMatchesPlainRunner(t *testing.T) {
	cat := correlatedFixture(t)
	q := correlatedQuery(t, cat)

	plain, err := pop.NewRunner(cat, pop.DefaultOptions()).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	viaCacheNil, _, err := NewRunner(nil, cat, pop.DefaultOptions()).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Work != viaCacheNil.Work {
		t.Errorf("work diverged: plain %v vs nil-cache %v", plain.Work, viaCacheNil.Work)
	}
	if plain.Reopts != viaCacheNil.Reopts {
		t.Errorf("reopts diverged: plain %d vs nil-cache %d", plain.Reopts, viaCacheNil.Reopts)
	}
	if len(plain.Rows) != len(viaCacheNil.Rows) {
		t.Errorf("rows diverged: plain %d vs nil-cache %d", len(plain.Rows), len(viaCacheNil.Rows))
	}
}

// TestConcurrentRuns hammers one shared Runner from several goroutines with
// varying bindings; run under -race it validates the cache's locking and the
// shared per-entry feedback.
func TestConcurrentRuns(t *testing.T) {
	cat := tpchFixture(t)
	q := q10Param(t, cat)
	r := NewRunner(New(), cat, pop.DefaultOptions())

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, qty := range []float64{5, 25, 45, 25} {
				if _, _, err := r.Run(q, []types.Datum{types.NewFloat(qty)}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := r.Cache.Stats()
	if st.Hits+st.Misses != 16 {
		t.Errorf("want 16 lookups, got %+v", st)
	}
	if st.Hits == 0 {
		t.Errorf("repeated bindings should produce hits, got %+v", st)
	}
}

// TestContendedSignatureCountsMatchSerial hammers one statement signature
// from 16 goroutines and checks, under -race, that the cache's hit, miss,
// invalidation and guard-verdict counts exactly match a serial execution of
// the same workload: concurrency may add lock contention (now observable via
// Stats.Contended) but must never change a verdict. The cache is warmed
// first so every concurrent lookup is a guarded hit — the only schedule-
// independent workload, since racing cold misses could legitimately
// duplicate optimizations.
func TestContendedSignatureCountsMatchSerial(t *testing.T) {
	cat := tpchFixture(t)
	const goroutines = 16
	const perG = 4
	binding := []types.Datum{types.NewFloat(25)}

	run := func(concurrent bool) (Stats, metrics.Snapshot) {
		t.Helper()
		reg := metrics.New()
		opts := pop.DefaultOptions()
		opts.Trace = reg
		r := NewRunner(New(), cat, opts)
		q := q10Param(t, cat)
		// Warm-up: the single cold miss that caches the plan.
		if _, info, err := r.Run(q, binding); err != nil {
			t.Fatal(err)
		} else if info.Hit || info.Invalidated {
			t.Fatalf("warm-up must be a clean miss, got %+v", info)
		}
		body := func(g int) error {
			for i := 0; i < perG; i++ {
				_, info, err := r.Run(q, binding)
				if err != nil {
					return err
				}
				if !info.Hit {
					return fmt.Errorf("goroutine %d run %d: warmed cache missed", g, i)
				}
			}
			return nil
		}
		if concurrent {
			var wg sync.WaitGroup
			errs := make([]error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					errs[g] = body(g)
				}(g)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
		} else {
			for g := 0; g < goroutines; g++ {
				if err := body(g); err != nil {
					t.Fatal(err)
				}
			}
		}
		return r.Cache.Stats(), reg.Snapshot()
	}

	serialSt, serialM := run(false)
	concSt, concM := run(true)

	if concSt.Hits != serialSt.Hits || concSt.Misses != serialSt.Misses || concSt.Invalidations != serialSt.Invalidations {
		t.Errorf("cache verdicts diverged: concurrent %+v vs serial %+v", concSt, serialSt)
	}
	if concSt.LookupFast != serialSt.LookupFast || concSt.LookupSlow != serialSt.LookupSlow {
		t.Errorf("lookup split diverged: concurrent fast=%d slow=%d vs serial fast=%d slow=%d",
			concSt.LookupFast, concSt.LookupSlow, serialSt.LookupFast, serialSt.LookupSlow)
	}
	if concSt.Hits != goroutines*perG || concSt.Misses != 1 {
		t.Errorf("want %d hits / 1 miss, got %+v", goroutines*perG, concSt)
	}
	if concM.CacheHits != serialM.CacheHits || concM.CacheMisses != serialM.CacheMisses ||
		concM.CacheGuardRejects != serialM.CacheGuardRejects || concM.CacheInvalidates != serialM.CacheInvalidates {
		t.Errorf("traced guard verdicts diverged: concurrent hits=%d misses=%d rejects=%d inval=%d vs serial hits=%d misses=%d rejects=%d inval=%d",
			concM.CacheHits, concM.CacheMisses, concM.CacheGuardRejects, concM.CacheInvalidates,
			serialM.CacheHits, serialM.CacheMisses, serialM.CacheGuardRejects, serialM.CacheInvalidates)
	}
	if concSt.Contended < 0 {
		t.Errorf("contended count negative: %d", concSt.Contended)
	}
	t.Logf("contended lock acquisitions: serial=%d concurrent=%d", serialSt.Contended, concSt.Contended)
}

// TestInvalidationAccountsReoptimize pins the invalidation path's accounting:
// the re-cache optimization must pair its optimize_start with an
// optimize_done and fold its candidate work into ExecInfo.OptWork. A
// regression here under-reports exactly the executions POP worked hardest on
// and skews every consumer that correlates start/done events.
func TestInvalidationAccountsReoptimize(t *testing.T) {
	cat := correlatedFixture(t)
	q := correlatedQuery(t, cat)
	col := trace.NewCollector()
	opts := pop.DefaultOptions()
	opts.Trace = col
	r := NewRunner(New(), cat, opts)

	_, info, err := r.Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Invalidated {
		t.Fatal("fixture should invalidate on the first run")
	}

	starts := col.OfKind(trace.OptimizeStart)
	dones := col.OfKind(trace.OptimizeDone)
	if len(starts) != len(dones) {
		t.Fatalf("unpaired optimize events: %d starts vs %d dones", len(starts), len(dones))
	}

	// Cache-level events carry the key hash as their statement identity; the
	// POP runner's own attempts carry the binding signature. The cache must
	// emit exactly two pairs here: the miss and the post-invalidation re-cache.
	kh := hashKey(Key(q))
	cacheDones, cacheWork := 0, 0
	for _, ev := range dones {
		if ev.Query == kh {
			cacheDones++
			cacheWork += ev.Opt.Candidates
		}
	}
	if cacheDones != 2 {
		t.Fatalf("want miss + re-cache optimize_done pairs, got %d", cacheDones)
	}
	if info.OptWork != cacheWork {
		t.Errorf("OptWork %d does not account all cache-side optimization work (want %d)",
			info.OptWork, cacheWork)
	}
}
