package plancache

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"repro/internal/catalog"
	"repro/internal/logical"
	"repro/internal/optimizer"
	"repro/internal/pop"
	"repro/internal/trace"
	"repro/internal/types"
)

// hashKey fingerprints a cache key for the trace: keys embed whole rendered
// predicates, so events carry the stable FNV-64a hash instead.
func hashKey(key string) string {
	h := fnv.New64a()
	io.WriteString(h, key)
	return fmt.Sprintf("%016x", h.Sum64())
}

// cacheEvent emits one plan-cache verdict when tracing is on. Cache events
// use the key hash as their statement identity — the cache's unit of sharing
// is the normalized statement, not one binding's signature.
func (r *Runner) cacheEvent(kind trace.Kind, kh string, ci *trace.CacheInfo) {
	if tr := r.Opts.Trace; tr != nil {
		ci.Key = kh
		tr.Record(trace.Event{Kind: kind, Query: kh, Cache: ci})
	}
}

// Runner executes statements through the plan cache: a guarded hit skips
// optimization entirely, a miss optimizes once and caches the result, and a
// runtime CHECK violation during a cached execution invalidates the plan and
// replaces it with the re-optimized one. With Cache == nil the runner
// degenerates to a plain pop.Runner — bit-for-bit, including feedback and
// signature behavior.
type Runner struct {
	Cache *Cache
	Cat   *catalog.Catalog
	Opts  pop.Options
}

// NewRunner returns a caching runner over the catalog.
func NewRunner(cache *Cache, cat *catalog.Catalog, opts pop.Options) *Runner {
	return &Runner{Cache: cache, Cat: cat, Opts: opts}
}

// ExecInfo describes how the cache served one execution.
type ExecInfo struct {
	Key string
	Hit bool
	// OptWork is the optimization work this execution spent: candidate plans
	// costed on a miss, guard subset-estimates on a hit — directly comparable
	// since both count cost-model cardinality evaluations.
	OptWork int
	// OptWorkSaved is the work a hit avoided: the entry's last full
	// optimization cost minus the guard-check cost. Zero on a miss.
	OptWorkSaved int
	// Invalidated reports that a CHECK violation fired during this execution
	// and the plan it ran (cached or fresh) was removed/replaced.
	Invalidated bool
	// CachedPlans is the entry's plan count after this execution.
	CachedPlans int
}

// Run executes the query with the given parameter binding.
func (r *Runner) Run(q *logical.Query, params []types.Datum) (*pop.Result, ExecInfo, error) {
	if r.Cache == nil {
		res, err := pop.NewRunner(r.Cat, r.Opts).Run(q, params)
		return res, ExecInfo{}, err
	}

	key := Key(q)
	if r.Opts.Planner != nil {
		// The strategy is part of cached-plan identity: a greedy plan must
		// never serve a DP request (or vice versa), even for the same SQL.
		key += "|planner=" + r.Opts.Planner.Name()
	}
	entry := r.Cache.Entry(key)
	info := ExecInfo{Key: key}

	// Estimate the binding's guarded cardinalities from histograms and the
	// entry's accumulated feedback — the cheap lookup-side check.
	boundQ := logical.BindParams(q, params)
	ce, err := optimizer.NewCardEstimator(r.Cat, boundQ, entry.Feedback)
	if err != nil {
		return nil, info, err
	}

	// Resolve folds a Planner strategy into Enabled/Policy/Configure so the
	// miss and re-optimize paths below — which build their own optimizers —
	// plan under the strategy too.
	opts := r.Opts.Resolve()
	opts.SharedFeedback = entry.Feedback
	opts.BindParamEstimates = true

	kh := hashKey(key)
	var used *CachedPlan
	cp, rejs := entry.LookupDetail(ce)
	if r.Opts.Trace != nil {
		for _, rej := range rejs {
			ci := &trace.CacheInfo{
				GuardSig: optimizer.Signature(boundQ, rej.Guard.Tables),
				GuardEst: rej.Est,
				RangeLo:  rej.Guard.Range.Lo,
			}
			if !math.IsInf(rej.Guard.Range.Hi, 1) {
				ci.RangeHi = trace.Float(rej.Guard.Range.Hi)
			}
			r.cacheEvent(trace.CacheGuardReject, kh, ci)
		}
	}
	if cp != nil {
		// Guarded hit: execute the cached plan, skipping optimization.
		info.Hit = true
		info.OptWork = ce.Evals
		if saved := entry.missWork() - ce.Evals; saved > 0 {
			info.OptWorkSaved = saved
		}
		used = cp
		opts.InitialPlan = cp.Plan
		if r.Opts.Trace != nil {
			r.cacheEvent(trace.CacheHit, kh, &trace.CacheInfo{
				OptWork:      info.OptWork,
				OptWorkSaved: info.OptWorkSaved,
				Plans:        len(entry.Plans()),
			})
		}
	} else {
		// Miss: optimize in full (with the binding's estimates and the
		// entry's feedback) and cache the plan with its validity guards.
		opt := optimizer.New(r.Cat)
		opt.Feedback = entry.Feedback
		if opts.Configure != nil {
			opts.Configure(opt)
		}
		if len(params) > 0 {
			opt.ParamBindings = params
		}
		// The miss-path optimization happens here, not in pop.Runner (which
		// sees it as a cache-supplied InitialPlan), so the optimize events are
		// emitted here too — the metrics registry's `optimizations` counter
		// must cover every optimizer invocation, cached path included.
		if tr := r.Opts.Trace; tr != nil {
			tr.Record(trace.Event{Kind: trace.OptimizeStart, Query: kh})
		}
		plan, err := opt.Optimize(q)
		if err != nil {
			return nil, info, err
		}
		if tr := r.Opts.Trace; tr != nil {
			tr.Record(trace.Event{Kind: trace.OptimizeDone, Query: kh, Opt: &trace.OptInfo{
				PlanSig:    pop.PlanSig(plan, q),
				Cost:       plan.Cost,
				Candidates: opt.EnumeratedCandidates,
			}})
		}
		info.OptWork = opt.EnumeratedCandidates
		entry.noteMissWork(opt.EnumeratedCandidates)
		used = r.insert(entry, plan, q)
		opts.InitialPlan = plan
		if r.Opts.Trace != nil {
			r.cacheEvent(trace.CacheMiss, kh, &trace.CacheInfo{
				OptWork: info.OptWork,
				Plans:   len(entry.Plans()),
			})
		}
	}

	res, err := pop.NewRunner(r.Cat, opts).Run(q, params)
	if err != nil {
		return nil, info, err
	}

	if res.Reopts > 0 {
		// A CHECK fired: the plan's validity ranges were wrong for a binding
		// its guards accepted. Drop it and cache the plan a re-optimization
		// with the harvested feedback now produces. The final attempt's plan
		// may scan statement-scoped temp MVs, so re-optimize MV-free here —
		// this is exactly the plan the next identical binding would build.
		info.Invalidated = true
		if used != nil {
			entry.Invalidate(used)
			if r.Opts.Trace != nil {
				r.cacheEvent(trace.CacheInvalidate, kh, &trace.CacheInfo{
					Plans: len(entry.Plans()),
				})
			}
		}
		opt := optimizer.New(r.Cat)
		opt.Feedback = entry.Feedback
		if opts.Configure != nil {
			opts.Configure(opt)
		}
		if len(params) > 0 {
			opt.ParamBindings = params
		}
		if tr := r.Opts.Trace; tr != nil {
			tr.Record(trace.Event{Kind: trace.OptimizeStart, Query: kh})
		}
		plan, rerr := opt.Optimize(q)
		if rerr != nil {
			// The POP runner just re-optimized this same query with the same
			// feedback and succeeded, so a failure here is an invariant breach
			// worth surfacing — and swallowing it would leave the
			// OptimizeStart above unpaired, skewing every consumer that
			// correlates start/done events (the metrics registry among them).
			return res, info, fmt.Errorf("plancache: re-optimize after invalidation: %w", rerr)
		}
		if tr := r.Opts.Trace; tr != nil {
			tr.Record(trace.Event{Kind: trace.OptimizeDone, Query: kh, Opt: &trace.OptInfo{
				PlanSig:    pop.PlanSig(plan, q),
				Cost:       plan.Cost,
				Candidates: opt.EnumeratedCandidates,
			}})
		}
		// The re-optimization is real optimizer work this execution performed;
		// without it OptWork under-reports exactly the runs where POP did the
		// most (guard evals or miss work alone, re-cache cost dropped).
		info.OptWork += opt.EnumeratedCandidates
		r.insert(entry, plan, q)
	}

	info.CachedPlans = len(entry.Plans())
	return res, info, nil
}

// insert caches a plan with its collected guards; uncacheable plans (temp-MV
// scans) are skipped. Returns the CachedPlan, or nil if not cached.
func (r *Runner) insert(entry *Entry, plan *optimizer.Plan, q *logical.Query) *CachedPlan {
	if !cacheable(plan) {
		return nil
	}
	cp := &CachedPlan{
		Plan:    plan,
		Guards:  optimizer.CollectGuards(plan),
		Explain: optimizer.Explain(plan, q),
	}
	entry.Insert(cp, r.Cache.maxPlans())
	return cp
}
