package plancache

import (
	"repro/internal/catalog"
	"repro/internal/logical"
	"repro/internal/optimizer"
	"repro/internal/pop"
	"repro/internal/types"
)

// Runner executes statements through the plan cache: a guarded hit skips
// optimization entirely, a miss optimizes once and caches the result, and a
// runtime CHECK violation during a cached execution invalidates the plan and
// replaces it with the re-optimized one. With Cache == nil the runner
// degenerates to a plain pop.Runner — bit-for-bit, including feedback and
// signature behavior.
type Runner struct {
	Cache *Cache
	Cat   *catalog.Catalog
	Opts  pop.Options
}

// NewRunner returns a caching runner over the catalog.
func NewRunner(cache *Cache, cat *catalog.Catalog, opts pop.Options) *Runner {
	return &Runner{Cache: cache, Cat: cat, Opts: opts}
}

// ExecInfo describes how the cache served one execution.
type ExecInfo struct {
	Key string
	Hit bool
	// OptWork is the optimization work this execution spent: candidate plans
	// costed on a miss, guard subset-estimates on a hit — directly comparable
	// since both count cost-model cardinality evaluations.
	OptWork int
	// OptWorkSaved is the work a hit avoided: the entry's last full
	// optimization cost minus the guard-check cost. Zero on a miss.
	OptWorkSaved int
	// Invalidated reports that a CHECK violation fired during this execution
	// and the plan it ran (cached or fresh) was removed/replaced.
	Invalidated bool
	// CachedPlans is the entry's plan count after this execution.
	CachedPlans int
}

// Run executes the query with the given parameter binding.
func (r *Runner) Run(q *logical.Query, params []types.Datum) (*pop.Result, ExecInfo, error) {
	if r.Cache == nil {
		res, err := pop.NewRunner(r.Cat, r.Opts).Run(q, params)
		return res, ExecInfo{}, err
	}

	key := Key(q)
	entry := r.Cache.Entry(key)
	info := ExecInfo{Key: key}

	// Estimate the binding's guarded cardinalities from histograms and the
	// entry's accumulated feedback — the cheap lookup-side check.
	boundQ := logical.BindParams(q, params)
	ce, err := optimizer.NewCardEstimator(r.Cat, boundQ, entry.Feedback)
	if err != nil {
		return nil, info, err
	}

	opts := r.Opts
	opts.SharedFeedback = entry.Feedback
	opts.BindParamEstimates = true

	var used *CachedPlan
	if cp := entry.Lookup(ce); cp != nil {
		// Guarded hit: execute the cached plan, skipping optimization.
		info.Hit = true
		info.OptWork = ce.Evals
		if saved := entry.missWork() - ce.Evals; saved > 0 {
			info.OptWorkSaved = saved
		}
		used = cp
		opts.InitialPlan = cp.Plan
	} else {
		// Miss: optimize in full (with the binding's estimates and the
		// entry's feedback) and cache the plan with its validity guards.
		opt := optimizer.New(r.Cat)
		opt.Feedback = entry.Feedback
		if opts.Configure != nil {
			opts.Configure(opt)
		}
		if len(params) > 0 {
			opt.ParamBindings = params
		}
		plan, err := opt.Optimize(q)
		if err != nil {
			return nil, info, err
		}
		info.OptWork = opt.EnumeratedCandidates
		entry.noteMissWork(opt.EnumeratedCandidates)
		used = r.insert(entry, plan, q)
		opts.InitialPlan = plan
	}

	res, err := pop.NewRunner(r.Cat, opts).Run(q, params)
	if err != nil {
		return nil, info, err
	}

	if res.Reopts > 0 {
		// A CHECK fired: the plan's validity ranges were wrong for a binding
		// its guards accepted. Drop it and cache the plan a re-optimization
		// with the harvested feedback now produces. The final attempt's plan
		// may scan statement-scoped temp MVs, so re-optimize MV-free here —
		// this is exactly the plan the next identical binding would build.
		info.Invalidated = true
		if used != nil {
			entry.Invalidate(used)
		}
		opt := optimizer.New(r.Cat)
		opt.Feedback = entry.Feedback
		if opts.Configure != nil {
			opts.Configure(opt)
		}
		if len(params) > 0 {
			opt.ParamBindings = params
		}
		if plan, err := opt.Optimize(q); err == nil {
			r.insert(entry, plan, q)
		}
	}

	info.CachedPlans = len(entry.Plans())
	return res, info, nil
}

// insert caches a plan with its collected guards; uncacheable plans (temp-MV
// scans) are skipped. Returns the CachedPlan, or nil if not cached.
func (r *Runner) insert(entry *Entry, plan *optimizer.Plan, q *logical.Query) *CachedPlan {
	if !cacheable(plan) {
		return nil
	}
	cp := &CachedPlan{
		Plan:    plan,
		Guards:  optimizer.CollectGuards(plan),
		Explain: optimizer.Explain(plan, q),
	}
	entry.Insert(cp, r.Cache.maxPlans())
	return cp
}
