// Package enginetest hosts cross-package differential tests: random
// schemas, data and queries evaluated by brute force and compared against
// every optimizer configuration and POP mode.
package enginetest

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/catalog"
	"repro/internal/executor"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/optimizer"
	"repro/internal/pop"
	"repro/internal/schema"
	"repro/internal/types"
)

// This file is a differential test harness: it generates random schemas,
// data and queries, evaluates each query by brute force, and checks that
// every optimizer configuration — every join method, greedy enumeration,
// robust mode, and POP with each checkpoint flavor — produces the same
// multiset of rows.

// canon renders rows as sorted strings for multiset comparison.
func canon(rows []schema.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

// diffRNG is a tiny deterministic PRNG for the generator.
type diffRNG struct{ s uint64 }

func (r *diffRNG) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

func (r *diffRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// diffSchema describes one random table.
type diffTable struct {
	name string
	rows int
	// every table has: id INT (0..rows-1, unique), fk INT (random into the
	// previous table), val INT (small domain), tag STRING (tiny domain),
	// maybe NULLs in val.
}

// buildRandomDB creates 2-4 chained tables with random sizes.
func buildRandomDB(t *testing.T, r *diffRNG) (*catalog.Catalog, []diffTable) {
	t.Helper()
	cat := catalog.New()
	n := 2 + r.intn(2) // 2-3 tables keeps brute force tractable
	tables := make([]diffTable, n)
	prevRows := 0
	for i := 0; i < n; i++ {
		rows := 15 + r.intn(45)
		tables[i] = diffTable{name: fmt.Sprintf("t%d", i), rows: rows}
		tab, err := cat.CreateTable(tables[i].name, schema.New(
			schema.Column{Name: "id", Type: types.KindInt},
			schema.Column{Name: "fk", Type: types.KindInt},
			schema.Column{Name: "val", Type: types.KindInt, Nullable: true},
			schema.Column{Name: "tag", Type: types.KindString},
		))
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < rows; j++ {
			fk := types.NewInt(0)
			if prevRows > 0 {
				fk = types.NewInt(int64(r.intn(prevRows)))
			}
			val := types.Datum(types.NewInt(int64(r.intn(10))))
			if r.intn(10) == 0 {
				val = types.Null
			}
			tab.Heap.MustInsert(schema.Row{
				types.NewInt(int64(j)),
				fk,
				val,
				types.NewString(string(rune('a' + r.intn(4)))),
			})
		}
		// Index the id of every other table; sometimes add a hash index on
		// val/tag so hash-lookup access paths join the configuration sweep.
		if r.intn(2) == 0 {
			if _, err := cat.CreateBTreeIndex(tables[i].name+"_pk", tables[i].name, "id"); err != nil {
				t.Fatal(err)
			}
		}
		if r.intn(3) == 0 {
			col := []string{"val", "tag"}[r.intn(2)]
			if _, err := cat.CreateHashIndex(tables[i].name+"_h", tables[i].name, col); err != nil {
				t.Fatal(err)
			}
		}
		prevRows = rows
	}
	if err := cat.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	return cat, tables
}

// buildRandomQuery joins the chain t0 ← t1 ← ... via fk=id and adds random
// local predicates; selects one column per table.
func buildRandomQuery(t *testing.T, cat *catalog.Catalog, tables []diffTable, r *diffRNG) *logical.Query {
	t.Helper()
	b := logical.NewBuilder(cat)
	for i := range tables {
		b.AddTable(tables[i].name, fmt.Sprintf("a%d", i))
	}
	for i := 1; i < len(tables); i++ {
		b.Where(&expr.Cmp{Op: expr.EQ,
			L: b.Col(fmt.Sprintf("a%d", i), "fk"),
			R: b.Col(fmt.Sprintf("a%d", i-1), "id"),
		})
	}
	// Random local predicates.
	for i := range tables {
		alias := fmt.Sprintf("a%d", i)
		switch r.intn(5) {
		case 0:
			b.Where(&expr.Cmp{Op: expr.LT, L: b.Col(alias, "val"),
				R: &expr.Const{Val: types.NewInt(int64(2 + r.intn(8)))}})
		case 1:
			b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col(alias, "tag"),
				R: &expr.Const{Val: types.NewString(string(rune('a' + r.intn(4))))}})
		case 2:
			b.Where(&expr.InList{Input: b.Col(alias, "val"), List: []expr.Expr{
				&expr.Const{Val: types.NewInt(int64(r.intn(10)))},
				&expr.Const{Val: types.NewInt(int64(r.intn(10)))},
			}})
		case 3:
			b.Where(&expr.IsNull{E: b.Col(alias, "val"), Negate: true})
		}
		b.SelectCol(alias, "id")
	}
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// bruteForce evaluates the query by exhaustive nested loops.
func bruteForce(t *testing.T, cat *catalog.Catalog, q *logical.Query) []schema.Row {
	t.Helper()
	// Materialize all tables.
	heaps := make([][]schema.Row, len(q.Tables))
	for i, tr := range q.Tables {
		tab, err := cat.Table(tr.Table)
		if err != nil {
			t.Fatal(err)
		}
		it := tab.Heap.Scan()
		for {
			row, _, ok := it.Next()
			if !ok {
				break
			}
			heaps[i] = append(heaps[i], row)
		}
	}
	pred := expr.Conjoin(q.Where...)
	var out []schema.Row
	var rec func(i int, acc schema.Row)
	rec = func(i int, acc schema.Row) {
		if i == len(heaps) {
			keep := true
			if pred != nil {
				v, err := pred.Eval(nil, acc)
				if err != nil {
					t.Fatal(err)
				}
				keep = expr.Accept(v)
			}
			if keep {
				proj := make(schema.Row, len(q.Select))
				for j, it := range q.Select {
					v, err := it.E.Eval(nil, acc)
					if err != nil {
						t.Fatal(err)
					}
					proj[j] = v
				}
				out = append(out, proj)
			}
			return
		}
		for _, row := range heaps[i] {
			rec(i+1, acc.Concat(row))
		}
	}
	rec(0, nil)
	return out
}

// TestDifferentialRandomQueries is the metamorphic sweep: 25 random
// databases × queries, each executed under 7 configurations, all compared
// to brute force.
func TestDifferentialRandomQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is slow")
	}
	configs := []struct {
		name string
		cfg  func(*optimizer.Optimizer)
	}{
		{"default", func(o *optimizer.Optimizer) {}},
		{"onlyHash", func(o *optimizer.Optimizer) { o.DisableNLJN = true; o.DisableMGJN = true }},
		{"onlyMerge", func(o *optimizer.Optimizer) { o.DisableNLJN = true; o.DisableHSJN = true }},
		{"onlyNLJN", func(o *optimizer.Optimizer) { o.DisableHSJN = true; o.DisableMGJN = true }},
		{"greedy", func(o *optimizer.Optimizer) { o.GreedyThreshold = 0 }},
		{"robust", func(o *optimizer.Optimizer) { o.RobustnessBonus = 1.5 }},
		{"noValidity", func(o *optimizer.Optimizer) { o.ComputeValidity = false }},
	}
	for seed := uint64(1); seed <= 25; seed++ {
		r := &diffRNG{s: seed * 0x9E3779B97F4A7C15}
		cat, tables := buildRandomDB(t, r)
		q := buildRandomQuery(t, cat, tables, r)
		want := canon(bruteForce(t, cat, q))

		for _, c := range configs {
			opt := optimizer.New(cat)
			c.cfg(opt)
			plan, err := opt.Optimize(q)
			if err != nil {
				t.Fatalf("seed %d %s: optimize: %v\nquery: %s", seed, c.name, err, q)
			}
			ex, err := executor.NewExecutor(cat, q, nil, opt.Model.Params, &executor.Meter{})
			if err != nil {
				t.Fatal(err)
			}
			root, err := ex.Build(plan)
			if err != nil {
				t.Fatalf("seed %d %s: build: %v\n%s", seed, c.name, err, optimizer.Explain(plan, q))
			}
			rows, err := executor.Run(root)
			if err != nil {
				t.Fatalf("seed %d %s: run: %v\n%s", seed, c.name, err, optimizer.Explain(plan, q))
			}
			got := canon(rows)
			if len(got) != len(want) {
				t.Fatalf("seed %d %s: %d rows, brute force %d\nquery: %s\nplan:\n%s",
					seed, c.name, len(got), len(want), q, optimizer.Explain(plan, q))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d %s: row %d: %s != %s", seed, c.name, i, got[i], want[i])
				}
			}
		}

		// POP under the default policy, pipelined ECDC, and the extension
		// features (spill guard, hash-build reuse, uncertainty penalty).
		for _, mode := range []string{"popDefault", "popECDC", "popSpillGuard", "popReuseBuilds"} {
			opts := pop.DefaultOptions()
			switch mode {
			case "popECDC":
				opts.Pipelined = true
				opts.Policy = pop.Policy{ECDC: true, RequireBoundedRange: true}
			case "popSpillGuard":
				opts.Policy.GuardSpill = true
				opts.UncertaintyPenalty = 1.5
			case "popReuseBuilds":
				opts.ReuseHashBuilds = true
			}
			res, err := pop.NewRunner(cat, opts).Run(q, nil)
			if err != nil {
				t.Fatalf("seed %d %s: %v\nquery: %s", seed, mode, err, q)
			}
			got := canon(res.Rows)
			if len(got) != len(want) {
				t.Fatalf("seed %d %s: %d rows, brute force %d (reopts=%d)\nquery: %s",
					seed, mode, len(got), len(want), res.Reopts, q)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d %s: row %d differs", seed, mode, i)
				}
			}
		}
	}
}
