// Package optimizer implements a Selinger-style cost-based optimizer with
// dynamic-programming join enumeration, plus the paper's contribution at the
// optimizer level: validity-range computation for plan edges via a plan
// sensitivity analysis embedded in the pruning phase (paper §2.2, Fig. 5).
package optimizer

import (
	"math"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/logical"
)

// OpKind enumerates physical plan operators.
type OpKind uint8

// Physical operators. OpCheck nodes are inserted by the POP post-pass; they
// have no relational semantics (paper §2).
const (
	OpTableScan OpKind = iota
	OpIndexScan
	OpHashLookup
	OpMVScan
	OpNLJN
	OpHSJN
	OpMGJN
	OpSort
	OpTemp
	OpHashAgg
	OpProject
	OpCheck
	OpExchange
)

// String returns the operator's display name.
func (k OpKind) String() string {
	switch k {
	case OpTableScan:
		return "TBSCAN"
	case OpIndexScan:
		return "IXSCAN"
	case OpHashLookup:
		return "HXSCAN"
	case OpMVScan:
		return "MVSCAN"
	case OpNLJN:
		return "NLJN"
	case OpHSJN:
		return "HSJN"
	case OpMGJN:
		return "MGJN"
	case OpSort:
		return "SORT"
	case OpTemp:
		return "TEMP"
	case OpHashAgg:
		return "GRPBY"
	case OpProject:
		return "RETURN"
	case OpCheck:
		return "CHECK"
	case OpExchange:
		return "XCHG"
	default:
		return "?OP?"
	}
}

// ExchangeKind distinguishes the two exchange operators of the parallel
// executor: Gather merges the unordered output of DOP partition workers into
// one stream; Repartition hash-distributes rows across DOP partitions so a
// partitioned join can process each partition independently.
type ExchangeKind uint8

// Exchange kinds.
const (
	ExGather ExchangeKind = iota
	ExRepart
)

// String returns the exchange kind's display name.
func (k ExchangeKind) String() string {
	if k == ExRepart {
		return "repart"
	}
	return "gather"
}

// IsJoin reports whether the operator is a join.
func (k OpKind) IsJoin() bool { return k == OpNLJN || k == OpHSJN || k == OpMGJN }

// IsMaterialization reports whether the operator fully materializes its
// input before producing output — the "materialization points" that lazy
// checkpoints piggyback on (paper §3.1). The build side of HSJN is also a
// materialization, handled specially during checkpoint placement.
func (k OpKind) IsMaterialization() bool { return k == OpSort || k == OpTemp }

// Range is a cardinality interval [Lo, Hi]. Validity ranges attach one to
// each plan edge; CHECK operators test the actual row count against it.
type Range struct {
	Lo, Hi float64
}

// UnboundedRange covers all cardinalities: the conservative default.
func UnboundedRange() Range { return Range{Lo: 0, Hi: math.Inf(1)} }

// Contains reports whether the cardinality is inside the range.
func (r Range) Contains(card float64) bool { return card >= r.Lo && card <= r.Hi }

// Bounded reports whether either end of the range is finite and binding.
func (r Range) Bounded() bool { return r.Lo > 0 || !math.IsInf(r.Hi, 1) }

// CheckFlavor enumerates the five checkpoint flavors of paper §3.
type CheckFlavor uint8

// Checkpoint flavors.
const (
	// LC: lazy check above an existing materialization point.
	LC CheckFlavor = iota
	// LCEM: lazy check with an eagerly added materialization (TEMP) on the
	// outer of an NLJN.
	LCEM
	// ECB: eager check with buffering (BUFCHECK) — tests while filling a
	// bounded buffer, re-optimizing before materialization completes.
	ECB
	// ECWC: eager check without compensation, below a materialization point.
	ECWC
	// ECDC: eager check with deferred compensation via a rid side-table and
	// an anti-join in the re-optimized plan.
	ECDC
)

// String returns the flavor's abbreviation.
func (f CheckFlavor) String() string {
	switch f {
	case LC:
		return "LC"
	case LCEM:
		return "LCEM"
	case ECB:
		return "ECB"
	case ECWC:
		return "ECWC"
	case ECDC:
		return "ECDC"
	default:
		return "?CHECK?"
	}
}

// CheckMeta parameterizes an OpCheck node.
type CheckMeta struct {
	ID        int // checkpoint id within the plan
	Flavor    CheckFlavor
	Range     Range   // check range [l, u] (paper §2)
	EstCard   float64 // the estimate the range was derived from
	Signature string  // plan-edge signature for feedback and MV matching
	// BufferSize is the valve size b for ECB checkpoints.
	BufferSize int
	// Where describes the placement site ("above SORT", "above HJ build",
	// "NLJN outer", ...), matching the legend of the paper's Figure 14.
	Where string
}

// SortKey is one key of a sort order, as a query-global column id.
type SortKey struct {
	Col  int
	Desc bool
}

// Plan is a physical query execution plan node. Cols lists the query-global
// column ids present in this node's output rows, in row order. Card and Cost
// are the optimizer's estimates; Validity holds the per-input-edge validity
// ranges computed during pruning.
type Plan struct {
	Op       OpKind
	Children []*Plan

	// Scans.
	Table                  int       // table index in the query (OpTableScan/OpIndexScan)
	IndexOrd               int       // indexed column ordinal for OpIndexScan
	IndexLo, IndexHi       expr.Expr // sargable bounds (nil = unbounded); equality sets both
	IndexLoInc, IndexHiInc bool
	MV                     *catalog.MatView // OpMVScan

	// Predicates, in query-global column ids.
	Filter expr.Expr // residual filter applied at this node

	// Join parameters. For OpNLJN with IndexJoin, the inner child must be an
	// OpIndexScan whose probe key comes from the outer row (LookupCol).
	JoinPred  expr.Expr
	EquiLeft  []int // global ids on the left/outer side
	EquiRight []int // global ids on the right/inner side
	IndexJoin bool
	LookupCol int // global id in the outer row used as the index probe key

	// Aggregation.
	GroupBy []int // global ids of grouping keys
	Items   []logical.SelectItem

	// Sorting.
	SortKeys []SortKey

	// Limit caps the number of rows the node emits (0 = unlimited); set on
	// the topmost node only.
	Limit int

	// POP checkpoint.
	Check *CheckMeta

	// Parallelism (OpExchange). DOP is the degree of parallelism the plan
	// was costed for; the executor may override it at run time without
	// changing the simulated work total.
	ExKind ExchangeKind
	DOP    int

	// Output description.
	Cols []int

	// Estimates.
	Card float64
	Cost float64

	// Validity ranges per child edge (parallel to Children). Nil means
	// "unbounded" for every edge.
	Validity []Range

	// Internal bookkeeping used during enumeration.
	tables  uint64 // bitmask of base tables covered
	ordered int    // global col id the output is ordered on (-1 = none)
}

// Tables returns the bitmask of base tables this subtree covers.
func (p *Plan) Tables() uint64 { return p.tables }

// OrderedOn returns the global column id the output is sorted on, or -1.
func (p *Plan) OrderedOn() int { return p.ordered }

// EdgeValidity returns the validity range for child edge i, defaulting to
// unbounded.
func (p *Plan) EdgeValidity(i int) Range {
	if i < len(p.Validity) {
		return p.Validity[i]
	}
	return UnboundedRange()
}

// SetEdgeValidity records a validity range for child edge i.
func (p *Plan) SetEdgeValidity(i int, r Range) {
	for len(p.Validity) < len(p.Children) {
		p.Validity = append(p.Validity, UnboundedRange())
	}
	p.Validity[i] = r
}

// ColPos returns the position of global column id g in the output row, or -1.
func (p *Plan) ColPos(g int) int {
	for i, c := range p.Cols {
		if c == g {
			return i
		}
	}
	return -1
}

// Walk visits the plan tree in pre-order.
func (p *Plan) Walk(fn func(*Plan)) {
	if p == nil {
		return
	}
	fn(p)
	for _, c := range p.Children {
		c.Walk(fn)
	}
}

// Count returns the number of nodes of the given kind in the subtree.
func (p *Plan) Count(kind OpKind) int {
	n := 0
	p.Walk(func(q *Plan) {
		if q.Op == kind {
			n++
		}
	})
	return n
}

// clone returns a shallow copy of the node (children shared). The POP
// post-pass uses it when rewriting trees.
func (p *Plan) clone() *Plan {
	c := *p
	c.Children = append([]*Plan(nil), p.Children...)
	c.Validity = append([]Range(nil), p.Validity...)
	return &c
}

// WrapCheck builds an OpCheck node over child, propagating the output
// description, estimates and table coverage. The POP post-pass uses it.
func WrapCheck(child *Plan, meta *CheckMeta) *Plan {
	return &Plan{
		Op:       OpCheck,
		Children: []*Plan{child},
		Check:    meta,
		Cols:     child.Cols,
		Card:     child.Card,
		Cost:     child.Cost,
		tables:   child.tables,
		ordered:  child.ordered,
	}
}

// WrapTemp builds an OpTemp materialization over child, propagating the
// output description, estimates and table coverage. The POP post-pass uses
// it for LCEM's eager materializations.
func WrapTemp(child *Plan) *Plan {
	return &Plan{
		Op:       OpTemp,
		Children: []*Plan{child},
		Cols:     child.Cols,
		Card:     child.Card,
		Cost:     child.Cost,
		tables:   child.tables,
		ordered:  child.ordered,
	}
}

// CloneNode returns a shallow copy with fresh child and validity slices,
// preserving unexported bookkeeping.
func CloneNode(p *Plan) *Plan { return p.clone() }
