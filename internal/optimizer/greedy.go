package optimizer

import "repro/internal/expr"

// This file implements the statistics-free greedy join-ordering mode, after
// the clause-based planner of janus-datalog ("when statistics are
// unnecessary"): join ORDER is chosen from the query's syntax alone —
// connectivity to the already-joined prefix plus a visible-selectivity score
// per table — in O(n·k) candidate offers instead of DP's exponential sweep.
// Physical operator choice along the chosen chain still runs through
// joinCandidates and the cost model, so validity ranges, CHECK placement and
// every downstream POP mechanism work unchanged; only the order search is
// statistics-free.

// JoinOrder selects the join-ordering algorithm an Optimize call uses.
type JoinOrder uint8

const (
	// JoinOrderAuto is the default policy: exhaustive left-deep DP up to
	// GreedyThreshold tables, cardinality-greedy chaining beyond it.
	JoinOrderAuto JoinOrder = iota
	// JoinOrderGreedy always uses the statistics-free greedy chain: the join
	// order is derived from predicate syntax only (connectivity and visible
	// selectivity), never from cardinality estimates. Physical operators are
	// still costed, so plans keep their validity ranges.
	JoinOrderGreedy
)

// visibleWeight scores one local predicate by its syntax alone — the
// "visible selectivity" heuristic: an equality against a known value is
// presumed most selective, a range comparison moderately so, and anything
// else (LIKE, column-to-column, disjunctions) weakly so. Parameter markers
// count as known values: the binding exists at run time even though the
// planner never sees it.
func visibleWeight(p expr.Expr) int {
	c, ok := p.(*expr.Cmp)
	if !ok {
		return 1
	}
	valued := func(e expr.Expr) bool {
		switch e.(type) {
		case *expr.Const, *expr.Param:
			return true
		}
		return false
	}
	if !valued(c.L) && !valued(c.R) {
		return 1
	}
	switch c.Op {
	case expr.EQ:
		return 4
	case expr.LT, expr.LE, expr.GT, expr.GE:
		return 2
	default:
		return 1 // NE barely filters
	}
}

// visibleScores computes each table's visible-selectivity score: the sum of
// visibleWeight over its local predicates. No statistics are consulted.
func (pl *planner) visibleScores() []int {
	score := make([]int, len(pl.q.Tables))
	for ti := range pl.q.Tables {
		for _, p := range pl.q.LocalPredicates(ti) {
			score[ti] += visibleWeight(p)
		}
	}
	return score
}

// enumerateGreedyVisible folds tables into a left-deep chain using only
// syntactic signals. The seed is the most visibly-filtered table; each step
// prefers tables connected to the prefix by join predicates (cartesian
// products only when unavoidable), ranked by 8·connectivity + visible score
// so an extra join edge outweighs any plausible filter advantage. All ties
// break toward the lower table index, which makes the order — and therefore
// the plan — deterministic across runs.
func (pl *planner) enumerateGreedyVisible(full uint64) error {
	n := len(pl.q.Tables)
	score := pl.visibleScores()
	start := 0
	for ti := 1; ti < n; ti++ {
		if score[ti] > score[start] {
			start = ti
		}
	}
	joined := uint64(1) << uint(start)
	for joined != full {
		next, bestStep, connectedFound := -1, -1, false
		for ti := 0; ti < n; ti++ {
			bit := uint64(1) << uint(ti)
			if joined&bit != 0 {
				continue
			}
			conn := len(pl.joinPredsBetween(joined, ti))
			if connectedFound && conn == 0 {
				continue // defer cartesian products unless unavoidable
			}
			step := 8*conn + score[ti]
			if conn > 0 && !connectedFound {
				// First connected candidate beats any cartesian one.
				next, bestStep, connectedFound = ti, step, true
				continue
			}
			if step > bestStep {
				next, bestStep = ti, step
			}
		}
		for _, outer := range orderedGroup(pl.best[joined]) {
			for _, cand := range pl.joinCandidates(outer, next) {
				pl.addCandidate(cand)
			}
		}
		joined |= 1 << uint(next)
		if mv := pl.matchMV(joined); mv != nil {
			pl.addCandidate(mv)
		}
		if len(pl.best[joined]) == 0 {
			return maskError(pl.est, joined)
		}
	}
	return nil
}
