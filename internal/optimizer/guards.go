package optimizer

import (
	"repro/internal/catalog"
	"repro/internal/logical"
	"repro/internal/stats"
)

// This file exports the validity ranges computed during enumeration (§2.2) in
// a form the plan cache can check without re-running the optimizer: a set of
// guards, one per guarded table subset. A cached plan may be reused for a new
// parameter binding iff the binding's estimated cardinality for every guarded
// subset lies inside the guard's range — the parametric-reuse reading of the
// paper's validity ranges.

// Guard pins one validity-guarded edge of a plan: the base-table subset
// feeding the edge, the validity range the optimizer proved the plan optimal
// within, and the estimate the range was derived from.
type Guard struct {
	Tables  uint64  // bitmask of base tables feeding the edge
	Range   Range   // validity interval on the edge's cardinality
	EstCard float64 // the optimizer's estimate when the plan was built
}

// CollectGuards extracts the reuse guards from a plan tree: every checkable
// child edge carrying a bounded validity range contributes its child's table
// subset. Edges the runtime cannot observe fully (index-NLJN probes,
// rescanned NLJN inners) are skipped, exactly as CHECK placement skips them.
// Multiple edges over the same subset (the same intermediate result feeding
// different operators, or surviving an exchange wrap) are intersected —
// reuse requires every edge in range, so the conjunction is the tightest
// interval. Guards come back in first-visit (pre-order) order.
func CollectGuards(p *Plan) []Guard {
	acc := map[uint64]Guard{}
	var order []uint64
	p.Walk(func(n *Plan) {
		for k, c := range n.Children {
			if !edgeCheckable(n, k) || c.tables == 0 {
				continue
			}
			r := n.EdgeValidity(k)
			if !r.Bounded() {
				continue
			}
			g, seen := acc[c.tables]
			if !seen {
				g = Guard{Tables: c.tables, Range: UnboundedRange(), EstCard: c.Card}
				order = append(order, c.tables)
			}
			if r.Lo > g.Range.Lo {
				g.Range.Lo = r.Lo
			}
			if r.Hi < g.Range.Hi {
				g.Range.Hi = r.Hi
			}
			acc[c.tables] = g
		}
	})
	out := make([]Guard, 0, len(order))
	for _, m := range order {
		out = append(out, acc[m])
	}
	return out
}

// CardEstimator estimates table-subset cardinalities for a query without
// enumerating any plans — the plan cache's cheap lookup-side check. Build it
// over the parameter-bound query (logical.BindParams) so marker predicates
// get histogram selectivities instead of defaults, and pass the cache entry's
// feedback so observed actuals override estimates exactly as they would in a
// full optimization.
type CardEstimator struct {
	est *estimator
	// Evals counts SubsetCard evaluations — the lookup-side measure of
	// optimization work, comparable against Optimizer.EnumeratedCandidates.
	Evals int
}

// NewCardEstimator resolves the query's tables against the catalog and
// returns an estimator ready for SubsetCard probes.
func NewCardEstimator(cat *catalog.Catalog, q *logical.Query, fb *stats.Feedback) (*CardEstimator, error) {
	tabs := make([]*catalog.Table, len(q.Tables))
	for i, tr := range q.Tables {
		t, err := cat.Table(tr.Table)
		if err != nil {
			return nil, err
		}
		tabs[i] = t
	}
	return &CardEstimator{est: newEstimator(q, tabs, fb)}, nil
}

// SubsetCard estimates the join output cardinality of the table subset.
func (ce *CardEstimator) SubsetCard(mask uint64) float64 {
	ce.Evals++
	return ce.est.SubsetCard(mask)
}
