package optimizer

import "math"

// CostParams are the work-unit weights of the cost model. The executor
// charges the same weights per actual row processed, so a plan's simulated
// execution time equals its modeled cost evaluated at the actual
// cardinalities — which makes the figures deterministic and machine
// independent (DESIGN.md §1).
type CostParams struct {
	ScanRow      float64 // sequential heap row
	PredEval     float64 // one predicate evaluation
	HashBuildRow float64 // insert a row into a hash table
	HashProbeRow float64 // probe a hash table
	OutputRow    float64 // construct an output tuple
	SortCmpRow   float64 // per row × log2(n) comparison work
	TempWrite    float64 // write a row to a temp
	TempRead     float64 // read a row back from a temp
	IndexLevel   float64 // touch one B+tree level
	FetchRow     float64 // random heap fetch via rid
	MergeRow     float64 // advance a merge-join input
	CheckRow     float64 // CHECK counter bump (negligible, paper §1)
	SpillRow     float64 // write+read a row in an extra hash-join stage

	// MemoryBytes is the hash-join build memory budget. Builds larger than
	// this run in multiple stages, spilling both inputs — the cost cliff the
	// paper cites ("a 10 percent increase in ORDERS may turn a two-stage
	// hash join into a three-stage hash join").
	MemoryBytes float64

	// ReoptInvoke is the fixed cost of one optimizer re-invocation
	// (context switching; paper Fig. 12 shows it as a tiny gap).
	ReoptInvoke float64

	// Workers is the degree of parallelism available to the executor. At 1
	// (the default) the optimizer emits purely serial plans, bit-for-bit
	// identical to plans produced before exchanges existed.
	Workers int

	// ExchangeRow is the per-row cost of moving a row through an exchange:
	// the partition hash plus the hand-off between producer and consumer.
	// Charged once per row per exchange regardless of the executed DOP, so
	// work totals stay deterministic.
	ExchangeRow float64

	// ExchangeSetup is the fixed cost of instantiating one exchange operator
	// (spinning up workers and partition buffers).
	ExchangeSetup float64
}

// DefaultCostParams returns the calibrated default weights.
func DefaultCostParams() CostParams {
	return CostParams{
		ScanRow:      1.0,
		PredEval:     0.15,
		HashBuildRow: 2.0,
		HashProbeRow: 1.2,
		OutputRow:    0.5,
		SortCmpRow:   0.35,
		TempWrite:    1.0,
		TempRead:     0.5,
		IndexLevel:   2.0,
		FetchRow:     4.0,
		MergeRow:     0.8,
		CheckRow:     0.02,
		SpillRow:     2.5,
		MemoryBytes:  1 << 20,
		ReoptInvoke:  500,

		Workers:       1,
		ExchangeRow:   0.05,
		ExchangeSetup: 50,
	}
}

// CostModel evaluates operator cost formulas. The formulas are functions of
// the child edge cardinalities, which is exactly what the validity-range
// sensitivity analysis re-evaluates with perturbed cardinalities (paper
// §2.2: "the only overhead is the repeated evaluation of the cost functions
// for operators oopt and oalt with alternate cardinalities").
type CostModel struct {
	Params CostParams

	// RobustnessBonus is the §7 "Checking Opportunities" handicap: the local
	// work of operators offering few re-optimization opportunities (hash
	// joins, index nested-loop joins) is scaled by 1+RobustnessBonus. Living
	// inside the model keeps the validity-range sensitivity analysis
	// consistent with plan selection.
	RobustnessBonus float64
}

// handicap returns the robustness multiplier for an operator's local work.
func (m *CostModel) handicap(p *Plan) float64 {
	if m.RobustnessBonus <= 0 {
		return 1
	}
	if p.Op == OpHSJN || (p.Op == OpNLJN && p.IndexJoin) {
		return 1 + m.RobustnessBonus
	}
	return 1
}

// hashStages returns the number of passes a hash join build of the given
// size needs under the memory budget.
func (m *CostModel) hashStages(buildRows, rowWidth float64) float64 {
	bytes := buildRows * rowWidth
	if bytes <= m.Params.MemoryBytes || m.Params.MemoryBytes <= 0 {
		return 1
	}
	return math.Ceil(bytes / m.Params.MemoryBytes)
}

// rowWidthOf estimates the byte width of a plan's output rows from its
// column count (widths are tracked coarsely; 12 bytes per column).
func rowWidthOf(p *Plan) float64 {
	w := float64(len(p.Cols)) * 12
	if w <= 0 {
		w = 12
	}
	return w
}

// Recost computes the total (cumulative) cost of plan node p given its child
// output cardinalities cc and child subtree costs cs. Output cardinality is
// scaled from the node's estimate in proportion to the perturbed inputs so
// downstream terms stay consistent. Leaf operators return their precomputed
// cost.
func (m *CostModel) Recost(p *Plan, cc, cs []float64) float64 {
	pr := &m.Params
	switch p.Op {
	case OpTableScan, OpIndexScan, OpHashLookup, OpMVScan:
		return p.Cost

	case OpNLJN:
		outer, inner := cc[0], cc[1]
		outerCost, innerCost := cs[0], cs[1]
		probes := math.Max(outer, 0)
		out := scaleCardOf(p, cc)
		if p.IndexJoin {
			// Inner child is a parameterized index probe: its Cost is the
			// per-probe cost and its Card the per-probe match count.
			return outerCost + (probes*innerCost+out*pr.OutputRow)*m.handicap(p)
		}
		// Naive NLJN rescans the inner subtree once per outer row and
		// evaluates the join predicate against every pair.
		rescans := math.Max(probes, 1)
		return outerCost + rescans*innerCost + probes*inner*pr.PredEval + out*pr.OutputRow

	case OpHSJN:
		probe, build := cc[0], cc[1]
		probeCost, buildCost := cs[0], cs[1]
		stages := m.hashStages(build, rowWidthOf(p.Children[1]))
		out := scaleCardOf(p, cc)
		own := build*pr.HashBuildRow + probe*pr.HashProbeRow + out*pr.OutputRow
		if stages > 1 {
			own += (stages - 1) * (build + probe) * pr.SpillRow
		}
		return probeCost + buildCost + own*m.handicap(p)

	case OpMGJN:
		l, r := cc[0], cc[1]
		out := scaleCardOf(p, cc)
		return cs[0] + cs[1] + (l+r)*pr.MergeRow + out*pr.OutputRow

	case OpSort:
		n := cc[0]
		return cs[0] + n*math.Log2(n+2)*pr.SortCmpRow + n*pr.TempWrite

	case OpTemp:
		n := cc[0]
		return cs[0] + n*(pr.TempWrite+pr.TempRead)

	case OpHashAgg:
		n := cc[0]
		groups := scaleCardOf(p, cc)
		return cs[0] + n*pr.HashBuildRow + groups*pr.OutputRow

	case OpProject:
		n := cc[0]
		filterTerms := 0.0
		if p.Filter != nil {
			filterTerms = n * pr.PredEval
		}
		return cs[0] + n*pr.OutputRow + filterTerms

	case OpCheck:
		n := cc[0]
		return cs[0] + n*pr.CheckRow

	case OpExchange:
		// The charge models the data movement, not the concurrency: the same
		// rows cross the exchange at any DOP, so the simulated work total is
		// DOP-independent (wall-clock is what parallelism buys).
		n := cc[0]
		return cs[0] + pr.ExchangeSetup + n*pr.ExchangeRow

	default:
		return cs[0]
	}
}

// scaleCardOf scales the estimated output cardinality in proportion to the
// perturbed input cardinalities, so cost terms that depend on output size
// respond to the sensitivity analysis. The snapshot — the cardinalities the
// estimate was computed from — is read directly from the node's children
// instead of materialized by childCardsSnapshot: the validity-range search
// evaluates Recost thousands of times per optimization, and a per-evaluation
// snapshot slice was the single largest allocation site in the whole system.
func scaleCardOf(p *Plan, cc []float64) float64 {
	out := p.Card
	for i := range cc {
		if i < len(p.Children) && p.Children[i].Card > 0 {
			out *= cc[i] / p.Children[i].Card
		}
	}
	if math.IsNaN(out) || out < 0 {
		return p.Card
	}
	return out
}

// childCardsSnapshot returns the child cardinalities the node's estimates
// were derived from.
func (p *Plan) childCardsSnapshot() []float64 {
	out := make([]float64, len(p.Children))
	for i, c := range p.Children {
		out[i] = c.Card
	}
	return out
}

// childCosts returns the child subtree costs.
func (p *Plan) childCosts() []float64 {
	out := make([]float64, len(p.Children))
	for i, c := range p.Children {
		out[i] = c.Cost
	}
	return out
}

// finishCosting sets p.Cost from its children using the model.
func (m *CostModel) finishCosting(p *Plan) {
	if len(p.Children) == 0 {
		return
	}
	p.Cost = m.Recost(p, p.childCardsSnapshot(), p.childCosts())
}

// CostWithEdgeCard recomputes the total cost of p with child edge k's
// cardinality overridden to c, holding every child's subtree cost fixed.
// This is the f(c) whose crossover the validity-range search locates.
func (m *CostModel) CostWithEdgeCard(p *Plan, k int, c float64) float64 {
	cc := p.childCardsSnapshot()
	if k >= 0 && k < len(cc) {
		cc[k] = c
	}
	return m.Recost(p, cc, p.childCosts())
}
