package optimizer

import (
	"math"
	"testing"
	"testing/quick"
)

// mkLeaf builds a leaf access plan for the validity tests.
func mkLeaf(card, cost float64, mask uint64) *Plan {
	return &Plan{Op: OpTableScan, Cols: []int{0}, Card: card, Cost: cost, tables: mask, ordered: -1}
}

// nljnVsHsjn builds the canonical pair of structurally equivalent plans the
// paper's Figure 4 illustrates: an index NLJN and a hash join over the same
// children. The NLJN is cheaper at the estimate; it becomes suboptimal once
// the outer cardinality grows past the crossover.
func nljnVsHsjn(outerCard float64) (popt, palt *Plan, m *CostModel) {
	m = &CostModel{Params: DefaultCostParams()}
	outer := mkLeaf(outerCard, 1000, 0b01)
	probeInner := &Plan{Op: OpIndexScan, Cols: []int{1}, Card: 1, Cost: 10, tables: 0b10, ordered: -1}
	scanInner := mkLeaf(10000, 10000, 0b10)

	popt = &Plan{
		Op: OpNLJN, IndexJoin: true, LookupCol: 0,
		Children: []*Plan{outer, probeInner},
		Cols:     []int{0, 1}, Card: outerCard, tables: 0b11, ordered: -1,
	}
	m.finishCosting(popt)
	palt = &Plan{
		Op:       OpHSJN,
		Children: []*Plan{outer, scanInner},
		EquiLeft: []int{0}, EquiRight: []int{1},
		Cols: []int{0, 1}, Card: outerCard, tables: 0b11, ordered: -1,
	}
	m.finishCosting(palt)
	return popt, palt, m
}

func TestUpperCrossoverFindsInversion(t *testing.T) {
	popt, palt, m := nljnVsHsjn(100)
	if popt.Cost >= palt.Cost {
		t.Fatalf("fixture broken: NLJN (%v) should win at the estimate vs HSJN (%v)", popt.Cost, palt.Cost)
	}
	ub := m.upperCrossover(popt, 0, palt, 0)
	if math.IsInf(ub, 1) {
		t.Fatal("crossover must exist: NLJN cost grows ~10x faster per outer row")
	}
	if ub <= 100 {
		t.Fatalf("upper bound %v must exceed the estimate", ub)
	}
	// The bound is conservative: at ub the alternative is truly no more
	// expensive — re-optimizing there provably changes the plan.
	costOpt := m.CostWithEdgeCard(popt, 0, ub)
	costAlt := m.CostWithEdgeCard(palt, 0, ub)
	if costAlt > costOpt {
		t.Errorf("at the bound the alternative must win: opt=%v alt=%v", costOpt, costAlt)
	}
}

func TestLowerCrossoverOnDominatedAxis(t *testing.T) {
	// Give HSJN the win at the estimate and check the reverse direction:
	// below some outer cardinality the NLJN is cheaper again. The estimate
	// must be within reach of the capped 3-iteration search — a crossover
	// much further away is legitimately left unbounded (stopping early is
	// always conservative, paper §2.2).
	popt, palt, m := nljnVsHsjn(8000)
	// Now the hash join should be cheaper — swap roles.
	if palt.Cost >= popt.Cost {
		t.Skipf("fixture: HSJN %v vs NLJN %v", palt.Cost, popt.Cost)
	}
	lb := m.lowerCrossover(palt, 0, popt, 0)
	if lb <= 0 {
		t.Fatal("a lower crossover must exist: tiny outers favor the index NLJN")
	}
	if lb >= 8000 {
		t.Fatalf("lower bound %v must be below the estimate", lb)
	}
	costOpt := m.CostWithEdgeCard(palt, 0, lb)
	costAlt := m.CostWithEdgeCard(popt, 0, lb)
	if costAlt > costOpt {
		t.Errorf("at the bound the alternative must win: opt=%v alt=%v", costOpt, costAlt)
	}
}

func TestNarrowValidityMatchesEdgesBySubset(t *testing.T) {
	popt, palt, m := nljnVsHsjn(100)
	m.narrowValidity(popt, palt)
	v := popt.EdgeValidity(0)
	if math.IsInf(v.Hi, 1) {
		t.Fatal("outer edge should be bounded above after pruning the hash join")
	}
	// The index-probe inner edge must stay unbounded (partial read).
	if popt.EdgeValidity(1).Bounded() {
		t.Error("index-probe edge must not be narrowed")
	}
}

func TestNarrowValiditySkipsMismatchedChildren(t *testing.T) {
	m := &CostModel{Params: DefaultCostParams()}
	a := mkLeaf(100, 100, 0b001)
	b := mkLeaf(200, 200, 0b010)
	c := mkLeaf(300, 300, 0b100)
	// popt joins {a,b}; palt joins {a,c}: no common edges → no narrowing.
	popt := &Plan{Op: OpHSJN, Children: []*Plan{a, b}, EquiLeft: []int{0}, EquiRight: []int{1},
		Cols: []int{0, 1}, Card: 100, tables: 0b011, ordered: -1}
	m.finishCosting(popt)
	palt := &Plan{Op: OpHSJN, Children: []*Plan{a, c}, EquiLeft: []int{0}, EquiRight: []int{1},
		Cols: []int{0, 1}, Card: 100, tables: 0b101, ordered: -1}
	m.finishCosting(palt)
	m.narrowValidity(popt, palt)
	if popt.EdgeValidity(0).Bounded() || popt.EdgeValidity(1).Bounded() {
		t.Error("plans over different subsets must not narrow each other")
	}
}

func TestNarrowValidityHandlesSwappedChildren(t *testing.T) {
	// HSJN(build=inner) vs HSJN(build=outer): children swapped; edges must
	// still be matched by their table sets.
	m := &CostModel{Params: DefaultCostParams()}
	small := mkLeaf(50, 50, 0b01)
	big := mkLeaf(5000, 5000, 0b10)
	popt := &Plan{Op: OpHSJN, Children: []*Plan{big, small}, EquiLeft: []int{1}, EquiRight: []int{0},
		Cols: []int{1, 0}, Card: 5000, tables: 0b11, ordered: -1}
	m.finishCosting(popt)
	palt := &Plan{Op: OpHSJN, Children: []*Plan{small, big}, EquiLeft: []int{0}, EquiRight: []int{1},
		Cols: []int{0, 1}, Card: 5000, tables: 0b11, ordered: -1}
	m.finishCosting(palt)
	if popt.Cost >= palt.Cost {
		t.Fatalf("build-on-small should win: %v vs %v", popt.Cost, palt.Cost)
	}
	m.narrowValidity(popt, palt)
	// The build edge ({small}) has a crossover: if the build side turns out
	// huge, building on the other side wins.
	if !popt.EdgeValidity(1).Bounded() {
		t.Error("build edge should be bounded: an oversized build flips the build direction")
	}
}

// Property: for random scenario parameters, upperCrossover either returns
// +Inf or a point at which the alternative has truly caught up — i.e. no
// false suboptimality bounds (the paper's conservativeness guarantee).
func TestCrossoverConservativeProperty(t *testing.T) {
	f := func(cardSeed, costSeed uint16) bool {
		outerCard := 10 + float64(cardSeed%5000)
		innerCost := 2 + float64(costSeed%200)
		m := &CostModel{Params: DefaultCostParams()}
		outer := mkLeaf(outerCard, 1000, 0b01)
		probe := &Plan{Op: OpIndexScan, Cols: []int{1}, Card: 1, Cost: innerCost, tables: 0b10, ordered: -1}
		scan := mkLeaf(10000, 10000, 0b10)
		nljn := &Plan{Op: OpNLJN, IndexJoin: true, Children: []*Plan{outer, probe},
			Cols: []int{0, 1}, Card: outerCard, tables: 0b11, ordered: -1}
		m.finishCosting(nljn)
		hsjn := &Plan{Op: OpHSJN, Children: []*Plan{outer, scan}, EquiLeft: []int{0}, EquiRight: []int{1},
			Cols: []int{0, 1}, Card: outerCard, tables: 0b11, ordered: -1}
		m.finishCosting(hsjn)
		popt, palt := nljn, hsjn
		if hsjn.Cost < nljn.Cost {
			popt, palt = hsjn, nljn
		}
		ub := m.upperCrossover(popt, 0, palt, 0)
		if math.IsInf(ub, 1) {
			return true // no bound claimed: always safe
		}
		return m.CostWithEdgeCard(palt, 0, ub) <= m.CostWithEdgeCard(popt, 0, ub)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestValidityAcrossSpillCliff checks the Newton-Raphson search survives the
// hash-join memory discontinuity the paper warns about ("cost functions are
// not smooth, not even always continuous").
func TestValidityAcrossSpillCliff(t *testing.T) {
	m := &CostModel{Params: DefaultCostParams()}
	m.Params.MemoryBytes = 2000 // tiny budget: the cliff is nearby
	outer := mkLeaf(100, 1000, 0b01)
	probe := &Plan{Op: OpIndexScan, Cols: []int{1}, Card: 1, Cost: 12, tables: 0b10, ordered: -1}
	scan := mkLeaf(3000, 3000, 0b10)
	nljn := &Plan{Op: OpNLJN, IndexJoin: true, Children: []*Plan{outer, probe},
		Cols: []int{0, 1}, Card: 100, tables: 0b11, ordered: -1}
	m.finishCosting(nljn)
	hsjn := &Plan{Op: OpHSJN, Children: []*Plan{outer, scan}, EquiLeft: []int{0}, EquiRight: []int{1},
		Cols: []int{0, 1}, Card: 100, tables: 0b11, ordered: -1}
	m.finishCosting(hsjn)
	if nljn.Cost >= hsjn.Cost {
		t.Skip("fixture: NLJN should win at the estimate")
	}
	ub := m.upperCrossover(nljn, 0, hsjn, 0)
	if !math.IsInf(ub, 1) {
		if m.CostWithEdgeCard(hsjn, 0, ub) > m.CostWithEdgeCard(nljn, 0, ub)+1e-6 {
			t.Error("bound across the spill cliff is not conservative")
		}
	}
}

func TestEdgeCheckable(t *testing.T) {
	outer := mkLeaf(10, 10, 0b01)
	inner := mkLeaf(10, 10, 0b10)
	naive := &Plan{Op: OpNLJN, Children: []*Plan{outer, inner}}
	if !edgeCheckable(naive, 0) || edgeCheckable(naive, 1) {
		t.Error("naive NLJN: outer checkable, rescanned inner not")
	}
	idx := &Plan{Op: OpNLJN, IndexJoin: true, Children: []*Plan{outer, inner}}
	if !edgeCheckable(idx, 0) || edgeCheckable(idx, 1) {
		t.Error("index NLJN: outer checkable, probe not")
	}
	hsjn := &Plan{Op: OpHSJN, Children: []*Plan{outer, inner}}
	if !edgeCheckable(hsjn, 0) || !edgeCheckable(hsjn, 1) {
		t.Error("hash join: both edges checkable")
	}
}
