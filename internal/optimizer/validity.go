package optimizer

import "math"

// This file implements the paper's §2.2: validity-range computation through
// plan sensitivity analysis, embedded in the optimizer's pruning phase.
//
// When plan Popt prunes a structurally equivalent alternative Palt (same
// joined tables, same child partitions, different root operator), we search
// for the input cardinality at which their cost functions cross. Beyond that
// crossover Popt is provably suboptimal with respect to the optimizer's own
// cost model, so the crossover narrows the validity range of Popt's input
// edge. The search is the modified Newton-Raphson of Figure 5 — cost
// functions here are code, not formulas, and are not even continuous (the
// hash-join spill cliff), so the method caps iterations, detects divergence
// and jumps, and stops on the first observed cost inversion, which keeps the
// resulting bound conservative: stopping early can only widen the range,
// never produce a false suboptimality bound.

// validityIterations caps the Newton-Raphson iterations (paper: "merely
// three iterations ... results in finding a good validity range").
const validityIterations = 3

// narrowValidity updates popt's per-edge validity ranges given that it just
// pruned palt. Edges are matched between the plans by the set of base tables
// feeding them; edges read partially (the inner of an index nested-loop
// join, which sees only matching rows) are skipped — checking them would not
// observe the child's true cardinality.
func (m *CostModel) narrowValidity(popt, palt *Plan) {
	for k, ck := range popt.Children {
		if !edgeCheckable(popt, k) {
			continue
		}
		j := matchingEdge(palt, ck.tables)
		if j < 0 || !edgeCheckable(palt, j) {
			continue
		}
		// Both crossover searches evaluate both plans at the estimate before
		// stepping, and every evaluation rebuilds the child-cardinality
		// snapshot. Hoist the shared at-estimate evaluations and reuse one
		// snapshot per (plan, edge) across the whole search: each crossover
		// sees exactly the cost values the duplicated evaluations produced,
		// so the returned bounds are bit-identical.
		fOpt := m.edgeCostFn(popt, k)
		fAlt := m.edgeCostFn(palt, j)
		est := math.Max(popt.Children[k].Card, 1e-6)
		costOptEst, costAltEst := fOpt(est), fAlt(est)
		cur := popt.EdgeValidity(k)
		if ub := upperCrossover(fOpt, fAlt, est, costOptEst, costAltEst); ub < cur.Hi {
			cur.Hi = ub
		}
		if lb := lowerCrossover(fOpt, fAlt, est, costOptEst, costAltEst); lb > cur.Lo {
			cur.Lo = lb
		}
		popt.SetEdgeValidity(k, cur)
	}
}

// edgeCostFn returns f(card) = total cost of p with child edge k's
// cardinality overridden to card — CostWithEdgeCard with the snapshot and
// child-cost arrays built once instead of per evaluation.
func (m *CostModel) edgeCostFn(p *Plan, k int) func(float64) float64 {
	cc := p.childCardsSnapshot()
	cs := p.childCosts()
	return func(card float64) float64 {
		cc[k] = card
		return m.Recost(p, cc, cs)
	}
}

// upperCrossover / lowerCrossover method forms: build the per-edge cost
// closures and evaluate at the estimate, then run the shared search. Used by
// tests and one-off callers; narrowValidity inlines this to share the
// closures between both directions.
func (m *CostModel) upperCrossover(popt *Plan, k int, palt *Plan, j int) float64 {
	fOpt := m.edgeCostFn(popt, k)
	fAlt := m.edgeCostFn(palt, j)
	est := math.Max(popt.Children[k].Card, 1e-6)
	return upperCrossover(fOpt, fAlt, est, fOpt(est), fAlt(est))
}

func (m *CostModel) lowerCrossover(popt *Plan, k int, palt *Plan, j int) float64 {
	fOpt := m.edgeCostFn(popt, k)
	fAlt := m.edgeCostFn(palt, j)
	est := math.Max(popt.Children[k].Card, 1e-6)
	return lowerCrossover(fOpt, fAlt, est, fOpt(est), fAlt(est))
}

// edgeCheckable reports whether child edge k of p carries the child's full
// output cardinality (so a CHECK on it observes the true count and the cost
// function responds to it directly).
func edgeCheckable(p *Plan, k int) bool {
	if p.Op == OpNLJN && p.IndexJoin && k == 1 {
		return false // parameterized index probe: partial read
	}
	if p.Op == OpNLJN && !p.IndexJoin && k == 1 {
		return false // rescanned inner: counter counts every rescan
	}
	return true
}

// matchingEdge returns the index of p's child whose table set equals mask,
// or -1.
func matchingEdge(p *Plan, mask uint64) int {
	for i, c := range p.Children {
		if c.tables == mask {
			return i
		}
	}
	return -1
}

// upperCrossover searches upward from the estimate for the cardinality at
// which the alternative becomes cheaper than the pruning winner. fOpt and
// fAlt evaluate the two plans' costs as a function of the shared edge's
// cardinality; costOptEst and costAltEst are their (caller-computed) values
// at the estimate. It returns +Inf if no crossover is found within the
// iteration budget (conservative: the edge stays unbounded above with
// respect to this alternative).
func upperCrossover(fOpt, fAlt func(float64) float64, est, costOptEst, costAltEst float64) float64 {
	card := est
	costOpt, costAlt := costOptEst, costAltEst
	if costAlt < costOpt {
		// The alternative is already cheaper at the estimate on this edge's
		// axis; the pruning decision came from other terms. No usable bound.
		return math.Inf(1)
	}
	for iter := 0; iter < validityIterations; iter++ {
		currDiff := costAlt - costOpt
		card *= 1.1 // need another point to estimate the gradient (Fig. 5b)
		costOpt, costAlt = fOpt(card), fAlt(card)
		newDiff := costAlt - costOpt
		if newDiff < 0 {
			return card // cost inversion observed: a provable crossover
		}
		if newDiff > currDiff {
			card *= 10 // diverging: jump (Fig. 5e)
		} else if gap := currDiff - newDiff; gap > 1e-12 {
			card *= 1 + newDiff/(11*gap) // Newton step (Fig. 5f)
		} else {
			card *= 10 // flat difference: probe much further out
		}
		costOpt, costAlt = fOpt(card), fAlt(card)
		if costAlt < costOpt {
			return card
		}
	}
	return math.Inf(1)
}

// lowerCrossover is the downward mirror of upperCrossover, returning 0 when
// no crossover is found below the estimate.
func lowerCrossover(fOpt, fAlt func(float64) float64, est, costOptEst, costAltEst float64) float64 {
	card := est
	costOpt, costAlt := costOptEst, costAltEst
	if costAlt < costOpt {
		return 0
	}
	for iter := 0; iter < validityIterations; iter++ {
		currDiff := costAlt - costOpt
		card *= 0.9
		costOpt, costAlt = fOpt(card), fAlt(card)
		newDiff := costAlt - costOpt
		if newDiff < 0 {
			return card
		}
		if newDiff > currDiff {
			card /= 10
		} else if gap := currDiff - newDiff; gap > 1e-12 {
			card /= 1 + newDiff/(11*gap)
		} else {
			card /= 10
		}
		if card < 1e-9 {
			return 0
		}
		costOpt, costAlt = fOpt(card), fAlt(card)
		if costAlt < costOpt {
			return card
		}
	}
	return 0
}
