package optimizer

import (
	"math"
	"strings"
	"testing"
)

// TestCrossoverBoundsPinned is the dedupe-refactor regression: the shared
// edge-cost closures in narrowValidity must produce bit-identical bounds to
// the standalone searches, and both are pinned to the exact values the
// original per-call CostWithEdgeCard implementation produced on this fixed
// plan pair.
func TestCrossoverBoundsPinned(t *testing.T) {
	popt, palt, m := nljnVsHsjn(100)
	const wantHi = 3409.0909090909095
	if ub := m.upperCrossover(popt, 0, palt, 0); ub != wantHi {
		t.Errorf("upperCrossover = %v, want exactly %v", ub, wantHi)
	}
	if lb := m.lowerCrossover(popt, 0, palt, 0); lb != 0 {
		t.Errorf("lowerCrossover = %v, want exactly 0", lb)
	}
	m.narrowValidity(popt, palt)
	v := popt.EdgeValidity(0)
	if v.Hi != wantHi || v.Lo != 0 {
		t.Errorf("narrowValidity range = [%v,%v], want exactly [0,%v]", v.Lo, v.Hi, wantHi)
	}
}

// TestUnboundedRangesSurviveCloneAndExplain: ±Inf validity bounds must round
// trip through CloneNode and render in Explain without corrupting the range.
func TestUnboundedRangesSurviveCloneAndExplain(t *testing.T) {
	popt, _, _ := nljnVsHsjn(100)
	popt.SetEdgeValidity(0, UnboundedRange())
	popt.SetEdgeValidity(1, Range{Lo: 5, Hi: math.Inf(1)})
	c := CloneNode(popt)
	if v := c.EdgeValidity(0); v.Lo != 0 || !math.IsInf(v.Hi, 1) {
		t.Errorf("clone corrupted unbounded range: %+v", v)
	}
	if v := c.EdgeValidity(1); v.Lo != 5 || !math.IsInf(v.Hi, 1) {
		t.Errorf("clone corrupted half-open range: %+v", v)
	}
	// Mutating the clone's ranges must not alias the original.
	c.SetEdgeValidity(0, Range{Lo: 1, Hi: 2})
	if v := popt.EdgeValidity(0); v.Lo != 0 || !math.IsInf(v.Hi, 1) {
		t.Errorf("clone aliases the original's validity slice: %+v", v)
	}
	if s := Explain(popt, nil); strings.Contains(s, "NaN") {
		t.Errorf("explain rendered NaN for infinite bounds:\n%s", s)
	}
}

// TestCollectGuardsSkipsUncheckableEdges: the index-NLJN probe edge sees only
// matching rows, so even a bounded validity range there must not become a
// reuse guard.
func TestCollectGuardsSkipsUncheckableEdges(t *testing.T) {
	popt, _, _ := nljnVsHsjn(100)
	popt.SetEdgeValidity(0, Range{Lo: 10, Hi: 1000})
	popt.SetEdgeValidity(1, Range{Lo: 1, Hi: 2}) // probe edge: must be ignored
	gs := CollectGuards(popt)
	if len(gs) != 1 {
		t.Fatalf("want 1 guard (outer edge only), got %d: %+v", len(gs), gs)
	}
	if gs[0].Tables != 0b01 || gs[0].Range.Lo != 10 || gs[0].Range.Hi != 1000 {
		t.Errorf("wrong guard: %+v", gs[0])
	}
	if gs[0].EstCard != 100 {
		t.Errorf("guard estimate = %v, want 100", gs[0].EstCard)
	}
}

// TestCollectGuardsIntersectsSharedSubsets: two bounded edges over the same
// table subset must intersect into one tightest guard.
func TestCollectGuardsIntersectsSharedSubsets(t *testing.T) {
	m := &CostModel{Params: DefaultCostParams()}
	leaf := mkLeaf(100, 100, 0b01)
	inner := mkLeaf(1000, 1000, 0b10)
	join := &Plan{Op: OpHSJN, Children: []*Plan{leaf, inner}, EquiLeft: []int{0}, EquiRight: []int{1},
		Cols: []int{0, 1}, Card: 500, tables: 0b11, ordered: -1}
	m.finishCosting(join)
	join.SetEdgeValidity(0, Range{Lo: 10, Hi: 5000})
	sort := &Plan{Op: OpSort, Children: []*Plan{join}, SortKeys: []SortKey{{Col: 0}},
		Cols: []int{0, 1}, Card: 500, tables: 0b11, ordered: 0}
	m.finishCosting(sort)
	top := &Plan{Op: OpNLJN, Children: []*Plan{leaf, sort}, Cols: []int{0, 1},
		Card: 500, tables: 0b11, ordered: -1}
	m.finishCosting(top)
	top.SetEdgeValidity(0, Range{Lo: 50, Hi: 2000}) // same subset {0b01} as join's edge 0

	gs := CollectGuards(top)
	var leafGuard *Guard
	for i := range gs {
		if gs[i].Tables == 0b01 {
			leafGuard = &gs[i]
		}
	}
	if leafGuard == nil {
		t.Fatalf("no guard for subset 0b01: %+v", gs)
	}
	if leafGuard.Range.Lo != 50 || leafGuard.Range.Hi != 2000 {
		t.Errorf("guards over a shared subset must intersect to [50,2000], got %+v", leafGuard.Range)
	}
}

// TestGuardsSurviveExchangeWrapping: parallelizing a plan wraps children in
// exchange operators that preserve the table mask, so validity guards
// computed during serial enumeration still resolve after the rewrite.
func TestGuardsSurviveExchangeWrapping(t *testing.T) {
	cat := fixture(t)
	q := selectiveJoinQuery(t, cat, 10)
	opt := New(cat)
	opt.Model.Params.Workers = 4
	plan, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Count(OpExchange) == 0 {
		t.Skip("fixture did not parallelize; nothing to check")
	}
	gs := CollectGuards(plan)
	for _, g := range gs {
		if g.Tables == 0 {
			t.Errorf("guard lost its table mask through exchange wrapping: %+v", g)
		}
		if !g.Range.Contains(g.EstCard) {
			t.Errorf("guard range %+v excludes its own estimate %v", g.Range, g.EstCard)
		}
	}
	// The exchange itself preserves the wrapped child's mask.
	plan.Walk(func(n *Plan) {
		if n.Op == OpExchange && n.Tables() != n.Children[0].Tables() {
			t.Errorf("exchange mask %b != child mask %b", n.Tables(), n.Children[0].Tables())
		}
	})
}

// TestGuardRangesContainEstimates: for a real optimized plan, every collected
// guard's range must contain the estimate it was derived from (narrowing
// searches outward from the estimate, so the estimate always stays inside).
func TestGuardRangesContainEstimates(t *testing.T) {
	cat := fixture(t)
	q := selectiveJoinQuery(t, cat, 10)
	plan, err := New(cat).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range CollectGuards(plan) {
		if !g.Range.Contains(g.EstCard) {
			t.Errorf("guard %+v excludes its own estimate", g)
		}
	}
}

// BenchmarkOptimize measures a full Optimize call over the three-table
// fixture — the optimizer fast path's microbenchmark.
func BenchmarkOptimize(b *testing.B) {
	cat := fixture(b)
	q := selectiveJoinQuery(b, cat, 10)
	opt := New(cat)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Optimize(q); err != nil {
			b.Fatal(err)
		}
	}
}
