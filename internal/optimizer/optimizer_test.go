package optimizer

import (
	"math"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/types"
)

// fixture: a skewed two-table join (big fact, small dim) plus a third table,
// mirroring the situations the paper's examples use.
func fixture(t testing.TB) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	dim, err := c.CreateTable("dim", schema.New(
		schema.Column{Name: "d_id", Type: types.KindInt},
		schema.Column{Name: "d_tag", Type: types.KindString},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		dim.Heap.MustInsert(schema.Row{types.NewInt(int64(i)), types.NewString("tag")})
	}
	fact, err := c.CreateTable("fact", schema.New(
		schema.Column{Name: "f_id", Type: types.KindInt},
		schema.Column{Name: "f_dim", Type: types.KindInt},
		schema.Column{Name: "f_val", Type: types.KindFloat},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		fact.Heap.MustInsert(schema.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 100)),
			types.NewFloat(float64(i)),
		})
	}
	other, err := c.CreateTable("other", schema.New(
		schema.Column{Name: "o_id", Type: types.KindInt},
		schema.Column{Name: "o_fact", Type: types.KindInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		other.Heap.MustInsert(schema.Row{types.NewInt(int64(i)), types.NewInt(int64(i * 10))})
	}
	for _, ix := range [][3]string{
		{"dim_pk", "dim", "d_id"},
		{"fact_pk", "fact", "f_id"},
		{"fact_dim", "fact", "f_dim"},
		{"other_pk", "other", "o_id"},
	} {
		if _, err := c.CreateBTreeIndex(ix[0], ix[1], ix[2]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	return c
}

func selectiveJoinQuery(t testing.TB, cat *catalog.Catalog, hi int64) *logical.Query {
	t.Helper()
	b := logical.NewBuilder(cat)
	b.AddTable("dim", "d")
	b.AddTable("fact", "f")
	b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("d", "d_id"), R: b.Col("f", "f_dim")})
	b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("d", "d_id"), R: &expr.Const{Val: types.NewInt(hi)}})
	b.SelectCol("d", "d_tag")
	b.SelectCol("f", "f_val")
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestAccessPathSelection(t *testing.T) {
	cat := fixture(t)
	// Highly selective predicate on an indexed column → index scan.
	b := logical.NewBuilder(cat)
	b.AddTable("fact", "f")
	b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("f", "f_id"), R: &expr.Const{Val: types.NewInt(5)}})
	b.SelectCol("f", "f_val")
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(cat).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Count(OpIndexScan) != 1 {
		t.Errorf("selective predicate should use index scan:\n%s", Explain(p, q))
	}
	// Unselective scan → table scan.
	b2 := logical.NewBuilder(cat)
	b2.AddTable("fact", "f")
	b2.Where(&expr.Cmp{Op: expr.GT, L: b2.Col("f", "f_val"), R: &expr.Const{Val: types.NewFloat(-1)}})
	b2.SelectCol("f", "f_val")
	q2, _ := b2.Build()
	p2, err := New(cat).Optimize(q2)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Count(OpTableScan) != 1 {
		t.Errorf("unselective predicate should use table scan:\n%s", Explain(p2, q2))
	}
}

func TestJoinMethodShiftsWithSelectivity(t *testing.T) {
	cat := fixture(t)
	// Tiny outer → index NLJN into the fact table should win.
	qSmall := selectiveJoinQuery(t, cat, 2)
	pSmall, err := New(cat).Optimize(qSmall)
	if err != nil {
		t.Fatal(err)
	}
	nljn := 0
	pSmall.Walk(func(p *Plan) {
		if p.Op == OpNLJN && p.IndexJoin {
			nljn++
		}
	})
	if nljn == 0 {
		t.Errorf("tiny outer should choose index NLJN:\n%s", Explain(pSmall, qSmall))
	}
	// Full outer → hash or merge join should win.
	qBig := selectiveJoinQuery(t, cat, 1000)
	pBig, err := New(cat).Optimize(qBig)
	if err != nil {
		t.Fatal(err)
	}
	if pBig.Count(OpHSJN)+pBig.Count(OpMGJN) == 0 {
		t.Errorf("large outer should choose hash/merge join:\n%s", Explain(pBig, qBig))
	}
}

func TestValidityRangeOnJoinEdge(t *testing.T) {
	cat := fixture(t)
	q := selectiveJoinQuery(t, cat, 2)
	p, err := New(cat).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	// Find the join and inspect the validity range on its outer edge: with a
	// hash-join alternative pruned, the upper bound must be finite — beyond
	// some outer cardinality NLJN is provably suboptimal.
	var join *Plan
	p.Walk(func(n *Plan) {
		if n.Op.IsJoin() && join == nil {
			join = n
		}
	})
	if join == nil {
		t.Fatal("no join in plan")
	}
	v := join.EdgeValidity(0)
	if math.IsInf(v.Hi, 1) {
		t.Errorf("outer edge validity should have a finite upper bound:\n%s", Explain(p, q))
	}
	if v.Hi <= join.Children[0].Card {
		t.Errorf("upper bound %v must exceed the estimate %v", v.Hi, join.Children[0].Card)
	}
}

func TestValidityDisabled(t *testing.T) {
	cat := fixture(t)
	q := selectiveJoinQuery(t, cat, 2)
	opt := New(cat)
	opt.ComputeValidity = false
	p, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	bounded := false
	p.Walk(func(n *Plan) {
		for i := range n.Children {
			if n.EdgeValidity(i).Bounded() {
				bounded = true
			}
		}
	})
	if bounded {
		t.Error("validity computation disabled but ranges are bounded")
	}
}

func TestFeedbackChangesPlan(t *testing.T) {
	cat := fixture(t)
	q := selectiveJoinQuery(t, cat, 2)
	opt := New(cat)
	p1, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	hasIndexNLJN := func(p *Plan) bool {
		found := false
		p.Walk(func(n *Plan) {
			if n.Op == OpNLJN && n.IndexJoin {
				found = true
			}
		})
		return found
	}
	if !hasIndexNLJN(p1) {
		t.Fatalf("baseline should be index NLJN:\n%s", Explain(p1, q))
	}
	// Feedback says the dim-side cardinality is actually huge.
	fb := stats.NewFeedback()
	fb.Record(Signature(q, 1), 5000)
	opt2 := New(cat)
	opt2.Feedback = fb
	p2, err := opt2.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if hasIndexNLJN(p2) {
		t.Errorf("with corrected cardinality the plan should abandon index NLJN:\n%s", Explain(p2, q))
	}
}

func TestMVMatchingAndCostBasedReuse(t *testing.T) {
	cat := fixture(t)
	q := selectiveJoinQuery(t, cat, 2)
	joinSig := Signature(q, 0b11)
	// A tiny materialized intermediate result for the whole join.
	mv := &catalog.MatView{
		Signature: joinSig,
		Cols:      []int{0, 1, 2, 3, 4},
		Rows:      []schema.Row{{types.NewInt(0), types.NewString("tag"), types.NewInt(0), types.NewInt(0), types.NewFloat(1)}},
		Card:      1,
	}
	cat.RegisterView(mv)
	p, err := New(cat).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Count(OpMVScan) != 1 {
		t.Errorf("cheap MV should be reused:\n%s", Explain(p, q))
	}
	// Disabled reuse must ignore the MV.
	opt := New(cat)
	opt.DisableMVReuse = true
	p2, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Count(OpMVScan) != 0 {
		t.Error("MV reuse disabled but MVSCAN planned")
	}
	cat.DropViews()
	// An enormous MV should lose on cost to recomputation.
	bigRows := make([]schema.Row, 200000)
	for i := range bigRows {
		bigRows[i] = schema.Row{types.NewInt(0), types.NewString("t"), types.NewInt(0), types.NewInt(0), types.NewFloat(0)}
	}
	cat.RegisterView(&catalog.MatView{Signature: joinSig, Cols: []int{0, 1, 2, 3, 4}, Rows: bigRows, Card: 200000})
	p3, err := New(cat).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Count(OpMVScan) != 0 {
		t.Errorf("oversized MV should lose on cost:\n%s", Explain(p3, q))
	}
	cat.DropViews()
}

func TestGreedyEnumerationMatchesDP(t *testing.T) {
	cat := fixture(t)
	b := logical.NewBuilder(cat)
	b.AddTable("dim", "d")
	b.AddTable("fact", "f")
	b.AddTable("other", "o")
	b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("d", "d_id"), R: b.Col("f", "f_dim")})
	b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("f", "f_id"), R: b.Col("o", "o_fact")})
	b.SelectCol("d", "d_tag")
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dp, err := New(cat).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	greedy := New(cat)
	greedy.GreedyThreshold = 0 // force greedy
	gp, err := greedy.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if gp.Cost < dp.Cost*0.99 {
		t.Errorf("greedy (%.0f) should not beat DP (%.0f)", gp.Cost, dp.Cost)
	}
	if gp.Cost > dp.Cost*100 {
		t.Errorf("greedy (%.0f) wildly worse than DP (%.0f)", gp.Cost, dp.Cost)
	}
}

func TestSignatureProperties(t *testing.T) {
	cat := fixture(t)
	q := selectiveJoinQuery(t, cat, 2)
	s1 := Signature(q, 0b01)
	s2 := Signature(q, 0b10)
	s12 := Signature(q, 0b11)
	if s1 == s2 || s1 == s12 || s2 == s12 {
		t.Error("signatures must distinguish subsets")
	}
	if !strings.Contains(s1, "d") || !strings.Contains(s12, "d.d_id = f.f_dim") {
		t.Errorf("signatures should carry aliases and predicates: %s / %s", s1, s12)
	}
	// Deterministic.
	if Signature(q, 0b11) != s12 {
		t.Error("signature not deterministic")
	}
}

func TestDisableNLJNRemovesIt(t *testing.T) {
	cat := fixture(t)
	q := selectiveJoinQuery(t, cat, 2)
	opt := New(cat)
	opt.DisableNLJN = true
	p, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Count(OpNLJN) != 0 {
		t.Errorf("NLJN disabled but planned:\n%s", Explain(p, q))
	}
}

func TestCrossJoinWhenNoPredicate(t *testing.T) {
	cat := fixture(t)
	b := logical.NewBuilder(cat)
	b.AddTable("dim", "d")
	b.AddTable("other", "o")
	b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("d", "d_id"), R: &expr.Const{Val: types.NewInt(1)}})
	b.SelectCol("d", "d_tag")
	b.SelectCol("o", "o_id")
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(cat).Optimize(q)
	if err != nil {
		t.Fatalf("cross join must still plan: %v", err)
	}
	if p.Count(OpNLJN) == 0 {
		t.Errorf("cartesian product should be a naive NLJN:\n%s", Explain(p, q))
	}
}

func TestExplainRendering(t *testing.T) {
	cat := fixture(t)
	q := selectiveJoinQuery(t, cat, 2)
	p, err := New(cat).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	s := Explain(p, q)
	for _, want := range []string{"RETURN", "card=", "cost=", "NLJN"} {
		if !strings.Contains(s, want) {
			t.Errorf("explain output missing %q:\n%s", want, s)
		}
	}
}

func TestRangeHelpers(t *testing.T) {
	r := UnboundedRange()
	if !r.Contains(0) || !r.Contains(1e18) {
		t.Error("unbounded range should contain everything")
	}
	if r.Bounded() {
		t.Error("unbounded range is not bounded")
	}
	r2 := Range{Lo: 10, Hi: 100}
	if r2.Contains(9) || !r2.Contains(10) || !r2.Contains(100) || r2.Contains(101) {
		t.Error("range membership wrong")
	}
	if !r2.Bounded() {
		t.Error("finite range is bounded")
	}
}

func TestCheckFlavorAndOpNames(t *testing.T) {
	for _, f := range []CheckFlavor{LC, LCEM, ECB, ECWC, ECDC} {
		if strings.Contains(f.String(), "?") {
			t.Errorf("flavor %d has no name", f)
		}
	}
	ops := []OpKind{OpTableScan, OpIndexScan, OpMVScan, OpNLJN, OpHSJN, OpMGJN, OpSort, OpTemp, OpHashAgg, OpProject, OpCheck}
	for _, op := range ops {
		if strings.Contains(op.String(), "?") {
			t.Errorf("op %d has no name", op)
		}
	}
	if !OpNLJN.IsJoin() || OpSort.IsJoin() {
		t.Error("IsJoin wrong")
	}
	if !OpSort.IsMaterialization() || !OpTemp.IsMaterialization() || OpHSJN.IsMaterialization() {
		t.Error("IsMaterialization wrong")
	}
}

func TestCostModelSpillCliff(t *testing.T) {
	m := CostModel{Params: DefaultCostParams()}
	m.Params.MemoryBytes = 1000
	build := &Plan{Op: OpTableScan, Cols: []int{0, 1}, Card: 10, Cost: 10}
	probe := &Plan{Op: OpTableScan, Cols: []int{2}, Card: 100, Cost: 100}
	join := &Plan{Op: OpHSJN, Children: []*Plan{probe, build}, Cols: []int{2, 0, 1}, Card: 100}
	inMem := m.Recost(join, []float64{100, 10}, []float64{100, 10})
	spilled := m.Recost(join, []float64{100, 1000}, []float64{100, 10})
	if spilled <= inMem {
		t.Error("spilling build should cost more")
	}
	// The cliff: crossing the memory boundary jumps the cost discontinuously.
	below := m.Recost(join, []float64{100, 41}, []float64{100, 10}) // 41*24 < 1000
	above := m.Recost(join, []float64{100, 43}, []float64{100, 10}) // 43*24 > 1000
	if above-below < m.Params.SpillRow*100 {
		t.Errorf("expected spill cliff: below=%v above=%v", below, above)
	}
}

func TestCostWithEdgeCardMonotoneForNLJN(t *testing.T) {
	m := CostModel{Params: DefaultCostParams()}
	inner := &Plan{Op: OpIndexScan, Cols: []int{1}, Card: 5, Cost: 20}
	outer := &Plan{Op: OpTableScan, Cols: []int{0}, Card: 10, Cost: 100}
	join := &Plan{Op: OpNLJN, IndexJoin: true, Children: []*Plan{outer, inner}, Cols: []int{0, 1}, Card: 50}
	prev := 0.0
	for c := 1.0; c < 1e6; c *= 10 {
		cost := m.CostWithEdgeCard(join, 0, c)
		if cost < prev {
			t.Errorf("NLJN cost must be nondecreasing in outer card: %v at %v", cost, c)
		}
		prev = cost
	}
}
