package optimizer

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/types"
)

// threeWayQuery is the chain join dim ⋈ fact ⋈ other over the shared
// fixture, with a visible selective predicate on dim so the greedy seed
// choice has something to score.
func threeWayQuery(t *testing.T, hi int64) *logical.Query {
	t.Helper()
	cat := fixture(t)
	b := logical.NewBuilder(cat)
	b.AddTable("dim", "d")
	b.AddTable("fact", "f")
	b.AddTable("other", "o")
	b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("d", "d_id"), R: b.Col("f", "f_dim")})
	b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("f", "f_id"), R: b.Col("o", "o_fact")})
	b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("d", "d_id"), R: &expr.Const{Val: types.NewInt(hi)}})
	b.SelectCol("d", "d_tag")
	b.SelectCol("o", "o_id")
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestGreedyDeterminism pins the statistics-free planner's output: a fresh
// optimizer with JoinOrder=JoinOrderGreedy over a freshly built query must
// produce byte-identical EXPLAIN text every round. The greedy seed and step
// selection break ties by table index, so no map-iteration order may leak
// into the chosen join order.
func TestGreedyDeterminism(t *testing.T) {
	cat := fixture(t)

	builds := map[string]func(t *testing.T) *logical.Query{
		"selective-two-way": func(t *testing.T) *logical.Query {
			return selectiveJoinQuery(t, cat, 5)
		},
		"three-way-chain": func(t *testing.T) *logical.Query {
			return threeWayQuery(t, 5)
		},
	}

	for name, build := range builds {
		t.Run(name, func(t *testing.T) {
			var first string
			// Several rounds: Go re-randomizes map iteration per run, so an
			// order-dependent tie-break has many chances to flip.
			for round := 0; round < 8; round++ {
				q := build(t)
				o := New(cat)
				o.JoinOrder = JoinOrderGreedy
				p, err := o.Optimize(q)
				if err != nil {
					t.Fatal(err)
				}
				text := Explain(p, q)
				if round == 0 {
					first = text
					continue
				}
				if text != first {
					t.Fatalf("greedy EXPLAIN diverged on round %d:\n--- first ---\n%s\n--- round %d ---\n%s",
						round, first, round, text)
				}
			}
		})
	}
}

// TestGreedyEnumeratesFewerCandidates: the point of the greedy order is a
// linear enumeration, so on a multi-way join it must cost strictly fewer
// candidates than dynamic programming over the same query.
func TestGreedyEnumeratesFewerCandidates(t *testing.T) {
	cat := fixture(t)

	dp := New(cat)
	if _, err := dp.Optimize(threeWayQuery(t, 5)); err != nil {
		t.Fatal(err)
	}
	gr := New(cat)
	gr.JoinOrder = JoinOrderGreedy
	if _, err := gr.Optimize(threeWayQuery(t, 5)); err != nil {
		t.Fatal(err)
	}
	if gr.EnumeratedCandidates >= dp.EnumeratedCandidates {
		t.Fatalf("greedy should enumerate fewer candidates than DP: greedy=%d dp=%d",
			gr.EnumeratedCandidates, dp.EnumeratedCandidates)
	}
	if gr.EnumeratedCandidates == 0 {
		t.Fatal("greedy enumeration produced no candidates")
	}
}

// TestGreedyPlanIsExecutable: the greedy order still goes through the
// costed physical operators, so the plan must carry costs and validity
// ranges like any DP plan — checkpoint placement depends on them.
func TestGreedyPlanIsExecutable(t *testing.T) {
	cat := fixture(t)
	o := New(cat)
	o.JoinOrder = JoinOrderGreedy
	q := threeWayQuery(t, 5)
	p, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost <= 0 {
		t.Fatalf("greedy plan has no cost: %v", p.Cost)
	}
	s := Explain(p, q)
	for _, alias := range []string{"(d)", "(f)", "(o)"} {
		if !strings.Contains(s, alias) {
			t.Fatalf("greedy plan dropped table %s:\n%s", alias, s)
		}
	}
	if !strings.Contains(s, "validity") {
		t.Fatalf("greedy plan has no validity ranges — POP placement would be blind:\n%s", s)
	}
}

// TestVisibleWeight pins the syntax-only scoring: equality against a
// constant or parameter outweighs a range predicate, which outweighs
// anything else.
func TestVisibleWeight(t *testing.T) {
	cat := fixture(t)
	b := logical.NewBuilder(cat)
	b.AddTable("dim", "d")
	col := b.Col("d", "d_id")
	five := &expr.Const{Val: types.NewInt(5)}

	eq := visibleWeight(&expr.Cmp{Op: expr.EQ, L: col, R: five})
	eqParam := visibleWeight(&expr.Cmp{Op: expr.EQ, L: col, R: b.Param(0)})
	rng := visibleWeight(&expr.Cmp{Op: expr.LT, L: col, R: five})
	other := visibleWeight(&expr.Cmp{Op: expr.NE, L: col, R: five})

	if eq != eqParam {
		t.Fatalf("constant and parameter equality must score alike: %d vs %d", eq, eqParam)
	}
	if !(eq > rng && rng > other && other > 0) {
		t.Fatalf("weight ordering broken: eq=%d range=%d other=%d", eq, rng, other)
	}
}
