package optimizer

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/types"
)

// TestExplainDeterminism pins the map-order audit: optimizing the same
// query repeatedly — fresh optimizer, fresh query build each round — must
// produce byte-identical EXPLAIN text. Before the orderedGroup fixes, a
// cost tie in the per-subset plan groups could break differently per map
// iteration and flip the printed plan between runs.
func TestExplainDeterminism(t *testing.T) {
	cat := fixture(t)

	builds := map[string]func(t *testing.T) *logical.Query{
		"selective-two-way": func(t *testing.T) *logical.Query {
			return selectiveJoinQuery(t, cat, 5)
		},
		"three-way-join": func(t *testing.T) *logical.Query {
			b := logical.NewBuilder(cat)
			b.AddTable("dim", "d")
			b.AddTable("fact", "f")
			b.AddTable("other", "o")
			b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("d", "d_id"), R: b.Col("f", "f_dim")})
			b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("f", "f_id"), R: b.Col("o", "o_fact")})
			b.SelectCol("d", "d_tag")
			b.SelectCol("o", "o_id")
			q, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			return q
		},
		"grouped-ordered": func(t *testing.T) *logical.Query {
			b := logical.NewBuilder(cat)
			b.AddTable("dim", "d")
			b.AddTable("fact", "f")
			b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("d", "d_id"), R: b.Col("f", "f_dim")})
			b.Where(&expr.Cmp{Op: expr.LT, L: b.Col("f", "f_val"), R: &expr.Const{Val: types.NewFloat(500)}})
			b.SelectCol("d", "d_tag")
			b.SelectAgg(logical.AggSum, b.Col("f", "f_val"), "total")
			b.GroupBy(b.Col("d", "d_tag"))
			b.OrderBy(b.Col("d", "d_tag"), false)
			q, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			return q
		},
	}

	for name, build := range builds {
		t.Run(name, func(t *testing.T) {
			var first string
			// Several rounds: Go re-randomizes map iteration per loop, so
			// an order-dependent tie-break has many chances to flip.
			for round := 0; round < 8; round++ {
				q := build(t)
				p, err := New(cat).Optimize(q)
				if err != nil {
					t.Fatal(err)
				}
				text := Explain(p, q)
				if round == 0 {
					first = text
					continue
				}
				if text != first {
					t.Fatalf("EXPLAIN text diverged on round %d:\n--- first ---\n%s\n--- round %d ---\n%s",
						round, first, round, text)
				}
			}
		})
	}
}
