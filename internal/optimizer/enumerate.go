package optimizer

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/stats"
	"repro/internal/types"
)

// Optimizer is the cost-based query optimizer. The zero value is not usable;
// construct with New. The Disable* knobs reproduce the paper's experimental
// setups (e.g. Figure 12 disables hash joins to generate many SORT
// materialization points).
type Optimizer struct {
	Cat      *catalog.Catalog
	Feedback *stats.Feedback
	Model    CostModel

	DisableHSJN      bool
	DisableMGJN      bool
	DisableNLJN      bool
	DisableIndexJoin bool
	DisableMVReuse   bool

	// ForceMVReuse makes matching temporary materialized views effectively
	// free, so the optimizer always reuses them. The POP runner enables it on
	// the final permitted re-optimization to guarantee forward progress
	// (paper §7 "Ensuring Termination": "forcing the use of intermediate
	// results after several attempts").
	ForceMVReuse bool

	// MVNamespace scopes temp-MV lookups to one statement: views are matched
	// under key MVNamespace+signature, so concurrent statements sharing a
	// catalog never see each other's intermediate results.
	MVNamespace string

	// RobustnessBonus implements §7 "Checking Opportunities": a relative
	// cost handicap (e.g. 0.2 = +20%) applied to operators that offer fewer
	// re-optimization opportunities — hash joins and index nested-loop
	// joins — so that in volatile environments the optimizer prefers
	// sort-merge plans, whose materialization points are natural low-risk
	// checkpoints. Synced into the cost model at Optimize time.
	RobustnessBonus float64

	// UncertaintyPenalty implements §7 "Considering Uncertainty during
	// Re-optimization": during a re-optimization (feedback cache non-empty),
	// cardinality estimates that are NOT backed by an actual observation are
	// inflated by this factor (e.g. 1.5), penalizing plans built on
	// still-uncertain estimates relative to plans whose inputs were measured.
	UncertaintyPenalty float64

	// ComputeValidity enables the §2.2 sensitivity analysis during pruning.
	ComputeValidity bool

	// GreedyThreshold is the table count beyond which exhaustive DP yields
	// to greedy left-deep enumeration.
	GreedyThreshold int

	// JoinOrder selects the join-ordering algorithm (see greedy.go). The
	// default, JoinOrderAuto, is DP with a greedy fallback past
	// GreedyThreshold; JoinOrderGreedy forces the statistics-free greedy
	// chain regardless of table count.
	JoinOrder JoinOrder

	// ParamBindings, when non-empty, binds the query's parameter markers to
	// these values for estimation only: the estimator sees `col <= 5` where
	// the query says `col <= ?0`, so cardinalities come from histograms
	// instead of default selectivities. The emitted plan still carries the
	// markers (marker predicates are never sargable, so plan shape and
	// expressions are binding-independent) and remains executable under any
	// future binding — the property the plan cache relies on.
	ParamBindings []types.Datum

	// EnumeratedCandidates is set by each Optimize call to the number of
	// candidate plans the enumeration costed — the measure of optimization
	// work a plan-cache hit avoids. Like the rest of the struct it is not
	// safe for concurrent Optimize calls on one Optimizer.
	EnumeratedCandidates int

	// DOPAdvisor, when non-nil, is consulted for the DOP recorded on each
	// exchange the parallelize post-pass places: given the configured worker
	// count it returns the width to plan for (clamped to [1, workers]). The
	// server's scheduler supplies one that reflects current pool pressure, so
	// heavily contended moments plan narrower exchanges up front instead of
	// discovering the clamp at execution time. Plan *shape* decisions still
	// use the configured worker count — shapes stay binding- and
	// load-independent, which the plan cache relies on.
	DOPAdvisor func(workers int) int
}

// New returns an optimizer with default cost parameters and validity-range
// computation enabled.
func New(cat *catalog.Catalog) *Optimizer {
	return &Optimizer{
		Cat:             cat,
		Model:           CostModel{Params: DefaultCostParams()},
		ComputeValidity: true,
		GreedyThreshold: 12,
	}
}

// planner carries the per-query enumeration state.
type planner struct {
	opt  *Optimizer
	q    *logical.Query
	tabs []*catalog.Table
	est  *estimator
	// best maps a table subset to its best plans keyed by output order
	// (-1 = unordered).
	best map[uint64]map[int]*Plan

	// candidates counts addCandidate offers (see EnumeratedCandidates).
	candidates int

	// joinPreds is the precomputed join-predicate index: every multi-table
	// WHERE conjunct with its table mask, in WHERE order. joinPredsBetween
	// filters it with mask arithmetic instead of re-walking expression trees
	// for every (subset, table) pair the enumeration probes.
	joinPreds []predMask

	// predScratch backs joinPredsBetween's result between calls. Callers
	// never retain the slice (Conjoin and equiPairs both copy what they
	// keep), so one buffer serves the whole enumeration.
	predScratch []expr.Expr
}

// Optimize compiles the query into the cheapest physical plan, computing
// validity ranges on plan edges along the way.
func (o *Optimizer) Optimize(q *logical.Query) (*Plan, error) {
	tabs := make([]*catalog.Table, len(q.Tables))
	for i, tr := range q.Tables {
		t, err := o.Cat.Table(tr.Table)
		if err != nil {
			return nil, err
		}
		tabs[i] = t
	}
	// Estimation runs against the bound query when parameter bindings are
	// supplied; plan construction always uses the marker query. The two are
	// structurally identical (same tables, same global-id layout), so masks
	// and column ids transfer directly.
	estQ := q
	if len(o.ParamBindings) > 0 {
		estQ = logical.BindParams(q, o.ParamBindings)
	}
	pl := &planner{
		opt:  o,
		q:    q,
		tabs: tabs,
		est:  newEstimator(estQ, tabs, o.Feedback),
		best: make(map[uint64]map[int]*Plan),
	}
	pl.est.uncertainty = o.UncertaintyPenalty
	for _, p := range q.JoinPredicates() {
		pl.joinPreds = append(pl.joinPreds, predMask{pred: p, mask: q.TablesUsed(p)})
	}
	o.Model.RobustnessBonus = o.RobustnessBonus
	for ti := range tabs {
		for _, ap := range pl.baseAccessPaths(ti) {
			pl.addCandidate(ap)
		}
	}
	n := len(tabs)
	full := uint64(1)<<uint(n) - 1
	if n > 1 {
		switch {
		case o.JoinOrder == JoinOrderGreedy:
			if err := pl.enumerateGreedyVisible(full); err != nil {
				o.EnumeratedCandidates = pl.candidates
				return nil, err
			}
		case n <= o.GreedyThreshold:
			pl.enumerateDP(full)
		default:
			if err := pl.enumerateGreedy(full); err != nil {
				o.EnumeratedCandidates = pl.candidates
				return nil, err
			}
		}
	}
	o.EnumeratedCandidates = pl.candidates
	join := pl.bestOf(full)
	if join == nil {
		return nil, maskError(pl.est, full)
	}
	plan, err := pl.finish(join)
	if err != nil {
		return nil, err
	}
	if o.Model.Params.Workers > 1 {
		plan = o.parallelize(plan, false)
	}
	return plan, nil
}

// parallelize is the DOP-aware post-pass: with Workers > 1 it rewrites the
// chosen serial plan, fanning eligible fragments out across workers behind
// exchange operators. An eligible hash join becomes
// GATHER(HSJN(REPART(probe), REPART(build))) — a partitioned join whose build
// and probe phases both run at DOP — and eligible bare scans feeding
// order-insensitive consumers are wrapped in a plain GATHER. needOrder marks
// subtrees whose output order a parent consumes (merge-join inputs, orders
// inherited through a hash join's probe side); a gather merges worker streams
// in arrival order, so ordered edges are never parallelized.
func (o *Optimizer) parallelize(p *Plan, needOrder bool) *Plan {
	if len(p.Children) == 0 {
		return p
	}
	n := CloneNode(p)
	switch p.Op {
	case OpHSJN:
		if !needOrder && o.parallelJoinEligible(p) {
			return o.parallelJoin(p)
		}
		n.Children[0] = o.maybeGather(o.parallelize(p.Children[0], needOrder), needOrder)
		n.Children[1] = o.maybeGather(o.parallelize(p.Children[1], false), false)
	case OpMGJN:
		n.Children[0] = o.parallelize(p.Children[0], true)
		n.Children[1] = o.parallelize(p.Children[1], true)
	case OpNLJN:
		// The inner is rescanned (naive) or index-probed per outer row; only
		// the outer subtree is eligible.
		n.Children[0] = o.maybeGather(o.parallelize(p.Children[0], needOrder), needOrder)
	case OpSort, OpTemp, OpHashAgg, OpProject:
		// These consume their input in any order.
		for i := range n.Children {
			n.Children[i] = o.maybeGather(o.parallelize(p.Children[i], false), false)
		}
	default:
		for i := range n.Children {
			n.Children[i] = o.parallelize(p.Children[i], needOrder)
		}
	}
	o.Model.finishCosting(n)
	return n
}

// partitionableScan reports whether the executor can split this leaf into
// disjoint worker morsels. Hash lookups are excluded: a point probe has no
// stream to split.
func partitionableScan(p *Plan) bool {
	switch p.Op {
	case OpTableScan, OpIndexScan, OpMVScan:
		return true
	default:
		return false
	}
}

// maybeGather wraps a partitionable scan in a GATHER exchange when the
// parallel speedup outweighs the exchange overhead.
func (o *Optimizer) maybeGather(c *Plan, needOrder bool) *Plan {
	if needOrder || !partitionableScan(c) || !o.exchangePays(c.Cost, c.Card, 1) {
		return c
	}
	return o.wrapExchange(ExGather, c)
}

// parallelJoinEligible requires both inputs to be partitionable scans — the
// fragment the partitioned-join runtime knows how to split — and the join's
// subtree cost to amortize three exchanges (two repartitions, one gather).
func (o *Optimizer) parallelJoinEligible(p *Plan) bool {
	return len(p.EquiLeft) > 0 &&
		partitionableScan(p.Children[0]) && partitionableScan(p.Children[1]) &&
		o.exchangePays(p.Cost, p.Children[0].Card+p.Children[1].Card+p.Card, 3)
}

// exchangePays compares the work a parallel fragment saves, cost·(1-1/W),
// against the exchange overhead for moving rows rows through nExchanges
// exchanges.
func (o *Optimizer) exchangePays(cost, rows float64, nExchanges float64) bool {
	pr := &o.Model.Params
	w := float64(pr.Workers)
	if w <= 1 {
		return false
	}
	return cost*(1-1/w) > nExchanges*pr.ExchangeSetup+rows*pr.ExchangeRow
}

// wrapExchange layers an exchange of the given kind over c. Exchanges are
// cardinality-preserving and order-destroying. The recorded DOP is the
// configured worker count, narrowed by the DOPAdvisor when one is set;
// whether to wrap at all (exchangePays) always uses the configured count so
// plan shapes stay load-independent.
func (o *Optimizer) wrapExchange(kind ExchangeKind, c *Plan) *Plan {
	dop := o.Model.Params.Workers
	if o.DOPAdvisor != nil {
		if a := o.DOPAdvisor(dop); a >= 1 && a < dop {
			dop = a
		}
	}
	x := &Plan{
		Op:       OpExchange,
		ExKind:   kind,
		DOP:      dop,
		Children: []*Plan{c},
		Cols:     c.Cols,
		Card:     c.Card,
		tables:   c.tables,
		ordered:  -1,
	}
	o.Model.finishCosting(x)
	return x
}

// parallelJoin rewrites an eligible hash join into its partitioned form:
// both inputs are repartitioned on the hash of the join key and the join's
// output is gathered back into one stream.
func (o *Optimizer) parallelJoin(p *Plan) *Plan {
	j := CloneNode(p)
	j.Children[0] = o.wrapExchange(ExRepart, p.Children[0])
	j.Children[1] = o.wrapExchange(ExRepart, p.Children[1])
	j.ordered = -1
	o.Model.finishCosting(j)
	return o.wrapExchange(ExGather, j)
}

// addCandidate offers a plan for its subset/order slot, pruning against the
// incumbent and narrowing the winner's validity ranges per §2.2.
func (pl *planner) addCandidate(cand *Plan) {
	pl.candidates++
	group := pl.best[cand.tables]
	if group == nil {
		group = make(map[int]*Plan)
		pl.best[cand.tables] = group
	}
	// Narrow across order groups too: an ordered plan (e.g. a merge join)
	// and the unordered best are structural alternatives for the same
	// subset, so their cost crossover bounds both plans' edges even though
	// neither prunes the other.
	if cand.ordered != -1 {
		if u := group[-1]; u != nil {
			pl.narrowPair(cand, u)
		}
	} else {
		for _, inc := range orderedGroup(group) {
			if inc.ordered != -1 {
				pl.narrowPair(cand, inc)
			}
		}
	}
	inc := group[cand.ordered]
	if inc == nil {
		group[cand.ordered] = cand
		return
	}
	if cand.Cost < inc.Cost {
		pl.narrow(cand, inc)
		group[cand.ordered] = cand
	} else {
		pl.narrow(inc, cand)
	}
}

// narrowPair narrows the cheaper plan's validity ranges against the
// costlier alternative.
func (pl *planner) narrowPair(a, b *Plan) {
	if a.Cost < b.Cost {
		pl.narrow(a, b)
	} else {
		pl.narrow(b, a)
	}
}

func (pl *planner) narrow(winner, loser *Plan) {
	if !pl.opt.ComputeValidity || len(winner.Children) == 0 || len(loser.Children) == 0 {
		return
	}
	pl.opt.Model.narrowValidity(winner, loser)
}

// bestOf returns the cheapest plan for the subset across all order keys.
// Iteration is in sorted order-key order so cost ties break the same way
// every run — with Go's randomized map iteration a tie would otherwise pick
// a different plan per process.
func (pl *planner) bestOf(mask uint64) *Plan {
	var best *Plan
	for _, p := range orderedGroup(pl.best[mask]) {
		if best == nil || p.Cost < best.Cost {
			best = p
		}
	}
	return best
}

// orderedGroup returns a subset's per-order-key plans sorted by order key,
// replacing direct map iteration wherever the visit order can reach plan
// choice (cost tie-breaks, candidate generation, validity narrowing).
func orderedGroup(group map[int]*Plan) []*Plan {
	keys := make([]int, 0, len(group))
	for k := range group {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]*Plan, len(keys))
	for i, k := range keys {
		out[i] = group[k]
	}
	return out
}

// allCols returns the global ids of every column of table ti.
func (pl *planner) allCols(ti int) []int {
	n := pl.q.Schemas[ti].Len()
	out := make([]int, n)
	for i := range out {
		out[i] = pl.q.GlobalID(ti, i)
	}
	return out
}

// baseAccessPaths generates the single-table access plans: sequential scan,
// index scans (sargable and order-providing), and — during re-optimization —
// a scan of a matching temporary materialized view.
func (pl *planner) baseAccessPaths(ti int) []*Plan {
	q, t := pl.q, pl.tabs[ti]
	pr := &pl.opt.Model.Params
	local := q.LocalPredicates(ti)
	baseRows := t.RowCount()
	fCard := pl.est.filteredBaseCard(ti)
	cols := pl.allCols(ti)
	mask := uint64(1) << uint(ti)

	var paths []*Plan

	scan := &Plan{
		Op:      OpTableScan,
		Table:   ti,
		Filter:  expr.Conjoin(local...),
		Cols:    cols,
		Card:    fCard,
		Cost:    baseRows*pr.ScanRow + baseRows*float64(len(local))*pr.PredEval,
		tables:  mask,
		ordered: -1,
	}
	paths = append(paths, scan)

	for _, ix := range t.BTrees {
		ord := ix.KeyOrdinal()
		keyGID := q.GlobalID(ti, ord)
		lo, hi, loInc, hiInc, used, residual := sargableBounds(local, keyGID)
		// Selectivity of the index-applied portion.
		idxSel := 1.0
		for _, p := range used {
			idxSel *= stats.Selectivity(p, pl.est.lookup())
		}
		matched := baseRows * idxSel
		height := float64(ix.Height())
		cost := height*pr.IndexLevel + matched*pr.FetchRow +
			matched*float64(len(residual))*pr.PredEval
		if len(used) == 0 {
			// Full index scan: provides order, costs a fetch per row.
			cost = baseRows*(pr.FetchRow+0.2) + baseRows*float64(len(residual))*pr.PredEval
		}
		paths = append(paths, &Plan{
			Op:         OpIndexScan,
			Table:      ti,
			IndexOrd:   ord,
			IndexLo:    lo,
			IndexHi:    hi,
			IndexLoInc: loInc,
			IndexHiInc: hiInc,
			Filter:     expr.Conjoin(residual...),
			Cols:       cols,
			Card:       fCard,
			Cost:       cost,
			tables:     mask,
			ordered:    keyGID,
		})
	}

	// Hash-index point lookups: an equality predicate with a constant on a
	// hash-indexed column becomes an O(1) probe plus qualifying fetches.
	for _, ix := range t.Hash {
		keyOrds := ix.KeyOrdinals()
		if len(keyOrds) != 1 {
			continue // composite hash keys are not yet sargable
		}
		ord := keyOrds[0]
		keyGID := q.GlobalID(ti, ord)
		lo, hi, loInc, hiInc, used, residual := sargableBounds(local, keyGID)
		if lo == nil || hi == nil || !loInc || !hiInc {
			continue // hash indexes serve equality only
		}
		if loConst, ok := lo.(*expr.Const); !ok {
			continue
		} else if hiConst, ok2 := hi.(*expr.Const); !ok2 {
			continue
		} else if c, err := loConst.Val.Compare(hiConst.Val); err != nil || c != 0 {
			continue
		}
		idxSel := 1.0
		for _, p := range used {
			idxSel *= stats.Selectivity(p, pl.est.lookup())
		}
		matched := baseRows * idxSel
		paths = append(paths, &Plan{
			Op:         OpHashLookup,
			Table:      ti,
			IndexOrd:   ord,
			IndexLo:    lo,
			IndexHi:    hi,
			IndexLoInc: true,
			IndexHiInc: true,
			Filter:     expr.Conjoin(residual...),
			Cols:       cols,
			Card:       fCard,
			Cost: pr.HashProbeRow + matched*pr.FetchRow +
				matched*float64(len(residual))*pr.PredEval,
			tables:  mask,
			ordered: -1,
		})
	}

	if mv := pl.matchMV(mask); mv != nil {
		paths = append(paths, mv)
	}
	return paths
}

// matchMV returns an MVSCAN plan if a temporary materialized view matches
// the subset's signature (paper §2.3: intermediate results are offered to
// the optimizer as materialized views and chosen only if they win on cost).
func (pl *planner) matchMV(mask uint64) *Plan {
	if pl.opt.DisableMVReuse {
		return nil
	}
	mv := pl.opt.Cat.View(pl.opt.MVNamespace + pl.est.Signature(mask))
	if mv == nil {
		return nil
	}
	ordered := -1
	if mv.Sorted {
		ordered = mv.OrderedCol
	}
	pr := &pl.opt.Model.Params
	cost := mv.Card * pr.TempRead
	if pl.opt.ForceMVReuse {
		cost = 0 // termination heuristic: the view always wins (§7)
	}
	return &Plan{
		Op:      OpMVScan,
		MV:      mv,
		Cols:    append([]int(nil), mv.Cols...),
		Card:    mv.Card,
		Cost:    cost,
		tables:  mask,
		ordered: ordered,
	}
}

// sargableBounds extracts index bounds for the key column from the local
// predicates: constant comparisons become bounds, everything else stays
// residual.
func sargableBounds(preds []expr.Expr, keyGID int) (lo, hi expr.Expr, loInc, hiInc bool, used, residual []expr.Expr) {
	for _, p := range preds {
		c, ok := p.(*expr.Cmp)
		if !ok {
			residual = append(residual, p)
			continue
		}
		col, isCol := c.L.(*expr.ColRef)
		val, isConst := c.R.(*expr.Const)
		op := c.Op
		if !isCol || !isConst {
			if col2, ok2 := c.R.(*expr.ColRef); ok2 {
				if val2, ok3 := c.L.(*expr.Const); ok3 {
					col, val, op, isCol, isConst = col2, val2, c.Op.Flip(), true, true
				}
			}
		}
		if !isCol || !isConst || col.Pos != keyGID {
			residual = append(residual, p)
			continue
		}
		switch op {
		case expr.EQ:
			lo, hi, loInc, hiInc = &expr.Const{Val: val.Val}, &expr.Const{Val: val.Val}, true, true
			used = append(used, p)
		case expr.LT:
			hi, hiInc = &expr.Const{Val: val.Val}, false
			used = append(used, p)
		case expr.LE:
			hi, hiInc = &expr.Const{Val: val.Val}, true
			used = append(used, p)
		case expr.GT:
			lo, loInc = &expr.Const{Val: val.Val}, false
			used = append(used, p)
		case expr.GE:
			lo, loInc = &expr.Const{Val: val.Val}, true
			used = append(used, p)
		default:
			residual = append(residual, p)
		}
	}
	return lo, hi, loInc, hiInc, used, residual
}

// enumerateDP runs exhaustive left-deep dynamic programming over subsets.
func (pl *planner) enumerateDP(full uint64) {
	n := popcount(full)
	for size := 2; size <= n; size++ {
		for mask := uint64(1); mask <= full; mask++ {
			if mask&full != mask || popcount(mask) != size {
				continue
			}
			pl.expandSubset(mask)
		}
	}
}

// expandSubset generates join plans for a subset from its left-deep splits
// and offers a matching MV as an alternative.
func (pl *planner) expandSubset(mask uint64) {
	type split struct {
		ti        int
		connected bool
	}
	var splits []split
	anyConnected := false
	for ti := range pl.q.Tables {
		bit := uint64(1) << uint(ti)
		if mask&bit == 0 {
			continue
		}
		rest := mask &^ bit
		if rest == 0 || len(pl.best[rest]) == 0 {
			continue
		}
		conn := len(pl.joinPredsBetween(rest, ti)) > 0
		anyConnected = anyConnected || conn
		splits = append(splits, split{ti: ti, connected: conn})
	}
	for _, s := range splits {
		if anyConnected && !s.connected {
			continue // defer cartesian products unless unavoidable
		}
		rest := mask &^ (1 << uint(s.ti))
		for _, outer := range orderedGroup(pl.best[rest]) {
			for _, cand := range pl.joinCandidates(outer, s.ti) {
				pl.addCandidate(cand)
			}
		}
	}
	if mv := pl.matchMV(mask); mv != nil {
		pl.addCandidate(mv)
	}
}

// enumerateGreedy folds tables into a left-deep chain, at each step choosing
// the join that minimizes estimated output cardinality — the standard
// fallback for very wide joins.
func (pl *planner) enumerateGreedy(full uint64) error {
	// Start from the smallest filtered table.
	start, bestCard := -1, math.Inf(1)
	for ti := range pl.q.Tables {
		if c := pl.est.filteredBaseCard(ti); c < bestCard {
			start, bestCard = ti, c
		}
	}
	joined := uint64(1) << uint(start)
	for joined != full {
		next, nextCard, connectedFound := -1, math.Inf(1), false
		for ti := range pl.q.Tables {
			bit := uint64(1) << uint(ti)
			if joined&bit != 0 {
				continue
			}
			conn := len(pl.joinPredsBetween(joined, ti)) > 0
			card := pl.est.SubsetCard(joined | bit)
			if conn && !connectedFound {
				// First connected candidate beats any cartesian one.
				next, nextCard, connectedFound = ti, card, true
				continue
			}
			if conn == connectedFound && card < nextCard {
				next, nextCard = ti, card
			}
		}
		if next < 0 {
			return fmt.Errorf("optimizer: greedy enumeration stuck at %s", pl.est.maskString(joined))
		}
		for _, outer := range orderedGroup(pl.best[joined]) {
			for _, cand := range pl.joinCandidates(outer, next) {
				pl.addCandidate(cand)
			}
		}
		joined |= 1 << uint(next)
		if mv := pl.matchMV(joined); mv != nil {
			pl.addCandidate(mv)
		}
		if len(pl.best[joined]) == 0 {
			return maskError(pl.est, joined)
		}
	}
	return nil
}

// joinPredsBetween returns the join predicates connecting subset rest with
// table ti. The result aliases predScratch and is only valid until the next
// call; callers copy anything they keep.
func (pl *planner) joinPredsBetween(rest uint64, ti int) []expr.Expr {
	bit := uint64(1) << uint(ti)
	out := pl.predScratch[:0]
	for _, jp := range pl.joinPreds {
		if jp.mask&bit != 0 && jp.mask&rest != 0 && jp.mask&^(rest|bit) == 0 {
			out = append(out, jp.pred)
		}
	}
	pl.predScratch = out
	return out
}

// equiPair is one hash/merge-joinable equality between the outer subset and
// the inner table.
type equiPair struct {
	pred       expr.Expr
	outerCol   int // global id on the outer side
	innerCol   int // global id on the inner (single-table) side
	innerTable int
}

func (pl *planner) equiPairs(preds []expr.Expr, rest uint64, ti int) (pairs []equiPair, residual []expr.Expr) {
	for _, p := range preds {
		l, r, ok := expr.EquiJoinColumns(p)
		if !ok {
			residual = append(residual, p)
			continue
		}
		lt, rt := pl.q.TableOf(l), pl.q.TableOf(r)
		switch {
		case lt == ti && rest&(1<<uint(rt)) != 0:
			pairs = append(pairs, equiPair{pred: p, outerCol: r, innerCol: l, innerTable: ti})
		case rt == ti && rest&(1<<uint(lt)) != 0:
			pairs = append(pairs, equiPair{pred: p, outerCol: l, innerCol: r, innerTable: ti})
		default:
			residual = append(residual, p)
		}
	}
	return pairs, residual
}

// joinCandidates builds every physical join of outer ⋈ table ti the knobs
// allow: naive NLJN, index NLJN, hash join in both build directions, and
// merge join with sort enforcers.
func (pl *planner) joinCandidates(outer *Plan, ti int) []*Plan {
	q := pl.q
	bit := uint64(1) << uint(ti)
	mask := outer.tables | bit
	outCard := pl.est.SubsetCard(mask)
	joinPreds := pl.joinPredsBetween(outer.tables, ti)
	pairs, nonEqui := pl.equiPairs(joinPreds, outer.tables, ti)
	m := &pl.opt.Model

	innerPlans := pl.best[bit]
	innerCheapest := pl.bestOf(bit)
	if innerCheapest == nil {
		return nil
	}

	var out []*Plan
	mk := func(p *Plan) {
		p.tables = mask
		p.Card = outCard
		m.finishCosting(p) // the model applies the robustness handicap
		out = append(out, p)
	}

	// Naive nested-loop join: always applicable (handles non-equi and
	// cartesian joins), rescans the inner per outer row.
	if !pl.opt.DisableNLJN {
		mk(&Plan{
			Op:       OpNLJN,
			Children: []*Plan{outer, innerCheapest},
			JoinPred: expr.Conjoin(joinPreds...),
			Filter:   expr.Conjoin(joinPreds...),
			Cols:     append(append([]int(nil), outer.Cols...), innerCheapest.Cols...),
			ordered:  outer.ordered,
		})
	}

	// Index nested-loop join per indexed equi column.
	if !pl.opt.DisableNLJN && !pl.opt.DisableIndexJoin {
		for _, pr := range pairs {
			ord := q.OrdinalOf(pr.innerCol)
			ix := pl.tabs[ti].BTreeOn(ord)
			if ix == nil {
				continue
			}
			probe := pl.indexProbePlan(ti, ord, outer, outCard)
			var residual []expr.Expr
			residual = append(residual, nonEqui...)
			for _, other := range pairs {
				if other.pred != pr.pred {
					residual = append(residual, other.pred)
				}
			}
			mk(&Plan{
				Op:        OpNLJN,
				IndexJoin: true,
				LookupCol: pr.outerCol,
				Children:  []*Plan{outer, probe},
				JoinPred:  expr.Conjoin(joinPreds...),
				Filter:    expr.Conjoin(residual...),
				Cols:      append(append([]int(nil), outer.Cols...), probe.Cols...),
				ordered:   outer.ordered,
			})
		}
	}

	// Hash join (requires at least one equality) in both build directions.
	if !pl.opt.DisableHSJN && len(pairs) > 0 {
		probeKeys := make([]int, len(pairs))
		buildKeys := make([]int, len(pairs))
		for i, pr := range pairs {
			probeKeys[i] = pr.outerCol
			buildKeys[i] = pr.innerCol
		}
		// Build on the single table, probe with the outer subset.
		mk(&Plan{
			Op:        OpHSJN,
			Children:  []*Plan{outer, innerCheapest},
			EquiLeft:  probeKeys,
			EquiRight: buildKeys,
			Filter:    expr.Conjoin(nonEqui...),
			Cols:      append(append([]int(nil), outer.Cols...), innerCheapest.Cols...),
			ordered:   outer.ordered,
		})
		// Build on the outer subset, probe with the table.
		mk(&Plan{
			Op:        OpHSJN,
			Children:  []*Plan{innerCheapest, outer},
			EquiLeft:  buildKeys,
			EquiRight: probeKeys,
			Filter:    expr.Conjoin(nonEqui...),
			Cols:      append(append([]int(nil), innerCheapest.Cols...), outer.Cols...),
			ordered:   innerCheapest.ordered,
		})
	}

	// Merge join on the first equi pair, with sort enforcers as needed. An
	// inner plan already ordered on the key (an index scan) avoids its sort.
	if !pl.opt.DisableMGJN && len(pairs) > 0 {
		pr := pairs[0]
		left := pl.sorted(outer, pr.outerCol)
		var right *Plan
		if ip, ok := innerPlans[pr.innerCol]; ok {
			right = ip
		} else {
			right = pl.sorted(innerCheapest, pr.innerCol)
		}
		var residual []expr.Expr
		residual = append(residual, nonEqui...)
		for _, other := range pairs[1:] {
			residual = append(residual, other.pred)
		}
		mk(&Plan{
			Op:        OpMGJN,
			Children:  []*Plan{left, right},
			EquiLeft:  []int{pr.outerCol},
			EquiRight: []int{pr.innerCol},
			Filter:    expr.Conjoin(residual...),
			Cols:      append(append([]int(nil), left.Cols...), right.Cols...),
			ordered:   pr.outerCol,
		})
	}
	return out
}

// indexProbePlan builds the parameterized index-probe inner of an index
// NLJN: Card is the expected matches per probe and Cost the per-probe cost.
func (pl *planner) indexProbePlan(ti, ord int, outer *Plan, outCard float64) *Plan {
	q := pl.q
	pr := &pl.opt.Model.Params
	ix := pl.tabs[ti].BTreeOn(ord)
	local := q.LocalPredicates(ti)
	perProbe := outCard / math.Max(outer.Card, 1e-9)
	if perProbe < 1e-6 {
		perProbe = 1e-6
	}
	cost := float64(ix.Height())*pr.IndexLevel + perProbe*pr.FetchRow +
		perProbe*float64(len(local))*pr.PredEval
	return &Plan{
		Op:       OpIndexScan,
		Table:    ti,
		IndexOrd: ord,
		Filter:   expr.Conjoin(local...),
		Cols:     pl.allCols(ti),
		Card:     perProbe,
		Cost:     cost,
		tables:   uint64(1) << uint(ti),
		ordered:  -1,
	}
}

// sorted wraps p in a SORT enforcer unless it is already ordered on col.
func (pl *planner) sorted(p *Plan, col int) *Plan {
	if p.ordered == col {
		return p
	}
	s := &Plan{
		Op:       OpSort,
		Children: []*Plan{p},
		SortKeys: []SortKey{{Col: col}},
		Cols:     p.Cols,
		Card:     p.Card,
		tables:   p.tables,
		ordered:  col,
	}
	pl.opt.Model.finishCosting(s)
	return s
}

// finish layers aggregation, ordering, projection and limit over the join
// plan.
func (pl *planner) finish(join *Plan) (*Plan, error) {
	q := pl.q
	m := &pl.opt.Model
	top := join
	hasAgg := len(q.GroupBy) > 0
	for _, it := range q.Select {
		if it.Agg != logical.AggNone {
			hasAgg = true
		}
	}
	if hasAgg {
		var groupGids []int
		for _, g := range q.GroupBy {
			c, ok := g.(*expr.ColRef)
			if !ok {
				return nil, fmt.Errorf("optimizer: GROUP BY supports only column references, got %s", g)
			}
			groupGids = append(groupGids, c.Pos)
		}
		agg := &Plan{
			Op:       OpHashAgg,
			Children: []*Plan{top},
			GroupBy:  groupGids,
			Items:    q.Select,
			Cols:     pl.outputIDs(len(q.Select)),
			Card:     pl.est.groupCount(groupGids, top.Card),
			tables:   top.tables,
			ordered:  -1,
		}
		m.finishCosting(agg)
		top = agg
	} else {
		proj := &Plan{
			Op:       OpProject,
			Children: []*Plan{top},
			Items:    q.Select,
			Cols:     pl.outputIDs(len(q.Select)),
			Card:     top.Card,
			tables:   top.tables,
			ordered:  -1,
		}
		m.finishCosting(proj)
		top = proj
	}
	if q.Distinct {
		items := make([]logical.SelectItem, len(top.Cols))
		for i, c := range top.Cols {
			items[i] = logical.SelectItem{E: &expr.ColRef{Pos: c}, Name: q.Select[i].Name}
		}
		dedup := &Plan{
			Op:       OpHashAgg,
			Children: []*Plan{top},
			GroupBy:  append([]int(nil), top.Cols...),
			Items:    items,
			Cols:     append([]int(nil), top.Cols...),
			Card:     top.Card, // upper bound; duplicates unknown a priori
			tables:   top.tables,
			ordered:  -1,
		}
		m.finishCosting(dedup)
		top = dedup
	}
	if len(q.OrderBy) > 0 {
		keys, err := pl.orderKeys(top)
		if err != nil {
			return nil, err
		}
		srt := &Plan{
			Op:       OpSort,
			Children: []*Plan{top},
			SortKeys: keys,
			Cols:     top.Cols,
			Card:     top.Card,
			tables:   top.tables,
			ordered:  keys[0].Col,
		}
		m.finishCosting(srt)
		top = srt
	}
	if q.Limit > 0 {
		top.Limit = q.Limit
	}
	return top, nil
}

// outputIDs allocates synthetic global ids for the n output columns of the
// final aggregation/projection, placed above the base-column id space.
func (pl *planner) outputIDs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = pl.q.NumColumns() + i
	}
	return out
}

// orderKeys maps ORDER BY items onto the output columns by matching each
// item against the select list.
func (pl *planner) orderKeys(top *Plan) ([]SortKey, error) {
	q := pl.q
	keys := make([]SortKey, 0, len(q.OrderBy))
	for _, o := range q.OrderBy {
		found := -1
		for j, it := range q.Select {
			if it.E != nil && it.Agg == logical.AggNone && it.E.String() == o.E.String() {
				found = j
				break
			}
			if c, ok := o.E.(*expr.ColRef); ok && it.Name != "" && it.Name == c.Name {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("optimizer: ORDER BY key %s must appear in the select list", o.E)
		}
		keys = append(keys, SortKey{Col: q.NumColumns() + found, Desc: o.Desc})
	}
	return keys, nil
}
