package optimizer

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/logical"
)

// Explain renders the plan tree with estimates, validity ranges and
// checkpoint annotations, in the style of a DBMS EXPLAIN.
func Explain(p *Plan, q *logical.Query) string {
	var b strings.Builder
	explainNode(&b, p, q, 0)
	return b.String()
}

// NodeLabel renders one plan node's operator label with its annotations —
// "IXSCAN(o)[sarg]", "CHECK[LC #1 range=[800.0,inf]]", "XCHG[gather dop=4]" —
// without the cardinality/cost suffix. EXPLAIN and EXPLAIN ANALYZE share it,
// so a node is named identically in both renderings.
func NodeLabel(p *Plan, q *logical.Query) string {
	var b strings.Builder
	b.WriteString(p.Op.String())
	switch p.Op {
	case OpTableScan, OpIndexScan, OpHashLookup:
		if q != nil && p.Table < len(q.Tables) {
			fmt.Fprintf(&b, "(%s)", q.Tables[p.Table].Alias)
		}
		if p.Op == OpIndexScan {
			if p.IndexLo == nil && p.IndexHi == nil {
				// Either a parameterized probe under an index NLJN (the
				// parent prints [index]) or an order-providing full scan.
				b.WriteString("[full]")
			} else {
				b.WriteString("[sarg]")
			}
		}
	case OpMVScan:
		if p.MV != nil {
			fmt.Fprintf(&b, "(%s)", p.MV.Signature)
		}
	case OpNLJN:
		if p.IndexJoin {
			b.WriteString("[index]")
		}
	case OpCheck:
		if p.Check != nil {
			fmt.Fprintf(&b, "[%s #%d range=%s]", p.Check.Flavor, p.Check.ID, formatRange(p.Check.Range))
		}
	case OpExchange:
		fmt.Fprintf(&b, "[%s dop=%d]", p.ExKind, p.DOP)
	default:
		// Joins, sorts, aggregates and projections label themselves with
		// the bare OpKind written above.
	}
	return b.String()
}

func explainNode(b *strings.Builder, p *Plan, q *logical.Query, depth int) {
	indent := strings.Repeat("  ", depth)
	b.WriteString(indent)
	b.WriteString(NodeLabel(p, q))
	fmt.Fprintf(b, "  card=%.1f cost=%.0f", p.Card, p.Cost)
	if p.Filter != nil {
		fmt.Fprintf(b, " filter=%s", p.Filter)
	}
	if len(p.SortKeys) > 0 {
		parts := make([]string, len(p.SortKeys))
		for i, k := range p.SortKeys {
			dir := ""
			if k.Desc {
				dir = " desc"
			}
			name := fmt.Sprintf("$%d", k.Col)
			if q != nil && k.Col < q.NumColumns() {
				name = q.ColumnName(k.Col)
			}
			parts[i] = name + dir
		}
		fmt.Fprintf(b, " keys=[%s]", strings.Join(parts, ","))
	}
	if p.Limit > 0 {
		fmt.Fprintf(b, " limit=%d", p.Limit)
	}
	for i := range p.Children {
		if v := p.EdgeValidity(i); v.Bounded() {
			fmt.Fprintf(b, " validity[%d]=%s", i, formatRange(v))
		}
	}
	b.WriteByte('\n')
	for _, c := range p.Children {
		explainNode(b, c, q, depth+1)
	}
}

func formatRange(r Range) string {
	hi := "inf"
	if !math.IsInf(r.Hi, 1) {
		hi = fmt.Sprintf("%.1f", r.Hi)
	}
	return fmt.Sprintf("[%.1f,%s]", r.Lo, hi)
}
