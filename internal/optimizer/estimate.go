package optimizer

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/stats"
)

// estimator derives cardinalities for the enumerator. It consults the
// cardinality-feedback cache before statistics, so actual cardinalities
// observed during a previous partial execution override the original
// (possibly wrong) estimates — POP's aspect 2 (paper §2).
type estimator struct {
	q    *logical.Query
	tabs []*catalog.Table
	fb   *stats.Feedback
	// uncertainty inflates estimates not backed by feedback during a
	// re-optimization (>1 enables; see Optimizer.UncertaintyPenalty).
	uncertainty float64
}

func newEstimator(q *logical.Query, tabs []*catalog.Table, fb *stats.Feedback) *estimator {
	return &estimator{q: q, tabs: tabs, fb: fb}
}

// uncertain applies the §7 uncertainty penalty to a non-observed estimate.
// It is active only during re-optimization (the feedback cache has entries)
// and only when the optimizer enables it.
func (e *estimator) uncertain(card float64) float64 {
	if e.uncertainty > 1 && e.fb != nil && e.fb.Len() > 0 {
		return card * e.uncertainty
	}
	return card
}

// statsLookup resolves a query-global column id to its column statistics.
func (e *estimator) statsLookup(g int) *stats.ColumnStats {
	ti := e.q.TableOf(g)
	if ti < 0 {
		return nil
	}
	return e.tabs[ti].Stats(e.q.OrdinalOf(g))
}

// lookup adapts statsLookup to the stats package's Lookup type.
func (e *estimator) lookup() stats.Lookup {
	return func(pos int) *stats.ColumnStats { return e.statsLookup(pos) }
}

// Signature builds the canonical plan-edge signature for a table subset of
// the query: the sorted aliases of the tables joined plus the sorted
// canonical text of every predicate applied within the subset (all members'
// local predicates and all internal join predicates). Two structurally
// equivalent subplans share a signature regardless of operator choice or
// join order — the key property for cardinality feedback and MV matching.
func Signature(q *logical.Query, mask uint64) string {
	var aliases []string
	for i := range q.Tables {
		if mask&(1<<uint(i)) != 0 {
			aliases = append(aliases, q.Tables[i].Alias)
		}
	}
	sort.Strings(aliases)
	var preds []string
	for _, p := range q.Where {
		used := q.TablesUsed(p)
		if used != 0 && used&mask == used {
			preds = append(preds, predSignature(q, p))
		}
	}
	sort.Strings(preds)
	return "T{" + strings.Join(aliases, ",") + "}|P{" + strings.Join(preds, ";") + "}"
}

// Signature is the estimator-local shorthand for Signature(q, mask).
func (e *estimator) Signature(mask uint64) string { return Signature(e.q, mask) }

// predSignature renders a predicate with column refs spelled as
// alias.column, independent of global-id numbering.
func predSignature(q *logical.Query, p expr.Expr) string {
	named := expr.Remap(p, func(pos int) int { return pos })
	// Remap copies; rewrite names in the copy.
	expr.Walk(named, func(n expr.Expr) {
		if c, ok := n.(*expr.ColRef); ok {
			c.Name = q.ColumnName(c.Pos)
		}
	})
	return named.String()
}

// baseTableCard returns the unfiltered row count of table ti.
func (e *estimator) baseTableCard(ti int) float64 { return e.tabs[ti].RowCount() }

// filteredBaseCard estimates the cardinality of table ti after its local
// predicates, preferring feedback.
func (e *estimator) filteredBaseCard(ti int) float64 {
	if e.fb != nil {
		if card, ok := e.fb.Get(e.Signature(1 << uint(ti))); ok {
			return card
		}
	}
	card := e.baseTableCard(ti)
	for _, p := range e.q.LocalPredicates(ti) {
		card *= stats.Selectivity(p, e.lookup())
	}
	if card < 0 {
		card = 0
	}
	return e.uncertain(card)
}

// joinPredSelectivity estimates one join predicate's selectivity.
func (e *estimator) joinPredSelectivity(p expr.Expr) float64 {
	if l, r, ok := expr.EquiJoinColumns(p); ok {
		return stats.JoinSelectivity(e.statsLookup(l), e.statsLookup(r))
	}
	return stats.Selectivity(p, e.lookup())
}

// SubsetCard estimates the output cardinality of joining the table subset,
// preferring feedback for the exact subset.
func (e *estimator) SubsetCard(mask uint64) float64 {
	if e.fb != nil {
		if card, ok := e.fb.Get(e.Signature(mask)); ok {
			return card
		}
	}
	card := 1.0
	for i := range e.q.Tables {
		if mask&(1<<uint(i)) != 0 {
			card *= e.filteredBaseCard(i)
		}
	}
	for _, p := range e.q.JoinPredicates() {
		used := e.q.TablesUsed(p)
		if used&mask == used {
			card *= e.joinPredSelectivity(p)
		}
	}
	if card < 0 {
		card = 0
	}
	return e.uncertain(card)
}

// groupCount estimates the number of groups for the given grouping keys out
// of `card` input rows: the product of the keys' distinct counts, capped by
// the input cardinality.
func (e *estimator) groupCount(groupBy []int, card float64) float64 {
	if len(groupBy) == 0 {
		return 1
	}
	groups := 1.0
	for _, g := range groupBy {
		if cs := e.statsLookup(g); cs != nil && cs.Distinct > 0 {
			groups *= cs.Distinct
		} else {
			groups *= 100
		}
	}
	if groups > card {
		groups = card
	}
	if groups < 1 {
		groups = 1
	}
	return groups
}

// maskString renders a table bitmask for diagnostics.
func (e *estimator) maskString(mask uint64) string {
	var parts []string
	for i := range e.q.Tables {
		if mask&(1<<uint(i)) != 0 {
			parts = append(parts, e.q.Tables[i].Alias)
		}
	}
	return strings.Join(parts, "⋈")
}

// popcount returns the number of tables in the mask.
func popcount(mask uint64) int { return bits.OnesCount64(mask) }

// maskError formats a "no plan" diagnostic.
func maskError(e *estimator, mask uint64) error {
	return fmt.Errorf("optimizer: no plan found for subset %s", e.maskString(mask))
}
