package optimizer

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/stats"
)

// estimator derives cardinalities for the enumerator. It consults the
// cardinality-feedback cache before statistics, so actual cardinalities
// observed during a previous partial execution override the original
// (possibly wrong) estimates — POP's aspect 2 (paper §2).
type estimator struct {
	q    *logical.Query
	tabs []*catalog.Table
	fb   *stats.Feedback
	// uncertainty inflates estimates not backed by feedback during a
	// re-optimization (>1 enables; see Optimizer.UncertaintyPenalty).
	uncertainty float64

	// Fast-path state. The DP enumerator asks for the same subset
	// cardinalities, signatures and predicate selectivities many times per
	// Optimize call, and each uncached answer walks expression trees or
	// builds strings. Everything below is derived purely from the fields
	// above, which are immutable for the estimator's lifetime, so memoizing
	// returns bit-identical values in identical call orders.
	lk        stats.Lookup       // interned lookup closure
	fbHas     bool               // fb had entries at construction
	joinPreds []predMask         // join predicates with cached table masks
	joinSel   []float64          // memoized joinPredSelectivity (NaN = unset)
	baseCard  []float64          // memoized filteredBaseCard (NaN = unset)
	subsets   map[uint64]float64 // memoized SubsetCard
	sigs      map[uint64]string  // memoized Signature
}

// predMask pairs a predicate with its precomputed table mask, saving the
// expression walk TablesUsed performs on every call.
type predMask struct {
	pred expr.Expr
	mask uint64
}

func newEstimator(q *logical.Query, tabs []*catalog.Table, fb *stats.Feedback) *estimator {
	e := &estimator{q: q, tabs: tabs, fb: fb}
	e.lk = func(pos int) *stats.ColumnStats { return e.statsLookup(pos) }
	e.fbHas = fb != nil && fb.Len() > 0
	for _, p := range q.JoinPredicates() {
		e.joinPreds = append(e.joinPreds, predMask{pred: p, mask: q.TablesUsed(p)})
	}
	e.joinSel = make([]float64, len(e.joinPreds))
	e.baseCard = make([]float64, len(tabs))
	for i := range e.joinSel {
		e.joinSel[i] = math.NaN()
	}
	for i := range e.baseCard {
		e.baseCard[i] = math.NaN()
	}
	e.subsets = make(map[uint64]float64)
	e.sigs = make(map[uint64]string)
	return e
}

// uncertain applies the §7 uncertainty penalty to a non-observed estimate.
// It is active only during re-optimization (the feedback cache has entries)
// and only when the optimizer enables it.
func (e *estimator) uncertain(card float64) float64 {
	if e.uncertainty > 1 && e.fbHas {
		return card * e.uncertainty
	}
	return card
}

// statsLookup resolves a query-global column id to its column statistics.
func (e *estimator) statsLookup(g int) *stats.ColumnStats {
	ti := e.q.TableOf(g)
	if ti < 0 {
		return nil
	}
	return e.tabs[ti].Stats(e.q.OrdinalOf(g))
}

// lookup adapts statsLookup to the stats package's Lookup type.
func (e *estimator) lookup() stats.Lookup { return e.lk }

// Signature builds the canonical plan-edge signature for a table subset of
// the query: the sorted aliases of the tables joined plus the sorted
// canonical text of every predicate applied within the subset (all members'
// local predicates and all internal join predicates). Two structurally
// equivalent subplans share a signature regardless of operator choice or
// join order — the key property for cardinality feedback and MV matching.
func Signature(q *logical.Query, mask uint64) string {
	var aliases []string
	for i := range q.Tables {
		if mask&(1<<uint(i)) != 0 {
			aliases = append(aliases, q.Tables[i].Alias)
		}
	}
	sort.Strings(aliases)
	var preds []string
	for _, p := range q.Where {
		used := q.TablesUsed(p)
		if used != 0 && used&mask == used {
			preds = append(preds, predSignature(q, p))
		}
	}
	sort.Strings(preds)
	return "T{" + strings.Join(aliases, ",") + "}|P{" + strings.Join(preds, ";") + "}"
}

// Signature is the estimator-local shorthand for Signature(q, mask),
// memoized per mask.
func (e *estimator) Signature(mask uint64) string {
	if s, ok := e.sigs[mask]; ok {
		return s
	}
	s := Signature(e.q, mask)
	e.sigs[mask] = s
	return s
}

// predSignature renders a predicate with column refs spelled as
// alias.column, independent of global-id numbering.
func predSignature(q *logical.Query, p expr.Expr) string {
	named := expr.Remap(p, func(pos int) int { return pos })
	// Remap copies; rewrite names in the copy.
	expr.Walk(named, func(n expr.Expr) {
		if c, ok := n.(*expr.ColRef); ok {
			c.Name = q.ColumnName(c.Pos)
		}
	})
	return named.String()
}

// baseTableCard returns the unfiltered row count of table ti.
func (e *estimator) baseTableCard(ti int) float64 { return e.tabs[ti].RowCount() }

// filteredBaseCard estimates the cardinality of table ti after its local
// predicates, preferring feedback. Memoized per table.
func (e *estimator) filteredBaseCard(ti int) float64 {
	if !math.IsNaN(e.baseCard[ti]) {
		return e.baseCard[ti]
	}
	card := e.filteredBaseCardUncached(ti)
	e.baseCard[ti] = card
	return card
}

func (e *estimator) filteredBaseCardUncached(ti int) float64 {
	if e.fb != nil {
		if card, ok := e.fb.Get(e.Signature(1 << uint(ti))); ok {
			return card
		}
	}
	card := e.baseTableCard(ti)
	for _, p := range e.q.LocalPredicates(ti) {
		card *= stats.Selectivity(p, e.lookup())
	}
	if card < 0 {
		card = 0
	}
	return e.uncertain(card)
}

// joinPredSelectivity estimates one join predicate's selectivity.
func (e *estimator) joinPredSelectivity(p expr.Expr) float64 {
	if l, r, ok := expr.EquiJoinColumns(p); ok {
		return stats.JoinSelectivity(e.statsLookup(l), e.statsLookup(r))
	}
	return stats.Selectivity(p, e.lookup())
}

// SubsetCard estimates the output cardinality of joining the table subset,
// preferring feedback for the exact subset. Memoized per mask; selectivities
// of individual join predicates are memoized across masks.
func (e *estimator) SubsetCard(mask uint64) float64 {
	if card, ok := e.subsets[mask]; ok {
		return card
	}
	card := e.subsetCardUncached(mask)
	e.subsets[mask] = card
	return card
}

func (e *estimator) subsetCardUncached(mask uint64) float64 {
	if e.fb != nil {
		if card, ok := e.fb.Get(e.Signature(mask)); ok {
			return card
		}
	}
	card := 1.0
	for i := range e.q.Tables {
		if mask&(1<<uint(i)) != 0 {
			card *= e.filteredBaseCard(i)
		}
	}
	for i, jp := range e.joinPreds {
		if jp.mask&mask == jp.mask {
			if math.IsNaN(e.joinSel[i]) {
				e.joinSel[i] = e.joinPredSelectivity(jp.pred)
			}
			card *= e.joinSel[i]
		}
	}
	if card < 0 {
		card = 0
	}
	return e.uncertain(card)
}

// groupCount estimates the number of groups for the given grouping keys out
// of `card` input rows: the product of the keys' distinct counts, capped by
// the input cardinality.
func (e *estimator) groupCount(groupBy []int, card float64) float64 {
	if len(groupBy) == 0 {
		return 1
	}
	groups := 1.0
	for _, g := range groupBy {
		if cs := e.statsLookup(g); cs != nil && cs.Distinct > 0 {
			groups *= cs.Distinct
		} else {
			groups *= 100
		}
	}
	if groups > card {
		groups = card
	}
	if groups < 1 {
		groups = 1
	}
	return groups
}

// maskString renders a table bitmask for diagnostics.
func (e *estimator) maskString(mask uint64) string {
	var parts []string
	for i := range e.q.Tables {
		if mask&(1<<uint(i)) != 0 {
			parts = append(parts, e.q.Tables[i].Alias)
		}
	}
	return strings.Join(parts, "⋈")
}

// popcount returns the number of tables in the mask.
func popcount(mask uint64) int { return bits.OnesCount64(mask) }

// maskError formats a "no plan" diagnostic.
func maskError(e *estimator, mask uint64) error {
	return fmt.Errorf("optimizer: no plan found for subset %s", e.maskString(mask))
}
