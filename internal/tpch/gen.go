// Package tpch provides a deterministic, scale-configurable TPC-H database
// generator and the TPC-H-derived query set the paper's evaluation uses
// (Q2, Q3, Q4, Q5, Q7, Q8, Q9, Q10, Q11, Q18). The generator is a dbgen-style
// synthesizer: laptop-scale by default, with the same schema, key structure,
// skew and date ranges that the experiments depend on.
package tpch

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/schema"
	"repro/internal/types"
)

// Config controls generation.
type Config struct {
	// ScaleFactor scales table cardinalities relative to TPC-H SF1
	// (LINEITEM ≈ 6M rows at SF1). The default 0.005 yields a ~30k-row
	// LINEITEM — large enough for plan crossovers, small enough for tests.
	ScaleFactor float64
	// Seed drives the deterministic PRNG.
	Seed uint64
	// SkipIndexes omits index builds (for tests that want pure scans).
	SkipIndexes bool
}

// DefaultConfig returns the standard laptop-scale configuration.
func DefaultConfig() Config { return Config{ScaleFactor: 0.005, Seed: 42} }

// rng is a xorshift64* PRNG: deterministic across platforms.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{state: seed}
}

func (r *rng) next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// Sizes returns the table cardinalities for a scale factor.
func Sizes(sf float64) map[string]int {
	scale := func(n float64) int {
		v := int(n * sf)
		if v < 1 {
			v = 1
		}
		return v
	}
	return map[string]int{
		"region":   5,
		"nation":   25,
		"supplier": scale(10000),
		"customer": scale(150000),
		"part":     scale(200000),
		"partsupp": scale(800000),
		"orders":   scale(1500000),
		"lineitem": scale(6000000),
	}
}

var (
	regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationNames = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
		"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
		"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
		"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
		"UNITED STATES",
	}
	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipModes  = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	partTypes  = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	partMetals = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	partColors = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque",
		"black", "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse"}
	returnFlags = []string{"R", "A", "N"}
)

// Load creates, populates, indexes and analyzes the full TPC-H schema in
// the catalog.
func Load(cat *catalog.Catalog, cfg Config) error {
	if cfg.ScaleFactor <= 0 {
		cfg.ScaleFactor = DefaultConfig().ScaleFactor
	}
	sizes := Sizes(cfg.ScaleFactor)
	r := newRNG(cfg.Seed)

	region, err := cat.CreateTable("region", schema.New(
		schema.Column{Name: "r_regionkey", Type: types.KindInt},
		schema.Column{Name: "r_name", Type: types.KindString},
	))
	if err != nil {
		return err
	}
	for i := 0; i < sizes["region"]; i++ {
		region.Heap.MustInsert(schema.Row{types.NewInt(int64(i)), types.NewString(regionNames[i%len(regionNames)])})
	}

	nation, err := cat.CreateTable("nation", schema.New(
		schema.Column{Name: "n_nationkey", Type: types.KindInt},
		schema.Column{Name: "n_name", Type: types.KindString},
		schema.Column{Name: "n_regionkey", Type: types.KindInt},
	))
	if err != nil {
		return err
	}
	for i := 0; i < sizes["nation"]; i++ {
		nation.Heap.MustInsert(schema.Row{
			types.NewInt(int64(i)),
			types.NewString(nationNames[i%len(nationNames)]),
			types.NewInt(int64(i % sizes["region"])),
		})
	}

	supplier, err := cat.CreateTable("supplier", schema.New(
		schema.Column{Name: "s_suppkey", Type: types.KindInt},
		schema.Column{Name: "s_name", Type: types.KindString},
		schema.Column{Name: "s_nationkey", Type: types.KindInt},
		schema.Column{Name: "s_acctbal", Type: types.KindFloat},
	))
	if err != nil {
		return err
	}
	for i := 0; i < sizes["supplier"]; i++ {
		supplier.Heap.MustInsert(schema.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("Supplier#%09d", i)),
			types.NewInt(int64(r.intn(sizes["nation"]))),
			types.NewFloat(-999 + r.float()*10998),
		})
	}

	customer, err := cat.CreateTable("customer", schema.New(
		schema.Column{Name: "c_custkey", Type: types.KindInt},
		schema.Column{Name: "c_name", Type: types.KindString},
		schema.Column{Name: "c_nationkey", Type: types.KindInt},
		schema.Column{Name: "c_acctbal", Type: types.KindFloat},
		schema.Column{Name: "c_mktsegment", Type: types.KindString},
	))
	if err != nil {
		return err
	}
	for i := 0; i < sizes["customer"]; i++ {
		customer.Heap.MustInsert(schema.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("Customer#%09d", i)),
			types.NewInt(int64(r.intn(sizes["nation"]))),
			types.NewFloat(-999 + r.float()*10998),
			types.NewString(segments[r.intn(len(segments))]),
		})
	}

	part, err := cat.CreateTable("part", schema.New(
		schema.Column{Name: "p_partkey", Type: types.KindInt},
		schema.Column{Name: "p_name", Type: types.KindString},
		schema.Column{Name: "p_brand", Type: types.KindString},
		schema.Column{Name: "p_type", Type: types.KindString},
		schema.Column{Name: "p_size", Type: types.KindInt},
		schema.Column{Name: "p_retailprice", Type: types.KindFloat},
	))
	if err != nil {
		return err
	}
	for i := 0; i < sizes["part"]; i++ {
		color := partColors[r.intn(len(partColors))]
		part.Heap.MustInsert(schema.Row{
			types.NewInt(int64(i)),
			types.NewString(color + " " + partColors[r.intn(len(partColors))]),
			types.NewString(fmt.Sprintf("Brand#%d%d", 1+r.intn(5), 1+r.intn(5))),
			types.NewString(partTypes[r.intn(len(partTypes))] + " " + partMetals[r.intn(len(partMetals))]),
			types.NewInt(int64(1 + r.intn(50))),
			types.NewFloat(900 + r.float()*1200),
		})
	}

	partsupp, err := cat.CreateTable("partsupp", schema.New(
		schema.Column{Name: "ps_partkey", Type: types.KindInt},
		schema.Column{Name: "ps_suppkey", Type: types.KindInt},
		schema.Column{Name: "ps_availqty", Type: types.KindInt},
		schema.Column{Name: "ps_supplycost", Type: types.KindFloat},
	))
	if err != nil {
		return err
	}
	for i := 0; i < sizes["partsupp"]; i++ {
		partsupp.Heap.MustInsert(schema.Row{
			types.NewInt(int64(i % sizes["part"])),
			types.NewInt(int64(r.intn(sizes["supplier"]))),
			types.NewInt(int64(1 + r.intn(9999))),
			types.NewFloat(1 + r.float()*999),
		})
	}

	orders, err := cat.CreateTable("orders", schema.New(
		schema.Column{Name: "o_orderkey", Type: types.KindInt},
		schema.Column{Name: "o_custkey", Type: types.KindInt},
		schema.Column{Name: "o_orderstatus", Type: types.KindString},
		schema.Column{Name: "o_totalprice", Type: types.KindFloat},
		schema.Column{Name: "o_orderdate", Type: types.KindDate},
		schema.Column{Name: "o_orderpriority", Type: types.KindString},
	))
	if err != nil {
		return err
	}
	// Order dates span 1992-01-01 .. 1998-08-02 as in dbgen.
	dateLo := types.MakeDate(1992, 1, 1).Days()
	dateHi := types.MakeDate(1998, 8, 2).Days()
	for i := 0; i < sizes["orders"]; i++ {
		status := "O"
		if r.intn(2) == 0 {
			status = "F"
		}
		orders.Heap.MustInsert(schema.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(r.intn(sizes["customer"]))),
			types.NewString(status),
			types.NewFloat(1000 + r.float()*450000),
			types.NewDate(dateLo + int64(r.intn(int(dateHi-dateLo)))),
			types.NewString(priorities[r.intn(len(priorities))]),
		})
	}

	lineitem, err := cat.CreateTable("lineitem", schema.New(
		schema.Column{Name: "l_orderkey", Type: types.KindInt},
		schema.Column{Name: "l_partkey", Type: types.KindInt},
		schema.Column{Name: "l_suppkey", Type: types.KindInt},
		schema.Column{Name: "l_quantity", Type: types.KindFloat},
		schema.Column{Name: "l_extendedprice", Type: types.KindFloat},
		schema.Column{Name: "l_discount", Type: types.KindFloat},
		schema.Column{Name: "l_returnflag", Type: types.KindString},
		schema.Column{Name: "l_shipdate", Type: types.KindDate},
		schema.Column{Name: "l_commitdate", Type: types.KindDate},
		schema.Column{Name: "l_receiptdate", Type: types.KindDate},
		schema.Column{Name: "l_shipmode", Type: types.KindString},
	))
	if err != nil {
		return err
	}
	for i := 0; i < sizes["lineitem"]; i++ {
		okey := int64(i) % int64(sizes["orders"])
		ship := dateLo + int64(r.intn(int(dateHi-dateLo)))
		lineitem.Heap.MustInsert(schema.Row{
			types.NewInt(okey),
			types.NewInt(int64(r.intn(sizes["part"]))),
			types.NewInt(int64(r.intn(sizes["supplier"]))),
			types.NewFloat(float64(1 + r.intn(50))),
			types.NewFloat(900 + r.float()*104000),
			types.NewFloat(float64(r.intn(11)) / 100),
			types.NewString(returnFlags[r.intn(len(returnFlags))]),
			types.NewDate(ship),
			types.NewDate(ship + int64(r.intn(30))),
			types.NewDate(ship + int64(1+r.intn(30))),
			types.NewString(shipModes[r.intn(len(shipModes))]),
		})
	}

	if !cfg.SkipIndexes {
		indexes := [][3]string{
			{"region_pk", "region", "r_regionkey"},
			{"nation_pk", "nation", "n_nationkey"},
			{"supplier_pk", "supplier", "s_suppkey"},
			{"customer_pk", "customer", "c_custkey"},
			{"part_pk", "part", "p_partkey"},
			{"partsupp_part", "partsupp", "ps_partkey"},
			{"orders_pk", "orders", "o_orderkey"},
			{"orders_cust", "orders", "o_custkey"},
			{"lineitem_order", "lineitem", "l_orderkey"},
			{"lineitem_part", "lineitem", "l_partkey"},
			{"lineitem_supp", "lineitem", "l_suppkey"},
		}
		for _, ix := range indexes {
			if _, err := cat.CreateBTreeIndex(ix[0], ix[1], ix[2]); err != nil {
				return err
			}
		}
	}
	return cat.AnalyzeAll()
}
