package tpch

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/executor"
	"repro/internal/logical"
	"repro/internal/optimizer"
	"repro/internal/pop"
	"repro/internal/types"
)

func loadSmall(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	cfg := Config{ScaleFactor: 0.002, Seed: 7}
	if err := Load(cat, cfg); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestSizesScaling(t *testing.T) {
	s := Sizes(0.01)
	if s["lineitem"] != 60000 || s["orders"] != 15000 || s["customer"] != 1500 {
		t.Errorf("sizes = %v", s)
	}
	if s["region"] != 5 || s["nation"] != 25 {
		t.Error("fixed tables must not scale")
	}
	tiny := Sizes(1e-9)
	for name, n := range tiny {
		if n < 1 {
			t.Errorf("%s size %d < 1", name, n)
		}
	}
}

func TestLoadDeterministic(t *testing.T) {
	cat1 := loadSmall(t)
	cat2 := loadSmall(t)
	for _, name := range cat1.TableNames() {
		t1, _ := cat1.Table(name)
		t2, _ := cat2.Table(name)
		if t1.RowCount() != t2.RowCount() {
			t.Errorf("%s cardinality differs across loads", name)
		}
	}
	// Spot-check a row.
	l1, _ := cat1.Table("lineitem")
	l2, _ := cat2.Table("lineitem")
	r1, _ := l1.Heap.Get(10)
	r2, _ := l2.Heap.Get(10)
	if r1.String() != r2.String() {
		t.Errorf("row 10 differs: %s vs %s", r1, r2)
	}
}

func TestReferentialIntegrity(t *testing.T) {
	cat := loadSmall(t)
	orders, _ := cat.Table("orders")
	customer, _ := cat.Table("customer")
	nCust := int64(customer.Heap.RowCount())
	it := orders.Heap.Scan()
	for {
		row, _, ok := it.Next()
		if !ok {
			break
		}
		if ck := row[1].Int(); ck < 0 || ck >= nCust {
			t.Fatalf("o_custkey %d out of range [0,%d)", ck, nCust)
		}
	}
	line, _ := cat.Table("lineitem")
	nOrders := int64(orders.Heap.RowCount())
	lit := line.Heap.Scan()
	for {
		row, _, ok := lit.Next()
		if !ok {
			break
		}
		if ok := row[0].Int(); ok < 0 || ok >= nOrders {
			t.Fatalf("l_orderkey %d out of range", ok)
		}
	}
}

func TestStatisticsBuilt(t *testing.T) {
	cat := loadSmall(t)
	line, _ := cat.Table("lineitem")
	qty := line.Stats(line.Schema.Ordinal("l_quantity"))
	if qty == nil || qty.RowCount == 0 {
		t.Fatal("lineitem stats missing")
	}
	if qty.Min.Float() != 1 || qty.Max.Float() != 50 {
		t.Errorf("l_quantity range [%v,%v], want [1,50]", qty.Min, qty.Max)
	}
}

// TestAllQueriesPlanAndRun compiles and executes every evaluation query
// without POP, sanity-checking result shapes.
func TestAllQueriesPlanAndRun(t *testing.T) {
	cat := loadSmall(t)
	qs, err := Queries(cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 10 {
		t.Fatalf("expected 10 queries, got %d", len(qs))
	}
	for name, q := range qs {
		t.Run(name, func(t *testing.T) {
			opt := optimizer.New(cat)
			plan, err := opt.Optimize(q)
			if err != nil {
				t.Fatalf("optimize: %v", err)
			}
			ex, err := executor.NewExecutor(cat, q, nil, opt.Model.Params, &executor.Meter{})
			if err != nil {
				t.Fatal(err)
			}
			root, err := ex.Build(plan)
			if err != nil {
				t.Fatalf("build: %v\n%s", err, optimizer.Explain(plan, q))
			}
			rows, err := executor.Run(root)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			t.Logf("%s: %d rows, cost %.0f", name, len(rows), plan.Cost)
		})
	}
}

// TestQueriesAgreeUnderPOP verifies POP returns identical results for every
// evaluation query.
func TestQueriesAgreeUnderPOP(t *testing.T) {
	cat := loadSmall(t)
	qs, err := Queries(cat)
	if err != nil {
		t.Fatal(err)
	}
	for name, q := range qs {
		t.Run(name, func(t *testing.T) {
			off, err := pop.NewRunner(cat, pop.Options{Enabled: false}).Run(q, nil)
			if err != nil {
				t.Fatalf("no-POP run: %v", err)
			}
			on, err := pop.NewRunner(cat, pop.DefaultOptions()).Run(q, nil)
			if err != nil {
				t.Fatalf("POP run: %v", err)
			}
			if len(on.Rows) != len(off.Rows) {
				t.Fatalf("row counts differ: POP %d vs baseline %d (reopts=%d)",
					len(on.Rows), len(off.Rows), on.Reopts)
			}
		})
	}
}

func TestQ10ParamVsLiteral(t *testing.T) {
	cat := loadSmall(t)
	qp, err := Q10Param(cat)
	if err != nil {
		t.Fatal(err)
	}
	if qp.NumParams != 1 {
		t.Fatalf("param count = %d", qp.NumParams)
	}
	ql, err := Q10Literal(cat, 25)
	if err != nil {
		t.Fatal(err)
	}
	runQ := func(q *logical.Query, params []types.Datum) int {
		opt := optimizer.New(cat)
		plan, err := opt.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		ex, _ := executor.NewExecutor(cat, q, params, opt.Model.Params, &executor.Meter{})
		root, err := ex.Build(plan)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := executor.Run(root)
		if err != nil {
			t.Fatal(err)
		}
		return len(rows)
	}
	nParam := runQ(qp, []types.Datum{types.NewFloat(25)})
	nLit := runQ(ql, nil)
	if nParam != nLit {
		t.Errorf("param (%d rows) and literal (%d rows) disagree", nParam, nLit)
	}
}

// TestQ10ParamPOPAgreesProperty is a property sweep: for random parameter
// bindings, POP (with however many re-optimizations it takes) returns
// exactly the rows the static plan returns.
func TestQ10ParamPOPAgreesProperty(t *testing.T) {
	cat := loadSmall(t)
	q, err := Q10Param(cat)
	if err != nil {
		t.Fatal(err)
	}
	for _, qty := range []float64{0, 1, 7.5, 13, 26, 37.2, 49, 50, 75} {
		params := []types.Datum{types.NewFloat(qty)}
		static, err := pop.NewRunner(cat, pop.Options{Enabled: false}).Run(q, params)
		if err != nil {
			t.Fatalf("qty=%v static: %v", qty, err)
		}
		progressive, err := pop.NewRunner(cat, pop.DefaultOptions()).Run(q, params)
		if err != nil {
			t.Fatalf("qty=%v POP: %v", qty, err)
		}
		if len(progressive.Rows) != len(static.Rows) {
			t.Errorf("qty=%v: POP %d rows vs static %d (reopts=%d)",
				qty, len(progressive.Rows), len(static.Rows), progressive.Reopts)
		}
	}
}
