package tpch

import (
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/types"
)

// Queries builds the TPC-H-derived query set used throughout the paper's
// evaluation (Figures 12-14): Q2, Q3, Q4, Q5, Q7, Q8, Q9, Q11, Q18 plus the
// literal form of Q10. The queries are adapted to the engine's SPJ+aggregate
// subset but keep the join structure, predicates and estimation hazards
// (date ranges, LIKE, column-to-column comparisons) of the originals.
func Queries(cat *catalog.Catalog) (map[string]*logical.Query, error) {
	out := map[string]*logical.Query{}
	type builder struct {
		name string
		fn   func(*catalog.Catalog) (*logical.Query, error)
	}
	for _, b := range []builder{
		{"Q2", Q2}, {"Q3", Q3}, {"Q4", Q4}, {"Q5", Q5}, {"Q7", Q7},
		{"Q8", Q8}, {"Q9", Q9}, {"Q10", func(c *catalog.Catalog) (*logical.Query, error) { return Q10Literal(c, 25) }},
		{"Q11", Q11}, {"Q18", Q18},
	} {
		q, err := b.fn(cat)
		if err != nil {
			return nil, fmt.Errorf("tpch: building %s: %w", b.name, err)
		}
		out[b.name] = q
	}
	return out, nil
}

func eq(l, r expr.Expr) expr.Expr { return &expr.Cmp{Op: expr.EQ, L: l, R: r} }
func lt(l, r expr.Expr) expr.Expr { return &expr.Cmp{Op: expr.LT, L: l, R: r} }
func le(l, r expr.Expr) expr.Expr { return &expr.Cmp{Op: expr.LE, L: l, R: r} }
func gt(l, r expr.Expr) expr.Expr { return &expr.Cmp{Op: expr.GT, L: l, R: r} }
func ge(l, r expr.Expr) expr.Expr { return &expr.Cmp{Op: expr.GE, L: l, R: r} }
func str(s string) expr.Expr      { return &expr.Const{Val: types.NewString(s)} }
func num(f float64) expr.Expr     { return &expr.Const{Val: types.NewFloat(f)} }
func intc(i int64) expr.Expr      { return &expr.Const{Val: types.NewInt(i)} }
func date(y, m, d int) expr.Expr {
	return &expr.Const{Val: types.MakeDate(y, time.Month(m), d)}
}

// Q2 — minimum-cost supplier: part ⋈ partsupp ⋈ supplier ⋈ nation ⋈ region
// with a selective part size filter and a region restriction.
func Q2(cat *catalog.Catalog) (*logical.Query, error) {
	b := logical.NewBuilder(cat)
	b.AddTable("part", "p")
	b.AddTable("partsupp", "ps")
	b.AddTable("supplier", "s")
	b.AddTable("nation", "n")
	b.AddTable("region", "r")
	b.Where(eq(b.Col("p", "p_partkey"), b.Col("ps", "ps_partkey")))
	b.Where(eq(b.Col("ps", "ps_suppkey"), b.Col("s", "s_suppkey")))
	b.Where(eq(b.Col("s", "s_nationkey"), b.Col("n", "n_nationkey")))
	b.Where(eq(b.Col("n", "n_regionkey"), b.Col("r", "r_regionkey")))
	b.Where(eq(b.Col("p", "p_size"), intc(15)))
	b.Where(eq(b.Col("r", "r_name"), str("EUROPE")))
	b.SelectCol("s", "s_acctbal")
	b.SelectCol("s", "s_name")
	b.SelectCol("n", "n_name")
	b.SelectCol("p", "p_partkey")
	b.OrderBy(b.Col("s", "s_acctbal"), true)
	b.Limit(100)
	return b.Build()
}

// Q3 — shipping priority: customer ⋈ orders ⋈ lineitem with segment and
// date-range predicates, revenue per order.
func Q3(cat *catalog.Catalog) (*logical.Query, error) {
	b := logical.NewBuilder(cat)
	b.AddTable("customer", "c")
	b.AddTable("orders", "o")
	b.AddTable("lineitem", "l")
	b.Where(eq(b.Col("c", "c_custkey"), b.Col("o", "o_custkey")))
	b.Where(eq(b.Col("l", "l_orderkey"), b.Col("o", "o_orderkey")))
	b.Where(eq(b.Col("c", "c_mktsegment"), str("BUILDING")))
	b.Where(lt(b.Col("o", "o_orderdate"), date(1995, 3, 15)))
	b.Where(gt(b.Col("l", "l_shipdate"), date(1995, 3, 15)))
	rev := &expr.Arith{Op: expr.Mul, L: b.Col("l", "l_extendedprice"),
		R: &expr.Arith{Op: expr.Sub, L: num(1), R: b.Col("l", "l_discount")}}
	b.SelectCol("l", "l_orderkey")
	b.SelectAgg(logical.AggSum, rev, "revenue")
	b.GroupBy(b.Col("l", "l_orderkey"))
	b.OrderBy(b.Col("l", "l_orderkey"), false)
	return b.Build()
}

// Q4 — order priority checking: orders ⋈ lineitem with a column-to-column
// comparison (l_commitdate < l_receiptdate) the estimator can only default —
// one of the paper's estimation-error sources.
func Q4(cat *catalog.Catalog) (*logical.Query, error) {
	b := logical.NewBuilder(cat)
	b.AddTable("orders", "o")
	b.AddTable("lineitem", "l")
	b.Where(eq(b.Col("l", "l_orderkey"), b.Col("o", "o_orderkey")))
	b.Where(ge(b.Col("o", "o_orderdate"), date(1993, 7, 1)))
	b.Where(lt(b.Col("o", "o_orderdate"), date(1993, 10, 1)))
	b.Where(lt(b.Col("l", "l_commitdate"), b.Col("l", "l_receiptdate")))
	b.SelectCol("o", "o_orderpriority")
	b.SelectAgg(logical.AggCount, nil, "order_count")
	b.GroupBy(b.Col("o", "o_orderpriority"))
	b.OrderBy(b.Col("o", "o_orderpriority"), false)
	return b.Build()
}

// Q5 — local supplier volume: six-way join with a region restriction and
// the customer-supplier co-location predicate.
func Q5(cat *catalog.Catalog) (*logical.Query, error) {
	b := logical.NewBuilder(cat)
	b.AddTable("customer", "c")
	b.AddTable("orders", "o")
	b.AddTable("lineitem", "l")
	b.AddTable("supplier", "s")
	b.AddTable("nation", "n")
	b.AddTable("region", "r")
	b.Where(eq(b.Col("c", "c_custkey"), b.Col("o", "o_custkey")))
	b.Where(eq(b.Col("l", "l_orderkey"), b.Col("o", "o_orderkey")))
	b.Where(eq(b.Col("l", "l_suppkey"), b.Col("s", "s_suppkey")))
	b.Where(eq(b.Col("c", "c_nationkey"), b.Col("s", "s_nationkey")))
	b.Where(eq(b.Col("s", "s_nationkey"), b.Col("n", "n_nationkey")))
	b.Where(eq(b.Col("n", "n_regionkey"), b.Col("r", "r_regionkey")))
	b.Where(eq(b.Col("r", "r_name"), str("ASIA")))
	b.Where(ge(b.Col("o", "o_orderdate"), date(1994, 1, 1)))
	b.Where(lt(b.Col("o", "o_orderdate"), date(1995, 1, 1)))
	rev := &expr.Arith{Op: expr.Mul, L: b.Col("l", "l_extendedprice"),
		R: &expr.Arith{Op: expr.Sub, L: num(1), R: b.Col("l", "l_discount")}}
	b.SelectCol("n", "n_name")
	b.SelectAgg(logical.AggSum, rev, "revenue")
	b.GroupBy(b.Col("n", "n_name"))
	b.OrderBy(b.Col("n", "n_name"), false)
	return b.Build()
}

// Q7 — volume shipping between two nations, with the disjunctive
// nation-pair predicate intact.
func Q7(cat *catalog.Catalog) (*logical.Query, error) {
	b := logical.NewBuilder(cat)
	b.AddTable("supplier", "s")
	b.AddTable("lineitem", "l")
	b.AddTable("orders", "o")
	b.AddTable("customer", "c")
	b.AddTable("nation", "n1")
	b.AddTable("nation", "n2")
	b.Where(eq(b.Col("s", "s_suppkey"), b.Col("l", "l_suppkey")))
	b.Where(eq(b.Col("o", "o_orderkey"), b.Col("l", "l_orderkey")))
	b.Where(eq(b.Col("c", "c_custkey"), b.Col("o", "o_custkey")))
	b.Where(eq(b.Col("s", "s_nationkey"), b.Col("n1", "n_nationkey")))
	b.Where(eq(b.Col("c", "c_nationkey"), b.Col("n2", "n_nationkey")))
	pair := &expr.Logic{Op: expr.Or, Args: []expr.Expr{
		&expr.Logic{Op: expr.And, Args: []expr.Expr{
			eq(b.Col("n1", "n_name"), str("FRANCE")),
			eq(b.Col("n2", "n_name"), str("GERMANY")),
		}},
		&expr.Logic{Op: expr.And, Args: []expr.Expr{
			eq(b.Col("n1", "n_name"), str("GERMANY")),
			eq(b.Col("n2", "n_name"), str("FRANCE")),
		}},
	}}
	b.Where(pair)
	b.Where(ge(b.Col("l", "l_shipdate"), date(1995, 1, 1)))
	b.Where(le(b.Col("l", "l_shipdate"), date(1996, 12, 31)))
	b.SelectCol("n1", "n_name")
	b.SelectCol("n2", "n_name")
	b.SelectAgg(logical.AggSum, b.Col("l", "l_extendedprice"), "volume")
	b.GroupBy(b.Col("n1", "n_name"), b.Col("n2", "n_name"))
	return b.Build()
}

// Q8 — national market share: an eight-way join.
func Q8(cat *catalog.Catalog) (*logical.Query, error) {
	b := logical.NewBuilder(cat)
	b.AddTable("part", "p")
	b.AddTable("lineitem", "l")
	b.AddTable("supplier", "s")
	b.AddTable("orders", "o")
	b.AddTable("customer", "c")
	b.AddTable("nation", "n1")
	b.AddTable("nation", "n2")
	b.AddTable("region", "r")
	b.Where(eq(b.Col("p", "p_partkey"), b.Col("l", "l_partkey")))
	b.Where(eq(b.Col("s", "s_suppkey"), b.Col("l", "l_suppkey")))
	b.Where(eq(b.Col("l", "l_orderkey"), b.Col("o", "o_orderkey")))
	b.Where(eq(b.Col("o", "o_custkey"), b.Col("c", "c_custkey")))
	b.Where(eq(b.Col("c", "c_nationkey"), b.Col("n1", "n_nationkey")))
	b.Where(eq(b.Col("n1", "n_regionkey"), b.Col("r", "r_regionkey")))
	b.Where(eq(b.Col("s", "s_nationkey"), b.Col("n2", "n_nationkey")))
	b.Where(eq(b.Col("r", "r_name"), str("AMERICA")))
	b.Where(ge(b.Col("o", "o_orderdate"), date(1995, 1, 1)))
	b.Where(le(b.Col("o", "o_orderdate"), date(1996, 12, 31)))
	b.Where(eq(b.Col("p", "p_type"), str("ECONOMY BRASS")))
	b.SelectCol("n2", "n_name")
	b.SelectAgg(logical.AggSum, b.Col("l", "l_extendedprice"), "volume")
	b.GroupBy(b.Col("n2", "n_name"))
	b.OrderBy(b.Col("n2", "n_name"), false)
	return b.Build()
}

// Q9 — product type profit measure, with the fuzzy LIKE on p_name that the
// estimator can only guess at.
func Q9(cat *catalog.Catalog) (*logical.Query, error) {
	b := logical.NewBuilder(cat)
	b.AddTable("part", "p")
	b.AddTable("supplier", "s")
	b.AddTable("lineitem", "l")
	b.AddTable("partsupp", "ps")
	b.AddTable("orders", "o")
	b.AddTable("nation", "n")
	b.Where(eq(b.Col("s", "s_suppkey"), b.Col("l", "l_suppkey")))
	b.Where(eq(b.Col("ps", "ps_suppkey"), b.Col("l", "l_suppkey")))
	b.Where(eq(b.Col("ps", "ps_partkey"), b.Col("l", "l_partkey")))
	b.Where(eq(b.Col("p", "p_partkey"), b.Col("l", "l_partkey")))
	b.Where(eq(b.Col("o", "o_orderkey"), b.Col("l", "l_orderkey")))
	b.Where(eq(b.Col("s", "s_nationkey"), b.Col("n", "n_nationkey")))
	b.Where(expr.NewLike(b.Col("p", "p_name"), "%azure%", false))
	b.SelectCol("n", "n_name")
	b.SelectAgg(logical.AggSum, b.Col("l", "l_extendedprice"), "profit")
	b.GroupBy(b.Col("n", "n_name"))
	b.OrderBy(b.Col("n", "n_name"), false)
	return b.Build()
}

// q10Base builds Q10's join skeleton: customer ⋈ orders ⋈ lineitem ⋈ nation.
func q10Base(cat *catalog.Catalog) *logical.Builder {
	b := logical.NewBuilder(cat)
	b.AddTable("customer", "c")
	b.AddTable("orders", "o")
	b.AddTable("lineitem", "l")
	b.AddTable("nation", "n")
	b.Where(eq(b.Col("c", "c_custkey"), b.Col("o", "o_custkey")))
	b.Where(eq(b.Col("l", "l_orderkey"), b.Col("o", "o_orderkey")))
	b.Where(eq(b.Col("c", "c_nationkey"), b.Col("n", "n_nationkey")))
	rev := &expr.Arith{Op: expr.Mul, L: b.Col("l", "l_extendedprice"),
		R: &expr.Arith{Op: expr.Sub, L: num(1), R: b.Col("l", "l_discount")}}
	b.SelectCol("c", "c_name")
	b.SelectAgg(logical.AggSum, rev, "revenue")
	b.SelectAgg(logical.AggMax, b.Col("c", "c_acctbal"), "acctbal")
	b.GroupBy(b.Col("c", "c_name"))
	return b
}

// Q10Param is the paper's Figure 11 query: Q10 with the LINEITEM selection
// replaced by a parameter marker (l_quantity <= ?0), so the optimizer must
// use a default selectivity at compile time.
func Q10Param(cat *catalog.Catalog) (*logical.Query, error) {
	b := q10Base(cat)
	b.Where(le(b.Col("l", "l_quantity"), b.Param(0)))
	return b.Build()
}

// Q10Literal is Q10 with the LINEITEM selection given as a literal, so the
// optimizer sees the true selectivity — the paper's "correct selectivity
// estimate" reference curve. Quantities are uniform on [1, 50]: qty selects
// qty/50 of LINEITEM.
func Q10Literal(cat *catalog.Catalog, qty float64) (*logical.Query, error) {
	b := q10Base(cat)
	b.Where(le(b.Col("l", "l_quantity"), num(qty)))
	return b.Build()
}

// Q11 — important stock identification over partsupp ⋈ supplier ⋈ nation.
func Q11(cat *catalog.Catalog) (*logical.Query, error) {
	b := logical.NewBuilder(cat)
	b.AddTable("partsupp", "ps")
	b.AddTable("supplier", "s")
	b.AddTable("nation", "n")
	b.Where(eq(b.Col("ps", "ps_suppkey"), b.Col("s", "s_suppkey")))
	b.Where(eq(b.Col("s", "s_nationkey"), b.Col("n", "n_nationkey")))
	b.Where(eq(b.Col("n", "n_name"), str("GERMANY")))
	value := &expr.Arith{Op: expr.Mul, L: b.Col("ps", "ps_supplycost"),
		R: b.Col("ps", "ps_availqty")}
	b.SelectCol("ps", "ps_partkey")
	b.SelectAgg(logical.AggSum, value, "value")
	b.GroupBy(b.Col("ps", "ps_partkey"))
	b.OrderBy(b.Col("ps", "ps_partkey"), false)
	return b.Build()
}

// Q18 — large volume customers: customer ⋈ orders ⋈ lineitem with a
// quantity filter and a two-key grouping.
func Q18(cat *catalog.Catalog) (*logical.Query, error) {
	b := logical.NewBuilder(cat)
	b.AddTable("customer", "c")
	b.AddTable("orders", "o")
	b.AddTable("lineitem", "l")
	b.Where(eq(b.Col("c", "c_custkey"), b.Col("o", "o_custkey")))
	b.Where(eq(b.Col("o", "o_orderkey"), b.Col("l", "l_orderkey")))
	b.Where(gt(b.Col("l", "l_quantity"), num(45)))
	b.SelectCol("c", "c_name")
	b.SelectCol("o", "o_orderkey")
	b.SelectAgg(logical.AggSum, b.Col("l", "l_quantity"), "total_qty")
	b.GroupBy(b.Col("c", "c_name"), b.Col("o", "o_orderkey"))
	b.OrderBy(b.Col("o", "o_orderkey"), false)
	return b.Build()
}
