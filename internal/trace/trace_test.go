package trace

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
)

// sampleEvents exercises every kind and every payload field, including the
// RangeHi conventions (nil for an unbounded range, pointer otherwise).
func sampleEvents() []Event {
	return []Event{
		{Kind: OptimizeStart, Query: "q1", Attempt: 0},
		{Kind: OptimizeDone, Query: "q1", Attempt: 0,
			Opt: &OptInfo{PlanSig: "00c0ffee00c0ffee", Cost: 1234.5, Candidates: 42, Checks: 3}},
		{Kind: CheckpointPassed, Query: "q1", Attempt: 0,
			Check: &CheckInfo{ID: 1, Flavor: "LC", Where: "above HSJN", Est: 100, Actual: 97,
				Exact: true, RangeLo: 50, RangeHi: Float(200)}},
		{Kind: CheckpointViolated, Query: "q1", Attempt: 0,
			Check: &CheckInfo{ID: 0, Flavor: "LCEM", Est: 320, Actual: 8000, RangeLo: 0.1}}, // RangeHi nil: +Inf
		{Kind: Reoptimize, Query: "q1", Attempt: 0, Reopt: &ReoptInfo{MVsCreated: 2, FeedbackN: 5}},
		{Kind: CacheHit, Query: "k1", Cache: &CacheInfo{Key: "k1", OptWork: 7, OptWorkSaved: 120, Plans: 2}},
		{Kind: CacheMiss, Query: "k1", Cache: &CacheInfo{Key: "k1", OptWork: 127, Plans: 1}},
		{Kind: CacheGuardReject, Query: "k1",
			Cache: &CacheInfo{Key: "k1", GuardSig: "lineitem[l_quantity<=?]", GuardEst: 30000,
				RangeLo: 100, RangeHi: Float(5000)}},
		{Kind: CacheInvalidate, Query: "k1", Cache: &CacheInfo{Key: "k1", Plans: 0}},
		{Kind: WorkerStart, Query: "q1", Attempt: 1, Worker: &WorkerInfo{Phase: "build", Worker: 2, DOP: 4}},
		{Kind: WorkerDrain, Query: "q1", Attempt: 1,
			Worker: &WorkerInfo{Phase: "probe", Worker: 2, DOP: 4, Rows: 512, Work: 77.25}},
		{Kind: OperatorDone, Query: "q1", Attempt: 1,
			Op: &OpInfo{Op: "HSJN", Est: 320, Actual: 8000, Work: 94611.5, DOP: 4, Spill: true}},
		{Kind: QueryDone, Query: "q1", Attempt: 1, Done: &DoneInfo{Rows: 160, Work: 123456.5, Reopts: 1}},
	}
}

// TestJSONLRoundTrip encodes one event of every kind and decodes the stream
// back, requiring deep equality — the schema contract DESIGN.md §8 documents.
func TestJSONLRoundTrip(t *testing.T) {
	evs := sampleEvents()
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	for _, ev := range evs {
		j.Record(ev)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if j.Events() != int64(len(evs)) {
		t.Fatalf("Events() = %d, want %d", j.Events(), len(evs))
	}

	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(evs) {
		t.Fatalf("decoded %d events, want %d", len(got), len(evs))
	}
	for i, ev := range evs {
		ev.Seq = int64(i + 1) // JSONL stamps sequence numbers in emission order
		if !reflect.DeepEqual(got[i], ev) {
			t.Errorf("event %d (%s) did not round-trip:\n got %+v\nwant %+v", i, ev.Kind, got[i], ev)
		}
	}

	// The unbounded validity range must decode back to a nil RangeHi.
	if got[3].Check.RangeHi != nil {
		t.Errorf("unbounded RangeHi decoded to %v, want nil", *got[3].Check.RangeHi)
	}
	if got[2].Check.RangeHi == nil || *got[2].Check.RangeHi != 200 {
		t.Errorf("bounded RangeHi did not survive: %v", got[2].Check.RangeHi)
	}
}

// TestDecodeSkipsBlankLines accepts the hand-edited-trace case.
func TestDecodeSkipsBlankLines(t *testing.T) {
	in := "\n{\"seq\":1,\"kind\":\"query_done\",\"attempt\":0}\n\n"
	evs, err := Decode(bytes.NewReader([]byte(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != QueryDone {
		t.Fatalf("got %+v", evs)
	}
}

// TestCollector checks buffering, sequence stamping and the kind filter.
func TestCollector(t *testing.T) {
	c := NewCollector()
	for _, ev := range sampleEvents() {
		c.Record(ev)
	}
	evs := c.Events()
	if len(evs) != len(sampleEvents()) {
		t.Fatalf("collected %d events, want %d", len(evs), len(sampleEvents()))
	}
	for i, ev := range evs {
		if ev.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	if n := len(c.OfKind(CheckpointViolated)); n != 1 {
		t.Errorf("OfKind(CheckpointViolated) = %d, want 1", n)
	}
	// Events returns a snapshot: appending to it must not affect the
	// collector.
	_ = append(evs, Event{Kind: QueryDone})
	if len(c.Events()) != len(sampleEvents()) {
		t.Error("Events() snapshot aliases the collector's buffer")
	}
}

// TestMulti checks nil-skipping composition: nil sinks disappear, a single
// survivor is returned unwrapped, and fan-out reaches every sink.
func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Error("Multi of no live recorders must be nil")
	}
	c := NewCollector()
	if Multi(nil, c, nil) != Recorder(c) {
		t.Error("Multi of one live recorder must return it unwrapped")
	}
	c2 := NewCollector()
	m := Multi(c, nil, c2)
	m.Record(Event{Kind: QueryDone})
	if len(c.Events()) != 1 || len(c2.Events()) != 1 {
		t.Errorf("fan-out reached %d/%d sinks", len(c.Events()), len(c2.Events()))
	}
}

// TestConcurrentRecord hammers both recorder implementations from many
// goroutines — the exchange-worker emission pattern — relying on -race in CI.
func TestConcurrentRecord(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	c := NewCollector()
	m := Multi(j, c)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Record(Event{Kind: WorkerDrain, Attempt: w,
					Worker: &WorkerInfo{Phase: "gather", Worker: w, DOP: workers, Rows: float64(i)}})
			}
		}(w)
	}
	wg.Wait()
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if j.Events() != workers*per {
		t.Fatalf("JSONL recorded %d events, want %d", j.Events(), workers*per)
	}
	evs, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != workers*per {
		t.Fatalf("decoded %d events, want %d", len(evs), workers*per)
	}
	seen := make(map[int64]bool, len(evs))
	for _, ev := range evs {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
	if len(c.Events()) != workers*per {
		t.Fatalf("collector recorded %d events", len(c.Events()))
	}
}
