// Package trace is the structured event trace of a POP execution: a typed,
// concurrency-safe stream of everything the adaptive machinery decides —
// optimizations, checkpoint outcomes with their estimate/actual pairs and
// validity ranges, re-optimizations, plan-cache verdicts, and exchange worker
// lifecycles. Producers (pop.Runner, the executor, plancache.Runner) emit
// events only when a Recorder is attached; with the recorder off the hot path
// performs no event construction and no allocations, so the default execution
// path stays bit-identical to an untraced run.
//
// Events encode as JSONL (one JSON object per line, schema documented in
// DESIGN.md §8) via JSONL, aggregate into cumulative counters via
// metrics.Registry (which implements Recorder), and round-trip through
// Decode for analysis tooling.
package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Kind names an event type.
type Kind string

// Event kinds. One JSONL line per event; every kind populates Query and
// Attempt plus exactly one of the optional payload sub-objects.
const (
	// OptimizeStart marks an optimizer invocation (Attempt 0 is the initial
	// compilation; higher attempts are re-optimizations with feedback).
	OptimizeStart Kind = "optimize_start"
	// OptimizeDone carries the chosen plan's signature, cost, enumeration
	// work and checkpoint count (payload: Opt).
	OptimizeDone Kind = "optimize_done"
	// CheckpointPassed is emitted exactly once per logical CHECK whose
	// cardinality was validated in range (payload: Check).
	CheckpointPassed Kind = "checkpoint_passed"
	// CheckpointViolated is emitted exactly once per CHECK violation that
	// reached the POP controller (payload: Check).
	CheckpointViolated Kind = "checkpoint_violated"
	// Reoptimize marks the controller's reaction to a violation: feedback
	// recorded and temp MVs promoted (payload: Reopt).
	Reoptimize Kind = "reoptimize"
	// CacheHit / CacheMiss / CacheGuardReject / CacheInvalidate describe the
	// plan cache's verdicts (payload: Cache).
	CacheHit         Kind = "cache_hit"
	CacheMiss        Kind = "cache_miss"
	CacheGuardReject Kind = "cache_guard_reject"
	CacheInvalidate  Kind = "cache_invalidate"
	// WorkerStart / WorkerDrain bracket one exchange worker's life: start at
	// launch, drain after its local meter is flushed (payload: Worker).
	WorkerStart Kind = "worker_start"
	WorkerDrain Kind = "worker_drain"
	// OperatorDone reports one plan operator's merged runtime stats after an
	// attempt finishes, in analyze mode (payload: Op).
	OperatorDone Kind = "operator_done"
	// QueryDone closes a statement's event stream (payload: Done).
	QueryDone Kind = "query_done"
	// QueryError closes a failed statement's event stream (payload: Err).
	// Without it an abort mid-optimization leaves a dangling optimize_start
	// and a consumer cannot tell a failed statement from a truncated trace.
	QueryError Kind = "query_error"
	// DOPClamp marks an exchange that asked the worker gate for its plan DOP
	// and was granted less (payload: Sched; Granted 0 means the exchange ran
	// inline on the caller's goroutine).
	DOPClamp Kind = "dop_clamp"
	// AdmissionWait marks a query that queued for an execution slot before
	// admission (payload: Sched with WaitNS and the queue depth observed).
	AdmissionWait Kind = "admission_wait"
	// AdmissionReject marks a query turned away without queueing (payload:
	// Sched with Reason "draining" or "backpressure").
	AdmissionReject Kind = "admission_reject"
)

// CheckInfo is the payload of checkpoint events: the estimate the validity
// range was derived from, the observed cardinality, and the range itself.
type CheckInfo struct {
	ID     int     `json:"id"`
	Flavor string  `json:"flavor"`
	Where  string  `json:"where,omitempty"`
	Est    float64 `json:"est"`
	Actual float64 `json:"actual"`
	// Exact reports whether Actual is the complete edge cardinality (lazy
	// validation / lower-bound EOF test) or an eager lower bound.
	Exact   bool    `json:"exact,omitempty"`
	RangeLo float64 `json:"range_lo"`
	// RangeHi is nil when the range is unbounded above (JSON has no +Inf).
	RangeHi *float64 `json:"range_hi,omitempty"`
}

// OptInfo is the payload of optimize_done.
type OptInfo struct {
	PlanSig    string  `json:"plan_sig"` // FNV-64a of the rendered plan, hex
	Cost       float64 `json:"cost"`
	Candidates int     `json:"candidates"` // plans costed during enumeration
	Checks     int     `json:"checks"`     // checkpoints placed
}

// ReoptInfo is the payload of reoptimize.
type ReoptInfo struct {
	MVsCreated int `json:"mvs_created"`
	FeedbackN  int `json:"feedback_n"`
}

// CacheInfo is the payload of plan-cache events.
type CacheInfo struct {
	Key string `json:"key"` // FNV-64a of the normalized statement key, hex
	// OptWork is guard subset-estimates on a hit, candidate costings on a
	// miss; OptWorkSaved is the full-optimization work a hit avoided.
	OptWork      int `json:"opt_work,omitempty"`
	OptWorkSaved int `json:"opt_work_saved,omitempty"`
	Plans        int `json:"plans,omitempty"` // entry's plan count after the event
	// Guard rejection detail (cache_guard_reject): the guarded subset's
	// signature, its estimated cardinality under this binding, and the
	// validity range that rejected it.
	GuardSig string   `json:"guard_sig,omitempty"`
	GuardEst float64  `json:"guard_est,omitempty"`
	RangeLo  float64  `json:"range_lo,omitempty"`
	RangeHi  *float64 `json:"range_hi,omitempty"`
}

// WorkerInfo is the payload of exchange worker events.
type WorkerInfo struct {
	Phase  string  `json:"phase"` // gather, build or probe
	Worker int     `json:"worker"`
	DOP    int     `json:"dop"`
	Rows   float64 `json:"rows,omitempty"` // drain only
	Work   float64 `json:"work,omitempty"` // drain only: work units this worker charged
}

// OpInfo is the payload of operator_done: one plan node's merged runtime
// stats (partition clones already summed).
type OpInfo struct {
	Op     string  `json:"op"`
	Est    float64 `json:"est"`
	Actual float64 `json:"actual"`
	Work   float64 `json:"work"`
	DOP    int     `json:"dop,omitempty"`
	Spill  bool    `json:"spill,omitempty"`
}

// DoneInfo is the payload of query_done.
type DoneInfo struct {
	Rows   int     `json:"rows"`
	Work   float64 `json:"work"`
	Reopts int     `json:"reopts"`
}

// ErrInfo is the payload of query_error.
type ErrInfo struct {
	Error string `json:"error"`
}

// SchedInfo is the payload of scheduler events: DOP-clamp decisions
// (Want/Granted) and admission outcomes (WaitNS/Depth/Reason).
type SchedInfo struct {
	Want    int    `json:"want,omitempty"`
	Granted int    `json:"granted"`
	WaitNS  int64  `json:"wait_ns,omitempty"`
	Depth   int    `json:"depth,omitempty"`
	Reason  string `json:"reason,omitempty"`
}

// Event is one trace record. Query is the statement's full-subset signature
// (or, for cache events, its normalized cache-key hash); Attempt numbers the
// optimize→execute round the event belongs to, 0-based.
type Event struct {
	Seq     int64  `json:"seq"`
	Kind    Kind   `json:"kind"`
	Query   string `json:"query,omitempty"`
	Attempt int    `json:"attempt"`

	Check  *CheckInfo  `json:"check,omitempty"`
	Opt    *OptInfo    `json:"opt,omitempty"`
	Reopt  *ReoptInfo  `json:"reopt,omitempty"`
	Cache  *CacheInfo  `json:"cache,omitempty"`
	Worker *WorkerInfo `json:"worker,omitempty"`
	Op     *OpInfo     `json:"op,omitempty"`
	Done   *DoneInfo   `json:"done,omitempty"`
	Err    *ErrInfo    `json:"error,omitempty"`
	Sched  *SchedInfo  `json:"sched,omitempty"`
}

// Recorder receives events. Implementations must be safe for concurrent use:
// exchange workers record from their own goroutines. Producers hold a
// Recorder as a possibly-nil interface and must guard every emission with a
// nil check — that guard is the whole disabled path.
type Recorder interface {
	Record(ev Event)
}

// JSONL writes events as JSON Lines, assigning sequence numbers in emission
// order. Encoding errors are sticky and reported by Err.
type JSONL struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
	seq int64
	n   int64
	err error
}

// NewJSONL returns a recorder writing one JSON object per line to w.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{w: bw, enc: json.NewEncoder(bw)}
}

// Record encodes the event, stamping its sequence number.
func (t *JSONL) Record(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	t.n++
	ev.Seq = t.seq
	if err := t.enc.Encode(ev); err != nil && t.err == nil {
		t.err = err
	}
}

// Flush writes buffered output through to the underlying writer.
func (t *JSONL) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// Events returns the number of events recorded so far.
func (t *JSONL) Events() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Err returns the first encoding or flush error, if any.
func (t *JSONL) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Collector buffers events in memory, for tests and interactive inspection.
type Collector struct {
	mu  sync.Mutex
	seq int64
	evs []Event
}

// NewCollector returns an empty in-memory recorder.
func NewCollector() *Collector { return &Collector{} }

// Record appends the event, stamping its sequence number.
func (c *Collector) Record(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	ev.Seq = c.seq
	c.evs = append(c.evs, ev)
}

// Events returns a snapshot of the recorded events.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.evs...)
}

// OfKind filters a snapshot down to one event kind.
func (c *Collector) OfKind(k Kind) []Event {
	var out []Event
	for _, ev := range c.Events() {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

// Multi fans every event out to several recorders (e.g. a JSONL file plus a
// metrics registry). Nil members are skipped, so callers can compose
// optional sinks without guards.
func Multi(rs ...Recorder) Recorder {
	var live []Recorder
	for _, r := range rs {
		if r != nil {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multi(live)
}

type multi []Recorder

func (m multi) Record(ev Event) {
	for _, r := range m {
		r.Record(ev)
	}
}

// Decode reads a JSONL stream back into events — the round-trip inverse of
// JSONL. Blank lines are skipped.
func Decode(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return out, err
		}
		out = append(out, ev)
	}
	return out, sc.Err()
}

// Float returns a pointer to v — the helper for optional range bounds.
func Float(v float64) *float64 { return &v }
