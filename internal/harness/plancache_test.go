package harness

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestPlanCacheStudy(t *testing.T) {
	cat := tpchCat(t)
	res, err := PlanCacheStudy(cat, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached.Executions != res.Reoptimize.Executions || res.Cached.Executions == 0 {
		t.Fatalf("sides must run the same workload: %d vs %d",
			res.Cached.Executions, res.Reoptimize.Executions)
	}
	if res.Cached.Hits == 0 {
		t.Error("repeated sweeps must produce cache hits")
	}
	if res.HitRate < 0.5 {
		t.Errorf("hit rate %.2f below 0.5 after 3 sweeps", res.HitRate)
	}
	// Acceptance: a hit costs ≥5× less optimization work than re-optimizing,
	// so across the sweep (misses included) total work saved stays large.
	if res.OptWorkRatio < 5 {
		t.Errorf("optimization work saved %.1fx, want ≥5x", res.OptWorkRatio)
	}
	// Acceptance: reusing guarded plans must not cost execution work — total
	// stays within 5% of always-reoptimize.
	if math.Abs(res.ExecRatio-1) > 0.05 {
		t.Errorf("execution work ratio %.3f outside 1±0.05", res.ExecRatio)
	}

	var buf bytes.Buffer
	if err := WritePlanCacheJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"hit_rate\"") {
		t.Error("JSON output missing hit_rate")
	}
	buf.Reset()
	WritePlanCache(&buf, res)
	if !strings.Contains(buf.String(), "hit rate") {
		t.Error("table output missing summary line")
	}
}
